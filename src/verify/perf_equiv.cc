/**
 * @file
 * Timing-vs-state differential implementation.
 */

#include "verify/perf_equiv.hh"

#include <cstdarg>
#include <cstdio>
#include <map>

#include "verify/diff_oracle.hh"
#include "verify/sweep_driver.hh"
#include "workloads/pmem.hh"
#include "workloads/runner.hh"

namespace dolos::verify
{

namespace
{

/**
 * A deliberately small machine: the tiny metadata caches and heap
 * keep runs fast *and* put real pressure on the levers (prefetches
 * face dirty victims, climbs overlap, same-line writes recur).
 */
SystemConfig
equivConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 2048;
    cfg.secure.map.protectedBytes = Addr(2048) * pageBytes;
    cfg.secure.counterCache = {"counterCache", 8 * 1024, 4};
    cfg.secure.mtCache = {"mtCache", 16 * 1024, 8};
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

workloads::WorkloadParams
equivParams(std::uint64_t seed)
{
    workloads::WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 48;
    p.thinkTime = 400;
    p.readsPerTx = 1;
    p.seed = seed;
    return p;
}

/** Everything one leg (off or on) contributes to the comparison. */
struct LegSnapshot
{
    bool verified = false;
    bool oracleClean = false;
    std::uint64_t attacks = 0;
    std::map<Addr, Block> image;
    std::map<Addr, std::array<ByteClass, blockSize>> classes;
    std::uint64_t stallPlusBmt = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t batched = 0;
    std::uint64_t prefetchHits = 0;
};

LegSnapshot
runLeg(const SystemConfig &cfg, const std::string &workload,
       const workloads::WorkloadParams &params, std::uint64_t num_tx,
       std::optional<std::uint64_t> crash_op)
{
    System sys(cfg);
    GoldenModel golden;
    sys.core().setObserver(&golden);
    const auto wl = workloads::makeWorkload(workload, params);
    std::optional<workloads::CrashPlan> plan;
    if (crash_op)
        plan = workloads::CrashPlan(*crash_op);
    const auto res = workloads::runWorkload(sys, *wl, num_tx, plan);

    LegSnapshot s;
    s.verified = res.verified;
    s.oracleClean = checkAgainstGolden(sys, golden).clean();
    s.attacks = sys.engine().attacksDetected();

    // Plaintext load-back of every block the reference machine ever
    // saw stored. The oracle sweep above already pinned any bytes a
    // crash left ambiguous, so these loads are deterministic.
    for (const Addr block : golden.trackedBlocks()) {
        Block buf{};
        sys.core().load(block, buf.data(), blockSize);
        s.image[block] = buf;
        auto &cls = s.classes[block];
        for (unsigned i = 0; i < blockSize; ++i)
            cls[i] = golden.classify(block + i);
    }

    s.stallPlusBmt = sys.controller().wpqStallCycles() +
                     sys.engine().bmtCycles();
    s.coalesced = sys.engine().bmtCoalescedUpdates();
    s.batched = sys.controller().drainsBatched();
    s.prefetchHits = sys.engine().tagPrefetchHits();
    sys.core().setObserver(nullptr);
    return s;
}

void
diag(PerfEquivResult &r, const char *fmt, ...)
{
    char buf[192];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    r.diagnostics.push_back(buf);
}

/**
 * The crash leg's equivalence: identical per-byte persistence
 * classification, and byte-identical values wherever the byte is
 * committed. In-flight bytes legitimately resolve differently — the
 * knobs change drain progress — so they are compared only for
 * admissibility (which the per-leg oracle already enforced).
 */
bool
committedEquivalent(PerfEquivResult &r, const LegSnapshot &off,
                    const LegSnapshot &on)
{
    if (off.classes.size() != on.classes.size()) {
        diag(r, "tracked-block sets differ: off=%zu on=%zu",
             off.classes.size(), on.classes.size());
        return false;
    }
    for (const auto &[block, off_cls] : off.classes) {
        const auto on_it = on.classes.find(block);
        if (on_it == on.classes.end()) {
            diag(r, "block 0x%llx tracked only in the off run",
                 (unsigned long long)block);
            return false;
        }
        const auto &on_cls = on_it->second;
        const Block &off_img = off.image.at(block);
        const Block &on_img = on.image.at(block);
        for (unsigned i = 0; i < blockSize; ++i) {
            if (off_cls[i] != on_cls[i]) {
                diag(r,
                     "0x%llx+%u: persistence class diverged "
                     "(off=%d on=%d)",
                     (unsigned long long)block, i, int(off_cls[i]),
                     int(on_cls[i]));
                return false;
            }
            if (off_cls[i] == ByteClass::Committed &&
                off_img[i] != on_img[i]) {
                diag(r,
                     "0x%llx+%u: committed byte diverged "
                     "(off=%02x on=%02x)",
                     (unsigned long long)block, i, off_img[i],
                     on_img[i]);
                return false;
            }
        }
    }
    return true;
}

} // namespace

PerfEquivResult
verifyPerfEquiv(SecurityMode mode, const std::string &workload,
                std::uint64_t num_tx, std::uint64_t seed,
                const OptKnobs &knobs)
{
    PerfEquivResult r;
    r.mode = mode;
    r.workload = workload;

    const workloads::WorkloadParams params = equivParams(seed);
    // The levers default on since the microstep-sweep flip, so the
    // "off" leg must force them off explicitly — it models the
    // paper's unoptimized machine, not the build defaults.
    SystemConfig off_cfg = equivConfig(mode);
    OptKnobs off_knobs;
    off_knobs.bmtPipeline = false;
    off_knobs.drainBatching = false;
    off_knobs.tagPrefetch = false;
    applyOptKnobs(off_cfg, off_knobs);
    SystemConfig on_cfg = off_cfg;
    applyOptKnobs(on_cfg, knobs);

    // Leg 1: crash-free run, full final-state comparison.
    const LegSnapshot off = runLeg(off_cfg, workload, params, num_tx,
                                   std::nullopt);
    const LegSnapshot on = runLeg(on_cfg, workload, params, num_tx,
                                  std::nullopt);

    r.structureVerifiedBoth = off.verified && on.verified;
    if (!r.structureVerifiedBoth)
        diag(r, "structure verification: off=%d on=%d",
             int(off.verified), int(on.verified));
    r.oracleCleanBoth = off.oracleClean && on.oracleClean;
    if (!r.oracleCleanBoth)
        diag(r, "oracle: off=%d on=%d", int(off.oracleClean),
             int(on.oracleClean));
    r.detectionIdentical = off.attacks == on.attacks;
    if (!r.detectionIdentical)
        diag(r, "attack counters differ: off=%llu on=%llu",
             (unsigned long long)off.attacks,
             (unsigned long long)on.attacks);

    r.finalStateIdentical = off.image == on.image;
    if (!r.finalStateIdentical && off.image.size() != on.image.size())
        diag(r, "final image block counts differ: off=%zu on=%zu",
             off.image.size(), on.image.size());
    else if (!r.finalStateIdentical)
        diag(r, "final plaintext images differ");

    r.offStallPlusBmt = off.stallPlusBmt;
    r.onStallPlusBmt = on.stallPlusBmt;
    r.timingNoWorse = on.stallPlusBmt <= off.stallPlusBmt;
    if (!r.timingNoWorse)
        diag(r, "timing regressed: stall+bmt off=%llu on=%llu",
             (unsigned long long)off.stallPlusBmt,
             (unsigned long long)on.stallPlusBmt);
    r.bmtCoalescedUpdates = on.coalesced;
    r.drainsBatched = on.batched;
    r.tagPrefetchHits = on.prefetchHits;

    // Leg 2: crash at a program-order WPQ boundary near the middle of
    // the run, recover, and compare recovery outcomes. The boundary
    // is an environment-operation index, so it lands at the same
    // architectural point in both configurations.
    SweepOptions sweep;
    sweep.mode = mode;
    sweep.workload = workload;
    sweep.numTx = num_tx;
    sweep.params = params;
    sweep.base = off_cfg;
    const auto boundaries = enumerateWpqBoundaries(sweep);
    if (boundaries.empty()) {
        diag(r, "no WPQ boundaries: crash leg skipped");
        r.recoveryEquivalent = true;
        return r;
    }
    r.crashOp = boundaries[boundaries.size() / 2];
    const LegSnapshot off_crash =
        runLeg(off_cfg, workload, params, num_tx, r.crashOp);
    const LegSnapshot on_crash =
        runLeg(on_cfg, workload, params, num_tx, r.crashOp);

    r.recoveryEquivalent =
        off_crash.verified && on_crash.verified &&
        off_crash.oracleClean && on_crash.oracleClean &&
        off_crash.attacks == on_crash.attacks &&
        committedEquivalent(r, off_crash, on_crash);
    if (!(off_crash.verified && on_crash.verified))
        diag(r, "crash leg structure: off=%d on=%d",
             int(off_crash.verified), int(on_crash.verified));
    if (!(off_crash.oracleClean && on_crash.oracleClean))
        diag(r, "crash leg oracle: off=%d on=%d",
             int(off_crash.oracleClean), int(on_crash.oracleClean));
    if (off_crash.attacks != on_crash.attacks)
        diag(r, "crash leg attack counters: off=%llu on=%llu",
             (unsigned long long)off_crash.attacks,
             (unsigned long long)on_crash.attacks);
    return r;
}

std::vector<PerfEquivResult>
verifyPerfEquivAll(std::uint64_t seed)
{
    static const SecurityMode modes[] = {SecurityMode::DolosFullWpq,
                                         SecurityMode::DolosPartialWpq,
                                         SecurityMode::DolosPostWpq};
    static const char *workloads_[] = {"hashmap", "btree", "ctree",
                                       "rbtree"};
    std::vector<PerfEquivResult> out;
    for (const SecurityMode mode : modes)
        for (const char *wl : workloads_)
            out.push_back(verifyPerfEquiv(mode, wl, 4, seed));
    return out;
}

std::string
formatPerfEquivReport(const PerfEquivResult &r)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%-13s %-8s %s  stall+bmt %llu -> %llu  "
        "(coalesced=%llu batched=%llu prefetchHits=%llu)",
        securityModeName(r.mode), r.workload.c_str(),
        r.ok() ? "OK  " : "FAIL",
        (unsigned long long)r.offStallPlusBmt,
        (unsigned long long)r.onStallPlusBmt,
        (unsigned long long)r.bmtCoalescedUpdates,
        (unsigned long long)r.drainsBatched,
        (unsigned long long)r.tagPrefetchHits);
    std::string out = buf;
    for (const auto &d : r.diagnostics) {
        out += "\n    ";
        out += d;
    }
    return out;
}

} // namespace dolos::verify
