/**
 * @file
 * Fault and attack injection implementation.
 */

#include "verify/fault_injector.hh"

#include <algorithm>
#include <cstdio>

#include "secure/address_map.hh"
#include "secure/merkle_tree.hh"

namespace dolos::verify
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::DataFlip:
        return "data-flip";
      case FaultKind::MacFlip:
        return "mac-flip";
      case FaultKind::CounterRollback:
        return "counter-rollback";
      case FaultKind::BmtFlip:
        return "bmt-flip";
      case FaultKind::TornAdrDump:
        return "torn-adr-dump";
      case FaultKind::DroppedClwb:
        return "dropped-clwb";
      case FaultKind::MediaTransient:
        return "media-transient";
      case FaultKind::MediaStuck:
        return "media-stuck";
      case FaultKind::MediaWriteFail:
        return "media-write-fail";
    }
    return "unknown";
}

std::optional<FaultKind>
parseFaultKind(const std::string &name)
{
    if (name == "none")
        return FaultKind::None;
    for (const FaultKind kind : allFaultKinds)
        if (name == faultKindName(kind))
            return kind;
    return std::nullopt;
}

std::optional<Addr>
FaultInjector::pickVictimDataBlock()
{
    const AddressMap &map = sys.config().secure.map;
    std::vector<Addr> candidates;
    for (const auto &[addr, block] : sys.nvmDevice().store().raw()) {
        (void)block;
        if (map.isProtectedData(addr))
            candidates.push_back(addr);
    }
    if (candidates.empty())
        return std::nullopt;
    // The backing store is an unordered_map; sort so the seeded pick
    // is independent of hash-table iteration order.
    std::sort(candidates.begin(), candidates.end());
    return candidates[rng.below(candidates.size())];
}

InjectionRecord
FaultInjector::flipBitAt(FaultKind kind, Addr addr)
{
    InjectionRecord rec;
    rec.kind = kind;
    rec.target = addr;
    rec.bit = unsigned(rng.below(blockSize * 8));
    Block b = sys.nvmDevice().readFunctional(addr);
    b[rec.bit / 8] ^= std::uint8_t(1u << (rec.bit % 8));
    sys.nvmDevice().writeFunctional(addr, b);
    rec.injected = true;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "flipped bit %u of NVM block 0x%llx",
                  rec.bit, (unsigned long long)addr);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::armTornAdrDump(unsigned surviving_entries)
{
    InjectionRecord rec;
    rec.kind = FaultKind::TornAdrDump;
    rec.injected = true;
    rec.target = AddressMap::wpqDumpBase;
    sys.controller().armAdrTear(surviving_entries);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "ADR dump armed to tear after %u entries",
                  surviving_entries);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::armDroppedClwb(std::uint64_t nth)
{
    InjectionRecord rec;
    rec.kind = FaultKind::DroppedClwb;
    rec.injected = true;
    sys.core().armClwbDrop(nth);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "CLWB %llu from now will be silently dropped",
                  (unsigned long long)nth);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::armRecoveryCrash(unsigned after_steps)
{
    InjectionRecord rec;
    rec.kind = FaultKind::None;
    rec.injected = true;
    sys.controller().armRecoveryCrash(after_steps);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "power armed to die after %u recovery steps",
                  after_steps);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectMediaTransient()
{
    InjectionRecord rec;
    rec.kind = FaultKind::MediaTransient;
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    rec.victim = rec.target = *victim;
    rec.bit = unsigned(rng.below(blockSize * 8));
    sys.nvmDevice().injectTransientFlip(*victim, rec.bit);
    rec.injected = true;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "armed transient flip of bit %u on next read of "
                  "0x%llx",
                  rec.bit, (unsigned long long)*victim);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectMediaStuck()
{
    InjectionRecord rec;
    rec.kind = FaultKind::MediaStuck;
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    // Stick the cell at the complement of its stored value so the
    // fault is visible on the very next read.
    rec.victim = rec.target = *victim;
    rec.bit = unsigned(rng.below(blockSize * 8));
    const Block stored = sys.nvmDevice().readFunctional(*victim);
    const bool current =
        stored[rec.bit / 8] & std::uint8_t(1u << (rec.bit % 8));
    sys.nvmDevice().injectStuckBit(*victim, rec.bit, !current);
    rec.injected = true;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "stuck bit %u of 0x%llx at %d", rec.bit,
                  (unsigned long long)*victim, int(!current));
    rec.detail = buf;
    return rec;
}

namespace
{
/** The metadata frame of @p region that covers data block @p victim. */
Addr
metadataTargetFor(NvmRegion region, Addr victim)
{
    switch (region) {
      case NvmRegion::Counter:
        return AddressMap::counterBlockAddr(victim);
      case NvmRegion::Tree:
        return AddressMap::treeNodeAddr(
            1, AddressMap::pageOf(victim) / MerkleTree::arity);
      case NvmRegion::Mac:
        return AddressMap::macBlockAddr(victim);
      default:
        return victim;
    }
}
} // namespace

InjectionRecord
FaultInjector::injectMediaTransient(NvmRegion region)
{
    if (region == NvmRegion::Data)
        return injectMediaTransient();
    InjectionRecord rec;
    rec.kind = FaultKind::MediaTransient;
    rec.region = region;
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    rec.victim = *victim;
    rec.target = metadataTargetFor(region, *victim);
    rec.bit = unsigned(rng.below(blockSize * 8));
    sys.nvmDevice().injectTransientFlip(rec.target, rec.bit);
    rec.injected = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "armed transient flip of bit %u on next read of %s "
                  "block 0x%llx (covers 0x%llx)",
                  rec.bit, nvmRegionName(region),
                  (unsigned long long)rec.target,
                  (unsigned long long)*victim);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectMediaStuck(NvmRegion region)
{
    if (region == NvmRegion::Data)
        return injectMediaStuck();
    InjectionRecord rec;
    rec.kind = FaultKind::MediaStuck;
    rec.region = region;
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    rec.victim = *victim;
    rec.target = metadataTargetFor(region, *victim);
    rec.bit = unsigned(rng.below(blockSize * 8));
    const Block stored = sys.nvmDevice().readFunctional(rec.target);
    const bool current =
        stored[rec.bit / 8] & std::uint8_t(1u << (rec.bit % 8));
    sys.nvmDevice().injectStuckBit(rec.target, rec.bit, !current);
    rec.injected = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "stuck bit %u of %s block 0x%llx at %d (covers "
                  "0x%llx)",
                  rec.bit, nvmRegionName(region),
                  (unsigned long long)rec.target, int(!current),
                  (unsigned long long)*victim);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::armMediaWriteFail(unsigned failures)
{
    InjectionRecord rec;
    rec.kind = FaultKind::MediaWriteFail;
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    rec.victim = rec.target = *victim;
    sys.nvmDevice().injectWriteFail(*victim, failures);
    rec.injected = true;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "next %u writes to 0x%llx will fail", failures,
                  (unsigned long long)*victim);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectDataFlip()
{
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        InjectionRecord rec;
        rec.kind = FaultKind::DataFlip;
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    InjectionRecord rec = flipBitAt(FaultKind::DataFlip, *victim);
    rec.victim = *victim;
    return rec;
}

InjectionRecord
FaultInjector::injectMacFlip()
{
    const auto victim = pickVictimDataBlock();
    if (!victim) {
        InjectionRecord rec;
        rec.kind = FaultKind::MacFlip;
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    // Flip a bit inside the victim's own 8-byte MAC lane so a read of
    // the victim is guaranteed to fail authentication.
    const Addr mac_block = AddressMap::macBlockAddr(*victim);
    const unsigned lane = AddressMap::macOffsetInBlock(*victim);
    InjectionRecord rec;
    rec.kind = FaultKind::MacFlip;
    rec.target = mac_block;
    rec.victim = *victim;
    rec.bit = lane * 8 + unsigned(rng.below(64));
    Block b = sys.nvmDevice().readFunctional(mac_block);
    b[rec.bit / 8] ^= std::uint8_t(1u << (rec.bit % 8));
    sys.nvmDevice().writeFunctional(mac_block, b);
    rec.injected = true;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "flipped bit %u of MAC block 0x%llx (victim 0x%llx)",
                  rec.bit, (unsigned long long)mac_block,
                  (unsigned long long)*victim);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectCounterRollback()
{
    InjectionRecord rec;
    rec.kind = FaultKind::CounterRollback;

    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }
    const Addr cb_addr = AddressMap::counterBlockAddr(*victim);
    if (!sys.nvmDevice().store().contains(cb_addr)) {
        rec.detail = "victim's counter block not persisted yet";
        return rec;
    }

    // Roll the packed counter block backwards: decrement the last
    // nonzero byte. Any decrement yields some strictly older (or at
    // least different) counter state the attacker could have replayed.
    Block b = sys.nvmDevice().readFunctional(cb_addr);
    int pos = -1;
    for (int i = int(blockSize) - 1; i >= 0; --i) {
        if (b[i] != 0) {
            pos = i;
            break;
        }
    }
    if (pos < 0) {
        rec.detail = "counter block is all-zero; nothing to roll back";
        return rec;
    }
    --b[pos];
    sys.nvmDevice().writeFunctional(cb_addr, b);

    // A real rollback adversary also reverts the recovery metadata
    // that would repair the counter: scrub every Anubis shadow slot to
    // zero. A zeroed slot carries no ANUBISV1 marker, so the scan
    // treats it as never-written — the stale counter must then be
    // caught by the integrity-tree root comparison, not silently
    // repaired by the shadow merge.
    std::vector<Addr> shadow_blocks;
    for (const auto &[addr, block] : sys.nvmDevice().store().raw()) {
        (void)block;
        if (addr >= AddressMap::shadowBase && addr < AddressMap::wpqDumpBase)
            shadow_blocks.push_back(addr);
    }
    for (const Addr addr : shadow_blocks)
        sys.nvmDevice().writeFunctional(addr, zeroBlock());

    rec.injected = true;
    rec.target = cb_addr;
    rec.victim = *victim;
    rec.bit = unsigned(pos);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "rolled back counter block 0x%llx (byte %d) and "
                  "scrubbed %zu shadow slots",
                  (unsigned long long)cb_addr, pos, shadow_blocks.size());
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::injectBmtFlip()
{
    InjectionRecord rec;
    rec.kind = FaultKind::BmtFlip;

    const auto victim = pickVictimDataBlock();
    if (!victim) {
        rec.detail = "no protected data block stored yet";
        return rec;
    }

    // Corrupt a tree node on the victim page's verification path.
    // fetchCounter's walk only authenticates nodes present in NVM, so
    // prefer a stored node; if none of the path was ever evicted,
    // forge the level-1 node instead — making it present with a wrong
    // tag guarantees the next walk sees the mismatch.
    const Addr page_idx = AddressMap::pageOf(*victim);
    Addr idx = page_idx;
    Addr node_addr = 0;
    bool found = false;
    for (unsigned lvl = 1; lvl < 16 && !found; ++lvl) {
        idx /= MerkleTree::arity;
        const Addr candidate = AddressMap::treeNodeAddr(lvl, idx);
        if (sys.nvmDevice().store().contains(candidate)) {
            node_addr = candidate;
            found = true;
        }
        if (idx == 0)
            break;
    }
    if (found) {
        InjectionRecord flipped = flipBitAt(FaultKind::BmtFlip, node_addr);
        flipped.victim = *victim;
        return flipped;
    }

    node_addr = AddressMap::treeNodeAddr(1, page_idx / MerkleTree::arity);
    Block forged = zeroBlock();
    forged[rng.below(blockSize)] = std::uint8_t(1u << rng.below(8));
    sys.nvmDevice().writeFunctional(node_addr, forged);
    rec.injected = true;
    rec.target = node_addr;
    rec.victim = *victim;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "forged tree node 0x%llx on page %llu's path",
                  (unsigned long long)node_addr,
                  (unsigned long long)page_idx);
    rec.detail = buf;
    return rec;
}

InjectionRecord
FaultInjector::inject(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DataFlip:
        return injectDataFlip();
      case FaultKind::MacFlip:
        return injectMacFlip();
      case FaultKind::CounterRollback:
        return injectCounterRollback();
      case FaultKind::BmtFlip:
        return injectBmtFlip();
      case FaultKind::MediaTransient:
        return injectMediaTransient();
      case FaultKind::MediaStuck:
        return injectMediaStuck();
      case FaultKind::MediaWriteFail:
        return armMediaWriteFail(16); // beyond any retry budget
      default:
        break;
    }
    InjectionRecord rec;
    rec.kind = kind;
    rec.detail = "kind is not an NVM image mutation";
    return rec;
}

} // namespace dolos::verify
