/**
 * @file
 * Deterministic fault and attack injection.
 *
 * The injector models the failure and adversary classes the Dolos
 * design must survive (paper §4.1, §5):
 *
 *   DataFlip         flip one NVM bit in a protected data block
 *   MacFlip          flip one NVM bit in the block's stored data MAC
 *   CounterRollback  roll an NVM counter block backwards and scrub
 *                    the Anubis shadow region so the stale image
 *                    looks like a clean shutdown
 *   BmtFlip          corrupt (or forge) a stored integrity-tree node
 *                    on a written block's path
 *   TornAdrDump      ADR power dies after K entries of the crash
 *                    dump — the rest of the WPQ flush is torn off
 *   DroppedClwb      a CLWB silently never reaches the controller
 *                    (platform/software flush bug; the class the
 *                    differential oracle exists to catch)
 *
 * Image mutations (the first four) are applied to the NVM backing
 * store at a quiesced point — between crash and recovery for a
 * cold-boot adversary, or after recovery for a bus adversary.
 * Crash-path faults (the last two) are armed ahead of time and fire
 * inside the machine. Victim selection is seeded and deterministic:
 * the same (seed, machine history) always injects the same fault,
 * which is what makes fuzz failures reproducible from one line.
 */

#ifndef DOLOS_VERIFY_FAULT_INJECTOR_HH
#define DOLOS_VERIFY_FAULT_INJECTOR_HH

#include <optional>
#include <string>

#include "dolos/system.hh"
#include "sim/random.hh"

namespace dolos::verify
{

/** The injectable fault classes. */
enum class FaultKind
{
    None,
    DataFlip,
    MacFlip,
    CounterRollback,
    BmtFlip,
    TornAdrDump,
    DroppedClwb,
    MediaTransient, ///< one-shot device read flip (should heal)
    MediaStuck,     ///< stuck-at cell (should quarantine, no alarm)
    MediaWriteFail, ///< dropped write pulses (retry, then quarantine)
};

/** Stable CLI name of a fault kind (and its inverse). */
const char *faultKindName(FaultKind kind);
std::optional<FaultKind> parseFaultKind(const std::string &name);

/** All injectable kinds, in a fixed order (None excluded). */
inline constexpr FaultKind allFaultKinds[] = {
    FaultKind::DataFlip,       FaultKind::MacFlip,
    FaultKind::CounterRollback, FaultKind::BmtFlip,
    FaultKind::TornAdrDump,    FaultKind::DroppedClwb,
    FaultKind::MediaTransient, FaultKind::MediaStuck,
    FaultKind::MediaWriteFail,
};

/** What an injection actually did (repro + assertions). */
struct InjectionRecord
{
    FaultKind kind = FaultKind::None;
    bool injected = false; ///< a concrete target existed
    Addr target = 0;       ///< mutated NVM address (if any)
    Addr victim = 0;       ///< data block whose read provokes the check
    unsigned bit = 0;      ///< flipped bit index (flip kinds)
    NvmRegion region = NvmRegion::Data; ///< region the target falls in
    std::string detail;
};

/**
 * Seeded fault injector bound to one System.
 */
class FaultInjector
{
  public:
    FaultInjector(System &sys, std::uint64_t seed)
        : sys(sys), rng(seed ^ 0xFA17'1E57ULL)
    {
    }

    /** @{ Crash-path faults: armed now, fire inside the machine. */
    InjectionRecord armTornAdrDump(unsigned surviving_entries);
    InjectionRecord armDroppedClwb(std::uint64_t nth);
    InjectionRecord armRecoveryCrash(unsigned after_steps);
    /** @} */

    /** @{ Media faults: armed on a seeded stored victim block; they
     *  fire on the device's timed demand paths. */
    InjectionRecord injectMediaTransient();
    InjectionRecord injectMediaStuck();
    InjectionRecord armMediaWriteFail(unsigned failures);
    /** @} */

    /** @{ Region-aware media faults: the seeded victim data block
     *  selects the *metadata* frame that covers it (its counter
     *  block, a tree node on its path, or its MAC block), and the
     *  fault lands there. Data is the plain-victim case above. */
    InjectionRecord injectMediaTransient(NvmRegion region);
    InjectionRecord injectMediaStuck(NvmRegion region);
    /** @} */

    /** @{ NVM image mutations (apply at a quiesced point). */
    InjectionRecord injectDataFlip();
    InjectionRecord injectMacFlip();
    InjectionRecord injectCounterRollback();
    InjectionRecord injectBmtFlip();
    /** @} */

    /**
     * Dispatch an image mutation by kind (campaign convenience);
     * crash-path kinds must be armed explicitly and return a
     * not-injected record here.
     */
    InjectionRecord inject(FaultKind kind);

    /**
     * Deterministically pick a victim among the protected-data
     * blocks currently stored in NVM.
     */
    std::optional<Addr> pickVictimDataBlock();

  private:
    /** Flip one seeded bit of the stored block at @p addr. */
    InjectionRecord flipBitAt(FaultKind kind, Addr addr);

    System &sys;
    Random rng;
};

} // namespace dolos::verify

#endif // DOLOS_VERIFY_FAULT_INJECTOR_HH
