/**
 * @file
 * Exhaustive crash-point sweep driver.
 *
 * A crash can only change the persistent outcome when the WPQ's
 * contents changed since the previous candidate point, so the sweep
 * enumerates *WPQ-insertion boundaries*: the environment-operation
 * indices at which the controller accepted at least one new write
 * request. A probe run records the boundary set for a (mode,
 * workload, seed) triple; the sweep then replays the workload from
 * scratch once per boundary, crashes there, recovers, and checks the
 * machine against the golden model's committed-prefix contract plus
 * the workload's own structural verifier.
 *
 * Exhaustive sweeps are the gold standard but grow with the
 * transaction count, so a budget selects an evenly-strided, seeded
 * subset (always keeping the first and last boundary) for CI.
 */

#ifndef DOLOS_VERIFY_SWEEP_DRIVER_HH
#define DOLOS_VERIFY_SWEEP_DRIVER_HH

#include <string>
#include <vector>

#include "dolos/config.hh"
#include "verify/diff_oracle.hh"
#include "workloads/runner.hh"

namespace dolos::verify
{

/** Which operation indices qualify as crash candidates. */
enum class CrashPoints
{
    /** WPQ-insertion boundaries (the persistent state changed). */
    WpqBoundaries,

    /**
     * Every environment operation — the arbitrary-cycle sweep. More
     * points than WpqBoundaries buys, but catches bugs in paths that
     * never touch the WPQ (fences, loads, recovery bookkeeping).
     */
    EveryOp,

    /**
     * Every firing of a named persist-path crash point
     * (sim/crash_points.hh): power dies *inside* a drain's security
     * work — mid BMT-pipeline climb, at a drainBatching elision,
     * right after a counter prefetch — instead of between core
     * operations. This is the only point set that reaches the
     * intermediate states the optimization levers introduce.
     *
     * Dolos modes: firings of the measured run are enumerated
     * directly (the probe finds none elsewhere). EadrSecure: the
     * interesting firings happen inside crash() itself — the holdup
     * flush — so the sweep picks a few anchor operations, probes
     * how many crash points fire during the power-fail flush at
     * each, and encodes each point as (anchor_op << 24) | firing
     * (flush firings are bounded far below 2^24). The armed run
     * then crashes at the anchor with the registry armed at that
     * in-flush firing: power failure during the power failure.
     */
    Microstep,
};

/** One (mode, workload) sweep configuration. */
struct SweepOptions
{
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::string workload = "hashmap";
    std::uint64_t numTx = 6;
    workloads::WorkloadParams params;
    SystemConfig base; ///< mode is overridden per sweep

    /**
     * Max crash points actually run; 0 = exhaustive. Sampling is
     * evenly strided with a seeded offset and always includes the
     * first and last boundary.
     */
    std::size_t budget = 0;
    std::uint64_t sampleSeed = 1;

    /** Candidate-point enumeration strategy. */
    CrashPoints pointSet = CrashPoints::WpqBoundaries;

    /**
     * Compound failure: arm a second power failure after this many
     * recovery steps at every crash point, forcing the restartable
     * recovery path (see CrashPlan::recoveryCrashStep).
     */
    std::optional<unsigned> recoveryCrashStep;

    /**
     * Metadata-fault sweep: at every crash point, after power-off but
     * before recovery, stick one bit of a security-metadata frame
     * (counter block / tree node / MAC block, rotating with the crash
     * op) covering a seeded victim block. Recovery must repair or
     * cascade — never false-alarm — and the oracle then verifies
     * every block without an unhealable fault.
     */
    bool metadataFaults = false;

    /**
     * Emit an NDJSON heartbeat record to stderr every this many
     * finished crash points (0 = silent); the record carries the
     * crash op as its "seed". See sim/heartbeat.hh for the schema.
     */
    std::uint64_t heartbeatEvery = 0;

    /**
     * Worker threads running crash points (<=1 = serial). Each point
     * is fully self-contained (fresh System, golden model, and
     * thread-local crash-point registry), so the sweep verdict is
     * bit-identical to the serial run for any jobs value: results
     * land in the slot of their chosen-point index, and only the
     * heartbeat interleaving on stderr varies.
     */
    unsigned jobs = 1;
};

/** Outcome of one crash point. */
struct CrashPointResult
{
    std::uint64_t crashOp = 0;
    bool structureVerified = false; ///< workload's own verifier
    bool attackDetected = false;    ///< must stay false (no faults)
    bool crashFired = true;         ///< the armed crash actually hit
    unsigned recoveryAttempts = 0;  ///< boots until recovery done
    std::string microstep;          ///< fired step name (microstep)

    /**
     * eADR only: the holdup flush ran out of energy (or was itself
     * interrupted) and quarantined the lines it could not cover.
     * Data loss is then the *declared* outcome — the workload's
     * structural verifier may legitimately fail over the quarantined
     * lines, but the oracle must still agree on every surviving
     * block and the loss must be loud (quarantine records with
     * cause provenance), never silent corruption.
     */
    bool expectedLoss = false;

    OracleReport oracle;

    bool
    passed() const
    {
        return (structureVerified || expectedLoss) && oracle.clean() &&
               !attackDetected && crashFired;
    }
};

/** Outcome of a whole sweep. */
struct SweepResult
{
    std::vector<std::uint64_t> boundaries; ///< all enumerated
    std::vector<CrashPointResult> points;  ///< the ones actually run

    std::size_t
    failures() const
    {
        std::size_t n = 0;
        for (const auto &p : points)
            n += !p.passed();
        return n;
    }

    bool allPassed() const { return failures() == 0; }

    /** Diagnostic for the first failing point (empty if none). */
    std::string firstFailure() const;
};

/**
 * Probe run: enumerate every WPQ-insertion boundary of the workload
 * (environment-operation indices where the controller accepted new
 * write requests), in increasing order.
 */
std::vector<std::uint64_t> enumerateWpqBoundaries(const SweepOptions &opt);

/**
 * Candidate crash points under opt.pointSet: WPQ boundaries, every
 * environment-operation index of the measured run (1..total), or —
 * for Microstep — every crash-point firing index of the measured
 * run (0..firings-1), recorded by a counting probe run.
 */
std::vector<std::uint64_t> enumerateCrashPoints(const SweepOptions &opt);

/** One-line repro description for failure messages: the options a
 *  command needs to replay this sweep (mode, workload, seeds). */
std::string describeSweep(const SweepOptions &opt);

/**
 * Run one crash point from scratch: fresh machine with an attached
 * golden model, crash at @p crash_op, recover, check structure and
 * committed-prefix agreement.
 */
CrashPointResult runCrashPoint(const SweepOptions &opt,
                               std::uint64_t crash_op);

/** Enumerate boundaries, sample within budget, run every sample. */
SweepResult sweepCrashPoints(const SweepOptions &opt);

} // namespace dolos::verify

#endif // DOLOS_VERIFY_SWEEP_DRIVER_HH
