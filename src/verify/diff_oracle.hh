/**
 * @file
 * Differential crash oracle.
 *
 * After a run (and in particular after a crash + recovery) the
 * oracle sweeps every block the golden model ever saw stored, reads
 * it back through the real machine's core, and lets the golden model
 * adjudicate each byte: committed bytes must match byte-exactly,
 * in-flight bytes must fall inside their admissible sets, untouched
 * bytes must be zero. The verdict therefore covers the paper's
 * committed-prefix recovery claim end to end — through the caches,
 * the WPQ tag array, the security engine's decrypt path and the
 * recovery machinery.
 */

#ifndef DOLOS_VERIFY_DIFF_ORACLE_HH
#define DOLOS_VERIFY_DIFF_ORACLE_HH

#include <set>

#include "dolos/system.hh"
#include "verify/golden_model.hh"

namespace dolos::verify
{

/** Verdict of one oracle sweep. */
struct OracleReport
{
    std::uint64_t blocksScanned = 0;
    std::uint64_t committedBytes = 0;
    std::uint64_t inFlightBytes = 0;
    std::uint64_t untouchedBytes = 0;
    std::uint64_t violations = 0;   ///< run-long total, incl. the sweep
    std::vector<std::string> diagnostics;

    bool clean() const { return violations == 0; }

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Sweep the machine against the golden model.
 *
 * The golden model must be attached to @p sys's core as its
 * observer (the sweep's own loads are adjudicated through the
 * observer path, resolving any still-ambiguous post-crash bytes).
 */
OracleReport checkAgainstGolden(System &sys, GoldenModel &golden);

/**
 * As above, but skip blocks in @p skip — the ones a media-fault
 * campaign deliberately destroyed (stuck cells, failed writes,
 * quarantined). Their contents are *expected* to diverge; the oracle
 * still covers every healthy block.
 */
OracleReport checkAgainstGolden(System &sys, GoldenModel &golden,
                                const std::set<Addr> &skip);

/**
 * The canonical skip set for a media-fault campaign: every
 * golden-tracked block the device reports an unhealable fault on
 * (stuck cells, pending write failures, quarantined — including
 * blocks lost to a metadata cascade). Repaired metadata leaves no
 * unhealable fault behind, so repaired coverage is still verified.
 */
std::set<Addr> mediaSkipSet(System &sys, const GoldenModel &golden);

} // namespace dolos::verify

#endif // DOLOS_VERIFY_DIFF_ORACLE_HH
