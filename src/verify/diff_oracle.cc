/**
 * @file
 * Differential crash oracle implementation.
 */

#include "verify/diff_oracle.hh"

#include <cstdio>
#include "sim/profiler.hh"

namespace dolos::verify
{

std::string
OracleReport::summary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "oracle: %llu blocks, %llu committed / %llu in-flight"
                  " / %llu untouched bytes, %llu violations",
                  (unsigned long long)blocksScanned,
                  (unsigned long long)committedBytes,
                  (unsigned long long)inFlightBytes,
                  (unsigned long long)untouchedBytes,
                  (unsigned long long)violations);
    std::string out = buf;
    if (!diagnostics.empty())
        out += "; first: " + diagnostics.front();
    return out;
}

OracleReport
checkAgainstGolden(System &sys, GoldenModel &golden)
{
    return checkAgainstGolden(sys, golden, {});
}

OracleReport
checkAgainstGolden(System &sys, GoldenModel &golden,
                   const std::set<Addr> &skip)
{
    DOLOS_PROF_SCOPE(Verify);
    OracleReport report;

    // Classify before the sweep: reading resolves in-flight bytes.
    auto tracked = golden.trackedBlocks();
    if (!skip.empty()) {
        std::erase_if(tracked, [&](Addr block) {
            return skip.count(blockAlign(block)) != 0;
        });
    }
    for (const Addr block : tracked) {
        for (unsigned i = 0; i < blockSize; ++i) {
            switch (golden.classify(block + i)) {
              case ByteClass::Committed:
                ++report.committedBytes;
                break;
              case ByteClass::InFlight:
                ++report.inFlightBytes;
                break;
              case ByteClass::Untouched:
                ++report.untouchedBytes;
                break;
            }
        }
    }

    // The sweep: every tracked block read through the real core; the
    // golden model adjudicates each byte via the observer path.
    Block buf;
    for (const Addr block : tracked) {
        sys.core().load(block, buf.data(), blockSize);
        ++report.blocksScanned;
    }

    report.violations = golden.violationCount();
    report.diagnostics = golden.diagnostics();
    return report;
}

std::set<Addr>
mediaSkipSet(System &sys, const GoldenModel &golden)
{
    std::set<Addr> skip;
    for (const Addr block : golden.trackedBlocks())
        if (sys.nvmDevice().hasUnhealableFault(block))
            skip.insert(blockAlign(block));
    return skip;
}

} // namespace dolos::verify
