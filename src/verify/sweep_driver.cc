/**
 * @file
 * Crash-point sweep implementation.
 */

#include "verify/sweep_driver.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/crash_points.hh"
#include "sim/heartbeat.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "verify/fault_injector.hh"
#include "workloads/pmem.hh"

namespace dolos::verify
{

namespace
{

SystemConfig
configFor(const SweepOptions &opt)
{
    SystemConfig cfg = opt.base;
    cfg.mode = opt.mode;
    return cfg;
}

/** eADR flush microsteps encode (anchor_op << 24) | firing. */
constexpr std::uint64_t kFlushAnchorShift = 24;
constexpr std::uint64_t kFlushFiringMask = (1ull << kFlushAnchorShift) - 1;

/** Probe run: total environment operations of the measured run. */
std::uint64_t
measuredOps(const SweepOptions &opt)
{
    System sys(configFor(opt));
    const auto workload = workloads::makeWorkload(opt.workload, opt.params);
    workloads::PmemEnv env(sys);
    workload->setup(env);
    const std::uint64_t ops0 = env.opCount();
    for (std::uint64_t i = 0; i < opt.numTx; ++i)
        workload->transaction(env, i);
    return env.opCount() - ops0;
}

/**
 * eADR probe: run to @p anchor_op, kill power there, and count how
 * many crash points fire *inside* the crash path (grace drains plus
 * the holdup flush). Every recorded firing index is a valid arm()
 * target for CrashPlan::atFlushMicrostep at the same anchor, because
 * the armed run replays the identical deterministic machine. Returns
 * 0 when the anchor lies beyond the run (nothing to enumerate).
 */
std::uint64_t
probeFlushFirings(const SweepOptions &opt, std::uint64_t anchor_op)
{
    System sys(configFor(opt));
    const auto workload = workloads::makeWorkload(opt.workload, opt.params);
    workloads::PmemEnv env(sys);
    workload->setup(env);
    const std::uint64_t ops0 = env.opCount();
    env.setOpHook([&env, ops0, anchor_op] {
        if (env.opCount() - ops0 >= anchor_op)
            throw workloads::CrashRequested{};
    });
    bool reached = false;
    try {
        for (std::uint64_t i = 0; i < opt.numTx; ++i)
            workload->transaction(env, i);
    } catch (const workloads::CrashRequested &) {
        reached = true;
    }
    env.setOpHook(nullptr);
    if (!reached)
        return 0;
    auto &reg = crashpoint::Registry::instance();
    reg.reset();
    reg.enableCounting();
    sys.crash(/*mid_operation=*/false);
    const std::uint64_t firings = reg.firings();
    reg.reset();
    return firings;
}

const char *
pointSetName(CrashPoints p)
{
    switch (p) {
      case CrashPoints::WpqBoundaries: return "wpq-boundaries";
      case CrashPoints::EveryOp: return "every-op";
      case CrashPoints::Microstep: return "microstep";
    }
    return "unknown";
}

} // namespace

std::string
SweepResult::firstFailure() const
{
    for (const auto &p : points) {
        if (p.passed())
            continue;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "crash-op %llu%s%s: structure=%d attack=%d "
                      "fired=%d, ",
                      (unsigned long long)p.crashOp,
                      p.microstep.empty() ? "" : " step=",
                      p.microstep.c_str(), int(p.structureVerified),
                      int(p.attackDetected), int(p.crashFired));
        return buf + p.oracle.summary();
    }
    return {};
}

std::string
describeSweep(const SweepOptions &opt)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "mode=%s workload=%s numTx=%llu seed=%llu sampleSeed=%llu "
        "points=%s%s recoveryCrashStep=%s%s",
        securityModeName(opt.mode), opt.workload.c_str(),
        (unsigned long long)opt.numTx,
        (unsigned long long)opt.params.seed,
        (unsigned long long)opt.sampleSeed,
        pointSetName(opt.pointSet),
        opt.budget ? "" : " (exhaustive)",
        opt.recoveryCrashStep
            ? std::to_string(*opt.recoveryCrashStep).c_str()
            : "none",
        opt.metadataFaults ? " meta-faults" : "");
    return buf;
}

std::vector<std::uint64_t>
enumerateWpqBoundaries(const SweepOptions &opt)
{
    System sys(configFor(opt));
    const auto workload = workloads::makeWorkload(opt.workload, opt.params);
    workloads::PmemEnv env(sys);
    workload->setup(env);

    // Record, during the measured run only, every environment
    // operation after which the controller had accepted new writes.
    std::vector<std::uint64_t> boundaries;
    const std::uint64_t ops0 = env.opCount();
    std::uint64_t writes_seen = sys.controller().writeRequests();
    env.setOpHook([&] {
        const std::uint64_t w = sys.controller().writeRequests();
        if (w != writes_seen) {
            writes_seen = w;
            boundaries.push_back(env.opCount() - ops0);
        }
    });
    for (std::uint64_t i = 0; i < opt.numTx; ++i)
        workload->transaction(env, i);
    env.setOpHook(nullptr);
    return boundaries;
}

std::vector<std::uint64_t>
enumerateCrashPoints(const SweepOptions &opt)
{
    if (opt.pointSet == CrashPoints::WpqBoundaries)
        return enumerateWpqBoundaries(opt);

    if (opt.pointSet == CrashPoints::Microstep &&
        opt.mode == SecurityMode::EadrSecure) {
        // eADR: the interesting microsteps fire inside crash()
        // itself — the holdup flush. Pick a few anchor operations
        // across the run (the flush's contents change with the dirty
        // working set, not with every op), probe each anchor's
        // in-crash firing count, and enumerate every firing at every
        // anchor as (anchor_op << 24) | firing.
        const std::uint64_t total = measuredOps(opt);
        if (total == 0)
            return {};
        std::vector<std::uint64_t> anchors = {
            std::max<std::uint64_t>(1, total / 3),
            std::max<std::uint64_t>(1, 2 * total / 3), total};
        std::sort(anchors.begin(), anchors.end());
        anchors.erase(std::unique(anchors.begin(), anchors.end()),
                      anchors.end());

        std::vector<std::uint64_t> points;
        for (const std::uint64_t anchor : anchors) {
            const std::uint64_t firings = probeFlushFirings(opt, anchor);
            DOLOS_ASSERT(firings <= kFlushFiringMask,
                         "eADR flush fired %llu points at anchor %llu "
                         "(encoding holds < 2^24)",
                         (unsigned long long)firings,
                         (unsigned long long)anchor);
            for (std::uint64_t f = 0; f < firings; ++f)
                points.push_back((anchor << kFlushAnchorShift) | f);
        }
        return points;
    }

    if (opt.pointSet == CrashPoints::Microstep) {
        // Probe run with the crash-point registry counting (never
        // throwing): every firing index it records is a valid arm()
        // target, because the crash run replays the identical
        // deterministic machine. Count from the end of setup, the
        // same origin runWorkload arms against.
        auto &reg = crashpoint::Registry::instance();
        System sys(configFor(opt));
        const auto workload =
            workloads::makeWorkload(opt.workload, opt.params);
        workloads::PmemEnv env(sys);
        workload->setup(env);
        reg.reset();
        reg.enableCounting();
        for (std::uint64_t i = 0; i < opt.numTx; ++i)
            workload->transaction(env, i);
        const std::uint64_t total = reg.firings();
        reg.reset();

        std::vector<std::uint64_t> points;
        points.reserve(std::size_t(total));
        for (std::uint64_t idx = 0; idx < total; ++idx)
            points.push_back(idx);
        return points;
    }

    // Every-op sweep: probe run counts the measured run's operations;
    // a crash can then land after any one of them.
    System sys(configFor(opt));
    const auto workload = workloads::makeWorkload(opt.workload, opt.params);
    workloads::PmemEnv env(sys);
    workload->setup(env);
    const std::uint64_t ops0 = env.opCount();
    for (std::uint64_t i = 0; i < opt.numTx; ++i)
        workload->transaction(env, i);
    const std::uint64_t total = env.opCount() - ops0;

    std::vector<std::uint64_t> points;
    points.reserve(std::size_t(total));
    for (std::uint64_t op = 1; op <= total; ++op)
        points.push_back(op);
    return points;
}

CrashPointResult
runCrashPoint(const SweepOptions &opt, std::uint64_t crash_op)
{
    System sys(configFor(opt));
    GoldenModel golden;
    sys.core().setObserver(&golden);

    const auto workload = workloads::makeWorkload(opt.workload, opt.params);
    const bool eadr = opt.mode == SecurityMode::EadrSecure;
    const bool eadr_flush =
        eadr && opt.pointSet == CrashPoints::Microstep;
    workloads::CrashPlan plan;
    if (eadr_flush) {
        // Decode (anchor_op << 24) | firing: crash at the anchor,
        // then kill the holdup flush at that in-crash firing.
        plan.atOp = crash_op >> kFlushAnchorShift;
        plan.atFlushMicrostep = crash_op & kFlushFiringMask;
    } else if (opt.pointSet == CrashPoints::Microstep) {
        plan.atMicrostep = crash_op;
    } else {
        plan.atOp = crash_op;
    }
    plan.recoveryCrashStep = opt.recoveryCrashStep;
    if (opt.metadataFaults) {
        // After the power dies, stick one metadata bit before the
        // machine reboots — the worst moment: the volatile truth is
        // gone and recovery itself must disambiguate wear from
        // tamper. The region rotates with the crash op so one sweep
        // covers all three repair paths.
        plan.atPowerOff = [&opt, crash_op](System &s) {
            static constexpr NvmRegion regions[] = {
                NvmRegion::Counter, NvmRegion::Tree, NvmRegion::Mac};
            FaultInjector inj(s, opt.sampleSeed ^ (crash_op * 0x9e37ULL));
            inj.injectMediaStuck(regions[crash_op % 3]);
        };
    }
    const auto res =
        workloads::runWorkload(sys, *workload, opt.numTx, plan);

    CrashPointResult out;
    out.crashOp = crash_op;
    out.structureVerified = res.verified;
    out.attackDetected = sys.attackDetected();
    out.recoveryAttempts = res.recoveryAttempts;
    if (opt.pointSet == CrashPoints::Microstep) {
        // A probe-enumerated firing index must fire in the armed
        // replay — a silent miss means the machines diverged, which
        // is itself a failure the sweep must surface.
        auto &reg = crashpoint::Registry::instance();
        out.crashFired = res.crashed && reg.crashFired();
        if (const auto step = reg.firedStep())
            out.microstep = crashpoint::stepName(*step);
        reg.reset();
    }
    // eADR: an under-provisioned (or interrupted) holdup flush
    // quarantines the lines it could not cover — a declared,
    // attributed loss the oracle must not count as divergence. The
    // skip set excludes exactly the quarantined blocks; every
    // surviving block must still match the golden committed prefix.
    out.expectedLoss = eadr && sys.nvmDevice().quarantineCount() != 0;
    out.oracle = (opt.metadataFaults || eadr)
                     ? checkAgainstGolden(sys, golden,
                                          mediaSkipSet(sys, golden))
                     : checkAgainstGolden(sys, golden);
    sys.core().setObserver(nullptr);
    return out;
}

SweepResult
sweepCrashPoints(const SweepOptions &opt)
{
    SweepResult result;
    result.boundaries = enumerateCrashPoints(opt);
    if (result.boundaries.empty())
        return result;

    // Select the points to run: all of them, or a budgeted sample
    // that is evenly strided with a seeded start so repeated CI runs
    // with different seeds cover different slices.
    std::vector<std::uint64_t> chosen;
    const std::size_t n = result.boundaries.size();
    if (opt.budget == 0 || opt.budget >= n) {
        chosen = result.boundaries;
    } else {
        Random rng(opt.sampleSeed ^ 0x5eeb0a2dULL);
        chosen.push_back(result.boundaries.front());
        if (opt.budget >= 2)
            chosen.push_back(result.boundaries.back());
        const std::size_t middle = opt.budget > 2 ? opt.budget - 2 : 0;
        if (middle > 0 && n > 2) {
            const std::size_t span = n - 2;
            const double stride = double(span) / double(middle);
            const std::size_t offset = rng.below(std::max<std::uint64_t>(
                1, std::uint64_t(stride)));
            for (std::size_t k = 0; k < middle; ++k) {
                std::size_t pos =
                    1 + std::size_t(stride * double(k)) + offset;
                pos = std::min(pos, n - 2);
                chosen.push_back(result.boundaries[pos]);
            }
        }
        std::sort(chosen.begin(), chosen.end());
        chosen.erase(std::unique(chosen.begin(), chosen.end()),
                     chosen.end());
    }

    CampaignMonitor monitor("sweep", chosen.size(),
                            opt.heartbeatEvery);
    result.points.resize(chosen.size());
    const std::size_t jobs = std::min<std::size_t>(
        std::max(1u, opt.jobs), chosen.size());
    if (jobs <= 1) {
        for (std::size_t k = 0; k < chosen.size(); ++k) {
            result.points[k] = runCrashPoint(opt, chosen[k]);
            monitor.caseDone(chosen[k], !result.points[k].passed());
        }
    } else {
        // Deterministic merge: worker w claims chosen-point indices
        // from a shared counter and writes each outcome into its
        // slot, so result.points is bit-identical to the serial run
        // regardless of scheduling. Every point is self-contained
        // (fresh System + thread-local crash-point registry), which
        // is what the thread-shared lint audit guarantees.
        std::atomic<std::size_t> next{0};
        std::mutex errMu;
        std::exception_ptr firstError;
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w)
            workers.emplace_back([&] {
                for (;;) {
                    const std::size_t k =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (k >= chosen.size())
                        return;
                    try {
                        result.points[k] = runCrashPoint(opt, chosen[k]);
                    } catch (...) {
                        const std::lock_guard<std::mutex> g(errMu);
                        if (!firstError)
                            firstError = std::current_exception();
                        return;
                    }
                    monitor.caseDone(chosen[k],
                                     !result.points[k].passed());
                }
            });
        for (auto &t : workers)
            t.join();
        if (firstError)
            std::rethrow_exception(firstError);
    }
    if (opt.heartbeatEvery)
        monitor.finish();
    return result;
}

} // namespace dolos::verify
