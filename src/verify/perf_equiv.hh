/**
 * @file
 * Timing-vs-state differential harness for the persist-path
 * optimization levers (bmtPipeline / drainBatching / tagPrefetch).
 *
 * The levers are *timing* optimizations: they may reorder or elide
 * modeled latency charges, but they must not change what the machine
 * computes, detects, or recovers. This harness proves that claim per
 * (mode, workload) by running the same program twice — once with all
 * knobs off, once with all knobs on — and requiring:
 *
 *  1. Final state: after a crash-free run, the plaintext contents of
 *     every golden-tracked block, read back through the core, are
 *     byte-identical between the two runs, and both runs pass the
 *     differential oracle. (Ciphertext is *expected* to differ —
 *     timing feeds back into coalescing decisions, so counter values
 *     diverge; the architectural contract is over plaintext.)
 *  2. Detection: the attack-detection counters agree.
 *  3. Recovery: crashing both runs at the same program-order WPQ
 *     boundary and recovering yields the same structural verdict,
 *     the same per-byte persistence classification, and identical
 *     values for every committed byte. (In-flight bytes may resolve
 *     differently — drain progress at the crash point is exactly
 *     what the knobs change — but the committed prefix is sacred.)
 *  4. Timing: the optimized run's wpqStallCycles + bmtCycles total
 *     is no worse than the baseline's.
 *
 * Exposed through `dolos-sim --verify-perf-equiv` and the
 * bmt_pipeline/drain_batch/tag_prefetch unit tests.
 */

#ifndef DOLOS_VERIFY_PERF_EQUIV_HH
#define DOLOS_VERIFY_PERF_EQUIV_HH

#include <string>
#include <vector>

#include "dolos/config.hh"

namespace dolos::verify
{

/** Outcome of one (mode, workload) off-vs-on differential. */
struct PerfEquivResult
{
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::string workload = "hashmap";

    bool finalStateIdentical = false; ///< plaintext load-back equal
    bool oracleCleanBoth = false;     ///< both runs pass the oracle
    bool structureVerifiedBoth = false;
    bool detectionIdentical = false;  ///< attack counters agree
    bool recoveryEquivalent = false;  ///< crash leg (see file header)
    bool timingNoWorse = false;       ///< on stall+bmt <= off

    std::uint64_t crashOp = 0;        ///< crash leg's boundary
    std::uint64_t offStallPlusBmt = 0;
    std::uint64_t onStallPlusBmt = 0;
    std::uint64_t bmtCoalescedUpdates = 0; ///< on-run lever activity
    std::uint64_t drainsBatched = 0;
    std::uint64_t tagPrefetchHits = 0;

    std::vector<std::string> diagnostics;

    bool
    ok() const
    {
        return finalStateIdentical && oracleCleanBoth &&
               structureVerifiedBoth && detectionIdentical &&
               recoveryEquivalent && timingNoWorse;
    }
};

/** Knob bundle the "on" runs use (defaults to all three levers). */
PerfEquivResult verifyPerfEquiv(SecurityMode mode,
                                const std::string &workload,
                                std::uint64_t num_tx,
                                std::uint64_t seed,
                                const OptKnobs &knobs = {});

/**
 * The CLI sweep: every tier-1 workload in all three Dolos modes,
 * all knobs on.
 */
std::vector<PerfEquivResult> verifyPerfEquivAll(std::uint64_t seed);

/** One-line human-readable report. */
std::string formatPerfEquivReport(const PerfEquivResult &r);

} // namespace dolos::verify

#endif // DOLOS_VERIFY_PERF_EQUIV_HH
