#include "verify/manifest_check.hh"

#include <sstream>

#include "dolos/system.hh"
#include "sim/persist_annotations.hh"

namespace dolos::verify
{

namespace
{

/** Deterministic xorshift64* stream for the traffic mix. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

  private:
    std::uint64_t state;
};

/**
 * Drive a store/CLWB/SFENCE/load mix that populates every layer of
 * the machine, then finish with an unfenced CLWB burst so the crash
 * finds outstanding persist tickets and undrained WPQ entries.
 */
void
driveTraffic(System &sys, std::uint64_t seed)
{
    constexpr Addr heap_base = 0x10000;
    constexpr unsigned working_set = 64; ///< distinct blocks
    Rng rng(seed);
    auto &core = sys.core();

    for (unsigned i = 0; i < 96; ++i) {
        const std::uint64_t r = rng.next();
        const Addr addr = heap_base + (r % working_set) * blockSize;
        const std::uint64_t value = r ^ (std::uint64_t(i) << 48);
        switch (r % 5) {
          case 0:
          case 1:
            core.store(addr, &value, sizeof(value));
            core.clwb(addr);
            break;
          case 2:
            core.store(addr, &value, sizeof(value));
            break;
          case 3: {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            break;
          }
          default:
            core.compute(5);
            break;
        }
        if (i % 17 == 16)
            core.sfence();
    }

    // Unfenced tail burst: these CLWBs are in flight at power-off.
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t r = rng.next();
        const Addr addr = heap_base + (r % working_set) * blockSize;
        core.store(addr, &r, sizeof(r));
        core.clwb(addr);
    }
}

std::string
truncate(const std::string &s)
{
    constexpr std::size_t limit = 96;
    if (s.size() <= limit)
        return s;
    std::ostringstream os;
    os << s.substr(0, limit) << "...(" << s.size() << " chars)";
    return os.str();
}

} // namespace

ManifestCheckResult
verifyCrashManifest(SecurityMode mode, std::uint64_t seed)
{
    ManifestCheckResult res;
    res.mode = mode;

    SystemConfig cfg = SystemConfig::paperDefault();
    cfg.mode = mode;

    System dirty(cfg);
    System pristine(cfg);

    driveTraffic(dirty, seed);

    // The pristine machine's post-crash state is the canonical reset
    // value of every volatile field.
    pristine.crash();
    const auto pristine_manifests = pristine.collectStateManifests();

    // Quiesce in-window drains at the crash tick so the pre-crash
    // snapshot and crash() observe the same drain frontier (the
    // drain pipeline is idempotent at a fixed tick). In eADR mode
    // crash() is not a pure power-off: a non-empty holdup flush
    // legitimately advances PERSISTENT engine state (counters, BMT,
    // ciphertext), so flush the caches through the ordinary persist
    // path first — the holdup flush then finds nothing and the
    // differential compares a pure reset.
    if (mode == SecurityMode::EadrSecure) {
        dirty.hierarchy().flushAll(dirty.core().now());
        // The flushed lines enter the WPQ with transit latency, so
        // draining "to now" would leave them undrained and the
        // holdup flush non-empty; run the drain pipeline far enough
        // ahead to retire every enqueued write.
        dirty.controller().drainTo(dirty.core().now() + 50'000'000);
    }
    dirty.controller().drainTo(dirty.core().now());

    const auto manifests = dirty.collectStateManifests();
    res.manifests = manifests.size();

    if (manifests.size() != pristine_manifests.size()) {
        res.mismatches.push_back(
            {"<structure>", "persistent",
             "dirty and pristine machines register different "
             "manifest counts"});
        return res;
    }

    // Pre-crash snapshot of every non-delegated field.
    std::vector<std::vector<std::string>> pre(manifests.size());
    for (std::size_t i = 0; i < manifests.size(); ++i)
        for (const auto &f : manifests[i].fields())
            pre[i].push_back(f.delegated ? std::string() : f.snapshot());

    dirty.crash();

    for (std::size_t i = 0; i < manifests.size(); ++i) {
        const auto &m = manifests[i];
        const auto &pm = pristine_manifests[i];
        if (m.className() != pm.className() ||
            m.fields().size() != pm.fields().size()) {
            res.mismatches.push_back(
                {m.className(), "persistent",
                 "manifest structure differs from pristine machine"});
            continue;
        }
        for (std::size_t j = 0; j < m.fields().size(); ++j) {
            const auto &f = m.fields()[j];
            if (f.delegated) {
                ++res.delegatedFields;
                continue;
            }
            ++res.fieldsChecked;
            const std::string post = f.snapshot();
            if (f.check) {
                if (!f.check())
                    res.mismatches.push_back(
                        {m.label(f), persist::kindName(f.kind),
                         "custom rule failed: " + f.rule +
                             "; observed " + truncate(post)});
                continue;
            }
            if (f.kind == persist::Kind::Persistent) {
                if (post != pre[i][j])
                    res.mismatches.push_back(
                        {m.label(f), "persistent",
                         "did not round-trip: pre " +
                             truncate(pre[i][j]) + " vs post " +
                             truncate(post)});
            } else {
                const std::string reset = pm.fields()[j].snapshot();
                if (post != reset)
                    res.mismatches.push_back(
                        {m.label(f), "volatile",
                         "not reset: expected " + truncate(reset) +
                             ", observed " + truncate(post)});
            }
        }
    }

    // The crash this check performs must itself be survivable.
    const auto rec = dirty.recoverToCompletion();
    res.recoveryVerified = rec.misuVerified &&
                           rec.engine.rootVerified &&
                           !dirty.attackDetected();
    return res;
}

std::vector<ManifestCheckResult>
verifyCrashManifestAllModes(std::uint64_t seed)
{
    std::vector<ManifestCheckResult> out;
    for (const auto mode :
         {SecurityMode::DolosFullWpq, SecurityMode::DolosPartialWpq,
          SecurityMode::DolosPostWpq, SecurityMode::EadrSecure})
        out.push_back(verifyCrashManifest(mode, seed));
    return out;
}

std::string
formatManifestReport(const ManifestCheckResult &res)
{
    std::ostringstream os;
    os << "manifest check [" << securityModeName(res.mode) << "]: "
       << res.fieldsChecked << " fields across " << res.manifests
       << " manifests (" << res.delegatedFields << " delegated), "
       << "recovery " << (res.recoveryVerified ? "ok" : "FAILED")
       << ", " << res.mismatches.size() << " mismatch(es)\n";
    for (const auto &mm : res.mismatches)
        os << "  MISMATCH " << mm.field << " [" << mm.kind << "]: "
           << mm.detail << "\n";
    return os.str();
}

} // namespace dolos::verify
