/**
 * @file
 * Golden reference machine implementation.
 */

#include "verify/golden_model.hh"

#include <algorithm>
#include <cstdio>

namespace dolos::verify
{

namespace
{

/** Pretty one-line diagnostic for a byte mismatch. */
std::string
describeMismatch(Addr addr, std::uint8_t observed, const char *expect)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "addr 0x%llx: observed 0x%02x, expected %s",
                  (unsigned long long)addr, observed, expect);
    return buf;
}

} // namespace

GoldenModel::ByteState *
GoldenModel::find(Addr addr)
{
    const auto it = blocks.find(blockAlign(addr));
    if (it == blocks.end())
        return nullptr;
    return &it->second[addr % blockSize];
}

const GoldenModel::ByteState *
GoldenModel::find(Addr addr) const
{
    const auto it = blocks.find(blockAlign(addr));
    if (it == blocks.end())
        return nullptr;
    return &it->second[addr % blockSize];
}

GoldenModel::ByteState &
GoldenModel::touch(Addr addr)
{
    return blocks[blockAlign(addr)][addr % blockSize];
}

void
GoldenModel::recordViolation(Addr addr, std::uint8_t observed,
                             const ByteState *state)
{
    ++violations_;
    if (diagnostics_.size() >= 16)
        return;
    if (!state || !state->written) {
        diagnostics_.push_back(
            describeMismatch(addr, observed, "0x00 (untouched)"));
        return;
    }
    char expect[96];
    if (state->ambiguous && state->pending.empty()) {
        std::string set;
        for (std::uint8_t v : state->admissible) {
            char e[8];
            std::snprintf(e, sizeof(e), "%s0x%02x",
                          set.empty() ? "" : ",", v);
            set += e;
        }
        std::snprintf(expect, sizeof(expect), "one of {%s} (in-flight)",
                      set.c_str());
    } else {
        std::snprintf(expect, sizeof(expect), "0x%02x (%s)",
                      state->currentValue(),
                      state->pending.empty() ? "committed" : "dirty");
    }
    diagnostics_.push_back(describeMismatch(addr, observed, expect));
}

void
GoldenModel::onStore(Addr addr, const void *data, unsigned size)
{
    ++seq;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (unsigned i = 0; i < size; ++i) {
        ByteState &b = touch(addr + i);
        b.written = true;
        b.pending.emplace_back(seq, bytes[i]);
    }
}

void
GoldenModel::onClwb(Addr addr)
{
    // Snapshot the block's program-order position; the fence that
    // retires this CLWB commits the content as of this point.
    flushSnaps[blockAlign(addr)] = seq;
}

void
GoldenModel::onSfence()
{
    for (const auto &[block, snap] : flushSnaps) {
        const auto it = blocks.find(block);
        if (it == blocks.end())
            continue;
        for (ByteState &b : it->second) {
            // Latest pending value at or before the snapshot becomes
            // the durable floor; older pending values are dead (the
            // WPQ drains in FIFO order, so nothing can resurrect
            // them past this fence).
            auto last = b.pending.end();
            for (auto p = b.pending.begin(); p != b.pending.end(); ++p)
                if (p->first <= snap)
                    last = p;
            if (last == b.pending.end())
                continue;
            b.floorValue = last->second;
            b.pending.erase(b.pending.begin(), last + 1);
            b.ambiguous = false;
            b.admissible.clear();
        }
    }
    flushSnaps.clear();
}

void
GoldenModel::onCrash()
{
    ++crashes_;
    flushSnaps.clear();
    for (auto &[block, state] : blocks) {
        for (ByteState &b : state) {
            if (!b.written)
                continue;
            if (b.pending.empty() && !b.ambiguous)
                continue; // exact durable value: survives as-is
            // Fork the admissible set: the floor (or the previous
            // set, if still unresolved) plus every value stored
            // since — an eviction may have persisted any of them.
            if (!b.ambiguous) {
                b.admissible.clear();
                b.admissible.push_back(b.floorValue);
            }
            for (const auto &[s, v] : b.pending) {
                (void)s;
                if (std::find(b.admissible.begin(), b.admissible.end(),
                              v) == b.admissible.end())
                    b.admissible.push_back(v);
            }
            b.pending.clear();
            b.ambiguous = true;
        }
    }
}

void
GoldenModel::onLoad(Addr addr, const void *data, unsigned size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (unsigned i = 0; i < size; ++i) {
        ++checkedLoads_;
        ByteState *b = find(addr + i);
        if (!b || !b->written) {
            if (bytes[i] != 0)
                recordViolation(addr + i, bytes[i], b);
            continue;
        }
        if (b->ambiguous && b->pending.empty()) {
            // First observation after a crash: the machine reveals
            // which admissible value survived; pin it.
            if (std::find(b->admissible.begin(), b->admissible.end(),
                          bytes[i]) == b->admissible.end()) {
                recordViolation(addr + i, bytes[i], b);
                continue;
            }
            b->floorValue = bytes[i];
            b->ambiguous = false;
            b->admissible.clear();
            continue;
        }
        if (bytes[i] != b->currentValue())
            recordViolation(addr + i, bytes[i], b);
    }
}

void
GoldenModel::onBlockLost(Addr addr)
{
    // Declared loss (quarantine / truncated eADR flush): the block
    // reads as zero from now on, so forget its history — loads then
    // adjudicate against the untouched (must-read-zero) rule, and a
    // later store simply starts tracking it afresh.
    blocks.erase(blockAlign(addr));
}

ByteClass
GoldenModel::classify(Addr addr) const
{
    const ByteState *b = find(addr);
    if (!b || !b->written)
        return ByteClass::Untouched;
    if (b->ambiguous && b->pending.empty())
        return ByteClass::InFlight;
    return ByteClass::Committed;
}

std::vector<Addr>
GoldenModel::trackedBlocks() const
{
    std::vector<Addr> out;
    out.reserve(blocks.size());
    for (const auto &[block, state] : blocks)
        out.push_back(block);
    return out;
}

} // namespace dolos::verify
