/**
 * @file
 * Power-loss differential check of the annotated crash-state model.
 *
 * The persist-domain annotations (src/sim/persist_annotations.hh)
 * *declare* which fields survive a power failure; this check *proves*
 * the declaration against the real crash() behavior:
 *
 *  1. Build two identical machines. Drive one ("dirty") with a
 *     deterministic store/CLWB/SFENCE mix that populates every layer
 *     — caches, WPQ, Mi-SU registers, Ma-SU counter/tree caches,
 *     Anubis shadow, NVM — and leaves work in flight (outstanding
 *     CLWBs, undrained WPQ entries) when the power dies.
 *  2. Crash the untouched machine ("pristine") to obtain the
 *     canonical post-crash reset value of every volatile field.
 *  3. Snapshot every manifest field of the dirty machine, crash it,
 *     and snapshot again. Every DOLOS_PERSISTENT field must
 *     round-trip unchanged; every DOLOS_VOLATILE field must equal
 *     the pristine machine's reset value (or satisfy its registered
 *     custom predicate, for dynamic reset values).
 *  4. Recover the dirty machine to completion and require the dump
 *     authentication and root verification to pass — the crash the
 *     check performs must be a *survivable* one.
 *
 * Exposed through `dolos-sim --verify-manifest` and the
 * persist_manifest unit tests for all three Mi-SU modes.
 */

#ifndef DOLOS_VERIFY_MANIFEST_CHECK_HH
#define DOLOS_VERIFY_MANIFEST_CHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dolos/config.hh"

namespace dolos::verify
{

/** One field whose declared crash kind disagrees with crash(). */
struct ManifestMismatch
{
    std::string field;  ///< Class(instance).member label
    std::string kind;   ///< "persistent" / "volatile"
    std::string detail; ///< expected vs observed (truncated)
};

/** Outcome of one mode's power-loss differential. */
struct ManifestCheckResult
{
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::size_t manifests = 0;       ///< state classes checked
    std::size_t fieldsChecked = 0;   ///< non-delegated fields compared
    std::size_t delegatedFields = 0; ///< covered via their own manifest
    bool recoveryVerified = false;   ///< post-check recovery clean
    std::vector<ManifestMismatch> mismatches;

    bool ok() const { return mismatches.empty() && recoveryVerified; }
};

/**
 * Run the power-loss differential for @p mode. @p seed varies the
 * deterministic traffic mix; any seed must pass.
 */
ManifestCheckResult verifyCrashManifest(SecurityMode mode,
                                        std::uint64_t seed = 1);

/** Run the differential in the three Dolos (Mi-SU) modes plus
 *  EadrSecure (quiesced, so its holdup flush is a no-op). */
std::vector<ManifestCheckResult>
verifyCrashManifestAllModes(std::uint64_t seed = 1);

/** Human-readable one-mode report (diagnostics on failure). */
std::string formatManifestReport(const ManifestCheckResult &res);

} // namespace dolos::verify

#endif // DOLOS_VERIFY_MANIFEST_CHECK_HH
