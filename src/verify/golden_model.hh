/**
 * @file
 * In-order golden reference machine for differential verification.
 *
 * The GoldenModel attaches to a SimpleCore as a CoreObserver and
 * mirrors every architectural memory operation in a flat byte-exact
 * reference memory that also tracks *persistence* state. From the
 * program-order stream of stores, CLWBs and SFENCEs it derives, per
 * byte, the committed-prefix contract the paper's recovery guarantee
 * promises (PAPER.md §5):
 *
 *  - committed: the byte was covered by a CLWB whose SFENCE
 *    completed. After any crash it must read back exactly.
 *  - in-flight: stored, but the last store was not known-persisted
 *    at the crash. After a crash it may read as any value the byte
 *    held since its last committed snapshot (an eviction may have
 *    pushed any of them into the persistence domain), but nothing
 *    else — never garbage, never a pre-committed value.
 *  - untouched: never stored; reads as zero.
 *
 * During normal operation every load is checked byte-exactly against
 * the reference (the machine is coherent); after a crash, the first
 * load of an in-flight byte must fall inside its admissible set and
 * pins the byte from then on. Any disagreement is recorded as a
 * violation with a diagnostic; the DiffOracle turns the record into
 * a verdict.
 */

#ifndef DOLOS_VERIFY_GOLDEN_MODEL_HH
#define DOLOS_VERIFY_GOLDEN_MODEL_HH

#include <array>
#include <map>
#include <string>
#include <vector>

#include "cpu/core.hh"

namespace dolos::verify
{

/** Persistence classification of one tracked byte. */
enum class ByteClass
{
    Untouched, ///< never stored; must read zero
    Committed, ///< durable value known exactly
    InFlight,  ///< value within a known admissible set
};

/** The reference machine. */
class GoldenModel : public CoreObserver
{
  public:
    /** @{ CoreObserver: mirror the architectural operation stream. */
    void onLoad(Addr addr, const void *data, unsigned size) override;
    void onStore(Addr addr, const void *data, unsigned size) override;
    void onClwb(Addr addr) override;
    void onSfence() override;
    void onCrash() override;
    void onBlockLost(Addr addr) override;
    /** @} */

    /** Classification of @p addr right now. */
    ByteClass classify(Addr addr) const;

    /** Block-aligned addresses of every block ever stored to. */
    std::vector<Addr> trackedBlocks() const;

    /** Loads checked against the reference so far. */
    std::uint64_t checkedLoads() const { return checkedLoads_; }

    /** Mismatches between the machine and the reference. */
    std::uint64_t violationCount() const { return violations_; }

    /** First few violation diagnostics (capped). */
    const std::vector<std::string> &diagnostics() const
    {
        return diagnostics_;
    }

    bool clean() const { return violations_ == 0; }

    /** Crashes observed (admissible-set forks). */
    unsigned crashesSeen() const { return crashes_; }

  private:
    /**
     * One byte of reference memory. `pending` holds every value
     * stored since the byte's durable floor, newest last; `admissible`
     * holds the post-crash candidate set while the byte is ambiguous.
     */
    struct ByteState
    {
        std::uint8_t floorValue = 0;
        bool written = false;
        bool ambiguous = false;
        std::vector<std::pair<std::uint64_t, std::uint8_t>> pending;
        std::vector<std::uint8_t> admissible;

        /** Value a coherent load must observe (pending wins). */
        std::uint8_t
        currentValue() const
        {
            return pending.empty() ? floorValue : pending.back().second;
        }
    };

    using BlockState = std::array<ByteState, blockSize>;

    ByteState *find(Addr addr);
    const ByteState *find(Addr addr) const;
    ByteState &touch(Addr addr);

    void recordViolation(Addr addr, std::uint8_t observed,
                         const ByteState *state);

    std::map<Addr, BlockState> blocks; ///< keyed by block base
    std::map<Addr, std::uint64_t> flushSnaps; ///< block -> seq at CLWB
    std::uint64_t seq = 0;
    std::uint64_t checkedLoads_ = 0;
    std::uint64_t violations_ = 0;
    unsigned crashes_ = 0;
    std::vector<std::string> diagnostics_;
};

} // namespace dolos::verify

#endif // DOLOS_VERIFY_GOLDEN_MODEL_HH
