/**
 * @file
 * Mi-SU: the Minor Security Unit protecting the WPQ (paper §4.3).
 *
 * Pads are pre-generated at boot with AES-CTR from an on-chip
 * *persistent counter register* (PCR): slot i's pad uses counter
 * PCR + i. A pad is reused while the machine runs (the WPQ never
 * leaves the chip) and becomes visible to an adversary at most once —
 * at a crash dump — after which the PCR advances by the WPQ capacity
 * and all pads are regenerated.
 *
 * Three designs trade critical-path MAC work against usable WPQ size:
 *  - Full-WPQ-MiSU: 2 MACs (entry + WPQ-tree root) before commit;
 *    MACs/root live in on-chip persistent registers, so the whole
 *    ADR budget flushes entries (16).
 *  - Partial-WPQ-MiSU: 1 MAC over (ciphertext, slot counter); MACs
 *    must be flushed with the entries, costing 1/9 of the budget
 *    (13 entries).
 *  - Post-WPQ-MiSU: the same MAC is computed *after* commit; ADR
 *    reserves energy for one in-flight MAC, costing more entries
 *    (10).
 */

#ifndef DOLOS_DOLOS_MISU_HH
#define DOLOS_DOLOS_MISU_HH

#include <vector>

#include "crypto/ctr_pad.hh"
#include "crypto/mac_engine.hh"
#include "dolos/config.hh"
#include "mem/block.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

/** Mi-SU-protected image of one WPQ entry (what ADR flushes). */
struct MisuEntryImage
{
    Block ctData{};            ///< pad-encrypted 64B data
    std::uint64_t ctAddr = 0;  ///< pad-encrypted address
    crypto::MacTag mac{};      ///< per-entry MAC (Partial/Post)
};

inline void
dolosDescribeValue(std::ostream &os, const MisuEntryImage &img)
{
    os << persist::describe(img.ctData) << '/'
       << persist::describe(img.ctAddr) << '/'
       << persist::describe(img.mac);
}

/**
 * The Minor Security Unit.
 */
class MiSu
{
  public:
    /**
     * @param mode One of the three Dolos modes.
     * @param capacity Usable WPQ entries for this design.
     * @param mac_latency One MAC computation (Table 1: 160).
     * @param key AES key for pad generation.
     * @param mac MAC engine (not owned).
     */
    MiSu(SecurityMode mode, unsigned capacity, Cycles mac_latency,
         const crypto::AesKey &key, const crypto::MacEngine &mac);

    /** Critical-path latency added before a write commits. */
    Cycles insertLatency() const;

    /**
     * Earliest tick at which a new write can be *accepted*: the
     * single MAC unit serializes inserts. For Full/Partial the unit
     * is busy until the previous insert's MAC(s) finished; for Post
     * it is busy for the one deferred MAC after the previous commit.
     */
    Tick acceptableAt(Tick arrival) const;

    /**
     * Protect an entry occupying @p slot. Updates the per-entry MAC
     * registers (and, for Full, the WPQ-tree root). For Post, marks
     * the unit busy for one deferred MAC after @p commit_tick.
     */
    MisuEntryImage protect(unsigned slot, Addr addr, const Block &data,
                           Tick commit_tick);

    /** Decrypt a protected image back to (addr, data). */
    std::pair<Addr, Block> unprotect(unsigned slot,
                                     const MisuEntryImage &img) const;

    /**
     * Verify a dumped entry at recovery. For Partial/Post the MAC
     * binds the ciphertext and the slot counter (PCR + slot); for
     * Full the caller checks the root via verifyRoot().
     */
    bool verifyEntry(unsigned slot, const MisuEntryImage &img) const;

    /**
     * Full-WPQ design: recompute the WPQ-tree root over the dumped
     * entry MACs and compare with the on-chip persistent root.
     *
     * @param imgs Entry images in slot order (empty slots skipped by
     *             passing exactly the occupied images with slots).
     */
    bool verifyRoot(
        const std::vector<std::pair<unsigned, MisuEntryImage>> &imgs)
        const;

    /** Mark a slot cleared (Ma-SU finished). Root update is lazy. */
    void clearSlot(unsigned slot);

    /**
     * Reboot after recovery: advance the PCR by the WPQ capacity and
     * regenerate every pad, so dumped pads are never reused.
     */
    void advanceEpoch();

    /**
     * Power failure: drop the unit's volatile timing state. The PCR,
     * pads, per-slot MAC registers, live bits and root register are
     * on-chip *persistent* registers and survive — that survival is
     * exactly what dump authentication at recovery relies on.
     */
    void crash() { busyUntil_ = 0; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

    /** Persistent counter register (on-chip, survives crashes). */
    std::uint64_t persistentCounter() const { return pcr; }

    SecurityMode mode() const { return mode_; }
    unsigned capacity() const { return capacity_; }
    Tick busyUntil() const { return busyUntil_; }

    stats::StatGroup &statGroup() { return stats_; }

    /** Critical-path cycles the Mi-SU MAC unit has charged so far. */
    std::uint64_t macCycles() const { return statMacCycles.value(); }

    /** Per-design storage overhead report (paper Table 3). */
    struct StorageOverhead
    {
        unsigned persistentCounterBytes;
        unsigned macBytes;
        unsigned padBytes;
        unsigned tagArrayBytes;
    };
    StorageOverhead storageOverhead() const;

  private:
    /** Slot counter used for pad generation and entry MACs. */
    std::uint64_t slotCounter(unsigned slot) const { return pcr + slot; }

    /** 80-byte pad for (slot, current epoch). */
    std::vector<std::uint8_t> makePad(unsigned slot) const;

    void regeneratePads();

    crypto::MacTag entryMac(unsigned slot,
                            const MisuEntryImage &img) const;

    SecurityMode mode_;
    unsigned capacity_;
    Cycles macLatency;
    crypto::CtrPadGenerator padGen;
    const crypto::MacEngine &macEngine;

    std::uint64_t pcr = 1; ///< on-chip persistent counter register
    std::vector<std::vector<std::uint8_t>> pads; ///< per-slot, 80B
    std::vector<crypto::MacTag> entryMacs;       ///< per-slot registers
    std::vector<bool> slotLive;                  ///< cleared bits
    crypto::MacTag rootRegister{};               ///< Full design only
    Tick busyUntil_ = 0;                         ///< Post design only

    stats::StatGroup stats_;
    stats::Scalar statProtects;
    stats::Scalar statMacOps;
    stats::Scalar statMacCycles;
    stats::Scalar statDeferredMacs;
    stats::Scalar statEpochs;
    stats::Histogram statInsertLatency{40.0, 16};

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(MiSu);
    DOLOS_PERSISTENT(mode_);
    DOLOS_PERSISTENT(capacity_);
    DOLOS_PERSISTENT(macLatency);
    DOLOS_PERSISTENT(padGen);
    DOLOS_PERSISTENT(macEngine);
    DOLOS_PERSISTENT(pcr);
    DOLOS_PERSISTENT(pads);
    DOLOS_PERSISTENT(entryMacs);
    DOLOS_PERSISTENT(slotLive);
    DOLOS_PERSISTENT(rootRegister);
    DOLOS_VOLATILE(busyUntil_);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statProtects);
    DOLOS_PERSISTENT(statMacOps);
    DOLOS_PERSISTENT(statMacCycles);
    DOLOS_PERSISTENT(statDeferredMacs);
    DOLOS_PERSISTENT(statEpochs);
    DOLOS_PERSISTENT(statInsertLatency);
};

} // namespace dolos

#endif // DOLOS_DOLOS_MISU_HH
