/**
 * @file
 * Mi-SU implementation.
 */

#include "dolos/misu.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace dolos
{

namespace
{
/** High page-id marking Mi-SU IVs (disjoint from Ma-SU data IVs). */
constexpr std::uint64_t misuIvDomain = 0xD0105ULL << 20;
} // namespace

MiSu::MiSu(SecurityMode mode, unsigned capacity, Cycles mac_latency,
           const crypto::AesKey &key, const crypto::MacEngine &mac)
    : mode_(mode),
      capacity_(capacity),
      macLatency(mac_latency),
      padGen(key),
      macEngine(mac),
      entryMacs(capacity),
      slotLive(capacity, false),
      stats_("misu")
{
    DOLOS_ASSERT(isDolosMode(mode), "MiSu requires a Dolos mode");
    regeneratePads();

    // The Full-WPQ root must cover the *initial* (empty) register
    // file too: a crash before the first insertion dumps zero entries
    // and recovery still authenticates the dump against this root.
    rootRegister = macEngine.compute(
        entryMacs.data(), entryMacs.size() * sizeof(crypto::MacTag));

    stats_.addScalar(&statProtects, "entriesProtected",
                     "WPQ entries pad-encrypted and MACed");
    stats_.addScalar(&statMacOps, "macOps", "MAC computations run");
    stats_.addScalar(&statMacCycles, "macCycles",
                     "critical-path cycles spent in Mi-SU MACs");
    stats_.addScalar(&statDeferredMacs, "deferredMacs",
                     "Post-WPQ MACs computed after commit");
    stats_.addScalar(&statEpochs, "epochAdvances",
                     "pad regenerations after a dump exposed pads");
    stats_.addHistogram(&statInsertLatency, "insertLatency",
                        "critical-path cycles added per insertion");
}

Cycles
MiSu::insertLatency() const
{
    switch (mode_) {
      case SecurityMode::DolosFullWpq:
        return 2 * macLatency; // entry/L1 MAC + WPQ root (Fig. 8)
      case SecurityMode::DolosPartialWpq:
        return macLatency; // single BMT-style MAC (Fig. 9)
      case SecurityMode::DolosPostWpq:
        return 0; // deferred (Fig. 10)
      default:
        return 0;
    }
}

Tick
MiSu::acceptableAt(Tick arrival) const
{
    return std::max(arrival, busyUntil_);
}

std::vector<std::uint8_t>
MiSu::makePad(unsigned slot) const
{
    // 72 bytes cover data + address; Partial/Post reserve 80 bytes
    // (Table 3) — the extra sub-block is generated either way and
    // reported in the storage overhead.
    return padGen.generate({misuIvDomain, slot, slotCounter(slot)}, 80);
}

void
MiSu::regeneratePads()
{
    pads.clear();
    pads.reserve(capacity_);
    for (unsigned s = 0; s < capacity_; ++s)
        pads.push_back(makePad(s));
}

crypto::MacTag
MiSu::entryMac(unsigned slot, const MisuEntryImage &img) const
{
    const std::uint64_t ctr = slotCounter(slot);
    return macEngine.computeParts(
        {{&ctr, sizeof(ctr)},
         {&img.ctAddr, sizeof(img.ctAddr)},
         {img.ctData.data(), img.ctData.size()}});
}

MisuEntryImage
MiSu::protect(unsigned slot, Addr addr, const Block &data,
              Tick commit_tick)
{
    DOLOS_ASSERT(slot < capacity_, "slot %u out of range", slot);
    MisuEntryImage img;
    img.ctData = data;
    img.ctAddr = addr;
    const auto &pad = pads[slot];
    crypto::xorInto(img.ctData.data(), pad.data(), blockSize);
    for (int i = 0; i < 8; ++i)
        img.ctAddr ^= std::uint64_t(pad[blockSize + i]) << (8 * i);

    img.mac = entryMac(slot, img);
    entryMacs[slot] = img.mac;
    slotLive[slot] = true;

    if (mode_ == SecurityMode::DolosFullWpq) {
        // Root over all entry-MAC registers (the tiny WPQ tree).
        rootRegister = macEngine.compute(
            entryMacs.data(),
            entryMacs.size() * sizeof(crypto::MacTag));
    }

    // The MAC unit frees at the commit tick (Full/Partial pay their
    // MACs before commit); Post's single deferred MAC runs after.
    busyUntil_ = mode_ == SecurityMode::DolosPostWpq
                     ? commit_tick + macLatency
                     : commit_tick;

    ++statProtects;
    const Cycles in_path = insertLatency();
    statMacCycles += in_path;
    statInsertLatency.sample(double(in_path));
    DOLOS_TRACE(trace::Stage::MisuPadXor,
                commit_tick > in_path ? commit_tick - in_path - 1
                                      : commit_tick,
                commit_tick > in_path ? commit_tick - in_path
                                      : commit_tick,
                addr, slot);
    if (mode_ == SecurityMode::DolosPostWpq) {
        ++statMacOps;
        ++statDeferredMacs;
        DOLOS_TRACE(trace::Stage::MisuMac, commit_tick, busyUntil_,
                    addr, slot);
    } else {
        const unsigned macs =
            mode_ == SecurityMode::DolosFullWpq ? 2 : 1;
        statMacOps += macs;
        DOLOS_TRACE(trace::Stage::MisuMac, commit_tick - in_path,
                    commit_tick, addr, slot);
    }
    debugPrintf("Misu", "protect slot=%u addr=0x%llx commit=%llu",
                slot, (unsigned long long)addr,
                (unsigned long long)commit_tick);
    return img;
}

std::pair<Addr, Block>
MiSu::unprotect(unsigned slot, const MisuEntryImage &img) const
{
    Block data = img.ctData;
    Addr addr = img.ctAddr;
    const auto &pad = pads[slot];
    crypto::xorInto(data.data(), pad.data(), blockSize);
    for (int i = 0; i < 8; ++i)
        addr ^= std::uint64_t(pad[blockSize + i]) << (8 * i);
    return {addr, data};
}

bool
MiSu::verifyEntry(unsigned slot, const MisuEntryImage &img) const
{
    return entryMac(slot, img) == img.mac;
}

bool
MiSu::verifyRoot(
    const std::vector<std::pair<unsigned, MisuEntryImage>> &imgs) const
{
    // Recompute the register file from the dump, then the root.
    std::vector<crypto::MacTag> macs = entryMacs;
    for (const auto &[slot, img] : imgs) {
        if (slot >= capacity_)
            return false;
        macs[slot] = entryMac(slot, img);
    }
    const crypto::MacTag root = macEngine.compute(
        macs.data(), macs.size() * sizeof(crypto::MacTag));
    return root == rootRegister;
}

void
MiSu::clearSlot(unsigned slot)
{
    DOLOS_ASSERT(slot < capacity_, "slot %u out of range", slot);
    slotLive[slot] = false;
    // Paper §4.3: a cleared entry's MAC need not be recalculated —
    // rewriting the stale entry at recovery is harmless.
}

void
MiSu::advanceEpoch()
{
    ++statEpochs;
    pcr += capacity_;
    regeneratePads();
    std::fill(slotLive.begin(), slotLive.end(), false);
    busyUntil_ = 0;
}

MiSu::StorageOverhead
MiSu::storageOverhead() const
{
    StorageOverhead o{};
    o.persistentCounterBytes = 8;
    switch (mode_) {
      case SecurityMode::DolosFullWpq:
        // Entry-MAC registers (16 x 8B) + L1 MACs (2 x 8B) + root +
        // indices: the paper reports 192B total.
        o.macBytes = 192;
        o.padBytes = 72 * capacity_;
        break;
      case SecurityMode::DolosPartialWpq:
      case SecurityMode::DolosPostWpq:
        o.macBytes = 128;
        o.padBytes = 80 * capacity_;
        break;
      default:
        break;
    }
    o.tagArrayBytes = 8 * capacity_; // volatile address registers
    return o;
}

persist::StateManifest
MiSu::stateManifest() const
{
    persist::StateManifest m("MiSu");
    DOLOS_MF_CONST(m, mode_);
    DOLOS_MF_CONST(m, capacity_);
    DOLOS_MF_CONST(m, macLatency);
    DOLOS_MF_CONST(m, padGen);
    DOLOS_MF_CONST(m, macEngine);
    DOLOS_MF_P(m, pcr);
    DOLOS_MF_P(m, pads);
    DOLOS_MF_P(m, entryMacs);
    DOLOS_MF_P(m, slotLive);
    DOLOS_MF_P(m, rootRegister);
    DOLOS_MF_V(m, busyUntil_);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statProtects);
    DOLOS_MF_P(m, statMacOps);
    DOLOS_MF_P(m, statMacCycles);
    DOLOS_MF_P(m, statDeferredMacs);
    DOLOS_MF_P(m, statEpochs);
    DOLOS_MF_P(m, statInsertLatency);
    return m;
}

} // namespace dolos
