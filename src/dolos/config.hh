/**
 * @file
 * Top-level system configuration (paper Table 1 defaults).
 */

#ifndef DOLOS_DOLOS_CONFIG_HH
#define DOLOS_DOLOS_CONFIG_HH

#include <optional>
#include <string>

#include "mem/hierarchy.hh"
#include "mem/nvm_device.hh"
#include "secure/security_engine.hh"

namespace dolos
{

/**
 * Memory-controller security organization (paper Figure 5).
 */
enum class SecurityMode
{
    /**
     * Non-secure ADR system: a write persists the moment it enters
     * the WPQ. The ideal the paper measures overhead against.
     */
    NonSecureIdeal,

    /**
     * Figure 5-b: the conventional secure-NVM controller
     * (Anubis/AGIT). All security work precedes WPQ insertion; the
     * paper's baseline ("Pre-WPQ-Secure").
     */
    PreWpqSecure,

    /**
     * Figure 5-c: the infeasible strawman — writes persist at WPQ
     * insertion and security runs at eviction, assuming ADR could
     * power full security processing of the drained WPQ. Used only
     * for the Figure 6 motivation study.
     */
    PostWpqUnprotected,

    /** Dolos with the Full-WPQ-MiSU design (2 MACs, 16 entries). */
    DolosFullWpq,

    /** Dolos with the Partial-WPQ-MiSU design (1 MAC, 13 entries). */
    DolosPartialWpq,

    /** Dolos with the Post-WPQ-MiSU design (0 MACs in path, 10). */
    DolosPostWpq,

    /**
     * eADR-class machine: dirty cache lines are inside the
     * persistence domain, so CLWB/fence leaves the critical path
     * entirely. On power failure a holdup-energy flush drains every
     * dirty line (and undrained WPQ entry) through the full security
     * pipeline — counter bump, MAC, BMT update, NVM write — under the
     * bounded eadr.energyBudgetCycles budget. Lines the budget cannot
     * cover are quarantined with cause provenance, never silently
     * corrupted.
     */
    EadrSecure,
};

/** Human-readable mode name (bench output). */
const char *securityModeName(SecurityMode mode);

/** True for the three Dolos Mi-SU modes. */
bool isDolosMode(SecurityMode mode);

/**
 * True for modes whose security engine runs *after* the WPQ and
 * serves drains (Dolos modes, the post-WPQ strawman, and eADR):
 * these persist at WPQ insertion and benefit from counter prefetch.
 */
bool securityAfterWpq(SecurityMode mode);

/**
 * Parse a CLI mode name (ideal|baseline|post-unprotected|dolos-full|
 * dolos-partial|dolos-post|eadr, plus the full_wpq/partial_wpq/
 * post_wpq aliases). Unknown strings yield nullopt — callers must
 * reject them, never clamp to a default.
 */
std::optional<SecurityMode> parseSecurityMode(const std::string &name);

/** WPQ and ADR parameters. */
struct WpqParams
{
    /**
     * ADR energy budget expressed as the entry count of the
     * non-secure / Full-WPQ configuration (paper: 16).
     */
    unsigned adrBudgetEntries = 16;

    /** Usable entries for Partial-WPQ-MiSU (paper: 13 of 16). */
    unsigned partialEntries = 13;

    /** Usable entries for Post-WPQ-MiSU (paper: 10 of 16). */
    unsigned postEntries = 10;

    /** Cycles between insertion re-try attempts when the WPQ is full. */
    Cycles retryInterval = 500;

    /** Transit latency from LLC to the memory controller. */
    Cycles mcTransitLatency = 4;

    /** Mi-SU MAC latency (Table 1: 160). */
    Cycles misuMacLatency = 160;

    /** Enable write coalescing via the volatile tag array. */
    bool coalescing = true;

    /**
     * Drain-scheduler batching (SecPM-style): at drain-issue time,
     * skip the security processing of a WPQ entry that a newer entry
     * to the same cacheline supersedes — the newer entry carries the
     * line's final contents and its own drain covers persistence.
     * Only reachable when insertion-time coalescing missed the merge
     * (e.g. coalescing disabled); accounting stays exact. Default on
     * (`--opt-knobs none` restores the serial drain scheduler).
     */
    bool drainBatching = true;

    /** Usable entries for the given mode. */
    unsigned
    entriesFor(SecurityMode mode) const
    {
        switch (mode) {
          case SecurityMode::DolosPartialWpq:
            return partialEntries;
          case SecurityMode::DolosPostWpq:
            return postEntries;
          default:
            return adrBudgetEntries;
        }
    }
};

/** eADR holdup-energy parameters (EadrSecure mode only). */
struct EadrParams
{
    /**
     * Cycles of security-pipeline + NVM-write work the holdup
     * capacitors can power after the failure. The flush admits a
     * line only while used < budget; an admitted line always
     * completes (the capacitor bank is provisioned with one
     * worst-case line of margin). The default covers a worst-case
     * full-hierarchy flush — the "big battery" an eADR platform
     * ships; under-provision it deliberately to study truncated
     * flushes. Zero is rejected by validateConfig, never clamped.
     */
    Cycles energyBudgetCycles = 2'000'000'000;
};

/** Everything needed to build a System. */
struct SystemConfig
{
    std::string name = "dolos";
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    HierarchyParams hierarchy;
    NvmParams nvm;
    SecureParams secure;
    WpqParams wpq;
    EadrParams eadr;
    std::uint64_t seed = 42;

    /** The paper's Table 1 configuration. */
    static SystemConfig
    paperDefault()
    {
        SystemConfig cfg;
        // Keep the functional tree over the workload heap (256 MB);
        // timing MAC-op counts correspond to the full 16 GB (Table 1).
        cfg.secure.functionalLeaves = 1 << 16;
        for (int i = 0; i < 16; ++i) {
            cfg.secure.dataKey[i] = std::uint8_t(0x3C ^ (i * 29));
            cfg.secure.macKey[i] = std::uint8_t(0xA5 ^ (i * 17));
        }
        return cfg;
    }
};

/**
 * Validate a configuration before building a System from it.
 * Returns a human-readable description of the first problem found,
 * or an empty string if the config is usable. System's constructor
 * calls this and throws std::invalid_argument on failure, so a bad
 * config is a loud error, never a silently-clamped value.
 */
std::string validateConfig(const SystemConfig &cfg);

/**
 * The three persist-path optimization levers as one bundle, so CLI
 * tools, torture lanes and benches flip them consistently. The
 * levers are on by default (matching SecureParams/WpqParams since
 * they survived the microstep crash sweeps); `--opt-knobs none`
 * reproduces the paper's unoptimized machine.
 */
struct OptKnobs
{
    bool bmtPipeline = true;
    bool drainBatching = true;
    bool tagPrefetch = true;

    /** BMT pipeline window override (nullopt keeps the config's). */
    std::optional<unsigned> bmtPipelineWindow;

    bool
    any() const
    {
        return bmtPipeline || drainBatching || tagPrefetch;
    }
};

/**
 * Parse an --opt-knobs spec: "none", "all", or a comma-separated
 * subset of bmt-pipeline,drain-batch,tag-prefetch,bmt-window=N
 * naming the *exact* lever set to enable (everything unnamed is
 * off). Unknown names, an empty spec, and bmt-window=0 yield
 * nullopt — callers must reject them, never clamp.
 */
std::optional<OptKnobs> parseOptKnobs(const std::string &spec);

/**
 * Canonical spec string for a bundle ("all", "none", or the comma
 * list); parseOptKnobs(formatOptKnobs(k)) == k. Repro lines print
 * this unconditionally so they replay across default flips.
 */
std::string formatOptKnobs(const OptKnobs &knobs);

/** Apply a knob bundle to a configuration. */
void applyOptKnobs(SystemConfig &cfg, const OptKnobs &knobs);

} // namespace dolos

#endif // DOLOS_DOLOS_CONFIG_HH
