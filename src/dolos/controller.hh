/**
 * @file
 * The secure memory controller: WPQ + Mi-SU + Ma-SU (paper §4).
 *
 * One class implements every organization in Figure 5 via
 * SecurityMode, so baselines and Dolos share all machinery except
 * the placement of the security work:
 *
 *   NonSecureIdeal      persist at WPQ insert; plaintext to NVM
 *   PreWpqSecure        security engine -> WPQ -> NVM (baseline)
 *   PostWpqUnprotected  WPQ -> security engine -> NVM (infeasible)
 *   DolosFull/Partial   Mi-SU (2/1 MACs) -> WPQ -> Ma-SU -> NVM
 *   DolosPost           WPQ (Mi-SU deferred) -> Ma-SU -> NVM
 *
 * Timing uses exact timestamp simulation: the drain pipeline is
 * deterministic FIFO, so entries record their insert/persist ticks at
 * insertion and drains are processed lazily, in order, whenever
 * simulated time passes their start. A write that finds the WPQ full
 * retries every retryInterval cycles; each failed attempt is one
 * "re-try event" (paper Table 2).
 */

#ifndef DOLOS_DOLOS_CONTROLLER_HH
#define DOLOS_DOLOS_CONTROLLER_HH

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "dolos/config.hh"
#include "dolos/misu.hh"
#include "dolos/redo_log.hh"
#include "mem/hierarchy.hh"
#include "secure/security_engine.hh"
#include "sim/persist_annotations.hh"

namespace dolos
{

/** What the ADR/eADR crash path did (energy/bounds accounting). */
struct CrashDumpReport
{
    unsigned entriesDumped = 0;   ///< undrained entries flushed
    unsigned entriesInFlight = 0; ///< drains replayable via redo log
    unsigned blocksFlushed = 0;   ///< 64B units written on ADR power
    unsigned energyBytes = 0;     ///< bytes + reserved-op equivalents
    bool withinAdrBudget = true;

    // --- eADR holdup flush (EadrSecure only) ------------------------
    unsigned linesFlushed = 0;  ///< items fully drained on holdup power
    unsigned linesLost = 0;     ///< items quarantined (budget/interrupt)
    bool budgetExhausted = false;  ///< holdup energy ran out mid-flush
    bool flushInterrupted = false; ///< armed microstep killed the flush
    Cycles eadrBudgetCycles = 0;     ///< configured energy budget
    Cycles eadrEnergyUsedCycles = 0; ///< total cycles debited
    Cycles eadrCtrFetchCycles = 0;   ///< per-stage debit breakdown...
    Cycles eadrAesCycles = 0;
    Cycles eadrMacCycles = 0;
    Cycles eadrBmtCycles = 0;
    Cycles eadrNvmWriteCycles = 0;
};

/** What recovery did. */
struct ControllerRecoveryReport
{
    bool misuVerified = true;      ///< dump authentication
    std::size_t entriesRecovered = 0;
    SecureRecoveryResult engine;   ///< Ma-SU metadata recovery
    Cycles modeledRecoveryCycles = 0; ///< paper §5.5 latency model
    bool interrupted = false;  ///< power died mid-recovery (armed)
    bool resumed = false;      ///< continued an interrupted recovery
    std::size_t entriesSkipped = 0; ///< already drained earlier
};

/**
 * The memory controller (implements the hierarchy-facing interface).
 */
class SecureMemController : public PersistController
{
  public:
    SecureMemController(const SystemConfig &cfg, NvmDevice &nvm,
                        SecurityEngine &engine);

    ReadResult readBlock(Addr addr, Tick now) override;
    Tick writebackBlock(Addr addr, const Block &data, Tick now) override;
    PersistTicket persistBlock(Addr addr, const Block &data,
                               Tick now) override;
    Tick pendingPersistTick(Addr addr, Tick now) override;

    /**
     * Power failure at @p at: finish redo-log-covered drains, flush
     * the WPQ under ADR, drop all volatile state. A microstep crash
     * (power dying *inside* a drain's security work) passes
     * @p complete_in_flight = false so the interrupted drain is not
     * re-run before the dump — the entry stays undrained and the
     * redo log / re-drain reconcile it at recovery.
     *
     * In EadrSecure mode, @p eadr_lines carries the dirty cache
     * lines System captured (the eADR persistence domain); the
     * holdup flush drains them through the security pipeline under
     * the energy budget, quarantining whatever it cannot cover.
     */
    CrashDumpReport crash(Tick at, bool complete_in_flight = true,
                          const std::vector<DirtyLine> *eadr_lines =
                              nullptr);

    /** Boot-time recovery (dump verification, drain, Ma-SU recover). */
    ControllerRecoveryReport recover();

    /** Advance background drains to @p t (idle time, test hooks). */
    void drainTo(Tick t);

    /**
     * Fault injection: at the next crash, ADR power dies after
     * flushing @p surviving_entries WPQ entries — the rest of the
     * dump is torn off. One-shot; consumed by crash().
     */
    void armAdrTear(unsigned surviving_entries)
    {
        adrTear = surviving_entries;
    }

    /**
     * Fault injection: power dies again *during* the next recovery,
     * after @p after_steps interruptible recovery steps (redo replay,
     * Ma-SU metadata recovery, then one step per dump entry drained).
     * One-shot; the caller is expected to crash() + recover() again —
     * recovery resumes from the persistent journal.
     */
    void armRecoveryCrash(unsigned after_steps)
    {
        recoveryCrashArm = after_steps;
    }

    /** True while a persistent recovery journal is open (i.e. an ADR
     *  dump is still being consumed). */
    bool recoveryInProgress() const { return readJournal().has_value(); }

    SecurityMode mode() const { return cfg.mode; }
    unsigned wpqCapacity() const { return capacity; }
    const MiSu *misu() const { return misu_.get(); }

    std::uint64_t writeRequests() const { return statWrites.value(); }
    std::uint64_t retryEvents() const { return statRetries.value(); }
    std::uint64_t coalesces() const { return statCoalesces.value(); }
    std::uint64_t wpqReadHits() const { return statWpqReadHits.value(); }
    std::uint64_t drainsBatched() const { return statDrainsBatched.value(); }

    /** Cycles writes waited for a free WPQ slot (full-queue stalls). */
    std::uint64_t wpqStallCycles() const { return statStallCycles.value(); }

    /** Re-try events per kilo write requests (Table 2 metric). */
    double
    retriesPerKiloWrites() const
    {
        const auto w = writeRequests();
        return w ? 1000.0 * double(retryEvents()) / double(w) : 0.0;
    }

    stats::StatGroup &statGroup() { return stats_; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

    /** Append this manifest plus every sub-component's to @p out. */
    void collectStateManifests(
        std::vector<persist::StateManifest> &out) const;

  private:
    struct WpqEntry
    {
        std::uint64_t id = 0;
        Addr addr = 0;
        Block plaintext{};
        MisuEntryImage image{};   ///< Dolos modes
        Block ciphertext{};       ///< PreWpqSecure (secured up front)
        Tick persistTick = 0;     ///< entered the persistence domain
        bool drained = false;
        Tick releaseTick = 0;     ///< slot free (Ma-SU cleared)

        friend void
        dolosDescribeValue(std::ostream &os, const WpqEntry &e)
        {
            os << e.id << '/' << e.addr << '/'
               << persist::describe(e.plaintext) << '/'
               << persist::describe(e.image) << '/'
               << persist::describe(e.ciphertext) << '/'
               << e.persistTick << '/' << e.drained << '/'
               << e.releaseTick;
        }
    };

    /** Lazily process FIFO drains whose start time has passed. */
    void processDrainsUntil(Tick t);

    /** Drain one entry (mode-specific); sets drained/releaseTick. */
    void drainEntry(WpqEntry &e);

    /**
     * Drain batching (wpq.drainBatching): true if @p e is superseded
     * by a newer WPQ entry to the same cacheline, in which case its
     * drain is elided at issue time — the newer entry carries the
     * line's final contents and its own drain persists them.
     */
    bool supersededAtDrain(const WpqEntry &e) const;

    /** Pop released entries and retire their tag-array mappings. */
    void retireReleased(Tick t);

    /**
     * The eADR holdup flush: drain undrained WPQ entries then the
     * captured dirty cache lines through the full security pipeline
     * on residual energy, debiting per-stage cycles against the
     * budget. Items the budget (or an armed flush microstep) cannot
     * cover are quarantined with cause provenance — explicit loss,
     * never silent corruption. Fills @p report; the caller resets
     * the volatile state afterwards.
     */
    void eadrHoldupFlush(Tick at, bool complete_in_flight,
                         const std::vector<DirtyLine> *lines,
                         CrashDumpReport &report);

    /** Common write path (persists and evictions). */
    PersistTicket enqueueWrite(Addr addr, const Block &data, Tick now);

    /**
     * Raw NVM access with bounded media-error retry (modes that skip
     * the security engine still honor the device's fault flag).
     */
    ReadResult readRetried(Addr addr, Tick now);
    Tick writeRetried(Addr addr, const Block &data, Tick now);

    /** Persistent recovery-journal state (see recover()). */
    enum class RecoveryPhase : std::uint64_t
    {
        Draining = 0, ///< dump entries still being drained
        Epilogue = 1, ///< all drained; epoch/dump cleanup pending
    };
    struct RecoveryJournal
    {
        std::uint64_t drained = 0;
        RecoveryPhase phase = RecoveryPhase::Draining;
    };
    std::optional<RecoveryJournal> readJournal() const;
    void writeJournal(std::uint64_t drained, RecoveryPhase phase);
    void clearJournal();

    /** Consume one armed recovery step; true = power dies here. */
    bool recoveryStep();

    /** Recovery epilogue: retire pads, clear dump + journal. */
    void finishDump();

    /** Find the live WPQ entry currently mapping @p addr, if any. */
    WpqEntry *liveEntry(Addr addr);

    unsigned slotOf(const WpqEntry &e) const
    {
        return unsigned(e.id % capacity);
    }

    SystemConfig cfg;
    NvmDevice &nvm;
    SecurityEngine &engine;
    std::unique_ptr<MiSu> misu_;
    RedoLogBuffer redoLog;

    unsigned capacity;
    std::optional<unsigned> adrTear; ///< armed torn-ADR-drain fault
    std::optional<unsigned> recoveryCrashArm; ///< crash-mid-recovery
    std::deque<WpqEntry> wpq;
    std::uint64_t nextId = 0;
    std::uint64_t drainCursor = 0; ///< id of next entry to drain
    std::unordered_map<Addr, std::uint64_t> tagArray; ///< addr -> id
    Tick lastDrainIssue = 0; ///< FIFO issue point for non-engine drains

    stats::StatGroup stats_;
    stats::Scalar statWrites;
    stats::Scalar statPersists;
    stats::Scalar statEvictions;
    stats::Scalar statRetries;
    stats::Scalar statCoalesces;
    stats::Scalar statWpqReadHits;
    stats::Scalar statReads;
    stats::Scalar statStallCycles;
    stats::Scalar statDrainsBatched;
    stats::Average statPersistLatency;
    stats::Average statOccupancy;
    stats::Average statDrainLatency;
    stats::Histogram statPersistLatencyHist{100.0, 32};
    stats::Histogram statStallHist{500.0, 16};

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(SecureMemController);
    DOLOS_PERSISTENT(cfg);
    DOLOS_PERSISTENT(nvm);
    DOLOS_PERSISTENT(engine);
    DOLOS_PERSISTENT(misu_);
    DOLOS_PERSISTENT(redoLog);
    DOLOS_PERSISTENT(capacity);
    DOLOS_VOLATILE(adrTear);
    DOLOS_PERSISTENT(recoveryCrashArm);
    DOLOS_VOLATILE(wpq);
    DOLOS_PERSISTENT(nextId);
    DOLOS_VOLATILE(drainCursor);
    DOLOS_VOLATILE(tagArray);
    DOLOS_VOLATILE(lastDrainIssue);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statWrites);
    DOLOS_PERSISTENT(statPersists);
    DOLOS_PERSISTENT(statEvictions);
    DOLOS_PERSISTENT(statRetries);
    DOLOS_PERSISTENT(statCoalesces);
    DOLOS_PERSISTENT(statWpqReadHits);
    DOLOS_PERSISTENT(statReads);
    DOLOS_PERSISTENT(statStallCycles);
    DOLOS_PERSISTENT(statDrainsBatched);
    DOLOS_PERSISTENT(statPersistLatency);
    DOLOS_PERSISTENT(statOccupancy);
    DOLOS_PERSISTENT(statDrainLatency);
    DOLOS_PERSISTENT(statPersistLatencyHist);
    DOLOS_PERSISTENT(statStallHist);
};

} // namespace dolos

#endif // DOLOS_DOLOS_CONTROLLER_HH
