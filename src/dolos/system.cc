/**
 * @file
 * System facade implementation.
 */

#include "dolos/system.hh"

namespace dolos
{

System::System(const SystemConfig &config) : cfg(config)
{
    nvm = std::make_unique<NvmDevice>(cfg.nvm);
    eng = std::make_unique<SecurityEngine>(cfg.secure, *nvm);
    mc = std::make_unique<SecureMemController>(cfg, *nvm, *eng);
    hier = std::make_unique<CacheHierarchy>(cfg.hierarchy, *mc);
    core_ = std::make_unique<SimpleCore>(*hier);
}

CrashDumpReport
System::crash()
{
    const auto report = mc->crash(core_->now());
    hier->invalidateAll();
    core_->notifyCrash();
    return report;
}

ControllerRecoveryReport
System::recover()
{
    return mc->recover();
}

void
System::dumpStats(std::ostream &os) const
{
    core_->statGroup().dump(os, cfg.name);
    hier->statGroup().dump(os, cfg.name);
    mc->statGroup().dump(os, cfg.name);
    eng->statGroup().dump(os, cfg.name);
    nvm->statGroup().dump(os, cfg.name);
}

} // namespace dolos
