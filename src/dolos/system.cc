/**
 * @file
 * System facade implementation.
 */

#include "dolos/system.hh"

#include <stdexcept>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/stat_sampler.hh"

namespace dolos
{

System::System(const SystemConfig &config) : cfg(config)
{
    const std::string err = validateConfig(cfg);
    if (!err.empty())
        throw std::invalid_argument("invalid SystemConfig: " + err);
    nvm = std::make_unique<NvmDevice>(cfg.nvm);
    eng = std::make_unique<SecurityEngine>(cfg.secure, *nvm);
    mc = std::make_unique<SecureMemController>(cfg, *nvm, *eng);
    // The persistence-domain boundary is a machine property, not a
    // user knob: EadrSecure pulls the caches inside it (CLWB becomes
    // a completed no-op and crash() runs the holdup flush).
    HierarchyParams hp = cfg.hierarchy;
    hp.eadrDomain = cfg.mode == SecurityMode::EadrSecure;
    hier = std::make_unique<CacheHierarchy>(hp, *mc);
    core_ = std::make_unique<SimpleCore>(*hier);
}

CrashDumpReport
System::crash(bool mid_operation)
{
    CrashDumpReport report;
    if (cfg.mode == SecurityMode::EadrSecure) {
        // Capture the eADR persistence domain (every dirty line)
        // before the caches die; the controller's holdup flush
        // drains it through the security pipeline on residual
        // energy.
        std::vector<DirtyLine> lines;
        hier->collectDirtyLines(lines);
        report = mc->crash(core_->now(),
                           /*complete_in_flight=*/!mid_operation,
                           &lines);
    } else {
        report =
            mc->crash(core_->now(), /*complete_in_flight=*/!mid_operation);
    }
    hier->invalidateAll();
    core_->notifyCrash();
    return report;
}

ControllerRecoveryReport
System::recover()
{
    return mc->recover();
}

ControllerRecoveryReport
System::recoverToCompletion(unsigned *attempts_out,
                            unsigned max_attempts)
{
    auto rec = mc->recover();
    unsigned attempts = 1;
    while (rec.interrupted && attempts < max_attempts) {
        // The armed fault killed power mid-recovery: model the second
        // outage and reboot. The journal makes the retry resume, not
        // restart.
        crash();
        rec = mc->recover();
        ++attempts;
    }
    DOLOS_ASSERT(!rec.interrupted,
                 "recovery still interrupted after %u attempts",
                 attempts);
    if (attempts_out)
        *attempts_out = attempts;
    return rec;
}

void
System::attachStatSampler(stats::StatSampler *s)
{
    if (s) {
        s->addGroup(&core_->statGroup());
        s->addGroup(&hier->statGroup());
        s->addGroup(&mc->statGroup());
        s->addGroup(&eng->statGroup());
        s->addGroup(&nvm->statGroup());
    }
    core_->setStatSampler(s);
}

void
System::dumpStats(std::ostream &os) const
{
    core_->statGroup().dump(os, cfg.name);
    hier->statGroup().dump(os, cfg.name);
    mc->statGroup().dump(os, cfg.name);
    eng->statGroup().dump(os, cfg.name);
    nvm->statGroup().dump(os, cfg.name);
}

void
System::dumpStatsJson(std::ostream &os) const
{
    const std::uint64_t misu_mac =
        mc->misu() ? mc->misu()->macCycles() : 0;
    os << "{\"name\":\"" << json::escape(cfg.name) << "\",\"mode\":\""
       << securityModeName(cfg.mode) << "\"";
    // The per-write-stage cycle totals every security mode reports,
    // surfaced from the stat tree for direct consumption.
    os << ",\"breakdown\":{"
       << "\"misuMacCycles\":" << misu_mac
       << ",\"macCycles\":" << eng->macCycles()
       << ",\"bmtCycles\":" << eng->bmtCycles()
       << ",\"aesCycles\":" << eng->aesCycles()
       << ",\"ctrFetchCycles\":" << eng->ctrFetchCycles()
       << ",\"wpqStallCycles\":" << mc->wpqStallCycles()
       << ",\"fenceStallCycles\":" << core_->fenceStallCycles()
       << "}";
    os << ",\"groups\":[";
    stats::StatGroup *groups[] = {&core_->statGroup(),
                                  &hier->statGroup(), &mc->statGroup(),
                                  &eng->statGroup(), &nvm->statGroup()};
    bool first = true;
    for (auto *g : groups) {
        if (!first)
            os << ",";
        g->dumpJson(os);
        first = false;
    }
    os << "]}";
}

void
System::dumpDamageJson(std::ostream &os) const
{
    os << "{\"name\":\"" << json::escape(cfg.name) << "\",\"mode\":\""
       << securityModeName(cfg.mode) << "\""
       << ",\"attackDetected\":"
       << (attackDetected() ? "true" : "false")
       << ",\"unrecoverableMedia\":"
       << (unrecoverableMedia() ? "true" : "false")
       << ",\"media\":{"
       << "\"errorReads\":" << nvm->mediaErrorReads()
       << ",\"errorWrites\":" << nvm->mediaErrorWrites()
       << ",\"retries\":" << eng->mediaRetries()
       << ",\"healed\":" << eng->mediaHealed()
       << ",\"quarantineReads\":" << eng->quarantineReads()
       << ",\"spareRemaps\":" << nvm->remapLog().size()
       << ",\"sparesLeft\":" << nvm->sparesLeft() << "}"
       << ",\"repairs\":{"
       << "\"metaMediaFaults\":" << eng->metaMediaFaults()
       << ",\"counterBlocksRebuilt\":" << eng->counterBlocksRebuilt()
       << ",\"treeNodesRepaired\":" << eng->treeNodesRepaired()
       << ",\"macBlocksRebuilt\":" << eng->macBlocksRebuilt()
       << ",\"cascadedBlocks\":" << eng->cascadedBlocks()
       << ",\"shadowSlotsSkipped\":" << eng->shadowSlotsSkipped()
       << ",\"rootReanchored\":" << eng->rootReanchors()
       << ",\"scrubPasses\":" << eng->scrubPasses()
       << ",\"scrubRepairs\":" << eng->scrubRepairs() << "}"
       << ",\"quarantined\":[";
    bool first = true;
    for (const auto &[addr, rec] : nvm->quarantineLog()) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"addr\":" << addr << ",\"region\":\""
           << nvmRegionName(cfg.secure.map.regionOf(addr))
           << "\",\"reason\":\"" << json::escape(rec.reason)
           << "\",\"retries\":" << rec.retries << ",\"cause\":\""
           << json::escape(rec.cause) << "\"}";
    }
    os << "]}\n";
}

persist::StateManifest
System::stateManifest() const
{
    persist::StateManifest m("System");
    DOLOS_MF_CONST(m, cfg);
    DOLOS_MF_DELEGATED_P(m, nvm);
    DOLOS_MF_DELEGATED_P(m, eng);
    DOLOS_MF_DELEGATED_P(m, mc);
    DOLOS_MF_DELEGATED_P(m, hier);
    DOLOS_MF_DELEGATED_P(m, core_);
    return m;
}

std::vector<persist::StateManifest>
System::collectStateManifests() const
{
    std::vector<persist::StateManifest> out;
    out.push_back(stateManifest());
    out.push_back(core_->stateManifest());
    out.push_back(hier->stateManifest());
    out.push_back(hier->l1().stateManifest("l1"));
    out.push_back(hier->l2().stateManifest("l2"));
    out.push_back(hier->llc().stateManifest("llc"));
    mc->collectStateManifests(out);
    eng->collectStateManifests(out);
    out.push_back(nvm->stateManifest());
    // The ADR crash dump and the recovery journal are the two NVM
    // regions the crash path itself legitimately (re)writes; the
    // cell-array round-trip check excludes them.
    const AddressMap map = cfg.secure.map;
    out.push_back(nvm->store().stateManifest([map](Addr a) {
        const auto region = map.regionOf(a);
        return region == NvmRegion::WpqDump ||
               region == NvmRegion::RecoveryJournal;
    }));
    return out;
}

} // namespace dolos
