/**
 * @file
 * Ma-SU persistent redo-log buffer (paper Figure 11).
 *
 * Before Ma-SU overwrites the metadata caches and NVM for a drained
 * WPQ entry, it stages every tentative result — ciphertext, data MAC,
 * counter, tentative tree root — in on-chip persistent registers and
 * only then sets the ready bit. A crash between "ready" and the
 * completion of step 3/4 is recovered by replaying the log; a crash
 * before "ready" discards it and re-processes the WPQ entry.
 */

#ifndef DOLOS_DOLOS_REDO_LOG_HH
#define DOLOS_DOLOS_REDO_LOG_HH

#include "crypto/mac_engine.hh"
#include "mem/block.hh"
#include "sim/persist_annotations.hh"

namespace dolos
{

/** The staged results of one Ma-SU drain step. */
struct RedoLogRecord
{
    Addr addr = 0;
    Block ciphertext{};
    crypto::MacTag dataMac{};
    std::uint64_t counter = 0;
    crypto::MacTag tempRoot{};
};

inline void
dolosDescribeValue(std::ostream &os, const RedoLogRecord &r)
{
    os << r.addr << '/' << persist::describe(r.ciphertext) << '/'
       << persist::describe(r.dataMac) << '/' << r.counter << '/'
       << persist::describe(r.tempRoot);
}

/** On-chip persistent redo-log buffer with a ready bit. */
class RedoLogBuffer
{
  public:
    /** Stage a record; the ready bit is set atomically last. */
    void
    fill(const RedoLogRecord &record)
    {
        rec = record;
        ready_ = true;
    }

    /** Clear the ready bit after step 3/4 complete. */
    void clear() { ready_ = false; }

    /** True if a staged record awaits replay. */
    bool ready() const { return ready_; }

    /** The staged record (valid only when ready()). */
    const RedoLogRecord &record() const { return rec; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    RedoLogRecord rec;
    bool ready_ = false;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(RedoLogBuffer);
    DOLOS_PERSISTENT(rec);
    DOLOS_PERSISTENT(ready_);
};

} // namespace dolos

#endif // DOLOS_DOLOS_REDO_LOG_HH
