/**
 * @file
 * Secure memory controller implementation.
 */

#include "dolos/controller.hh"

#include "sim/crash_points.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"

namespace dolos
{

namespace
{
constexpr std::uint64_t dumpMarker = 0x57505144554D5031ULL; // "WPQDUMP1"
constexpr std::uint64_t journalMarker = 0x5245434A524E4C31ULL; // "RECJRNL1"
} // namespace

const char *
securityModeName(SecurityMode mode)
{
    switch (mode) {
      case SecurityMode::NonSecureIdeal:
        return "NonSecureIdeal";
      case SecurityMode::PreWpqSecure:
        return "PreWpqSecure";
      case SecurityMode::PostWpqUnprotected:
        return "PostWpqUnprotected";
      case SecurityMode::DolosFullWpq:
        return "Dolos-Full-WPQ";
      case SecurityMode::DolosPartialWpq:
        return "Dolos-Partial-WPQ";
      case SecurityMode::DolosPostWpq:
        return "Dolos-Post-WPQ";
      case SecurityMode::EadrSecure:
        return "Eadr-Secure";
    }
    return "?";
}

bool
isDolosMode(SecurityMode mode)
{
    return mode == SecurityMode::DolosFullWpq ||
           mode == SecurityMode::DolosPartialWpq ||
           mode == SecurityMode::DolosPostWpq;
}

bool
securityAfterWpq(SecurityMode mode)
{
    return isDolosMode(mode) ||
           mode == SecurityMode::PostWpqUnprotected ||
           mode == SecurityMode::EadrSecure;
}

std::optional<SecurityMode>
parseSecurityMode(const std::string &name)
{
    if (name == "ideal")
        return SecurityMode::NonSecureIdeal;
    if (name == "baseline")
        return SecurityMode::PreWpqSecure;
    if (name == "post-unprotected")
        return SecurityMode::PostWpqUnprotected;
    if (name == "dolos-full" || name == "full_wpq")
        return SecurityMode::DolosFullWpq;
    if (name == "dolos-partial" || name == "partial_wpq")
        return SecurityMode::DolosPartialWpq;
    if (name == "dolos-post" || name == "post_wpq")
        return SecurityMode::DolosPostWpq;
    if (name == "eadr")
        return SecurityMode::EadrSecure;
    return std::nullopt;
}

std::string
validateConfig(const SystemConfig &cfg)
{
    const auto &w = cfg.wpq;
    if (w.adrBudgetEntries == 0)
        return "wpq.adrBudgetEntries must be nonzero";
    if (w.entriesFor(cfg.mode) == 0)
        return std::string("WPQ for mode ") +
               securityModeName(cfg.mode) + " has zero usable entries";
    if (w.partialEntries > w.adrBudgetEntries)
        return "wpq.partialEntries exceeds the ADR budget";
    if (w.postEntries > w.adrBudgetEntries)
        return "wpq.postEntries exceeds the ADR budget";
    if (w.retryInterval == 0)
        return "wpq.retryInterval must be nonzero (insertion retries "
               "would not advance time)";
    if (cfg.nvm.numBanks == 0)
        return "nvm.numBanks must be nonzero";
    if (cfg.secure.functionalLeaves == 0)
        return "secure.functionalLeaves must be nonzero";
    if (cfg.secure.map.protectedBytes == 0)
        return "secure.map.protectedBytes must be nonzero";
    if (cfg.secure.crashScheme == CrashScheme::Osiris &&
        cfg.secure.osirisStopLoss == 0)
        return "secure.osirisStopLoss must be nonzero under Osiris";
    if (cfg.secure.macOpsEagerWrite == 0 ||
        cfg.secure.macOpsLazyWrite == 0)
        return "secure.macOps per write must be nonzero";
    if (cfg.secure.bmtPipeline && cfg.secure.bmtPipelineWindow == 0)
        return "secure.bmtPipelineWindow must be nonzero when "
               "bmtPipeline is enabled";
    if (cfg.mode == SecurityMode::EadrSecure &&
        cfg.eadr.energyBudgetCycles == 0)
        return "eadr.energyBudgetCycles must be nonzero in eADR mode "
               "(the holdup flush could never admit a line)";
    return "";
}

std::optional<OptKnobs>
parseOptKnobs(const std::string &spec)
{
    // The spec names the *exact* lever set — it does not toggle on
    // top of the defaults, so a repro line parses to the same machine
    // whatever the defaults of the build that replays it.
    OptKnobs knobs;
    knobs.bmtPipeline = false;
    knobs.drainBatching = false;
    knobs.tagPrefetch = false;
    if (spec == "none")
        return knobs;
    if (spec == "all") {
        knobs.bmtPipeline = true;
        knobs.drainBatching = true;
        knobs.tagPrefetch = true;
        return knobs;
    }
    if (spec.empty())
        return std::nullopt;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string name =
            spec.substr(pos, comma == std::string::npos ? spec.size() - pos
                                                        : comma - pos);
        if (name == "bmt-pipeline")
            knobs.bmtPipeline = true;
        else if (name == "drain-batch")
            knobs.drainBatching = true;
        else if (name == "tag-prefetch")
            knobs.tagPrefetch = true;
        else if (name.rfind("bmt-window=", 0) == 0) {
            const std::string val = name.substr(11);
            if (val.empty())
                return std::nullopt;
            unsigned window = 0;
            for (const char c : val) {
                if (c < '0' || c > '9')
                    return std::nullopt;
                window = window * 10 + unsigned(c - '0');
                if (window > 1u << 16)
                    return std::nullopt;
            }
            if (window == 0)
                return std::nullopt; // reject, never clamp
            knobs.bmtPipelineWindow = window;
        } else {
            return std::nullopt;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return knobs;
}

std::string
formatOptKnobs(const OptKnobs &knobs)
{
    // Canonical spec: parseOptKnobs(formatOptKnobs(k)) == k. The
    // "all"/"none" shortcuts only apply when no window override is
    // set, because "none,bmt-window=N" would not re-parse.
    const bool all =
        knobs.bmtPipeline && knobs.drainBatching && knobs.tagPrefetch;
    const bool none =
        !knobs.bmtPipeline && !knobs.drainBatching && !knobs.tagPrefetch;
    if (!knobs.bmtPipelineWindow) {
        if (all)
            return "all";
        if (none)
            return "none";
    }
    std::string out;
    const auto append = [&out](const char *item) {
        if (!out.empty())
            out += ',';
        out += item;
    };
    if (knobs.bmtPipeline)
        append("bmt-pipeline");
    if (knobs.drainBatching)
        append("drain-batch");
    if (knobs.tagPrefetch)
        append("tag-prefetch");
    if (knobs.bmtPipelineWindow) {
        if (!out.empty())
            out += ',';
        out += "bmt-window=" +
               std::to_string(*knobs.bmtPipelineWindow);
    }
    return out;
}

void
applyOptKnobs(SystemConfig &cfg, const OptKnobs &knobs)
{
    cfg.secure.bmtPipeline = knobs.bmtPipeline;
    cfg.wpq.drainBatching = knobs.drainBatching;
    cfg.secure.tagPrefetch = knobs.tagPrefetch;
    if (knobs.bmtPipelineWindow)
        cfg.secure.bmtPipelineWindow = *knobs.bmtPipelineWindow;
}

SecureMemController::SecureMemController(const SystemConfig &cfg,
                                         NvmDevice &nvm,
                                         SecurityEngine &engine)
    : cfg(cfg),
      nvm(nvm),
      engine(engine),
      capacity(cfg.wpq.entriesFor(cfg.mode)),
      stats_("mc")
{
    if (isDolosMode(cfg.mode)) {
        // Mi-SU's pad key is derived from (distinct from) the data key.
        crypto::AesKey misu_key = cfg.secure.dataKey;
        misu_key[0] ^= 0xD5;
        misu_ = std::make_unique<MiSu>(cfg.mode, capacity,
                                       cfg.wpq.misuMacLatency, misu_key,
                                       engine.macEngine());
    }

    stats_.addScalar(&statWrites, "writeRequests",
                     "writes arriving at the controller");
    stats_.addScalar(&statPersists, "persists", "CLWB-path writes");
    stats_.addScalar(&statEvictions, "evictions", "LLC writebacks");
    stats_.addScalar(&statRetries, "retryEvents",
                     "insertion attempts that found the WPQ full");
    stats_.addScalar(&statCoalesces, "coalesces",
                     "writes merged into a live WPQ entry");
    stats_.addScalar(&statWpqReadHits, "wpqReadHits",
                     "reads served from the WPQ tag array");
    stats_.addScalar(&statReads, "reads", "reads reaching the controller");
    stats_.addScalar(&statStallCycles, "wpqStallCycles",
                     "cycles writes waited for a free WPQ slot");
    stats_.addScalar(&statDrainsBatched, "drainsBatched",
                     "drains elided because a newer same-line entry "
                     "supersedes them (drainBatching)");
    stats_.addAverage(&statPersistLatency, "persistLatency",
                      "cycles from arrival to persistence");
    stats_.addAverage(&statOccupancy, "occupancy",
                      "WPQ entries in use at insertion");
    stats_.addAverage(&statDrainLatency, "drainLatency",
                      "cycles from persist to Ma-SU clear");
    stats_.addHistogram(&statPersistLatencyHist, "persistLatencyHist",
                        "distribution of arrival-to-persist cycles");
    stats_.addHistogram(&statStallHist, "wpqStallHist",
                        "distribution of full-WPQ stall cycles");
    if (misu_)
        stats_.addChild(&misu_->statGroup());
}

SecureMemController::WpqEntry *
SecureMemController::liveEntry(Addr addr)
{
    const auto it = tagArray.find(blockAlign(addr));
    if (it == tagArray.end())
        return nullptr;
    const std::uint64_t id = it->second;
    if (wpq.empty() || id < wpq.front().id)
        return nullptr;
    const std::size_t idx = std::size_t(id - wpq.front().id);
    DOLOS_ASSERT(idx < wpq.size(), "tag array points past WPQ");
    return &wpq[idx];
}

ReadResult
SecureMemController::readRetried(Addr addr, Tick now)
{
    DOLOS_PROF_SCOPE(Controller);
    if (nvm.isQuarantined(addr))
        return {zeroBlock(), now + cfg.nvm.readLatency};
    ReadResult r = nvm.read(addr, now);
    unsigned attempts = 0;
    while (nvm.lastReadMediaError() &&
           attempts < cfg.secure.mediaRetryLimit) {
        ++attempts;
        r = nvm.read(addr, r.completeTick +
                               (cfg.secure.mediaRetryBackoff
                                << (attempts - 1)));
    }
    if (nvm.lastReadMediaError()) {
        nvm.quarantine(addr, "uncorrectable media fault (raw read)",
                       attempts);
        return {zeroBlock(), r.completeTick};
    }
    return r;
}

Tick
SecureMemController::writeRetried(Addr addr, const Block &data, Tick now)
{
    DOLOS_PROF_SCOPE(Controller);
    Tick done = nvm.write(addr, data, now);
    unsigned attempts = 0;
    while (nvm.lastWriteMediaError() &&
           attempts < cfg.secure.mediaRetryLimit) {
        ++attempts;
        done = nvm.write(addr, data,
                         done + (cfg.secure.mediaRetryBackoff
                                 << (attempts - 1)));
    }
    if (nvm.lastWriteMediaError())
        nvm.quarantine(addr, "write failure persisted through retries",
                       attempts);
    return done;
}

void
SecureMemController::drainEntry(WpqEntry &e)
{
    const Tick start = e.persistTick;
    Tick done;
    switch (cfg.mode) {
      case SecurityMode::NonSecureIdeal:
        // Plain NVM write of the buffered data.
        done = writeRetried(e.addr, e.plaintext,
                            std::max(start, lastDrainIssue));
        lastDrainIssue = std::max(lastDrainIssue, start);
        break;
      case SecurityMode::PreWpqSecure:
        // Already secured before insertion: just the NVM write.
        done = writeRetried(e.addr, e.ciphertext,
                            std::max(start, lastDrainIssue));
        lastDrainIssue = std::max(lastDrainIssue, start);
        break;
      default: {
        // Ma-SU: decrypt (1-cycle XOR), full backend security, then
        // the NVM data write. Tentative results are staged in the
        // persistent redo log before the caches/NVM are touched, and
        // the entry is cleared once the log is filled (paper: steps
        // 3 and 4 proceed in parallel once the log is ready).
        DOLOS_CRASH_POINT(WpqDrainIssue);
        const auto res = engine.secureWrite(e.addr, e.plaintext,
                                            start + 1);
        redoLog.fill({e.addr, res.ciphertext, res.macTag, res.counter,
                      engine.persistentRoot()});
        // The write's commit point: the engine's root/shadow flip and
        // the redo record land as one group, so a crash here replays
        // the ciphertext from the log and the recovered counters meet
        // the new root. No crash point sits between the engine's
        // commit group and this fill.
        DOLOS_CRASH_POINT(MasuRootCommit);
        engine.writeCiphertext(e.addr, res.ciphertext, res.doneTick);
        DOLOS_CRASH_POINT(WpqCtWrite);
        redoLog.clear();
        // Log cleared but WPQ/Mi-SU slot not yet released: the entry
        // still dumps on power loss and re-drains idempotently.
        DOLOS_CRASH_POINT(WpqRedoClear);
        done = res.doneTick;
        if (misu_)
            misu_->clearSlot(slotOf(e));
        break;
      }
    }
    e.drained = true;
    e.releaseTick = done;
    statDrainLatency.sample(double(done - e.persistTick));
    DOLOS_TRACE(trace::Stage::WpqDrain, e.persistTick, done, e.addr,
                e.id);
    debugPrintf("Wpq", "drain id=%llu addr=0x%llx done=%llu",
                (unsigned long long)e.id, (unsigned long long)e.addr,
                (unsigned long long)done);
}

bool
SecureMemController::supersededAtDrain(const WpqEntry &e) const
{
    const auto it = tagArray.find(e.addr);
    // The tag array always maps an address to its *newest* WPQ entry,
    // and FIFO order means that entry is still queued behind e (it
    // cannot have retired while e sits in front of it). A mismatched
    // id therefore proves a newer same-line entry exists.
    return it != tagArray.end() && it->second != e.id;
}

void
SecureMemController::processDrainsUntil(Tick t)
{
    DOLOS_PROF_SCOPE(Controller);
    while (!wpq.empty() && drainCursor <= wpq.back().id) {
        const std::size_t idx = std::size_t(drainCursor - wpq.front().id);
        WpqEntry &e = wpq[idx];
        // A drain starts the cycle after the entry commits, once the
        // drain server (security engine / NVM issue point) frees up.
        Tick start = e.persistTick + 1;
        if (securityAfterWpq(cfg.mode)) {
            start = std::max(start, engine.busyUntil());
        } else {
            start = std::max(start, lastDrainIssue);
        }
        if (start > t)
            break;
        if (cfg.wpq.drainBatching && supersededAtDrain(e)) {
            // Same-line merge at drain issue: the newer entry holds
            // the line's final contents and its own (later) drain
            // persists them, so this entry's security work and NVM
            // write are elided. The slot frees immediately; WPQ and
            // Mi-SU accounting stay exact.
            e.drained = true;
            e.releaseTick = start;
            ++statDrainsBatched;
            statDrainLatency.sample(double(start - e.persistTick));
            if (misu_)
                misu_->clearSlot(slotOf(e));
            DOLOS_TRACE(trace::Stage::WpqBatch, e.persistTick, start,
                        e.addr, e.id);
            debugPrintf("Wpq",
                        "batch id=%llu addr=0x%llx superseded",
                        (unsigned long long)e.id,
                        (unsigned long long)e.addr);
            // Elide applied: the slot is free and the line's final
            // contents now ride exclusively on the (undrained, still
            // dumped) newer entry.
            DOLOS_CRASH_POINT(WpqDrainElide);
        } else {
            drainEntry(e);
        }
        ++drainCursor;
    }
    retireReleased(t);
}

void
SecureMemController::retireReleased(Tick t)
{
    while (!wpq.empty() && wpq.front().drained &&
           wpq.front().releaseTick <= t) {
        const WpqEntry &e = wpq.front();
        const auto it = tagArray.find(e.addr);
        if (it != tagArray.end() && it->second == e.id)
            tagArray.erase(it);
        wpq.pop_front();
    }
}

PersistTicket
SecureMemController::enqueueWrite(Addr addr, const Block &data, Tick now)
{
    ++statWrites;
    processDrainsUntil(now);
    Tick t = now + cfg.wpq.mcTransitLatency;

    // Write coalescing: merge into a live, not-yet-drained entry.
    if (cfg.wpq.coalescing) {
        WpqEntry *e = liveEntry(addr);
        if (e && !e->drained && e->id >= drainCursor) {
            ++statCoalesces;
            e->plaintext = data;
            switch (cfg.mode) {
              case SecurityMode::PreWpqSecure: {
                // Still in front of the WPQ conceptually; the merged
                // data re-runs the security engine.
                const auto res = engine.secureWrite(addr, data, t);
                e->ciphertext = res.ciphertext;
                t = res.doneTick;
                break;
              }
              case SecurityMode::NonSecureIdeal:
              case SecurityMode::PostWpqUnprotected:
              case SecurityMode::EadrSecure:
                break;
              default:
                t = misu_->acceptableAt(t) + misu_->insertLatency();
                e->image = misu_->protect(slotOf(*e), addr, data, t);
                break;
            }
            e->persistTick = std::max(e->persistTick, t);
            statPersistLatency.sample(double(e->persistTick - now));
            statPersistLatencyHist.sample(double(e->persistTick - now));
            DOLOS_TRACE(trace::Stage::WpqCoalesce, now, e->persistTick,
                        e->addr, e->id);
            return {now + cfg.wpq.mcTransitLatency, e->persistTick};
        }
    }

    // Mode-specific front processing before the WPQ.
    Block pre_ct{};
    if (cfg.mode == SecurityMode::PreWpqSecure) {
        const auto res = engine.secureWrite(addr, data, t);
        pre_ct = res.ciphertext;
        t = res.doneTick;
    }

    // Wait for a free WPQ slot, then pay the Mi-SU critical-path
    // latency and commit. An insertion that finds the queue full is
    // one re-try event (Table 2's metric); the request then re-polls
    // every retryInterval cycles until a drain frees a slot.
    statOccupancy.sample(double(wpq.size()));
    if (wpq.size() >= capacity)
        ++statRetries;
    const Tick stall_from = t;
    while (wpq.size() >= capacity) {
        t += cfg.wpq.retryInterval;
        processDrainsUntil(t);
    }
    if (t > stall_from) {
        statStallCycles += t - stall_from;
        statStallHist.sample(double(t - stall_from));
        DOLOS_TRACE(trace::Stage::WpqStall, stall_from, t, addr,
                    nextId);
        debugPrintf("Wpq", "full: addr=0x%llx stalled %llu cycles",
                    (unsigned long long)addr,
                    (unsigned long long)(t - stall_from));
    }

    WpqEntry e;
    e.id = nextId++;
    e.addr = blockAlign(addr);
    e.plaintext = data;

    switch (cfg.mode) {
      case SecurityMode::NonSecureIdeal:
      case SecurityMode::PostWpqUnprotected:
      case SecurityMode::EadrSecure:
        e.persistTick = t;
        break;
      case SecurityMode::PreWpqSecure:
        e.ciphertext = pre_ct;
        e.persistTick = t;
        break;
      case SecurityMode::DolosFullWpq:
      case SecurityMode::DolosPartialWpq: {
        t = misu_->acceptableAt(t) + misu_->insertLatency();
        e.image = misu_->protect(unsigned(e.id % capacity), e.addr,
                                 data, t);
        e.persistTick = t;
        break;
      }
      case SecurityMode::DolosPostWpq: {
        // Accepted as soon as the unit is free; the MAC runs after.
        t = misu_->acceptableAt(t);
        e.persistTick = t;
        e.image = misu_->protect(unsigned(e.id % capacity), e.addr,
                                 data, t);
        break;
      }
    }

    wpq.push_back(e);
    tagArray[e.addr] = e.id;

    // Tag prefetch: the entry will sit in the WPQ until the Ma-SU
    // drains it — warm its counter block now so the drain-time fetch
    // overlaps the queue wait. Only modes whose engine runs *after*
    // the WPQ benefit; the engine enforces the tagPrefetch knob and
    // the never-evict-dirty rule.
    if (securityAfterWpq(cfg.mode))
        engine.prefetchCounter(e.addr);

    statPersistLatency.sample(double(e.persistTick - now));
    statPersistLatencyHist.sample(double(e.persistTick - now));
    DOLOS_TRACE(trace::Stage::WpqInsert, now, e.persistTick, e.addr,
                e.id);
    return {now + cfg.wpq.mcTransitLatency, e.persistTick};
}

PersistTicket
SecureMemController::persistBlock(Addr addr, const Block &data, Tick now)
{
    ++statPersists;
    return enqueueWrite(addr, data, now);
}

Tick
SecureMemController::writebackBlock(Addr addr, const Block &data,
                                    Tick now)
{
    ++statEvictions;
    enqueueWrite(addr, data, now);
    return now + cfg.wpq.mcTransitLatency;
}

Tick
SecureMemController::pendingPersistTick(Addr addr, Tick now)
{
    processDrainsUntil(now);
    if (const WpqEntry *e = liveEntry(addr))
        return std::max(now, e->persistTick);
    return now;
}

ReadResult
SecureMemController::readBlock(Addr addr, Tick now)
{
    ++statReads;
    processDrainsUntil(now);
    const Tick t = now + cfg.wpq.mcTransitLatency;

    // Reads hitting the WPQ are served via the volatile tag array;
    // decrypting the entry is a single XOR (paper §4.5).
    if (const WpqEntry *e = liveEntry(addr)) {
        ++statWpqReadHits;
        return {e->plaintext, t + 1};
    }

    if (cfg.mode == SecurityMode::NonSecureIdeal)
        return readRetried(blockAlign(addr), t);
    return engine.secureRead(blockAlign(addr), t);
}

void
SecureMemController::drainTo(Tick t)
{
    processDrainsUntil(t);
}

std::optional<SecureMemController::RecoveryJournal>
SecureMemController::readJournal() const
{
    const Block j = nvm.readFunctional(AddressMap::recoveryJournalAddr());
    if (loadWord(j, 0) != journalMarker)
        return std::nullopt;
    RecoveryJournal journal;
    journal.drained = loadWord(j, 8);
    journal.phase = RecoveryPhase(loadWord(j, 16));
    return journal;
}

void
SecureMemController::writeJournal(std::uint64_t drained,
                                  RecoveryPhase phase)
{
    Block j{};
    storeWord(j, 0, journalMarker);
    storeWord(j, 8, drained);
    storeWord(j, 16, std::uint64_t(phase));
    nvm.writeFunctional(AddressMap::recoveryJournalAddr(), j);
}

void
SecureMemController::clearJournal()
{
    nvm.writeFunctional(AddressMap::recoveryJournalAddr(), zeroBlock());
}

bool
SecureMemController::recoveryStep()
{
    if (!recoveryCrashArm)
        return false;
    if (*recoveryCrashArm == 0) {
        recoveryCrashArm.reset();
        return true;
    }
    --*recoveryCrashArm;
    return false;
}

void
SecureMemController::finishDump()
{
    // Pads are never reused after being exposed by a dump. Replaying
    // this epilogue after an interruption merely skips an epoch.
    misu_->advanceEpoch();
    nvm.writeFunctional(AddressMap::wpqDumpBase, zeroBlock());
    clearJournal();
}

void
SecureMemController::eadrHoldupFlush(Tick at, bool complete_in_flight,
                                     const std::vector<DirtyLine> *lines,
                                     CrashDumpReport &report)
{
    report.eadrBudgetCycles = cfg.eadr.energyBudgetCycles;

    // Pre-failure lazy work: drains that were already due finish on
    // the ADR grace window, not on holdup energy. An armed flush
    // microstep can fire inside these too — the machine is then off
    // before the flush proper even starts.
    bool interrupted = false;
    const char *interrupted_at = "";
    if (complete_in_flight) {
        try {
            processDrainsUntil(at);
        } catch (const crashpoint::MicrostepCrash &c) {
            interrupted = true;
            interrupted_at = crashpoint::stepName(c.step);
        }
    }

    // An interrupted drain may have left a ready redo record whose
    // ciphertext belongs to a counter the engine already committed.
    // Apply and retire it now, before the owning entry re-drains
    // below — replaying it at recovery, after the flush bumped the
    // counter again, would pair stale ciphertext with a newer
    // counter and false-alarm the MAC check.
    if (redoLog.ready()) {
        const auto &rec = redoLog.record();
        // No crash hooks here: the replay is idempotent — if power
        // dies before these lines, recovery applies the same record —
        // so no new machine state is reachable by crashing inside it.
        nvm.writeFunctional(rec.addr, rec.ciphertext); // dolos-lint: allow(crash-cover)
        redoLog.clear(); // dolos-lint: allow(crash-cover)
    }

    // The flush list, in the documented deterministic order:
    // undrained WPQ entries in FIFO order first (oldest data, so a
    // later duplicate overwrites it), then the captured dirty cache
    // lines (newest copies, L1 > L2 > LLC). Every item is inside the
    // eADR persistence domain — whatever the flush cannot cover is
    // committed-by-contract data that must be reported lost.
    std::vector<DirtyLine> items;
    for (const auto &e : wpq)
        if (!e.drained)
            items.push_back({e.addr, e.plaintext});
    report.entriesDumped = unsigned(items.size());
    if (lines)
        items.insert(items.end(), lines->begin(), lines->end());

    std::size_t flushed = 0;
    if (!interrupted) {
        try {
            Tick t = at;
            for (const auto &item : items) {
                // Admission control: a line starts only while energy
                // remains; an admitted line always completes (the
                // capacitor bank keeps one worst-case line of
                // margin). This is what makes the surviving prefix
                // well-defined.
                if (report.eadrEnergyUsedCycles >=
                    cfg.eadr.energyBudgetCycles) {
                    report.budgetExhausted = true;
                    DOLOS_CRASH_POINT(EadrBudgetExhausted);
                    break;
                }
                const auto ctr0 = engine.ctrFetchCycles();
                const auto aes0 = engine.aesCycles();
                const auto mac0 = engine.macCycles();
                const auto bmt0 = engine.bmtCycles();
                DOLOS_CRASH_POINT(EadrLineSelect);
                const auto res =
                    engine.secureWrite(item.addr, item.data, t);
                engine.writeCiphertext(item.addr, res.ciphertext,
                                       res.doneTick);
                DOLOS_CRASH_POINT(EadrNvmWrite);
                t = res.doneTick;
                const Cycles ctr_c = engine.ctrFetchCycles() - ctr0;
                const Cycles aes_c = engine.aesCycles() - aes0;
                const Cycles mac_c = engine.macCycles() - mac0;
                const Cycles bmt_c = engine.bmtCycles() - bmt0;
                report.eadrCtrFetchCycles += ctr_c;
                report.eadrAesCycles += aes_c;
                report.eadrMacCycles += mac_c;
                report.eadrBmtCycles += bmt_c;
                report.eadrNvmWriteCycles += cfg.nvm.writeLatency;
                report.eadrEnergyUsedCycles +=
                    ctr_c + aes_c + mac_c + bmt_c + cfg.nvm.writeLatency;
                ++flushed;
            }
        } catch (const crashpoint::MicrostepCrash &c) {
            // Power died during the power-fail flush: the item being
            // processed did not complete. Everything before it did.
            interrupted = true;
            interrupted_at = crashpoint::stepName(c.step);
        }
    }
    report.linesFlushed = unsigned(flushed);
    report.blocksFlushed = unsigned(flushed);
    report.flushInterrupted = interrupted;

    // Graceful degradation: the un-flushed tail would otherwise be
    // silent corruption (under eADR a store is persistent-by-
    // contract the moment it lands in the cache). Quarantine each
    // lost address with cause provenance so reads degrade loudly and
    // dumpDamageJson explains what happened.
    if (flushed < items.size()) {
        std::string cause = report.budgetExhausted
                                ? "eadr_flush_budget_exhausted"
                                : std::string("eadr_flush_interrupted@") +
                                      interrupted_at;
        for (std::size_t i = flushed; i < items.size(); ++i) {
            if (nvm.isQuarantined(items[i].addr))
                continue;
            nvm.quarantine(items[i].addr,
                           "eADR holdup flush could not cover this line",
                           0, cause);
            ++report.linesLost;
        }
    }
    report.withinAdrBudget =
        !report.budgetExhausted && !report.flushInterrupted;
    report.energyBytes = unsigned(flushed) * 64;
}

CrashDumpReport
SecureMemController::crash(Tick at, bool complete_in_flight,
                           const std::vector<DirtyLine> *eadr_lines)
{
    if (cfg.mode == SecurityMode::EadrSecure) {
        // eADR: no Mi-SU dump, no recovery journal — the holdup
        // flush fully drains (or loudly quarantines) everything in
        // the persistence domain, then the volatile state dies.
        CrashDumpReport report;
        eadrHoldupFlush(at, complete_in_flight, eadr_lines, report);
        adrTear.reset();
        wpq.clear();
        tagArray.clear();
        drainCursor = nextId;
        lastDrainIssue = 0;
        engine.crash();
        nvm.crash();
        return report;
    }

    // An op-boundary power failure gives the drain server its ADR
    // grace: everything due by @p at finishes. A microstep crash is
    // *inside* a drain — re-running the interrupted entry's security
    // work before dumping would double-apply it, so the WPQ is dumped
    // exactly as the failure found it.
    if (complete_in_flight)
        processDrainsUntil(at);
    CrashDumpReport report;

    // A power failure while recovery is still consuming an ADR dump:
    // the WPQ holds no new writes, and rewriting the dump header
    // below would orphan the undrained entries. Preserve the dump
    // and the journal; the restarted recovery resumes from them.
    if (isDolosMode(cfg.mode) && readJournal()) {
        adrTear.reset();
        wpq.clear();
        tagArray.clear();
        drainCursor = nextId;
        lastDrainIssue = 0;
        if (misu_)
            misu_->crash();
        engine.crash();
        nvm.crash();
        return report;
    }

    // Entries whose drain started are covered by the redo log.
    for (const auto &e : wpq)
        if (e.drained && e.releaseTick > at)
            ++report.entriesInFlight;

    std::vector<const WpqEntry *> undrained;
    for (const auto &e : wpq)
        if (!e.drained)
            undrained.push_back(&e);
    report.entriesDumped = unsigned(undrained.size());

    // Injected torn-drain fault: ADR power dies after this many
    // entries; the remainder of the flush never reaches NVM.
    const unsigned flush_limit =
        adrTear ? std::min(*adrTear, unsigned(undrained.size()))
                : unsigned(undrained.size());
    adrTear.reset();

    switch (cfg.mode) {
      case SecurityMode::NonSecureIdeal:
        // ADR flushes the plaintext WPQ to the home locations.
        for (unsigned i = 0; i < flush_limit; ++i)
            nvm.writeFunctional(undrained[i]->addr,
                                undrained[i]->plaintext);
        report.blocksFlushed = report.entriesDumped * 2;
        report.energyBytes = report.entriesDumped * 72;
        break;

      case SecurityMode::PreWpqSecure:
        // Entries are already secured ciphertext: flush home.
        for (unsigned i = 0; i < flush_limit; ++i)
            nvm.writeFunctional(undrained[i]->addr,
                                undrained[i]->ciphertext);
        report.blocksFlushed = report.entriesDumped * 2;
        report.energyBytes = report.entriesDumped * 72;
        break;

      case SecurityMode::PostWpqUnprotected:
        // The infeasible design: full security processing of every
        // pending entry on backup power. Modeled for Figure 6; the
        // report flags the budget violation.
        for (unsigned i = 0; i < flush_limit; ++i) {
            const auto res = engine.secureWrite(
                undrained[i]->addr, undrained[i]->plaintext, at);
            nvm.writeFunctional(undrained[i]->addr, res.ciphertext);
        }
        report.blocksFlushed = report.entriesDumped * 2;
        report.energyBytes = report.entriesDumped * 72 +
                             report.entriesDumped * 2048;
        report.withinAdrBudget = report.entriesDumped == 0;
        break;

      default: {
        // Dolos: flush the Mi-SU-protected images to the dump
        // region; no cryptography runs on ADR power.
        Block header{};
        storeWord(header, 0, dumpMarker);
        storeWord(header, 8, undrained.size());
        storeWord(header, 16, std::uint64_t(cfg.mode));
        nvm.writeFunctional(AddressMap::wpqDumpBase, header);
        ++report.blocksFlushed;

        unsigned i = 0;
        for (const auto *e : undrained) {
            if (i >= flush_limit)
                break;
            const Addr base = AddressMap::wpqDumpAddr(1 + i);
            nvm.writeFunctional(base, e->image.ctData);
            Block meta{};
            storeWord(meta, 0, e->image.ctAddr);
            std::memcpy(meta.data() + 8, e->image.mac.data(), 8);
            storeWord(meta, 16, slotOf(*e));
            nvm.writeFunctional(base + blockSize, meta);
            report.blocksFlushed += 2;
            ++i;
        }
        const unsigned entry_bytes =
            cfg.mode == SecurityMode::DolosFullWpq ? 72 : 80;
        report.energyBytes = 64 + report.entriesDumped * entry_bytes;
        if (cfg.mode == SecurityMode::DolosPostWpq)
            report.energyBytes += 252; // reserved deferred-MAC energy
        const unsigned budget = 64 + cfg.wpq.adrBudgetEntries * 72;
        report.withinAdrBudget = report.energyBytes <= budget;
        break;
      }
    }

    // Volatile state dies with the power.
    wpq.clear();
    tagArray.clear();
    drainCursor = nextId;
    lastDrainIssue = 0;
    if (misu_)
        misu_->crash();
    engine.crash();
    nvm.crash();
    return report;
}

ControllerRecoveryReport
SecureMemController::recover()
{
    ControllerRecoveryReport report;

    // Dolos: open (or re-open) the persistent recovery journal before
    // the first interruptible step, so a power failure at ANY point
    // below leaves crash() evidence that a dump is being consumed.
    std::optional<RecoveryJournal> journal;
    bool have_dump = false;
    Block header{};
    if (isDolosMode(cfg.mode)) {
        journal = readJournal();
        report.resumed = journal.has_value();
        header = nvm.readFunctional(AddressMap::wpqDumpBase);
        have_dump = loadWord(header, 0) == dumpMarker;
        if (have_dump && !journal)
            writeJournal(0, RecoveryPhase::Draining);
    }

    // Replay a ready redo-log record first (paper §4.4 recovery).
    if (redoLog.ready()) {
        const auto &rec = redoLog.record();
        nvm.writeFunctional(rec.addr, rec.ciphertext);
        redoLog.clear();
    }
    if (recoveryStep()) {
        report.interrupted = true;
        return report;
    }

    if (cfg.mode != SecurityMode::NonSecureIdeal)
        report.engine = engine.recover();
    if (recoveryStep()) {
        report.interrupted = true;
        return report;
    }

    if (!isDolosMode(cfg.mode))
        return report;

    if (!have_dump) {
        // Clean shutdown — or an interruption that had already wiped
        // the dump; either way only the journal needs clearing.
        if (journal)
            clearJournal();
        return report;
    }

    if (journal && journal->phase == RecoveryPhase::Epilogue) {
        // Every entry was drained by the interrupted attempt; only
        // the pad-retirement epilogue remains.
        report.entriesSkipped = journal->drained;
        finishDump();
        report.modeledRecoveryCycles =
            Cycles(capacity) * cfg.secure.aesLatency;
        return report;
    }

    const std::uint64_t count = loadWord(header, 8);
    std::vector<std::pair<unsigned, MisuEntryImage>> images;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr base = AddressMap::wpqDumpAddr(1 + i);
        MisuEntryImage img;
        img.ctData = nvm.readFunctional(base);
        const Block meta = nvm.readFunctional(base + blockSize);
        img.ctAddr = loadWord(meta, 0);
        std::memcpy(img.mac.data(), meta.data() + 8, 8);
        images.emplace_back(unsigned(loadWord(meta, 16)), img);
    }

    if (cfg.mode == SecurityMode::DolosFullWpq) {
        report.misuVerified = misu_->verifyRoot(images);
    } else {
        for (const auto &[slot, img] : images)
            report.misuVerified &= misu_->verifyEntry(slot, img);
    }
    if (!report.misuVerified)
        engine.noteAttack("Mi-SU WPQ dump failed authentication");

    if (report.misuVerified) {
        // Drain the recovered entries through Ma-SU in FIFO order,
        // checkpointing the journal after each entry. Entries a
        // previous (interrupted) attempt already drained are skipped:
        // their ciphertext and metadata are persistent, and replaying
        // them would be wasted work, not a correctness problem — the
        // pads stay valid until the epoch advances in the epilogue.
        std::uint64_t already = journal ? journal->drained : 0;
        if (already > count)
            already = count;
        Tick t = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            if (i < already) {
                ++report.entriesSkipped;
                continue;
            }
            const auto &[slot, img] = images[i];
            const auto [addr, data] = misu_->unprotect(slot, img);
            const auto res = engine.secureWrite(addr, data, t);
            engine.writeCiphertext(addr, res.ciphertext, res.doneTick);
            t = res.doneTick;
            ++report.entriesRecovered;
            writeJournal(i + 1, RecoveryPhase::Draining);
            if (recoveryStep()) {
                report.interrupted = true;
                return report;
            }
        }
    }

    writeJournal(count, RecoveryPhase::Epilogue);
    if (recoveryStep()) {
        report.interrupted = true;
        return report;
    }
    finishDump();

    // Paper §5.5 recovery-latency model: read back the dump, re-
    // generate pads, drain each entry (2100 cycles incl. NVM write
    // and Ma-SU), recompute fresh pads.
    const unsigned read_blocks =
        capacity + (cfg.mode == SecurityMode::DolosFullWpq ? 0 : 2);
    report.modeledRecoveryCycles =
        Cycles(read_blocks) * cfg.nvm.readLatency +
        Cycles(capacity) * cfg.secure.aesLatency +
        Cycles(capacity) * 2100 +
        Cycles(capacity) * cfg.secure.aesLatency;
    return report;
}

persist::StateManifest
RedoLogBuffer::stateManifest() const
{
    persist::StateManifest m("RedoLogBuffer");
    DOLOS_MF_P(m, rec);
    DOLOS_MF_P(m, ready_);
    return m;
}

persist::StateManifest
SecureMemController::stateManifest() const
{
    persist::StateManifest m("SecureMemController");
    DOLOS_MF_CONST(m, cfg);
    DOLOS_MF_CONST(m, nvm);
    DOLOS_MF_CONST(m, engine);
    DOLOS_MF_DELEGATED_P(m, misu_);
    DOLOS_MF_DELEGATED_P(m, redoLog);
    DOLOS_MF_CONST(m, capacity);
    DOLOS_MF_V(m, adrTear);
    // Armed mid-recovery faults survive until the *next* recovery
    // consumes them (they model firmware, not dynamic state).
    DOLOS_MF_P(m, recoveryCrashArm);
    DOLOS_MF_V(m, wpq);
    DOLOS_MF_P(m, nextId);
    DOLOS_MF_V_CHECK(m, drainCursor,
                     "reset to nextId (no entry left to drain)",
                     [this] { return drainCursor == nextId; });
    DOLOS_MF_V(m, tagArray);
    DOLOS_MF_V(m, lastDrainIssue);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statWrites);
    DOLOS_MF_P(m, statPersists);
    DOLOS_MF_P(m, statEvictions);
    DOLOS_MF_P(m, statRetries);
    DOLOS_MF_P(m, statCoalesces);
    DOLOS_MF_P(m, statWpqReadHits);
    DOLOS_MF_P(m, statReads);
    DOLOS_MF_P(m, statStallCycles);
    DOLOS_MF_P(m, statDrainsBatched);
    DOLOS_MF_P(m, statPersistLatency);
    DOLOS_MF_P(m, statOccupancy);
    DOLOS_MF_P(m, statDrainLatency);
    DOLOS_MF_P(m, statPersistLatencyHist);
    DOLOS_MF_P(m, statStallHist);
    return m;
}

void
SecureMemController::collectStateManifests(
    std::vector<persist::StateManifest> &out) const
{
    out.push_back(stateManifest());
    if (misu_)
        out.push_back(misu_->stateManifest());
    out.push_back(redoLog.stateManifest());
}

} // namespace dolos
