/**
 * @file
 * Public facade: one simulated machine.
 *
 * Wires NVM, security engine, memory controller, cache hierarchy and
 * core according to a SystemConfig, and orchestrates power failures
 * and recovery. This is the primary entry point of the library:
 *
 *   auto cfg = dolos::SystemConfig::paperDefault();
 *   cfg.mode = dolos::SecurityMode::DolosPartialWpq;
 *   dolos::System sys(cfg);
 *   ... drive sys.core() with loads/stores/clwb/sfence ...
 *   auto dump = sys.crash();     // power failure (ADR drains WPQ)
 *   auto rec = sys.recover();    // reboot: verify, drain, rebuild
 */

#ifndef DOLOS_DOLOS_SYSTEM_HH
#define DOLOS_DOLOS_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cpu/core.hh"
#include "dolos/controller.hh"

namespace dolos
{

/** A complete simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    SimpleCore &core() { return *core_; }
    CacheHierarchy &hierarchy() { return *hier; }
    SecureMemController &controller() { return *mc; }
    SecurityEngine &engine() { return *eng; }
    NvmDevice &nvmDevice() { return *nvm; }
    const SystemConfig &config() const { return cfg; }

    /**
     * Power failure at the core's current tick: caches and all other
     * volatile state are lost; ADR flushes the WPQ.
     * @p mid_operation marks a microstep crash (power dying inside a
     * drain's security work): the controller then dumps the WPQ as
     * found instead of letting the in-flight drain finish.
     */
    CrashDumpReport crash(bool mid_operation = false);

    /** Boot after a crash: authenticate, drain, rebuild metadata. */
    ControllerRecoveryReport recover();

    /**
     * Boot and, if an armed fault interrupts recovery, keep power-
     * cycling until recovery completes. Returns the final attempt's
     * report; @p attempts_out (if given) receives the boot count.
     */
    ControllerRecoveryReport
    recoverToCompletion(unsigned *attempts_out = nullptr,
                        unsigned max_attempts = 16);

    /** True if any integrity check has ever failed. */
    bool attackDetected() const { return eng->attackDetected(); }

    /** True if any block was retired as unrecoverable (media). */
    bool unrecoverableMedia() const
    {
        return nvm->quarantineCount() != 0;
    }

    /**
     * Attach an interval stats sampler (nullptr detaches): registers
     * every component's stat group with @p s and has the core poll
     * it on each clock advance. Call the sampler's begin() after
     * attaching, and its finish() before reading the timeline.
     */
    void attachStatSampler(stats::StatSampler *s);

    /** Dump all statistics. */
    void dumpStats(std::ostream &os) const;

    /**
     * Dump all statistics as one JSON object: a per-stage cycle
     * "breakdown" (Mi-SU/Ma-SU MAC, BMT climb, WPQ-full stalls,
     * fence stalls) plus the full stat-group tree under "groups".
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Structured damage report: quarantined blocks with reasons and
     * retry counts, media-error/heal counters, and the attack flag.
     * Written by the CLI drivers when degrading instead of aborting.
     */
    void dumpDamageJson(std::ostream &os) const;

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

    /**
     * Collect the manifests of every state class in this machine
     * (the facade itself plus each component, per instance). This is
     * the complete machine-checked crash-state model that the
     * power-loss differential (src/verify/manifest_check) proves
     * against crash().
     */
    std::vector<persist::StateManifest> collectStateManifests() const;

  private:
    SystemConfig cfg;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<SecurityEngine> eng;
    std::unique_ptr<SecureMemController> mc;
    std::unique_ptr<CacheHierarchy> hier;
    std::unique_ptr<SimpleCore> core_;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(System);
    DOLOS_PERSISTENT(cfg);
    DOLOS_PERSISTENT(nvm);
    DOLOS_PERSISTENT(eng);
    DOLOS_PERSISTENT(mc);
    DOLOS_PERSISTENT(hier);
    DOLOS_PERSISTENT(core_);
};

} // namespace dolos

#endif // DOLOS_DOLOS_SYSTEM_HH
