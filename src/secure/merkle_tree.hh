/**
 * @file
 * Functional 8-ary Bonsai Merkle Tree over counter blocks.
 *
 * Leaves are MAC tags of packed split-counter pages; inner nodes are
 * MAC tags over the concatenation of their eight children. The tree
 * is sparse: untouched subtrees collapse to memoized per-level
 * default tags, so a 16 GB protected region costs memory only for
 * pages actually written.
 *
 * This class is the secure processor's volatile *current* view (the
 * trusted state built from verified fetches and local updates). NVM
 * persistence of individual nodes and the on-chip persistent root
 * register are managed by the security engine.
 */

#ifndef DOLOS_SECURE_MERKLE_TREE_HH
#define DOLOS_SECURE_MERKLE_TREE_HH

#include <unordered_map>
#include <vector>

#include "crypto/mac_engine.hh"
#include "secure/counters.hh"
#include "sim/persist_annotations.hh"
#include "sim/types.hh"

namespace dolos
{

/** 8-ary functional hash tree. */
class MerkleTree
{
  public:
    static constexpr unsigned arity = 8;

    /**
     * @param num_leaves Number of counter blocks covered.
     * @param mac Keyed MAC engine (not owned; must outlive the tree).
     */
    MerkleTree(Addr num_leaves, const crypto::MacEngine &mac);

    /** Levels including the leaf level and the root level. */
    unsigned numLevels() const { return unsigned(levelSizes.size()); }

    /** Number of nodes at @p level (level 0 = leaves). */
    Addr levelSize(unsigned level) const { return levelSizes[level]; }

    /** MAC tag of a packed counter page (leaf content hash). */
    crypto::MacTag leafTagOf(const CounterPage &page) const;

    /**
     * Install a new leaf tag and recompute the path to the root
     * (functional equivalent of an eager update).
     */
    void updateLeaf(Addr leaf_idx, const CounterPage &page);

    /** Current root tag. */
    crypto::MacTag root() const;

    /** Current tag of (@p level, @p idx); default if untouched. */
    crypto::MacTag nodeTag(unsigned level, Addr idx) const;

    /**
     * Repair an interior node by re-hashing its children (root-ward
     * re-hash, Triad-NVM style). Used when the NVM copy of the node
     * is lost to a media fault: the children's current tags pin the
     * node's only possible value. Returns the recomputed tag.
     */
    crypto::MacTag
    repairNode(unsigned level, Addr idx)
    {
        DOLOS_ASSERT(level > 0 && level < numLevels(),
                     "cannot repair level %u from children", level);
        recomputeNode(level, idx);
        return nodeTag(level, idx);
    }

    /** The memoized default tag of an untouched node at @p level. */
    crypto::MacTag defaultTag(unsigned level) const
    {
        return defaults[level];
    }

    /**
     * Discard all state and rebuild from a full set of counter
     * pages (crash recovery). Pages absent from @p pages are
     * treated as untouched (all-zero counters).
     */
    void rebuild(const std::unordered_map<Addr, CounterPage> &pages);

    /** Drop all volatile state (crash, before rebuild). */
    void clear() { nodes.clear(); }

    /** Number of explicitly stored (non-default) nodes. */
    std::size_t numStoredNodes() const { return nodes.size(); }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    static std::uint64_t key(unsigned level, Addr idx);

    /** Parent tag from eight child tags. */
    crypto::MacTag hashChildren(unsigned parent_level,
                                const crypto::MacTag *children) const;

    /** Recompute one node from its children's current tags. */
    void recomputeNode(unsigned level, Addr idx);

    Addr numLeaves;
    const crypto::MacEngine &mac;
    std::vector<Addr> levelSizes;           ///< per-level node counts
    std::vector<crypto::MacTag> defaults;   ///< per-level default tags
    std::unordered_map<std::uint64_t, crypto::MacTag> nodes;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(MerkleTree);
    DOLOS_PERSISTENT(numLeaves);
    DOLOS_PERSISTENT(mac);
    DOLOS_PERSISTENT(levelSizes);
    DOLOS_PERSISTENT(defaults);
    DOLOS_VOLATILE(nodes);
};

} // namespace dolos

#endif // DOLOS_SECURE_MERKLE_TREE_HH
