/**
 * @file
 * Layout of the simulated NVM physical address space.
 *
 * Protected data occupies [0, protectedBytes). Security metadata
 * lives in disjoint high regions so that metadata traffic shares NVM
 * bank timing with data without colliding functionally:
 *
 *   counters : one 64B split-counter block per 4KB data page
 *   data MACs: 8-byte MAC per data block, packed 8 per 64B MAC block
 *   tree     : integrity-tree nodes (64B each)
 *   shadow   : Anubis shadow-table slots (64B each)
 *   WPQ dump : ADR crash-drain target area
 */

#ifndef DOLOS_SECURE_ADDRESS_MAP_HH
#define DOLOS_SECURE_ADDRESS_MAP_HH

#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dolos
{

/** Bytes per page covered by one split-counter block. */
constexpr Addr pageBytes = 4096;

/** Data blocks whose MACs pack into one 64B MAC block. */
constexpr unsigned macsPerBlock = 8;

/**
 * Classification of an NVM physical address by the region it falls
 * in. Media faults on the security-metadata regions take repair paths
 * that differ per region (counters are reconstructible from data
 * MACs, tree nodes from their children, MAC blocks from ciphertext +
 * counter), so every faulted address is classified first.
 */
enum class NvmRegion
{
    Data,            ///< protected data [0, protectedBytes)
    Counter,         ///< split-counter blocks
    Mac,             ///< packed per-block data MACs
    Tree,            ///< integrity-tree nodes
    Shadow,          ///< Anubis shadow-table slots
    WpqDump,         ///< ADR crash-dump area
    Ecc,             ///< Osiris per-block ECC codes
    RecoveryJournal, ///< restartable-recovery journal block
    Unknown,         ///< the hole between data and the metadata bases
};

/** Stable display name of a region (damage reports, diagnostics). */
inline const char *
nvmRegionName(NvmRegion r)
{
    switch (r) {
      case NvmRegion::Data:
        return "data";
      case NvmRegion::Counter:
        return "counter";
      case NvmRegion::Mac:
        return "mac";
      case NvmRegion::Tree:
        return "tree";
      case NvmRegion::Shadow:
        return "shadow";
      case NvmRegion::WpqDump:
        return "wpq-dump";
      case NvmRegion::Ecc:
        return "ecc";
      case NvmRegion::RecoveryJournal:
        return "recovery-journal";
      case NvmRegion::Unknown:
        break;
    }
    return "unknown";
}

/** Address-space map for one protected memory instance. */
struct AddressMap
{
    /** Size of the protected data region (paper: 16 GB). */
    Addr protectedBytes = Addr(16) * 1024 * 1024 * 1024;

    static constexpr Addr counterBase = Addr(1) << 40;
    static constexpr Addr macBase = Addr(1) << 41;
    static constexpr Addr treeBase = Addr(1) << 42;
    static constexpr Addr shadowBase = Addr(1) << 43;
    static constexpr Addr wpqDumpBase = Addr(1) << 44;
    static constexpr Addr eccBase = Addr(1) << 45;
    static constexpr Addr recoveryBase = Addr(1) << 46;

    /** Number of 4KB pages (== integrity-tree leaves). */
    Addr
    numPages() const
    {
        return (protectedBytes + pageBytes - 1) / pageBytes;
    }

    bool
    isProtectedData(Addr a) const
    {
        return a < protectedBytes;
    }

    /** Region classification of any NVM physical address. */
    NvmRegion
    regionOf(Addr a) const
    {
        if (a < protectedBytes)
            return NvmRegion::Data;
        if (a >= counterBase && a < macBase)
            return NvmRegion::Counter;
        if (a >= macBase && a < treeBase)
            return NvmRegion::Mac;
        if (a >= treeBase && a < shadowBase)
            return NvmRegion::Tree;
        if (a >= shadowBase && a < wpqDumpBase)
            return NvmRegion::Shadow;
        if (a >= wpqDumpBase && a < eccBase)
            return NvmRegion::WpqDump;
        if (a >= eccBase && a < recoveryBase)
            return NvmRegion::Ecc;
        if (a >= recoveryBase)
            return NvmRegion::RecoveryJournal;
        return NvmRegion::Unknown;
    }

    /** Page index of a data address. */
    static Addr
    pageOf(Addr a)
    {
        return a / pageBytes;
    }

    /** Block index of a data address within its page [0, 64). */
    static unsigned
    blockInPage(Addr a)
    {
        return unsigned((a % pageBytes) / blockSize);
    }

    /** NVM address of the counter block covering @p a. */
    static Addr
    counterBlockAddr(Addr a)
    {
        return counterBase + pageOf(a) * blockSize;
    }

    /** NVM address of the MAC block covering @p a. */
    static Addr
    macBlockAddr(Addr a)
    {
        return macBase + (a / (blockSize * macsPerBlock)) * blockSize;
    }

    /** Byte offset of @p a's MAC inside its MAC block. */
    static unsigned
    macOffsetInBlock(Addr a)
    {
        return unsigned((a / blockSize) % macsPerBlock) * 8;
    }

    /** NVM address of tree node (@p level, @p index). */
    static Addr
    treeNodeAddr(unsigned level, Addr index)
    {
        // Levels are < 16 and functional trees have < 2^30 nodes per
        // level, so (level << 30 | index) * 64 stays well inside the
        // [treeBase, shadowBase) region.
        DOLOS_ASSERT(index < (Addr(1) << 30), "tree index too large");
        return treeBase + ((Addr(level) << 30) | index) * blockSize;
    }

    /** Inverse of treeNodeAddr. */
    static std::pair<unsigned, Addr>
    treeNodeOf(Addr addr)
    {
        const Addr offset = (addr - treeBase) / blockSize;
        return {unsigned(offset >> 30), offset & ((Addr(1) << 30) - 1)};
    }

    /** NVM address of Anubis shadow slot @p slot. */
    static Addr
    shadowSlotAddr(Addr slot)
    {
        return shadowBase + slot * blockSize;
    }

    /** NVM address of WPQ dump entry @p idx (two blocks per entry). */
    static Addr
    wpqDumpAddr(Addr idx)
    {
        return wpqDumpBase + idx * 2 * blockSize;
    }

    /**
     * NVM address of the persistent recovery journal — one block the
     * controller checkpoints while replaying an ADR dump, so a power
     * failure *during* recovery resumes instead of restarting blind.
     */
    static constexpr Addr
    recoveryJournalAddr()
    {
        return recoveryBase;
    }

    /** Page index covered by a counter-region block address. */
    static Addr
    pageOfCounterBlock(Addr counter_block_addr)
    {
        return (counter_block_addr - counterBase) / blockSize;
    }

    /** First data address whose MAC lives in MAC-region block @p mb. */
    static Addr
    firstDataOfMacBlock(Addr mb)
    {
        return ((mb - macBase) / blockSize) * blockSize * macsPerBlock;
    }

    /**
     * The exact data blocks covered by counter-region block
     * @p counter_block_addr, clamped to the protected region. Losing
     * that counter block unrecoverably loses exactly these blocks.
     */
    std::vector<Addr>
    dataCoveredByCounterBlock(Addr counter_block_addr) const
    {
        std::vector<Addr> covered;
        const Addr base = pageOfCounterBlock(counter_block_addr) *
                          pageBytes;
        for (unsigned i = 0; i < pageBytes / blockSize; ++i) {
            const Addr a = base + Addr(i) * blockSize;
            if (a >= protectedBytes)
                break;
            covered.push_back(a);
        }
        return covered;
    }

    /**
     * The exact data blocks covered by MAC-region block @p mb,
     * clamped to the protected region (the last MAC block of an
     * unaligned protected region covers fewer than macsPerBlock).
     */
    std::vector<Addr>
    dataCoveredByMacBlock(Addr mb) const
    {
        std::vector<Addr> covered;
        const Addr base = firstDataOfMacBlock(mb);
        for (unsigned i = 0; i < macsPerBlock; ++i) {
            const Addr a = base + Addr(i) * blockSize;
            if (a >= protectedBytes)
                break;
            covered.push_back(a);
        }
        return covered;
    }

    /** 16-bit ECC codes pack 32 per block (Osiris). */
    static Addr
    eccBlockAddr(Addr a)
    {
        return eccBase + (a / (blockSize * 32)) * blockSize;
    }

    /** Byte offset of @p a's ECC code inside its ECC block. */
    static unsigned
    eccOffsetInBlock(Addr a)
    {
        return unsigned((a / blockSize) % 32) * 2;
    }
};

} // namespace dolos

#endif // DOLOS_SECURE_ADDRESS_MAP_HH
