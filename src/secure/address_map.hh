/**
 * @file
 * Layout of the simulated NVM physical address space.
 *
 * Protected data occupies [0, protectedBytes). Security metadata
 * lives in disjoint high regions so that metadata traffic shares NVM
 * bank timing with data without colliding functionally:
 *
 *   counters : one 64B split-counter block per 4KB data page
 *   data MACs: 8-byte MAC per data block, packed 8 per 64B MAC block
 *   tree     : integrity-tree nodes (64B each)
 *   shadow   : Anubis shadow-table slots (64B each)
 *   WPQ dump : ADR crash-drain target area
 */

#ifndef DOLOS_SECURE_ADDRESS_MAP_HH
#define DOLOS_SECURE_ADDRESS_MAP_HH

#include <utility>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace dolos
{

/** Bytes per page covered by one split-counter block. */
constexpr Addr pageBytes = 4096;

/** Data blocks whose MACs pack into one 64B MAC block. */
constexpr unsigned macsPerBlock = 8;

/** Address-space map for one protected memory instance. */
struct AddressMap
{
    /** Size of the protected data region (paper: 16 GB). */
    Addr protectedBytes = Addr(16) * 1024 * 1024 * 1024;

    static constexpr Addr counterBase = Addr(1) << 40;
    static constexpr Addr macBase = Addr(1) << 41;
    static constexpr Addr treeBase = Addr(1) << 42;
    static constexpr Addr shadowBase = Addr(1) << 43;
    static constexpr Addr wpqDumpBase = Addr(1) << 44;
    static constexpr Addr eccBase = Addr(1) << 45;
    static constexpr Addr recoveryBase = Addr(1) << 46;

    /** Number of 4KB pages (== integrity-tree leaves). */
    Addr
    numPages() const
    {
        return (protectedBytes + pageBytes - 1) / pageBytes;
    }

    bool
    isProtectedData(Addr a) const
    {
        return a < protectedBytes;
    }

    /** Page index of a data address. */
    static Addr
    pageOf(Addr a)
    {
        return a / pageBytes;
    }

    /** Block index of a data address within its page [0, 64). */
    static unsigned
    blockInPage(Addr a)
    {
        return unsigned((a % pageBytes) / blockSize);
    }

    /** NVM address of the counter block covering @p a. */
    static Addr
    counterBlockAddr(Addr a)
    {
        return counterBase + pageOf(a) * blockSize;
    }

    /** NVM address of the MAC block covering @p a. */
    static Addr
    macBlockAddr(Addr a)
    {
        return macBase + (a / (blockSize * macsPerBlock)) * blockSize;
    }

    /** Byte offset of @p a's MAC inside its MAC block. */
    static unsigned
    macOffsetInBlock(Addr a)
    {
        return unsigned((a / blockSize) % macsPerBlock) * 8;
    }

    /** NVM address of tree node (@p level, @p index). */
    static Addr
    treeNodeAddr(unsigned level, Addr index)
    {
        // Levels are < 16 and functional trees have < 2^30 nodes per
        // level, so (level << 30 | index) * 64 stays well inside the
        // [treeBase, shadowBase) region.
        DOLOS_ASSERT(index < (Addr(1) << 30), "tree index too large");
        return treeBase + ((Addr(level) << 30) | index) * blockSize;
    }

    /** Inverse of treeNodeAddr. */
    static std::pair<unsigned, Addr>
    treeNodeOf(Addr addr)
    {
        const Addr offset = (addr - treeBase) / blockSize;
        return {unsigned(offset >> 30), offset & ((Addr(1) << 30) - 1)};
    }

    /** NVM address of Anubis shadow slot @p slot. */
    static Addr
    shadowSlotAddr(Addr slot)
    {
        return shadowBase + slot * blockSize;
    }

    /** NVM address of WPQ dump entry @p idx (two blocks per entry). */
    static Addr
    wpqDumpAddr(Addr idx)
    {
        return wpqDumpBase + idx * 2 * blockSize;
    }

    /**
     * NVM address of the persistent recovery journal — one block the
     * controller checkpoints while replaying an ADR dump, so a power
     * failure *during* recovery resumes instead of restarting blind.
     */
    static constexpr Addr
    recoveryJournalAddr()
    {
        return recoveryBase;
    }

    /** 16-bit ECC codes pack 32 per block (Osiris). */
    static Addr
    eccBlockAddr(Addr a)
    {
        return eccBase + (a / (blockSize * 32)) * blockSize;
    }

    /** Byte offset of @p a's ECC code inside its ECC block. */
    static unsigned
    eccOffsetInBlock(Addr a)
    {
        return unsigned((a / blockSize) % 32) * 2;
    }
};

} // namespace dolos

#endif // DOLOS_SECURE_ADDRESS_MAP_HH
