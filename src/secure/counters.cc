/**
 * @file
 * Split-counter packing and increment.
 */

#include "secure/counters.hh"

namespace dolos
{

Block
CounterPage::pack() const
{
    // Layout: bytes [0,8) little-endian major; bytes [8,64) hold 64
    // 7-bit minors as a dense bit stream.
    Block b{};
    storeWord(b, 0, major);
    for (unsigned i = 0; i < 64; ++i) {
        const unsigned bitpos = i * 7;
        const unsigned byte = 8 + bitpos / 8;
        const unsigned shift = bitpos % 8;
        const std::uint16_t v = std::uint16_t(minors[i] & 0x7F) << shift;
        b[byte] |= std::uint8_t(v);
        if (shift > 1)
            b[byte + 1] |= std::uint8_t(v >> 8);
    }
    return b;
}

CounterPage
CounterPage::unpack(const Block &b)
{
    CounterPage p;
    p.major = loadWord(b, 0);
    for (unsigned i = 0; i < 64; ++i) {
        const unsigned bitpos = i * 7;
        const unsigned byte = 8 + bitpos / 8;
        const unsigned shift = bitpos % 8;
        std::uint16_t v = b[byte] >> shift;
        if (shift > 1)
            v |= std::uint16_t(b[byte + 1]) << (8 - shift);
        p.minors[i] = std::uint8_t(v & 0x7F);
    }
    return p;
}

CounterBump
CounterStore::increment(Addr a)
{
    CounterPage &p = pages[AddressMap::pageOf(a)];
    const unsigned idx = AddressMap::blockInPage(a);
    CounterBump r;
    if (p.minors[idx] + 1u >= minorCounterLimit) {
        // Minor overflow: bump major, reset every minor. The caller
        // must re-encrypt the whole page under the new counters.
        ++p.major;
        p.minors.fill(0);
        r.pageOverflow = true;
    } else {
        ++p.minors[idx];
    }
    r.newCounter = p.counterOf(idx);
    return r;
}

persist::StateManifest
CounterStore::stateManifest() const
{
    persist::StateManifest m("CounterStore");
    DOLOS_MF_V(m, pages);
    return m;
}

} // namespace dolos
