/**
 * @file
 * Anubis shadow-table implementation.
 */

#include "secure/anubis.hh"

namespace dolos
{

namespace
{
/** Marker distinguishing a written slot from untouched NVM. */
constexpr std::uint64_t slotValidMarker = 0x414E554249535631ULL; // "ANUBISV1"
} // namespace

AnubisShadow::AnubisShadow(std::size_t num_slots, NvmDevice &nvm,
                           const crypto::MacEngine &mac)
    : slots(num_slots), nvm(nvm), mac(mac), stats_("anubis")
{
    stats_.addScalar(&statWrites, "shadowWrites",
                     "shadow entries persisted");
}

crypto::MacTag
AnubisShadow::entryMac(Addr page_idx, const Block &packed,
                       std::uint64_t seq) const
{
    return mac.computeParts({{&page_idx, sizeof(page_idx)},
                             {&seq, sizeof(seq)},
                             {packed.data(), packed.size()}});
}

Tick
AnubisShadow::recordUpdate(std::size_t slot, Addr page_idx,
                           const CounterPage &page, std::uint64_t seq,
                           Tick now)
{
    DOLOS_ASSERT(slot < slots, "shadow slot %zu out of range", slot);
    ++statWrites;

    const Block packed = page.pack();
    const crypto::MacTag tag = entryMac(page_idx, packed, seq);

    Block meta{};
    storeWord(meta, 0, slotValidMarker);
    storeWord(meta, 8, page_idx);
    storeWord(meta, 16, seq);
    std::memcpy(meta.data() + 24, tag.data(), tag.size());

    const Addr addr = AddressMap::shadowSlotAddr(Addr(slot) * 2);
    nvm.write(addr, packed, now);
    return nvm.write(addr + blockSize, meta, now);
}

ShadowScan
AnubisShadow::scan(unsigned media_retry_limit)
{
    ShadowScan result;
    for (std::size_t slot = 0; slot < slots; ++slot) {
        const Addr addr = AddressMap::shadowSlotAddr(Addr(slot) * 2);
        for (unsigned attempt = 0;; ++attempt) {
            const Block meta = nvm.readFunctionalChecked(addr + blockSize);
            bool media = nvm.lastReadMediaError();
            if (loadWord(meta, 0) != slotValidMarker) {
                if (!media)
                    break; // never written
                if (attempt < media_retry_limit)
                    continue; // a transient flip may have hit the marker
                ++result.mediaSkippedSlots;
                break;
            }
            const Block packed = nvm.readFunctionalChecked(addr);
            media |= nvm.lastReadMediaError();
            ShadowEntry e;
            e.pageIdx = loadWord(meta, 8);
            e.seq = loadWord(meta, 16);
            crypto::MacTag stored;
            std::memcpy(stored.data(), meta.data() + 24, stored.size());
            if (entryMac(e.pageIdx, packed, e.seq) == stored) {
                e.page = CounterPage::unpack(packed);
                result.entries.push_back(e);
                break;
            }
            if (media && attempt < media_retry_limit)
                continue; // retry: transient disturb errors heal
            if (media) {
                ++result.mediaSkippedSlots;
                break; // worn slot: skip, never alarm
            }
            result.tamperDetected = true;
            break;
        }
    }
    return result;
}

persist::StateManifest
AnubisShadow::stateManifest() const
{
    persist::StateManifest m("AnubisShadow");
    DOLOS_MF_CONST(m, slots);
    DOLOS_MF_CONST(m, nvm);
    DOLOS_MF_CONST(m, mac);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statWrites);
    return m;
}

} // namespace dolos
