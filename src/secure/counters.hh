/**
 * @file
 * Split encryption counters (64-bit major + 64 x 7-bit minor).
 *
 * One counter block covers the 64 cachelines of a 4KB page and packs
 * exactly into one 64B block: 8 bytes of major counter followed by 56
 * bytes of minor counters (7 bits each). The effective per-block
 * encryption counter is major * 128 + minor; a minor-counter overflow
 * bumps the major counter, resets all minors, and requires the whole
 * page to be re-encrypted (handled by the security engine).
 */

#ifndef DOLOS_SECURE_COUNTERS_HH
#define DOLOS_SECURE_COUNTERS_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "mem/block.hh"
#include "secure/address_map.hh"
#include "sim/persist_annotations.hh"

namespace dolos
{

/** Minor counters are 7 bits wide. */
constexpr std::uint64_t minorCounterLimit = 128;

/** In-flight (volatile) image of one page's counters. */
struct CounterPage
{
    std::uint64_t major = 0;
    std::array<std::uint8_t, 64> minors{}; ///< 7-bit values

    /** Effective encryption counter for block @p idx of the page. */
    std::uint64_t
    counterOf(unsigned idx) const
    {
        return major * minorCounterLimit + minors[idx];
    }

    /** Pack into the 64B NVM representation. */
    Block pack() const;

    /** Unpack from the 64B NVM representation. */
    static CounterPage unpack(const Block &b);

    bool
    operator==(const CounterPage &o) const
    {
        return major == o.major && minors == o.minors;
    }
};

inline void
dolosDescribeValue(std::ostream &os, const CounterPage &p)
{
    os << p.major << '/' << persist::describe(p.minors);
}

/** Result of bumping a block's counter. */
struct CounterBump
{
    std::uint64_t newCounter = 0; ///< effective counter after bump
    bool pageOverflow = false;    ///< minors reset; page re-encrypt due
};

/**
 * Volatile current view of all counters (the secure processor's
 * authoritative state, partially cached / partially dirty). The NVM
 * persistent image is managed by the security engine via pack().
 */
class CounterStore
{
  public:
    /** Current effective counter of the block containing @p a. */
    std::uint64_t
    counterOf(Addr a) const
    {
        const auto it = pages.find(AddressMap::pageOf(a));
        if (it == pages.end())
            return 0;
        return it->second.counterOf(AddressMap::blockInPage(a));
    }

    /** Increment the block counter; reports minor overflow. */
    CounterBump increment(Addr a);

    /** Whole-page access (re-encryption, packing, recovery). */
    CounterPage &page(Addr page_idx) { return pages[page_idx]; }

    bool
    hasPage(Addr page_idx) const
    {
        return pages.count(page_idx) != 0;
    }

    /** Replace a page image (recovery). */
    void
    restorePage(Addr page_idx, const CounterPage &p)
    {
        pages[page_idx] = p;
    }

    /** Drop all volatile state (crash). */
    void clear() { pages.clear(); }

    const std::unordered_map<Addr, CounterPage> &all() const
    {
        return pages;
    }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    std::unordered_map<Addr, CounterPage> pages;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(CounterStore);
    DOLOS_VOLATILE(pages);
};

} // namespace dolos

#endif // DOLOS_SECURE_COUNTERS_HH
