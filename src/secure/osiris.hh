/**
 * @file
 * Osiris-style counter recovery (Ye, Hughes, Awad — MICRO'18).
 *
 * Osiris observes that the ECC bits stored alongside each cacheline
 * can double as a sanity check for counter recovery: decrypt the
 * ciphertext with a candidate counter and recompute the ECC — only
 * the counter actually used yields a match. With a stop-loss of K
 * (the counter block is written through to NVM on every K-th
 * update), the correct counter is always within K of the persisted
 * one, so recovery tries at most K candidates per block.
 *
 * The paper's Ma-SU assumes counters are recoverable "using Osiris";
 * our engine supports it as an alternative to the Anubis shadow
 * table (SecureParams::crashScheme). Osiris trades runtime shadow
 * writes for periodic counter write-through and a longer recovery
 * (every data block must be probed).
 */

#ifndef DOLOS_SECURE_OSIRIS_HH
#define DOLOS_SECURE_OSIRIS_HH

#include "crypto/siphash.hh"
#include "mem/block.hh"

namespace dolos
{

/** ECC codes modeled as a 16-bit keyed fold of the plaintext. */
using EccCode = std::uint16_t;

/**
 * Osiris helper: ECC computation and candidate probing.
 */
class OsirisEcc
{
  public:
    /**
     * Compute the ECC code of a plaintext block. Modeled with a
     * keyed hash so that a wrong candidate counter matches with
     * probability ~2^-16, mirroring real ECC's discriminating power.
     */
    static EccCode
    compute(const Block &plaintext)
    {
        static const crypto::SipKey key{{0x05, 0x1B, 0x15}};
        const std::uint64_t h =
            crypto::siphash24(key, plaintext.data(), plaintext.size());
        return EccCode(h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48));
    }

    /** True if @p plaintext is consistent with the stored code. */
    static bool
    check(const Block &plaintext, EccCode stored)
    {
        return compute(plaintext) == stored;
    }
};

} // namespace dolos

#endif // DOLOS_SECURE_OSIRIS_HH
