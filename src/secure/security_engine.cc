/**
 * @file
 * Security engine implementation.
 */

#include "secure/security_engine.hh"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "secure/osiris.hh"
#include "sim/crash_points.hh"
#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/trace.hh"

namespace dolos
{

SecurityEngine::SecurityEngine(const SecureParams &p, NvmDevice &nvm)
    : params(p),
      nvm_(nvm),
      mac(crypto::makeMacEngine(p.macKind, p.macKey)),
      padGen(p.dataKey),
      tree(p.functionalLeaves, *mac),
      ctrCache(p.counterCache),
      mtCache(p.mtCache),
      shadow(ctrCache.numSlots(), nvm, *mac),
      stats_("secEngine")
{
    rootRegister = tree.root();

    stats_.addScalar(&statWrites, "writes", "secure write operations");
    stats_.addScalar(&statReads, "reads", "secure read operations");
    stats_.addScalar(&statAttacks, "attacksDetected",
                     "integrity verification failures");
    stats_.addScalar(&statOverflows, "pageReencryptions",
                     "minor-counter overflow page re-encryptions");
    stats_.addScalar(&statColdReads, "coldReads",
                     "reads of never-written blocks");
    stats_.addScalar(&statMediaRetries, "mediaRetries",
                     "device accesses retried after a media error");
    stats_.addScalar(&statMediaHealed, "mediaHealed",
                     "media errors corrected by retrying");
    stats_.addScalar(&statQuarantineReads, "quarantineReads",
                     "reads served zeros from quarantined blocks");
    stats_.addScalar(&statMetaMediaFaults, "metaMediaFaults",
                     "persistent media faults on metadata frames");
    stats_.addScalar(&statCounterBlocksRebuilt, "counterBlocksRebuilt",
                     "counter blocks repaired (truth rewrite or "
                     "trial-MAC reconstruction)");
    stats_.addScalar(&statTreeNodesRepaired, "treeNodesRepaired",
                     "tree nodes re-hashed from children and rewritten");
    stats_.addScalar(&statMacBlocksRebuilt, "macBlocksRebuilt",
                     "MAC blocks recomputed from ciphertext + counter");
    stats_.addScalar(&statCascadedBlocks, "cascadedBlocks",
                     "data blocks quarantined by metadata-loss cascade");
    stats_.addScalar(&statShadowSlotsSkipped, "shadowSlotsSkipped",
                     "worn shadow slots skipped during recovery scans");
    stats_.addScalar(&statRootReanchored, "rootReanchored",
                     "recoveries that re-anchored the root after "
                     "MAC-pinned repair");
    stats_.addScalar(&statScrubPasses, "scrubPasses",
                     "background metadata scrub passes");
    stats_.addScalar(&statScrubRepairs, "scrubRepairs",
                     "metadata faults repaired by the scrubber");
    stats_.addScalar(&statCtrFetchCycles, "ctrFetchCycles",
                     "write-path cycles fetching/verifying counters");
    stats_.addScalar(&statAesCycles, "aesCycles",
                     "write-path cycles generating AES pads");
    stats_.addScalar(&statMacCycles, "macCycles",
                     "write-path cycles computing data MACs");
    stats_.addScalar(&statBmtCycles, "bmtCycles",
                     "write-path cycles climbing the integrity tree");
    stats_.addScalar(&statBmtCoalesced, "bmtCoalescedUpdates",
                     "tree levels coalesced onto in-flight root-path "
                     "updates (bmtPipeline)");
    stats_.addScalar(&statTagPrefetchIssued, "tagPrefetchIssued",
                     "counter blocks warmed at WPQ admission");
    stats_.addScalar(&statTagPrefetchHits, "tagPrefetchHits",
                     "demand counter fetches that hit a prefetched "
                     "block");
    stats_.addAverage(&statWriteLatency, "writeLatency",
                      "security-op cycles per write");
    stats_.addAverage(&statReadLatency, "readLatency",
                      "cycles per secure read");
    stats_.addAverage(&statTreeWalkLevels, "treeWalkLevels",
                      "tree levels fetched per counter miss");
    stats_.addHistogram(&statWriteLatencyHist, "writeLatencyHist",
                        "distribution of security-op cycles per write");
    stats_.addHistogram(&statReadLatencyHist, "readLatencyHist",
                        "distribution of cycles per secure read");
    stats_.addChild(&ctrCache.statGroup());
    stats_.addChild(&mtCache.statGroup());
    stats_.addChild(&shadow.statGroup());
}

void
SecurityEngine::noteAttack(const char *what)
{
    ++statAttacks;
    warn("%s", what);
}

unsigned
SecurityEngine::writeMacOps() const
{
    return params.treePolicy == TreeUpdatePolicy::EagerMerkle
               ? params.macOpsEagerWrite
               : params.macOpsLazyWrite;
}

crypto::IvFields
SecurityEngine::ivFor(Addr addr, std::uint64_t counter) const
{
    return {AddressMap::pageOf(addr), AddressMap::blockInPage(addr),
            counter};
}

crypto::MacTag
SecurityEngine::dataMac(Addr addr, const Block &ciphertext,
                        std::uint64_t counter) const
{
    return mac->computeParts({{&addr, sizeof(addr)},
                              {&counter, sizeof(counter)},
                              {ciphertext.data(), ciphertext.size()}});
}

void
SecurityEngine::storeDataMac(Addr addr, const crypto::MacTag &tag)
{
    const Addr mac_block = AddressMap::macBlockAddr(addr);
    Block b = nvm_.readFunctional(mac_block);
    std::memcpy(b.data() + AddressMap::macOffsetInBlock(addr),
                tag.data(), tag.size());
    nvm_.writeFunctional(mac_block, b);
}

crypto::MacTag
SecurityEngine::loadDataMac(Addr addr) const
{
    const Block b = nvm_.readFunctional(AddressMap::macBlockAddr(addr));
    crypto::MacTag tag;
    std::memcpy(tag.data(), b.data() + AddressMap::macOffsetInBlock(addr),
                tag.size());
    return tag;
}

namespace
{
/** Cascade-provenance tag for a lost metadata block. */
std::string
causeTag(const char *kind, Addr addr)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s_0x%llx", kind,
                  (unsigned long long)addr);
    return buf;
}
} // namespace

void
SecurityEngine::cascadeQuarantineCounterBlock(Addr cb_addr,
                                              unsigned retries)
{
    const std::string cause = causeTag("counter_block", cb_addr);
    nvm_.quarantine(cb_addr,
                    "counter block media fault (reconstruction failed)",
                    retries);
    std::size_t lost = 0;
    for (const Addr a : params.map.dataCoveredByCounterBlock(cb_addr)) {
        if (!nvm_.store().contains(a) || nvm_.isQuarantined(a))
            continue;
        nvm_.quarantine(a, "covering counter block unrecoverable",
                        retries, cause);
        ++statCascadedBlocks;
        ++lost;
    }
    warn("counter block 0x%llx unrecoverable: %zu data blocks "
         "quarantined",
         (unsigned long long)cb_addr, lost);
}

void
SecurityEngine::cascadeQuarantineMacBlock(Addr mb_addr, unsigned retries)
{
    const std::string cause = causeTag("mac_block", mb_addr);
    nvm_.quarantine(mb_addr,
                    "MAC block media fault (no spare frame left)",
                    retries);
    std::size_t lost = 0;
    for (const Addr a : params.map.dataCoveredByMacBlock(mb_addr)) {
        if (!nvm_.store().contains(a) || nvm_.isQuarantined(a))
            continue;
        nvm_.quarantine(a, "covering MAC block unrecoverable", retries,
                        cause);
        ++statCascadedBlocks;
        ++lost;
    }
    warn("MAC block 0x%llx unrecoverable: %zu data blocks quarantined",
         (unsigned long long)mb_addr, lost);
}

std::optional<CounterPage>
SecurityEngine::rebuildCounterPage(Addr page_idx)
{
    const Addr cb_addr = AddressMap::counterBase + page_idx * blockSize;
    if (params.plantCounterRepairBug) {
        // Planted bug (torture --expect-bug meta-test): adopt the
        // faulted NVM image — stuck cells and all — instead of
        // reconstructing from data MACs.
        return CounterPage::unpack(nvm_.readFunctionalChecked(cb_addr));
    }

    // Each covered ciphertext's stored data MAC pins its counter: the
    // MAC input is (addr, counter, ciphertext), so an ascending search
    // over candidates finds the one value the engine would accept.
    // MACs are keyed, so a match authenticates the reconstruction as
    // strongly as a fetch verified against the tree would.
    CounterPage page{};
    std::optional<std::uint64_t> major;
    bool pinned = false;
    for (const Addr a : params.map.dataCoveredByCounterBlock(cb_addr)) {
        if (!nvm_.store().contains(a) || nvm_.isQuarantined(a))
            continue;
        const Block ct = nvm_.readFunctional(a);
        const crypto::MacTag stored = loadDataMac(a);
        bool found = false;
        for (std::uint64_t c = 0; c < params.counterSearchLimit; ++c) {
            if (dataMac(a, ct, c) == stored) {
                const std::uint64_t m = c / minorCounterLimit;
                if (major && *major != m)
                    return std::nullopt; // split-counter invariant broken
                major = m;
                page.minors[AddressMap::blockInPage(a)] =
                    std::uint8_t(c % minorCounterLimit);
                found = true;
                pinned = true;
                break;
            }
        }
        if (!found)
            return std::nullopt; // true counter beyond the search limit
    }
    if (!pinned)
        return std::nullopt; // no stored block left to pin the page
    page.major = *major;
    return page;
}

bool
SecurityEngine::repairCounterBlock(Addr cb_addr, Addr page_idx,
                                   unsigned retries)
{
    ++statMetaMediaFaults;
    if (counters.hasPage(page_idx)) {
        // The volatile truth survives on-chip: remap the worn frame
        // (when a spare row is left) and rewrite it.
        nvm_.remapToSpare(cb_addr, "counter frame media fault");
        nvm_.writeFunctional(cb_addr, counters.page(page_idx).pack());
        ++statCounterBlocksRebuilt;
        return true;
    }
    const auto rebuilt = rebuildCounterPage(page_idx);
    if (rebuilt) {
        counters.restorePage(page_idx, *rebuilt);
        nvm_.remapToSpare(cb_addr, "counter frame media fault");
        nvm_.writeFunctional(cb_addr, rebuilt->pack());
        ++statCounterBlocksRebuilt;
        return true;
    }
    cascadeQuarantineCounterBlock(cb_addr, retries);
    return false;
}

void
SecurityEngine::repairTreeNode(Addr node_addr, unsigned level, Addr idx,
                               unsigned retries)
{
    ++statMetaMediaFaults;
    // The children's current tags pin the node's only possible value;
    // re-hash root-ward and rewrite. A lost node frame never cascades
    // to data — worst case the frame itself is retired and the node
    // lives only in the volatile tree until the next rewrite.
    const crypto::MacTag tag = level == 0
                                   ? tree.nodeTag(0, idx)
                                   : tree.repairNode(level, idx);
    if (!nvm_.remapToSpare(node_addr, "tree node media fault"))
        nvm_.quarantine(node_addr, "tree node frame unrecoverable",
                        retries);
    Block b{};
    std::memcpy(b.data(), tag.data(), tag.size());
    nvm_.writeFunctional(node_addr, b);
    ++statTreeNodesRepaired;
}

bool
SecurityEngine::repairMacBlock(Addr mb_addr, unsigned retries)
{
    ++statMetaMediaFaults;
    if (!nvm_.remapToSpare(mb_addr, "MAC block media fault")) {
        cascadeQuarantineMacBlock(mb_addr, retries);
        return false;
    }
    // Every lane is recomputable: the covered ciphertext and its
    // current counter pin the only MAC the engine would accept. A
    // device-flagged frame is wear, not tamper (an adversary leaves no
    // media flag), so re-blessing the intact ciphertext loses nothing.
    Block b{};
    for (const Addr a : params.map.dataCoveredByMacBlock(mb_addr)) {
        if (!nvm_.store().contains(a) || nvm_.isQuarantined(a))
            continue;
        const crypto::MacTag tag =
            dataMac(a, nvm_.readFunctional(a), counters.counterOf(a));
        std::memcpy(b.data() + AddressMap::macOffsetInBlock(a),
                    tag.data(), tag.size());
    }
    nvm_.writeFunctional(mb_addr, b);
    ++statMacBlocksRebuilt;
    return true;
}

crypto::MacTag
SecurityEngine::loadDataMacHealed(Addr addr)
{
    const Addr mb_addr = AddressMap::macBlockAddr(addr);
    Block b = nvm_.readFunctionalChecked(mb_addr);
    bool media = nvm_.lastReadMediaError();
    unsigned attempts = 0;
    while (media && attempts < params.mediaRetryLimit) {
        ++attempts;
        ++statMediaRetries;
        b = nvm_.readFunctionalChecked(mb_addr);
        media = nvm_.lastReadMediaError();
    }
    if (media) {
        // Persistent fault on the MAC frame itself: rebuild it (or
        // cascade). Either way the caller re-checks quarantine state.
        if (repairMacBlock(mb_addr, attempts))
            b = nvm_.readFunctional(mb_addr);
        else
            b = Block{};
    } else if (attempts) {
        ++statMediaHealed;
    }
    crypto::MacTag tag;
    std::memcpy(tag.data(), b.data() + AddressMap::macOffsetInBlock(addr),
                tag.size());
    return tag;
}

void
SecurityEngine::storeEcc(Addr addr, std::uint16_t code)
{
    const Addr ecc_block = AddressMap::eccBlockAddr(addr);
    Block b = nvm_.readFunctional(ecc_block);
    std::memcpy(b.data() + AddressMap::eccOffsetInBlock(addr), &code,
                sizeof(code));
    nvm_.writeFunctional(ecc_block, b);
}

std::uint16_t
SecurityEngine::loadEcc(Addr addr) const
{
    const Block b = nvm_.readFunctional(AddressMap::eccBlockAddr(addr));
    std::uint16_t code;
    std::memcpy(&code, b.data() + AddressMap::eccOffsetInBlock(addr),
                sizeof(code));
    return code;
}

void
SecurityEngine::verifyFetchedPage(Addr page_idx, const CounterPage &page)
{
    if (tree.leafTagOf(page) != tree.nodeTag(0, page_idx)) {
        ++statAttacks;
        warn("counter block for page %llu failed tree verification",
             (unsigned long long)page_idx);
    }
}

void
SecurityEngine::evictCounterBlock(Addr counter_block_addr, Tick now)
{
    const Addr page_idx =
        (counter_block_addr - AddressMap::counterBase) / blockSize;
    // The page must exist in the volatile store: it was cached.
    nvm_.write(counter_block_addr, counters.page(page_idx).pack(), now);
    // Metadata write-through: the persisted counter only catches up
    // to the volatile truth here, so power loss right after is a
    // state recovery must already handle.
    DOLOS_CRASH_POINT(MasuCtrEvict);
}

void
SecurityEngine::evictTreeNode(Addr node_addr, Tick now)
{
    const auto [level, idx] = AddressMap::treeNodeOf(node_addr);
    Block b{};
    const crypto::MacTag tag = tree.nodeTag(level, idx);
    std::memcpy(b.data(), tag.data(), tag.size());
    nvm_.write(node_addr, b, now);
}

Tick
SecurityEngine::fetchCounter(Addr addr, Tick start, bool for_write)
{
    const Addr cb_addr = AddressMap::counterBlockAddr(addr);
    if (ctrCache.lookup(cb_addr)) {
        if (const auto it = prefetchPending.find(cb_addr);
            it != prefetchPending.end()) {
            ++statTagPrefetchHits;
            prefetchPending.erase(it);
            DOLOS_CRASH_POINT(PrefetchPromote);
        }
        if (for_write)
            ctrCache.markDirty(cb_addr);
        return start;
    }
    // A miss on a block we prefetched means the warm line was evicted
    // before any demand touch: the prefetch was wasted, not a hit.
    prefetchPending.erase(cb_addr);

    // Miss: fetch the counter block from NVM. A device-flagged read
    // is suspect cells, not evidence of tamper: retry with doubling
    // backoff, and if the fault persists take the repair path instead
    // of comparing known-garbage against the truth.
    const Addr page_idx = AddressMap::pageOf(addr);
    ReadResult r = nvm_.read(cb_addr, start);
    bool cb_media = nvm_.lastReadMediaError();
    Tick t = r.completeTick;
    unsigned cb_attempts = 0;
    while (cb_media && cb_attempts < params.mediaRetryLimit) {
        ++cb_attempts;
        ++statMediaRetries;
        const Cycles backoff = params.mediaRetryBackoff
                               << (cb_attempts - 1);
        r = nvm_.read(cb_addr, t + backoff);
        cb_media = nvm_.lastReadMediaError();
        t = r.completeTick;
    }

    if (cb_media) {
        repairCounterBlock(cb_addr, page_idx, cb_attempts);
    } else {
        if (cb_attempts)
            ++statMediaHealed;
        const CounterPage fetched = CounterPage::unpack(r.data);
        if (counters.hasPage(page_idx)) {
            // Volatile truth exists (block was evicted earlier): the
            // NVM copy must match it exactly, or someone tampered
            // with NVM.
            if (!(fetched == counters.page(page_idx))) {
                ++statAttacks;
                warn("counter block 0x%llx modified in NVM",
                     (unsigned long long)cb_addr);
            }
        } else {
            // First touch since boot: verify against the trusted
            // tree, then adopt.
            verifyFetchedPage(page_idx, fetched);
            counters.restorePage(page_idx, fetched);
        }
    }

    // Walk the tree upward until a cached (trusted) level; each
    // missing level costs an NVM fetch plus a MAC verification. The
    // root itself lives in an on-chip register and is never fetched.
    unsigned walked = 0;
    Addr idx = page_idx;
    for (unsigned lvl = 1; lvl + 1 < tree.numLevels(); ++lvl) {
        idx /= MerkleTree::arity;
        const Addr node_addr = AddressMap::treeNodeAddr(lvl, idx);
        if (mtCache.lookup(node_addr))
            break;
        ++walked;
        ReadResult nr = nvm_.read(node_addr, t);
        bool node_media = nvm_.lastReadMediaError();
        unsigned node_attempts = 0;
        while (node_media && node_attempts < params.mediaRetryLimit) {
            ++node_attempts;
            ++statMediaRetries;
            const Cycles backoff = params.mediaRetryBackoff
                                   << (node_attempts - 1);
            nr = nvm_.read(node_addr, nr.completeTick + backoff);
            node_media = nvm_.lastReadMediaError();
        }
        t = nr.completeTick + params.macLatency;
        if (node_attempts && !node_media)
            ++statMediaHealed;
        if (node_media) {
            repairTreeNode(node_addr, lvl, idx, node_attempts);
        } else if (nvm_.store().contains(node_addr)) {
            crypto::MacTag stored;
            std::memcpy(stored.data(), nr.data.data(), stored.size());
            if (stored != tree.nodeTag(lvl, idx)) {
                ++statAttacks;
                warn("tree node (%u, %llu) modified in NVM", lvl,
                     (unsigned long long)idx);
            }
        }
        if (const auto ev = mtCache.insert(node_addr, false))
            evictTreeNode(ev->addr, t);
    }
    statTreeWalkLevels.sample(double(walked));

    if (const auto ev = ctrCache.insert(cb_addr, for_write))
        evictCounterBlock(ev->addr, t);
    return t;
}

Tick
SecurityEngine::reencryptPage(Addr page_idx, const CounterPage &old_page,
                              Tick start)
{
    ++statOverflows;
    const CounterPage &new_page = counters.page(page_idx);
    Tick done = start;
    for (unsigned idx = 0; idx < 64; ++idx) {
        const Addr addr = page_idx * pageBytes + Addr(idx) * blockSize;
        if (!nvm_.store().contains(addr))
            continue; // never written: nothing to re-encrypt
        const ReadResult r = nvm_.read(addr, start);
        Block data = r.data;
        const auto old_pad =
            padGen.generate(ivFor(addr, old_page.counterOf(idx)),
                            blockSize);
        crypto::xorInto(data.data(), old_pad.data(), blockSize);
        const auto new_pad =
            padGen.generate(ivFor(addr, new_page.counterOf(idx)),
                            blockSize);
        crypto::xorInto(data.data(), new_pad.data(), blockSize);
        const Tick w =
            nvm_.write(addr, data, r.completeTick + params.aesLatency);
        storeDataMac(addr, dataMac(addr, data, new_page.counterOf(idx)));
        done = std::max(done, w);
    }
    return done;
}

Tick
SecurityEngine::chargeBmtClimb(Addr page_idx, Tick start)
{
    const unsigned bmt_levels = writeMacOps() - 1;
    unsigned charged = bmt_levels;
    Tick joined_done = 0;

    if (params.bmtPipeline) {
        // Retire window entries whose root update already completed:
        // their per-level engines are free again and their path is no
        // longer in flight.
        std::erase_if(bmtInflight, [&](const BmtInflight &e) {
            return e.done <= start;
        });

        // Find the in-flight path sharing the most ancestor levels
        // with this write. Timing level L of a climb touches ancestor
        // page_idx >> (3*L) (8-ary tree); two paths join at the first
        // L where the ancestors match and share everything above.
        unsigned best_shared = 0;
        for (const BmtInflight &e : bmtInflight) {
            unsigned join = bmt_levels;
            for (unsigned lvl = 0; lvl < bmt_levels; ++lvl) {
                if ((page_idx >> (3 * lvl)) ==
                    (e.pageIdx >> (3 * lvl))) {
                    join = lvl;
                    break;
                }
            }
            const unsigned shared = bmt_levels - join;
            if (shared > best_shared) {
                best_shared = shared;
                joined_done = e.done;
            }
        }
        if (best_shared > 0) {
            charged = bmt_levels - best_shared;
            statBmtCoalesced += best_shared;
            DOLOS_CRASH_POINT(MasuBmtCoalesce);
        }
    }

    statBmtCycles += Cycles(charged) * params.macLatency;
    // One named crash point per charged level of the climb: power can
    // fail with any prefix of the window's node updates applied. All
    // tree state touched so far this drain is volatile (the leaf
    // update and root commit come later in secureWrite), so recovery
    // must rebuild from the persisted counters alone.
    for (unsigned lvl = 0; lvl < charged; ++lvl)
        DOLOS_CRASH_POINT(MasuBmtLevel);

    // The root is always updated last: a climb that coalesced its
    // upper levels onto an in-flight update completes no earlier
    // than that update does — the shared ancestors (and the root)
    // are applied by the joined climb's final stage.
    const Tick done =
        std::max(start + Cycles(charged) * params.macLatency,
                 joined_done);

    if (params.bmtPipeline) {
        bmtInflight.push_back({page_idx, start, done});
        if (bmtInflight.size() > params.bmtPipelineWindow)
            bmtInflight.erase(bmtInflight.begin());
    }
    return done;
}

void
SecurityEngine::prefetchCounter(Addr addr)
{
    if (!params.tagPrefetch)
        return;
    const Addr cb_addr = AddressMap::counterBlockAddr(addr);
    if (ctrCache.contains(cb_addr))
        return;
    // Never displace a dirty line: it may be about to be drained and
    // its eviction would post an NVM metadata write the serial demand
    // path never issued.
    if (ctrCache.wouldEvictDirty(cb_addr)) {
        DOLOS_CRASH_POINT(PrefetchDirtyBackoff);
        return;
    }
    if (nvm_.isQuarantined(cb_addr))
        return;

    // Run the same functional checks the demand path would — tamper
    // detection must not get weaker (or quieter) because the block
    // arrived early. A media-flagged frame keeps its demand-path
    // retry/repair semantics: skip and let the drain handle it.
    const Block raw = nvm_.readFunctionalChecked(cb_addr);
    if (nvm_.lastReadMediaError())
        return;
    ++statTagPrefetchIssued;
    const Addr page_idx = AddressMap::pageOf(addr);
    const CounterPage fetched = CounterPage::unpack(raw);
    if (counters.hasPage(page_idx)) {
        if (!(fetched == counters.page(page_idx))) {
            ++statAttacks;
            warn("counter block 0x%llx modified in NVM",
                 (unsigned long long)cb_addr);
        }
    } else {
        verifyFetchedPage(page_idx, fetched);
        counters.restorePage(page_idx, fetched);
    }
    const auto ev = ctrCache.insert(cb_addr, false);
    DOLOS_ASSERT(!ev, "tag prefetch evicted a dirty line");
    prefetchPending.insert(cb_addr);
    DOLOS_CRASH_POINT(PrefetchIssue);
}

SecureWriteResult
SecurityEngine::secureWrite(Addr addr, const Block &plaintext,
                            Tick arrival)
{
    DOLOS_PROF_SCOPE(SecurityEngine);
    DOLOS_ASSERT(params.map.isProtectedData(addr),
                 "write outside protected region: 0x%llx",
                 (unsigned long long)addr);
    const Addr page_idx = AddressMap::pageOf(addr);
    DOLOS_ASSERT(page_idx < params.functionalLeaves,
                 "page %llu beyond functional tree coverage",
                 (unsigned long long)page_idx);
    ++statWrites;

    const Tick start = std::max(arrival, busyUntil_);
    Tick t = fetchCounter(addr, start, true);
    statCtrFetchCycles += t - start;
    if (t > start)
        DOLOS_TRACE(trace::Stage::MasuCtrFetch, start, t, addr, 0);
    DOLOS_CRASH_POINT(MasuCtrFetch);

    const Addr cb_addr = AddressMap::counterBlockAddr(addr);
    const CounterPage old_page = counters.page(page_idx);
    const CounterBump bump = counters.increment(addr);
    SecureWriteResult res;
    res.pageReencrypted = bump.pageOverflow;
    if (bump.pageOverflow) {
        t = reencryptPage(page_idx, old_page, t);
        // The re-encryption just rewrote every sibling of the page
        // under the new counters; commit the new page state (tree
        // leaf, root register, shadow/stop-loss persistence) in the
        // same atomic step. Any later crash point would otherwise
        // leave stored siblings unreadable: recovery's re-drain only
        // rewrites the dumped address, never its page siblings.
        const CounterPage &npage = counters.page(page_idx);
        tree.updateLeaf(page_idx, npage);
        rootRegister = tree.root();
        if (params.crashScheme == CrashScheme::Anubis)
            shadow.recordUpdate(ctrCache.slotOf(cb_addr), page_idx,
                                npage, ++shadowSeq, t);
        else
            nvm_.write(cb_addr, npage.pack(), t);
    }
    DOLOS_CRASH_POINT(MasuCtrBumped);

    // Counter-mode encryption: pad generation (AES) then XOR.
    const Tick crypto_start = t;
    t += params.aesLatency;
    statAesCycles += params.aesLatency;
    DOLOS_TRACE(trace::Stage::MasuAes, crypto_start, t, addr, 0);
    const auto pad = padGen.generate(ivFor(addr, bump.newCounter),
                                     blockSize);
    res.ciphertext = plaintext;
    crypto::xorInto(res.ciphertext.data(), pad.data(), blockSize);
    res.counter = bump.newCounter;
    DOLOS_CRASH_POINT(MasuAesPad);

    // Data MAC + integrity-tree update: the configured number of
    // serial MAC operations (Table 1: 10 eager / 4 lazy). One MAC op
    // authenticates the data block; the remainder climb the BMT —
    // serially, or coalesced against the in-flight window when
    // bmtPipeline is on (chargeBmtClimb).
    const Tick mac_start = t;
    const Tick mac_end = t + params.macLatency;
    statMacCycles += params.macLatency;
    DOLOS_TRACE(trace::Stage::MasuMac, mac_start, mac_end, addr, 0);
    t = chargeBmtClimb(page_idx, mac_end);
    DOLOS_TRACE(trace::Stage::MasuBmt, mac_end, t, addr, 0);
    res.macTag = dataMac(addr, res.ciphertext, bump.newCounter);
    storeDataMac(addr, res.macTag);
    // The stored MAC now reflects the new ciphertext while the NVM
    // data block and ECC still hold the old write: recovery must
    // tolerate the mismatch because the dumped entry re-drains
    // (rewriting data, MAC, and ECC) before any demand read.
    DOLOS_CRASH_POINT(MasuMacStored);

    const CounterPage &page = counters.page(page_idx);
    tree.updateLeaf(page_idx, page);

    // Keep the tree cache coherent with the updated path (the root
    // lives in the on-chip register, not the cache).
    Addr idx = page_idx;
    for (unsigned lvl = 1; lvl + 1 < tree.numLevels(); ++lvl) {
        idx /= MerkleTree::arity;
        const Addr node_addr = AddressMap::treeNodeAddr(lvl, idx);
        if (mtCache.contains(node_addr)) {
            mtCache.markDirty(node_addr);
        } else if (const auto ev = mtCache.insert(node_addr, true)) {
            evictTreeNode(ev->addr, t);
        }
    }

    // The DIMM's ECC bits, computed over the plaintext, travel with
    // every write (Osiris leans on them at recovery).
    storeEcc(addr, OsirisEcc::compute(plaintext));

    // --- atomic commit group: no crash point inside or after -------
    // The root-register flip and the crash scheme's persistence
    // record (Anubis shadow entry / Osiris stop-loss write-through)
    // must land together, and nothing may interrupt between here and
    // the controller's redo-log fill: a root register ahead of the
    // recoverable counters reads as tamper at reboot. The next
    // microstep is MasuRootCommit in the controller, fired only once
    // the redo record can replay this write.
    rootRegister = tree.root();
    if (params.crashScheme == CrashScheme::Anubis) {
        // Anubis: persist the shadow entry for this counter block.
        shadow.recordUpdate(ctrCache.slotOf(cb_addr), page_idx, page,
                            ++shadowSeq, t);
    } else {
        // Osiris stop-loss: write the counter block through to NVM
        // every K-th update of a block (and always after a page
        // re-encryption, whose counter jump exceeds the stop-loss).
        if (bump.newCounter % params.osirisStopLoss == 0 ||
            bump.pageOverflow) {
            nvm_.write(cb_addr, page.pack(), t);
        }
    }

    // Pipelined engines accept the next write one MAC-slot after
    // this write's metadata was ready; a non-pipelined engine is
    // occupied for the full latency. The lazy ToC scheme is
    // pipelined by construction: the paper assumes parallel AES-GCM
    // engines updating the tree levels concurrently (Phoenix / [22]).
    // The BMT pipeline implies per-level engines, so it frees the
    // front of the engine the same way.
    const bool piped = params.pipelinedWrites || params.bmtPipeline ||
                       params.treePolicy == TreeUpdatePolicy::LazyToc;
    busyUntil_ = piped ? crypto_start + params.macLatency : t;

    // Opt-in background scrub: walk the stored metadata every N
    // secure writes, catching latent stuck-at cells while the
    // volatile truth still exists. Functional only — the pass models
    // an idle-cycle scrubber, not demand bandwidth.
    if (params.scrubIntervalWrites != 0 &&
        statWrites.value() % params.scrubIntervalWrites == 0)
        scrubMetadata();

    res.doneTick = t;
    statWriteLatency.sample(double(t - arrival));
    statWriteLatencyHist.sample(double(t - arrival));
    debugPrintf("MaSu", "write addr=0x%llx arrival=%llu done=%llu",
                (unsigned long long)addr, (unsigned long long)arrival,
                (unsigned long long)t);
    return res;
}

ReadResult
SecurityEngine::secureRead(Addr addr, Tick arrival)
{
    DOLOS_PROF_SCOPE(SecurityEngine);
    DOLOS_ASSERT(params.map.isProtectedData(addr),
                 "read outside protected region: 0x%llx",
                 (unsigned long long)addr);
    ++statReads;

    if (nvm_.isQuarantined(addr)) {
        // Known-destroyed block: degrade to poison (zeros) without
        // touching the media or re-raising an alarm.
        ++statQuarantineReads;
        const Tick t = arrival + nvm_.config().readLatency;
        statReadLatency.sample(double(t - arrival));
        statReadLatencyHist.sample(double(t - arrival));
        return {zeroBlock(), t};
    }

    if (!nvm_.store().contains(addr)) {
        // Never written: cold memory reads as zeros, no MAC yet.
        ++statColdReads;
        const ReadResult r = nvm_.read(addr, arrival);
        statReadLatency.sample(double(r.completeTick - arrival));
        statReadLatencyHist.sample(double(r.completeTick - arrival));
        return {zeroBlock(), r.completeTick};
    }

    // Data fetch and counter fetch overlap; the pad is generated
    // while the data is in flight (counter-mode advantage), so only
    // the MAC verification and the XOR trail the data.
    ReadResult data = nvm_.read(addr, arrival);
    bool media_error = nvm_.lastReadMediaError();
    const Tick ctr_ready = fetchCounter(addr, arrival, false);
    Tick t = std::max(data.completeTick, ctr_ready);
    t += params.macLatency + 1;

    // The counter fetch or the MAC load below may just have
    // discovered an unrecoverable metadata fault whose cascade covers
    // this very block: degrade to poison, never alarm.
    if (nvm_.isQuarantined(addr)) {
        ++statQuarantineReads;
        statReadLatency.sample(double(t - arrival));
        statReadLatencyHist.sample(double(t - arrival));
        return {zeroBlock(), t};
    }

    const std::uint64_t counter = counters.counterOf(addr);
    const crypto::MacTag stored_mac = loadDataMacHealed(addr);
    if (nvm_.isQuarantined(addr)) {
        ++statQuarantineReads;
        statReadLatency.sample(double(t - arrival));
        statReadLatencyHist.sample(double(t - arrival));
        return {zeroBlock(), t};
    }
    bool mac_ok = dataMac(addr, data.data, counter) == stored_mac;

    // A failed MAC check has two very different causes. When the
    // device itself flagged the access, the cells are suspect: retry
    // with doubling backoff (a transient disturb error heals; a stuck
    // cell keeps failing and the block is retired). Only a mismatch
    // on a clean device read is attributed to an adversary.
    unsigned attempts = 0;
    while (!mac_ok && media_error && attempts < params.mediaRetryLimit) {
        ++attempts;
        ++statMediaRetries;
        const Cycles backoff = params.mediaRetryBackoff
                               << (attempts - 1);
        data = nvm_.read(addr, t + backoff);
        media_error = nvm_.lastReadMediaError();
        t = data.completeTick + params.macLatency + 1;
        mac_ok = dataMac(addr, data.data, counter) == stored_mac;
    }
    if (mac_ok && attempts) {
        ++statMediaHealed;
    } else if (!mac_ok) {
        if (media_error || attempts) {
            nvm_.quarantine(addr,
                            "uncorrectable media fault (read retries "
                            "exhausted)",
                            attempts);
            warn("data block 0x%llx quarantined after %u media "
                 "retries",
                 (unsigned long long)addr, attempts);
            statReadLatency.sample(double(t - arrival));
            statReadLatencyHist.sample(double(t - arrival));
            return {zeroBlock(), t};
        }
        ++statAttacks;
        warn("data block 0x%llx failed MAC verification",
             (unsigned long long)addr);
    }

    Block plaintext = data.data;
    const auto pad = padGen.generate(ivFor(addr, counter), blockSize);
    crypto::xorInto(plaintext.data(), pad.data(), blockSize);

    statReadLatency.sample(double(t - arrival));
    statReadLatencyHist.sample(double(t - arrival));
    return {plaintext, t};
}

Tick
SecurityEngine::writeCiphertext(Addr addr, const Block &ciphertext,
                                Tick now)
{
    Tick done = nvm_.write(addr, ciphertext, now);
    unsigned attempts = 0;
    while (nvm_.lastWriteMediaError() &&
           attempts < params.mediaRetryLimit) {
        ++attempts;
        ++statMediaRetries;
        const Cycles backoff = params.mediaRetryBackoff
                               << (attempts - 1);
        done = nvm_.write(addr, ciphertext, done + backoff);
    }
    if (nvm_.lastWriteMediaError()) {
        nvm_.quarantine(addr,
                        "write failure persisted through retries",
                        attempts);
        warn("data block 0x%llx quarantined after %u failed write "
             "retries",
             (unsigned long long)addr, attempts);
    } else if (attempts) {
        ++statMediaHealed;
    }
    return done;
}

void
SecurityEngine::reissueCiphertext(Addr addr, const Block &plaintext)
{
    const std::uint64_t counter = counters.counterOf(addr);
    Block ct = plaintext;
    const auto pad = padGen.generate(ivFor(addr, counter), blockSize);
    crypto::xorInto(ct.data(), pad.data(), blockSize);
    nvm_.writeFunctional(addr, ct);
    storeDataMac(addr, dataMac(addr, ct, counter));
    storeEcc(addr, OsirisEcc::compute(plaintext));
}

void
SecurityEngine::recoverCountersOsiris(SecureRecoveryResult &res)
{
    // The persisted counter lags the true one by less than the
    // stop-loss K, so decrypting with candidates c0..c0+K-1 and
    // checking the plaintext's ECC pins the true counter.
    std::vector<Addr> data_blocks;
    for (const auto &[addr, block] : nvm_.store().raw())
        if (params.map.isProtectedData(addr) &&
            !nvm_.isQuarantined(addr))
            data_blocks.push_back(addr);

    for (const Addr addr : data_blocks) {
        ++res.osirisProbed;
        const Block ct = nvm_.readFunctional(addr);
        const EccCode stored = loadEcc(addr);
        const std::uint64_t c0 = counters.counterOf(addr);
        bool recovered = false;
        for (unsigned k = 0; k < params.osirisStopLoss; ++k) {
            const std::uint64_t candidate = c0 + k;
            Block pt = ct;
            const auto pad =
                padGen.generate(ivFor(addr, candidate), blockSize);
            crypto::xorInto(pt.data(), pad.data(), blockSize);
            if (OsirisEcc::check(pt, stored)) {
                if (k != 0) {
                    // Advance the page image to the probed counter.
                    CounterPage &page =
                        counters.page(AddressMap::pageOf(addr));
                    const unsigned idx = AddressMap::blockInPage(addr);
                    page.major = candidate / minorCounterLimit;
                    page.minors[idx] =
                        std::uint8_t(candidate % minorCounterLimit);
                    ++res.osirisAdvanced;
                }
                recovered = true;
                break;
            }
        }
        if (!recovered) {
            ++res.osirisUnrecovered;
            ++statAttacks;
            warn("Osiris could not recover counter for 0x%llx",
                 (unsigned long long)addr);
        }
    }
}

void
SecurityEngine::crash()
{
    ctrCache.invalidateAll();
    mtCache.invalidateAll();
    counters.clear();
    tree.clear();
    busyUntil_ = 0;
    bmtInflight.clear();
    prefetchPending.clear();
    // rootRegister and shadowSeq are on-chip persistent registers.
}

SecureRecoveryResult
SecurityEngine::recover()
{
    SecureRecoveryResult res;

    // 1. Restore counters from the NVM counter region. Reads pass
    // through the media-fault model: a crash can land while metadata
    // frames are worn, and trusting a garbage image would poison the
    // tree rebuild. Persistent faults take the trial-MAC repair path.
    const Addr ctr_lo = AddressMap::counterBase;
    const Addr ctr_hi =
        ctr_lo + params.map.numPages() * blockSize;
    std::vector<Addr> ctr_blocks;
    for (const auto &[addr, block] : nvm_.store().raw())
        if (addr >= ctr_lo && addr < ctr_hi)
            ctr_blocks.push_back(addr);
    std::sort(ctr_blocks.begin(), ctr_blocks.end());
    struct FailedFrame
    {
        Addr addr;
        Addr pageIdx;
        unsigned retries;
    };
    std::vector<FailedFrame> failed_frames;
    bool media_evidence = false;
    for (const Addr addr : ctr_blocks) {
        const Addr page_idx = (addr - ctr_lo) / blockSize;
        Block b = nvm_.readFunctionalChecked(addr);
        bool media = nvm_.lastReadMediaError();
        unsigned attempts = 0;
        while (media && attempts < params.mediaRetryLimit) {
            ++attempts;
            ++statMediaRetries;
            b = nvm_.readFunctionalChecked(addr);
            media = nvm_.lastReadMediaError();
        }
        if (!media) {
            if (attempts) {
                ++statMediaHealed;
                media_evidence = true;
            }
            counters.restorePage(page_idx, CounterPage::unpack(b));
            ++res.pagesRestored;
            continue;
        }
        media_evidence = true;
        ++statMetaMediaFaults;
        const auto rebuilt = rebuildCounterPage(page_idx);
        if (rebuilt) {
            counters.restorePage(page_idx, *rebuilt);
            nvm_.remapToSpare(addr, "counter frame media fault "
                                    "(recovery)");
            nvm_.writeFunctional(addr, rebuilt->pack());
            ++statCounterBlocksRebuilt;
            ++res.counterBlocksRepaired;
            ++res.pagesRestored;
        } else {
            // Don't cascade yet: the shadow table may still hold a
            // valid image of this page. Resolve after the merge.
            failed_frames.push_back({addr, page_idx, attempts});
        }
    }

    // A media-lost counter frame is only unrecoverable once every
    // source is exhausted: NVM image (step 1), trial-MAC rebuild, and
    // the crash-consistency scheme's own image (shadow merge below).
    const auto resolveFailedFrames = [&] {
        for (const auto &f : failed_frames) {
            if (counters.hasPage(f.pageIdx)) {
                nvm_.remapToSpare(f.addr, "counter frame media fault "
                                          "(recovery)");
                nvm_.writeFunctional(f.addr,
                                     counters.page(f.pageIdx).pack());
                ++statCounterBlocksRebuilt;
                ++res.counterBlocksRepaired;
                ++res.pagesRestored;
            } else {
                cascadeQuarantineCounterBlock(f.addr, f.retries);
                ++res.counterBlocksCascaded;
            }
        }
        failed_frames.clear();
    };

    // 2. Recover the counters that were dirty in the (lost) counter
    // cache, via the configured scheme.
    if (params.crashScheme == CrashScheme::Anubis) {
        // Merge Anubis shadow entries. Counters are monotonic, so
        // the componentwise-newest image wins; stale slots are
        // harmless.
        const ShadowScan scan = shadow.scan(params.mediaRetryLimit);
        res.shadowTamper = scan.tamperDetected;
        res.shadowMediaSkipped = scan.mediaSkippedSlots;
        if (scan.mediaSkippedSlots) {
            statShadowSlotsSkipped += scan.mediaSkippedSlots;
            media_evidence = true;
        }
        if (scan.tamperDetected)
            ++statAttacks;
        for (const auto &e : scan.entries) {
            if (!counters.hasPage(e.pageIdx)) {
                counters.restorePage(e.pageIdx, e.page);
                ++res.shadowApplied;
                continue;
            }
            CounterPage &cur = counters.page(e.pageIdx);
            const bool newer =
                e.page.major > cur.major ||
                (e.page.major == cur.major &&
                 [&] {
                     for (unsigned i = 0; i < 64; ++i)
                         if (e.page.minors[i] > cur.minors[i])
                             return true;
                     return false;
                 }());
            if (newer) {
                cur = e.page;
                ++res.shadowApplied;
            }
        }
        resolveFailedFrames();
    } else {
        resolveFailedFrames();
        recoverCountersOsiris(res);
    }

    // 3. Rebuild the integrity tree and authenticate against the
    // eagerly-persisted on-chip root.
    tree.rebuild(counters.all());
    res.rootVerified = (tree.root() == rootRegister);

    if (!res.rootVerified && media_evidence) {
        // Media faults may have cost us the newest image of some
        // pages (a worn shadow slot, a rebuilt frame whose shadow
        // copy was newer). The data MACs pin each stored block's true
        // counter: sweep, repair mismatching pages by trial MAC, and
        // re-check. Without media evidence this path never runs — a
        // clean-boot root mismatch stays tamper.
        std::vector<Addr> data_blocks;
        for (const auto &[addr, block] : nvm_.store().raw())
            if (params.map.isProtectedData(addr) &&
                !nvm_.isQuarantined(addr))
                data_blocks.push_back(addr);
        std::sort(data_blocks.begin(), data_blocks.end());
        std::unordered_set<Addr> bad_pages;
        for (const Addr a : data_blocks) {
            const Block ct = nvm_.readFunctional(a);
            if (dataMac(a, ct, counters.counterOf(a)) !=
                loadDataMac(a))
                bad_pages.insert(AddressMap::pageOf(a));
        }
        std::vector<Addr> pages(bad_pages.begin(), bad_pages.end());
        std::sort(pages.begin(), pages.end());
        for (const Addr p : pages) {
            const auto rebuilt = rebuildCounterPage(p);
            if (rebuilt) {
                counters.restorePage(p, *rebuilt);
                ++res.macPinnedRepairs;
            } else {
                cascadeQuarantineCounterBlock(ctr_lo + p * blockSize,
                                              0);
                ++res.counterBlocksCascaded;
            }
        }
        tree.rebuild(counters.all());
        res.rootVerified = (tree.root() == rootRegister);
        if (!res.rootVerified) {
            // Every surviving stored block is now MAC-consistent with
            // its counter; the residual mismatch is the bounded,
            // fully-reported wear loss (cascaded pages rebuild as
            // untouched). Re-anchor on the rebuilt root — alarming
            // here would turn every unrecoverable wear event into a
            // false tamper report.
            rootRegister = tree.root();
            res.rootReanchored = true;
            res.rootVerified = true;
            ++statRootReanchored;
            warn("integrity root re-anchored after media-faulted "
                 "recovery");
        }
    }

    if (!res.rootVerified)
        ++statAttacks;

    // 4. Write the recovered metadata back to NVM (as Anubis does),
    // so the persistent image is consistent again: stale counter
    // blocks and tree nodes would otherwise read as tampered later.
    for (const auto &[page_idx, page] : counters.all()) {
        nvm_.writeFunctional(
            AddressMap::counterBase + page_idx * blockSize,
            page.pack());
    }
    const Addr tree_lo = AddressMap::treeBase;
    const Addr tree_hi = AddressMap::shadowBase;
    std::vector<Addr> stale_nodes;
    for (const auto &[addr, block] : nvm_.store().raw())
        if (addr >= tree_lo && addr < tree_hi)
            stale_nodes.push_back(addr);
    for (const Addr addr : stale_nodes) {
        const auto [level, idx] = AddressMap::treeNodeOf(addr);
        Block b{};
        const crypto::MacTag tag = tree.nodeTag(level, idx);
        std::memcpy(b.data(), tag.data(), tag.size());
        nvm_.writeFunctional(addr, b);
    }
    return res;
}

ScrubReport
SecurityEngine::scrubMetadata()
{
    ScrubReport rep;
    ++statScrubPasses;
    std::vector<Addr> blocks;
    for (const auto &[addr, block] : nvm_.store().raw()) {
        const NvmRegion r = params.map.regionOf(addr);
        if (r == NvmRegion::Counter || r == NvmRegion::Tree ||
            r == NvmRegion::Mac)
            blocks.push_back(addr);
    }
    std::sort(blocks.begin(), blocks.end());
    for (const Addr addr : blocks) {
        if (nvm_.isQuarantined(addr))
            continue;
        ++rep.blocksScanned;
        nvm_.readFunctionalChecked(addr);
        bool media = nvm_.lastReadMediaError();
        if (!media)
            continue;
        unsigned attempts = 0;
        while (media && attempts < params.mediaRetryLimit) {
            ++attempts;
            ++statMediaRetries;
            nvm_.readFunctionalChecked(addr);
            media = nvm_.lastReadMediaError();
        }
        ++rep.faultsFound;
        if (!media) {
            // A transient disturb error: the retry consumed it and
            // the underlying cells are intact.
            ++statMediaHealed;
            ++rep.repaired;
            ++statScrubRepairs;
            continue;
        }
        bool repaired = true;
        switch (params.map.regionOf(addr)) {
          case NvmRegion::Counter:
            repaired = repairCounterBlock(
                addr, AddressMap::pageOfCounterBlock(addr), attempts);
            break;
          case NvmRegion::Tree: {
            const auto [level, idx] = AddressMap::treeNodeOf(addr);
            repairTreeNode(addr, level, idx, attempts);
            break;
          }
          case NvmRegion::Mac:
            repaired = repairMacBlock(addr, attempts);
            break;
          default:
            break;
        }
        if (repaired) {
            ++rep.repaired;
            ++statScrubRepairs;
        } else {
            ++rep.cascaded;
        }
    }
    return rep;
}

persist::StateManifest
SecurityEngine::stateManifest() const
{
    persist::StateManifest m("SecurityEngine");
    DOLOS_MF_CONST(m, params);
    DOLOS_MF_CONST(m, nvm_);
    DOLOS_MF_CONST(m, mac);
    DOLOS_MF_CONST(m, padGen);
    DOLOS_MF_DELEGATED_V(m, counters);
    DOLOS_MF_DELEGATED_V(m, tree);
    DOLOS_MF_DELEGATED_V(m, ctrCache);
    DOLOS_MF_DELEGATED_V(m, mtCache);
    DOLOS_MF_DELEGATED_P(m, shadow);
    DOLOS_MF_P(m, rootRegister);
    DOLOS_MF_P(m, shadowSeq);
    DOLOS_MF_V(m, busyUntil_);
    DOLOS_MF_V(m, bmtInflight);
    DOLOS_MF_V(m, prefetchPending);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statWrites);
    DOLOS_MF_P(m, statReads);
    DOLOS_MF_P(m, statAttacks);
    DOLOS_MF_P(m, statOverflows);
    DOLOS_MF_P(m, statColdReads);
    DOLOS_MF_P(m, statMediaRetries);
    DOLOS_MF_P(m, statMediaHealed);
    DOLOS_MF_P(m, statQuarantineReads);
    DOLOS_MF_P(m, statMetaMediaFaults);
    DOLOS_MF_P(m, statCounterBlocksRebuilt);
    DOLOS_MF_P(m, statTreeNodesRepaired);
    DOLOS_MF_P(m, statMacBlocksRebuilt);
    DOLOS_MF_P(m, statCascadedBlocks);
    DOLOS_MF_P(m, statShadowSlotsSkipped);
    DOLOS_MF_P(m, statRootReanchored);
    DOLOS_MF_P(m, statScrubPasses);
    DOLOS_MF_P(m, statScrubRepairs);
    DOLOS_MF_P(m, statCtrFetchCycles);
    DOLOS_MF_P(m, statAesCycles);
    DOLOS_MF_P(m, statMacCycles);
    DOLOS_MF_P(m, statBmtCycles);
    DOLOS_MF_P(m, statBmtCoalesced);
    DOLOS_MF_P(m, statTagPrefetchIssued);
    DOLOS_MF_P(m, statTagPrefetchHits);
    DOLOS_MF_P(m, statWriteLatency);
    DOLOS_MF_P(m, statReadLatency);
    DOLOS_MF_P(m, statTreeWalkLevels);
    DOLOS_MF_P(m, statWriteLatencyHist);
    DOLOS_MF_P(m, statReadLatencyHist);
    return m;
}

void
SecurityEngine::collectStateManifests(
    std::vector<persist::StateManifest> &out) const
{
    out.push_back(stateManifest());
    out.push_back(counters.stateManifest());
    out.push_back(tree.stateManifest());
    out.push_back(ctrCache.stateManifest("ctrCache"));
    out.push_back(mtCache.stateManifest("mtCache"));
    out.push_back(shadow.stateManifest());
}

} // namespace dolos
