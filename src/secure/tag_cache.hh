/**
 * @file
 * Tag-only set-associative LRU cache for security metadata.
 *
 * The counter cache and integrity-tree cache need hit/miss timing,
 * dirty tracking, and eviction victims — but their *contents* are the
 * controller's volatile metadata structures. This cache therefore
 * tracks only presence and dirtiness; the caller performs fetches and
 * writebacks using the victim addresses it reports.
 */

#ifndef DOLOS_SECURE_TAG_CACHE_HH
#define DOLOS_SECURE_TAG_CACHE_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dolos
{

/** Geometry of a metadata cache (Table 1 defaults in the engine). */
struct TagCacheParams
{
    std::string name = "metaCache";
    std::uint64_t sizeBytes = 128 * 1024;
    unsigned assoc = 4;
};

/** A dirty victim evicted during insertion. */
struct EvictedTag
{
    Addr addr;
};

/** Tag-only metadata cache. */
class TagCache
{
  public:
    explicit TagCache(const TagCacheParams &params);

    /** True (and LRU-touch) if @p addr is cached. */
    bool lookup(Addr addr);

    /** Presence check without LRU side effects. */
    bool contains(Addr addr) const;

    /**
     * Insert @p addr (must not be present). If a dirty victim is
     * displaced, it is returned so the caller can write it back.
     */
    std::optional<EvictedTag> insert(Addr addr, bool dirty);

    /**
     * True if inserting @p addr (absent) would displace a *dirty*
     * victim. Prefetchers use this to back off rather than force a
     * metadata writeback the demand stream never asked for.
     */
    bool wouldEvictDirty(Addr addr) const;

    /** Mark a present entry dirty (no-op when absent). */
    void markDirty(Addr addr);

    /** Clear an entry's dirty bit (writeback completed). */
    void markClean(Addr addr);

    /** True if present and dirty. */
    bool isDirty(Addr addr) const;

    /**
     * Linear slot index (set * assoc + way) of a present entry, used
     * by Anubis to mirror the cache geometry in its shadow table.
     * The entry must be present.
     */
    std::size_t slotOf(Addr addr) const;

    /** Total number of slots (sets x ways). */
    std::size_t numSlots() const { return lines.size(); }

    /** Invoke @p fn for every dirty entry (crash bookkeeping). */
    void forEachDirty(const std::function<void(Addr)> &fn) const;

    /** Drop everything (crash). */
    void invalidateAll();

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    std::uint64_t dirtyEvictions() const { return statDirtyEv.value(); }
    std::size_t numEntries() const { return entries; }
    stats::StatGroup &statGroup() { return stats_; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest(std::string instance) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;

        friend void
        dolosDescribeValue(std::ostream &os, const Line &l)
        {
            os << l.valid << '/' << l.dirty << '/' << l.tag << '/'
               << l.lastUse;
        }
    };

    std::size_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    TagCacheParams params;
    std::size_t numSets;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;
    std::size_t entries = 0;

    stats::StatGroup stats_;
    stats::Scalar statHits;
    stats::Scalar statMisses;
    stats::Scalar statDirtyEv;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(TagCache);
    DOLOS_PERSISTENT(params);
    DOLOS_PERSISTENT(numSets);
    DOLOS_VOLATILE(lines);
    DOLOS_VOLATILE(useClock);
    DOLOS_VOLATILE(entries);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statHits);
    DOLOS_PERSISTENT(statMisses);
    DOLOS_PERSISTENT(statDirtyEv);
};

} // namespace dolos

#endif // DOLOS_SECURE_TAG_CACHE_HH
