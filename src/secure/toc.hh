/**
 * @file
 * Tree of Counters (ToC) with lazy updates and a Phoenix-style
 * eager shadow root.
 *
 * SGX-style integrity trees store per-child version counters in each
 * node, with a node MAC computed over the node's counters and its own
 * version (held in its parent). Eagerly updating every level on every
 * write is what allows parallel MAC engines; Phoenix (Alwadi et al.)
 * instead updates lazily — only the leaf's version in its immediate
 * parent changes on a write, and upper levels change when a dirty
 * node is evicted from the metadata cache — while protecting the
 * cached (not-yet-propagated) state with a small, eagerly-updated
 * Merkle root over the cache contents.
 *
 * This is a functional substrate model with explicit cache-residency
 * tracking; the Dolos engine uses its update-cost structure for
 * timing (4 serial MACs per write, Table 1) and this class's tests
 * demonstrate the recovery/verification semantics.
 */

#ifndef DOLOS_SECURE_TOC_HH
#define DOLOS_SECURE_TOC_HH

#include <set>
#include <unordered_map>
#include <vector>

#include "crypto/mac_engine.hh"
#include "sim/types.hh"

namespace dolos
{

/** One ToC node: version counters of its eight children. */
struct TocNode
{
    std::array<std::uint64_t, 8> versions{};
};

/**
 * Functional lazy Tree of Counters.
 */
class TreeOfCounters
{
  public:
    static constexpr unsigned arity = 8;

    TreeOfCounters(Addr num_leaves, const crypto::MacEngine &mac);

    unsigned numLevels() const { return unsigned(levelSizes.size()); }
    Addr levelSize(unsigned lvl) const { return levelSizes[lvl]; }

    /**
     * A write to leaf @p leaf_idx: bump its version in its parent
     * node (lazy: upper levels untouched). The parent becomes
     * cache-resident and dirty.
     */
    void writeLeaf(Addr leaf_idx);

    /**
     * Evict a dirty node from the metadata cache: persist it to the
     * NVM image and propagate — bump the node's own version in *its*
     * parent (which becomes dirty in turn; the root version is
     * on-chip and always persistent).
     */
    void evict(unsigned level, Addr idx);

    /** Evict every dirty node, bottom-up (orderly shutdown). */
    void flushAll();

    /** Version of child @p idx as recorded in its level-@p level parent. */
    std::uint64_t versionOf(unsigned level, Addr idx) const;

    /**
     * MAC of a persisted node, as stored in the NVM image. Computed
     * over the node's child versions and the node's own version.
     */
    crypto::MacTag storedMac(unsigned level, Addr idx) const;

    /**
     * Verify the NVM image of node (@p level, @p idx) against the
     * current (trusted) version in its parent.
     */
    bool verifyStored(unsigned level, Addr idx) const;

    /** Corrupt the persisted node image (attack injection). */
    void tamperStored(unsigned level, Addr idx);

    /** Captured (node, MAC) pair from the NVM image. */
    struct TocSnapshot
    {
        TocNode node;
        crypto::MacTag mac{};
    };

    /** Snapshot the persisted image of a node (for replay tests). */
    TocSnapshot snapshotStored(unsigned level, Addr idx) const;

    /**
     * Roll the persisted node image (content *and* MAC) back to a
     * previously captured snapshot — the strongest replay an
     * off-chip adversary can mount.
     */
    void replayStored(unsigned level, Addr idx, const TocSnapshot &old);

    /** Root version counter (on-chip, persistent). */
    std::uint64_t rootVersion() const { return rootVersion_; }

    /**
     * Phoenix shadow root: an eagerly-maintained MAC over all
     * cache-resident dirty nodes. Persisted on-chip each write;
     * recovery verifies restored cache contents against it.
     */
    crypto::MacTag shadowRoot() const;

    /** Dirty (cache-resident, unpropagated) node count. */
    std::size_t numDirty() const { return dirty.size(); }

  private:
    std::uint64_t nodeKey(unsigned level, Addr idx) const;
    crypto::MacTag macOf(unsigned level, Addr idx,
                         const TocNode &node) const;

    Addr numLeaves;
    const crypto::MacEngine &mac;
    std::vector<Addr> levelSizes;

    /** Trusted current state (cache-resident + persisted merged). */
    std::unordered_map<std::uint64_t, TocNode> current;
    /** The NVM image: what an attacker can touch. */
    std::unordered_map<std::uint64_t, TocNode> persisted;
    std::unordered_map<std::uint64_t, crypto::MacTag> persistedMacs;
    /** Cache-resident dirty nodes (lost on crash unless recovered). */
    std::set<std::uint64_t> dirty;

    std::uint64_t rootVersion_ = 0;
};

} // namespace dolos

#endif // DOLOS_SECURE_TOC_HH
