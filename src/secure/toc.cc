/**
 * @file
 * Lazy Tree of Counters implementation.
 */

#include "secure/toc.hh"

#include "sim/logging.hh"

namespace dolos
{

TreeOfCounters::TreeOfCounters(Addr num_leaves,
                               const crypto::MacEngine &mac)
    : numLeaves(num_leaves), mac(mac)
{
    DOLOS_ASSERT(num_leaves > 0, "ToC needs at least one leaf");
    Addr n = num_leaves;
    levelSizes.push_back(n);
    while (n > 1) {
        n = (n + arity - 1) / arity;
        levelSizes.push_back(n);
    }
}

std::uint64_t
TreeOfCounters::nodeKey(unsigned level, Addr idx) const
{
    return (std::uint64_t(level) << 56) | idx;
}

std::uint64_t
TreeOfCounters::versionOf(unsigned level, Addr idx) const
{
    // The version of node (level, idx) lives in its parent at
    // (level + 1, idx / arity); the root's version is on-chip.
    if (level + 1 >= numLevels())
        return rootVersion_;
    const auto it = current.find(nodeKey(level + 1, idx / arity));
    if (it == current.end())
        return 0;
    return it->second.versions[idx % arity];
}

crypto::MacTag
TreeOfCounters::macOf(unsigned level, Addr idx,
                      const TocNode &node) const
{
    const std::uint64_t own_version = versionOf(level, idx);
    const std::uint8_t lvl = std::uint8_t(level);
    return mac.computeParts(
        {{&lvl, 1},
         {&idx, sizeof(idx)},
         {node.versions.data(), sizeof(node.versions)},
         {&own_version, sizeof(own_version)}});
}

void
TreeOfCounters::writeLeaf(Addr leaf_idx)
{
    DOLOS_ASSERT(leaf_idx < numLeaves, "leaf %llu out of range",
                 (unsigned long long)leaf_idx);
    if (numLevels() == 1) {
        ++rootVersion_;
        return;
    }
    const auto k = nodeKey(1, leaf_idx / arity);
    ++current[k].versions[leaf_idx % arity];
    dirty.insert(k);
}

void
TreeOfCounters::evict(unsigned level, Addr idx)
{
    const auto k = nodeKey(level, idx);
    DOLOS_ASSERT(dirty.count(k) != 0, "evicting non-dirty node");
    dirty.erase(k);

    // Propagate: bump this node's own version in its parent before
    // persisting, so the persisted MAC binds the new version.
    if (level + 1 >= numLevels()) {
        ++rootVersion_;
    } else {
        const auto pk = nodeKey(level + 1, idx / arity);
        ++current[pk].versions[idx % arity];
        dirty.insert(pk);
    }

    const TocNode &node = current[k];
    persisted[k] = node;
    persistedMacs[k] = macOf(level, idx, node);
}

void
TreeOfCounters::flushAll()
{
    for (unsigned lvl = 1; lvl < numLevels(); ++lvl) {
        // Collect this level's dirty nodes first: evict() dirties
        // parents at lvl+1, which later iterations handle.
        std::vector<Addr> level_dirty;
        for (const auto k : dirty)
            if ((k >> 56) == lvl)
                level_dirty.push_back(k & ((std::uint64_t(1) << 56) - 1));
        for (const Addr idx : level_dirty)
            evict(lvl, idx);
    }
}

crypto::MacTag
TreeOfCounters::storedMac(unsigned level, Addr idx) const
{
    const auto it = persistedMacs.find(nodeKey(level, idx));
    DOLOS_ASSERT(it != persistedMacs.end(), "node never persisted");
    return it->second;
}

bool
TreeOfCounters::verifyStored(unsigned level, Addr idx) const
{
    const auto k = nodeKey(level, idx);
    const auto nit = persisted.find(k);
    const auto mit = persistedMacs.find(k);
    if (nit == persisted.end() || mit == persistedMacs.end())
        return false;
    return macOf(level, idx, nit->second) == mit->second;
}

void
TreeOfCounters::tamperStored(unsigned level, Addr idx)
{
    const auto k = nodeKey(level, idx);
    const auto it = persisted.find(k);
    DOLOS_ASSERT(it != persisted.end(), "tampering absent node");
    ++it->second.versions[0];
}

TreeOfCounters::TocSnapshot
TreeOfCounters::snapshotStored(unsigned level, Addr idx) const
{
    const auto k = nodeKey(level, idx);
    const auto nit = persisted.find(k);
    const auto mit = persistedMacs.find(k);
    DOLOS_ASSERT(nit != persisted.end() && mit != persistedMacs.end(),
                 "node never persisted");
    return {nit->second, mit->second};
}

void
TreeOfCounters::replayStored(unsigned level, Addr idx,
                             const TocSnapshot &old)
{
    const auto k = nodeKey(level, idx);
    persisted[k] = old.node;
    persistedMacs[k] = old.mac;
}

crypto::MacTag
TreeOfCounters::shadowRoot() const
{
    // Phoenix: an eager MT over the metadata cache. Functionally we
    // fold every dirty node (sorted for determinism) into one MAC.
    std::vector<std::uint8_t> buf{0x50}; // domain separator, never empty
    for (const auto k : dirty) {
        const auto &node = current.at(k);
        const auto *kp = reinterpret_cast<const std::uint8_t *>(&k);
        buf.insert(buf.end(), kp, kp + sizeof(k));
        const auto *vp =
            reinterpret_cast<const std::uint8_t *>(node.versions.data());
        buf.insert(buf.end(), vp, vp + sizeof(node.versions));
    }
    return mac.compute(buf.data(), buf.size());
}

} // namespace dolos
