/**
 * @file
 * Sparse 8-ary Merkle tree implementation.
 */

#include "secure/merkle_tree.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace dolos
{

MerkleTree::MerkleTree(Addr num_leaves, const crypto::MacEngine &mac)
    : numLeaves(num_leaves), mac(mac)
{
    DOLOS_ASSERT(num_leaves > 0, "tree needs at least one leaf");
    Addr n = num_leaves;
    levelSizes.push_back(n);
    while (n > 1) {
        n = (n + arity - 1) / arity;
        levelSizes.push_back(n);
    }

    // Default (all-zero-counters) tags per level.
    defaults.resize(levelSizes.size());
    defaults[0] = leafTagOf(CounterPage{});
    for (unsigned lvl = 1; lvl < levelSizes.size(); ++lvl) {
        crypto::MacTag children[arity];
        for (auto &c : children)
            c = defaults[lvl - 1];
        defaults[lvl] = hashChildren(lvl, children);
    }
}

std::uint64_t
MerkleTree::key(unsigned level, Addr idx)
{
    return (std::uint64_t(level) << 56) | idx;
}

crypto::MacTag
MerkleTree::leafTagOf(const CounterPage &page) const
{
    const Block packed = page.pack();
    return mac.compute(packed.data(), packed.size());
}

crypto::MacTag
MerkleTree::hashChildren(unsigned parent_level,
                         const crypto::MacTag *children) const
{
    // Tag the level so a node cannot masquerade at another height.
    const std::uint8_t lvl = std::uint8_t(parent_level);
    return mac.computeParts({{&lvl, 1},
                             {children, arity * sizeof(crypto::MacTag)}});
}

crypto::MacTag
MerkleTree::nodeTag(unsigned level, Addr idx) const
{
    DOLOS_ASSERT(level < levelSizes.size() && idx < levelSizes[level],
                 "node (%u, %llu) out of range", level,
                 (unsigned long long)idx);
    const auto it = nodes.find(key(level, idx));
    return it == nodes.end() ? defaults[level] : it->second;
}

void
MerkleTree::recomputeNode(unsigned level, Addr idx)
{
    crypto::MacTag children[arity];
    const Addr child_base = idx * arity;
    for (unsigned c = 0; c < arity; ++c) {
        const Addr child = child_base + c;
        children[c] = child < levelSizes[level - 1]
                          ? nodeTag(level - 1, child)
                          : defaults[level - 1];
    }
    nodes[key(level, idx)] = hashChildren(level, children);
}

void
MerkleTree::updateLeaf(Addr leaf_idx, const CounterPage &page)
{
    DOLOS_ASSERT(leaf_idx < numLeaves, "leaf %llu out of range",
                 (unsigned long long)leaf_idx);
    nodes[key(0, leaf_idx)] = leafTagOf(page);
    Addr idx = leaf_idx;
    for (unsigned lvl = 1; lvl < levelSizes.size(); ++lvl) {
        idx /= arity;
        recomputeNode(lvl, idx);
    }
}

crypto::MacTag
MerkleTree::root() const
{
    return nodeTag(numLevels() - 1, 0);
}

void
MerkleTree::rebuild(const std::unordered_map<Addr, CounterPage> &pages)
{
    nodes.clear();
    // Install leaves, then recompute touched parents level by level.
    // Leaf installation order is immaterial (distinct keys, and
    // `touched` is sorted before the climb below).
    std::vector<Addr> touched;
    touched.reserve(pages.size());
    for (const auto &[leaf_idx, page] : pages) { // dolos-lint: allow(determinism)
        DOLOS_ASSERT(leaf_idx < numLeaves, "leaf %llu out of range",
                     (unsigned long long)leaf_idx);
        nodes[key(0, leaf_idx)] = leafTagOf(page);
        touched.push_back(leaf_idx);
    }
    for (unsigned lvl = 1; lvl < levelSizes.size(); ++lvl) {
        std::vector<Addr> parents;
        parents.reserve(touched.size());
        Addr last = ~Addr(0);
        std::sort(touched.begin(), touched.end());
        for (const Addr idx : touched) {
            const Addr parent = idx / arity;
            if (parent != last) {
                recomputeNode(lvl, parent);
                parents.push_back(parent);
                last = parent;
            }
        }
        touched = std::move(parents);
    }
}

persist::StateManifest
MerkleTree::stateManifest() const
{
    persist::StateManifest m("MerkleTree");
    DOLOS_MF_CONST(m, numLeaves);
    DOLOS_MF_CONST(m, mac);
    DOLOS_MF_CONST(m, levelSizes);
    DOLOS_MF_CONST(m, defaults);
    DOLOS_MF_V(m, nodes);
    return m;
}

} // namespace dolos
