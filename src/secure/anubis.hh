/**
 * @file
 * Anubis-style shadow table for crash-consistent security metadata.
 *
 * Anubis (Zubair & Awad, ISCA'19) persists, for every metadata-cache
 * update, a shadow entry in NVM recording which cached metadata block
 * changed and its new content. On a crash, scanning the (small)
 * shadow region restores the dirty metadata that was lost with the
 * volatile metadata cache; the eagerly-persisted on-chip root then
 * authenticates the result.
 *
 * Our shadow table mirrors the counter cache geometry: slot i shadows
 * cache slot i. Each entry occupies two NVM blocks:
 *   block 0: the packed counter page (64B)
 *   block 1: page index, sequence number, MAC, validity marker
 */

#ifndef DOLOS_SECURE_ANUBIS_HH
#define DOLOS_SECURE_ANUBIS_HH

#include <vector>

#include "crypto/mac_engine.hh"
#include "mem/nvm_device.hh"
#include "secure/address_map.hh"
#include "secure/counters.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

/** One recovered shadow entry. */
struct ShadowEntry
{
    Addr pageIdx = 0;
    CounterPage page;
    std::uint64_t seq = 0;
};

/** Result of a recovery scan. */
struct ShadowScan
{
    std::vector<ShadowEntry> entries;
    bool tamperDetected = false; ///< a clean-read slot failed its MAC

    /**
     * Slots the device flagged as media-faulted through every retry.
     * Wear is not tamper: the slot is skipped (its counter image may
     * be stale, which the engine's root check + MAC-pinned repair
     * sweep then handles), not alarmed on.
     */
    std::size_t mediaSkippedSlots = 0;
};

/**
 * The shadow table manager.
 */
class AnubisShadow
{
  public:
    /**
     * @param num_slots One per metadata-cache slot.
     * @param nvm Shadow entries are posted here.
     * @param mac Engine for entry MACs (not owned).
     */
    AnubisShadow(std::size_t num_slots, NvmDevice &nvm,
                 const crypto::MacEngine &mac);

    /**
     * Persist a shadow entry for cache slot @p slot after a counter
     * update (posted NVM writes).
     *
     * @return tick at which the shadow write commits.
     */
    Tick recordUpdate(std::size_t slot, Addr page_idx,
                      const CounterPage &page, std::uint64_t seq,
                      Tick now);

    /**
     * Scan all slots at recovery, verifying entry MACs. Reads pass
     * through the device's media-fault model; a media-flagged slot
     * is retried up to @p media_retry_limit times, then skipped.
     */
    ShadowScan scan(unsigned media_retry_limit = 3);

    std::size_t numSlots() const { return slots; }
    std::uint64_t writes() const { return statWrites.value(); }
    stats::StatGroup &statGroup() { return stats_; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    crypto::MacTag entryMac(Addr page_idx, const Block &packed,
                            std::uint64_t seq) const;

    std::size_t slots;
    NvmDevice &nvm;
    const crypto::MacEngine &mac;

    stats::StatGroup stats_;
    stats::Scalar statWrites;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(AnubisShadow);
    DOLOS_PERSISTENT(slots);
    DOLOS_PERSISTENT(nvm);
    DOLOS_PERSISTENT(mac);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statWrites);
};

} // namespace dolos

#endif // DOLOS_SECURE_ANUBIS_HH
