/**
 * @file
 * Tag-only metadata cache implementation.
 */

#include "secure/tag_cache.hh"

namespace dolos
{

TagCache::TagCache(const TagCacheParams &p) : params(p), stats_(p.name)
{
    DOLOS_ASSERT(p.sizeBytes % (blockSize * p.assoc) == 0,
                 "tag cache %s: bad geometry", p.name.c_str());
    numSets = p.sizeBytes / (blockSize * p.assoc);
    lines.resize(numSets * p.assoc);
    stats_.addScalar(&statHits, "hits", "metadata lookups that hit");
    stats_.addScalar(&statMisses, "misses", "metadata lookups that missed");
    stats_.addScalar(&statDirtyEv, "dirtyEvictions",
                     "dirty metadata blocks evicted");
}

std::size_t
TagCache::setIndex(Addr addr) const
{
    return (addr / blockSize) % numSets;
}

TagCache::Line *
TagCache::findLine(Addr addr)
{
    const Addr tag = blockAlign(addr);
    Line *set = &lines[setIndex(addr) * params.assoc];
    for (unsigned w = 0; w < params.assoc; ++w)
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    return nullptr;
}

const TagCache::Line *
TagCache::findLine(Addr addr) const
{
    return const_cast<TagCache *>(this)->findLine(addr);
}

bool
TagCache::lookup(Addr addr)
{
    if (Line *line = findLine(addr)) {
        ++statHits;
        line->lastUse = ++useClock;
        return true;
    }
    ++statMisses;
    return false;
}

bool
TagCache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

std::optional<EvictedTag>
TagCache::insert(Addr addr, bool dirty)
{
    const Addr tag = blockAlign(addr);
    DOLOS_ASSERT(!contains(tag), "double insert of 0x%llx",
                 (unsigned long long)tag);
    Line *set = &lines[setIndex(tag) * params.assoc];
    Line *victim = &set[0];
    for (unsigned w = 1; w < params.assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim->valid && set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }

    std::optional<EvictedTag> evicted;
    if (victim->valid) {
        --entries;
        if (victim->dirty) {
            ++statDirtyEv;
            evicted = EvictedTag{victim->tag};
        }
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    victim->lastUse = ++useClock;
    ++entries;
    return evicted;
}

bool
TagCache::wouldEvictDirty(Addr addr) const
{
    // Mirror insert()'s victim scan without touching LRU state.
    const Addr tag = blockAlign(addr);
    const Line *set = &lines[setIndex(tag) * params.assoc];
    const Line *victim = &set[0];
    for (unsigned w = 1; w < params.assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim->valid && set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    return victim->valid && victim->dirty;
}

void
TagCache::markDirty(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

void
TagCache::markClean(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = false;
}

bool
TagCache::isDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->dirty;
}

std::size_t
TagCache::slotOf(Addr addr) const
{
    const Line *line = findLine(addr);
    DOLOS_ASSERT(line != nullptr, "slotOf on absent 0x%llx",
                 (unsigned long long)addr);
    return std::size_t(line - lines.data());
}

void
TagCache::forEachDirty(const std::function<void(Addr)> &fn) const
{
    for (const auto &line : lines)
        if (line.valid && line.dirty)
            fn(line.tag);
}

void
TagCache::invalidateAll()
{
    for (auto &line : lines)
        line = Line{};
    entries = 0;
    // The LRU clock is volatile state too: a rebooted machine starts
    // at zero, and a survivor here would leak pre-crash recency into
    // post-recovery victim selection.
    useClock = 0;
}

persist::StateManifest
TagCache::stateManifest(std::string instance) const
{
    persist::StateManifest m("TagCache", std::move(instance));
    DOLOS_MF_CONST(m, params);
    DOLOS_MF_CONST(m, numSets);
    DOLOS_MF_V(m, lines);
    DOLOS_MF_V(m, useClock);
    DOLOS_MF_V(m, entries);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statHits);
    DOLOS_MF_P(m, statMisses);
    DOLOS_MF_P(m, statDirtyEv);
    return m;
}

} // namespace dolos
