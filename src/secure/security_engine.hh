/**
 * @file
 * The memory-backend security engine.
 *
 * This is the machinery every secure-NVM controller in the paper
 * shares: counter-mode AES encryption with split counters, per-block
 * data MACs (Bonsai-style), an integrity tree over the counters, a
 * counter cache and tree cache, Anubis shadow-table crash
 * consistency, and an eagerly-persisted on-chip root register.
 *
 * The baseline controller (Pre-WPQ-Secure) runs this engine *before*
 * WPQ insertion — inside the persist-ack critical path. Dolos runs
 * the same engine as the Major Security Unit (Ma-SU) *after* the WPQ.
 *
 * Functional behaviour is real: ciphertext/MACs are computed with
 * real keys; tamper, replay and relocation of NVM content are
 * genuinely detected. Timing follows Table 1 and is composed from
 * configured latencies (the engine is a serial FIFO server).
 */

#ifndef DOLOS_SECURE_SECURITY_ENGINE_HH
#define DOLOS_SECURE_SECURITY_ENGINE_HH

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/ctr_pad.hh"
#include "crypto/mac_engine.hh"
#include "mem/nvm_device.hh"
#include "secure/address_map.hh"
#include "secure/anubis.hh"
#include "secure/counters.hh"
#include "secure/merkle_tree.hh"
#include "secure/tag_cache.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

/** Integrity-tree timing policy (paper Table 1). */
enum class TreeUpdatePolicy
{
    EagerMerkle, ///< AGIT/Anubis: 10 serial MAC ops per write
    LazyToc,     ///< Phoenix: 4 serial MAC ops per write
};

/** Counter crash-consistency scheme (paper §4.4 / §6). */
enum class CrashScheme
{
    /**
     * Anubis: a shadow-table entry is persisted per metadata update;
     * recovery scans the (small) shadow region.
     */
    Anubis,

    /**
     * Osiris: counters are written through every stop-loss-K updates
     * and recovered by probing candidate counters against the ECC
     * stored with each ciphertext; recovery walks all of data.
     */
    Osiris,
};

/** Security engine configuration (Table 1 defaults). */
struct SecureParams
{
    AddressMap map;
    Cycles aesLatency = 40;
    Cycles macLatency = 160;
    unsigned macOpsEagerWrite = 10;
    unsigned macOpsLazyWrite = 4;

    /**
     * When true, tree updates pipeline across writes (per-level MAC
     * engines, as explored by Freij et al. [10]): a write's security
     * work keeps the full serial-MAC *latency*, but a new write may
     * enter the engine every macLatency cycles. The paper's baseline
     * and Ma-SU serialize updates ("all levels are updated serially,
     * similar to prior work"), so the default is false; the pipelined
     * engine is provided as an ablation (bench/ablation_pipeline).
     */
    bool pipelinedWrites = false;

    /**
     * BMT update pipeline (Freij et al. [10] style): the engine keeps
     * a small window of in-flight root-path updates and, when a new
     * write's tree path shares ancestors with one of them, only the
     * non-shared levels are charged — the shared upper levels (and
     * the root, which is always updated last) coalesce onto the
     * in-flight update. Timing-only: the functional tree/root update
     * is unchanged. Default on (survived the microstep crash sweeps;
     * `--opt-knobs none` restores the paper's serial Ma-SU).
     */
    bool bmtPipeline = true;

    /** In-flight root-path updates tracked when bmtPipeline is on. */
    unsigned bmtPipelineWindow = 4;

    /**
     * Prefetch counter/metadata blocks into the counter cache when
     * the controller admits a write into the WPQ, so the Ma-SU's
     * demand fetch at drain time overlaps the queue wait. Functional
     * warm-up only (prefetch bandwidth is not timed); never evicts a
     * dirty line (see TagCache::wouldEvictDirty). Default on
     * (`--opt-knobs none` restores the cold demand path).
     */
    bool tagPrefetch = true;

    /** Counter crash-consistency mechanism. */
    CrashScheme crashScheme = CrashScheme::Anubis;

    /** Osiris stop-loss: counter write-through every K updates. */
    unsigned osirisStopLoss = 4;

    /**
     * Media-error handling: when the NVM device flags a demand access
     * as faulty (see NvmDevice's media-fault model) the engine
     * retries up to mediaRetryLimit times, doubling the backoff each
     * attempt. Only then is the block quarantined. A MAC mismatch
     * *without* a device media flag is tamper and alarms immediately.
     */
    unsigned mediaRetryLimit = 3;
    Cycles mediaRetryBackoff = 300; ///< first retry delay; doubles

    /**
     * Counter repair: when a counter block is lost to an unhealable
     * media fault, the page is reconstructed Osiris/Phoenix-style by
     * trial-MACing each covered ciphertext against its stored data
     * MAC over candidate counters [0, counterSearchLimit). Blocks
     * whose true counter exceeds the limit are unrecoverable (the
     * cascade quarantine engages).
     */
    std::uint64_t counterSearchLimit = 4096;

    /**
     * Background scrub: every N secure writes, walk the stored
     * metadata blocks through the media-fault model and repair what
     * the device flags — catching latent stuck-at cells while the
     * volatile truth still exists, before a crash makes them fatal.
     * 0 disables scrubbing.
     */
    unsigned scrubIntervalWrites = 0;

    /**
     * Test-only planted bug (torture's --expect-bug meta-test): the
     * counter-repair path adopts the corrupted NVM image instead of
     * reconstructing from data MACs. Never enable outside tests.
     */
    bool plantCounterRepairBug = false;

    TreeUpdatePolicy treePolicy = TreeUpdatePolicy::EagerMerkle;
    TagCacheParams counterCache{"counterCache", 128 * 1024, 4};
    TagCacheParams mtCache{"mtCache", 256 * 1024, 8};
    crypto::MacKind macKind = crypto::MacKind::SipHash24;
    crypto::AesKey dataKey{};
    std::array<std::uint8_t, 16> macKey{};

    /**
     * Functional tree coverage. The paper protects 16 GB (which
     * fixes the 10-MAC eager update cost used for timing); the
     * functional tree needs to cover only the heap the workloads
     * actually touch.
     */
    Addr functionalLeaves = 1 << 16; ///< 64K pages = 256 MB
};

/** Result of a security-processed write. */
struct SecureWriteResult
{
    Block ciphertext{};
    crypto::MacTag macTag{};      ///< data MAC written alongside
    std::uint64_t counter = 0;    ///< encryption counter used
    Tick doneTick = 0;            ///< security ops complete
    bool pageReencrypted = false; ///< minor-counter overflow handled
};

/** Result of crash recovery. */
struct SecureRecoveryResult
{
    bool rootVerified = false;  ///< rebuilt root matches register
    bool shadowTamper = false;  ///< a shadow entry failed its MAC
    std::size_t pagesRestored = 0;
    std::size_t shadowApplied = 0;   ///< Anubis: entries merged
    std::size_t osirisProbed = 0;    ///< Osiris: blocks probed
    std::size_t osirisAdvanced = 0;  ///< Osiris: counters corrected
    std::size_t osirisUnrecovered = 0; ///< no candidate matched ECC

    std::size_t shadowMediaSkipped = 0; ///< worn slots skipped, no alarm
    std::size_t counterBlocksRepaired = 0; ///< media faults repaired
    std::size_t counterBlocksCascaded = 0; ///< unrecoverable, cascaded
    std::size_t macPinnedRepairs = 0; ///< pages fixed by the MAC sweep

    /**
     * The rebuilt root mismatched the persistent register, but the
     * boot saw device-flagged media faults and the MAC-pinned repair
     * sweep reconciled every stored block — the platform re-anchors
     * on the rebuilt root (bounded, reported wear loss) instead of
     * alarming. Never set on a clean boot: a mismatch without media
     * evidence is tamper.
     */
    bool rootReanchored = false;
};

/** Outcome of one background metadata scrub pass. */
struct ScrubReport
{
    std::size_t blocksScanned = 0;
    std::size_t faultsFound = 0;  ///< device-flagged reads seen
    std::size_t repaired = 0;     ///< rewritten (after remap) in place
    std::size_t cascaded = 0;     ///< unrecoverable: quarantine engaged
};

/**
 * The security engine; a serial FIFO server for write-side crypto,
 * with a fully functional secure-memory state.
 */
class SecurityEngine
{
  public:
    SecurityEngine(const SecureParams &params, NvmDevice &nvm);

    /**
     * Process one write's security work: fetch/bump counter, pad,
     * encrypt, data MAC, tree update, Anubis shadow persist.
     *
     * The engine is busy from max(arrival, previous completion)
     * until the returned doneTick. The ciphertext's NVM write is the
     * caller's responsibility (controllers differ on when it
     * happens); the MAC block and metadata writes are posted here.
     */
    SecureWriteResult secureWrite(Addr addr, const Block &plaintext,
                                  Tick arrival);

    /**
     * Process one read: NVM data fetch, counter fetch (+ tree walk
     * on miss), MAC verification, decryption.
     */
    ReadResult secureRead(Addr addr, Tick arrival);

    /** Post the ciphertext of a completed secureWrite to NVM. */
    Tick writeCiphertext(Addr addr, const Block &ciphertext, Tick now);

    /**
     * Re-encrypt a block under its *current* counter without
     * bumping it (used when Ma-SU replays a redo log at recovery).
     */
    void reissueCiphertext(Addr addr, const Block &plaintext);

    /**
     * Hint that @p addr will be drained soon (it was just admitted to
     * the WPQ): warm its counter block into the counter cache so the
     * drain-time fetchCounter hits. Honoured only when
     * params.tagPrefetch is set; never evicts a dirty line and never
     * touches media-flagged frames (those keep their demand-path
     * retry/repair semantics). Untimed.
     */
    void prefetchCounter(Addr addr);

    /** Drop all volatile state (power failure). */
    void crash();

    /**
     * Rebuild counters from NVM + shadow, rebuild the tree, verify
     * against the persistent root register.
     */
    SecureRecoveryResult recover();

    /** Earliest tick the (serial) write engine frees up. */
    Tick busyUntil() const { return busyUntil_; }

    /** True if any integrity check ever failed (attack detected). */
    bool attackDetected() const { return statAttacks.value() != 0; }
    std::uint64_t attacksDetected() const { return statAttacks.value(); }

    /**
     * Record an integrity failure detected outside the engine proper
     * (e.g. Mi-SU dump authentication in the controller), so that
     * attackDetected() reflects every verification the platform runs.
     */
    void noteAttack(const char *what);

    /** Current (volatile) counter of a block — test/inspection. */
    std::uint64_t counterOf(Addr addr) const
    {
        return counters.counterOf(addr);
    }

    /** On-chip persistent root register. */
    crypto::MacTag persistentRoot() const { return rootRegister; }

    const SecureParams &config() const { return params; }
    const crypto::MacEngine &macEngine() const { return *mac; }
    NvmDevice &nvm() { return nvm_; }
    stats::StatGroup &statGroup() { return stats_; }

    std::uint64_t counterCacheHits() const { return ctrCache.hits(); }
    std::uint64_t counterCacheMisses() const { return ctrCache.misses(); }

    /** Media-error handling outcomes (damage-report breakdown). */
    std::uint64_t mediaRetries() const { return statMediaRetries.value(); }
    std::uint64_t mediaHealed() const { return statMediaHealed.value(); }
    std::uint64_t quarantineReads() const
    {
        return statQuarantineReads.value();
    }

    /** Metadata repair outcomes (damage-report breakdown). */
    std::uint64_t metaMediaFaults() const
    {
        return statMetaMediaFaults.value();
    }
    std::uint64_t counterBlocksRebuilt() const
    {
        return statCounterBlocksRebuilt.value();
    }
    std::uint64_t treeNodesRepaired() const
    {
        return statTreeNodesRepaired.value();
    }
    std::uint64_t macBlocksRebuilt() const
    {
        return statMacBlocksRebuilt.value();
    }
    std::uint64_t cascadedBlocks() const
    {
        return statCascadedBlocks.value();
    }
    std::uint64_t shadowSlotsSkipped() const
    {
        return statShadowSlotsSkipped.value();
    }
    std::uint64_t rootReanchors() const
    {
        return statRootReanchored.value();
    }
    std::uint64_t scrubPasses() const { return statScrubPasses.value(); }
    std::uint64_t scrubRepairs() const { return statScrubRepairs.value(); }

    /**
     * One background scrub pass: walk every stored counter / tree /
     * MAC metadata block through the device's media-fault model and
     * route anything the device flags into the corresponding repair
     * path. Runs automatically every scrubIntervalWrites secure
     * writes when that knob is nonzero; callable directly for tests
     * and tools. Functional only — scrub bandwidth is not timed.
     */
    ScrubReport scrubMetadata();

    /** Per-stage write-path cycle attribution (stats JSON breakdown). */
    std::uint64_t ctrFetchCycles() const { return statCtrFetchCycles.value(); }
    std::uint64_t aesCycles() const { return statAesCycles.value(); }
    std::uint64_t macCycles() const { return statMacCycles.value(); }
    std::uint64_t bmtCycles() const { return statBmtCycles.value(); }

    /** Optimization-lever outcomes (bmtPipeline / tagPrefetch). */
    std::uint64_t bmtCoalescedUpdates() const
    {
        return statBmtCoalesced.value();
    }
    std::uint64_t tagPrefetchIssued() const
    {
        return statTagPrefetchIssued.value();
    }
    std::uint64_t tagPrefetchHits() const
    {
        return statTagPrefetchHits.value();
    }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

    /** Append this manifest plus every sub-component's to @p out. */
    void collectStateManifests(
        std::vector<persist::StateManifest> &out) const;

  private:
    /** MAC ops per write under the configured tree policy. */
    unsigned writeMacOps() const;

    /**
     * One in-flight BMT root-path update (bmtPipeline). The path is
     * identified by the leaf (counter page) index; ancestors at
     * timing level L are pageIdx >> (3*L) (8-ary tree, Table 1).
     */
    struct BmtInflight
    {
        Addr pageIdx = 0; ///< leaf whose path is being climbed
        Tick start = 0;   ///< first level-update began
        Tick done = 0;    ///< root update (last level) completes

        friend void
        dolosDescribeValue(std::ostream &os, const BmtInflight &e)
        {
            os << "{page:" << e.pageIdx << ",start:" << e.start
               << ",done:" << e.done << "}";
        }
    };

    /**
     * Charge the BMT climb for a write to @p page_idx starting at
     * @p start: with bmtPipeline off, the full writeMacOps()-1 serial
     * levels; with it on, shared ancestor levels coalesce onto the
     * in-flight window and only the distinct lower levels are
     * charged. Returns the tick the root update completes and
     * maintains the window + statBmtCoalesced.
     */
    Tick chargeBmtClimb(Addr page_idx, Tick start);

    /**
     * Ensure the counter block covering @p addr is usable: counter
     * cache hit or verified fetch from NVM (with tree walk).
     *
     * @return tick when the counter is available.
     */
    Tick fetchCounter(Addr addr, Tick start, bool for_write);

    /** Verify an NVM-fetched counter page against the trusted tree. */
    void verifyFetchedPage(Addr page_idx, const CounterPage &page);

    /** Handle a dirty counter-cache eviction (posted NVM write). */
    void evictCounterBlock(Addr counter_block_addr, Tick now);

    /** Handle a dirty tree-cache eviction (posted NVM write). */
    void evictTreeNode(Addr node_addr, Tick now);

    /** Whole-page re-encryption after a minor-counter overflow. */
    Tick reencryptPage(Addr page_idx, const CounterPage &old_page,
                       Tick start);

    /** Write a data MAC into its packed NVM MAC block (functional). */
    void storeDataMac(Addr addr, const crypto::MacTag &tag);

    /** Store / load a block's Osiris ECC code (functional). */
    void storeEcc(Addr addr, std::uint16_t code);
    std::uint16_t loadEcc(Addr addr) const;

    /** Osiris recovery: probe candidate counters for all of data. */
    void recoverCountersOsiris(SecureRecoveryResult &res);

    /** Read a data MAC from the packed NVM MAC block. */
    crypto::MacTag loadDataMac(Addr addr) const;

    /**
     * Read a data MAC through the media-fault model, retrying and —
     * if the fault persists — rebuilding the MAC block from
     * ciphertext + counters (or cascading if no spare frame is
     * left). Returns the tag after any repair.
     */
    crypto::MacTag loadDataMacHealed(Addr addr);

    /**
     * A counter block read came back media-flagged through every
     * retry: remap to a spare row and rewrite from the volatile
     * truth if we have it, else reconstruct by trial MAC
     * (rebuildCounterPage), else cascade-quarantine. Returns false
     * only when the cascade engaged.
     */
    bool repairCounterBlock(Addr cb_addr, Addr page_idx,
                            unsigned retries);

    /**
     * Reconstruct a counter page with no volatile copy: for each
     * covered stored data block, search candidate counters
     * [0, counterSearchLimit) for the one whose data MAC matches
     * the stored MAC lane. Returns the page, or nullopt when any
     * covered block fails the search or the majors disagree.
     */
    std::optional<CounterPage> rebuildCounterPage(Addr page_idx);

    /**
     * An interior tree node's NVM copy is media-lost: re-hash it
     * from its children (repairNode) and rewrite; node-frame loss
     * never cascades to data.
     */
    void repairTreeNode(Addr node_addr, unsigned level, Addr idx,
                        unsigned retries);

    /**
     * A MAC block's frame is media-lost: recompute every stored
     * covered lane from ciphertext + current counter and rewrite
     * onto a spare row. Returns false (and cascades) when no spare
     * frame is left.
     */
    bool repairMacBlock(Addr mb_addr, unsigned retries);

    /** Quarantine a counter block and every stored data block it covered. */
    void cascadeQuarantineCounterBlock(Addr cb_addr, unsigned retries);

    /** Quarantine a MAC block and every stored data block it covered. */
    void cascadeQuarantineMacBlock(Addr mb_addr, unsigned retries);

    /** Data MAC input: ciphertext, counter, address. */
    crypto::MacTag dataMac(Addr addr, const Block &ciphertext,
                           std::uint64_t counter) const;

    crypto::IvFields ivFor(Addr addr, std::uint64_t counter) const;

    SecureParams params;
    NvmDevice &nvm_;
    std::unique_ptr<crypto::MacEngine> mac;
    crypto::CtrPadGenerator padGen;

    CounterStore counters;
    MerkleTree tree;
    TagCache ctrCache;
    TagCache mtCache;
    AnubisShadow shadow;

    crypto::MacTag rootRegister{};    ///< on-chip persistent
    std::uint64_t shadowSeq = 0;      ///< on-chip persistent
    Tick busyUntil_ = 0;

    /** In-flight BMT root-path updates (bmtPipeline; volatile). */
    std::vector<BmtInflight> bmtInflight;

    /**
     * Counter-cache blocks warmed by prefetchCounter and not yet
     * touched by a demand fetch (tagPrefetch hit accounting;
     * volatile). Ordered so crash-state descriptions are canonical.
     */
    std::set<Addr> prefetchPending;

    stats::StatGroup stats_;
    stats::Scalar statWrites;
    stats::Scalar statReads;
    stats::Scalar statAttacks;
    stats::Scalar statOverflows;
    stats::Scalar statColdReads;
    stats::Scalar statMediaRetries;
    stats::Scalar statMediaHealed;
    stats::Scalar statQuarantineReads;
    stats::Scalar statMetaMediaFaults;
    stats::Scalar statCounterBlocksRebuilt;
    stats::Scalar statTreeNodesRepaired;
    stats::Scalar statMacBlocksRebuilt;
    stats::Scalar statCascadedBlocks;
    stats::Scalar statShadowSlotsSkipped;
    stats::Scalar statRootReanchored;
    stats::Scalar statScrubPasses;
    stats::Scalar statScrubRepairs;
    stats::Scalar statCtrFetchCycles;
    stats::Scalar statAesCycles;
    stats::Scalar statMacCycles;
    stats::Scalar statBmtCycles;
    stats::Scalar statBmtCoalesced;
    stats::Scalar statTagPrefetchIssued;
    stats::Scalar statTagPrefetchHits;
    stats::Average statWriteLatency;
    stats::Average statReadLatency;
    stats::Average statTreeWalkLevels;
    stats::Histogram statWriteLatencyHist{200.0, 32};
    stats::Histogram statReadLatencyHist{100.0, 32};

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(SecurityEngine);
    DOLOS_PERSISTENT(params);
    DOLOS_PERSISTENT(nvm_);
    DOLOS_PERSISTENT(mac);
    DOLOS_PERSISTENT(padGen);
    DOLOS_VOLATILE(counters);
    DOLOS_VOLATILE(tree);
    DOLOS_VOLATILE(ctrCache);
    DOLOS_VOLATILE(mtCache);
    DOLOS_PERSISTENT(shadow);
    DOLOS_PERSISTENT(rootRegister);
    DOLOS_PERSISTENT(shadowSeq);
    DOLOS_VOLATILE(busyUntil_);
    DOLOS_VOLATILE(bmtInflight);
    DOLOS_VOLATILE(prefetchPending);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statWrites);
    DOLOS_PERSISTENT(statReads);
    DOLOS_PERSISTENT(statAttacks);
    DOLOS_PERSISTENT(statOverflows);
    DOLOS_PERSISTENT(statColdReads);
    DOLOS_PERSISTENT(statMediaRetries);
    DOLOS_PERSISTENT(statMediaHealed);
    DOLOS_PERSISTENT(statQuarantineReads);
    DOLOS_PERSISTENT(statMetaMediaFaults);
    DOLOS_PERSISTENT(statCounterBlocksRebuilt);
    DOLOS_PERSISTENT(statTreeNodesRepaired);
    DOLOS_PERSISTENT(statMacBlocksRebuilt);
    DOLOS_PERSISTENT(statCascadedBlocks);
    DOLOS_PERSISTENT(statShadowSlotsSkipped);
    DOLOS_PERSISTENT(statRootReanchored);
    DOLOS_PERSISTENT(statScrubPasses);
    DOLOS_PERSISTENT(statScrubRepairs);
    DOLOS_PERSISTENT(statCtrFetchCycles);
    DOLOS_PERSISTENT(statAesCycles);
    DOLOS_PERSISTENT(statMacCycles);
    DOLOS_PERSISTENT(statBmtCycles);
    DOLOS_PERSISTENT(statBmtCoalesced);
    DOLOS_PERSISTENT(statTagPrefetchIssued);
    DOLOS_PERSISTENT(statTagPrefetchHits);
    DOLOS_PERSISTENT(statWriteLatency);
    DOLOS_PERSISTENT(statReadLatency);
    DOLOS_PERSISTENT(statTreeWalkLevels);
    DOLOS_PERSISTENT(statWriteLatencyHist);
    DOLOS_PERSISTENT(statReadLatencyHist);
};

} // namespace dolos

#endif // DOLOS_SECURE_SECURITY_ENGINE_HH
