/**
 * @file
 * DDR-based PCM NVM device model (paper Table 1).
 *
 * Timing: per-bank FIFO service with read latency 150 ns (600 cycles)
 * and write latency 500 ns (2000 cycles) at the 4 GHz core clock.
 * Banks are address-interleaved at block granularity, so independent
 * accesses overlap while same-bank accesses serialize — the WPQ drain
 * rate is then bounded by either the security unit or bank pressure,
 * as in the paper. Functionally, the device stores what secure
 * controllers give it: ciphertext and metadata.
 */

#ifndef DOLOS_MEM_NVM_DEVICE_HH
#define DOLOS_MEM_NVM_DEVICE_HH

#include <vector>

#include "mem/backing_store.hh"
#include "mem/block.hh"
#include "mem/mem_iface.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dolos
{

/** NVM device configuration. */
struct NvmParams
{
    Cycles readLatency = 600;   ///< 150 ns @ 4 GHz
    Cycles writeLatency = 2000; ///< 500 ns @ 4 GHz
    unsigned numBanks = 8;      ///< block-interleaved banks

    /**
     * Read-priority scheduling: demand reads are serviced ahead of
     * buffered writes (reads serialize only against other reads on
     * the same bank). Posted writes still serialize per bank, which
     * is what bounds the WPQ drain rate. Disable to model a strict
     * per-bank FIFO.
     */
    bool readPriority = true;
};

/**
 * The NVM module: functional persistent store + bank timing.
 */
class NvmDevice
{
  public:
    explicit NvmDevice(const NvmParams &params);

    /** Timed functional read of one block. */
    ReadResult read(Addr addr, Tick now);

    /**
     * Timed functional write of one block.
     *
     * @return tick at which the write has been committed to the
     *         persistent cell array.
     */
    Tick write(Addr addr, const Block &data, Tick now);

    /**
     * Functional-only write, free of timing (used by the ADR crash
     * drain, whose energy is accounted separately, and by test
     * fixtures preparing NVM images).
     */
    void writeFunctional(Addr addr, const Block &data);

    /** Functional-only read. */
    Block readFunctional(Addr addr) const;

    /** Earliest tick at which the bank holding @p addr is free. */
    Tick bankFreeAt(Addr addr) const;

    /** Direct access to the persistent image (crash snapshots). */
    BackingStore &store() { return data_; }
    const BackingStore &store() const { return data_; }

    const NvmParams &config() const { return params; }
    stats::StatGroup &statGroup() { return stats_; }

    std::uint64_t reads() const { return statReads.value(); }
    std::uint64_t writes() const { return statWrites.value(); }

  private:
    std::size_t bankIndex(Addr addr) const;

    NvmParams params;
    BackingStore data_;
    std::vector<Tick> bankBusyUntil;     ///< write track
    std::vector<Tick> bankReadBusyUntil; ///< read track (readPriority)

    stats::StatGroup stats_;
    stats::Scalar statReads;
    stats::Scalar statWrites;
    stats::Scalar statBankConflicts;
    stats::Average statReadQueueing;
    stats::Average statWriteQueueing;
    stats::Histogram statWriteQueueingHist{500.0, 16};
};

} // namespace dolos

#endif // DOLOS_MEM_NVM_DEVICE_HH
