/**
 * @file
 * DDR-based PCM NVM device model (paper Table 1).
 *
 * Timing: per-bank FIFO service with read latency 150 ns (600 cycles)
 * and write latency 500 ns (2000 cycles) at the 4 GHz core clock.
 * Banks are address-interleaved at block granularity, so independent
 * accesses overlap while same-bank accesses serialize — the WPQ drain
 * rate is then bounded by either the security unit or bank pressure,
 * as in the paper. Functionally, the device stores what secure
 * controllers give it: ciphertext and metadata.
 */

#ifndef DOLOS_MEM_NVM_DEVICE_HH
#define DOLOS_MEM_NVM_DEVICE_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/block.hh"
#include "mem/mem_iface.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dolos
{

/** NVM device configuration. */
struct NvmParams
{
    Cycles readLatency = 600;   ///< 150 ns @ 4 GHz
    Cycles writeLatency = 2000; ///< 500 ns @ 4 GHz
    unsigned numBanks = 8;      ///< block-interleaved banks

    /**
     * Read-priority scheduling: demand reads are serviced ahead of
     * buffered writes (reads serialize only against other reads on
     * the same bank). Posted writes still serialize per bank, which
     * is what bounds the WPQ drain rate. Disable to model a strict
     * per-bank FIFO.
     */
    bool readPriority = true;

    /**
     * Spare rows the device can remap a worn block frame onto. A
     * successful remap clears the frame's media faults (the
     * controller then rewrites the repaired contents); once spares
     * run out, an unhealable metadata fault must cascade into
     * quarantine instead.
     */
    unsigned spareBlocks = 32;
};

/** One quarantined (unrecoverable) block and why it was retired. */
struct QuarantineRecord
{
    Addr addr = 0;
    std::string reason;
    unsigned retries = 0; ///< correction attempts before giving up

    /**
     * Cascade provenance: which metadata block's loss retired this
     * block (e.g. "mac_block_0x..."), empty for a direct media fault.
     */
    std::string cause;
};

inline void
dolosDescribeValue(std::ostream &os, const QuarantineRecord &r)
{
    os << r.addr << "/\"" << r.reason << "\"/" << r.retries << "/\""
       << r.cause << '"';
}

/** One block frame remapped onto a spare row. */
struct RemapRecord
{
    Addr addr = 0;
    std::string reason;
};

inline void
dolosDescribeValue(std::ostream &os, const RemapRecord &r)
{
    os << r.addr << "/\"" << r.reason << '"';
}

/**
 * The NVM module: functional persistent store + bank timing.
 *
 * The device also models *media* faults — cell wear and disturb
 * errors the DIMM's own ECC detects but cannot always correct:
 * one-shot transient read flips, persistent stuck-at cells, and
 * dropped writes. Faults perturb only the timed demand paths
 * (read()/write()); functional accesses see the raw array, which is
 * what the crash-dump drain and test fixtures rely on. After each
 * timed access lastReadMediaError()/lastWriteMediaError() reports
 * whether the device detected a fault — the controller uses that flag
 * to tell a correctable media error (retry) from tamper (alarm),
 * because an adversary mutating the array functionally leaves no
 * such trace.
 */
class NvmDevice
{
  public:
    explicit NvmDevice(const NvmParams &params);

    /** Timed functional read of one block. */
    ReadResult read(Addr addr, Tick now);

    /**
     * Timed functional write of one block.
     *
     * @return tick at which the write has been committed to the
     *         persistent cell array.
     */
    Tick write(Addr addr, const Block &data, Tick now);

    /**
     * Functional-only write, free of timing (used by the ADR crash
     * drain, whose energy is accounted separately, and by test
     * fixtures preparing NVM images).
     */
    void writeFunctional(Addr addr, const Block &data);

    /** Functional-only read. */
    Block readFunctional(Addr addr) const;

    /**
     * Functional read that still passes through the media-fault model
     * and sets lastReadMediaError(). Recovery and scrub paths use it:
     * they are not timed, but must see (and get to disambiguate) the
     * same cell wear a demand read would.
     */
    Block readFunctionalChecked(Addr addr);

    /** Earliest tick at which the bank holding @p addr is free. */
    Tick bankFreeAt(Addr addr) const;

    /**
     * Power failure: the cell array and the physical media-fault
     * state (wear is in the cells, not in the controller) survive;
     * bank scheduling state and the last-access fault flags are
     * volatile controller-side registers and reset.
     */
    void crash();

    /**
     * Register every member into the crash-state manifest. The cell
     * array (data_) is delegated to BackingStore::stateManifest,
     * whose snapshot takes the region-exclusion predicate.
     */
    persist::StateManifest stateManifest() const;

    /** Direct access to the persistent image (crash snapshots). */
    BackingStore &store() { return data_; }
    const BackingStore &store() const { return data_; }

    const NvmParams &config() const { return params; }
    stats::StatGroup &statGroup() { return stats_; }

    std::uint64_t reads() const { return statReads.value(); }
    std::uint64_t writes() const { return statWrites.value(); }

    // --- media-fault model -------------------------------------------

    /** Arm a one-shot bit flip on the next timed read of @p addr. */
    void injectTransientFlip(Addr addr, unsigned bit);

    /**
     * Pin bit @p bit of @p addr to @p value on every timed read (a
     * worn-out cell). Persists until the block is quarantined.
     */
    void injectStuckBit(Addr addr, unsigned bit, bool value);

    /** Make the next @p count timed writes to @p addr fail silently
     *  (the array keeps its old contents; the device flags it). */
    void injectWriteFail(Addr addr, unsigned count);

    /** Device-detected fault on the most recent timed read/write. */
    bool lastReadMediaError() const { return lastReadMediaError_; }
    bool lastWriteMediaError() const { return lastWriteMediaError_; }

    /** Retire @p addr: timed reads of it are known-bad from now on. */
    void quarantine(Addr addr, std::string reason, unsigned retries,
                    std::string cause = {});

    /**
     * Remap the block frame at @p addr onto a spare row: its stuck
     * cells, pending write failures and armed transient flips are
     * gone (the new row is healthy). The caller must rewrite the
     * block's correct contents. Fails (returns false) once spares
     * are exhausted.
     */
    bool remapToSpare(Addr addr, std::string reason);

    unsigned
    sparesLeft() const
    {
        return params.spareBlocks > remapped_.size()
                   ? unsigned(params.spareBlocks - remapped_.size())
                   : 0;
    }
    const std::vector<RemapRecord> &remapLog() const { return remapped_; }

    bool isQuarantined(Addr addr) const;
    std::size_t quarantineCount() const { return quarantined_.size(); }
    const std::map<Addr, QuarantineRecord> &
    quarantineLog() const
    {
        return quarantined_;
    }

    /**
     * True if @p addr has a fault retries cannot heal (stuck cell,
     * pending write failures, or already quarantined). Oracles use
     * this to exclude deliberately-destroyed blocks from sweeps.
     */
    bool hasUnhealableFault(Addr addr) const;

    std::uint64_t mediaErrorReads() const
    {
        return statMediaErrorReads.value();
    }
    std::uint64_t mediaErrorWrites() const
    {
        return statMediaErrorWrites.value();
    }

  private:
    std::size_t bankIndex(Addr addr) const;
    void applyReadFaults(Addr addr, Block &data);

    NvmParams params;
    BackingStore data_;
    std::vector<Tick> bankBusyUntil;     ///< write track
    std::vector<Tick> bankReadBusyUntil; ///< read track (readPriority)

    // Media-fault state. Transient flips are one-shot; stuck bits
    // override the stored value on every read until quarantined.
    std::multimap<Addr, unsigned> transientFlips_;
    std::map<Addr, std::vector<std::pair<unsigned, bool>>> stuckBits_;
    std::map<Addr, unsigned> writeFailures_;
    std::map<Addr, QuarantineRecord> quarantined_;
    std::vector<RemapRecord> remapped_;
    bool lastReadMediaError_ = false;
    bool lastWriteMediaError_ = false;

    stats::StatGroup stats_;
    stats::Scalar statReads;
    stats::Scalar statWrites;
    stats::Scalar statMediaErrorReads;
    stats::Scalar statMediaErrorWrites;
    stats::Scalar statQuarantines;
    stats::Scalar statRemaps;
    stats::Scalar statBankConflicts;
    stats::Average statReadQueueing;
    stats::Average statWriteQueueing;
    stats::Histogram statWriteQueueingHist{500.0, 16};

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(NvmDevice);
    DOLOS_PERSISTENT(params);
    DOLOS_PERSISTENT(data_);
    DOLOS_VOLATILE(bankBusyUntil);
    DOLOS_VOLATILE(bankReadBusyUntil);
    DOLOS_PERSISTENT(transientFlips_);
    DOLOS_PERSISTENT(stuckBits_);
    DOLOS_PERSISTENT(writeFailures_);
    DOLOS_PERSISTENT(quarantined_);
    DOLOS_PERSISTENT(remapped_);
    DOLOS_VOLATILE(lastReadMediaError_);
    DOLOS_VOLATILE(lastWriteMediaError_);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statReads);
    DOLOS_PERSISTENT(statWrites);
    DOLOS_PERSISTENT(statMediaErrorReads);
    DOLOS_PERSISTENT(statMediaErrorWrites);
    DOLOS_PERSISTENT(statQuarantines);
    DOLOS_PERSISTENT(statRemaps);
    DOLOS_PERSISTENT(statBankConflicts);
    DOLOS_PERSISTENT(statReadQueueing);
    DOLOS_PERSISTENT(statWriteQueueing);
    DOLOS_PERSISTENT(statWriteQueueingHist);
};

} // namespace dolos

#endif // DOLOS_MEM_NVM_DEVICE_HH
