/**
 * @file
 * NVM device implementation.
 */

#include "mem/nvm_device.hh"

#include "sim/trace.hh"

namespace dolos
{

NvmDevice::NvmDevice(const NvmParams &p)
    : params(p), bankBusyUntil(p.numBanks, 0),
      bankReadBusyUntil(p.numBanks, 0), stats_("nvm")
{
    stats_.addScalar(&statReads, "reads", "block reads");
    stats_.addScalar(&statWrites, "writes", "block writes");
    stats_.addScalar(&statBankConflicts, "bankConflicts",
                     "accesses that found their bank busy");
    stats_.addAverage(&statReadQueueing, "readQueueing",
                      "cycles reads waited for a busy bank");
    stats_.addAverage(&statWriteQueueing, "writeQueueing",
                      "cycles writes waited for a busy bank");
    stats_.addHistogram(&statWriteQueueingHist, "writeQueueingHist",
                        "distribution of write bank-queueing cycles");
}

std::size_t
NvmDevice::bankIndex(Addr addr) const
{
    return (addr / blockSize) % params.numBanks;
}

ReadResult
NvmDevice::read(Addr addr, Tick now)
{
    ++statReads;
    Tick &bank = params.readPriority
                     ? bankReadBusyUntil[bankIndex(addr)]
                     : bankBusyUntil[bankIndex(addr)];
    const Tick start = std::max(now, bank);
    statReadQueueing.sample(double(start - now));
    if (start > now)
        ++statBankConflicts;
    bank = start + params.readLatency;
    DOLOS_TRACE(trace::Stage::NvmRead, now, bank, addr, 0);
    return {data_.read(blockAlign(addr)), bank};
}

Tick
NvmDevice::write(Addr addr, const Block &block, Tick now)
{
    ++statWrites;
    Tick &bank = bankBusyUntil[bankIndex(addr)];
    const Tick start = std::max(now, bank);
    statWriteQueueing.sample(double(start - now));
    statWriteQueueingHist.sample(double(start - now));
    if (start > now)
        ++statBankConflicts;
    bank = start + params.writeLatency;
    data_.write(blockAlign(addr), block);
    DOLOS_TRACE(trace::Stage::NvmWrite, now, bank, addr, 0);
    return bank;
}

void
NvmDevice::writeFunctional(Addr addr, const Block &block)
{
    data_.write(blockAlign(addr), block);
}

Block
NvmDevice::readFunctional(Addr addr) const
{
    return data_.read(blockAlign(addr));
}

Tick
NvmDevice::bankFreeAt(Addr addr) const
{
    return bankBusyUntil[bankIndex(addr)];
}

} // namespace dolos
