/**
 * @file
 * NVM device implementation.
 */

#include "mem/nvm_device.hh"

#include "sim/trace.hh"
#include "sim/profiler.hh"

namespace dolos
{

NvmDevice::NvmDevice(const NvmParams &p)
    : params(p), bankBusyUntil(p.numBanks, 0),
      bankReadBusyUntil(p.numBanks, 0), stats_("nvm")
{
    stats_.addScalar(&statReads, "reads", "block reads");
    stats_.addScalar(&statWrites, "writes", "block writes");
    stats_.addScalar(&statMediaErrorReads, "mediaErrorReads",
                     "timed reads the device flagged as faulty");
    stats_.addScalar(&statMediaErrorWrites, "mediaErrorWrites",
                     "timed writes that failed to commit");
    stats_.addScalar(&statQuarantines, "quarantines",
                     "blocks retired as unrecoverable");
    stats_.addScalar(&statRemaps, "spareRemaps",
                     "worn frames remapped onto spare rows");
    stats_.addScalar(&statBankConflicts, "bankConflicts",
                     "accesses that found their bank busy");
    stats_.addAverage(&statReadQueueing, "readQueueing",
                      "cycles reads waited for a busy bank");
    stats_.addAverage(&statWriteQueueing, "writeQueueing",
                      "cycles writes waited for a busy bank");
    stats_.addHistogram(&statWriteQueueingHist, "writeQueueingHist",
                        "distribution of write bank-queueing cycles");
}

std::size_t
NvmDevice::bankIndex(Addr addr) const
{
    return (addr / blockSize) % params.numBanks;
}

ReadResult
NvmDevice::read(Addr addr, Tick now)
{
    DOLOS_PROF_SCOPE(Nvm);
    ++statReads;
    Tick &bank = params.readPriority
                     ? bankReadBusyUntil[bankIndex(addr)]
                     : bankBusyUntil[bankIndex(addr)];
    const Tick start = std::max(now, bank);
    statReadQueueing.sample(double(start - now));
    if (start > now)
        ++statBankConflicts;
    bank = start + params.readLatency;
    DOLOS_TRACE(trace::Stage::NvmRead, now, bank, addr, 0);
    Block block = data_.read(blockAlign(addr));
    applyReadFaults(blockAlign(addr), block);
    return {block, bank};
}

Tick
NvmDevice::write(Addr addr, const Block &block, Tick now)
{
    DOLOS_PROF_SCOPE(Nvm);
    ++statWrites;
    Tick &bank = bankBusyUntil[bankIndex(addr)];
    const Tick start = std::max(now, bank);
    statWriteQueueing.sample(double(start - now));
    statWriteQueueingHist.sample(double(start - now));
    if (start > now)
        ++statBankConflicts;
    bank = start + params.writeLatency;
    const Addr aligned = blockAlign(addr);
    const auto fail = writeFailures_.find(aligned);
    if (fail != writeFailures_.end() && fail->second > 0) {
        // The cell array rejected the program pulse: the old contents
        // survive and the device reports the failed commit.
        if (--fail->second == 0)
            writeFailures_.erase(fail);
        lastWriteMediaError_ = true;
        ++statMediaErrorWrites;
    } else {
        lastWriteMediaError_ = false;
        data_.write(aligned, block);
    }
    DOLOS_TRACE(trace::Stage::NvmWrite, now, bank, addr, 0);
    return bank;
}

void
NvmDevice::writeFunctional(Addr addr, const Block &block)
{
    data_.write(blockAlign(addr), block);
}

Block
NvmDevice::readFunctional(Addr addr) const
{
    return data_.read(blockAlign(addr));
}

Block
NvmDevice::readFunctionalChecked(Addr addr)
{
    Block block = data_.read(blockAlign(addr));
    applyReadFaults(blockAlign(addr), block);
    return block;
}

Tick
NvmDevice::bankFreeAt(Addr addr) const
{
    return bankBusyUntil[bankIndex(addr)];
}

void
NvmDevice::applyReadFaults(Addr addr, Block &data)
{
    bool faulted = false;
    const auto stuck = stuckBits_.find(addr);
    if (stuck != stuckBits_.end()) {
        for (const auto &[bit, value] : stuck->second) {
            std::uint8_t &byte = data[(bit / 8) % blockSize];
            const std::uint8_t mask = std::uint8_t(1u << (bit % 8));
            const bool current = byte & mask;
            if (current != value) {
                byte = value ? (byte | mask)
                             : std::uint8_t(byte & ~mask);
                faulted = true;
            }
        }
        // A stuck cell is flagged even on reads where the stored value
        // happens to match: the device's scrubber knows the cell is
        // worn and keeps reporting it.
        faulted = true;
    }
    const auto flip = transientFlips_.find(addr);
    if (flip != transientFlips_.end()) {
        data[(flip->second / 8) % blockSize] ^=
            std::uint8_t(1u << (flip->second % 8));
        transientFlips_.erase(flip);
        faulted = true;
    }
    lastReadMediaError_ = faulted;
    if (faulted)
        ++statMediaErrorReads;
}

void
NvmDevice::injectTransientFlip(Addr addr, unsigned bit)
{
    transientFlips_.emplace(blockAlign(addr), bit % (blockSize * 8));
}

void
NvmDevice::injectStuckBit(Addr addr, unsigned bit, bool value)
{
    stuckBits_[blockAlign(addr)].emplace_back(bit % (blockSize * 8),
                                              value);
}

void
NvmDevice::injectWriteFail(Addr addr, unsigned count)
{
    if (count > 0)
        writeFailures_[blockAlign(addr)] += count;
}

void
NvmDevice::quarantine(Addr addr, std::string reason, unsigned retries,
                      std::string cause)
{
    const Addr aligned = blockAlign(addr);
    if (quarantined_.count(aligned))
        return;
    quarantined_.emplace(aligned,
                         QuarantineRecord{aligned, std::move(reason),
                                          retries, std::move(cause)});
    ++statQuarantines;
}

bool
NvmDevice::remapToSpare(Addr addr, std::string reason)
{
    if (remapped_.size() >= params.spareBlocks)
        return false;
    const Addr aligned = blockAlign(addr);
    // The frame's pathologies stay with the old row; the spare row
    // the address now resolves to is healthy.
    stuckBits_.erase(aligned);
    writeFailures_.erase(aligned);
    transientFlips_.erase(aligned);
    remapped_.push_back(RemapRecord{aligned, std::move(reason)});
    ++statRemaps;
    return true;
}

bool
NvmDevice::isQuarantined(Addr addr) const
{
    return quarantined_.count(blockAlign(addr)) != 0;
}

bool
NvmDevice::hasUnhealableFault(Addr addr) const
{
    const Addr aligned = blockAlign(addr);
    return stuckBits_.count(aligned) || writeFailures_.count(aligned) ||
           quarantined_.count(aligned);
}

void
NvmDevice::crash()
{
    // Bank scheduling state and the last-access fault flags live in
    // the (volatile) device controller; the cell array and the
    // physical fault state are in the cells and survive.
    std::fill(bankBusyUntil.begin(), bankBusyUntil.end(), 0);
    std::fill(bankReadBusyUntil.begin(), bankReadBusyUntil.end(), 0);
    lastReadMediaError_ = false;
    lastWriteMediaError_ = false;
}

persist::StateManifest
BackingStore::stateManifest(std::function<bool(Addr)> exclude) const
{
    persist::StateManifest m("BackingStore");
    m.add("blocks", persist::Kind::Persistent, [this, exclude] {
        // Sorted, filtered rendering: the crash path legitimately
        // rewrites the excluded regions (ADR dump, recovery journal).
        std::vector<std::pair<std::uint64_t, std::string>> items;
        for (const auto &[addr, block] : blocks) {
            if (exclude && exclude(addr))
                continue;
            items.emplace_back(addr, persist::describe(block));
        }
        std::sort(items.begin(), items.end());
        std::ostringstream os;
        os << '{';
        for (const auto &[addr, s] : items)
            os << addr << ':' << s << ';';
        os << '}';
        return os.str();
    });
    return m;
}

persist::StateManifest
NvmDevice::stateManifest() const
{
    persist::StateManifest m("NvmDevice");
    DOLOS_MF_CONST(m, params);
    DOLOS_MF_DELEGATED_P(m, data_);
    DOLOS_MF_V(m, bankBusyUntil);
    DOLOS_MF_V(m, bankReadBusyUntil);
    DOLOS_MF_P(m, transientFlips_);
    DOLOS_MF_P(m, stuckBits_);
    DOLOS_MF_P(m, writeFailures_);
    DOLOS_MF_P(m, quarantined_);
    DOLOS_MF_P(m, remapped_);
    DOLOS_MF_V(m, lastReadMediaError_);
    DOLOS_MF_V(m, lastWriteMediaError_);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statReads);
    DOLOS_MF_P(m, statWrites);
    DOLOS_MF_P(m, statMediaErrorReads);
    DOLOS_MF_P(m, statMediaErrorWrites);
    DOLOS_MF_P(m, statQuarantines);
    DOLOS_MF_P(m, statRemaps);
    DOLOS_MF_P(m, statBankConflicts);
    DOLOS_MF_P(m, statReadQueueing);
    DOLOS_MF_P(m, statWriteQueueing);
    DOLOS_MF_P(m, statWriteQueueingHist);
    return m;
}

} // namespace dolos
