/**
 * @file
 * Cache hierarchy implementation.
 */

#include "mem/hierarchy.hh"

#include <cstring>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/profiler.hh"

namespace dolos
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &p,
                               PersistController &controller)
    : params(p), mc(controller), stats_("hierarchy")
{
    llc_ = std::make_unique<Cache>(p.llc, mc);
    l2_ = std::make_unique<Cache>(p.l2, *llc_);
    l1_ = std::make_unique<Cache>(p.l1, *l2_);

    stats_.addScalar(&statLoads, "loads", "core loads");
    stats_.addScalar(&statStores, "stores", "core stores");
    stats_.addScalar(&statClwbs, "clwbs", "CLWB operations");
    stats_.addScalar(&statClwbMisses, "clwbMisses",
                     "CLWBs that found no cached copy");
    stats_.addChild(&l1_->statGroup());
    stats_.addChild(&l2_->statGroup());
    stats_.addChild(&llc_->statGroup());
}

ReadResult
CacheHierarchy::readBlockTimed(Addr addr, Tick now)
{
    return l1_->readBlock(blockAlign(addr), now);
}

Tick
CacheHierarchy::load(Addr addr, void *out, unsigned size, Tick now)
{
    DOLOS_PROF_SCOPE(CacheModel);
    ++statLoads;
    auto *dst = static_cast<std::uint8_t *>(out);
    Tick done = now;
    Addr cur = addr;
    unsigned remaining = size;
    while (remaining > 0) {
        const Addr base = blockAlign(cur);
        const unsigned off = unsigned(cur - base);
        const unsigned chunk = std::min(remaining, blockSize - off);
        // Block accesses are sequential: a multi-block load pays for
        // each block in turn (rare; workload fields are aligned).
        const ReadResult r = readBlockTimed(base, done);
        if (dst)
            std::memcpy(dst, r.data.data() + off, chunk);
        done = r.completeTick;
        if (dst)
            dst += chunk;
        cur += chunk;
        remaining -= chunk;
    }
    return done;
}

Tick
CacheHierarchy::store(Addr addr, const void *src, unsigned size, Tick now)
{
    DOLOS_PROF_SCOPE(CacheModel);
    ++statStores;
    const auto *p = static_cast<const std::uint8_t *>(src);
    Tick done = now;
    Addr cur = addr;
    unsigned remaining = size;
    while (remaining > 0) {
        const Addr base = blockAlign(cur);
        const unsigned off = unsigned(cur - base);
        const unsigned chunk = std::min(remaining, blockSize - off);
        // Write-allocate: bring the block into L1, then modify.
        ReadResult r = readBlockTimed(base, done);
        std::memcpy(r.data.data() + off, p, chunk);
        const bool present = l1_->updateIfPresent(base, r.data);
        DOLOS_ASSERT(present, "block 0x%llx vanished from L1 after fill",
                     (unsigned long long)base);
        done = r.completeTick;
        p += chunk;
        cur += chunk;
        remaining -= chunk;
    }
    return done;
}

PersistTicket
CacheHierarchy::clwb(Addr addr, Tick now)
{
    DOLOS_PROF_SCOPE(CacheModel);
    ++statClwbs;
    const Addr base = blockAlign(addr);

    if (params.eadrDomain) {
        // The caches are inside the persistence domain: the line is
        // persistent where it sits, so CLWB completes immediately
        // with no controller traffic and no fence stall to order.
        const Tick issue = now + l1_->latency();
        return {issue, issue};
    }

    // Locate the newest copy: L1 > L2 > LLC.
    Block newest{};
    bool found = false;
    bool any_dirty = false;
    for (Cache *c : {l1_.get(), l2_.get(), llc_.get()}) {
        Block data;
        bool dirty = false;
        if (c->peek(base, data, dirty)) {
            if (!found)
                newest = data;
            found = true;
            any_dirty |= dirty;
        }
    }

    const Tick issue = now + l1_->latency();
    if (!found || !any_dirty) {
        // Nothing (dirty) cached: the line may still be in flight in
        // the controller from an earlier eviction; order against it.
        ++statClwbMisses;
        const Tick pending = mc.pendingPersistTick(base, issue);
        return {issue, pending};
    }

    // Propagate the newest copy to every level holding the line and
    // clean all copies, so no stale data can surface later.
    for (Cache *c : {l1_.get(), l2_.get(), llc_.get()}) {
        if (c->probe(base)) {
            c->updateIfPresent(base, newest);
            c->markClean(base);
        }
    }

    return mc.persistBlock(base, newest, issue);
}

void
CacheHierarchy::invalidateAll()
{
    l1_->invalidateAll();
    l2_->invalidateAll();
    llc_->invalidateAll();
}

void
CacheHierarchy::collectDirtyLines(std::vector<DirtyLine> &out) const
{
    // Upper levels hold the newest copy, so the first capture of an
    // address wins and lower-level (stale or equal) copies are
    // skipped. Within a level, set-major index order makes the walk
    // deterministic for a given machine history.
    std::unordered_set<Addr> seen;
    for (const Cache *c : {l1_.get(), l2_.get(), llc_.get()}) {
        c->forEachDirty([&](Addr addr, const Block &data) {
            if (seen.insert(addr).second)
                out.push_back({addr, data});
        });
    }
}

void
CacheHierarchy::flushAll(Tick now)
{
    std::vector<DirtyLine> dirty;
    collectDirtyLines(dirty);
    for (const auto &line : dirty) {
        mc.persistBlock(line.addr, line.data, now);
        for (Cache *c : {l1_.get(), l2_.get(), llc_.get()}) {
            if (c->probe(line.addr)) {
                c->updateIfPresent(line.addr, line.data);
                c->markClean(line.addr);
            }
        }
    }
}

persist::StateManifest
CacheHierarchy::stateManifest() const
{
    persist::StateManifest m("CacheHierarchy");
    DOLOS_MF_CONST(m, params);
    DOLOS_MF_CONST(m, mc);
    DOLOS_MF_DELEGATED_V(m, llc_);
    DOLOS_MF_DELEGATED_V(m, l2_);
    DOLOS_MF_DELEGATED_V(m, l1_);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statLoads);
    DOLOS_MF_P(m, statStores);
    DOLOS_MF_P(m, statClwbs);
    DOLOS_MF_P(m, statClwbMisses);
    return m;
}

} // namespace dolos
