/**
 * @file
 * Cache level implementation.
 */

#include "mem/cache.hh"

#include "sim/logging.hh"

namespace dolos
{

Cache::Cache(const CacheParams &p, MemDevice &down)
    : params(p), downstream(down), stats_(p.name)
{
    DOLOS_ASSERT(p.sizeBytes % (blockSize * p.assoc) == 0,
                 "cache %s: size not divisible by way size",
                 p.name.c_str());
    numSets = p.sizeBytes / (blockSize * p.assoc);
    lines.resize(numSets * p.assoc);

    stats_.addScalar(&statHits, "hits", "read/write hits");
    stats_.addScalar(&statMisses, "misses", "read misses");
    stats_.addScalar(&statWritebacks, "writebacks",
                     "dirty blocks written downstream");
    stats_.addScalar(&statEvictions, "evictions",
                     "blocks evicted (clean or dirty)");
    stats_.addHistogram(&statMissLatency, "missLatency",
                        "cycles to fill a read miss from downstream");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / blockSize) % numSets;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = blockAlign(addr);
    Line *set = &lines[setIndex(addr) * params.assoc];
    for (unsigned w = 0; w < params.assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::Line &
Cache::allocate(Addr addr, Tick now)
{
    Line *set = &lines[setIndex(addr) * params.assoc];
    Line *victim = &set[0];
    for (unsigned w = 1; w < params.assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse && victim->valid)
            victim = &set[w];
    }
    if (victim->valid) {
        ++statEvictions;
        if (victim->dirty) {
            ++statWritebacks;
            downstream.writebackBlock(victim->tag, victim->data, now);
        }
    }
    victim->valid = false;
    victim->dirty = false;
    return *victim;
}

ReadResult
Cache::readBlock(Addr addr, Tick now)
{
    const Addr tag = blockAlign(addr);
    if (Line *line = findLine(tag)) {
        ++statHits;
        line->lastUse = ++useClock;
        return {line->data, now + params.latency};
    }
    ++statMisses;
    const ReadResult below = downstream.readBlock(tag, now + params.latency);
    statMissLatency.sample(double(below.completeTick - now));
    Line &line = allocate(tag, below.completeTick);
    line.valid = true;
    line.dirty = false;
    line.tag = tag;
    line.lastUse = ++useClock;
    line.data = below.data;
    return {line.data, below.completeTick};
}

Tick
Cache::writebackBlock(Addr addr, const Block &data, Tick now)
{
    const Addr tag = blockAlign(addr);
    const Tick done = now + params.latency;
    if (Line *line = findLine(tag)) {
        ++statHits;
        line->data = data;
        line->dirty = true;
        line->lastUse = ++useClock;
        return done;
    }
    Line &line = allocate(tag, done);
    line.valid = true;
    line.dirty = true;
    line.tag = tag;
    line.lastUse = ++useClock;
    line.data = data;
    return done;
}

PersistTicket
Cache::persistBlock(Addr addr, const Block &data, Tick now)
{
    // CLWB traffic is orchestrated by the hierarchy; forwarding keeps
    // the chain composable if a user wires caches directly to a
    // controller.
    return downstream.persistBlock(addr, data, now + params.latency);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::peek(Addr addr, Block &data, bool &dirty) const
{
    if (const Line *line = findLine(addr)) {
        data = line->data;
        dirty = line->dirty;
        return true;
    }
    return false;
}

bool
Cache::updateIfPresent(Addr addr, const Block &data)
{
    if (Line *line = findLine(addr)) {
        line->data = data;
        line->dirty = true;
        line->lastUse = ++useClock;
        return true;
    }
    return false;
}

void
Cache::markClean(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = false;
}

void
Cache::forEachDirty(
    const std::function<void(Addr, const Block &)> &fn) const
{
    for (const auto &line : lines)
        if (line.valid && line.dirty)
            fn(line.tag, line.data);
}

void
Cache::invalidateAll()
{
    for (auto &line : lines)
        line = Line{};
    // The LRU clock is volatile state too: a rebooted machine starts
    // at zero, and a survivor here would leak pre-crash recency into
    // post-recovery victim selection.
    useClock = 0;
}

persist::StateManifest
Cache::stateManifest(std::string instance) const
{
    persist::StateManifest m("Cache", std::move(instance));
    DOLOS_MF_CONST(m, params);
    DOLOS_MF_CONST(m, downstream);
    DOLOS_MF_CONST(m, numSets);
    DOLOS_MF_EADR_FLUSHED(m, lines);
    DOLOS_MF_V(m, useClock);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statHits);
    DOLOS_MF_P(m, statMisses);
    DOLOS_MF_P(m, statWritebacks);
    DOLOS_MF_P(m, statEvictions);
    DOLOS_MF_P(m, statMissLatency);
    return m;
}

} // namespace dolos
