/**
 * @file
 * 64-byte memory block type and helpers.
 */

#ifndef DOLOS_MEM_BLOCK_HH
#define DOLOS_MEM_BLOCK_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace dolos
{

/** One cacheline / NVM access unit. */
using Block = std::array<std::uint8_t, blockSize>;

/** Zero-filled block. */
inline Block
zeroBlock()
{
    return Block{};
}

/** Load a little-endian 64-bit word at byte offset @p off. */
inline std::uint64_t
loadWord(const Block &b, unsigned off)
{
    std::uint64_t v;
    std::memcpy(&v, b.data() + off, sizeof(v));
    return v;
}

/** Store a little-endian 64-bit word at byte offset @p off. */
inline void
storeWord(Block &b, unsigned off, std::uint64_t v)
{
    std::memcpy(b.data() + off, &v, sizeof(v));
}

} // namespace dolos

#endif // DOLOS_MEM_BLOCK_HH
