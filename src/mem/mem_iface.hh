/**
 * @file
 * Interfaces between cache levels and the memory controller.
 *
 * Timing flows as explicit ticks: every operation takes the tick at
 * which it is initiated ("now") and returns the tick(s) at which it
 * completes. All downstream pipelines (security units, WPQ, NVM
 * banks) are deterministic FIFO servers, so this timestamp-based
 * simulation is exact while keeping the CPU model synchronous.
 */

#ifndef DOLOS_MEM_MEM_IFACE_HH
#define DOLOS_MEM_MEM_IFACE_HH

#include <ostream>

#include "mem/block.hh"
#include "sim/types.hh"

namespace dolos
{

/** Result of a timed read. */
struct ReadResult
{
    Block data;        ///< functional data
    Tick completeTick; ///< when the data is available
};

/**
 * Outcome of a persist-path write (CLWB or flush).
 *
 * acceptTick is when the request left the issuing structure (the
 * core/cache may proceed); persistTick is when the write entered the
 * persistence domain (what SFENCE must wait for).
 */
struct PersistTicket
{
    Tick acceptTick = 0;
    Tick persistTick = 0;
};

inline void
dolosDescribeValue(std::ostream &os, const PersistTicket &t)
{
    os << t.acceptTick << '/' << t.persistTick;
}

/**
 * Downstream-facing memory interface implemented by caches and by the
 * secure memory controller.
 */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Timed, functional read of one block. */
    virtual ReadResult readBlock(Addr addr, Tick now) = 0;

    /**
     * Dirty writeback (capacity eviction). Returns the tick at which
     * the request was accepted; the issuer does not wait for
     * persistence.
     */
    virtual Tick writebackBlock(Addr addr, const Block &data,
                                Tick now) = 0;

    /**
     * Persist-path write (CLWB-initiated). The issuer typically
     * tracks the ticket until the next fence.
     */
    virtual PersistTicket persistBlock(Addr addr, const Block &data,
                                       Tick now) = 0;
};

} // namespace dolos

#endif // DOLOS_MEM_MEM_IFACE_HH
