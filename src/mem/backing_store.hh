/**
 * @file
 * Sparse functional backing store for a simulated address space.
 *
 * Holds real bytes at 64B-block granularity; untouched blocks read as
 * zero. Used both for the NVM data array (ciphertext at rest) and for
 * metadata regions.
 */

#ifndef DOLOS_MEM_BACKING_STORE_HH
#define DOLOS_MEM_BACKING_STORE_HH

#include <functional>
#include <unordered_map>

#include "mem/block.hh"
#include "sim/logging.hh"
#include "sim/persist_annotations.hh"
#include "sim/types.hh"

namespace dolos
{

/** Sparse block-granular byte store. */
class BackingStore
{
  public:
    /** Read the block containing nothing yet as all-zeros. */
    Block
    read(Addr addr) const
    {
        DOLOS_ASSERT(isBlockAligned(addr), "unaligned read 0x%llx",
                     (unsigned long long)addr);
        const auto it = blocks.find(addr);
        return it == blocks.end() ? zeroBlock() : it->second;
    }

    /** Overwrite a whole block. */
    void
    write(Addr addr, const Block &data)
    {
        DOLOS_ASSERT(isBlockAligned(addr), "unaligned write 0x%llx",
                     (unsigned long long)addr);
        blocks[addr] = data;
    }

    /** True if the block was ever written. */
    bool
    contains(Addr addr) const
    {
        return blocks.count(blockAlign(addr)) != 0;
    }

    /** Number of blocks ever written. */
    std::size_t numBlocks() const { return blocks.size(); }

    /** Direct access for whole-image snapshot/restore. */
    const std::unordered_map<Addr, Block> &raw() const { return blocks; }

    void clear() { blocks.clear(); }

    /**
     * Register every member into the crash-state manifest. Blocks
     * for which @p exclude returns true are left out of the snapshot
     * (regions the crash path legitimately rewrites, e.g. the ADR
     * WPQ dump); pass nullptr to snapshot the whole image.
     */
    persist::StateManifest
    stateManifest(std::function<bool(Addr)> exclude) const;

  private:
    std::unordered_map<Addr, Block> blocks;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(BackingStore);
    DOLOS_PERSISTENT(blocks);
};

} // namespace dolos

#endif // DOLOS_MEM_BACKING_STORE_HH
