/**
 * @file
 * Three-level cache hierarchy with CLWB support (core-facing).
 *
 * L1 holds the newest copy of a line; stores allocate into L1. CLWB
 * locates the newest copy, propagates it to every level holding the
 * line (so no stale copy can ever become visible), marks all copies
 * clean, and issues a persist-path write to the memory controller.
 */

#ifndef DOLOS_MEM_HIERARCHY_HH
#define DOLOS_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/mem_iface.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

/**
 * Memory-controller-facing interface required by the hierarchy: the
 * plain MemDevice operations plus a query for the persist tick of an
 * in-flight write (needed when CLWB targets a line that was already
 * evicted and is still travelling through the controller).
 */
class PersistController : public MemDevice
{
  public:
    /**
     * If a write to @p addr is in flight but not yet in the
     * persistence domain, return the tick at which it will be
     * persisted; otherwise return @p now.
     */
    virtual Tick pendingPersistTick(Addr addr, Tick now) = 0;
};

/** Cache geometry for all three levels (Table 1 defaults). */
struct HierarchyParams
{
    CacheParams l1{"l1", 32 * 1024, 2, 2};
    CacheParams l2{"l2", 512 * 1024, 8, 20};
    CacheParams llc{"llc", 8 * 1024 * 1024, 16, 32};

    /**
     * eADR persistence domain: dirty cache lines survive power
     * failure (the holdup flush drains them), so CLWB becomes a
     * completed no-op — the line persists where it sits. Set by
     * System when cfg.mode == EadrSecure; data then reaches the
     * controller only through natural writebacks.
     */
    bool eadrDomain = false;
};

/** One dirty cache line captured for the eADR holdup flush. */
struct DirtyLine
{
    Addr addr = 0;
    Block data{};
};

/**
 * Core-facing cache hierarchy.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyParams &params, PersistController &mc);

    /**
     * Timed load of @p size bytes at @p addr (may span blocks).
     *
     * @return completion tick.
     */
    Tick load(Addr addr, void *out, unsigned size, Tick now);

    /** Timed store of @p size bytes (write-allocate into L1). */
    Tick store(Addr addr, const void *src, unsigned size, Tick now);

    /**
     * CLWB of the block containing @p addr: push the newest copy to
     * the memory controller's persist path, keeping (clean) copies
     * cached.
     */
    PersistTicket clwb(Addr addr, Tick now);

    /** Drop all cached state (crash). */
    void invalidateAll();

    /**
     * Capture every dirty line for the eADR holdup flush, newest
     * copy first: L1, then L2, then LLC, each level in set-major
     * index order; a line already captured at an upper level is
     * skipped. The walk is deterministic, which is what makes flush
     * microsteps replayable crash points.
     */
    void collectDirtyLines(std::vector<DirtyLine> &out) const;

    /**
     * Software flush: push every dirty line through the controller's
     * persist path (what a CLWB loop does on an ADR machine) and
     * mark all copies clean. Maintenance/test helper for quiescing a
     * machine; pairs with the controller's drainTo().
     */
    void flushAll(Tick now);

    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache &llc() { return *llc_; }
    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Cache &llc() const { return *llc_; }
    stats::StatGroup &statGroup() { return stats_; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    ReadResult readBlockTimed(Addr addr, Tick now);

    HierarchyParams params;
    PersistController &mc;
    std::unique_ptr<Cache> llc_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1_;

    stats::StatGroup stats_;
    stats::Scalar statLoads;
    stats::Scalar statStores;
    stats::Scalar statClwbs;
    stats::Scalar statClwbMisses;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(CacheHierarchy);
    DOLOS_PERSISTENT(params);
    DOLOS_PERSISTENT(mc);
    DOLOS_VOLATILE(llc_);
    DOLOS_VOLATILE(l2_);
    DOLOS_VOLATILE(l1_);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statLoads);
    DOLOS_PERSISTENT(statStores);
    DOLOS_PERSISTENT(statClwbs);
    DOLOS_PERSISTENT(statClwbMisses);
};

} // namespace dolos

#endif // DOLOS_MEM_HIERARCHY_HH
