/**
 * @file
 * Set-associative writeback cache with LRU replacement.
 *
 * Caches are functional: they hold real block data, and dirty lines
 * that were never written back are genuinely lost on a crash — which
 * is exactly why persistent workloads flush. Timing is a fixed
 * per-level lookup latency (Table 1) plus downstream time on misses.
 */

#ifndef DOLOS_MEM_CACHE_HH
#define DOLOS_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/mem_iface.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

/** Geometry and timing of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycles latency = 2;
};

/**
 * One cache level. Reads and upstream writebacks chain to the
 * downstream MemDevice; CLWB extraction is orchestrated by the
 * hierarchy via the probe/markClean helpers.
 */
class Cache : public MemDevice
{
  public:
    Cache(const CacheParams &params, MemDevice &downstream);

    ReadResult readBlock(Addr addr, Tick now) override;
    Tick writebackBlock(Addr addr, const Block &data, Tick now) override;
    PersistTicket persistBlock(Addr addr, const Block &data,
                               Tick now) override;

    /** True if the block is present. */
    bool probe(Addr addr) const;

    /**
     * Fetch the cached copy without timing side effects.
     *
     * @return true and fills @p data / @p dirty if present.
     */
    bool peek(Addr addr, Block &data, bool &dirty) const;

    /** Update the cached copy in place if present; marks dirty. */
    bool updateIfPresent(Addr addr, const Block &data);

    /** Clear the dirty bit if the block is present. */
    void markClean(Addr addr);

    /**
     * Visit every dirty line in set-major index order (set 0 way 0
     * first) — the deterministic walk order the eADR holdup flush
     * and the software flushAll() rely on.
     */
    void forEachDirty(
        const std::function<void(Addr, const Block &)> &fn) const;

    /** Drop everything (crash / power loss). */
    void invalidateAll();

    /** Lookup latency of this level. */
    Cycles latency() const { return params.latency; }

    const CacheParams &config() const { return params; }
    stats::StatGroup &statGroup() { return stats_; }

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    std::uint64_t writebacks() const { return statWritebacks.value(); }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest(std::string instance) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0; ///< full block address
        std::uint64_t lastUse = 0;
        Block data{};

        friend void
        dolosDescribeValue(std::ostream &os, const Line &l)
        {
            os << l.valid << '/' << l.dirty << '/' << l.tag << '/'
               << l.lastUse << '/' << persist::describe(l.data);
        }
    };

    std::size_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /**
     * Choose a victim in the set of @p addr, writing it back
     * downstream if dirty.
     *
     * @return the victim line, invalidated and ready for refill.
     */
    Line &allocate(Addr addr, Tick now);

    CacheParams params;
    MemDevice &downstream;
    std::size_t numSets;
    std::vector<Line> lines; ///< numSets x assoc, set-major
    std::uint64_t useClock = 0;

    stats::StatGroup stats_;
    stats::Scalar statHits;
    stats::Scalar statMisses;
    stats::Scalar statWritebacks;
    stats::Scalar statEvictions;
    stats::Histogram statMissLatency{100.0, 32};

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(Cache);
    DOLOS_PERSISTENT(params);
    DOLOS_PERSISTENT(downstream);
    DOLOS_PERSISTENT(numSets);
    // Cache contents sit in the eADR persistence domain: drained to
    // NVM by the holdup flush when the machine runs in EadrSecure
    // mode, plain volatile loss everywhere else.
    DOLOS_EADR_FLUSHED(lines);
    DOLOS_VOLATILE(useClock);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statHits);
    DOLOS_PERSISTENT(statMisses);
    DOLOS_PERSISTENT(statWritebacks);
    DOLOS_PERSISTENT(statEvictions);
    DOLOS_PERSISTENT(statMissLatency);
};

} // namespace dolos

#endif // DOLOS_MEM_CACHE_HH
