/**
 * @file
 * Tracer implementation and Chrome trace_event emission.
 */

#include "sim/trace.hh"

#include <array>
#include <cinttypes>

namespace dolos::trace
{

namespace
{

struct StageInfo
{
    const char *name;
    const char *category;
    unsigned lane;
};

constexpr std::array<StageInfo, std::size_t(Stage::NumStages)>
    stageTable{{
        {"clwb", "core", 0},
        {"sfence", "core", 0},
        {"wpqStall", "wpq", 1},
        {"wpqInsert", "wpq", 1},
        {"wpqCoalesce", "wpq", 1},
        {"wpqDrain", "wpq", 1},
        {"wpqBatch", "wpq", 1},
        {"misuPadXor", "misu", 2},
        {"misuMac", "misu", 2},
        {"masuCtrFetch", "masu", 3},
        {"masuAes", "masu", 3},
        {"masuMac", "masu", 3},
        {"masuBmt", "masu", 3},
        {"nvmRead", "nvm", 4},
        {"nvmWrite", "nvm", 4},
    }};

constexpr const char *laneNames[] = {"core", "wpq", "mi-su", "ma-su",
                                     "nvm"};

} // namespace

const char *
stageName(Stage s)
{
    return stageTable[std::size_t(s)].name;
}

const char *
stageCategory(Stage s)
{
    return stageTable[std::size_t(s)].category;
}

unsigned
stageLane(Stage s)
{
    return stageTable[std::size_t(s)].lane;
}

Tracer &
Tracer::instance()
{
    // Per-thread ring: each parallel sweep worker traces its own
    // System; interleaving two machines in one ring would be noise.
    static thread_local Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    if (ring.size() != capacity) {
        ring.assign(capacity, Event{});
        head = 0;
        count = 0;
    }
    active_ = true;
}

void
Tracer::clear()
{
    head = 0;
    count = 0;
    dropped_ = 0;
}

void
Tracer::dump(std::ostream &os) const
{
    os << "[";
    // Lane-naming metadata so the viewer shows pipeline-stage rows.
    bool first = true;
    for (unsigned lane = 0; lane < 5; ++lane) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << lane << ",\"ts\":0,"
           << "\"args\":{\"name\":\"" << laneNames[lane] << "\"}}";
    }
    // One simulated tick renders as one microsecond.
    forEach([&](const Event &e) {
        const StageInfo &info = stageTable[std::size_t(e.stage)];
        const Tick dur = e.end > e.start ? e.end - e.start : 0;
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << info.name << "\",\"cat\":\""
           << info.category << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
           << info.lane << ",\"ts\":" << e.start << ",\"dur\":" << dur
           << ",\"args\":{\"addr\":" << e.addr << ",\"id\":" << e.id
           << "}}";
    });
    os << "\n]\n";
}

} // namespace dolos::trace
