/**
 * @file
 * Minimal JSON parser / escaping implementation.
 */

#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dolos::json
{

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> a)
{
    Value v;
    v.kind_ = Kind::Array;
    v.arr = std::move(a);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> m)
{
    Value v;
    v.kind_ = Kind::Object;
    v.obj = std::move(m);
    return v;
}

namespace
{

/** Recursive-descent parser over a raw buffer. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty()) {
            err = what + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode (the emitters only produce ASCII, but
                // accept the full BMP for robustness).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            std::vector<std::pair<std::string, Value>> members;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Value::makeObject({});
                return true;
            }
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                Value v;
                if (!parseValue(v))
                    return false;
                members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume('}'))
                return false;
            out = Value::makeObject(std::move(members));
            return true;
        }
        if (c == '[') {
            ++pos;
            std::vector<Value> items;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Value::makeArray({});
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                items.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume(']'))
                return false;
            out = Value::makeArray(std::move(items));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Value::makeBool(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Value::makeBool(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Value::makeNull();
            return true;
        }
        // Number.
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        const double d = std::strtod(begin, &end);
        if (end == begin)
            return fail("unexpected token");
        if (!std::isfinite(d))
            return fail("non-finite number");
        pos += std::size_t(end - begin);
        out = Value::makeNumber(d);
        return true;
    }
};

void
collectLeaves(const Value &v, const std::string &path,
              std::vector<std::pair<std::string, double>> &out)
{
    switch (v.kind()) {
      case Value::Kind::Number:
        out.emplace_back(path, v.number());
        break;
      case Value::Kind::Array: {
        std::size_t i = 0;
        for (const auto &item : v.array()) {
            collectLeaves(item, path + "[" + std::to_string(i) + "]",
                          out);
            ++i;
        }
        break;
      }
      case Value::Kind::Object:
        for (const auto &[k, member] : v.members())
            collectLeaves(member, path.empty() ? k : path + "." + k,
                          out);
        break;
      default:
        break;
    }
}

} // namespace

std::optional<Value>
parse(const std::string &text, std::string *error)
{
    Parser p{text, 0, {}};
    Value v;
    if (!p.parseValue(v)) {
        if (error)
            *error = p.err;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " +
                     std::to_string(p.pos);
        return std::nullopt;
    }
    return v;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::vector<std::pair<std::string, double>>
numericLeaves(const Value &v)
{
    std::vector<std::pair<std::string, double>> out;
    collectLeaves(v, "", out);
    return out;
}

} // namespace dolos::json
