/**
 * @file
 * Microstep crash-point registry implementation.
 */

#include "sim/crash_points.hh"

namespace dolos::crashpoint
{

const char *
stepName(Step s)
{
    switch (s) {
      case Step::MasuCtrFetch: return "masuCtrFetch";
      case Step::MasuCtrBumped: return "masuCtrBumped";
      case Step::MasuAesPad: return "masuAesPad";
      case Step::MasuMacStored: return "masuMacStored";
      case Step::MasuBmtLevel: return "masuBmtLevel";
      case Step::MasuBmtCoalesce: return "masuBmtCoalesce";
      case Step::MasuRootCommit: return "masuRootCommit";
      case Step::MasuCtrEvict: return "masuCtrEvict";
      case Step::WpqDrainIssue: return "wpqDrainIssue";
      case Step::WpqDrainElide: return "wpqDrainElide";
      case Step::WpqCtWrite: return "wpqCtWrite";
      case Step::WpqRedoClear: return "wpqRedoClear";
      case Step::PrefetchIssue: return "prefetchIssue";
      case Step::PrefetchDirtyBackoff: return "prefetchDirtyBackoff";
      case Step::PrefetchPromote: return "prefetchPromote";
      case Step::EadrLineSelect: return "eadrLineSelect";
      case Step::EadrNvmWrite: return "eadrNvmWrite";
      case Step::EadrBudgetExhausted: return "eadrBudgetExhausted";
      case Step::NumSteps: break;
    }
    return "unknown";
}

Registry &
Registry::instance()
{
    // One registry per thread: each parallel sweep worker (--jobs N)
    // arms and probes its own crash plan against its own System, so
    // worker A's countdown never fires inside worker B's machine.
    static thread_local Registry r;
    return r;
}

void
Registry::reset()
{
    counting_ = false;
    armed_.reset();
    fired_.reset();
    firings_ = 0;
    perStep_.fill(0);
    sequence_.clear();
}

void
Registry::enableCounting()
{
    counting_ = true;
}

void
Registry::arm(std::uint64_t fire_at)
{
    armed_ = fire_at;
    fired_.reset();
}

void
Registry::fire(Step s)
{
    const std::uint64_t index = firings_++;
    ++perStep_[static_cast<std::size_t>(s)];
    if (counting_)
        sequence_.push_back(s);
    if (armed_ && index == *armed_) {
        // Auto-disarm: recovery re-drains through the very same
        // instrumented path and must run to completion.
        armed_.reset();
        fired_ = s;
        throw MicrostepCrash{s, index};
    }
}

} // namespace dolos::crashpoint
