/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 *
 * The simulator is tick-based where one tick equals one core clock
 * cycle of the 4 GHz core in the paper's Table 1 (0.25 ns). All
 * latencies from the paper are therefore expressed directly in ticks.
 */

#ifndef DOLOS_SIM_TYPES_HH
#define DOLOS_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace dolos
{

/** Simulated time, in core clock cycles (4 GHz => 0.25 ns / tick). */
using Tick = std::uint64_t;

/** A duration measured in core clock cycles. */
using Cycles = std::uint64_t;

/** Physical address in the simulated memory space. */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Cacheline (and NVM access) granularity, bytes. */
constexpr unsigned blockSize = 64;

/** Core frequency assumed by all latency parameters (Table 1). */
constexpr std::uint64_t coreFreqHz = 4'000'000'000ULL;

/** Convert nanoseconds to ticks at the 4 GHz core clock. */
constexpr Cycles
nsToCycles(std::uint64_t ns)
{
    return ns * (coreFreqHz / 1'000'000'000ULL);
}

/** Round an address down to its containing 64B block. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockSize - 1);
}

/** True if the address is 64B-block aligned. */
constexpr bool
isBlockAligned(Addr a)
{
    return (a & (blockSize - 1)) == 0;
}

} // namespace dolos

#endif // DOLOS_SIM_TYPES_HH
