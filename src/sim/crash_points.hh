/**
 * @file
 * Microstep crash-point registry for the optimized persist path.
 *
 * The WPQ-boundary and every-op sweeps arm power failures *between*
 * environment operations; the three persist-path levers (bmtPipeline,
 * drainBatching, tagPrefetch) create intermediate machine states
 * *inside* a single drain — a half-climbed pipelined BMT window, an
 * elided superseded entry, a prefetched counter block — that those
 * sweeps can never hit. Components mark each such internal step with
 * DOLOS_CRASH_POINT(step); this registry either counts the firings
 * (the sweep's probe run) or throws MicrostepCrash at an armed firing
 * index, which the workload runner converts into a mid-operation
 * power failure checked against the committed-prefix oracle.
 *
 * Like the tracer and the self-profiler this is a host-side test
 * facility: it carries no simulated machine state, so it sits outside
 * the persist-domain crash-state model. The registry instance is
 * thread_local: each parallel sweep worker (--jobs N) arms and probes
 * its own crash plan against the one System it runs, so workers never
 * observe each other's countdowns. Call reset() between runs on the
 * same thread.
 */

#ifndef DOLOS_SIM_CRASH_POINTS_HH
#define DOLOS_SIM_CRASH_POINTS_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace dolos::crashpoint
{

/** One named internal step of the optimized persist path. */
enum class Step : std::uint8_t
{
    // --- Ma-SU security engine (secureWrite internals) -------------
    MasuCtrFetch,    ///< write counter fetched (cache or NVM walk)
    MasuCtrBumped,   ///< counter incremented (after overflow commit)
    MasuAesPad,      ///< OTP pad generated, ciphertext computable
    MasuMacStored,   ///< data MAC recomputed and stored
    MasuBmtLevel,    ///< one charged level of the pipelined BMT climb
    MasuBmtCoalesce, ///< climb joined an in-flight shared ancestor
    MasuRootCommit,  ///< root/shadow commit group done, redo filled
    MasuCtrEvict,    ///< dirty counter block written back to NVM

    // --- controller drain scheduler ---------------------------------
    WpqDrainIssue,   ///< drain handed to the engine
    WpqDrainElide,   ///< superseded entry elided by drainBatching
    WpqCtWrite,      ///< drained ciphertext written to NVM
    WpqRedoClear,    ///< redo log cleared, entry about to release

    // --- tag-cache prefetch (WPQ admission) -------------------------
    PrefetchIssue,       ///< counter block prefetched into the cache
    PrefetchDirtyBackoff,///< prefetch backed off a dirty victim line
    PrefetchPromote,     ///< demand fetch hit a pending prefetch

    // --- eADR holdup flush (power already failed) -------------------
    EadrLineSelect,      ///< flush admitted the next dirty line
    EadrNvmWrite,        ///< flushed ciphertext written to NVM
    EadrBudgetExhausted, ///< holdup energy ran out mid-flush

    NumSteps
};

/** Stable lowercase name ("masuBmtLevel", "wpqDrainElide", ...). */
const char *stepName(Step s);

/** Thrown by an armed registry at the targeted firing. */
struct MicrostepCrash
{
    Step step;           ///< which hook fired
    std::uint64_t index; ///< firing index since reset()
};

/**
 * The process-global registry every DOLOS_CRASH_POINT site reports
 * to. Inactive (the default) costs one predicted-not-taken branch
 * per site.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Disarm, stop counting, and forget all recorded firings. */
    void reset();

    /**
     * Count and record every firing without ever crashing — the
     * sweep's probe mode. A deterministic config replays the exact
     * same firing sequence, so recorded indices are valid arm()
     * targets for a fresh run.
     */
    void enableCounting();

    /**
     * Throw MicrostepCrash at the @p fire_at-th firing (0-based,
     * counted since reset()/the current count). Auto-disarms when it
     * fires so recovery's own secureWrites cannot re-trigger it;
     * counting continues.
     */
    void arm(std::uint64_t fire_at);

    /** Stop crashing (counting state is unchanged). */
    void disarm() { armed_.reset(); }

    /** Any site should call fire()? (The macro's fast-path check.) */
    bool active() const { return counting_ || armed_.has_value(); }

    /** Total firings since reset(). */
    std::uint64_t firings() const { return firings_; }

    /** Firings of one step since reset(). */
    std::uint64_t
    firingsOf(Step s) const
    {
        return perStep_[static_cast<std::size_t>(s)];
    }

    /** Did an armed crash fire since reset()? */
    bool crashFired() const { return fired_.has_value(); }

    /** The step the armed crash fired at (if any). */
    std::optional<Step> firedStep() const { return fired_; }

    /** Every firing since reset(), in order (probe-run readback). */
    const std::vector<Step> &sequence() const { return sequence_; }

    /** Report one firing (call through DOLOS_CRASH_POINT). */
    void fire(Step s);

  private:
    Registry() = default;

    bool counting_ = false;
    std::optional<std::uint64_t> armed_;
    std::optional<Step> fired_;
    std::uint64_t firings_ = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(Step::NumSteps)>
        perStep_{};
    std::vector<Step> sequence_;
};

} // namespace dolos::crashpoint

/**
 * Mark one named internal step of the persist path. Always compiled
 * (the sanitize lane runs microstep sweeps too); one branch when the
 * registry is idle.
 */
#define DOLOS_CRASH_POINT(step)                                        \
    do {                                                               \
        auto &dolos_cp_ = ::dolos::crashpoint::Registry::instance();   \
        if (dolos_cp_.active()) [[unlikely]]                           \
            dolos_cp_.fire(::dolos::crashpoint::Step::step);           \
    } while (0)

#endif // DOLOS_SIM_CRASH_POINTS_HH
