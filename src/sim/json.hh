/**
 * @file
 * Minimal JSON value model, parser and string escaping.
 *
 * The simulator emits machine-readable artifacts (stat dumps, Chrome
 * traces, bench series) and tools/dolos_report consumes them; both
 * sides share this header so the repo needs no external JSON
 * dependency. The parser covers the full JSON grammar the emitters
 * use (objects, arrays, strings with escapes, numbers, booleans,
 * null) and is strict: trailing garbage or malformed input fails.
 */

#ifndef DOLOS_SIM_JSON_HH
#define DOLOS_SIM_JSON_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace dolos::json
{

/** One parsed JSON value (object keys keep insertion order). */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num; }
    const std::string &string() const { return str; }
    const std::vector<Value> &array() const { return arr; }

    /** Object members in source order. */
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return obj;
    }

    /** Look up an object member; nullptr if absent or not an object. */
    const Value *find(const std::string &key) const;

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> a);
    static Value makeObject(std::vector<std::pair<std::string, Value>> m);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num = 0;
    std::string str;
    std::vector<Value> arr;
    std::vector<std::pair<std::string, Value>> obj;
};

/**
 * Parse a complete JSON document.
 *
 * @param text The document.
 * @param error Filled with a diagnostic (with offset) on failure.
 * @return the value, or nullopt on malformed input.
 */
std::optional<Value> parse(const std::string &text,
                           std::string *error = nullptr);

/** Escape a string for embedding between double quotes in JSON. */
std::string escape(const std::string &s);

/**
 * Flatten every numeric leaf into "a.b[2].c" -> value pairs, in
 * document order (dolos_report diffs two artifacts this way).
 */
std::vector<std::pair<std::string, double>>
numericLeaves(const Value &v);

} // namespace dolos::json

#endif // DOLOS_SIM_JSON_HH
