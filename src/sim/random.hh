/**
 * @file
 * Deterministic pseudo-random number generation for workloads.
 *
 * Uses the xoshiro256** generator (public-domain algorithm by
 * Blackman & Vigna) so results are reproducible across platforms and
 * standard-library versions, unlike std::mt19937 + distributions.
 */

#ifndef DOLOS_SIM_RANDOM_HH
#define DOLOS_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace dolos
{

/** xoshiro256** PRNG; fast, high-quality, reproducible. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (slight bias is
        // irrelevant for workload generation).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

/**
 * Zipfian key-popularity generator (YCSB-style), over [0, n).
 *
 * Implements the Gray et al.\ rejection-inversion-free method used by
 * YCSB: draws follow P(k) proportional to 1/(k+1)^theta.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n Number of items.
     * @param theta Skew (YCSB default 0.99).
     */
    ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : items(n), theta(theta)
    {
        zetan = zeta(n, theta);
        zeta2 = zeta(2, theta);
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    }

    /** Draw a key in [0, n); key 0 is the most popular. */
    std::uint64_t
    next(Random &rng)
    {
        const double u = rng.real();
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        return static_cast<std::uint64_t>(
            double(items) * std::pow(eta * u - eta + 1.0, alpha));
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            sum += 1.0 / std::pow(double(i + 1), theta);
        return sum;
    }

    std::uint64_t items;
    double theta;
    double zetan, zeta2, alpha, eta;
};

} // namespace dolos

#endif // DOLOS_SIM_RANDOM_HH
