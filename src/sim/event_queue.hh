/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue orders callbacks by tick (FIFO among equal ticks) and
 * drives simulated time forward. Components schedule plain callables;
 * a scheduled event can be cancelled through its EventHandle.
 */

#ifndef DOLOS_SIM_EVENT_QUEUE_HH
#define DOLOS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/profiler.hh"
#include "sim/types.hh"

namespace dolos
{

/**
 * Cancellation handle for a scheduled event. Default-constructed
 * handles refer to no event; cancel() on them is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent the event from firing; idempotent. */
    void
    cancel()
    {
        if (live)
            *live = false;
    }

    /** True if the event is still pending (not fired, not cancelled). */
    bool
    pending() const
    {
        return live && *live;
    }

  private:
    friend class EventQueue;

    explicit EventHandle(std::shared_ptr<bool> l) : live(std::move(l)) {}

    std::shared_ptr<bool> live;
};

/**
 * Priority queue of timed callbacks; the heart of the simulator.
 *
 * Events scheduled for the same tick fire in scheduling order. Time
 * never moves backwards: scheduling in the past is a simulator bug.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Number of events still in the queue. Cancelled events are
     * counted until they are lazily popped by run().
     */
    std::size_t
    numPending() const
    {
        return pendingCount;
    }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= curTick().
     * @param cb Callback to invoke.
     * @return Handle usable to cancel the event.
     */
    EventHandle
    schedule(Tick when, std::function<void()> cb)
    {
        DOLOS_ASSERT(when >= _curTick,
                     "schedule at %llu before curTick %llu",
                     (unsigned long long)when,
                     (unsigned long long)_curTick);
        auto live = std::make_shared<bool>(true);
        events.push(Entry{when, nextSeq++, std::move(cb), live});
        ++pendingCount;
        return EventHandle(std::move(live));
    }

    /** Schedule a callback @p delay ticks from now. */
    EventHandle
    scheduleIn(Cycles delay, std::function<void()> cb)
    {
        return schedule(_curTick + delay, std::move(cb));
    }

    /**
     * Run events until the queue is empty or @p limit is reached.
     *
     * @param limit Stop once curTick would exceed this value.
     * @return Number of events executed.
     */
    std::uint64_t
    run(Tick limit = maxTick)
    {
        DOLOS_PROF_SCOPE(EventKernel);
        std::uint64_t executed = 0;
        while (!events.empty()) {
            const Entry &top = events.top();
            if (top.when > limit)
                break;
            Entry e = top;
            events.pop();
            --pendingCount;
            if (!*e.live)
                continue;
            *e.live = false;
            _curTick = e.when;
            e.cb();
            ++executed;
        }
        // Drain cancelled leftovers so numPending stays meaningful.
        while (!events.empty() && !*events.top().live) {
            events.pop();
            --pendingCount;
        }
        return executed;
    }

    /**
     * Advance time with no event semantics (used by sequential
     * latency-composition code between event firings).
     */
    void
    advanceTo(Tick t)
    {
        DOLOS_ASSERT(t >= _curTick, "time moved backwards");
        _curTick = t;
    }

    /** Reset to an empty queue at tick 0 (tests only). */
    void
    reset()
    {
        while (!events.empty())
            events.pop();
        pendingCount = 0;
        _curTick = 0;
        nextSeq = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> cb;
        std::shared_ptr<bool> live;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> events;
    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::size_t pendingCount = 0;
};

} // namespace dolos

#endif // DOLOS_SIM_EVENT_QUEUE_HH
