/**
 * @file
 * Implementation of error/status reporting and debug flags.
 */

#include "sim/logging.hh"

#include "sim/thread_annotations.hh"

#include <mutex>
#include <set>

namespace dolos
{

namespace
{

/** Serializes every access to the debug-flag set (see flagSet()). */
std::mutex &
flagsMutex()
{
    DOLOS_THREAD_SHARED(flagsMutex); // the lock itself is the lock
    static std::mutex mu;
    return mu;
}

std::set<std::string> &
rawFlagSet()
{
    DOLOS_THREAD_SHARED(flagsMutex);
    static std::set<std::string> flags;
    return flags;
}

/** The flag set, with $DOLOS_DEBUG applied on first use. */
std::set<std::string> &
flagSet()
{
    static const bool env_applied = [] {
        DebugFlags::initFromEnvironment();
        return true;
    }();
    (void)env_applied;
    return rawFlagSet();
}

void
vreport(std::FILE *out, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(out, "%s", prefix);
    std::vfprintf(out, fmt, ap);
    std::fprintf(out, "\n");
}

} // namespace

void
DebugFlags::enable(const std::string &flag)
{
    // Resolve flagSet() first: its magic-static env init calls
    // initFromEnvironment(), which takes the mutex itself.
    auto &set = flagSet();
    const std::lock_guard<std::mutex> g(flagsMutex());
    set.insert(flag);
}

void
DebugFlags::disable(const std::string &flag)
{
    auto &set = flagSet();
    const std::lock_guard<std::mutex> g(flagsMutex());
    set.erase(flag);
}

bool
DebugFlags::enabled(const std::string &flag)
{
    auto &set = flagSet();
    const std::lock_guard<std::mutex> g(flagsMutex());
    return set.count(flag) != 0;
}

void
DebugFlags::clear()
{
    auto &set = flagSet();
    const std::lock_guard<std::mutex> g(flagsMutex());
    set.clear();
}

void
DebugFlags::initFromEnvironment()
{
    const char *env = std::getenv("DOLOS_DEBUG");
    if (!env)
        return;
    const std::lock_guard<std::mutex> g(flagsMutex());
    std::string token;
    // Insert into the raw set: this runs during flagSet()'s first-use
    // initialization, and must not recurse into it.
    auto flush = [&token] {
        if (!token.empty())
            rawFlagSet().insert(token);
        token.clear();
    };
    for (const char *p = env; *p; ++p) {
        if (*p == ',' || *p == ' ' || *p == '\t')
            flush();
        else
            token.push_back(*p);
    }
    flush();
}

void
debugPrintf(const char *flag, const char *fmt, ...)
{
    if (!DebugFlags::enabled(flag))
        return;
    std::fprintf(stdout, "[%s] ", flag);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "\n");
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace dolos
