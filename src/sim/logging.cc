/**
 * @file
 * Implementation of error/status reporting and debug flags.
 */

#include "sim/logging.hh"

#include <mutex>
#include <set>

namespace dolos
{

namespace
{

std::set<std::string> &
flagSet()
{
    static std::set<std::string> flags;
    return flags;
}

void
vreport(std::FILE *out, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(out, "%s", prefix);
    std::vfprintf(out, fmt, ap);
    std::fprintf(out, "\n");
}

} // namespace

void
DebugFlags::enable(const std::string &flag)
{
    flagSet().insert(flag);
}

void
DebugFlags::disable(const std::string &flag)
{
    flagSet().erase(flag);
}

bool
DebugFlags::enabled(const std::string &flag)
{
    return flagSet().count(flag) != 0;
}

void
DebugFlags::clear()
{
    flagSet().clear();
}

void
debugPrintf(const char *flag, const char *fmt, ...)
{
    if (!DebugFlags::enabled(flag))
        return;
    std::fprintf(stdout, "[%s] ", flag);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "\n");
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

} // namespace dolos
