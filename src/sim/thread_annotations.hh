/**
 * @file
 * Thread-sharing annotations: the machine-checked concurrency model.
 *
 * The parallel sweep lanes (--jobs N in SweepDriver, dolos_torture,
 * dolos_fuzz) run one fully self-contained System per worker thread.
 * That only works if every piece of mutable state outside a System is
 * either (a) confined to one worker (thread_local, or per-worker by
 * construction) or (b) explicitly synchronized. This header gives
 * those two disciplines names that tools/dolos_lint enforces: the
 * thread-shared check flags every namespace-scope / static-local
 * mutable variable in src/ that carries neither a thread_local
 * qualifier nor one of the annotations below.
 *
 *  - DOLOS_THREAD_SHARED(lock): the variable IS shared across worker
 *    threads and every access is serialized by the named lock (or
 *    lock-free discipline). The name is documentation the reviewer
 *    can grep for; the macro compiles to a static_assert proving the
 *    token is non-empty.
 *
 *  - DOLOS_THREAD_LOCAL_OK: the variable is mutable at namespace /
 *    static scope but never touched by sweep worker threads — e.g.
 *    CLI option globals parsed in main() before any worker starts,
 *    or state that is write-once before the parallel region. The
 *    annotation is a reviewed claim, dynamically validated by the
 *    tsan_lane ctest.
 *
 * Placement: put the annotation on the declaration line or on its
 * own line immediately above the declaration (the lint associates an
 * annotation with the next declaration within two lines).
 *
 * Const / constexpr / thread_local variables never need annotating:
 * immutable state is freely shared and thread_local state is
 * confined by the language.
 */

#ifndef DOLOS_SIM_THREAD_ANNOTATIONS_HH
#define DOLOS_SIM_THREAD_ANNOTATIONS_HH

/**
 * Mutable global shared across worker threads; all access serialized
 * by @p lock (a member/variable name, or a short discipline token
 * such as atomics).
 */
#define DOLOS_THREAD_SHARED(lock)                                     \
    static_assert(sizeof(#lock) > 1,                                  \
                  "DOLOS_THREAD_SHARED needs a lock name")

/**
 * Mutable global that sweep worker threads never touch (parsed /
 * written before the parallel region, or main-thread-only).
 */
#define DOLOS_THREAD_LOCAL_OK                                         \
    static_assert(true, "confined to one thread by construction")

#endif // DOLOS_SIM_THREAD_ANNOTATIONS_HH
