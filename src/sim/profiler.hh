/**
 * @file
 * Host-side self-profiler: wall-clock attribution for the simulator.
 *
 * The simulator's own speed is a first-class concern (ROADMAP: "make
 * the simulator as fast as the hardware allows"), and tuning it needs
 * a profile, not a guess. Instrumentation sites wrap a scope in
 * DOLOS_PROF_SCOPE(Comp), an RAII timer that attributes *exclusive*
 * host nanoseconds to one component: when a SecurityEngine scope
 * calls into an Aes scope, the inner time counts toward Aes only, so
 * the per-component shares sum to the attributed total instead of
 * double-counting nested work.
 *
 * This measures host wall-clock only — it never reads or advances
 * simulated time, so profiling cannot perturb any measured metric.
 *
 * Like DOLOS_TRACE, the sites compile out entirely with
 * -DDOLOS_SELFPROF=0 (CMake option DOLOS_SELFPROF=OFF) and cost one
 * predicted-not-taken branch when compiled in but not enabled.
 * `dolos-sim --selfbench` runs the profiler over a workload and
 * reports events/sec plus the per-component shares
 * (src/workloads/selfbench.hh).
 */

#ifndef DOLOS_SIM_PROFILER_HH
#define DOLOS_SIM_PROFILER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>

#ifndef DOLOS_SELFPROF
#define DOLOS_SELFPROF 1
#endif

namespace dolos::prof
{

/** Component a profiled scope attributes its host time to. */
enum class Comp : std::uint8_t
{
    EventKernel,    ///< event-queue dispatch loop
    Core,           ///< SimpleCore operation bookkeeping
    CacheModel,     ///< cache hierarchy lookups/fills
    Controller,     ///< memory controller + WPQ machinery
    SecurityEngine, ///< Ma-SU orchestration (minus crypto below)
    Aes,            ///< AES block en/decryption
    Mac,            ///< MAC computation (HMAC/SipHash)
    Sha,            ///< SHA-256 compression
    CtrPad,         ///< counter-mode pad generation
    Nvm,            ///< NVM device timing + backing store
    Verify,         ///< golden-model diff / verify machinery
    NumComps
};

/** Stable report name of a component ("aes", "cacheModel", ...). */
const char *compName(Comp c);

/**
 * The process-wide profiler all DOLOS_PROF_SCOPE sites record into.
 *
 * Maintains a stack of open scopes and a per-component exclusive
 * nanosecond accumulator; push/pop re-stamp the clock so each span
 * of host time lands in exactly one component.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** Zero all counters and start attributing. */
    void enable();

    /** Stop attributing (accumulated numbers are kept). */
    void disable();

    /** Profiling enabled? (The DOLOS_PROF_SCOPE fast-path check.) */
    bool active() const { return active_; }

    /** Zero all counters and the scope stack. */
    void reset();

    /** Open a scope (call through DOLOS_PROF_SCOPE, not directly). */
    void push(Comp c);

    /** Close the innermost open scope. */
    void pop();

    /** Exclusive host nanoseconds attributed to @p c. */
    std::uint64_t exclusiveNanos(Comp c) const
    {
        return nanos_[index(c)];
    }

    /** Times a @p c scope was entered. */
    std::uint64_t calls(Comp c) const { return calls_[index(c)]; }

    /** Sum of exclusive nanoseconds across all components. */
    std::uint64_t attributedNanos() const;

    /** Human-readable table: component, seconds, share, calls. */
    void report(std::ostream &os) const;

    /**
     * {"selfprof":{"attributedSec":...,"components":{name:
     * {"seconds":...,"share":...,"calls":...}}}} — components in
     * fixed enum order (deterministic, byte-diffable).
     */
    void reportJson(std::ostream &os) const;

  private:
    static constexpr std::size_t numComps =
        static_cast<std::size_t>(Comp::NumComps);
    static constexpr std::size_t maxDepth = 64;

    static std::size_t index(Comp c)
    {
        return static_cast<std::size_t>(c);
    }

    std::array<std::uint64_t, numComps> nanos_{};
    std::array<std::uint64_t, numComps> calls_{};
    std::array<Comp, maxDepth> stack_{};
    std::size_t depth_ = 0;
    std::uint64_t lastStamp_ = 0;
    bool active_ = false;
};

/** RAII frame for one DOLOS_PROF_SCOPE site. */
class ScopedProf
{
  public:
    explicit ScopedProf(Comp c)
    {
        auto &p = Profiler::instance();
        armed = p.active();
        if (armed) [[unlikely]]
            p.push(c);
    }

    ~ScopedProf()
    {
        if (armed) [[unlikely]]
            Profiler::instance().pop();
    }

    ScopedProf(const ScopedProf &) = delete;
    ScopedProf &operator=(const ScopedProf &) = delete;

  private:
    bool armed;
};

} // namespace dolos::prof

#if DOLOS_SELFPROF
#define DOLOS_PROF_CAT2(a, b) a##b
#define DOLOS_PROF_CAT(a, b) DOLOS_PROF_CAT2(a, b)
#define DOLOS_PROF_SCOPE(comp)                                         \
    ::dolos::prof::ScopedProf DOLOS_PROF_CAT(dolos_prof_, __LINE__)(   \
        ::dolos::prof::Comp::comp)
#else
// Mention the component inside an unevaluated sizeof so the name is
// still spell-checked by the compiler in a -DDOLOS_SELFPROF=OFF
// build, while evaluating nothing (the zero-overhead invariant).
#define DOLOS_PROF_SCOPE(comp)                                         \
    ((void)sizeof(::dolos::prof::Comp::comp), (void)0)
#endif

#endif // DOLOS_SIM_PROFILER_HH
