/**
 * @file
 * Interval statistics sampler: a windowed timeline of the stat tree.
 *
 * End-of-run stats answer "how much in total"; the sampler answers
 * "when". It snapshots every registered StatGroup each time the
 * simulated clock crosses an N-cycle boundary and records, per
 * window: the delta of every scalar counter, the sum/count of every
 * Average, and the window-local min/max/mean of every Histogram,
 * plus derived persist-path rates (drains per kilocycle, WPQ-stall
 * fraction, tag-prefetch hit rate) so lever behavior and WPQ
 * pressure are visible as curves.
 *
 * The sampler is host-side only: poll() reads stat values and never
 * advances or depends on simulated time, so an attached sampler
 * changes no measured metric (tests/unit/stat_timeline_test.cc
 * proves final stats are bit-identical with sampling on vs off).
 *
 * The core's clock advances in jumps (a fence stall can cross many
 * intervals at once), so windows are closed at the *largest* interval
 * boundary at or below the polled tick: every window spans one or
 * more whole intervals, windows carry their actual [start, end)
 * bounds, and per-window deltas always sum exactly to the
 * end-of-run totals. finish() closes the trailing partial window.
 *
 * dumpJson()/dumpCsv() emit the timeline column-major / row-major;
 * columns are sorted by dotted stat path, so the artifacts are
 * byte-diffable across runs. tools/dolos_report --timeline renders
 * and diffs them (see docs/observability.md).
 */

#ifndef DOLOS_SIM_STAT_SAMPLER_HH
#define DOLOS_SIM_STAT_SAMPLER_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace dolos::stats
{

/** Windowed timeline sampler over registered StatGroup trees. */
class StatSampler
{
  public:
    /** @param interval Window length in simulated cycles (> 0). */
    explicit StatSampler(Tick interval);

    /** Register a root group to sample. Call before begin(). */
    void addGroup(const StatGroup *root);

    /**
     * Flatten the registered groups into columns, snapshot their
     * current values as the baseline, and open the first window at
     * @p now. Stats registered after begin() are not sampled.
     */
    void begin(Tick now);

    /**
     * Close windows if @p now reached the next interval boundary.
     * Cheap when it has not (one compare); hook this into the
     * clock-advancing operations of whatever owns simulated time.
     */
    void
    poll(Tick now)
    {
        if (!active_ || now < next_)
            return;
        closeWindowsTo(now);
    }

    /** Close the trailing partial window (if any) and stop. */
    void finish(Tick now);

    Tick interval() const { return interval_; }
    bool active() const { return active_; }
    std::size_t windowCount() const { return starts_.size(); }

    /** One column per stat; per-window series index-aligned with
     *  windowStarts()/windowEnds(). */
    struct ScalarColumn
    {
        std::string path;
        const Scalar *stat = nullptr;
        std::uint64_t last = 0; ///< value at the last window close
        std::vector<std::uint64_t> deltas;
    };

    struct AverageColumn
    {
        std::string path;
        const Average *stat = nullptr;
        double lastSum = 0;
        std::uint64_t lastN = 0;
        std::vector<double> sums;
        std::vector<std::uint64_t> counts;
    };

    struct HistColumn
    {
        std::string path;
        Histogram *stat = nullptr; ///< takeWindow() mutates host state
        std::vector<HistogramWindow> windows;
    };

    const std::vector<ScalarColumn> &scalarColumns() const
    {
        return scalarCols;
    }
    const std::vector<AverageColumn> &averageColumns() const
    {
        return avgCols;
    }
    const std::vector<HistColumn> &histColumns() const
    {
        return histCols;
    }
    const std::vector<Tick> &windowStarts() const { return starts_; }
    const std::vector<Tick> &windowEnds() const { return ends_; }

    /**
     * Derived per-window persist-path rates, computed from the
     * sampled columns when their source stats exist:
     *  - drainsPerKcycle: WPQ drains per 1000 cycles
     *    (mc.drainLatency sample count / window kilocycles)
     *  - wpqStallFraction: mc.wpqStallCycles delta / window cycles
     *  - tagPrefetchHitRate: secEngine.tagPrefetchHits delta /
     *    secEngine.tagPrefetchIssued delta (0 when none issued)
     */
    std::vector<std::pair<std::string, std::vector<double>>>
    derivedSeries() const;

    /**
     * Emit the timeline as one JSON object:
     * {"timeline":{"interval":N,"windows":[{"start","end"},...],
     *  "scalars":{path:[delta,...]},
     *  "averages":{path:{"sums":[...],"counts":[...]}},
     *  "histograms":{path:{"samples":[...],"means":[...],
     *                      "mins":[...],"maxs":[...]}},
     *  "derived":{name:[...]}}}
     */
    void dumpJson(std::ostream &os) const;

    /** One row per window; header names every column. */
    void dumpCsv(std::ostream &os) const;

  private:
    void closeWindowsTo(Tick now);
    void closeWindow(Tick end);

    Tick interval_;
    Tick next_ = 0;       ///< next boundary that closes a window
    Tick lastClose_ = 0;  ///< end of the previously closed window
    bool active_ = false;
    std::vector<const StatGroup *> roots;
    std::vector<ScalarColumn> scalarCols;
    std::vector<AverageColumn> avgCols;
    std::vector<HistColumn> histCols;
    std::vector<Tick> starts_;
    std::vector<Tick> ends_;
};

} // namespace dolos::stats

#endif // DOLOS_SIM_STAT_SAMPLER_HH
