/**
 * @file
 * Statistics package implementation.
 */

#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

namespace dolos::stats
{

void
Histogram::sample(double v)
{
    sum += v;
    ++n;
    if (v > maxSeen)
        maxSeen = v;
    auto idx = static_cast<std::size_t>(v / width);
    if (idx >= buckets.size())
        ++overflow;
    else
        ++buckets[idx];
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    overflow = 0;
    n = 0;
    sum = 0;
    maxSeen = 0;
}

void
StatGroup::addScalar(Scalar *s, const std::string &name,
                     const std::string &desc)
{
    scalars.push_back({s, name, desc});
}

void
StatGroup::addAverage(Average *a, const std::string &name,
                      const std::string &desc)
{
    averages.push_back({a, name, desc});
}

void
StatGroup::addHistogram(Histogram *h, const std::string &name,
                        const std::string &desc)
{
    hists.push_back({h, name, desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : scalars) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.s->value()
           << "# " << e.desc << "\n";
    }
    for (const auto &e : averages) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.a->mean()
           << "# " << e.desc << " (" << e.a->samples() << " samples)\n";
    }
    for (const auto &e : hists) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.h->mean()
           << "# mean of " << e.desc
           << " (" << e.h->samples() << " samples, max "
           << e.h->max() << ")\n";
    }
    for (const auto *c : children)
        c->dump(os, base);
}

void
StatGroup::resetAll()
{
    for (auto &e : scalars)
        e.s->reset();
    for (auto &e : averages)
        e.a->reset();
    for (auto &e : hists)
        e.h->reset();
    for (auto *c : children)
        c->resetAll();
}

} // namespace dolos::stats
