/**
 * @file
 * Statistics package implementation.
 */

#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dolos::stats
{

void
Histogram::sample(double v)
{
    sum += v;
    ++n;
    // min/max follow the first sample, not 0 — an all-negative
    // series must report a negative max.
    if (n == 1 || v > maxSeen)
        maxSeen = v;
    if (n == 1 || v < minSeen)
        minSeen = v;
    window.sum += v;
    ++window.samples;
    if (window.samples == 1 || v > window.max)
        window.max = v;
    if (window.samples == 1 || v < window.min)
        window.min = v;
    if (v < 0) {
        ++underflow;
        return;
    }
    auto idx = static_cast<std::size_t>(v / width);
    if (idx >= buckets.size())
        ++overflow;
    else
        ++buckets[idx];
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    overflow = 0;
    underflow = 0;
    n = 0;
    sum = 0;
    maxSeen = 0;
    minSeen = 0;
    window = HistogramWindow{};
}

HistogramWindow
Histogram::takeWindow()
{
    const HistogramWindow out = window;
    window = HistogramWindow{};
    return out;
}

void
StatGroup::checkUnique(const std::string &name) const
{
    for (const auto &e : scalars)
        DOLOS_ASSERT(e.name != name, "duplicate stat '%s' in group '%s'",
                     name.c_str(), _name.c_str());
    for (const auto &e : averages)
        DOLOS_ASSERT(e.name != name, "duplicate stat '%s' in group '%s'",
                     name.c_str(), _name.c_str());
    for (const auto &e : hists)
        DOLOS_ASSERT(e.name != name, "duplicate stat '%s' in group '%s'",
                     name.c_str(), _name.c_str());
}

void
StatGroup::addScalar(Scalar *s, const std::string &name,
                     const std::string &desc)
{
    checkUnique(name);
    scalars.push_back({s, name, desc});
}

void
StatGroup::addAverage(Average *a, const std::string &name,
                      const std::string &desc)
{
    checkUnique(name);
    averages.push_back({a, name, desc});
}

void
StatGroup::addHistogram(Histogram *h, const std::string &name,
                        const std::string &desc)
{
    checkUnique(name);
    hists.push_back({h, name, desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : scalars) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.s->value()
           << "# " << e.desc << "\n";
    }
    for (const auto &e : averages) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.a->mean()
           << "# " << e.desc << " (" << e.a->samples() << " samples)\n";
    }
    for (const auto &e : hists) {
        os << std::left << std::setw(48) << (base + "." + e.name)
           << std::setw(16) << e.h->mean()
           << "# mean of " << e.desc
           << " (" << e.h->samples() << " samples, max "
           << e.h->max() << ")\n";
    }
    for (const auto *c : children)
        c->dump(os, base);
}

namespace
{

/** Shortest round-trippable representation of a double. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Prefer the compact form when it round-trips exactly.
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    if (std::strtod(shorter, nullptr) == v)
        return shorter;
    return buf;
}

/** Entries of one section sorted by stat name (byte-diffable JSON). */
template <typename Entry>
std::vector<const Entry *>
sortedByName(const std::vector<Entry> &entries)
{
    std::vector<const Entry *> out;
    out.reserve(entries.size());
    for (const auto &e : entries)
        out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const Entry *a, const Entry *b) {
                  return a->name < b->name;
              });
    return out;
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << json::escape(_name) << "\"";
    if (!scalars.empty()) {
        os << ",\"scalars\":{";
        bool first = true;
        for (const auto *ep : sortedByName(scalars)) {
            const auto &e = *ep;
            os << (first ? "" : ",") << "\"" << json::escape(e.name)
               << "\":{\"value\":" << e.s->value() << ",\"desc\":\""
               << json::escape(e.desc) << "\"}";
            first = false;
        }
        os << "}";
    }
    if (!averages.empty()) {
        os << ",\"averages\":{";
        bool first = true;
        for (const auto *ep : sortedByName(averages)) {
            const auto &e = *ep;
            os << (first ? "" : ",") << "\"" << json::escape(e.name)
               << "\":{\"mean\":" << num(e.a->mean())
               << ",\"total\":" << num(e.a->total())
               << ",\"samples\":" << e.a->samples() << ",\"desc\":\""
               << json::escape(e.desc) << "\"}";
            first = false;
        }
        os << "}";
    }
    if (!hists.empty()) {
        os << ",\"histograms\":{";
        bool first = true;
        for (const auto *ep : sortedByName(hists)) {
            const auto &e = *ep;
            os << (first ? "" : ",") << "\"" << json::escape(e.name)
               << "\":{\"mean\":" << num(e.h->mean())
               << ",\"min\":" << num(e.h->min())
               << ",\"max\":" << num(e.h->max())
               << ",\"samples\":" << e.h->samples()
               << ",\"bucketWidth\":" << num(e.h->bucketWidth())
               << ",\"underflows\":" << e.h->underflows()
               << ",\"overflows\":" << e.h->overflows()
               << ",\"buckets\":[";
            bool bfirst = true;
            for (const auto b : e.h->data()) {
                os << (bfirst ? "" : ",") << b;
                bfirst = false;
            }
            os << "],\"desc\":\"" << json::escape(e.desc) << "\"}";
            first = false;
        }
        os << "}";
    }
    if (!children.empty()) {
        os << ",\"children\":[";
        bool first = true;
        for (const auto *c : children) {
            if (!first)
                os << ",";
            c->dumpJson(os);
            first = false;
        }
        os << "]";
    }
    os << "}";
}

void
StatGroup::forEachScalar(
    const std::function<void(const std::string &, Scalar *)> &fn,
    const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : scalars)
        fn(base + "." + e.name, e.s);
    for (const auto *c : children)
        c->forEachScalar(fn, base);
}

void
StatGroup::forEachAverage(
    const std::function<void(const std::string &, Average *)> &fn,
    const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : averages)
        fn(base + "." + e.name, e.a);
    for (const auto *c : children)
        c->forEachAverage(fn, base);
}

void
StatGroup::forEachHistogram(
    const std::function<void(const std::string &, Histogram *)> &fn,
    const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &e : hists)
        fn(base + "." + e.name, e.h);
    for (const auto *c : children)
        c->forEachHistogram(fn, base);
}

void
StatGroup::resetAll()
{
    for (auto &e : scalars)
        e.s->reset();
    for (auto &e : averages)
        e.a->reset();
    for (auto &e : hists)
        e.h->reset();
    for (auto *c : children)
        c->resetAll();
}

} // namespace dolos::stats
