/**
 * @file
 * Error and status reporting, gem5-style.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * errors such as bad configuration (exits); warn()/inform() report
 * conditions without stopping the simulation. DPRINTF-style debug
 * output is gated by named debug flags enabled at run time.
 */

#ifndef DOLOS_SIM_LOGGING_HH
#define DOLOS_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dolos
{

/**
 * Named debug flags; enable with DebugFlags::enable("Wpq") or from
 * the environment: DOLOS_DEBUG="Wpq,Misu" (comma/space separated)
 * is read the first time any flag is touched, so traces work in any
 * binary without code changes. docs/observability.md lists the flag
 * names the simulator emits.
 */
class DebugFlags
{
  public:
    /** Enable a named flag (e.g.\ "Wpq", "Misu", "MaSu"). */
    static void enable(const std::string &flag);

    /** Disable a previously enabled flag. */
    static void disable(const std::string &flag);

    /** Query whether a flag is enabled. */
    static bool enabled(const std::string &flag);

    /** Disable all flags (including environment-enabled ones). */
    static void clear();

    /**
     * (Re-)apply $DOLOS_DEBUG to the flag set. Runs automatically on
     * first use; exposed so tests and embedders can re-read the
     * environment after changing it.
     */
    static void initFromEnvironment();
};

/** Print a message gated on a debug flag; printf-style formatting. */
void debugPrintf(const char *flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Unconditional informational message to stdout. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unconditional warning to stderr. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** User error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Simulator bug: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the condition holds; msg is a printf format. */
#define DOLOS_ASSERT(cond, msg, ...)                                  \
    do {                                                              \
        if (!(cond))                                                  \
            ::dolos::panic("assertion '%s' failed at %s:%d: " msg,    \
                           #cond, __FILE__, __LINE__                  \
                           __VA_OPT__(,) __VA_ARGS__);                \
    } while (0)

} // namespace dolos

#endif // DOLOS_SIM_LOGGING_HH
