/**
 * @file
 * Lightweight statistics package.
 *
 * Components own a StatGroup and register named scalar counters,
 * averages and histograms in it. Groups can be nested; dump() prints
 * a gem5-stats-like "name value # description" listing.
 */

#ifndef DOLOS_SIM_STATS_HH
#define DOLOS_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dolos::stats
{

/** Monotonic counter. */
class Scalar
{
  public:
    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(std::uint64_t v) { val += v; return *this; }
    void reset() { val = 0; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Running mean of sampled values. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    void reset() { sum = 0; n = 0; }
    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / double(n) : 0.0; }
    double total() const { return sum; }

  private:
    double sum = 0;
    std::uint64_t n = 0;
};

/**
 * Activity of a Histogram since the previous window was taken (see
 * Histogram::takeWindow and StatSampler): sample count, their sum,
 * and the window-local extrema.
 */
struct HistogramWindow
{
    std::uint64_t samples = 0;
    double sum = 0;
    double min = 0; ///< valid only while samples > 0
    double max = 0; ///< valid only while samples > 0

    double mean() const { return samples ? sum / double(samples) : 0.0; }
};

/** Fixed-width-bucket histogram with underflow/overflow bins. */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param num_buckets Number of in-range buckets.
     */
    Histogram(double bucket_width = 1.0, unsigned num_buckets = 16)
        : width(bucket_width), buckets(num_buckets, 0)
    {}

    void sample(double v);
    void reset();

    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / double(n) : 0.0; }
    double total() const { return sum; }

    /** Largest sample seen; 0 with no samples. */
    double max() const { return n ? maxSeen : 0.0; }

    /** Smallest sample seen; 0 with no samples. */
    double min() const { return n ? minSeen : 0.0; }

    double bucketWidth() const { return width; }
    const std::vector<std::uint64_t> &data() const { return buckets; }
    std::uint64_t overflows() const { return overflow; }
    std::uint64_t underflows() const { return underflow; }

    /**
     * Return the samples recorded since the previous takeWindow()
     * (or construction/reset) and restart the window. The cumulative
     * stats above are unaffected; only the StatSampler's interval
     * timeline consumes windows.
     */
    HistogramWindow takeWindow();

  private:
    double width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t underflow = 0;
    std::uint64_t n = 0;
    double sum = 0;
    double maxSeen = 0; ///< valid only while n > 0
    double minSeen = 0; ///< valid only while n > 0
    HistogramWindow window; ///< activity since the last takeWindow()
};

/**
 * Named collection of statistics belonging to one component.
 *
 * The group stores registration order and prints stats as
 * "<group>.<stat>  <value>  # <description>".
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /**
     * Register a scalar; the group does not own the stat.
     * Registering two stats under the same name in one group is a
     * simulator bug (panics): the dump would be ambiguous.
     */
    void addScalar(Scalar *s, const std::string &name,
                   const std::string &desc);
    void addAverage(Average *a, const std::string &name,
                    const std::string &desc);
    void addHistogram(Histogram *h, const std::string &name,
                      const std::string &desc);

    /** Attach a child group whose stats dump under this group. */
    void addChild(StatGroup *child);

    /** Print all registered stats (and children) to @p os. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Emit this group (and children, recursively) as one JSON
     * object: {"name":..., "scalars":{...}, "averages":{...},
     * "histograms":{...}, "children":[...]}.
     *
     * Key order is deterministic and byte-diffable: within each
     * section, stats are emitted sorted by name (children keep
     * attachment order, which construction fixes). dump() keeps
     * registration order for human readers.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset all registered stats (and children) to zero. */
    void resetAll();

    /**
     * Visit every registered stat of this group and its children
     * with its dotted path ("mc.misu.macOps"), depth first in
     * registration order. The visitors receive the live stat
     * objects; the StatSampler flattens the tree through these.
     */
    void forEachScalar(
        const std::function<void(const std::string &, Scalar *)> &fn,
        const std::string &prefix = "") const;
    void forEachAverage(
        const std::function<void(const std::string &, Average *)> &fn,
        const std::string &prefix = "") const;
    void forEachHistogram(
        const std::function<void(const std::string &, Histogram *)> &fn,
        const std::string &prefix = "") const;

    const std::string &name() const { return _name; }

  private:
    struct ScalarEntry { Scalar *s; std::string name, desc; };
    struct AverageEntry { Average *a; std::string name, desc; };
    struct HistEntry { Histogram *h; std::string name, desc; };

    /** Panic if @p name is already registered in this group. */
    void checkUnique(const std::string &name) const;

    std::string _name;
    std::vector<ScalarEntry> scalars;
    std::vector<AverageEntry> averages;
    std::vector<HistEntry> hists;
    std::vector<StatGroup *> children;
};

} // namespace dolos::stats

#endif // DOLOS_SIM_STATS_HH
