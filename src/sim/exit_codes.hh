/**
 * @file
 * Documented process exit codes shared by the CLI drivers.
 *
 * `dolos_sim` and `dolos_torture` distinguish *why* a run failed so
 * scripts (and the smoke tests) can branch on the cause instead of
 * parsing stdout:
 *
 *   0  ExitOk                  run clean, verification passed
 *   1  ExitViolation           oracle/verification mismatch (a bug)
 *   2  ExitUsage               bad CLI arguments or invalid config
 *   3  ExitAttack              integrity violation flagged as tamper
 *   4  ExitUnrecoverableMedia  block(s) quarantined after media faults
 *
 * When several causes apply the most specific wins: an attack alarm
 * outranks a media quarantine, which outranks a plain verification
 * mismatch — a tampered run usually also fails the oracle, and the
 * caller cares about the alarm, not the side effect.
 */

#ifndef DOLOS_SIM_EXIT_CODES_HH
#define DOLOS_SIM_EXIT_CODES_HH

namespace dolos
{

enum ExitCode : int
{
    ExitOk = 0,
    ExitViolation = 1,
    ExitUsage = 2,
    ExitAttack = 3,
    ExitUnrecoverableMedia = 4,
};

/** Fold run outcome flags into the documented exit code. */
inline int
exitCodeFor(bool verified, bool attack_detected, bool unrecoverable_media)
{
    if (attack_detected)
        return ExitAttack;
    if (unrecoverable_media)
        return ExitUnrecoverableMedia;
    return verified ? ExitOk : ExitViolation;
}

} // namespace dolos

#endif // DOLOS_SIM_EXIT_CODES_HH
