/**
 * @file
 * Interval statistics sampler implementation.
 */

#include "sim/stat_sampler.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace dolos::stats
{

namespace
{

/** Shortest round-trippable representation of a double. */
std::string
num(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    if (std::strtod(shorter, nullptr) == v)
        return shorter;
    return buf;
}

} // namespace

StatSampler::StatSampler(Tick interval) : interval_(interval)
{
    DOLOS_ASSERT(interval > 0, "sample interval must be positive");
}

void
StatSampler::addGroup(const StatGroup *root)
{
    DOLOS_ASSERT(!active_, "addGroup after begin()");
    roots.push_back(root);
}

void
StatSampler::begin(Tick now)
{
    DOLOS_ASSERT(!active_, "StatSampler::begin called twice");
    scalarCols.clear();
    avgCols.clear();
    histCols.clear();
    starts_.clear();
    ends_.clear();
    for (const StatGroup *root : roots) {
        root->forEachScalar([this](const std::string &path, Scalar *s) {
            scalarCols.push_back({path, s, s->value(), {}});
        });
        root->forEachAverage([this](const std::string &path, Average *a) {
            avgCols.push_back(
                {path, a, a->total(), a->samples(), {}, {}});
        });
        root->forEachHistogram(
            [this](const std::string &path, Histogram *h) {
                // Discard any window residue from before begin().
                h->takeWindow();
                histCols.push_back({path, h, {}});
            });
    }
    // Column order is part of the artifact: sort by path so two runs
    // (or two builds that register groups in a different order)
    // stay byte-diffable.
    const auto byPath = [](const auto &a, const auto &b) {
        return a.path < b.path;
    };
    std::sort(scalarCols.begin(), scalarCols.end(), byPath);
    std::sort(avgCols.begin(), avgCols.end(), byPath);
    std::sort(histCols.begin(), histCols.end(), byPath);

    lastClose_ = now;
    next_ = (now / interval_ + 1) * interval_;
    active_ = true;
}

void
StatSampler::closeWindow(Tick end)
{
    starts_.push_back(lastClose_);
    ends_.push_back(end);
    for (auto &c : scalarCols) {
        const std::uint64_t v = c.stat->value();
        c.deltas.push_back(v - c.last);
        c.last = v;
    }
    for (auto &c : avgCols) {
        const double sum = c.stat->total();
        const std::uint64_t n = c.stat->samples();
        c.sums.push_back(sum - c.lastSum);
        c.counts.push_back(n - c.lastN);
        c.lastSum = sum;
        c.lastN = n;
    }
    for (auto &c : histCols)
        c.windows.push_back(c.stat->takeWindow());
    lastClose_ = end;
}

void
StatSampler::closeWindowsTo(Tick now)
{
    // One window per crossing, ending at the largest boundary at or
    // below now: a clock jump over many intervals yields one long
    // window (a whole multiple of the interval), never a flood of
    // empty ones. Deltas still reconcile exactly.
    const Tick boundary = (now / interval_) * interval_;
    if (boundary <= lastClose_)
        return;
    closeWindow(boundary);
    next_ = boundary + interval_;
}

void
StatSampler::finish(Tick now)
{
    if (!active_)
        return;
    closeWindowsTo(now);
    if (now > lastClose_)
        closeWindow(now); // trailing partial window
    active_ = false;
}

std::vector<std::pair<std::string, std::vector<double>>>
StatSampler::derivedSeries() const
{
    std::vector<std::pair<std::string, std::vector<double>>> out;
    const std::size_t nw = starts_.size();

    auto windowLen = [this](std::size_t w) {
        return double(ends_[w] - starts_[w]);
    };
    auto findScalar = [this](const char *path) -> const ScalarColumn * {
        for (const auto &c : scalarCols)
            if (c.path == path)
                return &c;
        return nullptr;
    };

    for (const auto &c : avgCols) {
        if (c.path != "mc.drainLatency")
            continue;
        std::vector<double> series(nw, 0.0);
        for (std::size_t w = 0; w < nw; ++w)
            series[w] = double(c.counts[w]) / (windowLen(w) / 1000.0);
        out.emplace_back("drainsPerKcycle", std::move(series));
    }
    if (const auto *stall = findScalar("mc.wpqStallCycles")) {
        std::vector<double> series(nw, 0.0);
        for (std::size_t w = 0; w < nw; ++w)
            series[w] = double(stall->deltas[w]) / windowLen(w);
        out.emplace_back("wpqStallFraction", std::move(series));
    }
    const auto *hits = findScalar("secEngine.tagPrefetchHits");
    const auto *issued = findScalar("secEngine.tagPrefetchIssued");
    if (hits && issued) {
        std::vector<double> series(nw, 0.0);
        for (std::size_t w = 0; w < nw; ++w)
            series[w] = issued->deltas[w]
                            ? double(hits->deltas[w]) /
                                  double(issued->deltas[w])
                            : 0.0;
        out.emplace_back("tagPrefetchHitRate", std::move(series));
    }
    return out;
}

void
StatSampler::dumpJson(std::ostream &os) const
{
    os << "{\"timeline\":{\"interval\":" << interval_;
    os << ",\"windows\":[";
    for (std::size_t w = 0; w < starts_.size(); ++w)
        os << (w ? "," : "") << "{\"start\":" << starts_[w]
           << ",\"end\":" << ends_[w] << "}";
    os << "]";

    os << ",\"scalars\":{";
    bool first = true;
    for (const auto &c : scalarCols) {
        os << (first ? "" : ",") << "\"" << json::escape(c.path)
           << "\":[";
        for (std::size_t w = 0; w < c.deltas.size(); ++w)
            os << (w ? "," : "") << c.deltas[w];
        os << "]";
        first = false;
    }
    os << "}";

    os << ",\"averages\":{";
    first = true;
    for (const auto &c : avgCols) {
        os << (first ? "" : ",") << "\"" << json::escape(c.path)
           << "\":{\"sums\":[";
        for (std::size_t w = 0; w < c.sums.size(); ++w)
            os << (w ? "," : "") << num(c.sums[w]);
        os << "],\"counts\":[";
        for (std::size_t w = 0; w < c.counts.size(); ++w)
            os << (w ? "," : "") << c.counts[w];
        os << "]}";
        first = false;
    }
    os << "}";

    os << ",\"histograms\":{";
    first = true;
    for (const auto &c : histCols) {
        os << (first ? "" : ",") << "\"" << json::escape(c.path)
           << "\":{\"samples\":[";
        for (std::size_t w = 0; w < c.windows.size(); ++w)
            os << (w ? "," : "") << c.windows[w].samples;
        os << "],\"means\":[";
        for (std::size_t w = 0; w < c.windows.size(); ++w)
            os << (w ? "," : "") << num(c.windows[w].mean());
        os << "],\"mins\":[";
        for (std::size_t w = 0; w < c.windows.size(); ++w)
            os << (w ? "," : "")
               << num(c.windows[w].samples ? c.windows[w].min : 0.0);
        os << "],\"maxs\":[";
        for (std::size_t w = 0; w < c.windows.size(); ++w)
            os << (w ? "," : "")
               << num(c.windows[w].samples ? c.windows[w].max : 0.0);
        os << "]}";
        first = false;
    }
    os << "}";

    os << ",\"derived\":{";
    first = true;
    for (const auto &[name, series] : derivedSeries()) {
        os << (first ? "" : ",") << "\"" << json::escape(name)
           << "\":[";
        for (std::size_t w = 0; w < series.size(); ++w)
            os << (w ? "," : "") << num(series[w]);
        os << "]";
        first = false;
    }
    os << "}}}\n";
}

void
StatSampler::dumpCsv(std::ostream &os) const
{
    const auto derived = derivedSeries();
    os << "start,end";
    for (const auto &c : scalarCols)
        os << "," << c.path;
    for (const auto &c : avgCols)
        os << "," << c.path << ".sum," << c.path << ".count";
    for (const auto &c : histCols)
        os << "," << c.path << ".samples," << c.path << ".mean,"
           << c.path << ".min," << c.path << ".max";
    for (const auto &[name, series] : derived)
        os << ",derived." << name;
    os << "\n";
    for (std::size_t w = 0; w < starts_.size(); ++w) {
        os << starts_[w] << "," << ends_[w];
        for (const auto &c : scalarCols)
            os << "," << c.deltas[w];
        for (const auto &c : avgCols)
            os << "," << num(c.sums[w]) << "," << c.counts[w];
        for (const auto &c : histCols)
            os << "," << c.windows[w].samples << ","
               << num(c.windows[w].mean()) << ","
               << num(c.windows[w].samples ? c.windows[w].min : 0.0)
               << ","
               << num(c.windows[w].samples ? c.windows[w].max : 0.0);
        for (const auto &[name, series] : derived)
            os << "," << num(series[w]);
        os << "\n";
    }
}

} // namespace dolos::stats
