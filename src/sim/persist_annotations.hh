/**
 * @file
 * Persist-domain annotations: the machine-checked crash-state model.
 *
 * Every crash-correctness argument in this simulator rests on the
 * crash() paths resetting exactly the volatile state and preserving
 * exactly the persistent state. This header makes that boundary
 * explicit and checkable:
 *
 *  - In the class body, every data member of a crash-relevant class
 *    is tagged DOLOS_PERSISTENT(field) or DOLOS_VOLATILE(field)
 *    under a DOLOS_STATE_CLASS(Class) marker. The tags compile to
 *    static_asserts (zero runtime cost; a tag naming a nonexistent
 *    member fails the build) and are enforced by tools/dolos_lint:
 *    an untagged member of a state class fails the lint.
 *
 *  - Each state class implements stateManifest(), registering the
 *    same fields with snapshot closures into a StateManifest. The
 *    lint cross-checks the manifest against the header tags, and the
 *    runtime differential check (dolos-sim --verify-manifest,
 *    tests/unit/persist_manifest_test) proves the declared kinds
 *    against the actual crash() behavior: volatile fields must read
 *    back as their reset values after a power loss, persistent
 *    fields must round-trip unchanged.
 *
 * Classification rules (docs/static_analysis.md):
 *
 *  - Persistent: unchanged across crash(). On-chip persistent
 *    registers (PCR, root register, redo log), the NVM cell array,
 *    physical media-fault state, configuration constants, and
 *    simulation bookkeeping that deliberately survives power cycles
 *    (statistics, the monotonic simulated clock, monotonic ids).
 *
 *  - Volatile: reset by crash() to a deterministic reset value
 *    (cleared container, zero scalar, invalidated cache). Fields
 *    whose reset value is dynamic (e.g. a cursor reset to another
 *    field) register a custom predicate via DOLOS_MF_V_CHECK.
 */

#ifndef DOLOS_SIM_PERSIST_ANNOTATIONS_HH
#define DOLOS_SIM_PERSIST_ANNOTATIONS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace dolos::persist
{

/** Crash-state classification of one data member. */
enum class Kind
{
    Persistent, ///< survives crash() unchanged
    Volatile,   ///< reset by crash() to its reset value

    /**
     * Contents sit in the eADR persistence domain: on power failure
     * the holdup flush drains them to NVM through the security
     * pipeline, after which the field itself resets like a volatile
     * one. Mechanically the differential checks it as Volatile; the
     * distinct kind is the semantic declaration the flush walk and
     * the lint key off.
     */
    EadrFlushed,
};

inline const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::Persistent: return "persistent";
      case Kind::Volatile: return "volatile";
      case Kind::EadrFlushed: return "eadr-flushed";
    }
    return "?";
}

// --- deterministic value serialization ------------------------------
//
// describe() renders any annotated field as a canonical string so
// that snapshots taken before and after a crash (or on two machines
// with the same configuration) compare with string equality.
// Unordered containers are sorted; byte blobs are hex. Types outside
// the built-in set provide an ADL hook:
//
//   friend void dolosDescribeValue(std::ostream &os, const T &v);

namespace detail
{

template <typename T>
concept ByteBlob = requires(const T &t) {
    { t.data() } -> std::convertible_to<const void *>;
    { t.size() } -> std::convertible_to<std::size_t>;
} && sizeof(*std::declval<const T &>().data()) == 1 &&
    !std::is_same_v<T, std::string>;

template <typename T>
concept MapLike = requires(const T &t) {
    typename T::key_type;
    typename T::mapped_type;
    t.begin();
    t.end();
};

template <typename T>
concept Sequence = requires(const T &t) {
    t.begin();
    t.end();
} && !MapLike<T> && !ByteBlob<T> && !std::is_same_v<T, std::string>;

template <typename T> struct IsOptional : std::false_type {};
template <typename T>
struct IsOptional<std::optional<T>> : std::true_type {};

template <typename T> struct IsPair : std::false_type {};
template <typename A, typename B>
struct IsPair<std::pair<A, B>> : std::true_type {};

inline void
put(std::ostream &os, const stats::Scalar &s)
{
    os << s.value();
}

inline void
put(std::ostream &os, const stats::Average &a)
{
    os << a.samples() << '/' << a.total();
}

inline void
put(std::ostream &os, const stats::Histogram &h)
{
    os << h.samples() << '/' << h.underflows() << '/' << h.overflows()
       << '/' << h.min() << '/' << h.max() << '/';
    for (const auto b : h.data())
        os << b << ';';
}

template <typename T>
void
put(std::ostream &os, const T &v)
{
    if constexpr (requires { dolosDescribeValue(os, v); }) {
        dolosDescribeValue(os, v);
    } else if constexpr (std::is_same_v<T, bool>) {
        os << (v ? "true" : "false");
    } else if constexpr (std::is_enum_v<T>) {
        os << std::uint64_t(v);
    } else if constexpr (std::is_integral_v<T>) {
        os << std::uint64_t(v);
    } else if constexpr (std::is_floating_point_v<T>) {
        os << v;
    } else if constexpr (std::is_same_v<T, std::string>) {
        os << '"' << v << '"';
    } else if constexpr (std::is_pointer_v<T>) {
        os << (v ? "&set" : "null");
    } else if constexpr (IsOptional<T>::value) {
        if (v)
            put(os, *v);
        else
            os << "nullopt";
    } else if constexpr (IsPair<T>::value) {
        os << '(';
        put(os, v.first);
        os << ',';
        put(os, v.second);
        os << ')';
    } else if constexpr (ByteBlob<T>) {
        static const char *hex = "0123456789abcdef";
        const auto *p =
            reinterpret_cast<const unsigned char *>(v.data());
        for (std::size_t i = 0; i < v.size(); ++i)
            os << hex[p[i] >> 4] << hex[p[i] & 0xf];
    } else if constexpr (MapLike<T>) {
        // Canonical order independent of the container's iteration
        // order: render each entry, then sort (key, value) pairs.
        std::vector<std::pair<std::uint64_t, std::string>> items;
        for (const auto &[k, val] : v) {
            std::ostringstream es;
            put(es, val);
            items.emplace_back(std::uint64_t(k), es.str());
        }
        std::sort(items.begin(), items.end());
        os << '{';
        for (const auto &[k, s] : items)
            os << k << ':' << s << ';';
        os << '}';
    } else if constexpr (Sequence<T>) {
        os << '[';
        for (const auto &e : v) {
            put(os, e);
            os << ';';
        }
        os << ']';
    } else {
        static_assert(!sizeof(T *),
                      "no describe() rule for this type; add a "
                      "dolosDescribeValue ADL hook");
    }
}

} // namespace detail

/** Canonical string rendering of one field's current value. */
template <typename T>
std::string
describe(const T &v)
{
    std::ostringstream os;
    detail::put(os, v);
    return os.str();
}

/**
 * Per-class, per-instance registry of annotated fields with live
 * snapshot closures. Built by <Class>::stateManifest(); consumed by
 * the power-loss differential check in src/verify/manifest_check.
 */
class StateManifest
{
  public:
    struct Field
    {
        std::string name;
        Kind kind = Kind::Persistent;

        /** Serialize the field's current value (empty if delegated). */
        std::function<std::string()> snapshot;

        /**
         * Optional post-crash predicate replacing the default check
         * (volatile: equals the pristine reset value; persistent:
         * round-trips). Used for dynamic reset values.
         */
        std::function<bool()> check;
        std::string rule; ///< human description of the custom check

        /**
         * The field is itself a state class (or owns one); its state
         * is verified through its own manifest, registered here only
         * so the lint can prove annotation coverage.
         */
        bool delegated = false;
    };

    explicit StateManifest(std::string class_name,
                           std::string instance = {})
        : cls(std::move(class_name)), inst(std::move(instance))
    {}

    void
    add(std::string name, Kind kind,
        std::function<std::string()> snapshot)
    {
        checkUnique(name);
        fields_.push_back(
            {std::move(name), kind, std::move(snapshot), nullptr, "",
             false});
    }

    void
    addChecked(std::string name, Kind kind,
               std::function<std::string()> snapshot, std::string rule,
               std::function<bool()> check)
    {
        checkUnique(name);
        fields_.push_back({std::move(name), kind, std::move(snapshot),
                           std::move(check), std::move(rule), false});
    }

    void
    addDelegated(std::string name, Kind kind)
    {
        checkUnique(name);
        fields_.push_back(
            {std::move(name), kind, nullptr, nullptr, "", true});
    }

    const std::string &className() const { return cls; }
    const std::string &instance() const { return inst; }
    const std::vector<Field> &fields() const { return fields_; }

    /** Display label: Class.field or Class(instance).field. */
    std::string
    label(const Field &f) const
    {
        std::string s = cls;
        if (!inst.empty())
            s += "(" + inst + ")";
        return s + "." + f.name;
    }

  private:
    void
    checkUnique(const std::string &name) const
    {
        for (const auto &f : fields_)
            if (f.name == name)
                panic("StateManifest %s: field '%s' registered twice",
                      cls.c_str(), name.c_str());
    }

    std::string cls;
    std::string inst;
    std::vector<Field> fields_;
};

} // namespace dolos::persist

// --- in-class crash-state markers -----------------------------------
//
// Zero runtime cost: the tags compile to static_asserts whose
// decltype operand proves the named member exists. tools/dolos_lint
// enforces that every data member of a DOLOS_STATE_CLASS is tagged
// exactly once and that the tags agree with the stateManifest()
// registration; the --verify-manifest differential proves the tags
// against the actual crash() behavior.

#define DOLOS_STATE_CLASS(cls)                                        \
    static_assert(sizeof(#cls) > 1,                                   \
                  "DOLOS_STATE_CLASS needs a class name")

#define DOLOS_PERSISTENT(field)                                       \
    static_assert(sizeof(decltype(field)) != 0,                       \
                  "DOLOS_PERSISTENT(" #field "): no such member")

#define DOLOS_VOLATILE(field)                                         \
    static_assert(sizeof(decltype(field)) != 0,                       \
                  "DOLOS_VOLATILE(" #field "): no such member")

#define DOLOS_EADR_FLUSHED(field)                                     \
    static_assert(sizeof(decltype(field)) != 0,                       \
                  "DOLOS_EADR_FLUSHED(" #field "): no such member")

// --- manifest-builder macros ----------------------------------------
//
// Used inside <Class>::stateManifest() const. The field name token
// must match the header tag (the lint cross-checks the two lists).

/** Persistent field with the default round-trip check. */
#define DOLOS_MF_P(m, field)                                          \
    (m).add(#field, ::dolos::persist::Kind::Persistent,               \
            [this] { return ::dolos::persist::describe(field); })

/** Volatile field with the default reset-value check. */
#define DOLOS_MF_V(m, field)                                          \
    (m).add(#field, ::dolos::persist::Kind::Volatile,                 \
            [this] { return ::dolos::persist::describe(field); })

/**
 * eADR-flushed field: drained to NVM by the holdup flush, then reset.
 * Differentially checked like a volatile field (reset-value check).
 */
#define DOLOS_MF_EADR_FLUSHED(m, field)                               \
    (m).add(#field, ::dolos::persist::Kind::EadrFlushed,              \
            [this] { return ::dolos::persist::describe(field); })

/** Persistent field with a custom post-crash predicate. */
#define DOLOS_MF_P_CHECK(m, field, rule, ...)                         \
    (m).addChecked(#field, ::dolos::persist::Kind::Persistent,        \
                   [this] { return ::dolos::persist::describe(field); }, \
                   (rule), __VA_ARGS__)

/** Volatile field with a custom post-crash predicate. */
#define DOLOS_MF_V_CHECK(m, field, rule, ...)                         \
    (m).addChecked(#field, ::dolos::persist::Kind::Volatile,          \
                   [this] { return ::dolos::persist::describe(field); }, \
                   (rule), __VA_ARGS__)

/**
 * Configuration constant / wiring reference: persistent by
 * construction, never mutated, not worth serializing.
 */
#define DOLOS_MF_CONST(m, field)                                      \
    (m).add(#field, ::dolos::persist::Kind::Persistent,               \
            [] { return std::string("<config-const>"); })

/** Persistent member whose state is checked via its own manifest. */
#define DOLOS_MF_DELEGATED_P(m, field)                                \
    (m).addDelegated(#field, ::dolos::persist::Kind::Persistent)

/** Volatile member whose state is checked via its own manifest. */
#define DOLOS_MF_DELEGATED_V(m, field)                                \
    (m).addDelegated(#field, ::dolos::persist::Kind::Volatile)

#endif // DOLOS_SIM_PERSIST_ANNOTATIONS_HH
