/**
 * @file
 * Campaign heartbeat implementation.
 */

#include "sim/heartbeat.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "sim/json.hh"

namespace dolos
{

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Two-decimal fixed format: rates and ETAs, not measurements. */
std::string
rate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

CampaignMonitor::CampaignMonitor(std::string campaign,
                                 std::uint64_t total,
                                 std::uint64_t every, std::FILE *sink)
    : campaign_(std::move(campaign)), total_(total), every_(every),
      sink_(sink), startNanos_(nowNanos())
{}

double
CampaignMonitor::elapsedSec() const
{
    return double(nowNanos() - startNanos_) * 1e-9;
}

std::string
CampaignMonitor::record(const char *type, bool withEta,
                        bool withSeed) const
{
    const double elapsed = elapsedSec();
    const double perSec = elapsed > 0 ? double(done_) / elapsed : 0;
    std::ostringstream os;
    os << "{\"type\":\"" << type << "\",\"campaign\":\""
       << json::escape(campaign_) << "\",\"done\":" << done_
       << ",\"total\":" << total_ << ",\"failures\":" << failures_
       << ",\"casesPerSec\":" << rate(perSec)
       << ",\"elapsedSec\":" << rate(elapsed);
    if (withEta && total_ > done_ && perSec > 0)
        os << ",\"etaSec\":" << rate(double(total_ - done_) / perSec);
    if (withSeed)
        os << ",\"seed\":" << lastSeed_;
    if (!withEta && !withSeed) {
        os << ",\"failedSeeds\":[";
        for (std::size_t i = 0; i < failedSeeds_.size(); ++i)
            os << (i ? "," : "") << failedSeeds_[i];
        os << "]";
    }
    os << "}";
    return os.str();
}

void
CampaignMonitor::emitHeartbeat()
{
    if (!sink_)
        return;
    const std::string line = record("heartbeat", true, true);
    std::fputs(line.c_str(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
}

void
CampaignMonitor::caseDone(std::uint64_t seed, bool failed)
{
    const std::lock_guard<std::mutex> g(mu_);
    ++done_;
    lastSeed_ = seed;
    if (failed) {
        ++failures_;
        // Keep the lowest failing seeds, not the first to finish:
        // parallel workers complete out of order, and the summary
        // must not depend on scheduling.
        const auto pos = std::lower_bound(failedSeeds_.begin(),
                                          failedSeeds_.end(), seed);
        failedSeeds_.insert(pos, seed);
        if (failedSeeds_.size() > maxFailedSeeds)
            failedSeeds_.pop_back();
    }
    if (every_ && ++sinceBeat_ >= every_) {
        sinceBeat_ = 0;
        emitHeartbeat();
    }
}

void
CampaignMonitor::recordBatch(std::uint64_t done, std::uint64_t failed)
{
    const std::lock_guard<std::mutex> g(mu_);
    done_ += done;
    failures_ += failed;
}

void
CampaignMonitor::finish()
{
    const std::lock_guard<std::mutex> g(mu_);
    if (!sink_)
        return;
    const std::string line = record("summary", false, false);
    std::fputs(line.c_str(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
}

bool
CampaignMonitor::writeSummary(const std::string &path) const
{
    const std::lock_guard<std::mutex> g(mu_);
    std::ofstream out(path);
    if (!out)
        return false;
    out << record("summary", false, false) << "\n";
    return bool(out);
}

} // namespace dolos
