/**
 * @file
 * Host-side self-profiler implementation.
 */

#include "sim/profiler.hh"

#include <chrono>
#include <cstdio>
#include <iomanip>

#include "sim/json.hh"

namespace dolos::prof
{

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Fixed-format seconds with enough digits for a profile table. */
std::string
secStr(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", s);
    return buf;
}

} // namespace

const char *
compName(Comp c)
{
    switch (c) {
      case Comp::EventKernel: return "eventKernel";
      case Comp::Core: return "core";
      case Comp::CacheModel: return "cacheModel";
      case Comp::Controller: return "controller";
      case Comp::SecurityEngine: return "securityEngine";
      case Comp::Aes: return "aes";
      case Comp::Mac: return "mac";
      case Comp::Sha: return "sha";
      case Comp::CtrPad: return "ctrPad";
      case Comp::Nvm: return "nvm";
      case Comp::Verify: return "verify";
      case Comp::NumComps: break;
    }
    return "?";
}

Profiler &
Profiler::instance()
{
    // Per-thread accumulation: parallel sweep workers profile their
    // own System without contending; reports are per-thread too.
    static thread_local Profiler p;
    return p;
}

void
Profiler::enable()
{
    reset();
    lastStamp_ = nowNanos();
    active_ = true;
}

void
Profiler::disable()
{
    // Close out the span of whatever scope is open so time up to the
    // disable() call is attributed; the scopes themselves unwind as
    // no-ops once inactive (their pop() re-stamps harmlessly).
    if (active_ && depth_ > 0 && depth_ <= maxDepth) {
        const std::uint64_t now = nowNanos();
        nanos_[index(stack_[depth_ - 1])] += now - lastStamp_;
        lastStamp_ = now;
    }
    active_ = false;
}

void
Profiler::reset()
{
    nanos_.fill(0);
    calls_.fill(0);
    depth_ = 0;
    lastStamp_ = 0;
    active_ = false;
}

void
Profiler::push(Comp c)
{
    const std::uint64_t now = nowNanos();
    if (depth_ > 0 && depth_ <= maxDepth)
        nanos_[index(stack_[depth_ - 1])] += now - lastStamp_;
    if (depth_ < maxDepth)
        stack_[depth_] = c;
    ++depth_;
    ++calls_[index(c)];
    lastStamp_ = now;
}

void
Profiler::pop()
{
    if (depth_ == 0)
        return;
    const std::uint64_t now = nowNanos();
    if (depth_ <= maxDepth)
        nanos_[index(stack_[depth_ - 1])] += now - lastStamp_;
    --depth_;
    lastStamp_ = now;
}

std::uint64_t
Profiler::attributedNanos() const
{
    std::uint64_t total = 0;
    for (const auto n : nanos_)
        total += n;
    return total;
}

void
Profiler::report(std::ostream &os) const
{
    const double total = double(attributedNanos());
    os << "Self-profile (exclusive host time):\n";
    for (std::size_t i = 0; i < numComps; ++i) {
        if (!calls_[i])
            continue;
        const double sec = double(nanos_[i]) * 1e-9;
        const double share = total > 0 ? double(nanos_[i]) / total : 0;
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%5.1f", share * 100);
        os << "  " << std::left << std::setw(16)
           << compName(static_cast<Comp>(i)) << std::right
           << std::setw(12) << secStr(sec) << " s  " << pct << "%  "
           << calls_[i] << " calls\n";
    }
}

void
Profiler::reportJson(std::ostream &os) const
{
    const double total = double(attributedNanos());
    os << "{\"selfprof\":{\"attributedSec\":"
       << secStr(total * 1e-9) << ",\"components\":{";
    bool first = true;
    for (std::size_t i = 0; i < numComps; ++i) {
        if (!calls_[i])
            continue;
        os << (first ? "" : ",") << "\""
           << json::escape(compName(static_cast<Comp>(i)))
           << "\":{\"seconds\":" << secStr(double(nanos_[i]) * 1e-9)
           << ",\"share\":"
           << secStr(total > 0 ? double(nanos_[i]) / total : 0)
           << ",\"calls\":" << calls_[i] << "}";
        first = false;
    }
    os << "}}}\n";
}

} // namespace dolos::prof
