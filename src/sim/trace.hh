/**
 * @file
 * Low-overhead event tracer for the persist critical path.
 *
 * Components record the lifecycle of every write — CLWB issue, WPQ
 * insertion/stall, Mi-SU pad XOR and MAC, Ma-SU counter fetch, AES,
 * data MAC, BMT climb, and NVM bank commits — as (stage, start, end,
 * addr, id) records in a fixed-capacity ring buffer. Recording never
 * touches simulated time, so enabling the tracer changes no measured
 * metric; when the ring fills, the oldest events are overwritten and
 * counted as dropped.
 *
 * dump() emits the buffer as a Chrome trace_event JSON array (load it
 * at chrome://tracing or https://ui.perfetto.dev). One simulated tick
 * is rendered as one microsecond so the viewer's time axis reads
 * directly in cycles.
 *
 * Instrumentation sites use the DOLOS_TRACE macro, which compiles to
 * nothing when the build disables tracing (-DDOLOS_TRACING=0, CMake
 * option DOLOS_TRACING=OFF) and to a single predicted-not-taken
 * branch when tracing is compiled in but not enabled at run time.
 */

#ifndef DOLOS_SIM_TRACE_HH
#define DOLOS_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/types.hh"

#ifndef DOLOS_TRACING
#define DOLOS_TRACING 1
#endif

namespace dolos::trace
{

/** Pipeline stage a trace event belongs to (one viewer lane each). */
enum class Stage : std::uint8_t
{
    CoreClwb,     ///< CLWB issue -> persistence-domain entry
    CoreFence,    ///< SFENCE stall window
    WpqStall,     ///< insertion blocked on a full WPQ
    WpqInsert,    ///< controller arrival -> WPQ commit
    WpqCoalesce,  ///< write merged into a live entry
    WpqDrain,     ///< WPQ commit -> Ma-SU clear
    WpqBatch,     ///< drain elided: newer same-line entry supersedes
    MisuPadXor,   ///< Mi-SU pad XOR (1 cycle)
    MisuMac,      ///< Mi-SU entry/root MAC(s)
    MasuCtrFetch, ///< counter fetch (cache miss => NVM + tree walk)
    MasuAes,      ///< Ma-SU pad generation (AES)
    MasuMac,      ///< Ma-SU data MAC
    MasuBmt,      ///< integrity-tree (BMT) climb
    NvmRead,      ///< NVM bank read (queueing + service)
    NvmWrite,     ///< NVM bank write (queueing + service)
    NumStages
};

/** Viewer name of a stage ("wpqInsert", "masuBmt", ...). */
const char *stageName(Stage s);

/** Viewer category of a stage ("core", "wpq", "misu", "masu", "nvm"). */
const char *stageCategory(Stage s);

/** Viewer lane (Chrome tid) a stage renders in. */
unsigned stageLane(Stage s);

/** One recorded event. */
struct Event
{
    Tick start = 0;
    Tick end = 0;
    Addr addr = 0;
    std::uint64_t id = 0;
    Stage stage = Stage::CoreClwb;
};

/**
 * The process-wide ring-buffered tracer.
 */
class Tracer
{
  public:
    /** The global instance every instrumentation site records into. */
    static Tracer &instance();

    /** Start recording; the ring holds @p capacity events. */
    void enable(std::size_t capacity = defaultCapacity);

    /** Stop recording (the buffer is kept until clear()). */
    void disable() { active_ = false; }

    /** Recording enabled? (The DOLOS_TRACE fast-path check.) */
    bool active() const { return active_; }

    /** Record one event (call through DOLOS_TRACE, not directly). */
    void
    record(Stage stage, Tick start, Tick end, Addr addr = 0,
           std::uint64_t id = 0)
    {
        if (ring.empty())
            return;
        ring[head] = {start, end, addr, id, stage};
        head = (head + 1) % ring.size();
        if (count < ring.size())
            ++count;
        else
            ++dropped_;
    }

    /** Events currently buffered. */
    std::size_t size() const { return count; }

    /** Events overwritten after the ring filled. */
    std::uint64_t dropped() const { return dropped_; }

    /** Drop all buffered events (recording state is unchanged). */
    void clear();

    /**
     * Emit the buffered events, oldest first, as a Chrome
     * trace_event JSON array of complete ("ph":"X") events preceded
     * by lane-naming metadata.
     */
    void dump(std::ostream &os) const;

    /** Visit buffered events oldest-first (tests, custom sinks). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t cap = ring.size();
        const std::size_t first = (head + cap - count) % (cap ? cap : 1);
        for (std::size_t i = 0; i < count; ++i)
            fn(ring[(first + i) % cap]);
    }

    static constexpr std::size_t defaultCapacity = 1u << 20;

  private:
    std::vector<Event> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t dropped_ = 0;
    bool active_ = false;
};

} // namespace dolos::trace

#if DOLOS_TRACING
#define DOLOS_TRACE(stage, start, end, addr, id)                       \
    do {                                                               \
        auto &dolos_tr_ = ::dolos::trace::Tracer::instance();          \
        if (dolos_tr_.active()) [[unlikely]]                           \
            dolos_tr_.record((stage), (start), (end), (addr), (id));   \
    } while (0)
#else
// Mention the arguments inside an unevaluated sizeof so locals that
// exist only to feed a trace site do not trip -Wunused-variable in a
// -DDOLOS_TRACING=OFF build, while still evaluating nothing (the
// zero-overhead invariant).
#define DOLOS_TRACE(stage, start, end, addr, id)                       \
    ((void)sizeof((stage), (start), (end), (addr), (id)), (void)0)
#endif

#endif // DOLOS_SIM_TRACE_HH
