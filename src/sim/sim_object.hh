/**
 * @file
 * Base class for named simulated components.
 */

#ifndef DOLOS_SIM_SIM_OBJECT_HH
#define DOLOS_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace dolos
{

/**
 * A named component bound to an event queue, owning a stat group.
 *
 * SimObjects are wired together at construction time by the system
 * builder; they are neither copyable nor movable, as other components
 * hold raw pointers to them.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : eventq(eq), _name(std::move(name)), _statGroup(_name)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick curTick() const { return eventq.curTick(); }
    stats::StatGroup &statGroup() { return _statGroup; }
    const stats::StatGroup &statGroup() const { return _statGroup; }

  protected:
    EventQueue &eventq;

  private:
    std::string _name;
    stats::StatGroup _statGroup;
};

} // namespace dolos

#endif // DOLOS_SIM_SIM_OBJECT_HH
