/**
 * @file
 * Campaign heartbeats: structured progress for long-running drivers.
 *
 * dolos_torture, dolos_fuzz and the crash-point sweep can run for
 * minutes to hours; until now they were silent until the final
 * verdict. A CampaignMonitor emits one NDJSON heartbeat record to its
 * sink (stderr by default, so stdout-parsing tests and pipelines are
 * unaffected) every N finished cases:
 *
 *   {"type":"heartbeat","campaign":"torture","done":40,"total":200,
 *    "failures":0,"casesPerSec":12.51,"etaSec":12.79,
 *    "elapsedSec":3.20,"seed":12345}
 *
 * and a final summary record (also NDJSON, same schema minus
 * eta/seed, plus the failing seeds, capped) from finish():
 *
 *   {"type":"summary","campaign":"torture","done":200,"total":200,
 *    "failures":1,"casesPerSec":12.48,"elapsedSec":16.03,
 *    "failedSeeds":[77]}
 *
 * writeSummary() additionally lands the summary record in a file so
 * CI can archive campaign outcomes without scraping logs. Timing uses
 * the host steady clock only — campaign pacing has no connection to
 * simulated time. See docs/observability.md.
 */

#ifndef DOLOS_SIM_HEARTBEAT_HH
#define DOLOS_SIM_HEARTBEAT_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace dolos
{

/**
 * Progress tracker + heartbeat emitter for one campaign.
 *
 * Thread-safe: parallel sweep workers (--jobs N) report finished
 * cases concurrently; an internal mutex serializes the counters and
 * the sink writes, and the summary's failedSeeds list is sorted so
 * worker completion order never leaks into the output.
 */
class CampaignMonitor
{
  public:
    /**
     * @param campaign Campaign name stamped into every record.
     * @param total Planned number of cases (0 = unknown; no ETA).
     * @param every Emit a heartbeat each @p every finished cases
     *              (0 disables heartbeats; summary still works).
     * @param sink Stream heartbeat/summary lines are written to.
     */
    CampaignMonitor(std::string campaign, std::uint64_t total,
                    std::uint64_t every, std::FILE *sink = stderr);

    /** Record one finished case; emits a heartbeat when due. */
    void caseDone(std::uint64_t seed, bool failed);

    /**
     * Record @p done cases (of which @p failed failed) finished by
     * some driver that tracks its own seeds — e.g. the sweep path,
     * which reports per-point batch outcomes. Never emits heartbeats
     * (the driver emits its own per-case records); feeds the summary.
     */
    void recordBatch(std::uint64_t done, std::uint64_t failed);

    /** Emit the summary record to the sink. */
    void finish();

    /** Write the summary record to @p path; false on I/O error. */
    bool writeSummary(const std::string &path) const;

    std::uint64_t
    done() const
    {
        const std::lock_guard<std::mutex> g(mu_);
        return done_;
    }

    std::uint64_t
    failures() const
    {
        const std::lock_guard<std::mutex> g(mu_);
        return failures_;
    }

    /** Failing seeds kept for the summary (lowest maxFailedSeeds). */
    static constexpr std::size_t maxFailedSeeds = 32;

  private:
    double elapsedSec() const;
    /** Caller holds mu_. */
    std::string record(const char *type, bool withEta,
                       bool withSeed) const;
    /** Caller holds mu_. */
    void emitHeartbeat();

    mutable std::mutex mu_;
    std::string campaign_;
    std::uint64_t total_;
    std::uint64_t every_;
    std::FILE *sink_;
    std::uint64_t startNanos_;
    std::uint64_t done_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t sinceBeat_ = 0;
    std::uint64_t lastSeed_ = 0;
    std::vector<std::uint64_t> failedSeeds_;
};

} // namespace dolos

#endif // DOLOS_SIM_HEARTBEAT_HH
