/**
 * @file
 * In-order core implementation.
 */

#include "cpu/core.hh"

#include "sim/profiler.hh"
#include "sim/stat_sampler.hh"
#include "sim/trace.hh"

namespace dolos
{

SimpleCore::SimpleCore(CacheHierarchy &h) : hierarchy(h), stats_("core")
{
    stats_.addScalar(&statInstructions, "instructions",
                     "instructions executed");
    stats_.addScalar(&statLoads, "loads", "load operations");
    stats_.addScalar(&statStores, "stores", "store operations");
    stats_.addScalar(&statClwbs, "clwbs", "CLWB operations");
    stats_.addScalar(&statFences, "fences", "SFENCE operations");
    stats_.addScalar(&statFenceStall, "fenceStallCycles",
                     "cycles stalled waiting for persists");
    stats_.addAverage(&statFenceWait, "fenceWait",
                      "stall cycles per fence");
}

void
SimpleCore::pollSampler()
{
    if (sampler_) [[unlikely]]
        sampler_->poll(clock);
}

void
SimpleCore::compute(Cycles n)
{
    clock += n;
    statInstructions += n;
    pollSampler();
}

void
SimpleCore::load(Addr addr, void *out, unsigned size)
{
    DOLOS_PROF_SCOPE(Core);
    ++statInstructions;
    ++statLoads;
    clock = hierarchy.load(addr, out, size, clock);
    if (observer)
        observer->onLoad(addr, out, size);
    pollSampler();
}

void
SimpleCore::store(Addr addr, const void *src, unsigned size)
{
    DOLOS_PROF_SCOPE(Core);
    ++statInstructions;
    ++statStores;
    // Tell the observer first: the store below can end in a microstep
    // power failure (a crash point inside an eviction-triggered
    // drain), and the golden model must already hold the new value as
    // in-flight-admissible when that crash is examined. Both the old
    // and the new value stay admissible until the next fence commit,
    // so observing early never weakens the oracle.
    if (observer)
        observer->onStore(addr, src, size);
    clock = hierarchy.store(addr, src, size, clock);
    pollSampler();
}

void
SimpleCore::clwb(Addr addr)
{
    DOLOS_PROF_SCOPE(Core);
    ++statInstructions;
    ++statClwbs;
    if (observer)
        observer->onClwb(addr);
    if (clwbDropIn) {
        if (*clwbDropIn == 0) {
            clwbDropIn.reset();
            return; // injected fault: the flush silently vanishes
        }
        --*clwbDropIn;
    }
    const Tick issued = clock;
    const PersistTicket t = hierarchy.clwb(addr, clock);
    clock = t.acceptTick;
    outstanding.push_back(t);
    // The write's whole life: CLWB issue -> persistence domain.
    DOLOS_TRACE(trace::Stage::CoreClwb, issued, t.persistTick, addr,
                statClwbs.value());
    pollSampler();
}

void
SimpleCore::sfence()
{
    DOLOS_PROF_SCOPE(Core);
    ++statInstructions;
    ++statFences;
    Tick latest = clock;
    for (const auto &t : outstanding)
        latest = std::max(latest, t.persistTick);
    outstanding.clear();
    const Tick stall = latest - clock;
    statFenceStall += stall;
    statFenceWait.sample(double(stall));
    if (stall > 0)
        DOLOS_TRACE(trace::Stage::CoreFence, clock, latest, 0,
                    statFences.value());
    clock = latest;
    if (observer)
        observer->onSfence();
    pollSampler();
}

void
SimpleCore::notifyCrash()
{
    outstanding.clear();
    if (observer)
        observer->onCrash();
}

persist::StateManifest
SimpleCore::stateManifest() const
{
    persist::StateManifest m("SimpleCore");
    DOLOS_MF_CONST(m, hierarchy);
    // The clock is the simulation's global monotonic time: power
    // loss does not rewind wall-clock time, so it survives.
    DOLOS_MF_P(m, clock);
    DOLOS_MF_V(m, outstanding);
    DOLOS_MF_CONST(m, observer);
    DOLOS_MF_CONST(m, sampler_);
    DOLOS_MF_P(m, clwbDropIn);
    DOLOS_MF_CONST(m, stats_);
    DOLOS_MF_P(m, statInstructions);
    DOLOS_MF_P(m, statLoads);
    DOLOS_MF_P(m, statStores);
    DOLOS_MF_P(m, statClwbs);
    DOLOS_MF_P(m, statFences);
    DOLOS_MF_P(m, statFenceStall);
    DOLOS_MF_P(m, statFenceWait);
    return m;
}

} // namespace dolos
