/**
 * @file
 * In-order timing core with persistent-memory primitives.
 *
 * The core executes workload operations synchronously, tracking its
 * own clock. Loads block; stores complete into L1 (write-allocate,
 * writeback); CLWB issues an asynchronous persist whose ticket is
 * tracked until the next SFENCE; SFENCE stalls until every
 * outstanding CLWB has reached the persistence domain — where the
 * persistence domain begins is decided by the memory controller mode,
 * which is precisely what the paper varies.
 */

#ifndef DOLOS_CPU_CORE_HH
#define DOLOS_CPU_CORE_HH

#include <vector>

#include "mem/hierarchy.hh"
#include "sim/stats.hh"

namespace dolos
{

/** In-order core bound to a hierarchy. */
class SimpleCore
{
  public:
    explicit SimpleCore(CacheHierarchy &hierarchy);

    /** Model @p n cycles of non-memory work (n instructions). */
    void compute(Cycles n);

    /** Blocking load of @p size bytes. */
    void load(Addr addr, void *out, unsigned size);

    /** Store of @p size bytes (completes into L1). */
    void store(Addr addr, const void *src, unsigned size);

    /** Issue CLWB for the block containing @p addr (asynchronous). */
    void clwb(Addr addr);

    /** Stall until all outstanding CLWBs are persisted. */
    void sfence();

    /** Current core clock. */
    Tick now() const { return clock; }

    /** Instructions executed (compute cycles + memory ops). */
    std::uint64_t instructions() const { return statInstructions.value(); }

    /** Cycles this core spent stalled on fences. */
    std::uint64_t
    fenceStallCycles() const
    {
        return statFenceStall.value();
    }

    std::uint64_t fences() const { return statFences.value(); }
    std::uint64_t clwbs() const { return statClwbs.value(); }

    /** Cycles per instruction so far. */
    double
    cpi() const
    {
        const auto insts = instructions();
        return insts ? double(clock) / double(insts) : 0.0;
    }

    stats::StatGroup &statGroup() { return stats_; }

  private:
    CacheHierarchy &hierarchy;
    Tick clock = 0;
    std::vector<PersistTicket> outstanding;

    stats::StatGroup stats_;
    stats::Scalar statInstructions;
    stats::Scalar statLoads;
    stats::Scalar statStores;
    stats::Scalar statClwbs;
    stats::Scalar statFences;
    stats::Scalar statFenceStall;
    stats::Average statFenceWait;
};

} // namespace dolos

#endif // DOLOS_CPU_CORE_HH
