/**
 * @file
 * In-order timing core with persistent-memory primitives.
 *
 * The core executes workload operations synchronously, tracking its
 * own clock. Loads block; stores complete into L1 (write-allocate,
 * writeback); CLWB issues an asynchronous persist whose ticket is
 * tracked until the next SFENCE; SFENCE stalls until every
 * outstanding CLWB has reached the persistence domain — where the
 * persistence domain begins is decided by the memory controller mode,
 * which is precisely what the paper varies.
 */

#ifndef DOLOS_CPU_CORE_HH
#define DOLOS_CPU_CORE_HH

#include <optional>
#include <vector>

#include "mem/hierarchy.hh"
#include "sim/persist_annotations.hh"
#include "sim/stats.hh"

namespace dolos
{

namespace stats { class StatSampler; }

/**
 * Passive observer of the core's architectural memory operations.
 *
 * Observers see every load (with the returned data), store, CLWB,
 * SFENCE and power failure in program order, which is exactly the
 * information an in-order reference machine needs (src/verify's
 * GoldenModel). Callbacks must not drive the core re-entrantly.
 */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    virtual void onLoad(Addr, const void *, unsigned) {}
    virtual void onStore(Addr, const void *, unsigned) {}
    virtual void onClwb(Addr) {}
    virtual void onSfence() {}
    virtual void onCrash() {}

    /**
     * The machine declared @p addr's block unrecoverably lost
     * (media quarantine, or an eADR holdup flush that ran out of
     * energy before covering it). The block reads as zero from now
     * on; a reference machine must stop expecting its old contents.
     */
    virtual void onBlockLost(Addr) {}
};

/** In-order core bound to a hierarchy. */
class SimpleCore
{
  public:
    explicit SimpleCore(CacheHierarchy &hierarchy);

    /** Attach (or detach, with nullptr) an operation observer. */
    void setObserver(CoreObserver *obs) { observer = obs; }

    /** The attached observer, if any (the runner notifies it of
     *  declared block loss after a crash+recovery). */
    CoreObserver *currentObserver() const { return observer; }

    /**
     * Attach (or detach, with nullptr) an interval stats sampler.
     * The core polls it after every clock advance; the sampler only
     * reads stat values, so attaching one changes no simulated
     * timing (System::attachStatSampler wires the whole machine).
     */
    void setStatSampler(stats::StatSampler *s) { sampler_ = s; }

    /**
     * Fault injection: silently drop the @p nth next CLWB (0 = the
     * very next one). The dropped flush is still reported to the
     * observer — the *program* issued it; losing its effect is the
     * fault — and still counts as an executed instruction.
     */
    void armClwbDrop(std::uint64_t nth) { clwbDropIn = nth; }

    /**
     * Power failure: outstanding persist tickets die with the core's
     * volatile state; the observer is told so reference machines can
     * fork their admissible-state sets.
     */
    void notifyCrash();

    /** Model @p n cycles of non-memory work (n instructions). */
    void compute(Cycles n);

    /** Blocking load of @p size bytes. */
    void load(Addr addr, void *out, unsigned size);

    /** Store of @p size bytes (completes into L1). */
    void store(Addr addr, const void *src, unsigned size);

    /** Issue CLWB for the block containing @p addr (asynchronous). */
    void clwb(Addr addr);

    /** Stall until all outstanding CLWBs are persisted. */
    void sfence();

    /** Current core clock. */
    Tick now() const { return clock; }

    /** Instructions executed (compute cycles + memory ops). */
    std::uint64_t instructions() const { return statInstructions.value(); }

    /** Cycles this core spent stalled on fences. */
    std::uint64_t
    fenceStallCycles() const
    {
        return statFenceStall.value();
    }

    std::uint64_t fences() const { return statFences.value(); }
    std::uint64_t clwbs() const { return statClwbs.value(); }

    /** Cycles per instruction so far. */
    double
    cpi() const
    {
        const auto insts = instructions();
        return insts ? double(clock) / double(insts) : 0.0;
    }

    stats::StatGroup &statGroup() { return stats_; }

    /** Register every member into the crash-state manifest. */
    persist::StateManifest stateManifest() const;

  private:
    /** Poll the attached sampler (out of line: keeps ops slim). */
    void pollSampler();

    CacheHierarchy &hierarchy;
    Tick clock = 0;
    std::vector<PersistTicket> outstanding;
    CoreObserver *observer = nullptr;
    stats::StatSampler *sampler_ = nullptr;
    std::optional<std::uint64_t> clwbDropIn; ///< armed CLWB drop

    stats::StatGroup stats_;
    stats::Scalar statInstructions;
    stats::Scalar statLoads;
    stats::Scalar statStores;
    stats::Scalar statClwbs;
    stats::Scalar statFences;
    stats::Scalar statFenceStall;
    stats::Average statFenceWait;

    // --- crash-state model (see docs/static_analysis.md) ----------
    DOLOS_STATE_CLASS(SimpleCore);
    DOLOS_PERSISTENT(hierarchy);
    DOLOS_PERSISTENT(clock);
    DOLOS_VOLATILE(outstanding);
    DOLOS_PERSISTENT(observer);
    DOLOS_PERSISTENT(sampler_);
    DOLOS_PERSISTENT(clwbDropIn);
    DOLOS_PERSISTENT(stats_);
    DOLOS_PERSISTENT(statInstructions);
    DOLOS_PERSISTENT(statLoads);
    DOLOS_PERSISTENT(statStores);
    DOLOS_PERSISTENT(statClwbs);
    DOLOS_PERSISTENT(statFences);
    DOLOS_PERSISTENT(statFenceStall);
    DOLOS_PERSISTENT(statFenceWait);
};

} // namespace dolos

#endif // DOLOS_CPU_CORE_HH
