/**
 * @file
 * MAC engine implementations.
 */

#include "crypto/mac_engine.hh"

#include <cstring>

#include "crypto/hmac.hh"
#include "crypto/siphash.hh"
#include "sim/profiler.hh"

namespace dolos::crypto
{

MacTag
MacEngine::computeParts(std::initializer_list<MacSegment> parts) const
{
    DOLOS_PROF_SCOPE(Mac);
    // Total sizes here are tiny (address + counter + one cacheline),
    // so a stack buffer normally suffices.
    std::size_t total = 0;
    for (const auto &[ptr, len] : parts)
        total += len;

    std::uint8_t buf[256];
    if (total <= sizeof(buf)) {
        std::size_t off = 0;
        for (const auto &[ptr, len] : parts) {
            std::memcpy(buf + off, ptr, len);
            off += len;
        }
        return compute(buf, total);
    }

    std::vector<std::uint8_t> big;
    big.reserve(total);
    for (const auto &[ptr, len] : parts) {
        const auto *p = static_cast<const std::uint8_t *>(ptr);
        big.insert(big.end(), p, p + len);
    }
    return compute(big.data(), big.size());
}

bool
MacEngine::verify(const void *data, std::size_t len,
                  const MacTag &tag) const
{
    const MacTag expected = compute(data, len);
    return constantTimeEqual(expected.data(), tag.data(), tag.size());
}

namespace
{

/** HMAC-SHA256 truncated to the leading 8 bytes. */
class HmacMacEngine : public MacEngine
{
  public:
    explicit HmacMacEngine(const std::array<std::uint8_t, 16> &key)
        : hmac(key.data(), key.size())
    {}

    MacTag
    compute(const void *data, std::size_t len) const override
    {
        DOLOS_PROF_SCOPE(Mac);
        const auto d = hmac.compute(data, len);
        MacTag t;
        std::memcpy(t.data(), d.data(), t.size());
        return t;
    }

  private:
    HmacSha256 hmac;
};

/** SipHash-2-4 engine. */
class SipMacEngine : public MacEngine
{
  public:
    explicit SipMacEngine(const std::array<std::uint8_t, 16> &key)
        : key(key)
    {}

    MacTag
    compute(const void *data, std::size_t len) const override
    {
        DOLOS_PROF_SCOPE(Mac);
        const std::uint64_t v = siphash24(key, data, len);
        MacTag t;
        for (int i = 0; i < 8; ++i)
            t[i] = std::uint8_t(v >> (8 * i));
        return t;
    }

  private:
    SipKey key;
};

} // namespace

std::unique_ptr<MacEngine>
makeMacEngine(MacKind kind, const std::array<std::uint8_t, 16> &key)
{
    switch (kind) {
      case MacKind::HmacSha256Truncated:
        return std::make_unique<HmacMacEngine>(key);
      case MacKind::SipHash24:
        return std::make_unique<SipMacEngine>(key);
    }
    return nullptr;
}

} // namespace dolos::crypto
