/**
 * @file
 * AES-128 implementation.
 */

#include "crypto/aes128.hh"

#include "sim/profiler.hh"
namespace dolos::crypto
{

namespace
{

/** Multiply in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1. */
std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    while (b) {
        if (b & 1)
            p ^= a;
        const bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1B;
        b >>= 1;
    }
    return p;
}

/** xtime: multiply by x (i.e., 2) in GF(2^8). */
std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0));
}

struct SboxTables
{
    std::array<std::uint8_t, 256> sbox{};
    std::array<std::uint8_t, 256> inv{};

    SboxTables()
    {
        // Multiplicative inverse via brute force (256x256 is trivial),
        // then the FIPS-197 affine transform.
        for (int x = 0; x < 256; ++x) {
            std::uint8_t xinv = 0;
            if (x != 0) {
                for (int y = 1; y < 256; ++y) {
                    if (gmul(std::uint8_t(x), std::uint8_t(y)) == 1) {
                        xinv = std::uint8_t(y);
                        break;
                    }
                }
            }
            std::uint8_t s = 0;
            for (int bit = 0; bit < 8; ++bit) {
                const int b = ((xinv >> bit) & 1) ^
                              ((xinv >> ((bit + 4) % 8)) & 1) ^
                              ((xinv >> ((bit + 5) % 8)) & 1) ^
                              ((xinv >> ((bit + 6) % 8)) & 1) ^
                              ((xinv >> ((bit + 7) % 8)) & 1) ^
                              ((0x63 >> bit) & 1);
                s |= std::uint8_t(b << bit);
            }
            sbox[x] = s;
        }
        for (int x = 0; x < 256; ++x)
            inv[sbox[x]] = std::uint8_t(x);
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

void
subBytes(std::uint8_t *st)
{
    const auto &t = tables().sbox;
    for (int i = 0; i < 16; ++i)
        st[i] = t[st[i]];
}

void
invSubBytes(std::uint8_t *st)
{
    const auto &t = tables().inv;
    for (int i = 0; i < 16; ++i)
        st[i] = t[st[i]];
}

// State layout: st[4*c + r] is row r, column c (column-major, as in
// the FIPS-197 byte ordering of the input block).

void
shiftRows(std::uint8_t *st)
{
    std::uint8_t tmp[16];
    std::memcpy(tmp, st, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            st[4 * c + r] = tmp[4 * ((c + r) % 4) + r];
}

void
invShiftRows(std::uint8_t *st)
{
    std::uint8_t tmp[16];
    std::memcpy(tmp, st, 16);
    for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            st[4 * ((c + r) % 4) + r] = tmp[4 * c + r];
}

void
mixColumns(std::uint8_t *st)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = st + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        col[0] = std::uint8_t(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = std::uint8_t(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = std::uint8_t(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = std::uint8_t((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
}

void
invMixColumns(std::uint8_t *st)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = st + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        col[0] = std::uint8_t(gmul(a0, 14) ^ gmul(a1, 11) ^
                              gmul(a2, 13) ^ gmul(a3, 9));
        col[1] = std::uint8_t(gmul(a0, 9) ^ gmul(a1, 14) ^
                              gmul(a2, 11) ^ gmul(a3, 13));
        col[2] = std::uint8_t(gmul(a0, 13) ^ gmul(a1, 9) ^
                              gmul(a2, 14) ^ gmul(a3, 11));
        col[3] = std::uint8_t(gmul(a0, 11) ^ gmul(a1, 13) ^
                              gmul(a2, 9) ^ gmul(a3, 14));
    }
}

void
addRoundKey(std::uint8_t *st, const std::uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        st[i] ^= rk[i];
}

} // namespace

Aes128::Aes128(const AesKey &key)
{
    const auto &sbox = tables().sbox;
    std::memcpy(roundKeys.data(), key.data(), 16);
    std::uint8_t rcon = 1;
    for (int i = 16; i < 16 * (numRounds + 1); i += 4) {
        std::uint8_t t[4];
        std::memcpy(t, roundKeys.data() + i - 4, 4);
        if (i % 16 == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t t0 = t[0];
            t[0] = std::uint8_t(sbox[t[1]] ^ rcon);
            t[1] = sbox[t[2]];
            t[2] = sbox[t[3]];
            t[3] = sbox[t0];
            rcon = xtime(rcon);
        }
        for (int j = 0; j < 4; ++j)
            roundKeys[i + j] = roundKeys[i - 16 + j] ^ t[j];
    }
}

AesBlock
Aes128::encryptBlock(const AesBlock &plaintext) const
{
    DOLOS_PROF_SCOPE(Aes);
    AesBlock st = plaintext;
    addRoundKey(st.data(), roundKeys.data());
    for (int round = 1; round < numRounds; ++round) {
        subBytes(st.data());
        shiftRows(st.data());
        mixColumns(st.data());
        addRoundKey(st.data(), roundKeys.data() + 16 * round);
    }
    subBytes(st.data());
    shiftRows(st.data());
    addRoundKey(st.data(), roundKeys.data() + 16 * numRounds);
    return st;
}

AesBlock
Aes128::decryptBlock(const AesBlock &ciphertext) const
{
    DOLOS_PROF_SCOPE(Aes);
    AesBlock st = ciphertext;
    addRoundKey(st.data(), roundKeys.data() + 16 * numRounds);
    for (int round = numRounds - 1; round >= 1; --round) {
        invShiftRows(st.data());
        invSubBytes(st.data());
        addRoundKey(st.data(), roundKeys.data() + 16 * round);
        invMixColumns(st.data());
    }
    invShiftRows(st.data());
    invSubBytes(st.data());
    addRoundKey(st.data(), roundKeys.data());
    return st;
}

} // namespace dolos::crypto
