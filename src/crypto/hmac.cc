/**
 * @file
 * HMAC-SHA256 implementation.
 */

#include "crypto/hmac.hh"

#include <cstring>

namespace dolos::crypto
{

HmacSha256::HmacSha256(const void *key, std::size_t key_len)
{
    std::array<std::uint8_t, 64> k{};
    if (key_len > 64) {
        const auto d = Sha256::digest(key, key_len);
        std::memcpy(k.data(), d.data(), d.size());
    } else {
        std::memcpy(k.data(), key, key_len);
    }
    for (int i = 0; i < 64; ++i) {
        ipad[i] = std::uint8_t(k[i] ^ 0x36);
        opad[i] = std::uint8_t(k[i] ^ 0x5C);
    }
}

Sha256Digest
HmacSha256::compute(const void *data, std::size_t len) const
{
    Sha256 inner;
    inner.update(ipad.data(), ipad.size());
    inner.update(data, len);
    const auto inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(opad.data(), opad.size());
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finalize();
}

bool
constantTimeEqual(const void *a, const void *b, std::size_t len)
{
    const auto *pa = static_cast<const std::uint8_t *>(a);
    const auto *pb = static_cast<const std::uint8_t *>(b);
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < len; ++i)
        acc |= std::uint8_t(pa[i] ^ pb[i]);
    return acc == 0;
}

} // namespace dolos::crypto
