/**
 * @file
 * Pluggable MAC engine used by both security units.
 *
 * The paper's secure units compute 8-byte MACs over (ciphertext,
 * counter, address) tuples. The engine is pluggable: HMAC-SHA256
 * truncated to 64 bits is the default; SipHash-2-4 offers the same
 * functional tamper-detection behaviour at much lower host cost for
 * large sweeps. Simulated MAC latency (Table 1: 160 cycles) is a
 * property of the timing model, not the engine.
 */

#ifndef DOLOS_CRYPTO_MAC_ENGINE_HH
#define DOLOS_CRYPTO_MAC_ENGINE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

namespace dolos::crypto
{

/** 64-bit MAC tag (the paper's 8-byte MAC). */
using MacTag = std::array<std::uint8_t, 8>;

/** One segment of a multi-part MAC input. */
using MacSegment = std::pair<const void *, std::size_t>;

/**
 * Abstract keyed-MAC engine.
 */
class MacEngine
{
  public:
    virtual ~MacEngine() = default;

    /** Compute a tag over a single contiguous buffer. */
    virtual MacTag compute(const void *data, std::size_t len) const = 0;

    /**
     * Compute a tag over the concatenation of several segments
     * (address, counter, ciphertext, ...), without the caller having
     * to materialize the concatenation.
     */
    MacTag computeParts(std::initializer_list<MacSegment> parts) const;

    /** Constant-time verification of @p tag over @p data. */
    bool verify(const void *data, std::size_t len,
                const MacTag &tag) const;
};

/** Which concrete MAC engine to instantiate. */
enum class MacKind
{
    HmacSha256Truncated, ///< default: strongest
    SipHash24,           ///< fast: still a real keyed PRF
};

/**
 * Create a MAC engine with the given key material.
 *
 * @param kind Engine selection.
 * @param key Key bytes (16 bytes are used; longer keys are hashed
 *            down by the HMAC engine per RFC 2104).
 */
std::unique_ptr<MacEngine> makeMacEngine(
    MacKind kind, const std::array<std::uint8_t, 16> &key);

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_MAC_ENGINE_HH
