/**
 * @file
 * HMAC-SHA256 (RFC 2104), from scratch.
 */

#ifndef DOLOS_CRYPTO_HMAC_HH
#define DOLOS_CRYPTO_HMAC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha256.hh"

namespace dolos::crypto
{

/**
 * HMAC-SHA256 with a fixed key.
 */
class HmacSha256
{
  public:
    /** @param key Arbitrary-length key. */
    HmacSha256(const void *key, std::size_t key_len);

    /** Compute the full 32-byte tag over @p len bytes of @p data. */
    Sha256Digest compute(const void *data, std::size_t len) const;

  private:
    std::array<std::uint8_t, 64> ipad{};
    std::array<std::uint8_t, 64> opad{};
};

/**
 * Constant-time comparison of two equal-length byte strings.
 *
 * @return true if equal.
 */
bool constantTimeEqual(const void *a, const void *b, std::size_t len);

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_HMAC_HH
