/**
 * @file
 * SipHash-2-4 (Aumasson & Bernstein), from scratch.
 *
 * Used by the FastMac engine for large parameter sweeps where the
 * full HMAC-SHA256 engine would dominate host run time. SipHash is a
 * real keyed PRF, so tamper detection remains genuine; only the
 * cryptographic strength margin differs. Simulated latency is
 * identical (it is configured, not measured).
 */

#ifndef DOLOS_CRYPTO_SIPHASH_HH
#define DOLOS_CRYPTO_SIPHASH_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace dolos::crypto
{

/** 128-bit SipHash key. */
using SipKey = std::array<std::uint8_t, 16>;

/**
 * Compute SipHash-2-4 over @p len bytes with key @p key.
 *
 * @return 64-bit tag.
 */
std::uint64_t siphash24(const SipKey &key, const void *data,
                        std::size_t len);

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_SIPHASH_HH
