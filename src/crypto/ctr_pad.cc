/**
 * @file
 * Counter-mode pad generation implementation.
 */

#include "crypto/ctr_pad.hh"

#include <cstring>

#include "sim/profiler.hh"
namespace dolos::crypto
{

std::vector<std::uint8_t>
CtrPadGenerator::generate(const IvFields &iv, std::size_t len) const
{
    DOLOS_PROF_SCOPE(CtrPad);
    std::vector<std::uint8_t> pad;
    pad.reserve((len + 15) & ~std::size_t(15));

    const std::size_t nblocks = (len + 15) / 16;
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
        AesBlock in{};
        // Figure 2 layout, packed collision-free into 16 bytes:
        // 6B page id | 2B page offset | 6B counter | 2B sub-block.
        // 2^48 pages covers 2^60 bytes of physical space; 2^48
        // counter values exceed any simulated write count.
        for (int i = 0; i < 6; ++i)
            in[i] = std::uint8_t(iv.pageId >> (8 * i));
        in[6] = std::uint8_t(iv.pageOffset);
        in[7] = std::uint8_t(iv.pageOffset >> 8);
        for (int i = 0; i < 6; ++i)
            in[8 + i] = std::uint8_t(iv.counter >> (8 * i));
        in[14] = std::uint8_t(blk);
        in[15] = std::uint8_t(blk >> 8);

        const AesBlock out = aes.encryptBlock(in);
        pad.insert(pad.end(), out.begin(), out.end());
    }
    pad.resize(len);
    return pad;
}

void
xorInto(std::uint8_t *data, const std::uint8_t *pad, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        data[i] ^= pad[i];
}

} // namespace dolos::crypto
