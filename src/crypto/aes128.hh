/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch.
 *
 * The S-box is derived at first use from the GF(2^8) multiplicative
 * inverse plus the affine transform rather than transcribed, so a
 * transcription typo cannot silently weaken it; correctness is pinned
 * by the FIPS-197 known-answer vectors in the test suite.
 *
 * This is a functional model: simulated latency (Table 1: 40 cycles)
 * is accounted separately by the timing model.
 */

#ifndef DOLOS_CRYPTO_AES128_HH
#define DOLOS_CRYPTO_AES128_HH

#include <array>
#include <cstdint>
#include <cstring>

namespace dolos::crypto
{

/** 128-bit AES key. */
using AesKey = std::array<std::uint8_t, 16>;

/** 128-bit AES block. */
using AesBlock = std::array<std::uint8_t, 16>;

/**
 * AES-128 with a pre-expanded key schedule.
 */
class Aes128
{
  public:
    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block (ECB primitive). */
    AesBlock encryptBlock(const AesBlock &plaintext) const;

    /** Decrypt one 16-byte block. */
    AesBlock decryptBlock(const AesBlock &ciphertext) const;

  private:
    static constexpr int numRounds = 10;

    /** Round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, 16 * (numRounds + 1)> roundKeys{};
};

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_AES128_HH
