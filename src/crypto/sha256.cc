/**
 * @file
 * SHA-256 implementation.
 */

#include "crypto/sha256.hh"

#include <cstring>

#include "sim/profiler.hh"
namespace dolos::crypto
{

namespace
{

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

/** Integer floor square root of a 128-bit value (binary search). */
u64
isqrt128(u128 v)
{
    // Inputs are p * 2^64 with p < 2^16, so the root is < 2^40;
    // bounding hi keeps (hi - lo + 1) from overflowing.
    u64 lo = 0, hi = 1ULL << 40;
    while (lo < hi) {
        const u64 mid = lo + (hi - lo + 1) / 2;
        if (u128(mid) * mid <= v)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

/** Integer floor cube root of a 128-bit value (binary search). */
u64
icbrt128(u128 v)
{
    u64 lo = 0, hi = 0x3FFFFFFFFFFULL; // cbrt(2^128) < 2^43
    while (lo < hi) {
        const u64 mid = lo + (hi - lo + 1) / 2;
        if (u128(mid) * mid * mid <= v)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

struct Constants
{
    std::array<u32, 8> h0{};
    std::array<u32, 64> k{};

    Constants()
    {
        // First 64 primes.
        int primes[64];
        int count = 0;
        for (int n = 2; count < 64; ++n) {
            bool prime = true;
            for (int d = 2; d * d <= n; ++d) {
                if (n % d == 0) {
                    prime = false;
                    break;
                }
            }
            if (prime)
                primes[count++] = n;
        }
        // H0[i] = frac(sqrt(p_i)) * 2^32 = floor(sqrt(p * 2^64)) mod 2^32.
        for (int i = 0; i < 8; ++i)
            h0[i] = u32(isqrt128(u128(primes[i]) << 64));
        // K[i] = frac(cbrt(p_i)) * 2^32 = floor(cbrt(p * 2^96)) mod 2^32.
        for (int i = 0; i < 64; ++i)
            k[i] = u32(icbrt128(u128(primes[i]) << 96));
    }
};

const Constants &
consts()
{
    static const Constants c;
    return c;
}

u32
rotr(u32 x, int n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

void
Sha256::reset()
{
    state = consts().h0;
    bitLength = 0;
    bufferLen = 0;
}

void
Sha256::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    bitLength += u64(len) * 8;
    while (len > 0) {
        const std::size_t take = std::min(len, buffer.size() - bufferLen);
        std::memcpy(buffer.data() + bufferLen, p, take);
        bufferLen += take;
        p += take;
        len -= take;
        if (bufferLen == buffer.size()) {
            processBlock(buffer.data());
            bufferLen = 0;
        }
    }
}

Sha256Digest
Sha256::finalize()
{
    const u64 total_bits = bitLength;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = std::uint8_t(total_bits >> (56 - 8 * i));
    // update() would double-count the length bytes in bitLength, but
    // we've already captured total_bits, so that is harmless.
    update(len_be, 8);

    Sha256Digest out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i + 0] = std::uint8_t(state[i] >> 24);
        out[4 * i + 1] = std::uint8_t(state[i] >> 16);
        out[4 * i + 2] = std::uint8_t(state[i] >> 8);
        out[4 * i + 3] = std::uint8_t(state[i]);
    }
    return out;
}

void
Sha256::processBlock(const std::uint8_t *block)
{
    DOLOS_PROF_SCOPE(Sha);
    const auto &K = consts().k;
    u32 w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (u32(block[4 * i]) << 24) | (u32(block[4 * i + 1]) << 16) |
               (u32(block[4 * i + 2]) << 8) | u32(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                       (w[i - 15] >> 3);
        const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                       (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    u32 a = state[0], b = state[1], c = state[2], d = state[3];
    u32 e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        const u32 S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const u32 ch = (e & f) ^ (~e & g);
        const u32 temp1 = h + S1 + ch + K[i] + w[i];
        const u32 S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const u32 maj = (a & b) ^ (a & c) ^ (b & c);
        const u32 temp2 = S0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

std::string
Sha256::toHex(const Sha256Digest &d)
{
    static const char *hex = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (auto b : d) {
        s.push_back(hex[b >> 4]);
        s.push_back(hex[b & 0xF]);
    }
    return s;
}

} // namespace dolos::crypto
