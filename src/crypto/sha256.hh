/**
 * @file
 * SHA-256 (FIPS-180-4), implemented from scratch.
 *
 * The round constants and initial hash values are derived exactly via
 * 128-bit integer square/cube roots of the first primes instead of
 * being transcribed, and the whole construction is pinned by the
 * standard known-answer vectors in the test suite.
 */

#ifndef DOLOS_CRYPTO_SHA256_HH
#define DOLOS_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dolos::crypto
{

/** 256-bit digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/**
 * Incremental SHA-256 hasher.
 */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Reset to the initial state. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Finalize and return the digest; the hasher must be reset after. */
    Sha256Digest finalize();

    /** One-shot convenience. */
    static Sha256Digest
    digest(const void *data, std::size_t len)
    {
        Sha256 h;
        h.update(data, len);
        return h.finalize();
    }

    /** Render a digest as lowercase hex. */
    static std::string toHex(const Sha256Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state{};
    std::uint64_t bitLength = 0;
    std::array<std::uint8_t, 64> buffer{};
    std::size_t bufferLen = 0;
};

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_SHA256_HH
