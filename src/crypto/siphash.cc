/**
 * @file
 * SipHash-2-4 implementation.
 */

#include "crypto/siphash.hh"

#include <cstring>

namespace dolos::crypto
{

namespace
{

using u64 = std::uint64_t;

u64
rotl(u64 x, int b)
{
    return (x << b) | (x >> (64 - b));
}

u64
loadLe64(const std::uint8_t *p)
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
sipround(u64 &v0, u64 &v1, u64 &v2, u64 &v3)
{
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
}

} // namespace

std::uint64_t
siphash24(const SipKey &key, const void *data, std::size_t len)
{
    const u64 k0 = loadLe64(key.data());
    const u64 k1 = loadLe64(key.data() + 8);

    u64 v0 = k0 ^ 0x736f6d6570736575ULL;
    u64 v1 = k1 ^ 0x646f72616e646f6dULL;
    u64 v2 = k0 ^ 0x6c7967656e657261ULL;
    u64 v3 = k1 ^ 0x7465646279746573ULL;

    const auto *p = static_cast<const std::uint8_t *>(data);
    const std::size_t full = len & ~std::size_t(7);
    for (std::size_t i = 0; i < full; i += 8) {
        const u64 m = loadLe64(p + i);
        v3 ^= m;
        sipround(v0, v1, v2, v3);
        sipround(v0, v1, v2, v3);
        v0 ^= m;
    }

    u64 last = u64(len & 0xFF) << 56;
    for (std::size_t i = full; i < len; ++i)
        last |= u64(p[i]) << (8 * (i - full));
    v3 ^= last;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= last;

    v2 ^= 0xFF;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    return v0 ^ v1 ^ v2 ^ v3;
}

} // namespace dolos::crypto
