/**
 * @file
 * Counter-mode (AES-CTR) encryption-pad generation.
 *
 * Implements the paper's Figure 2 initialization vector:
 * | Page ID | Page Offset | Counter | Padding |. A pad of arbitrary
 * length is produced by encrypting successive IVs whose padding field
 * carries the 16-byte sub-block index, then XOR'ing the pad with
 * plaintext/ciphertext. Pads for the WPQ's Mi-SU are pre-generated at
 * boot from the persistent counter register; pads for the Ma-SU use
 * the per-block split counters.
 */

#ifndef DOLOS_CRYPTO_CTR_PAD_HH
#define DOLOS_CRYPTO_CTR_PAD_HH

#include <cstdint>
#include <vector>

#include "crypto/aes128.hh"

namespace dolos::crypto
{

/**
 * Fields of a counter-mode IV (paper Figure 2).
 */
struct IvFields
{
    std::uint64_t pageId = 0;     ///< 4KB page number of the block
    std::uint32_t pageOffset = 0; ///< block index within the page
    std::uint64_t counter = 0;    ///< per-block encryption counter
};

/**
 * Counter-mode pad generator bound to one AES key.
 */
class CtrPadGenerator
{
  public:
    explicit CtrPadGenerator(const AesKey &key) : aes(key) {}

    /**
     * Generate @p len bytes of pad from the IV fields.
     *
     * Successive 16-byte sub-blocks use the block index in the IV's
     * padding field, so any length up to 2^32 * 16 bytes is spatially
     * unique.
     */
    std::vector<std::uint8_t> generate(const IvFields &iv,
                                       std::size_t len) const;

  private:
    Aes128 aes;
};

/** XOR @p len bytes of @p pad into @p data in place. */
void xorInto(std::uint8_t *data, const std::uint8_t *pad,
             std::size_t len);

} // namespace dolos::crypto

#endif // DOLOS_CRYPTO_CTR_PAD_HH
