/**
 * @file
 * Vacation-style travel reservation system (WHISPER extension
 * workload, after STAMP's vacation).
 *
 * Three resource tables (cars, flights, rooms) plus a reservation
 * log. A transaction books one resource for one customer: it reads
 * several candidate resources, decrements the chosen resource's
 * availability, and appends a reservation record — small multi-table
 * field updates plus one payload append, a profile unlike the
 * single-structure paper workloads.
 *
 * Not part of the paper's evaluation set; provided as a suite
 * extension (use via makeWorkload("vacation", ...) or dolos-sim).
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

/** Resource record: { available(8) booked(8) price(8) }. */
constexpr unsigned resourceBytes = 24;
constexpr unsigned numTables = 3;

class VacationWorkload : public Workload
{
  public:
    explicit VacationWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 23 + 13);
    }

    const char *name() const override { return "vacation"; }

    void
    setup(PmemEnv &env) override
    {
        perTable = std::max<std::uint64_t>(16, params.numKeys / 4);
        for (unsigned t = 0; t < numTables; ++t) {
            tableAddr[t] =
                env.alloc(unsigned(perTable * resourceBytes), 64);
            for (std::uint64_t r = 0; r < perTable; ++r) {
                const Addr rec = tableAddr[t] + r * resourceBytes;
                env.write<std::uint64_t>(rec, initialCapacity);
                env.write<std::uint64_t>(rec + 8, 0);
                env.write<std::uint64_t>(rec + 16, 100 + r);
            }
            env.flush(tableAddr[t],
                      unsigned(perTable * resourceBytes));
        }
        const unsigned rec_bytes = 32 + params.txSize;
        logAddr = env.alloc(unsigned(rec_bytes * 200000 / 4), 64);
        logTailAddr = env.alloc(8, 8);
        env.write<Addr>(logTailAddr, logAddr);
        env.flush(logTailAddr, 8);
        env.fence();
        env.setRootPtr(0, tableAddr[0]);
        env.setRootPtr(1, tableAddr[1]);
        env.setRootPtr(2, tableAddr[2]);
        env.setRootPtr(3, logTailAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        // Browse: read a few candidate resources across the tables.
        for (unsigned r = 0; r < 2 + params.readsPerTx; ++r) {
            const unsigned t = unsigned(rng.below(numTables));
            const std::uint64_t res = rng.below(perTable);
            env.read<std::uint64_t>(tableAddr[t] +
                                    res * resourceBytes);
        }
        env.core().compute(params.thinkTime / 3);

        const unsigned table = unsigned(rng.below(numTables));
        const std::uint64_t res = rng.below(perTable);
        const std::uint64_t reservation = ++reservationSeq;
        pending = {true, table * perTable + res, reservation};

        const Addr rec = tableAddr[table] + res * resourceBytes;
        std::vector<std::uint8_t> itinerary(params.txSize);
        fillPayload(itinerary, reservation, table);

        TxContext tx(env);
        const auto avail = env.read<std::uint64_t>(rec);
        const auto booked = env.read<std::uint64_t>(rec + 8);
        if (avail > 0) {
            tx.write<std::uint64_t>(rec, avail - 1);
            tx.write<std::uint64_t>(rec + 8, booked + 1);

            Addr tail = env.read<Addr>(logTailAddr);
            tx.write<std::uint64_t>(tail, reservation);
            tx.write<std::uint64_t>(tail + 8, table);
            tx.write<std::uint64_t>(tail + 16, res);
            writePayloadChunked(env, tx, tail + 32, itinerary, 2,
                                params.thinkTime / 3);
            tx.write<Addr>(logTailAddr,
                           tail + 32 + params.txSize);
            tx.commit();
            ++bookings[table * perTable + res];
            committedReservations = reservation;
        } else {
            tx.commit(); // sold out: empty transaction
            committedReservations = reservation;
        }
        pending.active = false;

        env.core().compute(params.thinkTime / 3);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        for (unsigned t = 0; t < numTables; ++t)
            tableAddr[t] = env.rootPtr(t);
        logTailAddr = env.rootPtr(3);
        for (std::uint64_t slot = 0; slot < numTables * perTable;
             ++slot) {
            const unsigned t = unsigned(slot / perTable);
            const std::uint64_t r = slot % perTable;
            const Addr rec = tableAddr[t] + r * resourceBytes;
            const auto avail = env.read<std::uint64_t>(rec);
            const auto booked = env.read<std::uint64_t>(rec + 8);

            // Conservation: every slot always satisfies
            // available + booked == initialCapacity.
            if (avail + booked != initialCapacity) {
                if (why)
                    *why = "capacity conservation broken at slot " +
                           std::to_string(slot);
                return false;
            }

            std::uint64_t expect = 0;
            const auto it = bookings.find(slot);
            if (it != bookings.end())
                expect = it->second;
            const bool pending_here =
                pending.active && pending.key == slot;
            if (booked != expect &&
                !(pending_here && booked == expect + 1)) {
                if (why)
                    *why = "booked-count mismatch at slot " +
                           std::to_string(slot);
                return false;
            }
        }
        return true;
    }

  private:
    static constexpr std::uint64_t initialCapacity = 1'000'000;

    std::uint64_t perTable = 0;
    Addr tableAddr[numTables] = {};
    Addr logAddr = 0;
    Addr logTailAddr = 0;

    std::uint64_t reservationSeq = 0;
    std::uint64_t committedReservations = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> bookings;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeVacation(const WorkloadParams &params)
{
    return std::make_unique<VacationWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
