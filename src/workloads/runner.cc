/**
 * @file
 * Workload runner implementation.
 */

#include "workloads/runner.hh"

#include "sim/crash_points.hh"

namespace dolos::workloads
{

RunResult
runWorkload(System &sys, Workload &workload, std::uint64_t num_tx,
            std::optional<CrashPlan> crash, bool do_setup)
{
    RunResult res;
    res.workload = workload.name();
    res.mode = sys.config().mode;

    PmemEnv env(sys);
    if (do_setup)
        workload.setup(env);
    res.setupCycles = sys.core().now();

    const auto insts0 = sys.core().instructions();
    const auto retries0 = sys.controller().retryEvents();
    const auto writes0 = sys.controller().writeRequests();
    const auto stalls0 = sys.core().fenceStallCycles();
    const auto hits0 = sys.controller().wpqReadHits();
    const auto coalesce0 = sys.controller().coalesces();

    auto &reg = crashpoint::Registry::instance();
    if (crash) {
        if (crash->atMicrostep) {
            // Count firings from here (setup excluded), matching the
            // sweep driver's probe enumeration.
            reg.reset();
            reg.arm(*crash->atMicrostep);
        } else {
            const std::uint64_t ops0 = env.opCount();
            env.setOpHook([&env, ops0, at = crash->atOp] {
                if (env.opCount() - ops0 >= at)
                    throw CrashRequested{};
            });
        }
    }

    // Shared power-failure handling for both crash flavors; only the
    // dump semantics differ (a microstep crash interrupts an
    // in-flight drain instead of letting ADR finish it).
    const auto powerFail = [&](bool mid_operation) {
        res.crashed = true;
        env.setOpHook(nullptr);
        if (crash->atFlushMicrostep) {
            // Arm inside the crash path itself: firings count from
            // the moment power dies, the same origin the sweep's
            // probe run counts from. The eADR controller catches the
            // throw internally (the flush is the crash surface).
            reg.reset();
            reg.arm(*crash->atFlushMicrostep);
        } else {
            reg.disarm();
        }
        sys.crash(mid_operation);
        reg.disarm();
        if (crash->atPowerOff)
            crash->atPowerOff(sys);
        if (crash->recoveryCrashStep)
            sys.controller().armRecoveryCrash(
                *crash->recoveryCrashStep);
        sys.recoverToCompletion(&res.recoveryAttempts);
        // Declared loss is part of the architectural record: any
        // block the machine quarantined (media retirement, or an
        // eADR holdup flush that ran out of energy) reads as zero
        // from now on. Tell the observer so reference machines stop
        // expecting the lost contents — the loss stays loud through
        // the quarantine log and the exit-code contract, not through
        // oracle divergence.
        if (auto *obs = sys.core().currentObserver())
            for (const auto &[addr, rec] : sys.nvmDevice().quarantineLog())
                obs->onBlockLost(addr);
        env.reattach();
        TxContext::recover(env);
    };

    for (std::uint64_t i = 0; i < num_tx; ++i) {
        try {
            workload.transaction(env, i);
            ++res.transactions;
        } catch (const CrashRequested &) {
            powerFail(/*mid_operation=*/false);
            break;
        } catch (const crashpoint::MicrostepCrash &) {
            powerFail(/*mid_operation=*/true);
            break;
        }
    }
    // A crash op beyond the run's last operation never fires; disarm
    // the hook (and a never-fired microstep arm) so the verification
    // walk below cannot trip it.
    env.setOpHook(nullptr);
    reg.disarm();

    res.runCycles = sys.core().now() - res.setupCycles;
    res.instructions = sys.core().instructions() - insts0;
    res.cpi = res.instructions
                  ? double(res.runCycles) / double(res.instructions)
                  : 0.0;
    res.retryEvents = sys.controller().retryEvents() - retries0;
    res.writeRequests = sys.controller().writeRequests() - writes0;
    res.retriesPerKwr =
        res.writeRequests ? 1000.0 * double(res.retryEvents) /
                                double(res.writeRequests)
                          : 0.0;
    res.fenceStallCycles = sys.core().fenceStallCycles() - stalls0;
    res.wpqReadHits = sys.controller().wpqReadHits() - hits0;
    res.coalesces = sys.controller().coalesces() - coalesce0;

    res.verified = workload.verify(env, &res.verifyDiagnostic);
    return res;
}

} // namespace dolos::workloads
