/**
 * @file
 * Persistent chained hashmap (WHISPER "hashmap" analogue).
 *
 * Layout:
 *   header  : { numBuckets }
 *   buckets : numBuckets x 8B head pointers
 *   node    : { key(8) version(8) next(8) payload(txSize) }
 *
 * A transaction upserts one key: existing keys get their version and
 * payload rewritten transactionally; new keys are allocated, filled,
 * and linked at their bucket head.
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

class HashmapWorkload : public Workload
{
  public:
    explicit HashmapWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed);
    }

    const char *name() const override { return "hashmap"; }

    void
    setup(PmemEnv &env) override
    {
        numBuckets = std::max<std::uint64_t>(16, params.numKeys / 4);
        const Addr header = env.alloc(8 + numBuckets * 8, 8);
        env.write<std::uint64_t>(header, numBuckets);
        for (std::uint64_t b = 0; b < numBuckets; ++b)
            env.write<Addr>(header + 8 + b * 8, 0);
        env.flush(header, unsigned(8 + numBuckets * 8));
        env.fence();
        env.setRootPtr(0, header);
        headerAddr = header;
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        const std::uint64_t key = rng.below(params.numKeys);
        interleavedReads(env);

        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};

        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        const Addr bucket = bucketAddr(key);
        const Addr node = findNode(env, key);
        TxContext tx(env);
        if (node != 0) {
            tx.write<std::uint64_t>(node + 8, next_version);
            tx.write(node + 24, payload.data(), params.txSize);
        } else {
            const Addr n = tx.alloc(24 + params.txSize, 8);
            tx.write<std::uint64_t>(n, key);
            tx.write<std::uint64_t>(n + 8, next_version);
            tx.write<Addr>(n + 16, env.read<Addr>(bucket));
            tx.write(n + 24, payload.data(), params.txSize);
            tx.write<Addr>(bucket, n);
        }
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        headerAddr = env.rootPtr(0);
        numBuckets = env.read<std::uint64_t>(headerAddr);
        if (numBuckets == 0) {
            // The header block reads as zero — lost to a quarantined
            // media fault or a truncated eADR flush. The structure is
            // unverifiable (and bucketAddr's modulo undefined), which
            // is a loud failure, not a crash of the verifier.
            if (why)
                *why = "hashmap header lost (zero bucket count)";
            return false;
        }
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : expected) { // dolos-lint: allow(determinism)
            const Addr node = findNode(env, key);
            if (node == 0) {
                if (why)
                    *why = "committed key missing: " +
                           std::to_string(key);
                return false;
            }
            // A crash exactly at the commit point may leave the
            // in-flight version durable but unrecorded; both states
            // are crash-consistent.
            const bool ok =
                checkNode(env, node, key, version) ||
                (pending.active && pending.key == key &&
                 checkNode(env, node, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad node for key " + std::to_string(key);
                return false;
            }
        }
        // A pending (crash-interrupted) insert may exist; if it does,
        // it must be fully consistent at its own version.
        if (pending.active && !expected.count(pending.key)) {
            const Addr node = findNode(env, pending.key);
            if (node != 0 &&
                !checkNode(env, node, pending.key, pending.version)) {
                if (why)
                    *why = "torn in-flight insert";
                return false;
            }
        }
        return true;
    }

  private:
    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    Addr
    bucketAddr(std::uint64_t key) const
    {
        return headerAddr + 8 + (key % numBuckets) * 8;
    }

    Addr
    findNode(PmemEnv &env, std::uint64_t key)
    {
        Addr node = env.read<Addr>(bucketAddr(key));
        while (node != 0) {
            if (env.read<std::uint64_t>(node) == key)
                return node;
            node = env.read<Addr>(node + 16);
        }
        return 0;
    }

    bool
    checkNode(PmemEnv &env, Addr node, std::uint64_t key,
              std::uint64_t version)
    {
        if (env.read<std::uint64_t>(node + 8) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(node + 24, payload.data(), params.txSize);
        return checkPayload(payload, key, version);
    }

    void
    interleavedReads(PmemEnv &env)
    {
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            findNode(env, rng.below(params.numKeys));
    }

    Addr headerAddr = 0;
    std::uint64_t numBuckets = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeHashmap(const WorkloadParams &params)
{
    return std::make_unique<HashmapWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
