/**
 * @file
 * Simulator self-benchmark: how fast is the simulator itself?
 *
 * Runs a workload and measures the *host*: simulated instructions
 * per wall-clock second (the simulator's throughput) and, when the
 * self-profiler is compiled in, the per-component host-time shares
 * (prof::Profiler). This is the profile the ROADMAP requires before
 * tuning simulator performance, exposed as `dolos-sim --selfbench`
 * and gated as BENCH_selfbench.json.
 *
 * Measurement is two-phase so the gated number is honest: phase 1
 * runs the workload with profiling *disabled* (repeats times,
 * best-of) and derives events/sec from the fastest run; phase 2 runs
 * once more with profiling enabled for the attribution table. The
 * profiled run never contributes to the throughput figure.
 */

#ifndef DOLOS_WORKLOADS_SELFBENCH_HH
#define DOLOS_WORKLOADS_SELFBENCH_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dolos/config.hh"

namespace dolos::workloads
{

/** What to run and how often. */
struct SelfbenchOptions
{
    std::string workload = "hashmap";
    std::uint64_t txns = 2000;
    std::uint64_t numKeys = 1024;
    std::uint64_t seed = 1;
    unsigned repeats = 3; ///< unprofiled timing runs (best-of)
    SecurityMode mode = SecurityMode::DolosPartialWpq;
};

/** One component's share of attributed host time. */
struct SelfbenchComponent
{
    std::string name;
    double seconds = 0;
    double share = 0;
    std::uint64_t calls = 0;
};

/** Measured self-benchmark outcome. */
struct SelfbenchResult
{
    std::string workload;
    std::uint64_t transactions = 0;
    std::uint64_t instructions = 0; ///< simulated, per timing run
    std::uint64_t simCycles = 0;    ///< simulated, per timing run
    double hostSeconds = 0;         ///< best unprofiled run
    double eventsPerSec = 0;        ///< instructions / hostSeconds
    double simCyclesPerSec = 0;     ///< simCycles / hostSeconds
    bool profiled = false;          ///< phase 2 ran (DOLOS_SELFPROF)
    std::vector<SelfbenchComponent> components;
};

/** Run the two-phase self-benchmark. */
SelfbenchResult runSelfbench(const SelfbenchOptions &opt);

/** Human-readable report (throughput plus attribution table). */
void formatSelfbench(const SelfbenchResult &r, std::ostream &os);

} // namespace dolos::workloads

#endif // DOLOS_WORKLOADS_SELFBENCH_HH
