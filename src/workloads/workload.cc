/**
 * @file
 * Workload factory.
 */

#include "workloads/detail.hh"

#include "sim/logging.hh"

namespace dolos::workloads
{

std::vector<std::string>
workloadNames()
{
    return {"hashmap", "ctree", "btree", "rbtree", "nstore-ycsb",
            "redis"};
}

std::vector<std::string>
extendedWorkloadNames()
{
    auto names = workloadNames();
    names.push_back("echo");
    names.push_back("vacation");
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "hashmap")
        return detail::makeHashmap(params);
    if (name == "ctree")
        return detail::makeCtree(params);
    if (name == "btree")
        return detail::makeBtree(params);
    if (name == "rbtree")
        return detail::makeRbtree(params);
    if (name == "nstore-ycsb")
        return detail::makeNstoreYcsb(params);
    if (name == "redis")
        return detail::makeRedis(params);
    if (name == "echo")
        return detail::makeEcho(params);
    if (name == "vacation")
        return detail::makeVacation(params);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace dolos::workloads
