/**
 * @file
 * Persistent-memory programming environment for workloads.
 *
 * PmemEnv is the workload-facing runtime over a simulated System: a
 * typed load/store interface driven through the timing core, a bump
 * allocator whose cursor lives in persistent memory, root-object
 * slots for re-attachment after a crash (the pmem programming model),
 * and an operation hook used to inject power failures at arbitrary
 * points inside a transaction.
 */

#ifndef DOLOS_WORKLOADS_PMEM_HH
#define DOLOS_WORKLOADS_PMEM_HH

#include <functional>

#include "dolos/system.hh"

namespace dolos::workloads
{

/** Thrown by the op hook to simulate a power failure mid-execution. */
struct CrashRequested
{
};

/** Fixed layout of the persistent heap's control area. */
struct PmemLayout
{
    static constexpr Addr rootSlotBase = 0x000; ///< 8 root pointers
    static constexpr unsigned numRootSlots = 8;
    static constexpr Addr allocCursorAddr = 0x040;
    static constexpr Addr txLogBase = 0x080;    ///< undo log region
    static constexpr Addr txLogBytes = 0x10000; ///< 64 KB log
    static constexpr Addr heapBase = 0x20000;   ///< allocations start
};

/**
 * The workload runtime.
 */
class PmemEnv
{
  public:
    explicit PmemEnv(System &sys);

    SimpleCore &core() { return sys.core(); }
    System &system() { return sys; }

    /** @{ Typed persistent accessors (timed, through the core). */
    template <typename T>
    T
    read(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v{};
        tick();
        sys.core().load(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        tick();
        sys.core().store(addr, &v, sizeof(T));
    }

    void readBytes(Addr addr, void *out, unsigned len);
    void writeBytes(Addr addr, const void *src, unsigned len);
    /** @} */

    /** CLWB every block of [addr, addr + len). */
    void flush(Addr addr, unsigned len);

    /** SFENCE. */
    void fence();

    /**
     * Allocate @p size bytes (non-transactional; used during setup —
     * transactional code must use TxContext::alloc). The cursor is
     * flushed but unfenced; setup ends with a fence.
     */
    Addr alloc(unsigned size, unsigned align = 8);

    /** Re-read the allocation cursor after a crash/recovery. */
    void reattach();

    /** Root-object pointers for post-crash re-attachment. */
    Addr rootPtr(unsigned slot);
    void setRootPtr(unsigned slot, Addr value);

    /**
     * Install a hook called once per environment operation; a hook
     * may throw CrashRequested. Used by the runner for crash-point
     * sweeps.
     */
    void setOpHook(std::function<void()> hook) { opHook = std::move(hook); }

    /** Ops performed (hook call count). */
    std::uint64_t opCount() const { return ops; }

  private:
    void tick();

    System &sys;
    Addr allocCursor = 0;
    std::function<void()> opHook;
    std::uint64_t ops = 0;
};

} // namespace dolos::workloads

#endif // DOLOS_WORKLOADS_PMEM_HH
