/**
 * @file
 * Persistent crit-bit tree (WHISPER "ctree" analogue).
 *
 * A crit-bit (PATRICIA) tree over 64-bit keys. Internal nodes store
 * the critical bit position and two tagged child pointers; leaves
 * hold { key(8) version(8) payload(txSize) }. Pointers with the low
 * bit set reference internal nodes.
 *
 * Inserting a fresh key allocates one leaf and one internal node and
 * rewires a single pointer; updates rewrite the leaf payload. Both
 * run under one undo-log transaction.
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

constexpr Addr internalTag = 1;

bool
isInternal(Addr p)
{
    return (p & internalTag) != 0;
}

Addr
untag(Addr p)
{
    return p & ~internalTag;
}

class CtreeWorkload : public Workload
{
  public:
    explicit CtreeWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 3 + 1);
    }

    const char *name() const override { return "ctree"; }

    void
    setup(PmemEnv &env) override
    {
        // Root slot 0 holds the (tagged) tree root pointer address.
        rootAddr = env.alloc(8, 8);
        env.write<Addr>(rootAddr, 0);
        env.flush(rootAddr, 8);
        env.fence();
        env.setRootPtr(0, rootAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        const std::uint64_t key = rng.below(params.numKeys) + 1;
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            findLeaf(env, rng.below(params.numKeys) + 1);

        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};
        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        TxContext tx(env);
        const Addr leaf = findLeaf(env, key);
        if (leaf != 0) {
            tx.write<std::uint64_t>(leaf + 8, next_version);
            writePayloadChunked(env, tx, leaf + 16, payload, 2,
                                params.thinkTime / 4);
        } else {
            insertNew(env, tx, key, next_version, payload);
        }
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime / 2);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        rootAddr = env.rootPtr(0);
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : expected) { // dolos-lint: allow(determinism)
            const Addr leaf = findLeaf(env, key);
            if (leaf == 0) {
                if (why)
                    *why = "committed key missing: " +
                           std::to_string(key);
                return false;
            }
            const bool ok =
                checkLeaf(env, leaf, key, version) ||
                (pending.active && pending.key == key &&
                 checkLeaf(env, leaf, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad leaf for key " + std::to_string(key);
                return false;
            }
        }
        // Structural soundness: every reachable leaf key must be
        // locatable by a fresh descent (tree is a function of keys).
        std::size_t leaves = 0;
        if (!walk(env, env.read<Addr>(rootAddr), leaves, why))
            return false;
        return true;
    }

  private:
    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    bool
    checkLeaf(PmemEnv &env, Addr leaf, std::uint64_t key,
              std::uint64_t version)
    {
        if (env.read<std::uint64_t>(leaf + 8) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(leaf + 16, payload.data(), params.txSize);
        return checkPayload(payload, key, version);
    }

    /** Descend to the leaf that would hold @p key (0 if empty). */
    Addr
    descend(PmemEnv &env, std::uint64_t key)
    {
        Addr p = env.read<Addr>(rootAddr);
        if (p == 0)
            return 0;
        while (isInternal(p)) {
            const Addr n = untag(p);
            const auto bit = env.read<std::uint64_t>(n);
            const bool right = (key >> bit) & 1;
            p = env.read<Addr>(n + (right ? 16 : 8));
        }
        return p;
    }

    Addr
    findLeaf(PmemEnv &env, std::uint64_t key)
    {
        const Addr leaf = descend(env, key);
        if (leaf != 0 && env.read<std::uint64_t>(leaf) == key)
            return leaf;
        return 0;
    }

    void
    insertNew(PmemEnv &env, TxContext &tx, std::uint64_t key,
              std::uint64_t version,
              const std::vector<std::uint8_t> &payload)
    {
        const Addr leaf = tx.alloc(16 + params.txSize, 8);
        tx.write<std::uint64_t>(leaf, key);
        tx.write<std::uint64_t>(leaf + 8, version);
        writePayloadChunked(env, tx, leaf + 16, payload, 2,
                                params.thinkTime / 4);

        const Addr cur = env.read<Addr>(rootAddr);
        if (cur == 0) {
            tx.write<Addr>(rootAddr, leaf);
            return;
        }

        // Find the critical bit against the colliding leaf.
        const Addr other = descend(env, key);
        const auto other_key = env.read<std::uint64_t>(other);
        const std::uint64_t diff = key ^ other_key;
        DOLOS_ASSERT(diff != 0, "duplicate insert reached insertNew");
        const unsigned crit = 63 - unsigned(__builtin_clzll(diff));

        // Allocate the internal node.
        const Addr node = tx.alloc(24, 8);
        tx.write<std::uint64_t>(node, crit);

        // Walk again to find the edge to rewire: stop at the first
        // node whose bit is below crit (or a leaf).
        Addr parent_edge = rootAddr;
        Addr p = env.read<Addr>(parent_edge);
        while (isInternal(p)) {
            const Addr n = untag(p);
            const auto bit = env.read<std::uint64_t>(n);
            if (bit < crit)
                break;
            parent_edge = n + (((key >> bit) & 1) ? 16 : 8);
            p = env.read<Addr>(parent_edge);
        }

        const bool right = (key >> crit) & 1;
        tx.write<Addr>(node + (right ? 16 : 8), leaf);
        tx.write<Addr>(node + (right ? 8 : 16), p);
        tx.write<Addr>(parent_edge, node | internalTag);
    }

    bool
    walk(PmemEnv &env, Addr p, std::size_t &leaves, std::string *why)
    {
        if (p == 0)
            return true;
        if (!isInternal(p)) {
            ++leaves;
            const auto key = env.read<std::uint64_t>(p);
            if (findLeaf(env, key) != p) {
                if (why)
                    *why = "leaf unreachable by its own key";
                return false;
            }
            return true;
        }
        const Addr n = untag(p);
        return walk(env, env.read<Addr>(n + 8), leaves, why) &&
               walk(env, env.read<Addr>(n + 16), leaves, why);
    }

    Addr rootAddr = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeCtree(const WorkloadParams &params)
{
    return std::make_unique<CtreeWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
