/**
 * @file
 * Simulator self-benchmark implementation.
 */

#include "workloads/selfbench.hh"

#include <chrono>
#include <cstdio>

#include "dolos/system.hh"
#include "sim/profiler.hh"
#include "workloads/runner.hh"

namespace dolos::workloads
{

namespace
{

struct TimedRun
{
    RunResult run;
    double hostSeconds = 0;
};

TimedRun
oneRun(const SelfbenchOptions &opt)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = opt.mode;
    cfg.name = "selfbench";
    System sys(cfg);
    WorkloadParams params;
    params.numKeys = opt.numKeys;
    params.seed = opt.seed;
    auto wl = makeWorkload(opt.workload, params);
    const auto start = std::chrono::steady_clock::now();
    TimedRun out;
    out.run = runWorkload(sys, *wl, opt.txns);
    out.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
}

} // namespace

SelfbenchResult
runSelfbench(const SelfbenchOptions &opt)
{
    SelfbenchResult res;
    res.workload = opt.workload;

    // Phase 1: unprofiled timing runs; the fastest is the simulator's
    // throughput (the slower ones absorbed host noise, not work).
    prof::Profiler::instance().disable();
    const unsigned repeats = opt.repeats ? opt.repeats : 1;
    for (unsigned i = 0; i < repeats; ++i) {
        TimedRun t = oneRun(opt);
        if (i == 0 || t.hostSeconds < res.hostSeconds) {
            res.hostSeconds = t.hostSeconds;
            res.transactions = t.run.transactions;
            res.instructions = t.run.instructions;
            res.simCycles = t.run.runCycles;
        }
    }
    if (res.hostSeconds > 0) {
        res.eventsPerSec = double(res.instructions) / res.hostSeconds;
        res.simCyclesPerSec = double(res.simCycles) / res.hostSeconds;
    }

#if DOLOS_SELFPROF
    // Phase 2: one profiled run for the attribution table only.
    auto &prof = prof::Profiler::instance();
    prof.enable();
    oneRun(opt);
    prof.disable();
    res.profiled = true;
    const double total = double(prof.attributedNanos());
    for (std::size_t i = 0;
         i < std::size_t(prof::Comp::NumComps); ++i) {
        const auto c = static_cast<prof::Comp>(i);
        if (!prof.calls(c))
            continue;
        SelfbenchComponent sc;
        sc.name = prof::compName(c);
        sc.seconds = double(prof.exclusiveNanos(c)) * 1e-9;
        sc.share =
            total > 0 ? double(prof.exclusiveNanos(c)) / total : 0;
        sc.calls = prof.calls(c);
        res.components.push_back(sc);
    }
    prof.reset();
#endif
    return res;
}

void
formatSelfbench(const SelfbenchResult &r, std::ostream &os)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "selfbench %s: %llu txns, %llu instructions, "
                  "%llu cycles in %.3f s host\n",
                  r.workload.c_str(),
                  (unsigned long long)r.transactions,
                  (unsigned long long)r.instructions,
                  (unsigned long long)r.simCycles, r.hostSeconds);
    os << line;
    std::snprintf(line, sizeof(line),
                  "  %.0f simulated instructions/sec, "
                  "%.0f simulated cycles/sec\n",
                  r.eventsPerSec, r.simCyclesPerSec);
    os << line;
    if (!r.profiled) {
        os << "  (self-profiler compiled out: build with "
              "-DDOLOS_SELFPROF=ON for attribution)\n";
        return;
    }
    os << "  host-time attribution (exclusive):\n";
    for (const auto &c : r.components) {
        std::snprintf(line, sizeof(line),
                      "    %-16s %9.6f s  %5.1f%%  %llu calls\n",
                      c.name.c_str(), c.seconds, c.share * 100,
                      (unsigned long long)c.calls);
        os << line;
    }
}

} // namespace dolos::workloads
