/**
 * @file
 * Workload interface and factory for the six WHISPER-like persistent
 * benchmarks the paper evaluates: hashmap, ctree, btree, rbtree,
 * nstore-ycsb and redis.
 *
 * Each workload performs real data-structure work against the
 * persistent heap through PMDK-style undo-log transactions, keeps a
 * host-side ground truth of *committed* operations, and can verify
 * the persistent structure against it — including after a crash and
 * recovery, where an interrupted transaction must have been rolled
 * back.
 */

#ifndef DOLOS_WORKLOADS_WORKLOAD_HH
#define DOLOS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "workloads/tx.hh"

namespace dolos::workloads
{

/** Parameters shared by all workloads. */
struct WorkloadParams
{
    /** Payload bytes modified per transaction (paper: 128B–2048B). */
    unsigned txSize = 1024;

    /** Key-space size. */
    std::uint64_t numKeys = 1024;

    /** PRNG seed. */
    std::uint64_t seed = 1;

    /** Modeled non-memory work between transactions (cycles). */
    Cycles thinkTime = 3000;

    /** Point reads interleaved per transaction. */
    unsigned readsPerTx = 2;
};

/**
 * A persistent benchmark.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &params) : params(params) {}
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Build the initial persistent structure (not timed as tx). */
    virtual void setup(PmemEnv &env) = 0;

    /** Execute one transaction. */
    virtual void transaction(PmemEnv &env, std::uint64_t idx) = 0;

    /**
     * Check the persistent structure against the committed ground
     * truth (walks the real structure through the core).
     *
     * @param why Filled with a diagnostic on failure.
     * @return true if consistent.
     */
    virtual bool verify(PmemEnv &env, std::string *why = nullptr) = 0;

    const WorkloadParams &config() const { return params; }

  protected:
    /** Deterministic payload byte for (key, version, index). */
    static std::uint8_t
    payloadByte(std::uint64_t key, std::uint64_t version, unsigned i)
    {
        std::uint64_t x =
            key * 0x9E3779B97F4A7C15ULL + version * 0xC2B2AE3D27D4EB4FULL +
            i * 0x165667B19E3779F9ULL;
        x ^= x >> 29;
        return std::uint8_t(x);
    }

    /** Fill a payload buffer deterministically. */
    static void
    fillPayload(std::vector<std::uint8_t> &buf, std::uint64_t key,
                std::uint64_t version)
    {
        for (unsigned i = 0; i < buf.size(); ++i)
            buf[i] = payloadByte(key, version, i);
    }

    /** Verify a payload read back from pmem. */
    static bool
    checkPayload(const std::vector<std::uint8_t> &buf, std::uint64_t key,
                 std::uint64_t version)
    {
        for (unsigned i = 0; i < buf.size(); ++i)
            if (buf[i] != payloadByte(key, version, i))
                return false;
        return true;
    }

    /**
     * Write a payload in @p chunks transactional pieces with
     * @p compute_between cycles of modeled work between them
     * (computation naturally interleaves with persists, letting the
     * WPQ drain mid-transaction).
     */
    static void
    writePayloadChunked(PmemEnv &env, TxContext &tx, Addr addr,
                        const std::vector<std::uint8_t> &payload,
                        unsigned chunks, Cycles compute_between)
    {
        const unsigned n = unsigned(payload.size());
        const unsigned chunk = std::max(1u, (n + chunks - 1) / chunks);
        for (unsigned off = 0; off < n; off += chunk) {
            if (off > 0 && compute_between > 0)
                env.core().compute(compute_between);
            tx.write(addr + off, payload.data() + off,
                     std::min(chunk, n - off));
        }
    }

    WorkloadParams params;
    Random rng{1};
};

/** The six paper workloads, in the paper's order. */
std::vector<std::string> workloadNames();

/** Paper workloads plus the suite extensions (echo, vacation). */
std::vector<std::string> extendedWorkloadNames();

/**
 * Create a workload by name ("hashmap", "ctree", "btree", "rbtree",
 * "nstore-ycsb", "redis", plus the extensions "echo", "vacation").
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

} // namespace dolos::workloads

#endif // DOLOS_WORKLOADS_WORKLOAD_HH
