/**
 * @file
 * Persistent B+tree (WHISPER "btree" analogue).
 *
 * Order-8 B+tree over 64-bit keys. Node layout (fixed 192B):
 *   { isLeaf(8) numKeys(8) keys[7](56) slots[8](64) next(8) pad }
 * Leaf slots hold value-record addresses; inner slots hold children.
 * Value records are { version(8) payload(txSize) }.
 *
 * Inserts split full nodes top-down (proactive splitting keeps the
 * transaction footprint bounded); updates rewrite the value record.
 */

#include <map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

constexpr unsigned order = 8;     // max children
constexpr unsigned maxKeys = 7;   // order - 1
constexpr unsigned nodeBytes = 192;

struct NodeView
{
    // Field offsets within a node.
    static Addr isLeafAt(Addr n) { return n; }
    static Addr numKeysAt(Addr n) { return n + 8; }
    static Addr keyAt(Addr n, unsigned i) { return n + 16 + i * 8; }
    static Addr slotAt(Addr n, unsigned i) { return n + 72 + i * 8; }
};

class BtreeWorkload : public Workload
{
  public:
    explicit BtreeWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 5 + 2);
    }

    const char *name() const override { return "btree"; }

    void
    setup(PmemEnv &env) override
    {
        rootPtrAddr = env.alloc(8, 8);
        const Addr root = allocNodeRaw(env, true);
        env.write<Addr>(rootPtrAddr, root);
        env.flush(rootPtrAddr, 8);
        env.fence();
        env.setRootPtr(0, rootPtrAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        const std::uint64_t key = rng.below(params.numKeys) + 1;
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            lookup(env, rng.below(params.numKeys) + 1);

        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};
        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        TxContext tx(env);
        const Addr value = lookup(env, key);
        if (value != 0) {
            tx.write<std::uint64_t>(value, next_version);
            writePayloadChunked(env, tx, value + 8, payload, 2,
                                params.thinkTime / 4);
        } else {
            insert(env, tx, key, next_version, payload);
        }
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime / 2);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        rootPtrAddr = env.rootPtr(0);
        for (const auto &[key, version] : expected) {
            const Addr value = lookup(env, key);
            if (value == 0) {
                if (why)
                    *why = "committed key missing: " +
                           std::to_string(key);
                return false;
            }
            const bool ok =
                checkValue(env, value, key, version) ||
                (pending.active && pending.key == key &&
                 checkValue(env, value, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad value for key " + std::to_string(key);
                return false;
            }
        }
        std::uint64_t last = 0;
        return checkSorted(env, env.read<Addr>(rootPtrAddr), last, why);
    }

  private:
    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    Addr
    allocNodeRaw(PmemEnv &env, bool leaf)
    {
        const Addr n = env.alloc(nodeBytes, 8);
        env.write<std::uint64_t>(NodeView::isLeafAt(n), leaf ? 1 : 0);
        env.write<std::uint64_t>(NodeView::numKeysAt(n), 0);
        env.flush(n, nodeBytes);
        return n;
    }

    Addr
    allocNodeTx(PmemEnv &env, TxContext &tx, bool leaf)
    {
        const Addr n = tx.alloc(nodeBytes, 8);
        tx.write<std::uint64_t>(NodeView::isLeafAt(n), leaf ? 1 : 0);
        tx.write<std::uint64_t>(NodeView::numKeysAt(n), 0);
        (void)env;
        return n;
    }

    /** Find the value-record address for @p key (0 if absent). */
    Addr
    lookup(PmemEnv &env, std::uint64_t key)
    {
        Addr n = env.read<Addr>(rootPtrAddr);
        while (true) {
            const bool leaf = env.read<std::uint64_t>(n) != 0;
            const auto nk = env.read<std::uint64_t>(
                NodeView::numKeysAt(n));
            unsigned i = 0;
            while (i < nk &&
                   key > env.read<std::uint64_t>(NodeView::keyAt(n, i)))
                ++i;
            if (leaf) {
                if (i < nk &&
                    env.read<std::uint64_t>(NodeView::keyAt(n, i)) ==
                        key)
                    return env.read<Addr>(NodeView::slotAt(n, i));
                return 0;
            }
            if (i < nk &&
                env.read<std::uint64_t>(NodeView::keyAt(n, i)) == key)
                ++i; // equal keys descend right in this B+tree
            n = env.read<Addr>(NodeView::slotAt(n, i));
        }
    }

    /**
     * Split full child @p child (index @p ci) of @p parent.
     * All writes transactional.
     */
    void
    splitChild(PmemEnv &env, TxContext &tx, Addr parent, unsigned ci,
               Addr child)
    {
        const bool leaf = env.read<std::uint64_t>(child) != 0;
        const Addr right = allocNodeTx(env, tx, leaf);
        const unsigned mid = maxKeys / 2; // 3

        const std::uint64_t mid_key =
            env.read<std::uint64_t>(NodeView::keyAt(child, mid));

        // Move the upper keys/slots into the new right node.
        const unsigned move_from = leaf ? mid : mid + 1;
        unsigned moved = 0;
        for (unsigned i = move_from; i < maxKeys; ++i, ++moved) {
            tx.write<std::uint64_t>(
                NodeView::keyAt(right, moved),
                env.read<std::uint64_t>(NodeView::keyAt(child, i)));
            tx.write<Addr>(
                NodeView::slotAt(right, moved),
                env.read<Addr>(NodeView::slotAt(child, i)));
        }
        if (!leaf) {
            tx.write<Addr>(
                NodeView::slotAt(right, moved),
                env.read<Addr>(NodeView::slotAt(child, maxKeys)));
        }
        tx.write<std::uint64_t>(NodeView::numKeysAt(right), moved);
        tx.write<std::uint64_t>(NodeView::numKeysAt(child),
                                leaf ? mid : mid);

        // Shift the parent's keys/slots right of ci.
        const auto pk = env.read<std::uint64_t>(
            NodeView::numKeysAt(parent));
        for (unsigned i = unsigned(pk); i > ci; --i) {
            tx.write<std::uint64_t>(
                NodeView::keyAt(parent, i),
                env.read<std::uint64_t>(NodeView::keyAt(parent, i - 1)));
            tx.write<Addr>(
                NodeView::slotAt(parent, i + 1),
                env.read<Addr>(NodeView::slotAt(parent, i)));
        }
        tx.write<std::uint64_t>(NodeView::keyAt(parent, ci), mid_key);
        tx.write<Addr>(NodeView::slotAt(parent, ci + 1), right);
        tx.write<std::uint64_t>(NodeView::numKeysAt(parent), pk + 1);
    }

    void
    insert(PmemEnv &env, TxContext &tx, std::uint64_t key,
           std::uint64_t version,
           const std::vector<std::uint8_t> &payload)
    {
        // Value record first.
        const Addr value = tx.alloc(8 + params.txSize, 8);
        tx.write<std::uint64_t>(value, version);
        writePayloadChunked(env, tx, value + 8, payload, 2,
                                params.thinkTime / 4);

        // Proactive top-down splitting.
        Addr root = env.read<Addr>(rootPtrAddr);
        if (env.read<std::uint64_t>(NodeView::numKeysAt(root)) ==
            maxKeys) {
            const Addr new_root = allocNodeTx(env, tx, false);
            tx.write<Addr>(NodeView::slotAt(new_root, 0), root);
            splitChild(env, tx, new_root, 0, root);
            tx.write<Addr>(rootPtrAddr, new_root);
            root = new_root;
        }

        Addr n = root;
        while (true) {
            const bool leaf = env.read<std::uint64_t>(n) != 0;
            auto nk =
                env.read<std::uint64_t>(NodeView::numKeysAt(n));
            unsigned i = 0;
            while (i < nk &&
                   key > env.read<std::uint64_t>(NodeView::keyAt(n, i)))
                ++i;
            if (leaf) {
                // Shift and place.
                for (unsigned j = unsigned(nk); j > i; --j) {
                    tx.write<std::uint64_t>(
                        NodeView::keyAt(n, j),
                        env.read<std::uint64_t>(
                            NodeView::keyAt(n, j - 1)));
                    tx.write<Addr>(
                        NodeView::slotAt(n, j),
                        env.read<Addr>(NodeView::slotAt(n, j - 1)));
                }
                tx.write<std::uint64_t>(NodeView::keyAt(n, i), key);
                tx.write<Addr>(NodeView::slotAt(n, i), value);
                tx.write<std::uint64_t>(NodeView::numKeysAt(n), nk + 1);
                return;
            }
            if (i < nk &&
                env.read<std::uint64_t>(NodeView::keyAt(n, i)) == key)
                ++i;
            Addr child = env.read<Addr>(NodeView::slotAt(n, i));
            if (env.read<std::uint64_t>(NodeView::numKeysAt(child)) ==
                maxKeys) {
                splitChild(env, tx, n, i, child);
                const auto sep = env.read<std::uint64_t>(
                    NodeView::keyAt(n, i));
                if (key > sep)
                    child = env.read<Addr>(NodeView::slotAt(n, i + 1));
                else
                    child = env.read<Addr>(NodeView::slotAt(n, i));
            }
            n = child;
        }
    }

    bool
    checkValue(PmemEnv &env, Addr value, std::uint64_t key,
               std::uint64_t version)
    {
        if (env.read<std::uint64_t>(value) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(value + 8, payload.data(), params.txSize);
        return checkPayload(payload, key, version);
    }

    /** In-order walk: leaf keys strictly increasing. */
    bool
    checkSorted(PmemEnv &env, Addr n, std::uint64_t &last,
                std::string *why)
    {
        const bool leaf = env.read<std::uint64_t>(n) != 0;
        const auto nk = env.read<std::uint64_t>(NodeView::numKeysAt(n));
        if (leaf) {
            for (unsigned i = 0; i < nk; ++i) {
                const auto k =
                    env.read<std::uint64_t>(NodeView::keyAt(n, i));
                if (k <= last) {
                    if (why)
                        *why = "unsorted leaf keys";
                    return false;
                }
                last = k;
            }
            return true;
        }
        for (unsigned i = 0; i <= nk; ++i) {
            if (!checkSorted(env,
                             env.read<Addr>(NodeView::slotAt(n, i)),
                             last, why))
                return false;
        }
        return true;
    }

    Addr rootPtrAddr = 0;
    std::map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeBtree(const WorkloadParams &params)
{
    return std::make_unique<BtreeWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
