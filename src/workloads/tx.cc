/**
 * @file
 * Undo-log transaction implementation.
 */

#include "workloads/tx.hh"

#include "sim/logging.hh"

namespace dolos::workloads
{

TxContext::TxContext(PmemEnv &env) : env(env)
{
    // Begin: durably activate the log before any write.
    Header h{1, 0};
    env.writeBytes(PmemLayout::txLogBase, &h, sizeof(h));
    env.flush(PmemLayout::txLogBase, sizeof(h));
    env.fence();
}

TxContext::~TxContext()
{
    // A destructed-but-uncommitted transaction models a crash path:
    // the log stays active and recovery rolls it back. Nothing to do.
}

void
TxContext::appendUndo(Addr addr, unsigned len)
{
    // Record: addr, len, old data.
    std::vector<std::uint8_t> old(len);
    env.readBytes(addr, old.data(), len);

    const Addr rec = logCursor;
    env.write<Addr>(rec, addr);
    env.write<std::uint64_t>(rec + 8, len);
    env.writeBytes(rec + 16, old.data(), len);
    const unsigned rec_len = 16 + ((len + 7) & ~7u);
    logCursor += rec_len;
    DOLOS_ASSERT(logCursor <
                     PmemLayout::txLogBase + PmemLayout::txLogBytes,
                 "transaction log overflow");

    // Durably publish the record, then the count.
    env.flush(rec, rec_len);
    env.fence();
    ++numRecords;
    env.write<std::uint64_t>(PmemLayout::txLogBase + 8, numRecords);
    env.flush(PmemLayout::txLogBase + 8, 8);
    env.fence();
}

void
TxContext::write(Addr addr, const void *src, unsigned len)
{
    DOLOS_ASSERT(!committed_, "write after commit");
    appendUndo(addr, len);
    env.writeBytes(addr, src, len);
    for (Addr b = blockAlign(addr); b < addr + len; b += blockSize)
        dirtyBlocks.insert(b);
}

void
TxContext::writePersist(Addr addr, const void *src, unsigned len)
{
    DOLOS_ASSERT(!committed_, "write after commit");
    appendUndo(addr, len);
    env.writeBytes(addr, src, len);
    env.flush(addr, len);
    env.fence();
}

Addr
TxContext::alloc(unsigned size, unsigned align)
{
    // Undo-log the allocator cursor so an aborted transaction also
    // releases its allocations, then delegate.
    appendUndo(PmemLayout::allocCursorAddr, sizeof(Addr));
    const Addr a = env.alloc(size, align);
    dirtyBlocks.insert(blockAlign(PmemLayout::allocCursorAddr));
    return a;
}

void
TxContext::commit()
{
    DOLOS_ASSERT(!committed_, "double commit");
    // Flush all in-place updates, fence, then deactivate the log.
    for (const Addr b : dirtyBlocks)
        env.flush(b, 1);
    env.fence();

    env.write<std::uint64_t>(PmemLayout::txLogBase, 0);
    env.flush(PmemLayout::txLogBase, 8);
    env.fence();
    committed_ = true;
}

bool
TxContext::recover(PmemEnv &env)
{
    Header h{};
    env.readBytes(PmemLayout::txLogBase, &h, sizeof(h));
    if (h.active != 1)
        return false;

    // Collect record offsets, then apply undo newest-first.
    std::vector<std::pair<Addr, std::uint64_t>> records; // (rec, len)
    Addr cursor = recordBase;
    for (std::uint64_t i = 0; i < h.numRecords; ++i) {
        const auto len = env.read<std::uint64_t>(cursor + 8);
        records.emplace_back(cursor, len);
        cursor += 16 + ((len + 7) & ~7ULL);
    }
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        const Addr rec = it->first;
        const unsigned len = unsigned(it->second);
        const Addr target = env.read<Addr>(rec);
        std::vector<std::uint8_t> old(len);
        env.readBytes(rec + 16, old.data(), len);
        env.writeBytes(target, old.data(), len);
        env.flush(target, len);
    }
    env.fence();

    env.write<std::uint64_t>(PmemLayout::txLogBase, 0);
    env.flush(PmemLayout::txLogBase, 8);
    env.fence();
    env.reattach(); // the allocator cursor may have been rolled back
    return true;
}

} // namespace dolos::workloads
