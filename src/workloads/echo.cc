/**
 * @file
 * Echo-style versioned key-value store (WHISPER extension workload).
 *
 * Echo (Bailey et al.) is a persistent KV store built on versioned
 * snapshots: workers batch updates and commit them to the master
 * store, advancing a global snapshot counter. We model the commit
 * path: each transaction appends a batch of key/value updates to a
 * version log, installs them in the index, and bumps the snapshot
 * counter — a multi-key transactional profile distinct from the six
 * paper workloads.
 *
 * Not part of the paper's evaluation set; provided as a suite
 * extension (use via makeWorkload("echo", ...) or dolos-sim).
 */

#include <algorithm>
#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

class EchoWorkload : public Workload
{
  public:
    explicit EchoWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 17 + 11);
        // Batch of updates per snapshot commit; value sized so one
        // transaction still moves ~txSize payload bytes.
        batch = 4;
        valueBytes = std::max(8u, params.txSize / batch);
    }

    const char *name() const override { return "echo"; }

    void
    setup(PmemEnv &env) override
    {
        snapshotAddr = env.alloc(8, 8);
        indexAddr = env.alloc(params.numKeys * 16, 64);
        const unsigned entry = 24 + valueBytes;
        logAddr = env.alloc(unsigned((params.numKeys + 300000) * entry /
                                     4),
                            64);
        logTailAddr = env.alloc(8, 8);
        env.write<std::uint64_t>(snapshotAddr, 0);
        env.write<Addr>(logTailAddr, logAddr);
        env.flush(snapshotAddr, 8);
        env.flush(logTailAddr, 8);
        env.fence();
        env.setRootPtr(0, snapshotAddr);
        env.setRootPtr(1, indexAddr);
        env.setRootPtr(2, logTailAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            readKey(env, rng.below(params.numKeys));

        const std::uint64_t snapshot =
            env.read<std::uint64_t>(snapshotAddr) + 1;

        // Choose the batch and remember it as the pending commit.
        pendingKeys.clear();
        for (unsigned b = 0; b < batch; ++b)
            pendingKeys.push_back(rng.below(params.numKeys));
        pendingSnapshot = snapshot;
        pendingActive = true;

        TxContext tx(env);
        Addr tail = env.read<Addr>(logTailAddr);
        const unsigned entry = 24 + valueBytes;
        for (const std::uint64_t key : pendingKeys) {
            // Log entry: { key, snapshot, len, value }.
            std::vector<std::uint8_t> value(valueBytes);
            fillValue(value, key, snapshot);
            tx.write<std::uint64_t>(tail, key);
            tx.write<std::uint64_t>(tail + 8, snapshot);
            tx.write<std::uint64_t>(tail + 16, valueBytes);
            tx.write(tail + 24, value.data(), valueBytes);
            // Index slot points at the entry.
            tx.write<Addr>(indexAddr + key * 16, key + 1);
            tx.write<Addr>(indexAddr + key * 16 + 8, tail);
            tail += entry;
            env.core().compute(params.thinkTime / (2 * batch));
        }
        tx.write<Addr>(logTailAddr, tail);
        tx.write<std::uint64_t>(snapshotAddr, snapshot);
        tx.commit();

        for (const std::uint64_t key : pendingKeys)
            committed[key] = snapshot;
        committedSnapshot = snapshot;
        pendingActive = false;

        env.core().compute(params.thinkTime / 2);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        snapshotAddr = env.rootPtr(0);
        indexAddr = env.rootPtr(1);
        logTailAddr = env.rootPtr(2);

        const auto snap = env.read<std::uint64_t>(snapshotAddr);
        // Either the pending commit landed in full or not at all.
        const bool pending_applied =
            pendingActive && snap == pendingSnapshot;
        if (snap != committedSnapshot && !pending_applied) {
            if (why)
                *why = "snapshot counter mismatch";
            return false;
        }
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : committed) { // dolos-lint: allow(determinism)
            std::uint64_t expect = version;
            if (pending_applied &&
                std::find(pendingKeys.begin(), pendingKeys.end(),
                          key) != pendingKeys.end())
                expect = pendingSnapshot;
            if (!checkKey(env, key, expect)) {
                if (why)
                    *why = "bad entry for key " + std::to_string(key);
                return false;
            }
        }
        return true;
    }

  private:
    void
    fillValue(std::vector<std::uint8_t> &buf, std::uint64_t key,
              std::uint64_t snapshot) const
    {
        for (unsigned i = 0; i < buf.size(); ++i)
            buf[i] = payloadByte(key, snapshot, i);
    }

    void
    readKey(PmemEnv &env, std::uint64_t key)
    {
        const Addr rec = env.read<Addr>(indexAddr + key * 16 + 8);
        if (rec != 0)
            env.read<std::uint64_t>(rec + 8);
    }

    bool
    checkKey(PmemEnv &env, std::uint64_t key, std::uint64_t snapshot)
    {
        const Addr rec = env.read<Addr>(indexAddr + key * 16 + 8);
        if (rec == 0)
            return false;
        if (env.read<std::uint64_t>(rec) != key ||
            env.read<std::uint64_t>(rec + 8) != snapshot)
            return false;
        std::vector<std::uint8_t> value(valueBytes);
        env.readBytes(rec + 24, value.data(), valueBytes);
        for (unsigned i = 0; i < valueBytes; ++i)
            if (value[i] != payloadByte(key, snapshot, i))
                return false;
        return true;
    }

    unsigned batch = 4;
    unsigned valueBytes = 256;
    Addr snapshotAddr = 0;
    Addr indexAddr = 0;
    Addr logAddr = 0;
    Addr logTailAddr = 0;

    std::unordered_map<std::uint64_t, std::uint64_t> committed;
    std::uint64_t committedSnapshot = 0;
    std::vector<std::uint64_t> pendingKeys;
    std::uint64_t pendingSnapshot = 0;
    bool pendingActive = false;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeEcho(const WorkloadParams &params)
{
    return std::make_unique<EchoWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
