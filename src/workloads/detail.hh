/**
 * @file
 * Internal factory hooks for the individual workload translation
 * units.
 */

#ifndef DOLOS_WORKLOADS_DETAIL_HH
#define DOLOS_WORKLOADS_DETAIL_HH

#include "workloads/workload.hh"

namespace dolos::workloads::detail
{

std::unique_ptr<Workload> makeHashmap(const WorkloadParams &params);
std::unique_ptr<Workload> makeCtree(const WorkloadParams &params);
std::unique_ptr<Workload> makeBtree(const WorkloadParams &params);
std::unique_ptr<Workload> makeRbtree(const WorkloadParams &params);
std::unique_ptr<Workload> makeNstoreYcsb(const WorkloadParams &params);
std::unique_ptr<Workload> makeRedis(const WorkloadParams &params);
std::unique_ptr<Workload> makeEcho(const WorkloadParams &params);
std::unique_ptr<Workload> makeVacation(const WorkloadParams &params);

/**
 * Tracks the one possibly-in-flight operation, so verification can
 * accept either outcome when a crash lands exactly at the commit
 * point (committed-but-not-recorded).
 */
struct PendingOp
{
    bool active = false;
    std::uint64_t key = 0;
    std::uint64_t version = 0;
};

} // namespace dolos::workloads::detail

#endif // DOLOS_WORKLOADS_DETAIL_HH
