/**
 * @file
 * PmemEnv implementation.
 */

#include "workloads/pmem.hh"

#include "sim/logging.hh"

namespace dolos::workloads
{

PmemEnv::PmemEnv(System &sys) : sys(sys)
{
    reattach();
}

void
PmemEnv::tick()
{
    ++ops;
    if (opHook)
        opHook();
}

void
PmemEnv::readBytes(Addr addr, void *out, unsigned len)
{
    tick();
    sys.core().load(addr, out, len);
}

void
PmemEnv::writeBytes(Addr addr, const void *src, unsigned len)
{
    tick();
    sys.core().store(addr, src, len);
}

void
PmemEnv::flush(Addr addr, unsigned len)
{
    for (Addr a = blockAlign(addr); a < addr + len; a += blockSize) {
        tick();
        sys.core().clwb(a);
    }
}

void
PmemEnv::fence()
{
    tick();
    sys.core().sfence();
}

Addr
PmemEnv::alloc(unsigned size, unsigned align)
{
    DOLOS_ASSERT(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    Addr base = (allocCursor + align - 1) & ~Addr(align - 1);
    const Addr end = base + size;
    DOLOS_ASSERT(end <= sys.config().secure.functionalLeaves * pageBytes,
                 "persistent heap exhausted");
    allocCursor = end;
    write<Addr>(PmemLayout::allocCursorAddr, allocCursor);
    flush(PmemLayout::allocCursorAddr, sizeof(Addr));
    return base;
}

void
PmemEnv::reattach()
{
    allocCursor = read<Addr>(PmemLayout::allocCursorAddr);
    if (allocCursor < PmemLayout::heapBase)
        allocCursor = PmemLayout::heapBase;
}

Addr
PmemEnv::rootPtr(unsigned slot)
{
    DOLOS_ASSERT(slot < PmemLayout::numRootSlots, "bad root slot");
    return read<Addr>(PmemLayout::rootSlotBase + slot * 8);
}

void
PmemEnv::setRootPtr(unsigned slot, Addr value)
{
    DOLOS_ASSERT(slot < PmemLayout::numRootSlots, "bad root slot");
    write<Addr>(PmemLayout::rootSlotBase + slot * 8, value);
    flush(PmemLayout::rootSlotBase + slot * 8, 8);
    fence();
}

} // namespace dolos::workloads
