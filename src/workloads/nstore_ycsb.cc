/**
 * @file
 * NStore-style YCSB key-value store.
 *
 * A fixed table of records, one per key, updated in place under
 * Zipfian key popularity (YCSB's access distribution) with a
 * read-mostly operation mix — matching the paper's observation that
 * NStore:YCSB generates far gentler WPQ pressure than the tree
 * workloads (Table 2).
 *
 * Record: { version(8) payload(txSize) }, laid out contiguously.
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

class NstoreYcsbWorkload : public Workload
{
  public:
    explicit NstoreYcsbWorkload(const WorkloadParams &p)
        : Workload(p), zipf(p.numKeys, 0.99)
    {
        rng = Random(p.seed * 11 + 4);
    }

    const char *name() const override { return "nstore-ycsb"; }

    void
    setup(PmemEnv &env) override
    {
        recordBytes = 8 + params.txSize;
        tableAddr = env.alloc(unsigned(params.numKeys * recordBytes), 64);
        // Records start zeroed (version 0 == never written).
        env.fence();
        env.setRootPtr(0, tableAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        // YCSB-B-like mix: several zipfian point reads, one update.
        for (unsigned r = 0; r < params.readsPerTx * 4; ++r) {
            const std::uint64_t k = zipf.next(rng);
            std::uint64_t v;
            env.readBytes(recordAddr(k), &v, sizeof(v));
            env.core().compute(100);
        }

        const std::uint64_t key = zipf.next(rng);
        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};
        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        // NStore persists its log-structured updates in fine-grained
        // pieces: chunked writes keep each flush burst small, which
        // is why this workload exerts the least WPQ pressure of the
        // suite (Table 2).
        TxContext tx(env);
        tx.write<std::uint64_t>(recordAddr(key), next_version);
        const unsigned chunk = 64;
        const unsigned nchunks = (params.txSize + chunk - 1) / chunk;
        for (unsigned off = 0; off < params.txSize; off += chunk) {
            const unsigned len = std::min(chunk, params.txSize - off);
            tx.writePersist(recordAddr(key) + 8 + off,
                            payload.data() + off, len);
            // Per-operation processing between persists: the WPQ
            // drains while the core works.
            env.core().compute(params.thinkTime / (nchunks + 1));
        }
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime / (nchunks + 1));
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        tableAddr = env.rootPtr(0);
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : expected) { // dolos-lint: allow(determinism)
            const bool ok =
                checkRecord(env, key, version) ||
                (pending.active && pending.key == key &&
                 checkRecord(env, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad record for key " + std::to_string(key);
                return false;
            }
        }
        return true;
    }

  private:
    Addr
    recordAddr(std::uint64_t key) const
    {
        return tableAddr + key * recordBytes;
    }

    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    bool
    checkRecord(PmemEnv &env, std::uint64_t key, std::uint64_t version)
    {
        if (env.read<std::uint64_t>(recordAddr(key)) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(recordAddr(key) + 8, payload.data(),
                      params.txSize);
        return checkPayload(payload, key, version);
    }

    Addr tableAddr = 0;
    std::uint64_t recordBytes = 0;
    ZipfianGenerator zipf;
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeNstoreYcsb(const WorkloadParams &params)
{
    return std::make_unique<NstoreYcsbWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
