/**
 * @file
 * Workload runner: drives a workload on a System, measures the
 * metrics the paper reports, and optionally injects a power failure
 * at a chosen operation.
 */

#ifndef DOLOS_WORKLOADS_RUNNER_HH
#define DOLOS_WORKLOADS_RUNNER_HH

#include <functional>
#include <optional>

#include "workloads/workload.hh"

namespace dolos::workloads
{

/** Measured outcome of a run. */
struct RunResult
{
    std::string workload;
    SecurityMode mode{};
    std::uint64_t transactions = 0;   ///< committed before any crash
    Tick setupCycles = 0;
    Tick runCycles = 0;               ///< excludes setup
    std::uint64_t instructions = 0;   ///< during the measured run
    double cpi = 0.0;
    double retriesPerKwr = 0.0;       ///< Table 2 metric
    std::uint64_t retryEvents = 0;
    std::uint64_t writeRequests = 0;
    std::uint64_t fenceStallCycles = 0;
    std::uint64_t wpqReadHits = 0;
    std::uint64_t coalesces = 0;
    bool crashed = false;             ///< crash was injected
    unsigned recoveryAttempts = 0;    ///< boots until recovery done
    bool verified = false;            ///< structure consistent after run
    std::string verifyDiagnostic;

    /** Cycles per committed transaction (speedup basis). */
    double
    cyclesPerTx() const
    {
        return transactions ? double(runCycles) / double(transactions)
                            : 0.0;
    }
};

/** Crash injection request. */
struct CrashPlan
{
    CrashPlan() = default;

    /** The common case: only a crash point, no hooks. */
    explicit CrashPlan(std::uint64_t at_op) : atOp(at_op) {}

    /** Power fails at the Nth environment operation of the run. */
    std::uint64_t atOp = 0;

    /**
     * Microstep crash: instead of counting environment operations,
     * arm the global crash-point registry (sim/crash_points.hh) to
     * fail power at this firing index, counted from the end of
     * setup. Power dies *inside* the persist path's security work —
     * mid BMT climb, at a drain elision, after a prefetch — rather
     * than between core operations. When set, atOp is ignored.
     */
    std::optional<std::uint64_t> atMicrostep;

    /**
     * eADR flush microstep: crash at atOp as usual, but arm the
     * crash-point registry at this firing index *counting from the
     * moment power dies* — the armed point then fires inside the
     * crash path itself (grace drains or the eADR holdup flush),
     * modeling the holdup energy dying during the power-fail flush.
     * The controller catches the throw internally and quarantines
     * whatever the truncated flush left behind. EadrSecure only.
     */
    std::optional<std::uint64_t> atFlushMicrostep;

    /**
     * Cold-boot hook: runs after the power failure (ADR dump done,
     * volatile state gone) and before recovery boots. Fault
     * injectors use it to tamper with the powered-off NVM image.
     */
    std::function<void(System &)> atPowerOff;

    /**
     * Compound failure: power dies *again* during recovery, after
     * this many interruptible recovery steps. The runner then keeps
     * power-cycling until recovery completes (see
     * SecureMemController::armRecoveryCrash).
     */
    std::optional<unsigned> recoveryCrashStep;
};

/**
 * Run @p workload on @p sys: setup, @p num_tx transactions, then
 * verification. With a CrashPlan, the run crashes at the chosen
 * point, recovers (transaction-log rollback included), and verifies
 * the recovered state.
 *
 * @param do_setup Pass false to continue a workload on a machine it
 *                 already populated (e.g., after a crash+recovery).
 */
RunResult runWorkload(System &sys, Workload &workload,
                      std::uint64_t num_tx,
                      std::optional<CrashPlan> crash = std::nullopt,
                      bool do_setup = true);

} // namespace dolos::workloads

#endif // DOLOS_WORKLOADS_RUNNER_HH
