/**
 * @file
 * Redis-style append-only store (WHISPER "redis" analogue).
 *
 * Writes append a record to a persistent append-only file (AOF) and
 * then transactionally advance the tail pointer and update the hash
 * index. The append itself needs no undo log — bytes beyond the
 * durable tail are garbage by definition — but it must be durable
 * *before* the metadata transaction makes it reachable, giving the
 * flush/fence/flush/fence rhythm characteristic of redis persistence.
 *
 * AOF record: { key(8) version(8) payload(txSize) }
 * Index     : open-addressed table of { key(8) recordAddr(8) }
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

class RedisWorkload : public Workload
{
  public:
    explicit RedisWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 13 + 5);
    }

    const char *name() const override { return "redis"; }

    void
    setup(PmemEnv &env) override
    {
        indexSlots = params.numKeys * 2;
        indexAddr = env.alloc(unsigned(indexSlots * 16), 64);
        tailPtrAddr = env.alloc(8, 8);

        // Reserve the AOF area up front (append space).
        recordBytes = 16 + params.txSize;
        const unsigned aof_bytes =
            unsigned(recordBytes * (params.numKeys + 70000));
        aofBase = env.alloc(aof_bytes, 64);
        env.write<Addr>(tailPtrAddr, aofBase);
        env.flush(tailPtrAddr, 8);
        env.fence();
        env.setRootPtr(0, indexAddr);
        env.setRootPtr(1, tailPtrAddr);
        env.setRootPtr(2, aofBase);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        const std::uint64_t key = rng.below(params.numKeys) + 1;
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            lookup(env, rng.below(params.numKeys) + 1);

        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};
        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        // 1. Durable AOF append beyond the current tail.
        const Addr tail = env.read<Addr>(tailPtrAddr);
        env.write<std::uint64_t>(tail, key);
        env.write<std::uint64_t>(tail + 8, next_version);
        env.writeBytes(tail + 16, payload.data(), params.txSize);
        env.flush(tail, unsigned(recordBytes));
        env.fence();

        // 2. Transactionally publish: tail pointer + index slot.
        TxContext tx(env);
        tx.write<Addr>(tailPtrAddr, tail + recordBytes);
        const Addr slot = findSlot(env, key);
        tx.write<std::uint64_t>(slot, key);
        tx.write<Addr>(slot + 8, tail);
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        indexAddr = env.rootPtr(0);
        tailPtrAddr = env.rootPtr(1);
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : expected) { // dolos-lint: allow(determinism)
            const bool ok =
                checkKey(env, key, version) ||
                (pending.active && pending.key == key &&
                 checkKey(env, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad entry for key " + std::to_string(key);
                return false;
            }
        }
        // Every indexed record must sit below the durable tail.
        const Addr tail = env.read<Addr>(tailPtrAddr);
        for (std::uint64_t s = 0; s < indexSlots; ++s) {
            const Addr rec = env.read<Addr>(indexAddr + s * 16 + 8);
            if (rec != 0 && rec >= tail) {
                if (why)
                    *why = "index references unpublished AOF bytes";
                return false;
            }
        }
        return true;
    }

  private:
    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    /** Index slot holding @p key, or the empty slot to claim. */
    Addr
    findSlot(PmemEnv &env, std::uint64_t key)
    {
        std::uint64_t h = key * 0x9E3779B97F4A7C15ULL % indexSlots;
        while (true) {
            const Addr slot = indexAddr + h * 16;
            const auto k = env.read<std::uint64_t>(slot);
            if (k == key || k == 0)
                return slot;
            h = (h + 1) % indexSlots;
        }
    }

    /** Record address for a present key, 0 otherwise. */
    Addr
    lookup(PmemEnv &env, std::uint64_t key)
    {
        const Addr slot = findSlot(env, key);
        if (env.read<std::uint64_t>(slot) != key)
            return 0;
        return env.read<Addr>(slot + 8);
    }

    bool
    checkKey(PmemEnv &env, std::uint64_t key, std::uint64_t version)
    {
        const Addr rec = lookup(env, key);
        if (rec == 0)
            return false;
        if (env.read<std::uint64_t>(rec) != key ||
            env.read<std::uint64_t>(rec + 8) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(rec + 16, payload.data(), params.txSize);
        return checkPayload(payload, key, version);
    }

    Addr indexAddr = 0;
    Addr tailPtrAddr = 0;
    Addr aofBase = 0;
    std::uint64_t indexSlots = 0;
    std::uint64_t recordBytes = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeRedis(const WorkloadParams &params)
{
    return std::make_unique<RedisWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
