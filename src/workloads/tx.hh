/**
 * @file
 * PMDK-style undo-log transactions.
 *
 * The persist-operation pattern is the one the paper's workloads
 * stress: every transactional write first appends an undo record
 * (old value) to a persistent log and makes it durable with
 * CLWB + SFENCE before the in-place update; commit flushes all dirty
 * data, fences, then durably marks the log inactive. A crash at any
 * point therefore leaves either (a) an inactive log — all committed
 * writes durable — or (b) an active log whose undo records roll the
 * partial transaction back at recovery.
 */

#ifndef DOLOS_WORKLOADS_TX_HH
#define DOLOS_WORKLOADS_TX_HH

#include <set>
#include <vector>

#include "workloads/pmem.hh"

namespace dolos::workloads
{

/**
 * One transaction. Construct to begin; commit() to end. If a crash
 * unwinds before commit, TxContext::recover() rolls back.
 */
class TxContext
{
  public:
    explicit TxContext(PmemEnv &env);
    ~TxContext();

    TxContext(const TxContext &) = delete;
    TxContext &operator=(const TxContext &) = delete;

    /** Transactional write: undo-log the range, then update it. */
    void write(Addr addr, const void *src, unsigned len);

    template <typename T>
    void
    write(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /**
     * Transactional write with eager persistence: the new data is
     * flushed and fenced immediately instead of at commit (the
     * fine-grained persist style of log-structured stores).
     */
    void writePersist(Addr addr, const void *src, unsigned len);

    /** Transactional allocation (the cursor is undo-logged). */
    Addr alloc(unsigned size, unsigned align = 8);

    /** Flush dirty data, fence, durably deactivate the log. */
    void commit();

    bool committed() const { return committed_; }

    /**
     * Boot-time log recovery: if the log is active, apply undo
     * records newest-first, then deactivate it.
     *
     * @return true if a partial transaction was rolled back.
     */
    static bool recover(PmemEnv &env);

  private:
    /** Log header layout at PmemLayout::txLogBase. */
    struct Header
    {
        std::uint64_t active;
        std::uint64_t numRecords;
    };

    /** Each record: addr(8) len(8) data(len, padded to 8). */
    static constexpr Addr recordBase =
        PmemLayout::txLogBase + sizeof(Header);

    void appendUndo(Addr addr, unsigned len);

    PmemEnv &env;
    Addr logCursor = recordBase;
    std::uint64_t numRecords = 0;
    std::set<Addr> dirtyBlocks;
    bool committed_ = false;
};

} // namespace dolos::workloads

#endif // DOLOS_WORKLOADS_TX_HH
