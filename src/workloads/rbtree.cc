/**
 * @file
 * Persistent red-black tree (WHISPER "rbtree" analogue).
 *
 * Classic CLRS insert with recoloring and rotations; every node
 * mutation runs through the undo log, so a transaction touching a
 * chain of ancestors during fixup produces the multi-line persist
 * bursts that make rbtree a demanding persistent workload.
 *
 * Node: { key(8) version(8) color(8) left(8) right(8) parent(8)
 *         payloadAddr(8) }
 */

#include <unordered_map>

#include "workloads/detail.hh"

namespace dolos::workloads
{

namespace
{

constexpr std::uint64_t red = 0;
constexpr std::uint64_t black = 1;
constexpr unsigned nodeBytes = 56;

struct F
{
    static Addr key(Addr n) { return n; }
    static Addr version(Addr n) { return n + 8; }
    static Addr color(Addr n) { return n + 16; }
    static Addr left(Addr n) { return n + 24; }
    static Addr right(Addr n) { return n + 32; }
    static Addr parent(Addr n) { return n + 40; }
    static Addr payload(Addr n) { return n + 48; }
};

class RbtreeWorkload : public Workload
{
  public:
    explicit RbtreeWorkload(const WorkloadParams &p) : Workload(p)
    {
        rng = Random(p.seed * 7 + 3);
    }

    const char *name() const override { return "rbtree"; }

    void
    setup(PmemEnv &env) override
    {
        rootPtrAddr = env.alloc(8, 8);
        env.write<Addr>(rootPtrAddr, 0);
        env.flush(rootPtrAddr, 8);
        env.fence();
        env.setRootPtr(0, rootPtrAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        const std::uint64_t key = rng.below(params.numKeys) + 1;
        for (unsigned r = 0; r < params.readsPerTx; ++r)
            find(env, rng.below(params.numKeys) + 1);

        const std::uint64_t next_version = versionFor(key) + 1;
        pending = {true, key, next_version};
        std::vector<std::uint8_t> payload(params.txSize);
        fillPayload(payload, key, next_version);

        TxContext tx(env);
        const Addr node = find(env, key);
        if (node != 0) {
            const Addr pa = env.read<Addr>(F::payload(node));
            tx.write<std::uint64_t>(F::version(node), next_version);
            writePayloadChunked(env, tx, pa, payload, 2,
                                params.thinkTime / 4);
        } else {
            insert(env, tx, key, next_version, payload);
        }
        tx.commit();
        expected[key] = next_version;
        pending.active = false;

        env.core().compute(params.thinkTime / 2);
        (void)idx;
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        rootPtrAddr = env.rootPtr(0);
        // Read-only membership sweep: every entry is checked and the
        // verdict is order-insensitive.
        for (const auto &[key, version] : expected) { // dolos-lint: allow(determinism)
            const Addr node = find(env, key);
            if (node == 0) {
                if (why)
                    *why = "committed key missing: " +
                           std::to_string(key);
                return false;
            }
            const bool ok =
                checkNode(env, node, key, version) ||
                (pending.active && pending.key == key &&
                 checkNode(env, node, key, pending.version));
            if (!ok) {
                if (why)
                    *why = "bad node for key " + std::to_string(key);
                return false;
            }
        }
        // Red-black invariants.
        const Addr root = env.read<Addr>(rootPtrAddr);
        if (root != 0 &&
            env.read<std::uint64_t>(F::color(root)) != black) {
            if (why)
                *why = "root is not black";
            return false;
        }
        int bh = -1;
        std::uint64_t last = 0;
        return checkInvariants(env, root, 0, bh, last, why);
    }

  private:
    std::uint64_t
    versionFor(std::uint64_t key) const
    {
        const auto it = expected.find(key);
        return it == expected.end() ? 0 : it->second;
    }

    Addr
    find(PmemEnv &env, std::uint64_t key)
    {
        Addr n = env.read<Addr>(rootPtrAddr);
        while (n != 0) {
            const auto k = env.read<std::uint64_t>(F::key(n));
            if (k == key)
                return n;
            n = env.read<Addr>(key < k ? F::left(n) : F::right(n));
        }
        return 0;
    }

    /** @{ Transactional pointer helpers. */
    Addr
    get(PmemEnv &env, Addr field)
    {
        return field == 0 ? 0 : env.read<Addr>(field);
    }

    void
    setChild(PmemEnv &env, TxContext &tx, Addr parent, bool left,
             Addr child)
    {
        if (parent == 0)
            tx.write<Addr>(rootPtrAddr, child);
        else
            tx.write<Addr>(left ? F::left(parent) : F::right(parent),
                           child);
        if (child != 0)
            tx.write<Addr>(F::parent(child), parent);
        (void)env;
    }
    /** @} */

    void
    rotate(PmemEnv &env, TxContext &tx, Addr x, bool left_rotate)
    {
        const Addr y = env.read<Addr>(left_rotate ? F::right(x)
                                                  : F::left(x));
        const Addr beta = env.read<Addr>(left_rotate ? F::left(y)
                                                     : F::right(y));
        const Addr xp = env.read<Addr>(F::parent(x));
        const bool x_was_left =
            xp != 0 && env.read<Addr>(F::left(xp)) == x;

        // x's subtree slot gets beta.
        tx.write<Addr>(left_rotate ? F::right(x) : F::left(x), beta);
        if (beta != 0)
            tx.write<Addr>(F::parent(beta), x);

        // y replaces x under xp.
        setChild(env, tx, xp, x_was_left, y);

        // x becomes y's child.
        tx.write<Addr>(left_rotate ? F::left(y) : F::right(y), x);
        tx.write<Addr>(F::parent(x), y);
    }

    void
    insert(PmemEnv &env, TxContext &tx, std::uint64_t key,
           std::uint64_t version,
           const std::vector<std::uint8_t> &payload)
    {
        const Addr pa = tx.alloc(params.txSize, 8);
        writePayloadChunked(env, tx, pa, payload, 2,
                                params.thinkTime / 4);
        const Addr z = tx.alloc(nodeBytes, 8);
        tx.write<std::uint64_t>(F::key(z), key);
        tx.write<std::uint64_t>(F::version(z), version);
        tx.write<std::uint64_t>(F::color(z), red);
        tx.write<Addr>(F::left(z), 0);
        tx.write<Addr>(F::right(z), 0);
        tx.write<Addr>(F::payload(z), pa);

        // BST insert.
        Addr parent = 0;
        bool as_left = false;
        Addr cur = env.read<Addr>(rootPtrAddr);
        while (cur != 0) {
            parent = cur;
            const auto k = env.read<std::uint64_t>(F::key(cur));
            as_left = key < k;
            cur = env.read<Addr>(as_left ? F::left(cur) : F::right(cur));
        }
        setChild(env, tx, parent, as_left, z);

        // CLRS fixup.
        Addr node = z;
        while (true) {
            const Addr p = get(env, F::parent(node));
            if (p == 0 ||
                env.read<std::uint64_t>(F::color(p)) == black)
                break;
            const Addr g = env.read<Addr>(F::parent(p));
            const bool p_is_left = env.read<Addr>(F::left(g)) == p;
            const Addr uncle =
                env.read<Addr>(p_is_left ? F::right(g) : F::left(g));
            if (uncle != 0 &&
                env.read<std::uint64_t>(F::color(uncle)) == red) {
                tx.write<std::uint64_t>(F::color(p), black);
                tx.write<std::uint64_t>(F::color(uncle), black);
                tx.write<std::uint64_t>(F::color(g), red);
                node = g;
                continue;
            }
            const bool node_is_left =
                env.read<Addr>(F::left(p)) == node;
            if (p_is_left != node_is_left) {
                // Inner case: rotate parent toward the outside.
                rotate(env, tx, p, p_is_left);
                node = p;
                continue;
            }
            // Outer case: recolor and rotate the grandparent.
            tx.write<std::uint64_t>(
                F::color(env.read<Addr>(F::parent(node))), black);
            tx.write<std::uint64_t>(F::color(g), red);
            rotate(env, tx, g, !p_is_left);
            break;
        }
        const Addr root = env.read<Addr>(rootPtrAddr);
        tx.write<std::uint64_t>(F::color(root), black);
    }

    bool
    checkNode(PmemEnv &env, Addr node, std::uint64_t key,
              std::uint64_t version)
    {
        if (env.read<std::uint64_t>(F::version(node)) != version)
            return false;
        std::vector<std::uint8_t> payload(params.txSize);
        env.readBytes(env.read<Addr>(F::payload(node)), payload.data(),
                      params.txSize);
        return checkPayload(payload, key, version);
    }

    /**
     * BST order, no red-red edges, equal black heights.
     *
     * @param bh In/out reference black-height (-1 until first leaf).
     */
    bool
    checkInvariants(PmemEnv &env, Addr n, int black_depth, int &bh,
                    std::uint64_t &last, std::string *why)
    {
        if (n == 0) {
            if (bh == -1)
                bh = black_depth;
            if (bh != black_depth) {
                if (why)
                    *why = "unequal black heights";
                return false;
            }
            return true;
        }
        const auto color = env.read<std::uint64_t>(F::color(n));
        if (color == red) {
            for (const Addr c : {env.read<Addr>(F::left(n)),
                                 env.read<Addr>(F::right(n))}) {
                if (c != 0 &&
                    env.read<std::uint64_t>(F::color(c)) == red) {
                    if (why)
                        *why = "red-red violation";
                    return false;
                }
            }
        }
        const int bd = black_depth + (color == black ? 1 : 0);
        if (!checkInvariants(env, env.read<Addr>(F::left(n)), bd, bh,
                             last, why))
            return false;
        const auto k = env.read<std::uint64_t>(F::key(n));
        if (k <= last) {
            if (why)
                *why = "BST order violation";
            return false;
        }
        last = k;
        return checkInvariants(env, env.read<Addr>(F::right(n)), bd, bh,
                               last, why);
    }

    Addr rootPtrAddr = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> expected;
    detail::PendingOp pending;
};

} // namespace

namespace detail
{

std::unique_ptr<Workload>
makeRbtree(const WorkloadParams &params)
{
    return std::make_unique<RbtreeWorkload>(params);
}

} // namespace detail

} // namespace dolos::workloads
