// Planted violation [manifest]: 'left_out' is tagged in the class
// body but never registered by stateManifest().

class FixtureMissingField
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int covered = 0;
    int left_out = 0;

    DOLOS_STATE_CLASS(FixtureMissingField);
    DOLOS_PERSISTENT(covered);
    DOLOS_PERSISTENT(left_out);
};

persist::StateManifest
FixtureMissingField::stateManifest() const
{
    persist::StateManifest m("FixtureMissingField");
    DOLOS_MF_P(m, covered);
    return m;
}
