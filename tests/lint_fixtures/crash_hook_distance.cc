// Planted crash-cover violation: a persistent-state mutation inside
// a drain function sits more than one statement from the nearest
// DOLOS_CRASH_POINT hook, so the microstep sweep cannot bracket it.

#define DOLOS_CRASH_POINT(step) (void)0

namespace fixture
{

struct Engine
{
    int secureWrite(int addr) { return addr; }
    int writeCiphertext(int addr) { return addr; }
};

enum class Step
{
    DrainIssue,
    NumSteps,
};

int
drainEntry(Engine &engine)
{
    DOLOS_CRASH_POINT(DrainIssue);
    const int a = engine.secureWrite(1); // ok: adjacent to the hook
    int pad1 = a + 1;
    int pad2 = pad1 + 1;
    return engine.writeCiphertext(pad2); // violation: 3 stmts away
}

} // namespace fixture
