// Planted determinism violation: host entropy via rand() instead of
// the seeded dolos::Random streams. The member call named rand and
// the suppressed call must NOT be flagged.

#include <cstdlib>

namespace fixture
{

struct OwnRng
{
    int rand() { return 4; }
};

int
episodeSeed()
{
    OwnRng rng;
    const int member = rng.rand(); // ok: member, not host entropy
    const int allowed = std::rand(); // dolos-lint: allow(determinism)
    return member + allowed + std::rand(); // violation
}

} // namespace fixture
