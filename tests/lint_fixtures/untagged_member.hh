// Planted violation [state-class]: member 'untagged' of a state
// class carries no DOLOS_PERSISTENT / DOLOS_VOLATILE annotation.

class FixtureUntagged
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int tagged = 0;
    int untagged = 0;

    DOLOS_STATE_CLASS(FixtureUntagged);
    DOLOS_PERSISTENT(tagged);
};

persist::StateManifest
FixtureUntagged::stateManifest() const
{
    persist::StateManifest m("FixtureUntagged");
    DOLOS_MF_P(m, tagged);
    return m;
}
