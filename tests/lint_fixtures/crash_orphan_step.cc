// Planted crash-cover violation: the Step taxonomy registers two
// steps but only one has a DOLOS_CRASH_POINT hook site — the sweep
// could never land on the orphan.

#define DOLOS_CRASH_POINT(step) (void)0

namespace fixture
{

enum class Step
{
    HookedStep,
    OrphanStep, // violation: no hook anywhere
    NumSteps,
};

void
persistPath()
{
    DOLOS_CRASH_POINT(HookedStep);
}

} // namespace fixture
