// Planted violations [prof-scope]: one DOLOS_PROF_SCOPE naming a
// component that is not in prof::Comp, one passing the wrong arity
// (plus a correct site that must NOT be flagged).

void
fixtureProfScope()
{
    DOLOS_PROF_SCOPE(Aes);
    DOLOS_PROF_SCOPE(AesEngine);
    DOLOS_PROF_SCOPE(Mac, Sha);
}
