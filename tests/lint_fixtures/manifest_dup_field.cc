// Planted violation [manifest]: stateManifest() registers the same
// field twice.

class FixtureDupField
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int field = 0;

    DOLOS_STATE_CLASS(FixtureDupField);
    DOLOS_PERSISTENT(field);
};

persist::StateManifest
FixtureDupField::stateManifest() const
{
    persist::StateManifest m("FixtureDupField");
    DOLOS_MF_P(m, field);
    DOLOS_MF_P(m, field);
    return m;
}
