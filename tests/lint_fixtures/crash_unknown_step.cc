// Planted crash-cover violation: a DOLOS_CRASH_POINT hook names a
// step the Step taxonomy never registered — the sweep enumerates it
// from the enum, so the hook is unreachable by any armed plan.

#define DOLOS_CRASH_POINT(step) (void)0

namespace fixture
{

enum class Step
{
    RealStep,
    NumSteps,
};

void
persistPath()
{
    DOLOS_CRASH_POINT(RealStep);
    DOLOS_CRASH_POINT(GhostStep); // violation: not a Step member
}

} // namespace fixture
