// Planted violation [manifest]: the header tags 'cursor' volatile
// but the manifest registers it persistent.

class FixtureKind
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int cursor = 0;

    DOLOS_STATE_CLASS(FixtureKind);
    DOLOS_VOLATILE(cursor);
};

persist::StateManifest
FixtureKind::stateManifest() const
{
    persist::StateManifest m("FixtureKind");
    DOLOS_MF_P(m, cursor);
    return m;
}
