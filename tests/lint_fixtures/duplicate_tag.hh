// Planted violation [state-class]: 'field' is annotated twice.

class FixtureDupTag
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int field = 0;

    DOLOS_STATE_CLASS(FixtureDupTag);
    DOLOS_PERSISTENT(field);
    DOLOS_VOLATILE(field);
};

persist::StateManifest
FixtureDupTag::stateManifest() const
{
    persist::StateManifest m("FixtureDupTag");
    DOLOS_MF_P(m, field);
    return m;
}
