// Planted violation [manifest]: a state class with no
// stateManifest() definition anywhere.

class FixtureNoManifest
{
  private:
    int field = 0;

    DOLOS_STATE_CLASS(FixtureNoManifest);
    DOLOS_PERSISTENT(field);
};
