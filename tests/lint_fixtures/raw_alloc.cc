// Planted violation [raw-alloc]: one raw allocation that must be
// flagged, and one carrying the suppression comment that must NOT
// be (so the run ends with exactly 1 violation).

void
fixtureAlloc()
{
    int *leaked = new int(7);
    void *arena = malloc(64); // dolos-lint: allow(raw-alloc)
    use(leaked, arena);
}
