// Planted thread-shared violations: a namespace-scope mutable global
// and a function-local static, both unannotated. The annotated and
// immutable neighbors must NOT be flagged.

#include "sim/thread_annotations.hh"

namespace fixture
{

int unannotated_counter = 0; // violation: no annotation

DOLOS_THREAD_LOCAL_OK; // CLI global written before workers start
int annotated_ok = 0;

DOLOS_THREAD_SHARED(fixtureMutex);
int annotated_shared = 0;

const int immutable = 3;
constexpr int compile_time = 4;
thread_local int per_thread = 5;

int
bump()
{
    static int calls = 0; // violation: unannotated static local
    static const int base = 10;
    return ++calls + base + unannotated_counter + annotated_ok +
           annotated_shared + immutable + compile_time + per_thread;
}

} // namespace fixture
