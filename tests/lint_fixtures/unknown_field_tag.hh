// Planted violation [state-class]: the tag names a member 'ghost'
// that the class does not declare.

class FixtureGhostTag
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int real = 0;

    DOLOS_STATE_CLASS(FixtureGhostTag);
    DOLOS_PERSISTENT(real);
    DOLOS_PERSISTENT(ghost);
};

persist::StateManifest
FixtureGhostTag::stateManifest() const
{
    persist::StateManifest m("FixtureGhostTag");
    DOLOS_MF_P(m, real);
    DOLOS_MF_P(m, ghost);
    return m;
}
