// Planted violation [manifest]: the header tags 'lines' as
// eadr-flushed (inside the eADR persistence domain, drained by the
// holdup flush) but the manifest registers it persistent.

class FixtureEadrKind
{
  public:
    persist::StateManifest stateManifest() const;

  private:
    int lines = 0;

    DOLOS_STATE_CLASS(FixtureEadrKind);
    DOLOS_EADR_FLUSHED(lines);
};

persist::StateManifest
FixtureEadrKind::stateManifest() const
{
    persist::StateManifest m("FixtureEadrKind");
    DOLOS_MF_P(m, lines);
    return m;
}
