// Planted violation [stat-name]: two statistics registered on the
// same group with the same name (the runtime only panics when this
// constructor actually runs).

FixtureStats::FixtureStats()
{
    stats_.addScalar(&statHits, "hits", "cache hits");
    stats_.addAverage(&statLatency, "latency", "per-op latency");
    stats_.addScalar(&statMisses, "hits", "oops: name collision");
}
