// Planted violation [state-class]: 'NvmDevice' is on the built-in
// crash-relevant class list, so defining it without a
// DOLOS_STATE_CLASS marker must be flagged.

class NvmDevice
{
  private:
    int banks = 0;
};
