// Planted violation [trace-arity]: DOLOS_TRACE takes exactly
// (stage, start, end, addr, id); this site forgot the id.

void
fixtureTrace(Tick start, Tick end, Addr addr)
{
    DOLOS_TRACE(trace::Stage::NvmWrite, start, end, addr, 0);
    DOLOS_TRACE(trace::Stage::NvmRead, start, end, addr);
}
