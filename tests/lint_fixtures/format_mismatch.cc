// Planted violations [format]: conversion/argument count mismatches
// in printf-family and logging calls (plus one correct call that
// must NOT be flagged).

void
fixtureFormat(unsigned n, const char *name)
{
    std::printf("ok: %u ops on %s\n", n, name);
    std::printf("missing arg: %u ops on %s\n", n);
    warn("too many args: %u\n", n, name);
    DOLOS_ASSERT(n > 0, "n was %u for %s", n);
}
