// Planted determinism violation: range-for over an unordered
// container feeding accumulation — iteration order is
// host-dependent. The ordered-map loop must NOT be flagged.

#include <cstdint>
#include <map>
#include <unordered_map>

namespace fixture
{

struct Tracker
{
    std::unordered_map<std::uint64_t, int> dirty;
    std::map<std::uint64_t, int> ordered;

    int
    drainAll()
    {
        int sum = 0;
        for (const auto &[addr, v] : ordered) // ok: sorted by key
            sum += int(addr) + v;
        for (const auto &[addr, v] : dirty) // violation
            sum += int(addr) * v;
        return sum;
    }
};

} // namespace fixture
