/**
 * @file
 * Cache hierarchy tests: load/store semantics, CLWB, crash loss.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "tests/mem/fake_memory.hh"

namespace
{

using namespace dolos;
using dolos::test::FakeMemory;

HierarchyParams
tinyHierarchy()
{
    HierarchyParams p;
    p.l1 = {"l1", 512, 2, 2};
    p.l2 = {"l2", 2048, 4, 20};
    p.llc = {"llc", 8192, 8, 32};
    return p;
}

struct HierarchyTest : ::testing::Test
{
    FakeMemory mem{600};
    CacheHierarchy h{tinyHierarchy(), mem};
};

TEST_F(HierarchyTest, StoreThenLoadRoundTrips)
{
    const std::uint64_t v = 0xABCDEF0123456789ULL;
    h.store(0x100, &v, sizeof(v), 0);
    std::uint64_t out = 0;
    h.load(0x100, &out, sizeof(out), 100);
    EXPECT_EQ(out, v);
}

TEST_F(HierarchyTest, LoadMissGoesToMemoryOnce)
{
    std::uint8_t buf[8];
    h.load(0x200, buf, 8, 0);
    h.load(0x208, buf, 8, 1000);
    EXPECT_EQ(mem.numReads, 1u);
}

TEST_F(HierarchyTest, L1HitLatency)
{
    std::uint8_t buf[8];
    h.load(0x0, buf, 8, 0);              // miss, fills
    const Tick t = h.load(0x0, buf, 8, 10000);
    EXPECT_EQ(t, 10000u + 2u);           // L1 latency only
}

TEST_F(HierarchyTest, MissLatencyIncludesAllLevels)
{
    std::uint8_t buf[8];
    const Tick t = h.load(0x0, buf, 8, 0);
    // L1 (2) + L2 (20) + LLC (32) + memory (600).
    EXPECT_EQ(t, 2u + 20u + 32u + 600u);
}

TEST_F(HierarchyTest, CrossBlockLoadTouchesBothBlocks)
{
    std::uint16_t v = 0xBEEF;
    h.store(0x3E, &v, 2, 0); // spans blocks 0x00 and 0x40
    std::uint16_t out = 0;
    h.load(0x3E, &out, 2, 1000);
    EXPECT_EQ(out, 0xBEEF);
}

TEST_F(HierarchyTest, ClwbPersistsNewestData)
{
    const std::uint64_t v = 42;
    h.store(0x80, &v, sizeof(v), 0);
    const PersistTicket t = h.clwb(0x80, 100);
    EXPECT_GT(t.persistTick, 100u);
    EXPECT_EQ(mem.numPersists, 1u);
    EXPECT_EQ(loadWord(mem.store.read(0x80), 0), 42u);
}

TEST_F(HierarchyTest, ClwbLeavesLineCachedClean)
{
    const std::uint64_t v = 43;
    h.store(0x80, &v, sizeof(v), 0);
    h.clwb(0x80, 100);
    EXPECT_TRUE(h.l1().probe(0x80));
    std::uint64_t out = 0;
    const Tick t = h.load(0x80, &out, 8, 1000);
    EXPECT_EQ(out, 43u);
    EXPECT_EQ(t, 1002u); // still an L1 hit
    // Clean now: invalidation does not lose it from NVM's view.
    h.invalidateAll();
    EXPECT_EQ(loadWord(mem.store.read(0x80), 0), 43u);
}

TEST_F(HierarchyTest, ClwbOfAbsentLineQueriesPendingPersists)
{
    const PersistTicket t = h.clwb(0x5000, 100);
    EXPECT_EQ(mem.numPersists, 0u);
    EXPECT_EQ(mem.numPendingQueries, 1u);
    EXPECT_EQ(t.persistTick, 100u + 2u);
}

TEST_F(HierarchyTest, ClwbOfCleanLineDoesNotRewrite)
{
    std::uint8_t buf[8];
    h.load(0x80, buf, 8, 0);
    h.clwb(0x80, 100);
    EXPECT_EQ(mem.numPersists, 0u);
}

TEST_F(HierarchyTest, DirtyDataLostOnCrashWithoutClwb)
{
    const std::uint64_t v = 0x1111;
    h.store(0x140, &v, sizeof(v), 0);
    h.invalidateAll();
    EXPECT_EQ(mem.store.read(0x140), zeroBlock());
    std::uint64_t out = 0xFF;
    h.load(0x140, &out, 8, 1000);
    EXPECT_EQ(out, 0u);
}

TEST_F(HierarchyTest, RepeatedStoresStayCoherentThroughEvictions)
{
    // Write more set-conflicting blocks than L1+L2 can hold, then
    // verify every value survives via LLC/memory.
    constexpr int n = 64;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t v = 0x9000 + i;
        h.store(Addr(i) * 0x200, &v, sizeof(v), Tick(i) * 10);
    }
    for (int i = 0; i < n; ++i) {
        std::uint64_t out = 0;
        h.load(Addr(i) * 0x200, &out, 8, 100000 + Tick(i) * 10);
        EXPECT_EQ(out, std::uint64_t(0x9000 + i)) << i;
    }
}

TEST_F(HierarchyTest, ClwbAfterPartialEvictionStillPersistsNewest)
{
    // Dirty a line, force it down to L2 by thrashing L1's set, then
    // CLWB must still find and persist the newest data.
    const std::uint64_t v = 0x7777;
    h.store(0x0, &v, sizeof(v), 0);
    // L1: 512B, 2-way, 4 sets => set stride 0x100.
    std::uint8_t buf[8];
    h.load(0x400, buf, 8, 100);
    h.load(0x800, buf, 8, 200); // 0x0 evicted from L1 into L2
    h.clwb(0x0, 300);
    EXPECT_EQ(loadWord(mem.store.read(0x0), 0), 0x7777u);
}

} // namespace
