/**
 * @file
 * BackingStore unit tests.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace
{

using namespace dolos;

TEST(BackingStore, UntouchedBlocksReadZero)
{
    BackingStore bs;
    EXPECT_EQ(bs.read(0x1000), zeroBlock());
    EXPECT_FALSE(bs.contains(0x1000));
    EXPECT_EQ(bs.numBlocks(), 0u);
}

TEST(BackingStore, WriteThenReadRoundTrips)
{
    BackingStore bs;
    Block b{};
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(i);
    bs.write(0x40, b);
    EXPECT_EQ(bs.read(0x40), b);
    EXPECT_TRUE(bs.contains(0x40));
    EXPECT_TRUE(bs.contains(0x7F)); // same block
    EXPECT_EQ(bs.numBlocks(), 1u);
}

TEST(BackingStore, BlocksAreIndependent)
{
    BackingStore bs;
    Block a{}, b{};
    a[0] = 1;
    b[0] = 2;
    bs.write(0x0, a);
    bs.write(0x40, b);
    EXPECT_EQ(bs.read(0x0)[0], 1);
    EXPECT_EQ(bs.read(0x40)[0], 2);
}

TEST(BackingStore, ClearForgetsEverything)
{
    BackingStore bs;
    Block b{};
    b[5] = 9;
    bs.write(0x80, b);
    bs.clear();
    EXPECT_EQ(bs.read(0x80), zeroBlock());
    EXPECT_EQ(bs.numBlocks(), 0u);
}

TEST(BackingStoreDeath, UnalignedAccessPanics)
{
    BackingStore bs;
    Block b{};
    EXPECT_DEATH(bs.write(0x41, b), "unaligned");
    EXPECT_DEATH((void)bs.read(0x3F), "unaligned");
}

TEST(BackingStore, WordHelpersRoundTrip)
{
    Block b{};
    storeWord(b, 8, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(loadWord(b, 8), 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(loadWord(b, 0), 0u);
}

} // namespace
