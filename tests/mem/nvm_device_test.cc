/**
 * @file
 * NVM device timing and functional tests.
 */

#include <gtest/gtest.h>

#include "mem/nvm_device.hh"

namespace
{

using namespace dolos;

NvmParams
paperParams()
{
    NvmParams p;
    p.readLatency = 600;
    p.writeLatency = 2000;
    p.numBanks = 8;
    return p;
}

NvmParams
fifoParams()
{
    auto p = paperParams();
    p.readPriority = false;
    return p;
}

TEST(NvmDevice, ReadLatencyOnIdleBank)
{
    NvmDevice nvm(paperParams());
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 100u + 600u);
}

TEST(NvmDevice, WriteLatencyOnIdleBank)
{
    NvmDevice nvm(paperParams());
    Block b{};
    EXPECT_EQ(nvm.write(0x0, b, 50), 50u + 2000u);
}

TEST(NvmDevice, SameBankAccessesSerialize)
{
    NvmDevice nvm(paperParams());
    Block b{};
    // Bank stride is numBanks * blockSize.
    const Addr same_bank = 8 * 64;
    const Tick t1 = nvm.write(0x0, b, 0);
    EXPECT_EQ(t1, 2000u);
    const Tick t2 = nvm.write(same_bank, b, 0);
    EXPECT_EQ(t2, 4000u);
}

TEST(NvmDevice, DifferentBanksOverlap)
{
    NvmDevice nvm(paperParams());
    Block b{};
    EXPECT_EQ(nvm.write(0 * 64, b, 0), 2000u);
    EXPECT_EQ(nvm.write(1 * 64, b, 0), 2000u);
    EXPECT_EQ(nvm.write(7 * 64, b, 0), 2000u);
}

TEST(NvmDevice, DataPersistsFunctionally)
{
    NvmDevice nvm(paperParams());
    Block b{};
    b[3] = 0x77;
    nvm.write(0x1000, b, 0);
    EXPECT_EQ(nvm.read(0x1000, 5000).data[3], 0x77);
    EXPECT_EQ(nvm.readFunctional(0x1000)[3], 0x77);
}

TEST(NvmDevice, FunctionalWriteHasNoTimingEffect)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.writeFunctional(0x0, b);
    EXPECT_EQ(nvm.bankFreeAt(0x0), 0u);
    const auto r = nvm.read(0x0, 0);
    EXPECT_EQ(r.completeTick, 600u);
}

TEST(NvmDevice, FifoReadAfterWriteOnSameBankWaits)
{
    NvmDevice nvm(fifoParams());
    Block b{};
    nvm.write(0x0, b, 0); // bank busy until 2000
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 2000u + 600u);
}

TEST(NvmDevice, ReadPriorityBypassesBufferedWrites)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.write(0x0, b, 0);
    nvm.write(8 * 64, b, 0); // same bank, queued
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 100u + 600u);
    // Reads still serialize against each other per bank.
    const auto r2 = nvm.read(8 * 64, 100);
    EXPECT_EQ(r2.completeTick, 100u + 600u + 600u);
}

TEST(NvmDevice, StatsCount)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.write(0x0, b, 0);
    nvm.read(0x40, 0);
    nvm.read(0x80, 0);
    EXPECT_EQ(nvm.writes(), 1u);
    EXPECT_EQ(nvm.reads(), 2u);
}

} // namespace
