/**
 * @file
 * NVM device timing and functional tests.
 */

#include <gtest/gtest.h>

#include "mem/nvm_device.hh"

namespace
{

using namespace dolos;

NvmParams
paperParams()
{
    NvmParams p;
    p.readLatency = 600;
    p.writeLatency = 2000;
    p.numBanks = 8;
    return p;
}

NvmParams
fifoParams()
{
    auto p = paperParams();
    p.readPriority = false;
    return p;
}

TEST(NvmDevice, ReadLatencyOnIdleBank)
{
    NvmDevice nvm(paperParams());
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 100u + 600u);
}

TEST(NvmDevice, WriteLatencyOnIdleBank)
{
    NvmDevice nvm(paperParams());
    Block b{};
    EXPECT_EQ(nvm.write(0x0, b, 50), 50u + 2000u);
}

TEST(NvmDevice, SameBankAccessesSerialize)
{
    NvmDevice nvm(paperParams());
    Block b{};
    // Bank stride is numBanks * blockSize.
    const Addr same_bank = 8 * 64;
    const Tick t1 = nvm.write(0x0, b, 0);
    EXPECT_EQ(t1, 2000u);
    const Tick t2 = nvm.write(same_bank, b, 0);
    EXPECT_EQ(t2, 4000u);
}

TEST(NvmDevice, DifferentBanksOverlap)
{
    NvmDevice nvm(paperParams());
    Block b{};
    EXPECT_EQ(nvm.write(0 * 64, b, 0), 2000u);
    EXPECT_EQ(nvm.write(1 * 64, b, 0), 2000u);
    EXPECT_EQ(nvm.write(7 * 64, b, 0), 2000u);
}

TEST(NvmDevice, DataPersistsFunctionally)
{
    NvmDevice nvm(paperParams());
    Block b{};
    b[3] = 0x77;
    nvm.write(0x1000, b, 0);
    EXPECT_EQ(nvm.read(0x1000, 5000).data[3], 0x77);
    EXPECT_EQ(nvm.readFunctional(0x1000)[3], 0x77);
}

TEST(NvmDevice, FunctionalWriteHasNoTimingEffect)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.writeFunctional(0x0, b);
    EXPECT_EQ(nvm.bankFreeAt(0x0), 0u);
    const auto r = nvm.read(0x0, 0);
    EXPECT_EQ(r.completeTick, 600u);
}

TEST(NvmDevice, FifoReadAfterWriteOnSameBankWaits)
{
    NvmDevice nvm(fifoParams());
    Block b{};
    nvm.write(0x0, b, 0); // bank busy until 2000
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 2000u + 600u);
}

TEST(NvmDevice, ReadPriorityBypassesBufferedWrites)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.write(0x0, b, 0);
    nvm.write(8 * 64, b, 0); // same bank, queued
    const auto r = nvm.read(0x0, 100);
    EXPECT_EQ(r.completeTick, 100u + 600u);
    // Reads still serialize against each other per bank.
    const auto r2 = nvm.read(8 * 64, 100);
    EXPECT_EQ(r2.completeTick, 100u + 600u + 600u);
}

TEST(NvmDevice, StatsCount)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.write(0x0, b, 0);
    nvm.read(0x40, 0);
    nvm.read(0x80, 0);
    EXPECT_EQ(nvm.writes(), 1u);
    EXPECT_EQ(nvm.reads(), 2u);
}

TEST(NvmMediaFaults, TransientFlipFiresOnceThenHeals)
{
    NvmDevice nvm(paperParams());
    Block b{};
    b[2] = 0xA5;
    nvm.write(0x1000, b, 0);

    nvm.injectTransientFlip(0x1000, 16); // bit 0 of byte 2
    const auto faulty = nvm.read(0x1000, 5000);
    EXPECT_TRUE(nvm.lastReadMediaError());
    EXPECT_EQ(faulty.data[2], 0xA5 ^ 0x01);

    // One-shot: the retry sees pristine data and a clean flag.
    const auto retry = nvm.read(0x1000, 9000);
    EXPECT_FALSE(nvm.lastReadMediaError());
    EXPECT_EQ(retry.data[2], 0xA5);
    EXPECT_EQ(nvm.mediaErrorReads(), 1u);
}

TEST(NvmMediaFaults, StuckBitPersistsAndAlwaysFlags)
{
    NvmDevice nvm(paperParams());
    Block b{};
    nvm.write(0x2000, b, 0);

    nvm.injectStuckBit(0x2000, 9, true); // bit 1 of byte 1 pinned high
    for (int i = 0; i < 3; ++i) {
        const auto r = nvm.read(0x2000, 5000 + i * 1000);
        EXPECT_TRUE(nvm.lastReadMediaError()) << "read " << i;
        EXPECT_EQ(r.data[1], 0x02) << "read " << i;
    }
    // Rewriting does not repair a worn cell.
    Block fresh{};
    nvm.write(0x2000, fresh, 20000);
    EXPECT_EQ(nvm.read(0x2000, 30000).data[1], 0x02);
    EXPECT_TRUE(nvm.hasUnhealableFault(0x2000));
    EXPECT_FALSE(nvm.hasUnhealableFault(0x1000));
}

TEST(NvmMediaFaults, WriteFailSuppressesCommitThenRecovers)
{
    NvmDevice nvm(paperParams());
    Block before{};
    before[0] = 0x11;
    nvm.write(0x3000, before, 0);

    nvm.injectWriteFail(0x3000, 2);
    Block after{};
    after[0] = 0x22;
    nvm.write(0x3000, after, 5000);
    EXPECT_TRUE(nvm.lastWriteMediaError());
    EXPECT_EQ(nvm.readFunctional(0x3000)[0], 0x11) << "write committed";
    nvm.write(0x3000, after, 9000);
    EXPECT_TRUE(nvm.lastWriteMediaError());

    // Budget exhausted: the third attempt lands.
    nvm.write(0x3000, after, 13000);
    EXPECT_FALSE(nvm.lastWriteMediaError());
    EXPECT_EQ(nvm.readFunctional(0x3000)[0], 0x22);
    EXPECT_EQ(nvm.mediaErrorWrites(), 2u);
}

TEST(NvmMediaFaults, FunctionalAccessesBypassTheFaultModel)
{
    NvmDevice nvm(paperParams());
    Block b{};
    b[0] = 0x3C;
    nvm.write(0x4000, b, 0);
    nvm.injectTransientFlip(0x4000, 0);
    nvm.injectStuckBit(0x4000, 8, true);

    // Functional (debug/recovery) reads see raw stored bytes and do
    // not consume the one-shot flip or raise flags.
    EXPECT_EQ(nvm.readFunctional(0x4000)[0], 0x3C);
    EXPECT_EQ(nvm.readFunctional(0x4000)[1], 0x00);
    EXPECT_FALSE(nvm.lastReadMediaError());

    // The timed path still sees both faults afterwards: the one-shot
    // flip on bit 0 of byte 0, the stuck cell at bit 0 of byte 1.
    const auto r = nvm.read(0x4000, 5000);
    EXPECT_TRUE(nvm.lastReadMediaError());
    EXPECT_EQ(r.data[0], 0x3C ^ 0x01);
    EXPECT_EQ(r.data[1], 0x01);
}

TEST(NvmMediaFaults, ReadFunctionalCheckedSeesTheFaultModel)
{
    // Recovery and scrub read through readFunctionalChecked: not
    // timed, but they must observe (and get to disambiguate) the same
    // cell wear a demand read would.
    NvmDevice nvm(paperParams());
    Block b{};
    b[0] = 0x0F;
    nvm.write(0x7000, b, 0);
    nvm.injectStuckBit(0x7000, 4, true); // bit 4 of byte 0

    const Block checked = nvm.readFunctionalChecked(0x7000);
    EXPECT_TRUE(nvm.lastReadMediaError());
    EXPECT_EQ(checked[0], 0x1F);
    // The raw functional path still bypasses the fault model.
    EXPECT_EQ(nvm.readFunctional(0x7000)[0], 0x0F);
}

TEST(NvmMediaFaults, RemapToSpareRetiresTheWornRow)
{
    auto p = paperParams();
    p.spareBlocks = 1;
    NvmDevice nvm(p);
    Block b{};
    b[1] = 0x5A;
    nvm.write(0x8000, b, 0);
    nvm.injectStuckBit(0x8000, 8, false); // pin bit 0 of byte 1 low
    nvm.injectWriteFail(0x8000, 4);
    ASSERT_EQ(nvm.sparesLeft(), 1u);

    // The remapped frame is a healthy row: all pending faults gone.
    EXPECT_TRUE(nvm.remapToSpare(0x8000, "worn counter frame"));
    EXPECT_EQ(nvm.sparesLeft(), 0u);
    EXPECT_FALSE(nvm.hasUnhealableFault(0x8000));
    nvm.readFunctionalChecked(0x8000);
    EXPECT_FALSE(nvm.lastReadMediaError());
    ASSERT_EQ(nvm.remapLog().size(), 1u);
    EXPECT_EQ(nvm.remapLog().front().addr, 0x8000u);
    EXPECT_EQ(nvm.remapLog().front().reason, "worn counter frame");

    // Spares exhausted: the next worn frame cannot be remapped.
    nvm.injectStuckBit(0x9000, 3, true);
    EXPECT_FALSE(nvm.remapToSpare(0x9000, "no spare left"));
    EXPECT_TRUE(nvm.hasUnhealableFault(0x9000));
}

TEST(NvmMediaFaults, QuarantineRecordsCascadeProvenance)
{
    NvmDevice nvm(paperParams());
    nvm.quarantine(0xA000, "covering MAC block unrecoverable", 3,
                   "mac_block_0x20000000000");
    nvm.quarantine(0xB000, "read retries exhausted", 3);
    const auto &log = nvm.quarantineLog();
    ASSERT_EQ(log.count(0xA000), 1u);
    EXPECT_EQ(log.at(0xA000).cause, "mac_block_0x20000000000");
    EXPECT_TRUE(log.at(0xB000).cause.empty());
}

TEST(NvmMediaFaults, QuarantineRegistryDeduplicatesByBlock)
{
    NvmDevice nvm(paperParams());
    EXPECT_EQ(nvm.quarantineCount(), 0u);
    nvm.quarantine(0x5008, "read retries exhausted", 3);
    nvm.quarantine(0x5030, "same block, different byte", 5);
    nvm.quarantine(0x6000, "write retries exhausted", 3);
    EXPECT_EQ(nvm.quarantineCount(), 2u);
    EXPECT_TRUE(nvm.isQuarantined(0x5000));
    EXPECT_TRUE(nvm.isQuarantined(0x503F));
    EXPECT_FALSE(nvm.isQuarantined(0x5040));
    EXPECT_TRUE(nvm.hasUnhealableFault(0x6000));
    const auto &log = nvm.quarantineLog();
    ASSERT_EQ(log.count(0x5000), 1u);
    EXPECT_EQ(log.at(0x5000).reason, "read retries exhausted");
    EXPECT_EQ(log.at(0x5000).retries, 3u);
}

} // namespace
