/**
 * @file
 * Single cache-level tests: hits, misses, LRU, writebacks, crash loss.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "tests/mem/fake_memory.hh"

namespace
{

using namespace dolos;
using dolos::test::FakeMemory;

// Tiny cache: 4 sets x 2 ways x 64B = 512B, 2-cycle latency.
CacheParams
tinyParams()
{
    return CacheParams{"tiny", 512, 2, 2};
}

Block
patternBlock(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed + i);
    return b;
}

TEST(Cache, MissThenHit)
{
    FakeMemory mem(100);
    mem.store.write(0x0, patternBlock(7));
    Cache c(tinyParams(), mem);

    const auto miss = c.readBlock(0x0, 0);
    EXPECT_EQ(miss.data, patternBlock(7));
    EXPECT_EQ(miss.completeTick, 2u + 100u); // lookup + downstream
    EXPECT_EQ(c.misses(), 1u);

    const auto hit = c.readBlock(0x0, 200);
    EXPECT_EQ(hit.completeTick, 202u);
    EXPECT_EQ(hit.data, patternBlock(7));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(mem.numReads, 1u);
}

TEST(Cache, SubBlockAddressesShareLine)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.readBlock(0x40, 0);
    c.readBlock(0x7F, 100);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEvictsOldestWay)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    // 4 sets: addresses mapping to set 0 are multiples of 0x100.
    c.readBlock(0x000, 0);
    c.readBlock(0x100, 10);
    c.readBlock(0x000, 20); // touch A: now B is LRU
    c.readBlock(0x200, 30); // evicts B
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.writebackBlock(0x000, patternBlock(1), 0); // dirty in set 0
    c.readBlock(0x100, 10);
    c.readBlock(0x200, 20); // evicts 0x000 (dirty)
    EXPECT_EQ(mem.numWritebacks, 1u);
    EXPECT_EQ(mem.writebackLog[0], 0x000u);
    EXPECT_EQ(mem.store.read(0x000), patternBlock(1));
}

TEST(Cache, CleanEvictionIsSilent)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.readBlock(0x000, 0);
    c.readBlock(0x100, 10);
    c.readBlock(0x200, 20); // evicts clean 0x000
    EXPECT_EQ(mem.numWritebacks, 0u);
}

TEST(Cache, UpdateIfPresentDirties)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.readBlock(0x0, 0);
    EXPECT_TRUE(c.updateIfPresent(0x0, patternBlock(9)));
    Block data;
    bool dirty = false;
    ASSERT_TRUE(c.peek(0x0, data, dirty));
    EXPECT_TRUE(dirty);
    EXPECT_EQ(data, patternBlock(9));
}

TEST(Cache, UpdateIfAbsentFails)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    EXPECT_FALSE(c.updateIfPresent(0x0, patternBlock(9)));
}

TEST(Cache, MarkCleanSuppressesWriteback)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.writebackBlock(0x000, patternBlock(1), 0);
    c.markClean(0x000);
    c.readBlock(0x100, 10);
    c.readBlock(0x200, 20); // evicts 0x000, now clean
    EXPECT_EQ(mem.numWritebacks, 0u);
}

TEST(Cache, InvalidateAllLosesDirtyData)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.writebackBlock(0x0, patternBlock(5), 0);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x0));
    // Data was never written downstream: genuinely lost.
    EXPECT_EQ(mem.store.read(0x0), zeroBlock());
}

TEST(Cache, WritebackHitUpdatesInPlace)
{
    FakeMemory mem;
    Cache c(tinyParams(), mem);
    c.readBlock(0x0, 0);
    c.writebackBlock(0x0, patternBlock(3), 10);
    Block data;
    bool dirty = false;
    ASSERT_TRUE(c.peek(0x0, data, dirty));
    EXPECT_TRUE(dirty);
    EXPECT_EQ(data, patternBlock(3));
    // No extra allocation happened: nothing was evicted.
    EXPECT_EQ(mem.numWritebacks, 0u);
}

TEST(CacheDeath, BadGeometryPanics)
{
    FakeMemory mem;
    CacheParams p{"bad", 100, 3, 1}; // not divisible
    EXPECT_DEATH(Cache(p, mem), "size not divisible");
}

} // namespace
