/**
 * @file
 * Test double: a flat memory implementing the controller interfaces
 * with a fixed latency, recording traffic for assertions.
 */

#ifndef DOLOS_TESTS_FAKE_MEMORY_HH
#define DOLOS_TESTS_FAKE_MEMORY_HH

#include <vector>

#include "mem/backing_store.hh"
#include "mem/hierarchy.hh"
#include "mem/mem_iface.hh"

namespace dolos::test
{

class FakeMemory : public PersistController
{
  public:
    explicit FakeMemory(Cycles latency = 100) : latency(latency) {}

    ReadResult
    readBlock(Addr addr, Tick now) override
    {
        ++numReads;
        return {store.read(blockAlign(addr)), now + latency};
    }

    Tick
    writebackBlock(Addr addr, const Block &data, Tick now) override
    {
        ++numWritebacks;
        writebackLog.push_back(blockAlign(addr));
        store.write(blockAlign(addr), data);
        return now + latency;
    }

    PersistTicket
    persistBlock(Addr addr, const Block &data, Tick now) override
    {
        ++numPersists;
        persistLog.push_back(blockAlign(addr));
        store.write(blockAlign(addr), data);
        return {now + 1, now + latency};
    }

    Tick
    pendingPersistTick(Addr, Tick now) override
    {
        ++numPendingQueries;
        return now;
    }

    BackingStore store;
    Cycles latency;
    unsigned numReads = 0;
    unsigned numWritebacks = 0;
    unsigned numPersists = 0;
    unsigned numPendingQueries = 0;
    std::vector<Addr> writebackLog;
    std::vector<Addr> persistLog;
};

} // namespace dolos::test

#endif // DOLOS_TESTS_FAKE_MEMORY_HH
