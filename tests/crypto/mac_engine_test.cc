/**
 * @file
 * MAC engine tests: both engines must behave as keyed MACs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "crypto/mac_engine.hh"

namespace
{

using namespace dolos::crypto;

class MacEngineTest : public ::testing::TestWithParam<MacKind>
{
  protected:
    std::array<std::uint8_t, 16>
    key(std::uint8_t seed = 0) const
    {
        std::array<std::uint8_t, 16> k{};
        for (int i = 0; i < 16; ++i)
            k[i] = std::uint8_t(seed + i);
        return k;
    }
};

TEST_P(MacEngineTest, DeterministicAndVerifies)
{
    auto eng = makeMacEngine(GetParam(), key());
    const char msg[] = "persist me";
    const MacTag t1 = eng->compute(msg, sizeof(msg));
    const MacTag t2 = eng->compute(msg, sizeof(msg));
    EXPECT_EQ(t1, t2);
    EXPECT_TRUE(eng->verify(msg, sizeof(msg), t1));
}

TEST_P(MacEngineTest, TamperedDataFailsVerification)
{
    auto eng = makeMacEngine(GetParam(), key());
    std::vector<std::uint8_t> msg(64, 0x5A);
    const MacTag tag = eng->compute(msg.data(), msg.size());
    for (std::size_t i = 0; i < msg.size(); i += 9) {
        msg[i] ^= 0x01;
        EXPECT_FALSE(eng->verify(msg.data(), msg.size(), tag));
        msg[i] ^= 0x01;
    }
    EXPECT_TRUE(eng->verify(msg.data(), msg.size(), tag));
}

TEST_P(MacEngineTest, TamperedTagFailsVerification)
{
    auto eng = makeMacEngine(GetParam(), key());
    const char msg[] = "data";
    MacTag tag = eng->compute(msg, sizeof(msg));
    for (int bit = 0; bit < 64; bit += 11) {
        tag[bit / 8] ^= std::uint8_t(1 << (bit % 8));
        EXPECT_FALSE(eng->verify(msg, sizeof(msg), tag));
        tag[bit / 8] ^= std::uint8_t(1 << (bit % 8));
    }
}

TEST_P(MacEngineTest, KeyDependence)
{
    auto e1 = makeMacEngine(GetParam(), key(0));
    auto e2 = makeMacEngine(GetParam(), key(1));
    const char msg[] = "same message";
    EXPECT_NE(e1->compute(msg, sizeof(msg)), e2->compute(msg, sizeof(msg)));
}

TEST_P(MacEngineTest, ComputePartsMatchesConcatenation)
{
    auto eng = makeMacEngine(GetParam(), key());
    const std::uint64_t addr = 0x1000;
    const std::uint64_t ctr = 7;
    std::vector<std::uint8_t> data(64, 0xC3);

    std::vector<std::uint8_t> concat;
    auto append = [&concat](const void *p, std::size_t n) {
        const auto *b = static_cast<const std::uint8_t *>(p);
        concat.insert(concat.end(), b, b + n);
    };
    append(&addr, sizeof(addr));
    append(&ctr, sizeof(ctr));
    append(data.data(), data.size());

    const MacTag parts = eng->computeParts(
        {{&addr, sizeof(addr)}, {&ctr, sizeof(ctr)},
         {data.data(), data.size()}});
    EXPECT_EQ(parts, eng->compute(concat.data(), concat.size()));
}

TEST_P(MacEngineTest, ComputePartsLargeInputFallsBackToHeap)
{
    auto eng = makeMacEngine(GetParam(), key());
    std::vector<std::uint8_t> big(1024, 0x11);
    const MacTag parts = eng->computeParts(
        {{big.data(), 512}, {big.data() + 512, 512}});
    EXPECT_EQ(parts, eng->compute(big.data(), big.size()));
}

TEST_P(MacEngineTest, SegmentBoundariesMatter)
{
    // MAC(a || b) with different splits is the same bytes, but
    // different *contents* must differ: swap two fields.
    auto eng = makeMacEngine(GetParam(), key());
    const std::uint64_t a = 1, b = 2;
    const MacTag ab = eng->computeParts({{&a, 8}, {&b, 8}});
    const MacTag ba = eng->computeParts({{&b, 8}, {&a, 8}});
    EXPECT_NE(ab, ba);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MacEngineTest,
                         ::testing::Values(MacKind::HmacSha256Truncated,
                                           MacKind::SipHash24),
                         [](const auto &info) {
                             return info.param ==
                                            MacKind::HmacSha256Truncated
                                        ? "Hmac"
                                        : "SipHash";
                         });

} // namespace
