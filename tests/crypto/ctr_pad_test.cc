/**
 * @file
 * Counter-mode pad generator tests.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/ctr_pad.hh"

namespace
{

using namespace dolos::crypto;

AesKey
testKey()
{
    AesKey k{};
    for (int i = 0; i < 16; ++i)
        k[i] = std::uint8_t(0xA0 + i);
    return k;
}

TEST(CtrPad, PadLengthHonored)
{
    CtrPadGenerator gen(testKey());
    for (std::size_t len : {1u, 15u, 16u, 17u, 64u, 72u, 80u, 100u})
        EXPECT_EQ(gen.generate({1, 2, 3}, len).size(), len);
}

TEST(CtrPad, Deterministic)
{
    CtrPadGenerator gen(testKey());
    EXPECT_EQ(gen.generate({5, 6, 7}, 64), gen.generate({5, 6, 7}, 64));
}

TEST(CtrPad, CounterChangesPad)
{
    CtrPadGenerator gen(testKey());
    EXPECT_NE(gen.generate({1, 0, 1}, 64), gen.generate({1, 0, 2}, 64));
}

TEST(CtrPad, SpatialUniqueness)
{
    // Same counter, different page/offset => different pad
    // (spatial uniqueness of the IV).
    CtrPadGenerator gen(testKey());
    std::set<std::vector<std::uint8_t>> pads;
    for (std::uint64_t page = 0; page < 4; ++page)
        for (std::uint32_t off = 0; off < 4; ++off)
            pads.insert(gen.generate({page, off, 9}, 64));
    EXPECT_EQ(pads.size(), 16u);
}

TEST(CtrPad, KeyChangesPad)
{
    AesKey k2 = testKey();
    k2[0] ^= 0xFF;
    CtrPadGenerator g1(testKey()), g2(k2);
    EXPECT_NE(g1.generate({1, 1, 1}, 64), g2.generate({1, 1, 1}, 64));
}

TEST(CtrPad, XorRoundTrips)
{
    CtrPadGenerator gen(testKey());
    const auto pad = gen.generate({3, 1, 4}, 72);
    std::vector<std::uint8_t> data(72);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 7);
    const auto original = data;

    xorInto(data.data(), pad.data(), data.size());
    EXPECT_NE(data, original); // encrypted
    xorInto(data.data(), pad.data(), data.size());
    EXPECT_EQ(data, original); // decrypted
}

TEST(CtrPad, PrefixConsistency)
{
    // The first 16 bytes of a 64-byte pad equal the 16-byte pad for
    // the same IV (sub-block counter is part of the IV padding).
    CtrPadGenerator gen(testKey());
    const auto small = gen.generate({8, 2, 10}, 16);
    const auto large = gen.generate({8, 2, 10}, 64);
    EXPECT_TRUE(std::equal(small.begin(), small.end(), large.begin()));
}

} // namespace
