/**
 * @file
 * SipHash-2-4 tests: reference vectors plus PRF-behaviour properties.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/siphash.hh"

namespace
{

using dolos::crypto::siphash24;
using dolos::crypto::SipKey;

SipKey
referenceKey()
{
    SipKey k;
    for (int i = 0; i < 16; ++i)
        k[i] = std::uint8_t(i);
    return k;
}

// First entries of the reference test-vector table from the SipHash
// paper (key 000102...0f, message 00 01 02 ... of increasing length).
TEST(SipHash, ReferenceVectors)
{
    const std::uint64_t expected[] = {
        0x726fdb47dd0e0e31ULL, // len 0
        0x74f839c593dc67fdULL, // len 1
        0x0d6c8009d9a94f5aULL, // len 2
        0x85676696d7fb7e2dULL, // len 3
        0xcf2794e0277187b7ULL, // len 4
        0x18765564cd99a68dULL, // len 5
        0xcbc9466e58fee3ceULL, // len 6
        0xab0200f58b01d137ULL, // len 7
        0x93f5f5799a932462ULL, // len 8
    };
    const SipKey key = referenceKey();
    std::vector<std::uint8_t> msg;
    for (std::size_t len = 0; len < std::size(expected); ++len) {
        EXPECT_EQ(siphash24(key, msg.data(), msg.size()), expected[len])
            << "length " << len;
        msg.push_back(std::uint8_t(len));
    }
}

TEST(SipHash, Deterministic)
{
    const SipKey key = referenceKey();
    const char msg[] = "hello world";
    EXPECT_EQ(siphash24(key, msg, sizeof(msg)),
              siphash24(key, msg, sizeof(msg)));
}

TEST(SipHash, KeyDependence)
{
    SipKey k1 = referenceKey();
    SipKey k2 = k1;
    k2[15] ^= 0x80;
    const char msg[] = "payload";
    EXPECT_NE(siphash24(k1, msg, sizeof(msg)),
              siphash24(k2, msg, sizeof(msg)));
}

TEST(SipHash, MessageBitFlipChangesTag)
{
    const SipKey key = referenceKey();
    std::vector<std::uint8_t> msg(64, 0xAA);
    const std::uint64_t base = siphash24(key, msg.data(), msg.size());
    for (std::size_t byte = 0; byte < msg.size(); byte += 7) {
        msg[byte] ^= 1;
        EXPECT_NE(siphash24(key, msg.data(), msg.size()), base);
        msg[byte] ^= 1;
    }
}

TEST(SipHash, LengthExtensionDistinct)
{
    // Messages that are prefixes of each other must hash differently
    // (the length is folded into the final block).
    const SipKey key = referenceKey();
    std::vector<std::uint8_t> msg(32, 0);
    std::set<std::uint64_t> tags;
    for (std::size_t len = 0; len <= msg.size(); ++len)
        tags.insert(siphash24(key, msg.data(), len));
    EXPECT_EQ(tags.size(), msg.size() + 1);
}

} // namespace
