/**
 * @file
 * SHA-256 known-answer and property tests.
 */

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hh"

namespace
{

using dolos::crypto::Sha256;

std::string
hashHex(const std::string &msg)
{
    return Sha256::toHex(Sha256::digest(msg.data(), msg.size()));
}

// FIPS-180-4 known-answer tests.
TEST(Sha256, EmptyString)
{
    EXPECT_EQ(hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijk"
                      "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk.data(), chunk.size());
    EXPECT_EQ(Sha256::toHex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg = "the quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(msg.data(), split);
        h.update(msg.data() + split, msg.size() - split);
        EXPECT_EQ(h.finalize(), Sha256::digest(msg.data(), msg.size()));
    }
}

TEST(Sha256, PaddingBoundaries)
{
    // Lengths around the 55/56/64-byte padding boundaries must all
    // produce distinct digests and not crash.
    std::set<std::string> seen;
    for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        const std::string msg(len, 'x');
        seen.insert(hashHex(msg));
    }
    EXPECT_EQ(seen.size(), 9u);
}

TEST(Sha256, ResetAllowsReuse)
{
    Sha256 h;
    h.update("abc", 3);
    (void)h.finalize();
    h.reset();
    h.update("abc", 3);
    EXPECT_EQ(Sha256::toHex(h.finalize()),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

} // namespace
