/**
 * @file
 * AES-128 known-answer and property tests.
 */

#include <gtest/gtest.h>

#include "crypto/aes128.hh"
#include "sim/random.hh"

namespace
{

using dolos::crypto::Aes128;
using dolos::crypto::AesBlock;
using dolos::crypto::AesKey;

AesKey
keyFromBytes(std::initializer_list<int> bytes)
{
    AesKey k{};
    int i = 0;
    for (int b : bytes)
        k[i++] = std::uint8_t(b);
    return k;
}

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128, Fips197KnownAnswer)
{
    AesKey key{};
    AesBlock pt{};
    for (int i = 0; i < 16; ++i) {
        key[i] = std::uint8_t(i);
        pt[i] = std::uint8_t(0x11 * i);
    }
    const AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                               0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                               0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

// FIPS-197 Appendix B example: key 2b7e1516..., input 3243f6a8...
TEST(Aes128, Fips197AppendixB)
{
    const AesKey key = keyFromBytes({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                     0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                     0x09, 0xcf, 0x4f, 0x3c});
    const AesBlock pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                         0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
    const AesBlock expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                               0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                               0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    dolos::Random rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        AesKey key;
        AesBlock pt;
        for (auto &b : key)
            b = std::uint8_t(rng.next());
        for (auto &b : pt)
            b = std::uint8_t(rng.next());
        Aes128 aes(key);
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
    }
}

TEST(Aes128, DifferentKeysProduceDifferentCiphertext)
{
    AesKey k1{}, k2{};
    k2[0] = 1;
    AesBlock pt{};
    Aes128 a1(k1), a2(k2);
    EXPECT_NE(a1.encryptBlock(pt), a2.encryptBlock(pt));
}

TEST(Aes128, SingleBitPlaintextChangeAvalanches)
{
    AesKey key{};
    AesBlock pt{};
    Aes128 aes(key);
    const AesBlock c1 = aes.encryptBlock(pt);
    pt[0] ^= 1;
    const AesBlock c2 = aes.encryptBlock(pt);
    int diff_bits = 0;
    for (int i = 0; i < 16; ++i)
        diff_bits += __builtin_popcount(c1[i] ^ c2[i]);
    // Expect roughly half of 128 bits to flip.
    EXPECT_GT(diff_bits, 40);
    EXPECT_LT(diff_bits, 90);
}

} // namespace
