/**
 * @file
 * End-to-end timeline telemetry contract on a real workload run:
 *
 *  1. Reconciliation — every per-window delta series the sampler
 *     records during a hashmap run sums exactly to the end-of-run
 *     stat totals (no window is lost, double-counted, or clipped).
 *  2. Non-perturbation — the sampler is a pure observer: a run with
 *     sampling attached finishes with bit-identical final stats and
 *     cycle counts to the same run without it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dolos/system.hh"
#include "sim/stat_sampler.hh"
#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
testConfig()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.secure.functionalLeaves = 8192;
    cfg.secure.map.protectedBytes = Addr(8192) * pageBytes;
    return cfg;
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 64;
    p.seed = 9;
    p.thinkTime = 500;
    p.readsPerTx = 1;
    return p;
}

RunResult
run(System &sys, std::uint64_t txns = 80)
{
    auto wl = makeWorkload("hashmap", smallParams());
    return runWorkload(sys, *wl, txns);
}

TEST(StatTimeline, WindowDeltasReconcileWithFinalStats)
{
    System sys(testConfig());
    stats::StatSampler sampler(10000);
    sys.attachStatSampler(&sampler);
    sampler.begin(sys.core().now());

    const auto res = run(sys);
    ASSERT_TRUE(res.verified) << res.verifyDiagnostic;
    sampler.finish(sys.core().now());
    sys.attachStatSampler(nullptr);

    ASSERT_GT(sampler.windowCount(), 1u)
        << "run too short to cross a sampling boundary";

    // Every scalar's windowed deltas sum exactly to its final value
    // (the system and its stats started at zero).
    for (const auto &col : sampler.scalarColumns()) {
        std::uint64_t total = 0;
        for (const auto d : col.deltas)
            total += d;
        EXPECT_EQ(total, col.stat->value()) << col.path;
    }
    for (const auto &col : sampler.averageColumns()) {
        double sum = 0;
        std::uint64_t n = 0;
        for (std::size_t i = 0; i < col.sums.size(); ++i) {
            sum += col.sums[i];
            n += col.counts[i];
        }
        EXPECT_DOUBLE_EQ(sum, col.stat->total()) << col.path;
        EXPECT_EQ(n, col.stat->samples()) << col.path;
    }
    for (const auto &col : sampler.histColumns()) {
        std::uint64_t n = 0;
        for (const auto &w : col.windows)
            n += w.samples;
        EXPECT_EQ(n, col.stat->samples()) << col.path;
    }

    // Windows tile the run contiguously from the first poll to the
    // finish tick.
    const auto &starts = sampler.windowStarts();
    const auto &ends = sampler.windowEnds();
    for (std::size_t i = 1; i < starts.size(); ++i)
        EXPECT_EQ(starts[i], ends[i - 1]);
    EXPECT_EQ(ends.back(), sys.core().now());

    // The derived persist-path series exist and are window-aligned.
    const auto derived = sampler.derivedSeries();
    ASSERT_EQ(derived.size(), 3u);
    for (const auto &[name, series] : derived)
        EXPECT_EQ(series.size(), sampler.windowCount()) << name;
}

TEST(StatTimeline, SamplingDoesNotPerturbTheSimulation)
{
    // Reference run: no sampler.
    System plain(testConfig());
    const auto ref = run(plain);
    ASSERT_TRUE(ref.verified) << ref.verifyDiagnostic;
    std::ostringstream refStats;
    plain.dumpStatsJson(refStats);

    // Sampled run: identical config and workload, dense sampling.
    System sampled(testConfig());
    stats::StatSampler sampler(1000);
    sampled.attachStatSampler(&sampler);
    sampler.begin(sampled.core().now());
    const auto res = run(sampled);
    sampler.finish(sampled.core().now());
    sampled.attachStatSampler(nullptr);

    // The sampler is an observer: simulated time and every final
    // stat must be bit-identical, window state notwithstanding.
    EXPECT_EQ(res.runCycles, ref.runCycles);
    EXPECT_EQ(res.instructions, ref.instructions);
    std::ostringstream sampledStats;
    sampled.dumpStatsJson(sampledStats);
    EXPECT_EQ(sampledStats.str(), refStats.str());
}

} // namespace
