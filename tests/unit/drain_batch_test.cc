/**
 * @file
 * Drain-scheduler batching tests: a WPQ entry superseded by a newer
 * same-line entry is elided at drain-issue time. The merge must keep
 * WPQ and redo-log accounting exact — final NVM plaintext, crash
 * dumps, and recovery verdicts identical to the unbatched machine.
 *
 * Batching is only reachable with insertion coalescing off (the
 * coalescer merges same-line writes at enqueue otherwise), so every
 * rig here disables coalescing.
 */

#include <gtest/gtest.h>

#include "dolos/controller.hh"

namespace
{

using namespace dolos;

SystemConfig
testConfig(SecurityMode mode, bool batching)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 256;
    cfg.secure.map.protectedBytes = Addr(256) * pageBytes;
    cfg.wpq.coalescing = false;
    cfg.wpq.drainBatching = batching;
    // The tick-count assertions below predate the default-on levers;
    // pin the other two off so only batching varies between rigs.
    cfg.secure.bmtPipeline = false;
    cfg.secure.tagPrefetch = false;
    return cfg;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed * 7 + i);
    return b;
}

struct Rig
{
    Rig(SecurityMode mode, bool batching)
        : cfg(testConfig(mode, batching))
    {
        nvm = std::make_unique<NvmDevice>(cfg.nvm);
        eng = std::make_unique<SecurityEngine>(cfg.secure, *nvm);
        mc = std::make_unique<SecureMemController>(cfg, *nvm, *eng);
    }

    SystemConfig cfg;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<SecurityEngine> eng;
    std::unique_ptr<SecureMemController> mc;
};

TEST(DrainBatch, SupersededEntryIsElided)
{
    Rig rig(SecurityMode::DolosPartialWpq, true);
    // Both same-line writes are queued before either drain issues
    // (the second arrives while the first still waits for its
    // persist ack), so the older entry is superseded at drain time.
    rig.mc->persistBlock(0x1000, pattern(1), 0);
    rig.mc->persistBlock(0x1000, pattern(2), 10);
    rig.mc->drainTo(10'000'000);

    EXPECT_EQ(rig.mc->drainsBatched(), 1u);
    EXPECT_EQ(rig.mc->coalesces(), 0u);
    EXPECT_EQ(rig.mc->readBlock(0x1000, 10'000'000).data, pattern(2));
    EXPECT_FALSE(rig.eng->attackDetected());
}

TEST(DrainBatch, FinalStateMatchesUnbatchedMachine)
{
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosPostWpq}) {
        Rig off(mode, false);
        Rig on(mode, true);
        // Same-line rewrites interleaved with neighbours, issued
        // close enough together that the queue holds duplicates.
        const Addr addrs[] = {0x1000, 0x1040, 0x1000, 0x2000,
                              0x1000, 0x1040};
        for (unsigned i = 0; i < 6; ++i) {
            off.mc->persistBlock(addrs[i],
                                 pattern(std::uint8_t(i + 1)),
                                 i * 10);
            on.mc->persistBlock(addrs[i],
                                pattern(std::uint8_t(i + 1)),
                                i * 10);
        }
        off.mc->drainTo(10'000'000);
        on.mc->drainTo(10'000'000);

        EXPECT_GT(on.mc->drainsBatched(), 0u);
        EXPECT_EQ(off.mc->drainsBatched(), 0u);
        for (const Addr a : {Addr(0x1000), Addr(0x1040),
                             Addr(0x2000)})
            EXPECT_EQ(on.mc->readBlock(a, 20'000'000).data,
                      off.mc->readBlock(a, 20'000'000).data);
        EXPECT_FALSE(on.eng->attackDetected());
        EXPECT_FALSE(off.eng->attackDetected());
    }
}

TEST(DrainBatch, WpqAccountingStaysExact)
{
    Rig rig(SecurityMode::DolosPartialWpq, true);
    rig.mc->persistBlock(0x1000, pattern(1), 0);
    rig.mc->persistBlock(0x1000, pattern(2), 10);
    rig.mc->persistBlock(0x2000, pattern(3), 20);
    rig.mc->drainTo(10'000'000);

    EXPECT_EQ(rig.mc->writeRequests(), 3u);
    EXPECT_EQ(rig.mc->drainsBatched(), 1u);
    // After the drain horizon the queue is empty: a crash dumps no
    // entries — the elided slot was freed like any drained slot.
    const auto dump = rig.mc->crash(10'000'000);
    EXPECT_EQ(dump.entriesDumped, 0u);
    const auto rec = rig.mc->recover();
    EXPECT_TRUE(rec.misuVerified);
    EXPECT_EQ(rig.mc->readBlock(0x1000, 20'000'000).data, pattern(2));
    EXPECT_EQ(rig.mc->readBlock(0x2000, 20'000'000).data, pattern(3));
}

TEST(DrainBatch, CrashWhileQueuedRecoversNewestValue)
{
    // Crash before any drain: batching never fired, the ADR dump
    // carries both same-line entries, and recovery must land the
    // newest value — identically with batching on and off.
    for (const bool batching : {false, true}) {
        Rig rig(SecurityMode::DolosFullWpq, batching);
        rig.mc->persistBlock(0x1000, pattern(1), 0);
        rig.mc->persistBlock(0x1000, pattern(2), 10);
        const auto dump = rig.mc->crash(20);
        EXPECT_EQ(dump.entriesDumped, 2u);
        const auto rec = rig.mc->recover();
        EXPECT_TRUE(rec.misuVerified);
        EXPECT_EQ(rig.mc->readBlock(0x1000, 10'000'000).data,
                  pattern(2));
        EXPECT_FALSE(rig.eng->attackDetected());
    }
}

TEST(DrainBatch, MidDrainCrashKeepsRedoAccountingExact)
{
    // Crash at a tick where the elision already released the older
    // entry but the newer one may still be queued: the dump must
    // never resurrect the elided entry, and recovery lands the
    // newest value for every line in both machines.
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq}) {
        for (const Tick crash_at : {Tick(500), Tick(2'000),
                                    Tick(8'000)}) {
            Rig off(mode, false);
            Rig on(mode, true);
            const Addr addrs[] = {0x1000, 0x1000, 0x2000, 0x1000};
            for (unsigned i = 0; i < 4; ++i) {
                off.mc->persistBlock(addrs[i],
                                     pattern(std::uint8_t(i + 1)),
                                     i * 10);
                on.mc->persistBlock(addrs[i],
                                    pattern(std::uint8_t(i + 1)),
                                    i * 10);
            }
            off.mc->crash(crash_at);
            on.mc->crash(crash_at);
            EXPECT_TRUE(off.mc->recover().misuVerified);
            EXPECT_TRUE(on.mc->recover().misuVerified);
            for (const Addr a : {Addr(0x1000), Addr(0x2000)})
                EXPECT_EQ(on.mc->readBlock(a, 10'000'000).data,
                          off.mc->readBlock(a, 10'000'000).data)
                    << "mode=" << int(mode)
                    << " crash_at=" << crash_at;
        }
    }
}

} // namespace
