/**
 * @file
 * Unit tests for the persist-domain crash-state model: the describe()
 * serializer, the StateManifest registry, the manifest topology of a
 * full System, and the power-loss differential in all three Mi-SU
 * modes (the runtime half of the dolos_lint static checks).
 */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <unordered_map>

#include "dolos/system.hh"
#include "sim/persist_annotations.hh"
#include "verify/manifest_check.hh"

using namespace dolos;
using persist::describe;
using persist::Kind;
using persist::StateManifest;

TEST(Describe, Scalars)
{
    EXPECT_EQ(describe(std::uint64_t(42)), "42");
    EXPECT_EQ(describe(true), "true");
    EXPECT_EQ(describe(false), "false");
    EXPECT_EQ(describe(std::string("hi")), "\"hi\"");
    EXPECT_EQ(describe(SecurityMode::DolosPartialWpq),
              std::to_string(
                  std::uint64_t(SecurityMode::DolosPartialWpq)));
}

TEST(Describe, PointerOptionalPair)
{
    int x = 0;
    int *set = &x;
    int *null = nullptr;
    EXPECT_EQ(describe(set), "&set");
    EXPECT_EQ(describe(null), "null");
    EXPECT_EQ(describe(std::optional<int>{}), "nullopt");
    EXPECT_EQ(describe(std::optional<int>{7}), "7");
    EXPECT_EQ(describe(std::pair<int, bool>{3, true}), "(3,true)");
}

TEST(Describe, ByteBlobIsHex)
{
    const std::array<std::uint8_t, 3> blob{0x00, 0xab, 0xf1};
    EXPECT_EQ(describe(blob), "00abf1");
}

TEST(Describe, SequencesAndMaps)
{
    const std::vector<int> v{1, 2, 3};
    EXPECT_EQ(describe(v), "[1;2;3;]");
    const std::map<std::uint64_t, int> m{{2, 20}, {1, 10}};
    EXPECT_EQ(describe(m), "{1:10;2:20;}");
}

TEST(Describe, UnorderedMapIsCanonical)
{
    // Same entries, opposite insertion order: identical rendering.
    std::unordered_map<std::uint64_t, int> a, b;
    for (int i = 0; i < 64; ++i)
        a[i] = i * 3;
    for (int i = 63; i >= 0; --i)
        b[i] = i * 3;
    EXPECT_EQ(describe(a), describe(b));
}

TEST(StateManifest, LabelsAndKinds)
{
    StateManifest m("Widget", "w0");
    int field = 9;
    m.add("field", Kind::Volatile,
          [&field] { return describe(field); });
    m.addDelegated("sub", Kind::Persistent);
    ASSERT_EQ(m.fields().size(), 2u);
    EXPECT_EQ(m.label(m.fields()[0]), "Widget(w0).field");
    EXPECT_EQ(m.fields()[0].kind, Kind::Volatile);
    EXPECT_EQ(m.fields()[0].snapshot(), "9");
    EXPECT_TRUE(m.fields()[1].delegated);
    EXPECT_FALSE(m.fields()[0].delegated);
}

TEST(StateManifest, DuplicateRegistrationPanics)
{
    StateManifest m("Widget");
    m.add("field", Kind::Persistent, [] { return std::string("1"); });
    EXPECT_DEATH(m.add("field", Kind::Persistent,
                       [] { return std::string("1"); }),
                 "registered twice");
}

namespace
{

SystemConfig
configFor(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    return cfg;
}

} // namespace

TEST(ManifestTopology, EveryStateClassRegisters)
{
    const System sys(configFor(SecurityMode::DolosPartialWpq));
    const auto manifests = sys.collectStateManifests();

    std::set<std::string> names;
    for (const auto &m : manifests) {
        std::string id = m.className();
        if (!m.instance().empty())
            id += "(" + m.instance() + ")";
        EXPECT_TRUE(names.insert(id).second)
            << "duplicate manifest " << id;
    }
    // The full Dolos machine: System, SimpleCore, CacheHierarchy,
    // Cache x3, SecureMemController, MiSu, RedoLogBuffer,
    // SecurityEngine, CounterStore, MerkleTree, TagCache x2,
    // AnubisShadow, NvmDevice, BackingStore.
    EXPECT_EQ(manifests.size(), 17u);
    for (const char *expected :
         {"System", "SimpleCore", "CacheHierarchy", "Cache(l1)",
          "Cache(l2)", "Cache(llc)", "SecureMemController", "MiSu",
          "RedoLogBuffer", "SecurityEngine", "CounterStore",
          "MerkleTree", "TagCache(ctrCache)", "TagCache(mtCache)",
          "AnubisShadow", "NvmDevice", "BackingStore"})
        EXPECT_TRUE(names.count(expected)) << "missing " << expected;
}

TEST(ManifestTopology, SnapshotsAreLiveAndNonEmpty)
{
    const System sys(configFor(SecurityMode::DolosFullWpq));
    for (const auto &m : sys.collectStateManifests()) {
        EXPECT_FALSE(m.fields().empty())
            << m.className() << " registers no fields";
        for (const auto &f : m.fields()) {
            if (f.delegated) {
                EXPECT_EQ(f.snapshot, nullptr) << m.label(f);
                continue;
            }
            ASSERT_NE(f.snapshot, nullptr) << m.label(f);
            EXPECT_FALSE(f.snapshot().empty()) << m.label(f);
        }
    }
}

namespace
{

void
expectDifferentialPasses(SecurityMode mode, std::uint64_t seed)
{
    const auto res = verify::verifyCrashManifest(mode, seed);
    EXPECT_TRUE(res.ok()) << verify::formatManifestReport(res);
    EXPECT_TRUE(res.recoveryVerified);
    EXPECT_EQ(res.manifests, 17u);
    // Well over a hundred individually checked fields; delegation
    // covers the rest through their own manifests.
    EXPECT_GT(res.fieldsChecked, 100u);
}

} // namespace

TEST(PowerLossDifferential, FullWpq)
{
    expectDifferentialPasses(SecurityMode::DolosFullWpq, 1);
}

TEST(PowerLossDifferential, PartialWpq)
{
    expectDifferentialPasses(SecurityMode::DolosPartialWpq, 1);
}

TEST(PowerLossDifferential, PostWpq)
{
    expectDifferentialPasses(SecurityMode::DolosPostWpq, 1);
}

TEST(PowerLossDifferential, SeedIndependent)
{
    for (const std::uint64_t seed : {2ull, 99ull, 0xdecafull})
        expectDifferentialPasses(SecurityMode::DolosPartialWpq, seed);
}

TEST(PowerLossDifferential, AllModesHelper)
{
    // The three Mi-SU modes plus EadrSecure (quiesced, so its holdup
    // flush is a no-op and the differential compares a pure reset).
    const auto all = verify::verifyCrashManifestAllModes(3);
    ASSERT_EQ(all.size(), 4u);
    for (const auto &res : all) {
        EXPECT_TRUE(res.ok()) << verify::formatManifestReport(res);
        const auto report = verify::formatManifestReport(res);
        EXPECT_NE(report.find(securityModeName(res.mode)),
                  std::string::npos);
        EXPECT_NE(report.find("0 mismatch(es)"), std::string::npos);
    }
}
