/**
 * @file
 * eADR machine-mode tests: the energy-bounded power-fail holdup
 * flush. Flush-order determinism, exact per-stage energy accounting,
 * the budget-exhaustion prefix contract (flushed prefix intact, lost
 * tail quarantined with cause provenance, never silent corruption),
 * CLWB leaving the critical path, config validation, and the
 * persist-manifest differential with the flush quiesced.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dolos/system.hh"
#include "sim/crash_points.hh"
#include "verify/manifest_check.hh"
#include "verify/sweep_driver.hh"

namespace
{

using namespace dolos;

SystemConfig
eadrConfig()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::EadrSecure;
    cfg.secure.functionalLeaves = 2048;
    cfg.secure.map.protectedBytes = Addr(2048) * pageBytes;
    return cfg;
}

constexpr Addr heapBase = 0x10000;

Block
pattern(unsigned i)
{
    Block b;
    for (unsigned j = 0; j < blockSize; ++j)
        b[j] = std::uint8_t(i * 31 + j * 7 + 1);
    return b;
}

/** Dirty @p n distinct cache lines (no CLWB — eADR needs none). */
void
dirtyLines(System &sys, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        const Block b = pattern(i);
        sys.core().store(heapBase + Addr(i) * blockSize, b.data(),
                         blockSize);
    }
}

TEST(EadrConfig, ZeroBudgetRejectedNotClamped)
{
    auto cfg = eadrConfig();
    cfg.eadr.energyBudgetCycles = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());
    EXPECT_THROW(System{cfg}, std::invalid_argument);

    // The same budget is fine outside eADR mode (it is never read).
    cfg.mode = SecurityMode::DolosPartialWpq;
    EXPECT_TRUE(validateConfig(cfg).empty());
}

TEST(EadrDomain, ClwbAndFenceLeaveTheCriticalPath)
{
    System sys(eadrConfig());
    dirtyLines(sys, 8);
    for (unsigned i = 0; i < 8; ++i)
        sys.core().clwb(heapBase + Addr(i) * blockSize);
    sys.core().sfence();
    // Caches are inside the persistence domain: CLWB completes
    // locally (no controller persist traffic) and the fence finds
    // nothing outstanding to stall on.
    EXPECT_EQ(sys.controller().writeRequests(), 0u);
    EXPECT_EQ(sys.core().fenceStallCycles(), 0u);
}

TEST(EadrFlush, FullBudgetFlushesEverythingAndRecovers)
{
    System sys(eadrConfig());
    dirtyLines(sys, 8);
    const auto report = sys.crash();

    EXPECT_GE(report.linesFlushed, 8u);
    EXPECT_EQ(report.linesLost, 0u);
    EXPECT_FALSE(report.budgetExhausted);
    EXPECT_FALSE(report.flushInterrupted);
    EXPECT_TRUE(report.withinAdrBudget);
    EXPECT_EQ(sys.nvmDevice().quarantineCount(), 0u);

    sys.recoverToCompletion();
    EXPECT_FALSE(sys.attackDetected());
    for (unsigned i = 0; i < 8; ++i) {
        Block got;
        sys.core().load(heapBase + Addr(i) * blockSize, got.data(),
                        blockSize);
        EXPECT_EQ(got, pattern(i)) << "line " << i;
    }
}

TEST(EadrFlush, OrderAndOutcomeAreDeterministic)
{
    CrashDumpReport reports[2];
    std::vector<Block> images[2];
    for (int run = 0; run < 2; ++run) {
        System sys(eadrConfig());
        dirtyLines(sys, 12);
        reports[run] = sys.crash();
        for (unsigned i = 0; i < 12; ++i)
            images[run].push_back(sys.nvmDevice().readFunctional(
                heapBase + Addr(i) * blockSize));
    }
    EXPECT_EQ(reports[0].linesFlushed, reports[1].linesFlushed);
    EXPECT_EQ(reports[0].linesLost, reports[1].linesLost);
    EXPECT_EQ(reports[0].eadrEnergyUsedCycles,
              reports[1].eadrEnergyUsedCycles);
    EXPECT_EQ(reports[0].eadrCtrFetchCycles,
              reports[1].eadrCtrFetchCycles);
    EXPECT_EQ(reports[0].eadrBmtCycles, reports[1].eadrBmtCycles);
    // Identical machines, identical walk order, identical ciphertext.
    EXPECT_EQ(images[0], images[1]);
}

TEST(EadrFlush, ExactPerStageEnergyAccounting)
{
    auto cfg = eadrConfig();
    System sys(cfg);
    dirtyLines(sys, 1);
    const auto report = sys.crash();

    ASSERT_EQ(report.linesFlushed, 1u);
    EXPECT_EQ(report.eadrBudgetCycles, cfg.eadr.energyBudgetCycles);
    // Every debited cycle is attributed to exactly one stage.
    EXPECT_EQ(report.eadrEnergyUsedCycles,
              report.eadrCtrFetchCycles + report.eadrAesCycles +
                  report.eadrMacCycles + report.eadrBmtCycles +
                  report.eadrNvmWriteCycles);
    EXPECT_EQ(report.eadrNvmWriteCycles,
              report.linesFlushed * cfg.nvm.writeLatency);
    // The security pipeline really ran: encryption and MAC work are
    // unconditional per line.
    EXPECT_GT(report.eadrAesCycles, 0u);
    EXPECT_GT(report.eadrMacCycles, 0u);
    EXPECT_EQ(report.energyBytes, report.linesFlushed * 64);
}

TEST(EadrFlush, BudgetExhaustionQuarantinesTheTailLoudly)
{
    auto cfg = eadrConfig();
    // Admission requires used < budget; 1 cycle admits exactly the
    // first line (which then completes on the capacitor margin).
    cfg.eadr.energyBudgetCycles = 1;
    System sys(cfg);
    dirtyLines(sys, 8);
    const auto report = sys.crash();

    EXPECT_TRUE(report.budgetExhausted);
    EXPECT_FALSE(report.withinAdrBudget);
    EXPECT_EQ(report.linesFlushed, 1u);
    EXPECT_GE(report.linesLost, 7u);
    EXPECT_GT(report.eadrEnergyUsedCycles, cfg.eadr.energyBudgetCycles);

    // Loud loss: every lost line is quarantined with cause
    // provenance, not silently corrupted.
    const auto &log = sys.nvmDevice().quarantineLog();
    EXPECT_EQ(log.size(), std::size_t(report.linesLost));
    for (const auto &[addr, rec] : log)
        EXPECT_EQ(rec.cause, "eadr_flush_budget_exhausted")
            << "addr 0x" << std::hex << addr;

    // Recovery still completes cleanly (quarantined blocks read as
    // zero without tripping the tamper detector), and the exit-code
    // plumbing sees the loss as unrecoverable media.
    sys.recoverToCompletion();
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_TRUE(sys.unrecoverableMedia());
}

TEST(EadrManifest, CrashStateDifferentialHolds)
{
    for (const std::uint64_t seed : {1ull, 9ull}) {
        const auto res =
            verify::verifyCrashManifest(SecurityMode::EadrSecure, seed);
        EXPECT_TRUE(res.ok())
            << verify::formatManifestReport(res);
        EXPECT_GT(res.fieldsChecked, 0u);
    }
}

TEST(EadrSweep, FlushMicrostepPointsPassEndToEnd)
{
    verify::SweepOptions opt;
    opt.mode = SecurityMode::EadrSecure;
    opt.workload = "hashmap";
    opt.numTx = 2;
    opt.params.txSize = 512;
    opt.params.numKeys = 64;
    opt.params.seed = 7;
    opt.params.thinkTime = 400;
    opt.params.readsPerTx = 1;
    opt.base = eadrConfig();
    opt.pointSet = verify::CrashPoints::Microstep;

    const auto points = verify::enumerateCrashPoints(opt);
    ASSERT_FALSE(points.empty())
        << "no crash points fired inside the holdup flush";
    // First and last flush firing of the first and last anchor.
    for (const std::uint64_t p : {points.front(), points.back()}) {
        const auto res = verify::runCrashPoint(opt, p);
        EXPECT_TRUE(res.passed())
            << "point " << p << " step=" << res.microstep
            << " structure=" << res.structureVerified
            << " loss=" << res.expectedLoss << " "
            << res.oracle.summary();
        EXPECT_TRUE(res.crashFired) << p;
    }
}

} // namespace
