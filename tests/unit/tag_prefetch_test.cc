/**
 * @file
 * Tag-cache prefetch tests: WPQ-admission prefetch warms the counter
 * cache without ever displacing a dirty line (which may be about to
 * be drained), without weakening tamper detection, and with exact
 * hit accounting.
 */

#include <gtest/gtest.h>

#include "secure/address_map.hh"
#include "secure/security_engine.hh"
#include "secure/tag_cache.hh"

namespace
{

using namespace dolos;

SecureParams
testParams(bool prefetch, std::size_t ctr_bytes = 4 * 1024,
           unsigned ctr_ways = 4)
{
    SecureParams p;
    p.functionalLeaves = 256;
    p.map.protectedBytes = Addr(256) * pageBytes;
    p.counterCache = {"counterCache", ctr_bytes, ctr_ways};
    p.mtCache = {"mtCache", 4 * 1024, 8};
    p.tagPrefetch = prefetch;
    for (int i = 0; i < 16; ++i) {
        p.dataKey[i] = std::uint8_t(i + 1);
        p.macKey[i] = std::uint8_t(0x80 + i);
    }
    return p;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (i * 5));
    return b;
}

TEST(TagPrefetch, WouldEvictDirtyMatchesInsertVictim)
{
    // 4 sets x 2 ways; the predicate must agree with insert()'s
    // victim choice and must not perturb LRU state.
    TagCache tc(TagCacheParams{"tiny", 512, 2});
    EXPECT_FALSE(tc.wouldEvictDirty(0x000)); // invalid way available
    tc.insert(0x000, true); // set 0, dirty
    EXPECT_FALSE(tc.wouldEvictDirty(0x100)); // still a free way
    tc.insert(0x100, false); // set 0, clean
    // Set full; LRU victim is 0x000 (dirty).
    EXPECT_TRUE(tc.wouldEvictDirty(0x200));
    // Probing must not have refreshed anything: insert still evicts
    // the dirty LRU line.
    const auto ev = tc.insert(0x200, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->addr, 0x000u);
    // Now the clean 0x100 is LRU: prefetch into this set is safe.
    EXPECT_FALSE(tc.wouldEvictDirty(0x300));
}

TEST(TagPrefetch, NeverEvictsDirtyLine)
{
    // 1 set x 2 ways: two dirtied counter blocks fill the cache.
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng(testParams(true, 2 * blockSize, 2), nvm);
    eng.secureWrite(0x0000, pattern(1), 0); // page 0, dirty
    eng.secureWrite(0x1000, pattern(2), 0); // page 1, dirty
    // Prefetching page 2's counter block would displace a dirty
    // line, so it must back off entirely.
    eng.prefetchCounter(0x2000);
    EXPECT_EQ(eng.tagPrefetchIssued(), 0u);
    // The dirty lines are untouched: rewriting the pages still works
    // and nothing tripped.
    eng.secureWrite(0x0040, pattern(3), 100'000);
    eng.secureWrite(0x1040, pattern(4), 200'000);
    EXPECT_FALSE(eng.attackDetected());
}

TEST(TagPrefetch, PrefetchHitAccounting)
{
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng(testParams(true), nvm);
    eng.prefetchCounter(0x0000);
    EXPECT_EQ(eng.tagPrefetchIssued(), 1u);
    EXPECT_EQ(eng.tagPrefetchHits(), 0u);
    // First demand access to the warmed block is a prefetch hit —
    // counted once, not again on later hits.
    eng.secureWrite(0x0000, pattern(1), 0);
    EXPECT_EQ(eng.tagPrefetchHits(), 1u);
    eng.secureWrite(0x0040, pattern(2), 0);
    EXPECT_EQ(eng.tagPrefetchHits(), 1u);
    // Prefetching an already-cached block is a no-op.
    eng.prefetchCounter(0x0000);
    EXPECT_EQ(eng.tagPrefetchIssued(), 1u);
}

TEST(TagPrefetch, DisabledKnobIssuesNothing)
{
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng(testParams(false), nvm);
    eng.prefetchCounter(0x0000);
    EXPECT_EQ(eng.tagPrefetchIssued(), 0u);
    EXPECT_EQ(eng.tagPrefetchHits(), 0u);
}

TEST(TagPrefetch, FunctionalPathUnchanged)
{
    // Prefetch-warmed and cold engines produce identical ciphertext
    // and reads decrypt identically: the prefetch moves a fetch
    // earlier, it never changes what is fetched.
    NvmDevice nvm_a{NvmParams{}};
    NvmDevice nvm_b{NvmParams{}};
    SecurityEngine warm(testParams(true), nvm_a);
    SecurityEngine cold(testParams(false), nvm_b);
    warm.prefetchCounter(0x3000);
    const auto rw = warm.secureWrite(0x3000, pattern(7), 0);
    const auto rc = cold.secureWrite(0x3000, pattern(7), 0);
    EXPECT_EQ(rw.ciphertext, rc.ciphertext);
    EXPECT_EQ(rw.counter, rc.counter);
    warm.writeCiphertext(0x3000, rw.ciphertext, rw.doneTick);
    cold.writeCiphertext(0x3000, rc.ciphertext, rc.doneTick);
    EXPECT_EQ(warm.secureRead(0x3000, 1'000'000).data,
              cold.secureRead(0x3000, 1'000'000).data);
    EXPECT_FALSE(warm.attackDetected());
}

TEST(TagPrefetch, TamperDetectionNotWeakened)
{
    // A counter block modified in NVM must trip the attack counter
    // even when it arrives via prefetch instead of a demand fetch.
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng(testParams(true), nvm);
    const auto r = eng.secureWrite(0x0000, pattern(1), 0);
    eng.writeCiphertext(0x0000, r.ciphertext, r.doneTick);
    eng.crash();
    ASSERT_TRUE(eng.recover().rootVerified);

    Block garbage;
    garbage.fill(0xA5);
    nvm.writeFunctional(AddressMap::counterBlockAddr(0x0000),
                        garbage);
    EXPECT_FALSE(eng.attackDetected());
    eng.prefetchCounter(0x0000);
    EXPECT_TRUE(eng.attackDetected());
}

} // namespace
