/**
 * @file
 * Microstep crash-point tests: power failures *inside* the optimized
 * persist path. The registry's probe/arm contract, committed-prefix
 * recovery from mid-climb BMT pipeline crashes and drainBatching
 * elision points, the root-commit window under both crash schemes,
 * and the compound crash-during-recovery case.
 *
 * Every armed run replays a machine a probe run enumerated, so a
 * silent non-firing is itself a failure (CrashPointResult.crashFired).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dolos/controller.hh"
#include "sim/crash_points.hh"
#include "verify/sweep_driver.hh"
#include "workloads/pmem.hh"

namespace
{

using namespace dolos;
using namespace dolos::verify;
namespace cp = dolos::crashpoint;

/** Small machine, levers at their (default-on) settings. */
SystemConfig
smallBase()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.secure.functionalLeaves = 2048;
    cfg.secure.map.protectedBytes = Addr(2048) * pageBytes;
    // A tiny counter cache pressures the levers: prefetches face real
    // misses and dirty victims, dirty counter blocks get evicted.
    cfg.secure.counterCache = {"counterCache", 512, 2};
    cfg.secure.mtCache = {"mtCache", 16 * 1024, 8};
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

SweepOptions
sweepFor(SecurityMode mode)
{
    SweepOptions opt;
    opt.mode = mode;
    opt.workload = "hashmap";
    opt.numTx = 3;
    // Page-spanning transactions so counter-block misses (and with
    // them the whole prefetch family) occur during the measured run.
    opt.params.txSize = 6144;
    opt.params.numKeys = 1024;
    opt.params.thinkTime = 400;
    opt.params.readsPerTx = 1;
    opt.params.seed = 7;
    opt.base = smallBase();
    opt.pointSet = CrashPoints::Microstep;
    return opt;
}

/** Probe run: the full firing sequence of the measured run. */
std::vector<cp::Step>
probeSequence(const SweepOptions &opt)
{
    auto &reg = cp::Registry::instance();
    SystemConfig cfg = opt.base;
    cfg.mode = opt.mode;
    System sys(cfg);
    const auto wl = workloads::makeWorkload(opt.workload, opt.params);
    workloads::PmemEnv env(sys);
    wl->setup(env);
    reg.reset();
    reg.enableCounting();
    for (std::uint64_t i = 0; i < opt.numTx; ++i)
        wl->transaction(env, i);
    const std::vector<cp::Step> seq = reg.sequence();
    reg.reset();
    return seq;
}

/** Firing indices of one step within a probe sequence. */
std::vector<std::uint64_t>
indicesOf(const std::vector<cp::Step> &seq, cp::Step step)
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t i = 0; i < seq.size(); ++i)
        if (seq[i] == step)
            out.push_back(i);
    return out;
}

void
expectPointPasses(const SweepOptions &opt, std::uint64_t idx)
{
    const auto res = runCrashPoint(opt, idx);
    EXPECT_TRUE(res.passed())
        << "crash index " << idx << " step=" << res.microstep
        << " structure=" << res.structureVerified
        << " attack=" << res.attackDetected
        << " fired=" << res.crashFired << " "
        << res.oracle.summary();
}

TEST(CrashPointRegistry, CountsRecordsArmsAndAutoDisarms)
{
    auto &reg = cp::Registry::instance();
    reg.reset();
    EXPECT_FALSE(reg.active());

    reg.enableCounting();
    reg.fire(cp::Step::MasuCtrFetch);
    reg.fire(cp::Step::MasuBmtLevel);
    reg.fire(cp::Step::MasuBmtLevel);
    EXPECT_EQ(reg.firings(), 3u);
    EXPECT_EQ(reg.firingsOf(cp::Step::MasuBmtLevel), 2u);
    EXPECT_EQ(reg.firingsOf(cp::Step::WpqDrainElide), 0u);
    ASSERT_EQ(reg.sequence().size(), 3u);
    EXPECT_EQ(reg.sequence()[0], cp::Step::MasuCtrFetch);
    EXPECT_EQ(reg.sequence()[2], cp::Step::MasuBmtLevel);

    reg.reset();
    EXPECT_EQ(reg.firings(), 0u);
    EXPECT_TRUE(reg.sequence().empty());

    reg.arm(1);
    EXPECT_TRUE(reg.active());
    EXPECT_NO_THROW(reg.fire(cp::Step::WpqDrainIssue)); // index 0
    EXPECT_FALSE(reg.crashFired());
    try {
        reg.fire(cp::Step::WpqDrainElide); // index 1: the armed one
        FAIL() << "expected MicrostepCrash";
    } catch (const cp::MicrostepCrash &c) {
        EXPECT_EQ(c.step, cp::Step::WpqDrainElide);
        EXPECT_EQ(c.index, 1u);
    }
    EXPECT_TRUE(reg.crashFired());
    EXPECT_EQ(reg.firedStep(), cp::Step::WpqDrainElide);
    // Auto-disarmed: recovery's own persist traffic cannot re-trip.
    EXPECT_NO_THROW(reg.fire(cp::Step::WpqCtWrite));
    EXPECT_EQ(reg.firings(), 3u);
    reg.reset();
}

TEST(MicrostepProbe, EveryLeverFamilyFiresUnderDefaults)
{
    const auto opt = sweepFor(SecurityMode::DolosPartialWpq);
    const auto seq = probeSequence(opt);
    ASSERT_FALSE(seq.empty());

    // Every step except WpqDrainElide, which needs insertion
    // coalescing off and is covered by the controller rigs below.
    const cp::Step expected[] = {
        cp::Step::MasuCtrFetch,        cp::Step::MasuCtrBumped,
        cp::Step::MasuAesPad,          cp::Step::MasuMacStored,
        cp::Step::MasuBmtLevel,        cp::Step::MasuBmtCoalesce,
        cp::Step::MasuRootCommit,      cp::Step::MasuCtrEvict,
        cp::Step::WpqDrainIssue,       cp::Step::WpqCtWrite,
        cp::Step::WpqRedoClear,        cp::Step::PrefetchIssue,
        cp::Step::PrefetchDirtyBackoff, cp::Step::PrefetchPromote,
    };
    for (const auto step : expected)
        EXPECT_FALSE(indicesOf(seq, step).empty())
            << "no firing of " << cp::stepName(step);

    // The sweep driver's enumeration is the same count.
    const auto points = enumerateCrashPoints(opt);
    EXPECT_EQ(points.size(), seq.size());
}

TEST(MicrostepCrash, MidClimbBmtPipelineCrashesRecover)
{
    const auto opt = sweepFor(SecurityMode::DolosPartialWpq);
    const auto seq = probeSequence(opt);
    const auto climbs = indicesOf(seq, cp::Step::MasuBmtLevel);
    ASSERT_GT(climbs.size(), 2u);
    // First, a middle, and the last charged level of a pipelined
    // climb window — recovery must land the committed prefix.
    expectPointPasses(opt, climbs.front());
    expectPointPasses(opt, climbs[climbs.size() / 2]);
    expectPointPasses(opt, climbs.back());
}

TEST(MicrostepCrash, RootCommitWindowRecoversUnderBothSchemes)
{
    for (const auto scheme :
         {CrashScheme::Anubis, CrashScheme::Osiris}) {
        auto opt = sweepFor(SecurityMode::DolosFullWpq);
        opt.base.secure.crashScheme = scheme;
        const auto seq = probeSequence(opt);
        const auto commits = indicesOf(seq, cp::Step::MasuRootCommit);
        ASSERT_FALSE(commits.empty()) << int(scheme);
        // The window between the engine's atomic commit group and the
        // controller's redo-ready hook: crash right at the commit
        // hook and right before it (the previous firing).
        expectPointPasses(opt, commits.front());
        if (commits.front() > 0)
            expectPointPasses(opt, commits.front() - 1);
        expectPointPasses(opt, commits.back());
    }
}

TEST(MicrostepCrash, CrashDuringRecoveryAtMicrostepPoint)
{
    // Compound failure: power dies inside a drain, then dies again at
    // recovery checkpoint 2 — the restartable recovery must converge.
    auto opt = sweepFor(SecurityMode::DolosPartialWpq);
    opt.recoveryCrashStep = 2;
    const auto seq = probeSequence(opt);
    const auto commits = indicesOf(seq, cp::Step::MasuRootCommit);
    ASSERT_FALSE(commits.empty());
    const auto res = runCrashPoint(opt, commits.front());
    EXPECT_TRUE(res.passed())
        << res.microstep << " " << res.oracle.summary();
    EXPECT_GE(res.recoveryAttempts, 2u);
}

// ---------------------------------------------------------------------
// drainBatching elision points, at controller level: crash exactly at
// the elision decision and recover the newest value.

SystemConfig
rigConfig()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.secure.functionalLeaves = 256;
    cfg.secure.map.protectedBytes = Addr(256) * pageBytes;
    // Batching is only reachable when insertion coalescing missed the
    // merge, so the rig disables coalescing (as drain_batch_test does).
    cfg.wpq.coalescing = false;
    cfg.wpq.drainBatching = true;
    return cfg;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed * 7 + i);
    return b;
}

struct Rig
{
    Rig() : cfg(rigConfig())
    {
        nvm = std::make_unique<NvmDevice>(cfg.nvm);
        eng = std::make_unique<SecurityEngine>(cfg.secure, *nvm);
        mc = std::make_unique<SecureMemController>(cfg, *nvm, *eng);
    }

    void
    queueSupersededPair()
    {
        mc->persistBlock(0x1000, pattern(1), 0);
        mc->persistBlock(0x1000, pattern(2), 10);
        mc->persistBlock(0x2000, pattern(3), 20);
    }

    SystemConfig cfg;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<SecurityEngine> eng;
    std::unique_ptr<SecureMemController> mc;
};

TEST(MicrostepCrash, DrainElisionPointRecoversNewestValue)
{
    auto &reg = cp::Registry::instance();

    // Probe rig: find the firing index of the elision decision.
    std::uint64_t elide_idx = 0;
    {
        Rig probe;
        reg.reset();
        reg.enableCounting();
        probe.queueSupersededPair();
        probe.mc->drainTo(10'000'000);
        ASSERT_GT(reg.firingsOf(cp::Step::WpqDrainElide), 0u);
        const auto idxs =
            indicesOf(reg.sequence(), cp::Step::WpqDrainElide);
        elide_idx = idxs.front();
        reg.reset();
    }

    // Armed replay: identical traffic, crash at that exact decision.
    Rig rig;
    reg.reset();
    reg.arm(elide_idx);
    bool fired = false;
    try {
        rig.queueSupersededPair();
        rig.mc->drainTo(10'000'000);
    } catch (const cp::MicrostepCrash &c) {
        EXPECT_EQ(c.step, cp::Step::WpqDrainElide);
        fired = true;
    }
    ASSERT_TRUE(fired) << "armed replay diverged from the probe";
    reg.reset();

    // Power dies mid-drain: ADR dumps the WPQ as found (the drain in
    // flight is NOT completed), then recovery re-drains the dump.
    rig.mc->crash(10'000'000, /*complete_in_flight=*/false);
    const auto rec = rig.mc->recover();
    EXPECT_TRUE(rec.misuVerified);
    EXPECT_EQ(rig.mc->readBlock(0x1000, 20'000'000).data, pattern(2));
    EXPECT_EQ(rig.mc->readBlock(0x2000, 20'000'000).data, pattern(3));
    EXPECT_FALSE(rig.eng->attackDetected());
}

TEST(MicrostepCrash, EveryElisionFiringRecoversIdentically)
{
    auto &reg = cp::Registry::instance();

    std::vector<std::uint64_t> idxs;
    {
        Rig probe;
        reg.reset();
        reg.enableCounting();
        probe.queueSupersededPair();
        probe.mc->drainTo(10'000'000);
        idxs = indicesOf(reg.sequence(), cp::Step::WpqDrainElide);
        reg.reset();
    }
    ASSERT_FALSE(idxs.empty());

    for (const std::uint64_t idx : idxs) {
        Rig rig;
        reg.reset();
        reg.arm(idx);
        bool fired = false;
        try {
            rig.queueSupersededPair();
            rig.mc->drainTo(10'000'000);
        } catch (const cp::MicrostepCrash &) {
            fired = true;
        }
        reg.reset();
        ASSERT_TRUE(fired) << "index " << idx;
        rig.mc->crash(10'000'000, /*complete_in_flight=*/false);
        EXPECT_TRUE(rig.mc->recover().misuVerified) << idx;
        EXPECT_EQ(rig.mc->readBlock(0x1000, 20'000'000).data,
                  pattern(2))
            << idx;
        EXPECT_FALSE(rig.eng->attackDetected()) << idx;
    }
}

} // namespace
