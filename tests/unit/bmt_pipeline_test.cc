/**
 * @file
 * BMT update pipeline tests: path-overlap detection against the
 * in-flight window, coalesce-window edge cases, and the root-
 * updated-last ordering invariant. Timing-only: the functional
 * write path must be bit-identical with the pipeline on or off.
 */

#include <gtest/gtest.h>

#include "secure/security_engine.hh"

namespace
{

using namespace dolos;

SecureParams
testParams(bool pipeline, unsigned window = 4)
{
    SecureParams p;
    p.functionalLeaves = 256;
    p.map.protectedBytes = Addr(256) * pageBytes;
    p.counterCache = {"counterCache", 4 * 1024, 4};
    p.mtCache = {"mtCache", 4 * 1024, 8};
    p.bmtPipeline = pipeline;
    p.bmtPipelineWindow = window;
    for (int i = 0; i < 16; ++i) {
        p.dataKey[i] = std::uint8_t(i + 1);
        p.macKey[i] = std::uint8_t(0x80 + i);
    }
    return p;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (i * 3));
    return b;
}

// Eager tree: 10 write MAC ops = 1 data MAC + 9 BMT levels.
constexpr unsigned kBmtLevels = 9;
constexpr Tick kMac = 160; // SecureParams::macLatency default

struct PipelineRig
{
    explicit PipelineRig(bool pipeline, unsigned window = 4)
        : eng(testParams(pipeline, window), nvm)
    {
    }

    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng;
};

TEST(BmtPipeline, OffChargesFullSerialClimb)
{
    PipelineRig rig(false);
    rig.eng.secureWrite(0x0000, pattern(1), 0);
    rig.eng.secureWrite(0x0040, pattern(2), 0);
    EXPECT_EQ(rig.eng.bmtCycles(), 2 * kBmtLevels * kMac);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates(), 0u);
}

TEST(BmtPipeline, SamePagePathFullyCoalesces)
{
    PipelineRig rig(true);
    rig.eng.secureWrite(0x0000, pattern(1), 0);
    rig.eng.secureWrite(0x0040, pattern(2), 0);
    // The second climb shares the entire leaf-to-root path with the
    // in-flight first climb: all 9 levels coalesce, none charged.
    EXPECT_EQ(rig.eng.bmtCycles(), kBmtLevels * kMac);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates(), kBmtLevels);
}

/**
 * Write each page once so its counter block is cached, then jump far
 * enough ahead that the warm-up climbs have retired. Rewrites after
 * this hit the counter cache, so consecutive climbs start a couple
 * hundred cycles apart — well inside each other's 9x160-cycle window.
 */
Tick
warmPages(PipelineRig &rig, std::initializer_list<Addr> addrs)
{
    for (const Addr a : addrs)
        rig.eng.secureWrite(a, pattern(0x55), 0);
    return 10'000'000;
}

TEST(BmtPipeline, OverlapStartsAtFirstSharedAncestor)
{
    PipelineRig rig(true);
    const Tick t0 = warmPages(rig, {0x0000, 0x7000, 0x8000});
    const auto base = rig.eng.bmtCoalescedUpdates();

    rig.eng.secureWrite(0x0000, pattern(1), t0);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates() - base, 0u);

    // Pages 0 and 7 share their level-1 ancestor (0 >> 3 == 7 >> 3)
    // but not the leaf: 8 of 9 levels coalesce, 1 is charged.
    rig.eng.secureWrite(0x7000, pattern(2), t0);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates() - base, kBmtLevels - 1);

    // Page 8 first meets either in-flight path at level 2
    // (8 >> 6 == 0 == 0 >> 6): 7 more levels coalesce, 2 charged.
    rig.eng.secureWrite(0x8000, pattern(3), t0);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates() - base,
              (kBmtLevels - 1) + (kBmtLevels - 2));
}

TEST(BmtPipeline, RetiredClimbsDoNotCoalesce)
{
    PipelineRig rig(true);
    rig.eng.secureWrite(0x0000, pattern(1), 0);
    // By 1M cycles the first climb's root update has long finished;
    // nothing is in flight, so the full serial climb is charged.
    rig.eng.secureWrite(0x0040, pattern(2), 1'000'000);
    EXPECT_EQ(rig.eng.bmtCycles(), 2 * kBmtLevels * kMac);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates(), 0u);
}

TEST(BmtPipeline, WindowEvictsOldestClimb)
{
    // Window of 1: after writing pages 0 then 8, only page 8's climb
    // is retained. A third write to page 0 can only join page 8's
    // path (7 shared levels), not its own earlier full path (9).
    PipelineRig rig(true, /*window=*/1);
    const Tick t0 = warmPages(rig, {0x0000, 0x8000});
    rig.eng.secureWrite(0x0000, pattern(1), t0);
    rig.eng.secureWrite(0x8000, pattern(2), t0);
    const auto after_two = rig.eng.bmtCoalescedUpdates();
    rig.eng.secureWrite(0x0040, pattern(3), t0);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates() - after_two,
              kBmtLevels - 2);

    // A wide window keeps page 0's climb in flight, so the same
    // third write fully coalesces.
    PipelineRig wide(true, /*window=*/4);
    const Tick t1 = warmPages(wide, {0x0000, 0x8000});
    wide.eng.secureWrite(0x0000, pattern(1), t1);
    wide.eng.secureWrite(0x8000, pattern(2), t1);
    const auto wide_two = wide.eng.bmtCoalescedUpdates();
    wide.eng.secureWrite(0x0040, pattern(3), t1);
    EXPECT_EQ(wide.eng.bmtCoalescedUpdates() - wide_two, kBmtLevels);
}

TEST(BmtPipeline, RootIsAlwaysUpdatedLast)
{
    // A coalesced climb joins an in-flight path *below* the root, so
    // its own root update cannot complete before the climb it joined
    // finishes updating the root. With a full-path overlap the
    // joining write inherits the in-flight climb's completion tick.
    PipelineRig rig(true);
    const auto r1 = rig.eng.secureWrite(0x0000, pattern(1), 0);
    const auto r2 = rig.eng.secureWrite(0x0040, pattern(2), 0);
    EXPECT_EQ(r2.doneTick, r1.doneTick);

    // Partial overlap: the join bound still holds (never earlier
    // than the joined climb's root update).
    const auto r3 = rig.eng.secureWrite(0x7000, pattern(3), 0);
    EXPECT_GE(r3.doneTick, r2.doneTick);
}

TEST(BmtPipeline, FunctionalWritePathIsUnchanged)
{
    PipelineRig off(false);
    PipelineRig on(true);
    const Addr addrs[] = {0x0000, 0x0040, 0x7000, 0x8000, 0x0040};
    for (unsigned i = 0; i < 5; ++i) {
        const Block pt = pattern(std::uint8_t(i + 1));
        const auto ro = off.eng.secureWrite(addrs[i], pt, 0);
        const auto rn = on.eng.secureWrite(addrs[i], pt, 0);
        // Same ciphertext, counter, and MAC: the pipeline elides
        // modeled latency only, never the cryptographic work.
        EXPECT_EQ(ro.ciphertext, rn.ciphertext);
        EXPECT_EQ(ro.counter, rn.counter);
        EXPECT_EQ(ro.macTag, rn.macTag);
        off.eng.writeCiphertext(addrs[i], ro.ciphertext, ro.doneTick);
        on.eng.writeCiphertext(addrs[i], rn.ciphertext, rn.doneTick);
    }
    for (unsigned i = 0; i < 4; ++i) {
        const auto rd_off = off.eng.secureRead(addrs[i], 10'000'000);
        const auto rd_on = on.eng.secureRead(addrs[i], 10'000'000);
        EXPECT_EQ(rd_off.data, rd_on.data);
    }
    EXPECT_FALSE(off.eng.attackDetected());
    EXPECT_FALSE(on.eng.attackDetected());
    EXPECT_GT(on.eng.bmtCoalescedUpdates(), 0u);
}

TEST(BmtPipeline, CrashClearsInflightWindow)
{
    PipelineRig rig(true);
    const auto r1 = rig.eng.secureWrite(0x0000, pattern(1), 0);
    rig.eng.writeCiphertext(0x0000, r1.ciphertext, r1.doneTick);
    rig.eng.crash();
    ASSERT_TRUE(rig.eng.recover().rootVerified);
    // The window is volatile: after power loss nothing is in flight,
    // so the next climb is charged in full even if issued "early".
    const auto before = rig.eng.bmtCycles();
    rig.eng.secureWrite(0x0040, pattern(2), 0);
    EXPECT_EQ(rig.eng.bmtCycles() - before, kBmtLevels * kMac);
    EXPECT_EQ(rig.eng.bmtCoalescedUpdates(), 0u);
}

} // namespace
