/**
 * @file
 * System-level metadata media-fault tests: region-aware injection
 * through the FaultInjector, repair at recovery and on the demand
 * path in every Dolos mode, the quarantine cascade's exact footprint
 * in the differential oracle's skip set, the damage report's region
 * and provenance fields, and an in-process metadata-fault crash
 * sweep.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

#include "secure/address_map.hh"
#include "tests/integration/integration_common.hh"
#include "verify/fault_injector.hh"
#include "verify/sweep_driver.hh"

namespace
{

using namespace dolos;
using namespace dolos::verify;

constexpr unsigned numBlocks = 24;

std::uint64_t
patternFor(Addr addr)
{
    return addr * 0x9E3779B97F4A7C15ULL + 0x5678;
}

/** Flushed+fenced writes, fully drained into the NVM store. */
void
populateAndDrain(System &sys)
{
    for (Addr a = 0; a < numBlocks * blockSize; a += 8) {
        const std::uint64_t v = patternFor(a);
        sys.core().store(a, &v, sizeof(v));
    }
    for (Addr a = 0; a < numBlocks * blockSize; a += blockSize)
        sys.core().clwb(a);
    sys.core().sfence();
    sys.controller().drainTo(sys.core().now() + 1'000'000);
    sys.core().compute(1'000'000);
}

/** One power cycle after populateAndDrain, to persist the counter
 *  and tree frames (recovery's write-back) and cool the caches. */
void
populateAndCycle(System &sys)
{
    populateAndDrain(sys);
    sys.crash();
    sys.recoverToCompletion();
    ASSERT_FALSE(sys.attackDetected());
}

void
expectVictimIntact(System &sys, Addr victim)
{
    Block buf;
    sys.core().load(victim, buf.data(), blockSize);
    Block expect;
    for (unsigned off = 0; off < blockSize; off += 8) {
        const std::uint64_t v = patternFor(victim + off);
        std::memcpy(expect.data() + off, &v, sizeof(v));
    }
    EXPECT_EQ(0, std::memcmp(buf.data(), expect.data(), blockSize))
        << "victim 0x" << std::hex << victim;
}

class MetadataRegionFaults : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(MetadataRegionFaults, StuckCounterFrameRebuiltAtRecovery)
{
    // The worst moment for a counter frame to wear out: while the
    // power is off, with the volatile truth gone. The recovery scan
    // reads the frame, exhausts the retry budget, and reconstructs
    // the page by trial MAC — no alarm, no quarantine.
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 401);
    populateAndCycle(sys);

    sys.crash();
    const auto rec = inj.injectMediaStuck(NvmRegion::Counter);
    ASSERT_TRUE(rec.injected) << rec.detail;
    EXPECT_EQ(rec.region, NvmRegion::Counter);
    sys.recoverToCompletion();

    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_FALSE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_GE(sys.engine().counterBlocksRebuilt(), 1u);
    expectVictimIntact(sys, rec.victim);
    EXPECT_FALSE(sys.attackDetected());
}

TEST_P(MetadataRegionFaults, StuckTreeNodeRepairedOnColdWalk)
{
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 402);
    populateAndCycle(sys);

    sys.crash();
    const auto rec = inj.injectMediaStuck(NvmRegion::Tree);
    ASSERT_TRUE(rec.injected) << rec.detail;
    EXPECT_EQ(rec.region, NvmRegion::Tree);
    sys.recoverToCompletion();

    // The node is demand-read on the victim's first cold tree walk;
    // the repair re-hashes it from its children. Node loss never
    // cascades to data.
    expectVictimIntact(sys, rec.victim);
    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_FALSE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_GE(sys.engine().treeNodesRepaired(), 1u);
}

TEST_P(MetadataRegionFaults, StuckMacFrameRebuiltOnDemand)
{
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 403);
    populateAndCycle(sys);

    sys.crash();
    const auto rec = inj.injectMediaStuck(NvmRegion::Mac);
    ASSERT_TRUE(rec.injected) << rec.detail;
    EXPECT_EQ(rec.region, NvmRegion::Mac);
    sys.recoverToCompletion();

    expectVictimIntact(sys, rec.victim);
    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_FALSE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_GE(sys.engine().macBlocksRebuilt(), 1u);
}

TEST_P(MetadataRegionFaults, TransientCounterFlipHealsInPlace)
{
    // A one-shot disturb error on a metadata frame heals on retry:
    // the damage report must stay empty.
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 404);
    populateAndCycle(sys);

    sys.crash();
    const auto rec = inj.injectMediaTransient(NvmRegion::Counter);
    ASSERT_TRUE(rec.injected) << rec.detail;
    sys.recoverToCompletion();

    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_FALSE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_EQ(sys.nvmDevice().quarantineCount(), 0u);
    expectVictimIntact(sys, rec.victim);
}

INSTANTIATE_TEST_SUITE_P(DolosModes, MetadataRegionFaults,
                         ::testing::Values(SecurityMode::DolosFullWpq,
                                           SecurityMode::DolosPartialWpq,
                                           SecurityMode::DolosPostWpq),
                         [](const auto &info) {
                             return dolos::test::modeLabel(info.param);
                         });

TEST(MacCascadeOracle, SkipSetCoversExactlyTheCoveredBlocks)
{
    auto cfg = dolos::test::cfgFor(SecurityMode::DolosPartialWpq);
    cfg.nvm.spareBlocks = 0;
    System sys(cfg);
    GoldenModel golden;
    sys.core().setObserver(&golden);
    populateAndDrain(sys);
    sys.crash();
    sys.recoverToCompletion();
    ASSERT_FALSE(sys.attackDetected());

    // Wear out the MAC frame covering blocks 8..15 and let the scrub
    // discover it: with no spare row left, the loss must cascade to
    // exactly those eight blocks — not their boundary neighbours.
    const Addr mb = AddressMap::macBlockAddr(8 * blockSize);
    const Block stored = sys.nvmDevice().readFunctional(mb);
    const bool current = stored[3] & 0x01;
    sys.nvmDevice().injectStuckBit(mb, 24, !current);
    const auto rep = sys.engine().scrubMetadata();
    EXPECT_EQ(rep.cascaded, 1u);
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_TRUE(sys.unrecoverableMedia());

    std::set<Addr> expect;
    for (unsigned i = 8; i < 16; ++i)
        expect.insert(i * blockSize);
    EXPECT_EQ(mediaSkipSet(sys, golden), expect);

    // The oracle verifies every healthy block byte-exactly and the
    // quarantined footprint is the only thing excluded.
    const auto report = checkAgainstGolden(sys, golden,
                                           mediaSkipSet(sys, golden));
    EXPECT_TRUE(report.clean()) << report.summary();
    sys.core().setObserver(nullptr);
}

TEST(MacCascadeOracle, DamageJsonRecordsRegionAndCascadeProvenance)
{
    auto cfg = dolos::test::cfgFor(SecurityMode::DolosPostWpq);
    cfg.nvm.spareBlocks = 0;
    System sys(cfg);
    populateAndDrain(sys);
    sys.crash();
    sys.recoverToCompletion();
    ASSERT_FALSE(sys.attackDetected());

    const Addr mb = AddressMap::macBlockAddr(0);
    const Block stored = sys.nvmDevice().readFunctional(mb);
    const bool current = stored[0] & 0x02;
    sys.nvmDevice().injectStuckBit(mb, 1, !current);
    ASSERT_EQ(sys.engine().scrubMetadata().cascaded, 1u);

    std::ostringstream os;
    sys.dumpDamageJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"unrecoverableMedia\":true"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"region\":\"mac\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"region\":\"data\""), std::string::npos)
        << json;
    char cause[64];
    std::snprintf(cause, sizeof(cause), "\"cause\":\"mac_block_0x%llx\"",
                  (unsigned long long)mb);
    EXPECT_NE(json.find(cause), std::string::npos) << json;
}

TEST(MetadataFaultSweep, EveryOpPointsStayCleanInProcess)
{
    // In-process slice of the metadata_fault_sweep tier2 lane: an
    // EveryOp crash sweep that sticks one metadata bit (region
    // rotating with the crash op) after every sampled power-off.
    SweepOptions opt;
    opt.mode = SecurityMode::DolosPartialWpq;
    opt.base = dolos::test::cfgFor(opt.mode);
    opt.params = dolos::test::smallParams(3);
    opt.numTx = 2;
    opt.budget = 3;
    opt.sampleSeed = 7;
    opt.pointSet = CrashPoints::EveryOp;
    opt.metadataFaults = true;
    const auto res = sweepCrashPoints(opt);
    ASSERT_FALSE(res.points.empty());
    for (const auto &p : res.points)
        EXPECT_TRUE(p.passed()) << res.firstFailure();
}

} // namespace
