/**
 * @file
 * Parallel sweep equivalence: sweepCrashPoints with jobs > 1 must
 * produce a result *bit-identical* to the serial run — same chosen
 * points in the same slots, same verdict, oracle counters, microstep
 * names, and recovery-attempt counts per point. Each crash point is a
 * fully self-contained replay (fresh System, golden model, and
 * thread-local crash-point registry), so worker scheduling must be
 * unobservable in the result. This is the contract behind the
 * `--jobs N` flag on dolos_torture / dolos_fuzz and behind REPRO
 * lines staying valid across any jobs value.
 */

#include <gtest/gtest.h>

#include "tests/integration/integration_common.hh"
#include "verify/sweep_driver.hh"
#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using dolos::test::cfgFor;
using dolos::test::smallParams;

verify::SweepOptions
microstepSweep(SecurityMode mode, std::uint64_t seed)
{
    verify::SweepOptions opt;
    opt.mode = mode;
    opt.workload = "hashmap";
    opt.numTx = 4;
    opt.params = smallParams(seed);
    opt.base = cfgFor(mode);
    opt.pointSet = verify::CrashPoints::Microstep;
    opt.budget = 8;
    opt.sampleSeed = seed;
    return opt;
}

void
expectIdentical(const verify::SweepResult &serial,
                const verify::SweepResult &parallel)
{
    EXPECT_EQ(serial.boundaries, parallel.boundaries);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const auto &s = serial.points[i];
        const auto &p = parallel.points[i];
        EXPECT_EQ(s.crashOp, p.crashOp) << "slot " << i;
        EXPECT_EQ(s.structureVerified, p.structureVerified)
            << "slot " << i;
        EXPECT_EQ(s.attackDetected, p.attackDetected) << "slot " << i;
        EXPECT_EQ(s.crashFired, p.crashFired) << "slot " << i;
        EXPECT_EQ(s.recoveryAttempts, p.recoveryAttempts)
            << "slot " << i;
        EXPECT_EQ(s.microstep, p.microstep) << "slot " << i;
        EXPECT_EQ(s.expectedLoss, p.expectedLoss) << "slot " << i;
        EXPECT_EQ(s.oracle.blocksScanned, p.oracle.blocksScanned)
            << "slot " << i;
        EXPECT_EQ(s.oracle.committedBytes, p.oracle.committedBytes)
            << "slot " << i;
        EXPECT_EQ(s.oracle.inFlightBytes, p.oracle.inFlightBytes)
            << "slot " << i;
        EXPECT_EQ(s.oracle.untouchedBytes, p.oracle.untouchedBytes)
            << "slot " << i;
        EXPECT_EQ(s.oracle.violations, p.oracle.violations)
            << "slot " << i;
        EXPECT_EQ(s.oracle.diagnostics, p.oracle.diagnostics)
            << "slot " << i;
    }
}

class ParallelSweep : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(ParallelSweep, MicrostepJobs4MatchesSerialBitForBit)
{
    auto opt = microstepSweep(GetParam(), 29);
    opt.jobs = 1;
    const auto serial = verify::sweepCrashPoints(opt);
    ASSERT_FALSE(serial.points.empty());
    EXPECT_TRUE(serial.allPassed())
        << serial.firstFailure()
        << "\n  repro: " << verify::describeSweep(opt);

    opt.jobs = 4;
    const auto parallel = verify::sweepCrashPoints(opt);
    expectIdentical(serial, parallel);
}

TEST_P(ParallelSweep, MoreWorkersThanPointsStillMatches)
{
    // Degenerate split: more workers than crash points. The driver
    // clamps the pool to the point count; the result must not change.
    auto opt = microstepSweep(GetParam(), 31);
    opt.budget = 3;
    opt.jobs = 1;
    const auto serial = verify::sweepCrashPoints(opt);
    ASSERT_FALSE(serial.points.empty());

    opt.jobs = 16;
    const auto parallel = verify::sweepCrashPoints(opt);
    expectIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ParallelSweep,
    ::testing::Values(SecurityMode::DolosPartialWpq,
                      SecurityMode::EadrSecure),
    [](const auto &info) {
        return dolos::test::modeLabel(info.param);
    });

} // namespace
