/**
 * @file
 * GoldenModel state-machine tests (driving the observer callbacks
 * directly) plus end-to-end differential checks on a real machine,
 * including the oracle-sensitivity guarantee: a silently dropped
 * CLWB must surface as a committed-prefix violation.
 */

#include <gtest/gtest.h>

#include "dolos/system.hh"
#include "tests/integration/integration_common.hh"
#include "verify/diff_oracle.hh"
#include "verify/fault_injector.hh"

namespace
{

using namespace dolos;
using namespace dolos::verify;

void
store8(GoldenModel &m, Addr addr, std::uint8_t v)
{
    m.onStore(addr, &v, 1);
}

void
load8(GoldenModel &m, Addr addr, std::uint8_t v)
{
    m.onLoad(addr, &v, 1);
}

TEST(GoldenModel, UntouchedBytesMustReadZero)
{
    GoldenModel m;
    EXPECT_EQ(m.classify(0x100), ByteClass::Untouched);
    load8(m, 0x100, 0x00);
    EXPECT_TRUE(m.clean());
    load8(m, 0x100, 0x5A);
    EXPECT_EQ(m.violationCount(), 1u);
    ASSERT_FALSE(m.diagnostics().empty());
}

TEST(GoldenModel, CoherentLoadSeesLatestStore)
{
    GoldenModel m;
    store8(m, 0x40, 0x11);
    store8(m, 0x40, 0x22);
    load8(m, 0x40, 0x22);
    EXPECT_TRUE(m.clean());
    load8(m, 0x40, 0x11); // stale: the machine would be incoherent
    EXPECT_EQ(m.violationCount(), 1u);
}

TEST(GoldenModel, CommittedByteIsExactAfterCrash)
{
    GoldenModel m;
    store8(m, 0x80, 0x33);
    m.onClwb(0x80);
    m.onSfence();
    EXPECT_EQ(m.classify(0x80), ByteClass::Committed);
    m.onCrash();
    EXPECT_EQ(m.classify(0x80), ByteClass::Committed);
    load8(m, 0x80, 0x33);
    EXPECT_TRUE(m.clean());
    load8(m, 0x80, 0x00); // committed data lost: violation
    EXPECT_EQ(m.violationCount(), 1u);
}

TEST(GoldenModel, CrashForksAdmissibleSetAndFirstLoadPins)
{
    GoldenModel m;
    store8(m, 0xC0, 0x01);
    m.onClwb(0xC0);
    m.onSfence(); // floor = 0x01
    store8(m, 0xC0, 0x02); // in flight at the crash
    m.onCrash();
    EXPECT_EQ(m.classify(0xC0), ByteClass::InFlight);
    EXPECT_EQ(m.crashesSeen(), 1u);

    // Either value is admissible; 0x03 never existed.
    load8(m, 0xC0, 0x02);
    EXPECT_TRUE(m.clean());
    EXPECT_EQ(m.classify(0xC0), ByteClass::Committed);
    // The first observation pinned 0x02: flipping back is a bug.
    load8(m, 0xC0, 0x01);
    EXPECT_EQ(m.violationCount(), 1u);
}

TEST(GoldenModel, NeverHeldValueIsInadmissibleAfterCrash)
{
    GoldenModel m;
    store8(m, 0xC0, 0x01);
    m.onClwb(0xC0);
    m.onSfence();
    store8(m, 0xC0, 0x02);
    m.onCrash();
    load8(m, 0xC0, 0x03);
    EXPECT_EQ(m.violationCount(), 1u);
}

TEST(GoldenModel, SfenceCommitsOnlyTheFlushedSnapshot)
{
    GoldenModel m;
    store8(m, 0x40, 0x0A);
    m.onClwb(0x40);
    store8(m, 0x40, 0x0B); // after the CLWB: not covered by it
    m.onSfence();          // commits 0x0A, 0x0B stays pending
    m.onCrash();
    // Admissible: committed 0x0A or the in-flight 0x0B — but never
    // the initial zero, which the fence overwrote durably.
    load8(m, 0x40, 0x00);
    EXPECT_EQ(m.violationCount(), 1u);
}

TEST(GoldenModel, RepeatedCrashesKeepPriorAdmissibleValues)
{
    GoldenModel m;
    store8(m, 0x40, 0x01);
    m.onCrash(); // admissible {0x00-floor, 0x01}
    store8(m, 0x40, 0x02);
    m.onCrash(); // admissible {0x00, 0x01, 0x02}
    load8(m, 0x40, 0x01);
    EXPECT_TRUE(m.clean());
}

TEST(GoldenModelSystem, CleanRunThroughRealMachineStaysClean)
{
    System sys(dolos::test::cfgFor(SecurityMode::DolosPartialWpq));
    GoldenModel golden;
    sys.core().setObserver(&golden);

    for (Addr a = 0; a < 32 * blockSize; a += 8) {
        const std::uint64_t v = a * 0x9E3779B97F4A7C15ULL + 1;
        sys.core().store(a, &v, sizeof(v));
    }
    for (Addr a = 0; a < 32 * blockSize; a += blockSize)
        sys.core().clwb(a);
    sys.core().sfence();
    sys.crash();
    sys.recover();

    const auto report = checkAgainstGolden(sys, golden);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.blocksScanned, 32u);
    EXPECT_EQ(report.committedBytes, 32u * blockSize);
    EXPECT_EQ(report.inFlightBytes, 0u);
    sys.core().setObserver(nullptr);
}

TEST(GoldenModelSystem, DroppedClwbIsCaughtByTheOracle)
{
    // A platform that silently loses a CLWB violates the committed
    // prefix; the differential oracle must see it even though no
    // integrity check can (nothing was tampered with).
    System sys(dolos::test::cfgFor(SecurityMode::DolosPartialWpq));
    GoldenModel golden;
    sys.core().setObserver(&golden);
    FaultInjector inj(sys, 7);

    const std::uint64_t v = 0xD0105D0105D0105ULL;
    sys.core().store(0x1000, &v, sizeof(v));
    const auto rec = inj.armDroppedClwb(0);
    EXPECT_TRUE(rec.injected);
    sys.core().clwb(0x1000); // dropped: never reaches the WPQ
    sys.core().sfence();     // nothing outstanding: returns at once
    sys.crash();
    sys.recover();

    const auto report = checkAgainstGolden(sys, golden);
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(sys.attackDetected()); // a bug, not an attack
    ASSERT_FALSE(report.diagnostics.empty());
    sys.core().setObserver(nullptr);
}

TEST(GoldenModelSystem, HonoredClwbKeepsTheSameSequenceClean)
{
    // Control for the dropped-CLWB test: identical sequence, flush
    // honored, oracle clean.
    System sys(dolos::test::cfgFor(SecurityMode::DolosPartialWpq));
    GoldenModel golden;
    sys.core().setObserver(&golden);

    const std::uint64_t v = 0xD0105D0105D0105ULL;
    sys.core().store(0x1000, &v, sizeof(v));
    sys.core().clwb(0x1000);
    sys.core().sfence();
    sys.crash();
    sys.recover();

    const auto report = checkAgainstGolden(sys, golden);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_FALSE(sys.attackDetected());
    sys.core().setObserver(nullptr);
}

} // namespace
