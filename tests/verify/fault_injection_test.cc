/**
 * @file
 * Attack-detection tests: for every fault class the injector can
 * produce, every secure controller organization must raise the
 * attack-detected flag — and the non-secure ideal must corrupt
 * silently (the negative control that proves the tests detect the
 * detection, not some side effect).
 *
 * The deterministic protocol: populate a few blocks with flushed,
 * fenced writes; power-cycle once so the ADR dump is drained, the
 * metadata caches are cold and all counter state is persisted; then
 * inject and provoke the check (a read of the victim, or a second
 * recovery for rollback attacks, whose detection point is boot).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "secure/address_map.hh"
#include "tests/integration/integration_common.hh"
#include "verify/fault_injector.hh"

namespace
{

using namespace dolos;
using namespace dolos::verify;

constexpr unsigned numBlocks = 24;

std::uint64_t
patternFor(Addr addr)
{
    return addr * 0xC2B2AE3D27D4EB4FULL + 0x1234;
}

/** Flushed+fenced writes, then one power cycle to quiesce. */
void
populateAndCycle(System &sys)
{
    for (Addr a = 0; a < numBlocks * blockSize; a += 8) {
        const std::uint64_t v = patternFor(a);
        sys.core().store(a, &v, sizeof(v));
    }
    for (Addr a = 0; a < numBlocks * blockSize; a += blockSize)
        sys.core().clwb(a);
    sys.core().sfence();
    // Let the WPQ drain fully before the power cycle: an empty ADR
    // dump means recovery replays nothing, so the engine's counter
    // and tree caches stay cold — the victim read after injection
    // must then walk (and authenticate) the full tree path.
    sys.controller().drainTo(sys.core().now() + 1'000'000);
    sys.core().compute(1'000'000);
    sys.crash();
    sys.recover();
    ASSERT_FALSE(sys.attackDetected());
}

struct FaultCase
{
    SecurityMode mode;
    FaultKind kind;
};

class AttackDetection : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(AttackDetection, SecureModesRaiseTheAlarm)
{
    const auto &[mode, kind] = GetParam();
    System sys(dolos::test::cfgFor(mode));
    FaultInjector inj(sys, 1000 + unsigned(kind));
    populateAndCycle(sys);

    InjectionRecord rec;
    if (kind == FaultKind::CounterRollback) {
        // Rollback is a boot-time attack: tamper with the powered-off
        // image, detection happens when recovery rebuilds the tree
        // and compares against the on-chip root.
        sys.crash();
        rec = inj.injectCounterRollback();
        ASSERT_TRUE(rec.injected) << rec.detail;
        sys.recover();
    } else {
        // Flips are bus/NVM attacks: detection happens on the next
        // read that authenticates the victim.
        rec = inj.inject(kind);
        ASSERT_TRUE(rec.injected) << rec.detail;
        Block buf;
        sys.core().load(rec.victim, buf.data(), blockSize);
    }
    EXPECT_TRUE(sys.attackDetected())
        << securityModeName(mode) << " missed " << faultKindName(kind)
        << ": " << rec.detail;
}

std::vector<FaultCase>
faultCases()
{
    std::vector<FaultCase> cases;
    for (const auto mode : dolos::test::secureModes())
        for (const auto kind :
             {FaultKind::DataFlip, FaultKind::MacFlip,
              FaultKind::CounterRollback, FaultKind::BmtFlip})
            cases.push_back({mode, kind});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    ModesXFaults, AttackDetection, ::testing::ValuesIn(faultCases()),
    [](const auto &info) {
        std::string n = dolos::test::modeLabel(info.param.mode);
        n += "_";
        for (const char c : std::string(faultKindName(info.param.kind)))
            if (c != '-')
                n.push_back(c);
        return n;
    });

TEST(AttackDetectionControl, NonSecureIdealCorruptsSilently)
{
    // Negative control: without a security engine in the path, a
    // flipped NVM bit reads back wrong and nothing notices.
    System sys(dolos::test::cfgFor(SecurityMode::NonSecureIdeal));
    FaultInjector inj(sys, 77);
    populateAndCycle(sys);

    const auto rec = inj.injectDataFlip();
    ASSERT_TRUE(rec.injected) << rec.detail;
    Block buf;
    sys.core().load(rec.victim, buf.data(), blockSize);

    Block expect;
    for (unsigned off = 0; off < blockSize; off += 8) {
        const std::uint64_t v = patternFor(rec.victim + off);
        std::memcpy(expect.data() + off, &v, sizeof(v));
    }
    EXPECT_NE(0, std::memcmp(buf.data(), expect.data(), blockSize));
    EXPECT_FALSE(sys.attackDetected());
}

class TornDump : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(TornDump, DolosModesAuthenticateTheAdrDump)
{
    // Fill the WPQ right before the crash so the dump is non-trivial,
    // then tear the ADR flush after two entries. The Mi-SU dump
    // authentication must refuse the truncated dump at recovery.
    // The serial (paper) persist path keeps enough entries queued at
    // the crash — the default-on levers drain too fast for the tear
    // to have three entries to truncate.
    auto cfg = dolos::test::cfgFor(GetParam());
    cfg.secure.bmtPipeline = false;
    cfg.secure.tagPrefetch = false;
    cfg.wpq.drainBatching = false;
    System sys(cfg);
    FaultInjector inj(sys, 5);

    for (Addr a = 0; a < numBlocks * blockSize; a += 8) {
        const std::uint64_t v = patternFor(a);
        sys.core().store(a, &v, sizeof(v));
    }
    for (Addr a = 0; a < numBlocks * blockSize; a += blockSize)
        sys.core().clwb(a);
    sys.core().sfence(); // Dolos: persisted at WPQ *insertion*

    const auto rec = inj.armTornAdrDump(2);
    ASSERT_TRUE(rec.injected);
    const auto dump = sys.crash();
    ASSERT_GT(dump.entriesDumped, 2u)
        << "WPQ drained before the crash; tear had nothing to tear";
    const auto boot = sys.recover();
    EXPECT_FALSE(boot.misuVerified);
    EXPECT_TRUE(sys.attackDetected());
}

INSTANTIATE_TEST_SUITE_P(DolosModes, TornDump,
                         ::testing::Values(SecurityMode::DolosFullWpq,
                                           SecurityMode::DolosPartialWpq,
                                           SecurityMode::DolosPostWpq),
                         [](const auto &info) {
                             return dolos::test::modeLabel(info.param);
                         });

class MediaFaults : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(MediaFaults, TransientFlipHealsSilently)
{
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 301);
    populateAndCycle(sys);

    const auto rec = inj.injectMediaTransient();
    ASSERT_TRUE(rec.injected) << rec.detail;
    Block buf;
    sys.core().load(rec.victim, buf.data(), blockSize);

    // The device flagged the corruption, so the engine retried
    // instead of alarming — and the data came back intact.
    Block expect;
    for (unsigned off = 0; off < blockSize; off += 8) {
        const std::uint64_t v = patternFor(rec.victim + off);
        std::memcpy(expect.data() + off, &v, sizeof(v));
    }
    EXPECT_EQ(0, std::memcmp(buf.data(), expect.data(), blockSize))
        << rec.detail;
    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_FALSE(sys.unrecoverableMedia());
    EXPECT_GE(sys.engine().mediaHealed(), 1u);
}

TEST_P(MediaFaults, StuckCellQuarantinesNotAlarms)
{
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 302);
    populateAndCycle(sys);

    const auto rec = inj.injectMediaStuck();
    ASSERT_TRUE(rec.injected) << rec.detail;
    Block buf;
    sys.core().load(rec.victim, buf.data(), blockSize);

    // Unhealable wear is graceful degradation, never tamper.
    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_TRUE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_TRUE(sys.nvmDevice().isQuarantined(rec.victim));
    EXPECT_EQ(buf, zeroBlock());
}

TEST_P(MediaFaults, WriteFailureQuarantinesNotAlarms)
{
    System sys(dolos::test::cfgFor(GetParam()));
    FaultInjector inj(sys, 303);
    populateAndCycle(sys);

    const auto rec = inj.inject(FaultKind::MediaWriteFail);
    ASSERT_TRUE(rec.injected) << rec.detail;
    // Rewrite the victim: every program pulse fails, the controller
    // retries, gives up and quarantines.
    const std::uint64_t v = ~patternFor(rec.victim);
    sys.core().store(rec.victim, &v, sizeof(v));
    sys.core().clwb(rec.victim);
    sys.core().sfence();
    sys.controller().drainTo(sys.core().now() + 1'000'000);
    sys.core().compute(1'000'000);

    EXPECT_FALSE(sys.attackDetected()) << rec.detail;
    EXPECT_TRUE(sys.unrecoverableMedia()) << rec.detail;
    EXPECT_TRUE(sys.nvmDevice().isQuarantined(rec.victim));
}

INSTANTIATE_TEST_SUITE_P(
    SecureModes, MediaFaults,
    ::testing::ValuesIn(dolos::test::secureModes()),
    [](const auto &info) {
        return dolos::test::modeLabel(info.param);
    });

TEST(MediaFaultsControl, DamageReportListsQuarantinedBlocks)
{
    System sys(dolos::test::cfgFor(SecurityMode::DolosPartialWpq));
    FaultInjector inj(sys, 304);
    populateAndCycle(sys);

    const auto rec = inj.injectMediaStuck();
    ASSERT_TRUE(rec.injected);
    Block buf;
    sys.core().load(rec.victim, buf.data(), blockSize);
    ASSERT_TRUE(sys.unrecoverableMedia());

    std::ostringstream os;
    sys.dumpDamageJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"unrecoverableMedia\":true"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"quarantined\":[{"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"attackDetected\":false"), std::string::npos)
        << json;
}

TEST(TornDumpControl, UntornDumpRecoversCleanly)
{
    // Same burst, no tear: the dump must authenticate and the data
    // must be intact after recovery.
    System sys(dolos::test::cfgFor(SecurityMode::DolosPartialWpq));
    for (Addr a = 0; a < numBlocks * blockSize; a += 8) {
        const std::uint64_t v = patternFor(a);
        sys.core().store(a, &v, sizeof(v));
    }
    for (Addr a = 0; a < numBlocks * blockSize; a += blockSize)
        sys.core().clwb(a);
    sys.core().sfence();
    sys.crash();
    const auto boot = sys.recover();
    EXPECT_TRUE(boot.misuVerified);
    EXPECT_FALSE(sys.attackDetected());
    for (Addr a = 0; a < numBlocks * blockSize; a += 8) {
        std::uint64_t out = 0;
        sys.core().load(a, &out, sizeof(out));
        ASSERT_EQ(out, patternFor(a)) << "addr 0x" << std::hex << a;
    }
}

} // namespace
