/**
 * @file
 * In-order core tests: timing, persist-ordering semantics.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "tests/mem/fake_memory.hh"

namespace
{

using namespace dolos;
using dolos::test::FakeMemory;

HierarchyParams
tinyHierarchy()
{
    HierarchyParams p;
    p.l1 = {"l1", 512, 2, 2};
    p.l2 = {"l2", 2048, 4, 20};
    p.llc = {"llc", 8192, 8, 32};
    return p;
}

struct CoreTest : ::testing::Test
{
    FakeMemory mem{600};
    CacheHierarchy h{tinyHierarchy(), mem};
    SimpleCore core{h};
};

TEST_F(CoreTest, ComputeAdvancesClockAndInstructions)
{
    core.compute(100);
    EXPECT_EQ(core.now(), 100u);
    EXPECT_EQ(core.instructions(), 100u);
}

TEST_F(CoreTest, StoreThenLoadRoundTrips)
{
    const std::uint64_t v = 0xFEED;
    core.store(0x100, &v, sizeof(v));
    std::uint64_t out = 0;
    core.load(0x100, &out, sizeof(out));
    EXPECT_EQ(out, v);
}

TEST_F(CoreTest, LoadMissCostsMemoryLatency)
{
    std::uint8_t buf[8];
    core.load(0x0, buf, 8);
    EXPECT_EQ(core.now(), 2u + 20u + 32u + 600u);
}

TEST_F(CoreTest, ClwbDoesNotBlock)
{
    const std::uint64_t v = 1;
    core.store(0x0, &v, 8);
    const Tick before = core.now();
    core.clwb(0x0);
    // CLWB costs only the issue latency, not the persist latency.
    EXPECT_LE(core.now(), before + 4);
}

TEST_F(CoreTest, SfenceWaitsForPersist)
{
    const std::uint64_t v = 1;
    core.store(0x0, &v, 8);
    core.clwb(0x0);
    const Tick before = core.now();
    core.sfence();
    // FakeMemory persists at issue + 600.
    EXPECT_GE(core.now(), before);
    EXPECT_GT(core.fenceStallCycles(), 0u);
    EXPECT_EQ(core.fences(), 1u);
}

TEST_F(CoreTest, SfenceWithNoOutstandingPersistsIsFree)
{
    core.compute(10);
    const Tick before = core.now();
    core.sfence();
    EXPECT_EQ(core.now(), before);
    EXPECT_EQ(core.fenceStallCycles(), 0u);
}

TEST_F(CoreTest, SecondSfenceDoesNotRewait)
{
    const std::uint64_t v = 1;
    core.store(0x0, &v, 8);
    core.clwb(0x0);
    core.sfence();
    const Tick after_first = core.now();
    core.sfence();
    EXPECT_EQ(core.now(), after_first);
}

TEST_F(CoreTest, MultipleClwbsOverlapUnderOneFence)
{
    // Three flushed lines, one fence: the stall is bounded by the
    // slowest persist, not the sum.
    for (Addr a = 0; a < 3; ++a) {
        const std::uint64_t v = a;
        core.store(a * 0x40, &v, 8);
    }
    for (Addr a = 0; a < 3; ++a)
        core.clwb(a * 0x40);
    const Tick issue = core.now();
    core.sfence();
    EXPECT_LT(core.now(), issue + 3 * 600);
}

TEST_F(CoreTest, CpiReflectsStalls)
{
    core.compute(100);          // CPI 1 so far
    std::uint8_t buf[8];
    core.load(0x0, buf, 8);     // long miss
    EXPECT_GT(core.cpi(), 1.0);
}

} // namespace
