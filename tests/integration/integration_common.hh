/**
 * @file
 * Shared configuration helpers for the integration test suite.
 *
 * Every integration test wants the same things: a paper-default
 * system scaled down so runs finish in CI time (a small functional
 * tree, optionally small caches to force eviction traffic) and small
 * workload parameters. Keeping them here keeps the suites in
 * agreement about what "small" means.
 */

#ifndef DOLOS_TESTS_INTEGRATION_COMMON_HH
#define DOLOS_TESTS_INTEGRATION_COMMON_HH

#include <string>
#include <vector>

#include "dolos/config.hh"
#include "workloads/workload.hh"

namespace dolos::test
{

/** Paper defaults with a small functional tree (8K pages). */
inline SystemConfig
cfgFor(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 8192;
    cfg.secure.map.protectedBytes = Addr(8192) * pageBytes;
    return cfg;
}

/** cfgFor plus caches small enough to force frequent evictions. */
inline SystemConfig
smallCacheCfgFor(SecurityMode mode)
{
    auto cfg = cfgFor(mode);
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

/** Workload parameters small enough for crash sweeps. */
inline workloads::WorkloadParams
smallParams(std::uint64_t seed)
{
    workloads::WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 48;
    p.seed = seed;
    p.thinkTime = 400;
    p.readsPerTx = 1;
    return p;
}

/** All six controller organizations. */
inline std::vector<SecurityMode>
allModes()
{
    return {SecurityMode::NonSecureIdeal,
            SecurityMode::PreWpqSecure,
            SecurityMode::PostWpqUnprotected,
            SecurityMode::DolosFullWpq,
            SecurityMode::DolosPartialWpq,
            SecurityMode::DolosPostWpq};
}

/** The modes with a full security engine in the read/write path. */
inline std::vector<SecurityMode>
secureModes()
{
    return {SecurityMode::PreWpqSecure,
            SecurityMode::DolosFullWpq,
            SecurityMode::DolosPartialWpq,
            SecurityMode::DolosPostWpq};
}

/** Mode name stripped to a valid gtest parameter label. */
inline std::string
modeLabel(SecurityMode mode)
{
    std::string out;
    for (const char c : std::string(securityModeName(mode)))
        if (c != '-')
            out.push_back(c);
    return out;
}

} // namespace dolos::test

#endif // DOLOS_TESTS_INTEGRATION_COMMON_HH
