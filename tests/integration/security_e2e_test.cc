/**
 * @file
 * End-to-end security tests: §4.1 attack classes against a running
 * machine and across crashes; confidentiality of the NVM image.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dolos/system.hh"

namespace
{

using namespace dolos;

SystemConfig
cfgFor(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    return cfg;
}

Block
marker(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (0xA5 + i));
    return b;
}

void
persistBlockThroughCore(System &sys, Addr addr, const Block &b)
{
    sys.core().store(addr, b.data(), blockSize);
    sys.core().clwb(addr);
    sys.core().sfence();
}

struct SecurityE2E : ::testing::TestWithParam<SecurityMode>
{
    System sys{cfgFor(GetParam())};

    void
    settle()
    {
        sys.controller().drainTo(sys.core().now() + 1'000'000);
        sys.core().compute(1'000'000);
        sys.hierarchy().invalidateAll();
    }
};

TEST_P(SecurityE2E, NvmImageIsCiphertextOnly)
{
    const Block m = marker(1);
    persistBlockThroughCore(sys, 0x1000, m);
    settle();
    const Block at_rest = sys.nvmDevice().readFunctional(0x1000);
    EXPECT_NE(at_rest, m);
    // No 8-byte window of the plaintext shows through.
    for (unsigned off = 0; off + 8 <= blockSize; ++off)
        EXPECT_NE(std::memcmp(at_rest.data() + off, m.data() + off, 8),
                  0)
            << "plaintext leak at offset " << off;
}

TEST_P(SecurityE2E, SpoofingDetected)
{
    persistBlockThroughCore(sys, 0x1000, marker(2));
    settle();
    Block ct = sys.nvmDevice().readFunctional(0x1000);
    ct[17] ^= 0x04;
    sys.nvmDevice().writeFunctional(0x1000, ct);
    Block out;
    sys.core().load(0x1000, out.data(), blockSize);
    EXPECT_TRUE(sys.attackDetected());
}

TEST_P(SecurityE2E, ReplayDetected)
{
    persistBlockThroughCore(sys, 0x1000, marker(3));
    settle();
    const Block old_ct = sys.nvmDevice().readFunctional(0x1000);
    const Block old_mac = sys.nvmDevice().readFunctional(
        AddressMap::macBlockAddr(0x1000));
    persistBlockThroughCore(sys, 0x1000, marker(4));
    settle();
    sys.nvmDevice().writeFunctional(0x1000, old_ct);
    sys.nvmDevice().writeFunctional(AddressMap::macBlockAddr(0x1000),
                                    old_mac);
    Block out;
    sys.core().load(0x1000, out.data(), blockSize);
    EXPECT_TRUE(sys.attackDetected());
}

TEST_P(SecurityE2E, RelocationDetected)
{
    persistBlockThroughCore(sys, 0x1000, marker(5));
    persistBlockThroughCore(sys, 0x2000, marker(6));
    settle();
    auto &nvm = sys.nvmDevice();
    nvm.writeFunctional(0x2000, nvm.readFunctional(0x1000));
    Block mb = nvm.readFunctional(AddressMap::macBlockAddr(0x2000));
    const Block ma = nvm.readFunctional(AddressMap::macBlockAddr(0x1000));
    std::memcpy(mb.data() + AddressMap::macOffsetInBlock(0x2000),
                ma.data() + AddressMap::macOffsetInBlock(0x1000), 8);
    nvm.writeFunctional(AddressMap::macBlockAddr(0x2000), mb);
    Block out;
    sys.core().load(0x2000, out.data(), blockSize);
    EXPECT_TRUE(sys.attackDetected());
}

TEST_P(SecurityE2E, ColdBootCounterTamperDetectedAtRecovery)
{
    persistBlockThroughCore(sys, 0x1000, marker(7));
    settle();
    sys.crash();
    // Cold-boot adversary rolls a counter block forward and wipes
    // the shadow region so the stale state is "plausible".
    const Addr cb = AddressMap::counterBlockAddr(0x1000);
    Block b = sys.nvmDevice().readFunctional(cb);
    b[8] ^= 0x3;
    sys.nvmDevice().writeFunctional(cb, b);
    const auto rec = sys.recover();
    EXPECT_FALSE(rec.engine.rootVerified);
    EXPECT_TRUE(sys.attackDetected());
}

TEST_P(SecurityE2E, HonestCrashRecoveryRaisesNoAlarms)
{
    for (int i = 0; i < 6; ++i)
        persistBlockThroughCore(sys, 0x1000 + Addr(i) * 0x40,
                                marker(std::uint8_t(10 + i)));
    sys.crash();
    const auto rec = sys.recover();
    EXPECT_TRUE(rec.misuVerified);
    EXPECT_TRUE(rec.engine.rootVerified);
    for (int i = 0; i < 6; ++i) {
        Block out;
        sys.core().load(0x1000 + Addr(i) * 0x40, out.data(), blockSize);
        EXPECT_EQ(out, marker(std::uint8_t(10 + i)));
    }
    EXPECT_FALSE(sys.attackDetected());
}

INSTANTIATE_TEST_SUITE_P(Modes, SecurityE2E,
                         ::testing::Values(
                             SecurityMode::PreWpqSecure,
                             SecurityMode::DolosFullWpq,
                             SecurityMode::DolosPartialWpq,
                             SecurityMode::DolosPostWpq),
                         [](const auto &info) {
                             std::string n =
                                 securityModeName(info.param);
                             std::string out;
                             for (char c : n)
                                 if (c != '-')
                                     out.push_back(c);
                             return out;
                         });

TEST(SecurityNegative, NonSecureModeStoresPlaintextAndMissesAttacks)
{
    // The ideal mode is the paper's insecure yardstick: NVM holds
    // plaintext and nothing is detected. This is the negative
    // control showing the secure modes' checks are load-bearing.
    System sys(cfgFor(SecurityMode::NonSecureIdeal));
    const Block m = marker(9);
    persistBlockThroughCore(sys, 0x1000, m);
    sys.controller().drainTo(sys.core().now() + 1'000'000);
    EXPECT_EQ(sys.nvmDevice().readFunctional(0x1000), m);
    Block ct = sys.nvmDevice().readFunctional(0x1000);
    ct[0] ^= 0xFF;
    sys.nvmDevice().writeFunctional(0x1000, ct);
    sys.hierarchy().invalidateAll();
    sys.core().compute(2'000'000);
    Block out;
    sys.core().load(0x1000, out.data(), blockSize);
    EXPECT_FALSE(sys.attackDetected());
}

} // namespace
