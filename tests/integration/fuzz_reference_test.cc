/**
 * @file
 * Reference-model fuzzing: drive long random operation sequences
 * through the full machine (core -> caches -> controller -> NVM) and
 * check every load against two independent referees: a flat
 * host-side reference memory inside the test, and the verification
 * subsystem's GoldenModel attached as a core observer (which also
 * understands persistence, so it keeps adjudicating across crashes).
 * Any coherence bug between cache levels, the WPQ tag array, the
 * security engine's encrypt/decrypt path or the recovery machinery
 * shows up as a mismatch.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "dolos/system.hh"
#include "sim/random.hh"
#include "tests/integration/integration_common.hh"
#include "verify/golden_model.hh"

namespace
{

using namespace dolos;
using dolos::test::smallCacheCfgFor;

/** Tag every assertion with the episode's RNG seed so a red run is
 *  reproducible from the log alone (satellites of the torture/fuzz
 *  repro policy: no failure without its seed). */
std::string
seedTrace(const char *test, std::uint64_t seed)
{
    std::ostringstream os;
    os << test << " seed=0x" << std::hex << seed
       << " (rerun: --gtest_filter=*" << test << "*)";
    return os.str();
}

class FuzzReference : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(FuzzReference, RandomTrafficMatchesReferenceMemory)
{
    System sys(smallCacheCfgFor(GetParam()));
    verify::GoldenModel golden;
    sys.core().setObserver(&golden);
    auto &core = sys.core();
    const std::uint64_t seed = 0xF00D + unsigned(GetParam());
    SCOPED_TRACE(seedTrace("RandomTrafficMatchesReferenceMemory", seed));
    Random rng(seed);
    std::map<Addr, std::uint64_t> reference;

    constexpr Addr span = 128 * 1024; // working set >> cache sizes
    std::vector<Addr> flushable;

    for (int op = 0; op < 30000; ++op) {
        const Addr addr = blockAlign(rng.below(span)) +
                          8 * rng.below(blockSize / 8);
        const auto kind = rng.below(100);
        if (kind < 45) {
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            reference[addr] = v;
            flushable.push_back(addr);
        } else if (kind < 85) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            const auto it = reference.find(addr);
            const std::uint64_t expect =
                it == reference.end() ? 0 : it->second;
            ASSERT_EQ(out, expect)
                << "op " << op << " addr 0x" << std::hex << addr;
        } else if (kind < 95) {
            if (!flushable.empty())
                core.clwb(flushable[rng.below(flushable.size())]);
        } else {
            core.sfence();
        }
    }
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_TRUE(golden.clean())
        << (golden.diagnostics().empty() ? std::string()
                                         : golden.diagnostics().front());
    EXPECT_GT(golden.checkedLoads(), 0u);
    sys.core().setObserver(nullptr);
}

TEST_P(FuzzReference, FlushedStateSurvivesRandomCrashPoints)
{
    // Random writes, all flushed+fenced, then a crash: everything
    // fenced must read back; integrity intact.
    System sys(smallCacheCfgFor(GetParam()));
    verify::GoldenModel golden;
    sys.core().setObserver(&golden);
    auto &core = sys.core();
    const std::uint64_t seed = 0xBEEF + unsigned(GetParam());
    SCOPED_TRACE(seedTrace("FlushedStateSurvivesRandomCrashPoints", seed));
    Random rng(seed);
    std::map<Addr, std::uint64_t> fenced;

    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 150; ++i) {
            const Addr addr = blockAlign(rng.below(Addr(64) * 1024));
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            core.clwb(addr);
            fenced[addr] = v;
        }
        core.sfence();
        if (GetParam() == SecurityMode::PostWpqUnprotected)
            continue; // infeasible design: no honest crash story
        sys.crash();
        const auto rec = sys.recover();
        ASSERT_TRUE(rec.engine.rootVerified ||
                    GetParam() == SecurityMode::NonSecureIdeal);
        for (const auto &[addr, v] : fenced) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            ASSERT_EQ(out, v) << "round " << round << " addr 0x"
                              << std::hex << addr;
        }
    }
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_TRUE(golden.clean())
        << (golden.diagnostics().empty() ? std::string()
                                         : golden.diagnostics().front());
    if (GetParam() != SecurityMode::PostWpqUnprotected) {
        EXPECT_EQ(golden.crashesSeen(), 4u);
    }
    sys.core().setObserver(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Modes, FuzzReference,
                         ::testing::ValuesIn(dolos::test::allModes()),
                         [](const auto &info) {
                             return dolos::test::modeLabel(info.param);
                         });

TEST(FuzzOsiris, RandomTrafficAndCrashesUnderOsiris)
{
    auto cfg = smallCacheCfgFor(SecurityMode::DolosPartialWpq);
    cfg.secure.crashScheme = CrashScheme::Osiris;
    System sys(cfg);
    verify::GoldenModel golden;
    sys.core().setObserver(&golden);
    auto &core = sys.core();
    const std::uint64_t seed = 0xCAFE;
    SCOPED_TRACE(seedTrace("RandomTrafficAndCrashesUnderOsiris", seed));
    Random rng(seed);
    std::map<Addr, std::uint64_t> fenced;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 120; ++i) {
            const Addr addr = blockAlign(rng.below(Addr(32) * 1024));
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            core.clwb(addr);
            fenced[addr] = v;
        }
        core.sfence();
        sys.crash();
        const auto rec = sys.recover();
        ASSERT_TRUE(rec.engine.rootVerified) << "round " << round;
        ASSERT_EQ(rec.engine.osirisUnrecovered, 0u);
        for (const auto &[addr, v] : fenced) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            ASSERT_EQ(out, v);
        }
    }
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_TRUE(golden.clean());
    sys.core().setObserver(nullptr);
}

} // namespace
