/**
 * @file
 * Reference-model fuzzing: drive long random operation sequences
 * through the full machine (core -> caches -> controller -> NVM) and
 * check every load against a flat host-side reference memory. Any
 * coherence bug between cache levels, the WPQ tag array, the
 * security engine's encrypt/decrypt path or the recovery machinery
 * shows up as a mismatch.
 */

#include <gtest/gtest.h>

#include <map>

#include "dolos/system.hh"
#include "sim/random.hh"

namespace
{

using namespace dolos;

SystemConfig
cfgFor(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    // Small caches force frequent evictions and WPQ traffic.
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

class FuzzReference : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(FuzzReference, RandomTrafficMatchesReferenceMemory)
{
    System sys(cfgFor(GetParam()));
    auto &core = sys.core();
    Random rng(0xF00D + unsigned(GetParam()));
    std::map<Addr, std::uint64_t> reference;

    constexpr Addr span = 128 * 1024; // working set >> cache sizes
    std::vector<Addr> flushable;

    for (int op = 0; op < 30000; ++op) {
        const Addr addr = blockAlign(rng.below(span)) +
                          8 * rng.below(blockSize / 8);
        const auto kind = rng.below(100);
        if (kind < 45) {
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            reference[addr] = v;
            flushable.push_back(addr);
        } else if (kind < 85) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            const auto it = reference.find(addr);
            const std::uint64_t expect =
                it == reference.end() ? 0 : it->second;
            ASSERT_EQ(out, expect)
                << "op " << op << " addr 0x" << std::hex << addr;
        } else if (kind < 95) {
            if (!flushable.empty())
                core.clwb(flushable[rng.below(flushable.size())]);
        } else {
            core.sfence();
        }
    }
    EXPECT_FALSE(sys.attackDetected());
}

TEST_P(FuzzReference, FlushedStateSurvivesRandomCrashPoints)
{
    // Random writes, all flushed+fenced, then a crash: everything
    // fenced must read back; integrity intact.
    System sys(cfgFor(GetParam()));
    auto &core = sys.core();
    Random rng(0xBEEF + unsigned(GetParam()));
    std::map<Addr, std::uint64_t> fenced;

    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 150; ++i) {
            const Addr addr = blockAlign(rng.below(Addr(64) * 1024));
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            core.clwb(addr);
            fenced[addr] = v;
        }
        core.sfence();
        if (GetParam() == SecurityMode::PostWpqUnprotected)
            continue; // infeasible design: no honest crash story
        sys.crash();
        const auto rec = sys.recover();
        ASSERT_TRUE(rec.engine.rootVerified ||
                    GetParam() == SecurityMode::NonSecureIdeal);
        for (const auto &[addr, v] : fenced) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            ASSERT_EQ(out, v) << "round " << round << " addr 0x"
                              << std::hex << addr;
        }
    }
    EXPECT_FALSE(sys.attackDetected());
}

INSTANTIATE_TEST_SUITE_P(Modes, FuzzReference,
                         ::testing::Values(
                             SecurityMode::NonSecureIdeal,
                             SecurityMode::PreWpqSecure,
                             SecurityMode::PostWpqUnprotected,
                             SecurityMode::DolosFullWpq,
                             SecurityMode::DolosPartialWpq,
                             SecurityMode::DolosPostWpq),
                         [](const auto &info) {
                             std::string n =
                                 securityModeName(info.param);
                             std::string out;
                             for (char c : n)
                                 if (c != '-')
                                     out.push_back(c);
                             return out;
                         });

TEST(FuzzOsiris, RandomTrafficAndCrashesUnderOsiris)
{
    auto cfg = cfgFor(SecurityMode::DolosPartialWpq);
    cfg.secure.crashScheme = CrashScheme::Osiris;
    System sys(cfg);
    auto &core = sys.core();
    Random rng(0xCAFE);
    std::map<Addr, std::uint64_t> fenced;
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 120; ++i) {
            const Addr addr = blockAlign(rng.below(Addr(32) * 1024));
            const std::uint64_t v = rng.next();
            core.store(addr, &v, sizeof(v));
            core.clwb(addr);
            fenced[addr] = v;
        }
        core.sfence();
        sys.crash();
        const auto rec = sys.recover();
        ASSERT_TRUE(rec.engine.rootVerified) << "round " << round;
        ASSERT_EQ(rec.engine.osirisUnrecovered, 0u);
        for (const auto &[addr, v] : fenced) {
            std::uint64_t out = 0;
            core.load(addr, &out, sizeof(out));
            ASSERT_EQ(out, v);
        }
    }
    EXPECT_FALSE(sys.attackDetected());
}

} // namespace
