/**
 * @file
 * Crash-consistency property sweeps, driven by the verification
 * subsystem: crash points are enumerated at WPQ-insertion boundaries
 * (SweepDriver) instead of a hard-coded operation list, and every
 * recovery is checked both by the workload's structural verifier and
 * by the golden model's committed-prefix oracle; plus repeated
 * crash/recovery epochs on one machine.
 */

#include <gtest/gtest.h>

#include "tests/integration/integration_common.hh"
#include "verify/sweep_driver.hh"
#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;
using dolos::test::cfgFor;
using dolos::test::smallParams;

verify::SweepOptions
sweepFor(SecurityMode mode, const std::string &workload,
         std::uint64_t seed)
{
    verify::SweepOptions opt;
    opt.mode = mode;
    opt.workload = workload;
    opt.numTx = 6;
    opt.params = smallParams(seed);
    opt.base = cfgFor(mode);
    opt.budget = 3;
    opt.sampleSeed = seed;
    return opt;
}

TEST(CrashSweep, BoundariesAreNonEmptyAndIncreasing)
{
    const auto opt =
        sweepFor(SecurityMode::DolosPartialWpq, "hashmap", 11);
    const auto boundaries = verify::enumerateWpqBoundaries(opt);
    ASSERT_FALSE(boundaries.empty());
    for (std::size_t i = 1; i < boundaries.size(); ++i)
        EXPECT_LT(boundaries[i - 1], boundaries[i]) << "index " << i;
}

class CrashSweepWorkloads
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CrashSweepWorkloads, EveryBoundarySampleRecoversConsistently)
{
    const auto result = verify::sweepCrashPoints(
        sweepFor(SecurityMode::DolosPartialWpq, GetParam(), 23));
    ASSERT_FALSE(result.boundaries.empty());
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed()) << result.firstFailure();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrashSweepWorkloads,
    ::testing::ValuesIn(workloadNames()), [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class CrashSweepModes
    : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(CrashSweepModes, HashmapSurvivesBoundaryCrashes)
{
    if (GetParam() == SecurityMode::PostWpqUnprotected)
        GTEST_SKIP() << "infeasible design: no honest crash story";
    const auto result = verify::sweepCrashPoints(
        sweepFor(GetParam(), "hashmap", 31));
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed()) << result.firstFailure();
}

INSTANTIATE_TEST_SUITE_P(Modes, CrashSweepModes,
                         ::testing::ValuesIn(dolos::test::allModes()),
                         [](const auto &info) {
                             return dolos::test::modeLabel(info.param);
                         });

TEST(CrashEpochs, RepeatedCrashesOnOneMachine)
{
    // Five epochs of run-crash-recover on the same machine; data
    // committed in every epoch must remain intact at the end.
    System sys(cfgFor(SecurityMode::DolosPostWpq));
    auto wl = makeWorkload("hashmap", smallParams(99));
    bool first = true;
    for (int epoch = 0; epoch < 5; ++epoch) {
        const auto res = runWorkload(
            sys, *wl, 20, CrashPlan{500 + std::uint64_t(epoch) * 137},
            first);
        first = false;
        ASSERT_TRUE(res.verified)
            << "epoch " << epoch << ": " << res.verifyDiagnostic;
    }
    EXPECT_FALSE(sys.attackDetected());
}

TEST(CrashEpochs, CleanRunThenCrashThenContinue)
{
    System sys(cfgFor(SecurityMode::DolosFullWpq));
    auto wl = makeWorkload("redis", smallParams(5));
    const auto r1 = runWorkload(sys, *wl, 30);
    ASSERT_TRUE(r1.verified) << r1.verifyDiagnostic;

    const auto r2 =
        runWorkload(sys, *wl, 30, CrashPlan{700}, false);
    ASSERT_TRUE(r2.verified) << r2.verifyDiagnostic;

    const auto r3 = runWorkload(sys, *wl, 30, std::nullopt, false);
    EXPECT_TRUE(r3.verified) << r3.verifyDiagnostic;
    EXPECT_EQ(r3.transactions, 30u);
}

TEST(CrashEpochs, CrashDuringSetupTimeWindowIsSafe)
{
    // Crash very early (still inside the first transactions);
    // recovery must still verify. runCrashPoint also attaches the
    // committed-prefix oracle.
    const auto point = verify::runCrashPoint(
        sweepFor(SecurityMode::DolosPartialWpq, "btree", 7), 1);
    EXPECT_TRUE(point.passed()) << point.oracle.summary();
}

} // namespace
