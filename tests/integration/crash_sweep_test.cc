/**
 * @file
 * Crash-consistency property sweeps, driven by the verification
 * subsystem: crash points are enumerated at WPQ-insertion boundaries
 * (SweepDriver) instead of a hard-coded operation list, and every
 * recovery is checked both by the workload's structural verifier and
 * by the golden model's committed-prefix oracle; plus repeated
 * crash/recovery epochs on one machine.
 */

#include <gtest/gtest.h>

#include "tests/integration/integration_common.hh"
#include "verify/sweep_driver.hh"
#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;
using dolos::test::cfgFor;
using dolos::test::smallParams;

verify::SweepOptions
sweepFor(SecurityMode mode, const std::string &workload,
         std::uint64_t seed)
{
    verify::SweepOptions opt;
    opt.mode = mode;
    opt.workload = workload;
    opt.numTx = 6;
    opt.params = smallParams(seed);
    opt.base = cfgFor(mode);
    opt.budget = 3;
    opt.sampleSeed = seed;
    return opt;
}

TEST(CrashSweep, BoundariesAreNonEmptyAndIncreasing)
{
    const auto opt =
        sweepFor(SecurityMode::DolosPartialWpq, "hashmap", 11);
    const auto boundaries = verify::enumerateWpqBoundaries(opt);
    ASSERT_FALSE(boundaries.empty());
    for (std::size_t i = 1; i < boundaries.size(); ++i)
        EXPECT_LT(boundaries[i - 1], boundaries[i]) << "index " << i;
}

class CrashSweepWorkloads
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CrashSweepWorkloads, EveryBoundarySampleRecoversConsistently)
{
    const auto result = verify::sweepCrashPoints(
        sweepFor(SecurityMode::DolosPartialWpq, GetParam(), 23));
    ASSERT_FALSE(result.boundaries.empty());
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed()) << result.firstFailure();
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrashSweepWorkloads,
    ::testing::ValuesIn(workloadNames()), [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

class CrashSweepModes
    : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(CrashSweepModes, HashmapSurvivesBoundaryCrashes)
{
    if (GetParam() == SecurityMode::PostWpqUnprotected)
        GTEST_SKIP() << "infeasible design: no honest crash story";
    const auto result = verify::sweepCrashPoints(
        sweepFor(GetParam(), "hashmap", 31));
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed()) << result.firstFailure();
}

INSTANTIATE_TEST_SUITE_P(Modes, CrashSweepModes,
                         ::testing::ValuesIn(dolos::test::allModes()),
                         [](const auto &info) {
                             return dolos::test::modeLabel(info.param);
                         });

TEST(CrashEpochs, RepeatedCrashesOnOneMachine)
{
    // Five epochs of run-crash-recover on the same machine; data
    // committed in every epoch must remain intact at the end.
    System sys(cfgFor(SecurityMode::DolosPostWpq));
    auto wl = makeWorkload("hashmap", smallParams(99));
    bool first = true;
    for (int epoch = 0; epoch < 5; ++epoch) {
        const auto res = runWorkload(
            sys, *wl, 20, CrashPlan{500 + std::uint64_t(epoch) * 137},
            first);
        first = false;
        ASSERT_TRUE(res.verified)
            << "epoch " << epoch << ": " << res.verifyDiagnostic;
    }
    EXPECT_FALSE(sys.attackDetected());
}

TEST(CrashEpochs, CleanRunThenCrashThenContinue)
{
    System sys(cfgFor(SecurityMode::DolosFullWpq));
    auto wl = makeWorkload("redis", smallParams(5));
    const auto r1 = runWorkload(sys, *wl, 30);
    ASSERT_TRUE(r1.verified) << r1.verifyDiagnostic;

    const auto r2 =
        runWorkload(sys, *wl, 30, CrashPlan{700}, false);
    ASSERT_TRUE(r2.verified) << r2.verifyDiagnostic;

    const auto r3 = runWorkload(sys, *wl, 30, std::nullopt, false);
    EXPECT_TRUE(r3.verified) << r3.verifyDiagnostic;
    EXPECT_EQ(r3.transactions, 30u);
}

TEST(CrashEpochs, CrashDuringSetupTimeWindowIsSafe)
{
    // Crash very early (still inside the first transactions);
    // recovery must still verify. runCrashPoint also attaches the
    // committed-prefix oracle.
    const auto point = verify::runCrashPoint(
        sweepFor(SecurityMode::DolosPartialWpq, "btree", 7), 1);
    EXPECT_TRUE(point.passed()) << point.oracle.summary();
}

TEST(CrashSweep, EveryOpEnumeratesMorePointsThanWpqBoundaries)
{
    auto opt = sweepFor(SecurityMode::DolosPartialWpq, "hashmap", 13);
    const auto wpq = verify::enumerateCrashPoints(opt).size();
    opt.pointSet = verify::CrashPoints::EveryOp;
    const auto every = verify::enumerateCrashPoints(opt).size();
    EXPECT_GT(every, wpq);
    EXPECT_GT(every, 0u);
}

class ArbitraryCycleCrashSweep
    : public ::testing::TestWithParam<SecurityMode>
{
};

TEST_P(ArbitraryCycleCrashSweep, EveryOpSampleRecoversConsistently)
{
    // Acceptance sweep: crashes at arbitrary environment operations
    // (not just WPQ boundaries) must recover to the committed prefix.
    auto opt = sweepFor(GetParam(), "hashmap", 41);
    opt.pointSet = verify::CrashPoints::EveryOp;
    opt.budget = 5;
    const auto result = verify::sweepCrashPoints(opt);
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed())
        << result.firstFailure()
        << "\n  repro: " << verify::describeSweep(opt);
}

TEST_P(ArbitraryCycleCrashSweep, MidRecoveryCrashIsRestartable)
{
    // Compound failure: at every sampled crash point, power dies
    // again two steps into the recovery. The journaled recovery must
    // restart, finish on the second boot, and still satisfy the
    // committed-prefix oracle.
    auto opt = sweepFor(GetParam(), "hashmap", 57);
    opt.pointSet = verify::CrashPoints::EveryOp;
    opt.budget = 4;
    opt.recoveryCrashStep = 2;
    const auto result = verify::sweepCrashPoints(opt);
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed())
        << result.firstFailure()
        << "\n  repro: " << verify::describeSweep(opt);
    for (const auto &p : result.points)
        EXPECT_GE(p.recoveryAttempts, 2u)
            << "crash op " << p.crashOp
            << ": the armed mid-recovery crash never fired ("
            << verify::describeSweep(opt) << ")";
}

TEST_P(ArbitraryCycleCrashSweep, EarlyRecoveryCrashIsRestartable)
{
    // Die at the very first recovery checkpoint (right after the
    // redo-log replay) — the journal must already exist by then.
    auto opt = sweepFor(GetParam(), "btree", 71);
    opt.budget = 2;
    opt.recoveryCrashStep = 0;
    const auto result = verify::sweepCrashPoints(opt);
    ASSERT_FALSE(result.points.empty());
    EXPECT_TRUE(result.allPassed())
        << result.firstFailure()
        << "\n  repro: " << verify::describeSweep(opt);
}

INSTANTIATE_TEST_SUITE_P(
    DolosModes, ArbitraryCycleCrashSweep,
    ::testing::Values(SecurityMode::DolosFullWpq,
                      SecurityMode::DolosPartialWpq,
                      SecurityMode::DolosPostWpq),
    [](const auto &info) {
        return dolos::test::modeLabel(info.param);
    });

TEST(MidRecoveryCrash, DirectRepeatedCrashesDuringOneRecovery)
{
    // Belt-and-braces outside the sweep machinery: crash mid-run,
    // then kill recovery at successive checkpoints on one machine.
    // Serial persist path: checkpoint 3 is a per-dump-entry one, and
    // the default-on levers drain the WPQ before the crash so it
    // would never be reached (the optimized machine's mid-recovery
    // crashes are covered by the microstep + recovery-crash sweeps).
    auto cfg = cfgFor(SecurityMode::DolosPartialWpq);
    cfg.secure.bmtPipeline = false;
    cfg.wpq.drainBatching = false;
    cfg.secure.tagPrefetch = false;
    System sys(cfg);
    auto wl = makeWorkload("hashmap", smallParams(17));
    CrashPlan plan;
    plan.atOp = 400;
    plan.recoveryCrashStep = 3;
    const auto res = runWorkload(sys, *wl, 20, plan);
    ASSERT_TRUE(res.verified) << res.verifyDiagnostic;
    EXPECT_GE(res.recoveryAttempts, 2u);
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_FALSE(sys.controller().recoveryInProgress());
}

} // namespace
