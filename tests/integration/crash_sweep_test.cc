/**
 * @file
 * Crash-consistency property sweeps: many crash points x workloads x
 * modes, every recovery must yield a consistent committed-prefix
 * state; plus repeated crash/recovery epochs on one machine.
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
cfgFor(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 8192;
    cfg.secure.map.protectedBytes = Addr(8192) * pageBytes;
    return cfg;
}

WorkloadParams
smallParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 48;
    p.seed = seed;
    p.thinkTime = 400;
    p.readsPerTx = 1;
    return p;
}

struct SweepCase
{
    std::string workload;
    std::uint64_t crashOp;
};

class CrashSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(CrashSweep, RecoversConsistently)
{
    const auto &[wl_name, crash_op] = GetParam();
    System sys(cfgFor(SecurityMode::DolosPartialWpq));
    auto wl = makeWorkload(wl_name, smallParams(crash_op));
    const auto res =
        runWorkload(sys, *wl, 50, CrashPlan{crash_op});
    EXPECT_TRUE(res.verified) << res.verifyDiagnostic;
    EXPECT_FALSE(sys.attackDetected());
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    for (const auto &wl : workloadNames())
        for (const std::uint64_t op : {7u, 133u, 890u, 2048u, 3511u})
            cases.push_back({wl, op});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Points, CrashSweep, ::testing::ValuesIn(sweepCases()),
    [](const auto &info) {
        std::string n = info.param.workload + "_op" +
                        std::to_string(info.param.crashOp);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(CrashEpochs, RepeatedCrashesOnOneMachine)
{
    // Five epochs of run-crash-recover on the same machine; data
    // committed in every epoch must remain intact at the end.
    System sys(cfgFor(SecurityMode::DolosPostWpq));
    auto wl = makeWorkload("hashmap", smallParams(99));
    bool first = true;
    for (int epoch = 0; epoch < 5; ++epoch) {
        const auto res = runWorkload(
            sys, *wl, 20, CrashPlan{500 + std::uint64_t(epoch) * 137},
            first);
        first = false;
        ASSERT_TRUE(res.verified)
            << "epoch " << epoch << ": " << res.verifyDiagnostic;
    }
    EXPECT_FALSE(sys.attackDetected());
}

TEST(CrashEpochs, CleanRunThenCrashThenContinue)
{
    System sys(cfgFor(SecurityMode::DolosFullWpq));
    auto wl = makeWorkload("redis", smallParams(5));
    const auto r1 = runWorkload(sys, *wl, 30);
    ASSERT_TRUE(r1.verified) << r1.verifyDiagnostic;

    const auto r2 =
        runWorkload(sys, *wl, 30, CrashPlan{700}, false);
    ASSERT_TRUE(r2.verified) << r2.verifyDiagnostic;

    const auto r3 = runWorkload(sys, *wl, 30, std::nullopt, false);
    EXPECT_TRUE(r3.verified) << r3.verifyDiagnostic;
    EXPECT_EQ(r3.transactions, 30u);
}

TEST(CrashEpochs, CrashDuringSetupTimeWindowIsSafe)
{
    // Crash very early (still inside the first transactions);
    // recovery must still verify.
    System sys(cfgFor(SecurityMode::DolosPartialWpq));
    auto wl = makeWorkload("btree", smallParams(7));
    const auto res = runWorkload(sys, *wl, 50, CrashPlan{1});
    EXPECT_TRUE(res.verified) << res.verifyDiagnostic;
}

} // namespace
