/**
 * @file
 * End-to-end assertions of the paper's qualitative results on small
 * runs: performance ordering across controller organizations, WPQ
 * retry ordering across Mi-SU designs, WPQ-size sensitivity, and the
 * eager-vs-lazy contrast.
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
cfgFor(SecurityMode mode,
       TreeUpdatePolicy policy = TreeUpdatePolicy::EagerMerkle)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.treePolicy = policy;
    // These properties characterize the *paper's* serial persist
    // path; the (now default-on) optimization levers legitimately
    // reshape the retry and tx-size trends (EXPERIMENTS.md), so pin
    // them off here — the equivalent of --opt-knobs none.
    cfg.secure.bmtPipeline = false;
    cfg.wpq.drainBatching = false;
    cfg.secure.tagPrefetch = false;
    return cfg;
}

WorkloadParams
benchLikeParams()
{
    WorkloadParams p;
    p.txSize = 1024;
    p.numKeys = 256;
    p.thinkTime = 60000;
    p.readsPerTx = 1;
    return p;
}

double
cyclesPerTx(SecurityMode mode, const WorkloadParams &p,
            std::uint64_t txns = 120,
            TreeUpdatePolicy policy = TreeUpdatePolicy::EagerMerkle)
{
    System sys(cfgFor(mode, policy));
    auto wl = makeWorkload("hashmap", p);
    const auto res = runWorkload(sys, *wl, txns);
    EXPECT_TRUE(res.verified) << res.verifyDiagnostic;
    return res.cyclesPerTx();
}

TEST(PaperProperties, ModePerformanceOrdering)
{
    // NonSecureIdeal <= each Dolos design < PreWpqSecure (Fig 5/12).
    const auto p = benchLikeParams();
    const double ideal = cyclesPerTx(SecurityMode::NonSecureIdeal, p);
    const double full = cyclesPerTx(SecurityMode::DolosFullWpq, p);
    const double partial =
        cyclesPerTx(SecurityMode::DolosPartialWpq, p);
    const double post = cyclesPerTx(SecurityMode::DolosPostWpq, p);
    const double baseline = cyclesPerTx(SecurityMode::PreWpqSecure, p);

    EXPECT_LE(ideal, full);
    EXPECT_LE(ideal, partial);
    EXPECT_LE(ideal, post);
    EXPECT_LT(full, baseline);
    EXPECT_LT(partial, baseline);
    EXPECT_LT(post, baseline);
}

TEST(PaperProperties, RetryOrderingAcrossMisuDesigns)
{
    // Table 2: Full (16 usable entries) < Partial (13) < Post (10).
    const auto p = benchLikeParams();
    double kwr[3];
    const SecurityMode modes[] = {SecurityMode::DolosFullWpq,
                                  SecurityMode::DolosPartialWpq,
                                  SecurityMode::DolosPostWpq};
    for (int i = 0; i < 3; ++i) {
        System sys(cfgFor(modes[i]));
        auto wl = makeWorkload("hashmap", p);
        const auto res = runWorkload(sys, *wl, 120);
        kwr[i] = res.retriesPerKwr;
    }
    EXPECT_LE(kwr[0], kwr[1]);
    EXPECT_LE(kwr[1], kwr[2]);
}

TEST(PaperProperties, LargerWpqReducesRetriesAndHelpsSpeed)
{
    // Figure 15 trend.
    const auto p = benchLikeParams();
    double kwr_small, kwr_large, tx_small, tx_large;
    {
        System sys(cfgFor(SecurityMode::DolosPartialWpq));
        auto wl = makeWorkload("hashmap", p);
        const auto res = runWorkload(sys, *wl, 120);
        kwr_small = res.retriesPerKwr;
        tx_small = res.cyclesPerTx();
    }
    {
        auto cfg = cfgFor(SecurityMode::DolosPartialWpq);
        cfg.wpq.adrBudgetEntries = 64;
        cfg.wpq.partialEntries = 57;
        System sys(cfg);
        auto wl = makeWorkload("hashmap", p);
        const auto res = runWorkload(sys, *wl, 120);
        kwr_large = res.retriesPerKwr;
        tx_large = res.cyclesPerTx();
    }
    EXPECT_LT(kwr_large, kwr_small);
    EXPECT_LE(tx_large, tx_small * 1.02);
}

TEST(PaperProperties, LazySchemeShrinksDolosAdvantage)
{
    // Figure 16: with the cheap (pipelined ToC) backend there is
    // less latency to hide, so the Dolos speedup contracts.
    const auto p = benchLikeParams();
    const double eager_base =
        cyclesPerTx(SecurityMode::PreWpqSecure, p);
    const double eager_dolos =
        cyclesPerTx(SecurityMode::DolosPartialWpq, p);
    const double lazy_base = cyclesPerTx(
        SecurityMode::PreWpqSecure, p, 120, TreeUpdatePolicy::LazyToc);
    const double lazy_dolos =
        cyclesPerTx(SecurityMode::DolosPartialWpq, p, 120,
                    TreeUpdatePolicy::LazyToc);

    const double eager_speedup = eager_base / eager_dolos;
    const double lazy_speedup = lazy_base / lazy_dolos;
    EXPECT_GT(eager_speedup, lazy_speedup);
    EXPECT_GE(lazy_speedup, 0.95); // never a real slowdown
}

TEST(PaperProperties, TransactionSizeTrend)
{
    // Figures 13/14: larger transactions => more retries, smaller
    // (but still positive) speedup.
    WorkloadParams small = benchLikeParams();
    small.txSize = 128;
    small.thinkTime = 60000 / 8;
    WorkloadParams large = benchLikeParams();
    large.txSize = 2048;
    large.thinkTime = 60000 * 2;

    double retries[2], speedup[2];
    const WorkloadParams *ps[] = {&small, &large};
    for (int i = 0; i < 2; ++i) {
        System base(cfgFor(SecurityMode::PreWpqSecure));
        auto w1 = makeWorkload("hashmap", *ps[i]);
        const auto rb = runWorkload(base, *w1, 120);
        System dolos(cfgFor(SecurityMode::DolosPartialWpq));
        auto w2 = makeWorkload("hashmap", *ps[i]);
        const auto rd = runWorkload(dolos, *w2, 120);
        retries[i] = rd.retriesPerKwr;
        speedup[i] = rb.cyclesPerTx() / rd.cyclesPerTx();
    }
    EXPECT_LT(retries[0], retries[1]);
    EXPECT_GT(speedup[0], speedup[1]);
    EXPECT_GT(speedup[1], 1.0);
}

TEST(PaperProperties, AdrBudgetHeldAcrossDolosDesigns)
{
    // The crash path must stay within the standard ADR envelope for
    // every Dolos design, at any crash point.
    const auto p = benchLikeParams();
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosPostWpq}) {
        System sys(cfgFor(mode));
        auto wl = makeWorkload("hashmap", p);
        PmemEnv env(sys);
        wl->setup(env);
        for (int i = 0; i < 25; ++i)
            wl->transaction(env, i);
        const auto dump = sys.crash();
        EXPECT_TRUE(dump.withinAdrBudget) << securityModeName(mode);
        EXPECT_LE(dump.entriesDumped, sys.controller().wpqCapacity());
        const auto rec = sys.recover();
        EXPECT_TRUE(rec.misuVerified);
    }
}

} // namespace
