/**
 * @file
 * Unit tests for the PRNG and Zipfian generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"

namespace
{

using dolos::Random;
using dolos::ZipfianGenerator;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, InRangeIsInclusive)
{
    Random r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.inRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RealInUnitInterval)
{
    Random r(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, BelowIsRoughlyUniform)
{
    Random r(11);
    constexpr int buckets = 10;
    int counts[buckets] = {};
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[r.below(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Zipfian, KeysInRange)
{
    Random r(3);
    ZipfianGenerator z(1000);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.next(r), 1000u);
}

TEST(Zipfian, SkewFavorsSmallKeys)
{
    Random r(3);
    ZipfianGenerator z(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    constexpr int draws = 50000;
    for (int i = 0; i < draws; ++i)
        ++counts[z.next(r)];
    // Key 0 should dominate any mid-range key by a wide margin.
    EXPECT_GT(counts[0], draws / 20);
    EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(Zipfian, ThetaZeroIsNearUniform)
{
    Random r(3);
    ZipfianGenerator z(10, 1e-9);
    std::map<std::uint64_t, int> counts;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[z.next(r)];
    for (const auto &[k, c] : counts)
        EXPECT_GT(c, draws / 10 * 0.7) << "key " << k;
}

} // namespace
