/**
 * @file
 * Unit tests for the interval stat sampler and the host-side
 * self-profiler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/profiler.hh"
#include "sim/stat_sampler.hh"
#include "sim/stats.hh"

namespace
{

using namespace dolos;
using namespace dolos::stats;

/** A tiny two-level stat tree driven by hand. */
struct Fixture
{
    StatGroup root{"mc"};
    StatGroup child{"misu"};
    Scalar ops;
    Average lat;
    Histogram depth{1.0, 8};

    Fixture()
    {
        root.addScalar(&ops, "ops", "operations");
        root.addAverage(&lat, "latency", "per-op latency");
        child.addHistogram(&depth, "depth", "queue depth");
        root.addChild(&child);
    }
};

TEST(StatSampler, WindowDeltasSumToFinalTotals)
{
    Fixture f;
    StatSampler sampler(100);
    sampler.addGroup(&f.root);
    sampler.begin(0);

    // Window 1: [0, 100).
    f.ops += 3;
    f.lat.sample(10);
    f.depth.sample(2);
    sampler.poll(100);

    // Window 2: [100, 200).
    f.ops += 5;
    f.lat.sample(30);
    f.lat.sample(50);
    f.depth.sample(4);
    f.depth.sample(6);
    sampler.poll(200);

    // Trailing partial window: [200, 250).
    f.ops += 1;
    sampler.finish(250);

    ASSERT_EQ(sampler.windowCount(), 3u);
    EXPECT_EQ(sampler.windowStarts()[0], 0u);
    EXPECT_EQ(sampler.windowEnds()[0], 100u);
    EXPECT_EQ(sampler.windowEnds()[2], 250u);

    ASSERT_EQ(sampler.scalarColumns().size(), 1u);
    const auto &ops_col = sampler.scalarColumns()[0];
    EXPECT_EQ(ops_col.path, "mc.ops");
    ASSERT_EQ(ops_col.deltas.size(), 3u);
    EXPECT_EQ(ops_col.deltas[0], 3u);
    EXPECT_EQ(ops_col.deltas[1], 5u);
    EXPECT_EQ(ops_col.deltas[2], 1u);

    // The windowed series reconcile exactly with the end-of-run
    // totals: that is the sampler's core contract.
    std::uint64_t total = 0;
    for (const auto d : ops_col.deltas)
        total += d;
    EXPECT_EQ(total, f.ops.value());

    const auto &lat_col = sampler.averageColumns()[0];
    EXPECT_EQ(lat_col.path, "mc.latency");
    double lat_sum = 0;
    std::uint64_t lat_n = 0;
    for (std::size_t i = 0; i < lat_col.sums.size(); ++i) {
        lat_sum += lat_col.sums[i];
        lat_n += lat_col.counts[i];
    }
    EXPECT_DOUBLE_EQ(lat_sum, f.lat.total());
    EXPECT_EQ(lat_n, f.lat.samples());

    const auto &hist_col = sampler.histColumns()[0];
    EXPECT_EQ(hist_col.path, "mc.misu.depth");
    ASSERT_EQ(hist_col.windows.size(), 3u);
    EXPECT_EQ(hist_col.windows[0].samples, 1u);
    EXPECT_DOUBLE_EQ(hist_col.windows[0].mean(), 2.0);
    EXPECT_EQ(hist_col.windows[1].samples, 2u);
    EXPECT_DOUBLE_EQ(hist_col.windows[1].min, 4.0);
    EXPECT_DOUBLE_EQ(hist_col.windows[1].max, 6.0);
    EXPECT_EQ(hist_col.windows[2].samples, 0u);
    std::uint64_t hist_n = 0;
    for (const auto &w : hist_col.windows)
        hist_n += w.samples;
    EXPECT_EQ(hist_n, f.depth.samples());
}

TEST(StatSampler, ClockJumpYieldsOneWideWindow)
{
    // The core's clock advances in jumps (a fence stall can cross
    // many intervals at once); the sampler must close ONE window
    // spanning whole intervals, not a flood of empty ones.
    Fixture f;
    StatSampler sampler(100);
    sampler.addGroup(&f.root);
    sampler.begin(0);

    f.ops += 7;
    sampler.poll(537); // jumped over boundaries 100..500

    ASSERT_EQ(sampler.windowCount(), 1u);
    EXPECT_EQ(sampler.windowStarts()[0], 0u);
    EXPECT_EQ(sampler.windowEnds()[0], 500u);
    EXPECT_EQ(sampler.scalarColumns()[0].deltas[0], 7u);

    // finish() then closes [500, 537).
    sampler.finish(537);
    ASSERT_EQ(sampler.windowCount(), 2u);
    EXPECT_EQ(sampler.windowEnds()[1], 537u);
}

TEST(StatSampler, PollBeforeBoundaryIsANoOp)
{
    Fixture f;
    StatSampler sampler(1000);
    sampler.addGroup(&f.root);
    sampler.begin(0);
    f.ops += 2;
    sampler.poll(1);
    sampler.poll(999);
    EXPECT_EQ(sampler.windowCount(), 0u);
    sampler.finish(999);
    ASSERT_EQ(sampler.windowCount(), 1u);
    EXPECT_EQ(sampler.scalarColumns()[0].deltas[0], 2u);
}

TEST(StatSampler, BeginMidRunBaselinesCurrentValues)
{
    // Stats accumulated before begin() belong to no window: the
    // baseline snapshot keeps pre-attach history out of the timeline.
    Fixture f;
    f.ops += 40;
    StatSampler sampler(100);
    sampler.addGroup(&f.root);
    sampler.begin(1000);
    f.ops += 2;
    sampler.finish(1050);
    ASSERT_EQ(sampler.windowCount(), 1u);
    EXPECT_EQ(sampler.windowStarts()[0], 1000u);
    EXPECT_EQ(sampler.scalarColumns()[0].deltas[0], 2u);
}

TEST(StatSampler, JsonArtifactParsesAndIsSorted)
{
    Fixture f;
    StatSampler sampler(100);
    sampler.addGroup(&f.root);
    sampler.begin(0);
    f.ops += 3;
    f.lat.sample(4);
    f.depth.sample(1);
    sampler.poll(100);
    sampler.finish(150);

    std::ostringstream os;
    sampler.dumpJson(os);
    std::string err;
    const auto doc = json::parse(os.str(), &err);
    ASSERT_TRUE(doc) << err;
    const auto *tl = doc->find("timeline");
    ASSERT_NE(tl, nullptr);
    EXPECT_DOUBLE_EQ(tl->find("interval")->number(), 100.0);
    ASSERT_EQ(tl->find("windows")->array().size(), 2u);
    const auto *scalars = tl->find("scalars");
    ASSERT_NE(scalars, nullptr);
    ASSERT_EQ(scalars->members().size(), 1u);
    EXPECT_EQ(scalars->members()[0].first, "mc.ops");
    EXPECT_EQ(tl->find("histograms")->members()[0].first,
              "mc.misu.depth");

    // CSV: header plus one row per window.
    std::ostringstream cs;
    sampler.dumpCsv(cs);
    const std::string csv = cs.str();
    std::size_t rows = 0;
    for (const char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 3u);
}

#if DOLOS_SELFPROF

TEST(Profiler, CountsCallsOnlyWhileEnabled)
{
    auto &p = prof::Profiler::instance();
    p.reset();
    {
        DOLOS_PROF_SCOPE(Aes);
    }
    EXPECT_EQ(p.calls(prof::Comp::Aes), 0u) << "disabled = no record";

    p.enable();
    {
        DOLOS_PROF_SCOPE(Aes);
    }
    {
        DOLOS_PROF_SCOPE(Aes);
    }
    p.disable();
    EXPECT_EQ(p.calls(prof::Comp::Aes), 2u);
    {
        DOLOS_PROF_SCOPE(Aes);
    }
    EXPECT_EQ(p.calls(prof::Comp::Aes), 2u);
    p.reset();
}

TEST(Profiler, NestedScopesAttributeExclusively)
{
    auto &p = prof::Profiler::instance();
    p.reset();
    p.enable();
    {
        DOLOS_PROF_SCOPE(SecurityEngine);
        for (int i = 0; i < 4; ++i) {
            DOLOS_PROF_SCOPE(Mac);
        }
    }
    p.disable();
    EXPECT_EQ(p.calls(prof::Comp::SecurityEngine), 1u);
    EXPECT_EQ(p.calls(prof::Comp::Mac), 4u);
    // Exclusive attribution: component nanos partition the attributed
    // total, so shares can never sum past 100%.
    const auto total = p.attributedNanos();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < std::size_t(prof::Comp::NumComps); ++i)
        sum += p.exclusiveNanos(static_cast<prof::Comp>(i));
    EXPECT_EQ(sum, total);
    p.reset();
}

#endif // DOLOS_SELFPROF

} // namespace
