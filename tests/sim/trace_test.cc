/**
 * @file
 * Unit tests for the persist-path event tracer.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/json.hh"
#include "sim/trace.hh"

namespace
{

using namespace dolos::trace;

/** Reset the global tracer around each test. */
class TracerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().disable();
        Tracer::instance().clear();
    }

    void TearDown() override { SetUp(); }
};

TEST_F(TracerTest, InactiveByDefaultAndMacroRecordsNothing)
{
    auto &t = Tracer::instance();
    EXPECT_FALSE(t.active());
    DOLOS_TRACE(Stage::WpqInsert, 1, 2, 0x40, 0);
    EXPECT_EQ(t.size(), 0u);
}

#if DOLOS_TRACING
TEST_F(TracerTest, MacroRecordsWhenEnabled)
{
    auto &t = Tracer::instance();
    t.enable(8);
    DOLOS_TRACE(Stage::CoreClwb, 10, 20, 0x40, 1);
    EXPECT_EQ(t.size(), 1u);
}
#else
TEST_F(TracerTest, MacroCompiledOutRecordsNothing)
{
    auto &t = Tracer::instance();
    t.enable(8);
    DOLOS_TRACE(Stage::CoreClwb, 10, 20, 0x40, 1);
    EXPECT_EQ(t.size(), 0u);
}
#endif

TEST_F(TracerTest, RecordsInOrderWhenEnabled)
{
    auto &t = Tracer::instance();
    t.enable(8);
    t.record(Stage::CoreClwb, 10, 20, 0x40, 1);
    t.record(Stage::MasuMac, 20, 180, 0x40, 1);
    EXPECT_EQ(t.size(), 2u);
    std::vector<Event> seen;
    t.forEach([&](const Event &e) { seen.push_back(e); });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].stage, Stage::CoreClwb);
    EXPECT_EQ(seen[0].start, 10u);
    EXPECT_EQ(seen[0].end, 20u);
    EXPECT_EQ(seen[1].stage, Stage::MasuMac);
    EXPECT_EQ(seen[1].addr, 0x40u);
}

TEST_F(TracerTest, RingDropsOldestWhenFull)
{
    auto &t = Tracer::instance();
    t.enable(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(Stage::NvmWrite, i, i + 1, 0, i);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    std::vector<std::uint64_t> ids;
    t.forEach([&](const Event &e) { ids.push_back(e.id); });
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST_F(TracerTest, DumpEmitsValidChromeTraceJson)
{
    auto &t = Tracer::instance();
    t.enable(16);
    t.record(Stage::WpqStall, 100, 350, 0x80, 7);
    t.record(Stage::MasuBmt, 350, 1790, 0x80, 7);
    t.disable();

    std::ostringstream os;
    t.dump(os);
    std::string error;
    const auto doc = dolos::json::parse(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isArray());

    // Lane-naming metadata first, then the two duration events.
    std::size_t meta = 0, durations = 0;
    for (const auto &e : doc->array()) {
        const auto &ph = e.find("ph")->string();
        if (ph == "M") {
            ++meta;
            EXPECT_EQ(e.find("name")->string(), "thread_name");
        } else {
            ASSERT_EQ(ph, "X");
            ++durations;
            EXPECT_TRUE(e.find("ts")->isNumber());
            EXPECT_TRUE(e.find("dur")->isNumber());
        }
    }
    EXPECT_GT(meta, 0u);
    ASSERT_EQ(durations, 2u);

    const auto &stall = doc->array()[meta];
    EXPECT_EQ(stall.find("name")->string(), "wpqStall");
    EXPECT_EQ(stall.find("cat")->string(), "wpq");
    EXPECT_DOUBLE_EQ(stall.find("ts")->number(), 100.0);
    EXPECT_DOUBLE_EQ(stall.find("dur")->number(), 250.0);
    EXPECT_DOUBLE_EQ(stall.find("args")->find("addr")->number(), 128.0);
}

TEST_F(TracerTest, ClearKeepsRecordingState)
{
    auto &t = Tracer::instance();
    t.enable(4);
    t.record(Stage::NvmRead, 0, 1);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.active());
}

TEST_F(TracerTest, StageTablesCoverEveryStage)
{
    for (unsigned s = 0; s < unsigned(Stage::NumStages); ++s) {
        EXPECT_NE(stageName(Stage(s)), nullptr);
        EXPECT_STRNE(stageName(Stage(s)), "");
        EXPECT_NE(stageCategory(Stage(s)), nullptr);
        EXPECT_LT(stageLane(Stage(s)), 5u);
    }
}

} // namespace
