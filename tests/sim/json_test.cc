/**
 * @file
 * Unit tests for the minimal JSON parser and emit helpers.
 */

#include <gtest/gtest.h>

#include "sim/json.hh"

namespace
{

using namespace dolos::json;

TEST(JsonParse, ScalarsAndStructure)
{
    const auto doc = parse(
        R"({"a": 1.5, "b": [true, false, null, "x"], "c": {"d": -2e3}})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->find("a")->number(), 1.5);
    const auto &b = doc->find("b")->array();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_TRUE(b[0].boolean());
    EXPECT_FALSE(b[1].boolean());
    EXPECT_TRUE(b[2].isNull());
    EXPECT_EQ(b[3].string(), "x");
    EXPECT_DOUBLE_EQ(doc->find("c")->find("d")->number(), -2000.0);
}

TEST(JsonParse, MembersKeepInsertionOrder)
{
    const auto doc = parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.has_value());
    const auto &m = doc->members();
    ASSERT_EQ(m.size(), 3u);
    EXPECT_EQ(m[0].first, "z");
    EXPECT_EQ(m[1].first, "a");
    EXPECT_EQ(m[2].first, "m");
}

TEST(JsonParse, StringEscapes)
{
    const auto doc = parse(R"(["a\"b\\c\n\t", "Aé"])");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->array()[0].string(), "a\"b\\c\n\t");
    EXPECT_EQ(doc->array()[1].string(), "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parse("{", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parse("[1,]").has_value());
    EXPECT_FALSE(parse("[1] trailing").has_value());
    EXPECT_FALSE(parse("'single'").has_value());
    EXPECT_FALSE(parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(parse("").has_value());
    EXPECT_FALSE(parse("nul").has_value());
}

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(escape("plain"), "plain");
    EXPECT_EQ(escape("a\"b"), "a\\\"b");
    EXPECT_EQ(escape("a\\b"), "a\\\\b");
    EXPECT_EQ(escape("a\nb"), "a\\nb");
    EXPECT_EQ(escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscape, RoundTripsThroughParse)
{
    const std::string nasty = "q\"b\\s\n\t\r\x02 end";
    const auto doc = parse("\"" + escape(nasty) + "\"");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string(), nasty);
}

TEST(JsonNumericLeaves, FlattensWithPaths)
{
    const auto doc =
        parse(R"({"a": 1, "b": {"c": [2, {"d": 3}]}, "s": "x"})");
    ASSERT_TRUE(doc.has_value());
    const auto leaves = numericLeaves(*doc);
    ASSERT_EQ(leaves.size(), 3u);
    EXPECT_EQ(leaves[0].first, "a");
    EXPECT_DOUBLE_EQ(leaves[0].second, 1.0);
    EXPECT_EQ(leaves[1].first, "b.c[0]");
    EXPECT_DOUBLE_EQ(leaves[1].second, 2.0);
    EXPECT_EQ(leaves[2].first, "b.c[1].d");
    EXPECT_DOUBLE_EQ(leaves[2].second, 3.0);
}

} // namespace
