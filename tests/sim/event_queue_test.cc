/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace
{

using dolos::EventQueue;
using dolos::Tick;

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.numPending(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, FifoAmongEqualTicks)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 40u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_EQ(eq.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto h = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFiringIsHarmless)
{
    EventQueue eq;
    auto h = eq.schedule(1, [] {});
    eq.run();
    EXPECT_FALSE(h.pending());
    h.cancel(); // no-op
}

TEST(EventQueue, DefaultHandleIsInert)
{
    dolos::EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel();
}

TEST(EventQueue, AdvanceToMovesTimeForward)
{
    EventQueue eq;
    eq.advanceTo(1234);
    EXPECT_EQ(eq.curTick(), 1234u);
    int fired = 0;
    eq.schedule(1300, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.advanceTo(100);
    EXPECT_DEATH(eq.schedule(50, [] {}), "schedule at");
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.advanceTo(5);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.numPending(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

} // namespace
