/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace
{

using namespace dolos::stats;

TEST(Scalar, CountsAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.data()[0], 1u);
    EXPECT_EQ(h.data()[1], 2u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
}

TEST(Histogram, AllNegativeSamplesReportNegativeMax)
{
    // Regression test: maxSeen used to start at 0, so an all-negative
    // series reported max() == 0 instead of the true (negative) max.
    Histogram h(10.0, 4);
    h.sample(-30);
    h.sample(-5);
    h.sample(-12);
    EXPECT_DOUBLE_EQ(h.max(), -5.0);
    EXPECT_DOUBLE_EQ(h.min(), -30.0);
    EXPECT_EQ(h.samples(), 3u);
    // Negative samples land in the underflow bin, not in bucket
    // static_cast<size_t>(v / width).
    EXPECT_EQ(h.underflows(), 3u);
    for (const auto b : h.data())
        EXPECT_EQ(b, 0u);
}

TEST(Histogram, EmptyReportsZeroMinMax)
{
    Histogram h(10.0, 4);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    h.sample(-3);
    h.reset();
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_EQ(h.underflows(), 0u);
}

TEST(StatGroup, DumpContainsNamesValuesDescriptions)
{
    StatGroup g("wpq");
    Scalar inserts;
    inserts += 7;
    g.addScalar(&inserts, "inserts", "WPQ insertions");
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("wpq.inserts"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("WPQ insertions"), std::string::npos);
}

TEST(StatGroup, ChildGroupsDumpNested)
{
    StatGroup parent("system");
    StatGroup child("misu");
    Scalar macs;
    macs += 3;
    child.addScalar(&macs, "macOps", "MAC computations");
    parent.addChild(&child);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("system.misu.macOps"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a, b;
    a += 1;
    b += 2;
    parent.addScalar(&a, "a", "");
    child.addScalar(&b, "b", "");
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroupDeathTest, DuplicateNameInOneGroupPanics)
{
    StatGroup g("dup");
    Scalar a;
    Average avg;
    g.addScalar(&a, "stat", "first registration");
    EXPECT_DEATH(g.addAverage(&avg, "stat", "same name, other kind"),
                 "duplicate stat 'stat' in group 'dup'");
}

TEST(StatGroup, DumpJsonRoundTripsThroughParser)
{
    StatGroup parent("mc");
    StatGroup child("wpq");
    Scalar writes;
    writes += 41;
    Average occupancy;
    occupancy.sample(3);
    occupancy.sample(5);
    Histogram lat(10.0, 4);
    lat.sample(-2);
    lat.sample(12);
    lat.sample(99);
    parent.addScalar(&writes, "writes", "write \"requests\"");
    parent.addAverage(&occupancy, "occupancy", "entries in use");
    child.addHistogram(&lat, "latency", "per-entry persist latency");
    parent.addChild(&child);

    std::ostringstream os;
    parent.dumpJson(os);
    std::string error;
    const auto doc = dolos::json::parse(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error << "\n" << os.str();

    ASSERT_TRUE(doc->isObject());
    EXPECT_EQ(doc->find("name")->string(), "mc");
    const auto *writes_v = doc->find("scalars")->find("writes");
    ASSERT_NE(writes_v, nullptr);
    EXPECT_DOUBLE_EQ(writes_v->find("value")->number(), 41.0);
    // The escaped description survives the round trip.
    EXPECT_EQ(writes_v->find("desc")->string(), "write \"requests\"");
    EXPECT_DOUBLE_EQ(
        doc->find("averages")->find("occupancy")->find("mean")->number(),
        4.0);

    const auto *children = doc->find("children");
    ASSERT_NE(children, nullptr);
    ASSERT_EQ(children->array().size(), 1u);
    const auto &wpq = children->array()[0];
    EXPECT_EQ(wpq.find("name")->string(), "wpq");
    const auto *hist = wpq.find("histograms")->find("latency");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("min")->number(), -2.0);
    EXPECT_DOUBLE_EQ(hist->find("max")->number(), 99.0);
    EXPECT_DOUBLE_EQ(hist->find("underflows")->number(), 1.0);
    EXPECT_DOUBLE_EQ(hist->find("overflows")->number(), 1.0);
    ASSERT_EQ(hist->find("buckets")->array().size(), 4u);
    EXPECT_DOUBLE_EQ(hist->find("buckets")->array()[1].number(), 1.0);
}

} // namespace
