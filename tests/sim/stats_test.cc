/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace
{

using namespace dolos::stats;

TEST(Scalar, CountsAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // buckets [0,10) [10,20) [20,30) [30,40)
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(100);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.data()[0], 1u);
    EXPECT_EQ(h.data()[1], 2u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
}

TEST(StatGroup, DumpContainsNamesValuesDescriptions)
{
    StatGroup g("wpq");
    Scalar inserts;
    inserts += 7;
    g.addScalar(&inserts, "inserts", "WPQ insertions");
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("wpq.inserts"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("WPQ insertions"), std::string::npos);
}

TEST(StatGroup, ChildGroupsDumpNested)
{
    StatGroup parent("system");
    StatGroup child("misu");
    Scalar macs;
    macs += 3;
    child.addScalar(&macs, "macOps", "MAC computations");
    parent.addChild(&child);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("system.misu.macOps"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar a, b;
    a += 1;
    b += 2;
    parent.addScalar(&a, "a", "");
    child.addScalar(&b, "b", "");
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

} // namespace
