/**
 * @file
 * Controller tests: persist-ack points per mode, WPQ occupancy and
 * retries, coalescing, read forwarding, crash dump and recovery.
 */

#include <gtest/gtest.h>

#include "dolos/controller.hh"

namespace
{

using namespace dolos;

SystemConfig
testConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 256;
    cfg.secure.map.protectedBytes = Addr(256) * pageBytes;
    return cfg;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed * 7 + i);
    return b;
}

struct Rig
{
    explicit Rig(SecurityMode mode) : cfg(testConfig(mode))
    {
        nvm = std::make_unique<NvmDevice>(cfg.nvm);
        eng = std::make_unique<SecurityEngine>(cfg.secure, *nvm);
        mc = std::make_unique<SecureMemController>(cfg, *nvm, *eng);
    }

    SystemConfig cfg;
    std::unique_ptr<NvmDevice> nvm;
    std::unique_ptr<SecurityEngine> eng;
    std::unique_ptr<SecureMemController> mc;
};

TEST(Controller, NonSecurePersistIsJustTransit)
{
    Rig rig(SecurityMode::NonSecureIdeal);
    const auto t = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    EXPECT_EQ(t.persistTick, 1000u + rig.cfg.wpq.mcTransitLatency);
}

TEST(Controller, BaselinePaysFullSecurityBeforePersist)
{
    Rig rig(SecurityMode::PreWpqSecure);
    const auto t = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    // At least counter fetch (600) + AES (40) + 10 MACs (1600).
    EXPECT_GE(t.persistTick, 1000u + 600u + 40u + 1600u);
}

TEST(Controller, DolosPartialPaysOneMac)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const auto t = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    EXPECT_EQ(t.persistTick,
              1000u + rig.cfg.wpq.mcTransitLatency + 160u);
}

TEST(Controller, DolosFullPaysTwoMacs)
{
    Rig rig(SecurityMode::DolosFullWpq);
    const auto t = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    EXPECT_EQ(t.persistTick,
              1000u + rig.cfg.wpq.mcTransitLatency + 320u);
}

TEST(Controller, DolosPostPersistsImmediately)
{
    Rig rig(SecurityMode::DolosPostWpq);
    const auto t = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    EXPECT_EQ(t.persistTick, 1000u + rig.cfg.wpq.mcTransitLatency);
}

TEST(Controller, DolosPostSecondWriteWaitsForBusyUnit)
{
    Rig rig(SecurityMode::DolosPostWpq);
    const auto t1 = rig.mc->persistBlock(0x1000, pattern(1), 1000);
    // Immediately following write must wait out the deferred MAC.
    const auto t2 = rig.mc->persistBlock(0x1040, pattern(2), 1000);
    EXPECT_GE(t2.persistTick, t1.persistTick + 160u);
}

TEST(Controller, WpqCapacityMatchesMode)
{
    EXPECT_EQ(Rig(SecurityMode::DolosFullWpq).mc->wpqCapacity(), 16u);
    EXPECT_EQ(Rig(SecurityMode::DolosPartialWpq).mc->wpqCapacity(), 13u);
    EXPECT_EQ(Rig(SecurityMode::DolosPostWpq).mc->wpqCapacity(), 10u);
    EXPECT_EQ(Rig(SecurityMode::PreWpqSecure).mc->wpqCapacity(), 16u);
}

TEST(Controller, BurstBeyondCapacityCausesRetries)
{
    // The Post design has the smallest WPQ (10 entries) and accepts
    // writes at the Mi-SU pipeline rate, so a long back-to-back
    // burst overruns the Ma-SU drain latency and must retry.
    Rig rig(SecurityMode::DolosPostWpq);
    Tick t = 0;
    for (int i = 0; i < 60; ++i) {
        const auto tk = rig.mc->persistBlock(Addr(i) * 64, pattern(1), t);
        t = tk.persistTick;
    }
    EXPECT_GT(rig.mc->retryEvents(), 0u);
    EXPECT_EQ(rig.mc->writeRequests(), 60u);
    EXPECT_GT(rig.mc->retriesPerKiloWrites(), 0.0);
}

TEST(Controller, NoRetriesWhenWritesAreSpacedOut)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    Tick t = 0;
    for (int i = 0; i < 40; ++i) {
        rig.mc->persistBlock(Addr(i) * 64, pattern(1), t);
        t += 10000; // far slower than the drain rate
    }
    EXPECT_EQ(rig.mc->retryEvents(), 0u);
}

TEST(Controller, ReadHitsWpqTagArray)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const Block pt = pattern(5);
    const auto tk = rig.mc->persistBlock(0x2000, pt, 0);
    // Read immediately after persist: the entry is still in the WPQ.
    const auto rd = rig.mc->readBlock(0x2000, tk.persistTick + 1);
    EXPECT_EQ(rd.data, pt);
    EXPECT_EQ(rig.mc->wpqReadHits(), 1u);
    // A cheap forward: transit + 1-cycle XOR.
    EXPECT_LE(rd.completeTick - (tk.persistTick + 1),
              rig.cfg.wpq.mcTransitLatency + 1);
}

TEST(Controller, ReadAfterDrainComesFromNvm)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const Block pt = pattern(6);
    rig.mc->persistBlock(0x2000, pt, 0);
    // Long after the drain completes, the read misses the WPQ and
    // decrypts from NVM.
    const auto rd = rig.mc->readBlock(0x2000, 1'000'000);
    EXPECT_EQ(rd.data, pt);
    EXPECT_EQ(rig.mc->wpqReadHits(), 0u);
    EXPECT_FALSE(rig.eng->attackDetected());
}

TEST(Controller, CoalescingMergesBackToBackWrites)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const auto t1 = rig.mc->persistBlock(0x2000, pattern(1), 0);
    const auto t2 = rig.mc->persistBlock(0x2000, pattern(2),
                                         t1.persistTick);
    EXPECT_GE(rig.mc->coalesces(), 1u);
    const auto rd = rig.mc->readBlock(0x2000, t2.persistTick + 1);
    EXPECT_EQ(rd.data, pattern(2));
}

TEST(Controller, CoalescingDisabledAllocatesTwoEntries)
{
    auto cfg = testConfig(SecurityMode::DolosPartialWpq);
    cfg.wpq.coalescing = false;
    NvmDevice nvm(cfg.nvm);
    SecurityEngine eng(cfg.secure, nvm);
    SecureMemController mc(cfg, nvm, eng);
    const auto t1 = mc.persistBlock(0x2000, pattern(1), 0);
    mc.persistBlock(0x2000, pattern(2), t1.persistTick);
    EXPECT_EQ(mc.coalesces(), 0u);
    const auto rd = mc.readBlock(0x2000, t1.persistTick + 1);
    EXPECT_EQ(rd.data, pattern(2)); // newest entry wins
}

TEST(Controller, PendingPersistTickSeesInFlightWrite)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const auto tk = rig.mc->persistBlock(0x2000, pattern(1), 0);
    EXPECT_EQ(rig.mc->pendingPersistTick(0x2000, 1), tk.persistTick);
    EXPECT_EQ(rig.mc->pendingPersistTick(0x9000, 1), 1u);
}

TEST(Controller, CrashDumpsUndrainedEntriesWithinBudget)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    Tick t = 0;
    for (int i = 0; i < 8; ++i) {
        const auto tk = rig.mc->persistBlock(Addr(i) * 64, pattern(1), t);
        t = tk.persistTick;
    }
    // Crash immediately: most entries have not drained.
    const auto dump = rig.mc->crash(t);
    EXPECT_GT(dump.entriesDumped, 0u);
    EXPECT_TRUE(dump.withinAdrBudget);
}

TEST(Controller, CrashLongAfterQuiesceDumpsNothing)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    rig.mc->persistBlock(0x1000, pattern(1), 0);
    const auto dump = rig.mc->crash(10'000'000);
    EXPECT_EQ(dump.entriesDumped, 0u);
}

TEST(Controller, RecoveryRestoresUndrainedWrites)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    Tick t = 0;
    std::vector<std::pair<Addr, Block>> writes;
    for (int i = 0; i < 6; ++i) {
        const Addr a = Addr(i) * 64;
        const Block pt = pattern(std::uint8_t(10 + i));
        const auto tk = rig.mc->persistBlock(a, pt, t);
        t = tk.persistTick;
        writes.emplace_back(a, pt);
    }
    rig.mc->crash(t);
    const auto rec = rig.mc->recover();
    EXPECT_TRUE(rec.misuVerified);
    EXPECT_TRUE(rec.engine.rootVerified);

    Tick rt = 100'000'000;
    for (const auto &[a, pt] : writes) {
        const auto rd = rig.mc->readBlock(a, rt);
        EXPECT_EQ(rd.data, pt) << std::hex << a;
        rt = rd.completeTick;
    }
    EXPECT_FALSE(rig.eng->attackDetected());
}

TEST(Controller, WithoutAdrDumpUndrainedDataWouldBeLost)
{
    // Negative control: the dump region is wiped before recovery, so
    // the persist-acked (but undrained) write must NOT be readable —
    // demonstrating the dump is what preserves it.
    Rig rig(SecurityMode::DolosPartialWpq);
    const Block pt = pattern(3);
    const auto tk = rig.mc->persistBlock(0x3000, pt, 0);
    rig.mc->crash(tk.persistTick);
    rig.nvm->writeFunctional(AddressMap::wpqDumpBase, zeroBlock());
    const auto rec = rig.mc->recover();
    EXPECT_EQ(rec.entriesRecovered, 0u);
    const auto rd = rig.mc->readBlock(0x3000, 100'000'000);
    EXPECT_NE(rd.data, pt);
}

TEST(Controller, TamperedDumpIsDetected)
{
    Rig rig(SecurityMode::DolosPartialWpq);
    const auto tk = rig.mc->persistBlock(0x3000, pattern(4), 0);
    rig.mc->crash(tk.persistTick);
    // Flip one bit of the first dumped entry's ciphertext.
    const Addr e0 = AddressMap::wpqDumpAddr(1);
    Block b = rig.nvm->readFunctional(e0);
    b[0] ^= 1;
    rig.nvm->writeFunctional(e0, b);
    const auto rec = rig.mc->recover();
    EXPECT_FALSE(rec.misuVerified);
    EXPECT_EQ(rec.entriesRecovered, 0u);
}

TEST(Controller, TamperedDumpDetectedByFullWpqRoot)
{
    Rig rig(SecurityMode::DolosFullWpq);
    const auto tk = rig.mc->persistBlock(0x3000, pattern(4), 0);
    rig.mc->crash(tk.persistTick);
    const Addr e0 = AddressMap::wpqDumpAddr(1);
    Block b = rig.nvm->readFunctional(e0);
    b[9] ^= 0x20;
    rig.nvm->writeFunctional(e0, b);
    const auto rec = rig.mc->recover();
    EXPECT_FALSE(rec.misuVerified);
}

TEST(Controller, RecoveryAcrossAllDolosModes)
{
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosPostWpq}) {
        Rig rig(mode);
        const Block pt = pattern(9);
        const auto tk = rig.mc->persistBlock(0x4000, pt, 0);
        rig.mc->crash(tk.persistTick);
        const auto rec = rig.mc->recover();
        EXPECT_TRUE(rec.misuVerified) << securityModeName(mode);
        const auto rd = rig.mc->readBlock(0x4000, 100'000'000);
        EXPECT_EQ(rd.data, pt) << securityModeName(mode);
    }
}

TEST(Controller, BaselineCrashNeedsNoDumpRegion)
{
    Rig rig(SecurityMode::PreWpqSecure);
    const Block pt = pattern(8);
    const auto tk = rig.mc->persistBlock(0x5000, pt, 0);
    rig.mc->crash(tk.persistTick);
    const auto rec = rig.mc->recover();
    EXPECT_TRUE(rec.engine.rootVerified);
    const auto rd = rig.mc->readBlock(0x5000, 100'000'000);
    EXPECT_EQ(rd.data, pt);
}

TEST(Controller, PostWpqUnprotectedCrashViolatesAdrBudget)
{
    Rig rig(SecurityMode::PostWpqUnprotected);
    const auto tk = rig.mc->persistBlock(0x1000, pattern(1), 0);
    const auto dump = rig.mc->crash(tk.persistTick);
    EXPECT_FALSE(dump.withinAdrBudget);
}

TEST(Controller, ModeledRecoveryCyclesMatchPaperFullWpq)
{
    // §5.5: 16 * (600 + 40 + 2100 + 40) = 44480 cycles.
    Rig rig(SecurityMode::DolosFullWpq);
    const auto tk = rig.mc->persistBlock(0x1000, pattern(1), 0);
    rig.mc->crash(tk.persistTick);
    const auto rec = rig.mc->recover();
    EXPECT_EQ(rec.modeledRecoveryCycles, 44480u);
}

} // namespace
