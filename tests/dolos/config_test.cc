/**
 * @file
 * SecurityMode / WpqParams configuration coverage: every enumerator
 * must have a usable-entry count, a distinct human-readable name and
 * a correct Dolos-family classification.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "dolos/config.hh"

namespace
{

using namespace dolos;

constexpr SecurityMode allModes[] = {
    SecurityMode::NonSecureIdeal,     SecurityMode::PreWpqSecure,
    SecurityMode::PostWpqUnprotected, SecurityMode::DolosFullWpq,
    SecurityMode::DolosPartialWpq,    SecurityMode::DolosPostWpq,
};

TEST(WpqParamsConfig, EntriesForEveryMode)
{
    const WpqParams p; // paper defaults: 16 / 13 / 10
    EXPECT_EQ(p.entriesFor(SecurityMode::NonSecureIdeal), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PostWpqUnprotected), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 13u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 10u);
}

TEST(WpqParamsConfig, EntriesForTracksTunedParams)
{
    WpqParams p;
    p.adrBudgetEntries = 32;
    p.partialEntries = 26;
    p.postEntries = 20;
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 32u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 26u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 20u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 32u);
}

TEST(WpqParamsConfig, NoModeExceedsTheAdrBudget)
{
    const WpqParams p;
    for (const auto mode : allModes)
        EXPECT_LE(p.entriesFor(mode), p.adrBudgetEntries)
            << securityModeName(mode);
}

TEST(SecurityModeConfig, NamesAreNonEmptyAndDistinct)
{
    std::set<std::string> seen;
    for (const auto mode : allModes) {
        const std::string name = securityModeName(mode);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate mode name: " << name;
    }
    EXPECT_EQ(seen.size(), std::size(allModes));
}

TEST(SecurityModeConfig, ExpectedNames)
{
    EXPECT_STREQ(securityModeName(SecurityMode::NonSecureIdeal),
                 "NonSecureIdeal");
    EXPECT_STREQ(securityModeName(SecurityMode::PreWpqSecure),
                 "PreWpqSecure");
    EXPECT_STREQ(securityModeName(SecurityMode::PostWpqUnprotected),
                 "PostWpqUnprotected");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosFullWpq),
                 "Dolos-Full-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPartialWpq),
                 "Dolos-Partial-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPostWpq),
                 "Dolos-Post-WPQ");
}

TEST(SecurityModeConfig, DolosFamilyClassification)
{
    EXPECT_FALSE(isDolosMode(SecurityMode::NonSecureIdeal));
    EXPECT_FALSE(isDolosMode(SecurityMode::PreWpqSecure));
    EXPECT_FALSE(isDolosMode(SecurityMode::PostWpqUnprotected));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosFullWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPartialWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPostWpq));
}

} // namespace
