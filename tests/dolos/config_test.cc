/**
 * @file
 * SecurityMode / WpqParams configuration coverage: every enumerator
 * must have a usable-entry count, a distinct human-readable name and
 * a correct Dolos-family classification.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "dolos/config.hh"
#include "dolos/system.hh"

namespace
{

using namespace dolos;

constexpr SecurityMode allModes[] = {
    SecurityMode::NonSecureIdeal,     SecurityMode::PreWpqSecure,
    SecurityMode::PostWpqUnprotected, SecurityMode::DolosFullWpq,
    SecurityMode::DolosPartialWpq,    SecurityMode::DolosPostWpq,
};

TEST(WpqParamsConfig, EntriesForEveryMode)
{
    const WpqParams p; // paper defaults: 16 / 13 / 10
    EXPECT_EQ(p.entriesFor(SecurityMode::NonSecureIdeal), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PostWpqUnprotected), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 13u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 10u);
}

TEST(WpqParamsConfig, EntriesForTracksTunedParams)
{
    WpqParams p;
    p.adrBudgetEntries = 32;
    p.partialEntries = 26;
    p.postEntries = 20;
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 32u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 26u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 20u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 32u);
}

TEST(WpqParamsConfig, NoModeExceedsTheAdrBudget)
{
    const WpqParams p;
    for (const auto mode : allModes)
        EXPECT_LE(p.entriesFor(mode), p.adrBudgetEntries)
            << securityModeName(mode);
}

TEST(SecurityModeConfig, NamesAreNonEmptyAndDistinct)
{
    std::set<std::string> seen;
    for (const auto mode : allModes) {
        const std::string name = securityModeName(mode);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate mode name: " << name;
    }
    EXPECT_EQ(seen.size(), std::size(allModes));
}

TEST(SecurityModeConfig, ExpectedNames)
{
    EXPECT_STREQ(securityModeName(SecurityMode::NonSecureIdeal),
                 "NonSecureIdeal");
    EXPECT_STREQ(securityModeName(SecurityMode::PreWpqSecure),
                 "PreWpqSecure");
    EXPECT_STREQ(securityModeName(SecurityMode::PostWpqUnprotected),
                 "PostWpqUnprotected");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosFullWpq),
                 "Dolos-Full-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPartialWpq),
                 "Dolos-Partial-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPostWpq),
                 "Dolos-Post-WPQ");
}

TEST(SecurityModeConfig, DolosFamilyClassification)
{
    EXPECT_FALSE(isDolosMode(SecurityMode::NonSecureIdeal));
    EXPECT_FALSE(isDolosMode(SecurityMode::PreWpqSecure));
    EXPECT_FALSE(isDolosMode(SecurityMode::PostWpqUnprotected));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosFullWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPartialWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPostWpq));
}

TEST(SecurityModeConfig, ParseAcceptsEveryCliNameAndAlias)
{
    EXPECT_EQ(parseSecurityMode("ideal"), SecurityMode::NonSecureIdeal);
    EXPECT_EQ(parseSecurityMode("baseline"),
              SecurityMode::PreWpqSecure);
    EXPECT_EQ(parseSecurityMode("post-unprotected"),
              SecurityMode::PostWpqUnprotected);
    EXPECT_EQ(parseSecurityMode("dolos-full"),
              SecurityMode::DolosFullWpq);
    EXPECT_EQ(parseSecurityMode("full_wpq"),
              SecurityMode::DolosFullWpq);
    EXPECT_EQ(parseSecurityMode("dolos-partial"),
              SecurityMode::DolosPartialWpq);
    EXPECT_EQ(parseSecurityMode("partial_wpq"),
              SecurityMode::DolosPartialWpq);
    EXPECT_EQ(parseSecurityMode("dolos-post"),
              SecurityMode::DolosPostWpq);
    EXPECT_EQ(parseSecurityMode("post_wpq"),
              SecurityMode::DolosPostWpq);
}

TEST(SecurityModeConfig, ParseRejectsUnknownNames)
{
    // Rejected loudly as "no value" — never clamped to some default.
    EXPECT_EQ(parseSecurityMode(""), std::nullopt);
    EXPECT_EQ(parseSecurityMode("dolos"), std::nullopt);
    EXPECT_EQ(parseSecurityMode("IDEAL"), std::nullopt);
    EXPECT_EQ(parseSecurityMode("full-wpq"), std::nullopt);
}

TEST(ConfigValidation, PaperDefaultsAreValidForEveryMode)
{
    for (const auto mode : allModes) {
        auto cfg = SystemConfig::paperDefault();
        cfg.mode = mode;
        EXPECT_EQ(validateConfig(cfg), "") << securityModeName(mode);
    }
}

TEST(ConfigValidation, ZeroAdrBudgetIsRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.adrBudgetEntries = 0;
    EXPECT_NE(validateConfig(cfg).find("adrBudgetEntries"),
              std::string::npos)
        << validateConfig(cfg);
}

TEST(ConfigValidation, ZeroEntryQueueForActiveModeIsRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    // The same zero is fine when another mode is selected — only the
    // active queue is constrained.
    cfg.mode = SecurityMode::DolosFullWpq;
    EXPECT_EQ(validateConfig(cfg), "");
}

TEST(ConfigValidation, OversizedModeQueuesAreRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = cfg.wpq.adrBudgetEntries + 1;
    EXPECT_NE(validateConfig(cfg).find("exceeds"), std::string::npos)
        << validateConfig(cfg);

    cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPostWpq;
    cfg.wpq.postEntries = cfg.wpq.adrBudgetEntries + 1;
    EXPECT_FALSE(validateConfig(cfg).empty());
}

TEST(ConfigValidation, DegenerateTimingAndGeometryAreRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.retryInterval = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.nvm.numBanks = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.secure.functionalLeaves = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.secure.map.protectedBytes = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());
}

TEST(ConfigValidation, SystemCtorThrowsInsteadOfClamping)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.adrBudgetEntries = 0;
    EXPECT_THROW({ System sys(cfg); }, std::invalid_argument);

    // The thrown message carries the validator's diagnostic.
    cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = cfg.wpq.adrBudgetEntries + 1;
    try {
        System sys(cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("partialEntries"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidation, ValidConfigConstructs)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPostWpq;
    EXPECT_NO_THROW({ System sys(cfg); });
}

} // namespace
