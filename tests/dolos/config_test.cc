/**
 * @file
 * SecurityMode / WpqParams configuration coverage: every enumerator
 * must have a usable-entry count, a distinct human-readable name and
 * a correct Dolos-family classification.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "dolos/config.hh"
#include "dolos/system.hh"

namespace
{

using namespace dolos;

constexpr SecurityMode allModes[] = {
    SecurityMode::NonSecureIdeal,     SecurityMode::PreWpqSecure,
    SecurityMode::PostWpqUnprotected, SecurityMode::DolosFullWpq,
    SecurityMode::DolosPartialWpq,    SecurityMode::DolosPostWpq,
};

TEST(WpqParamsConfig, EntriesForEveryMode)
{
    const WpqParams p; // paper defaults: 16 / 13 / 10
    EXPECT_EQ(p.entriesFor(SecurityMode::NonSecureIdeal), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PostWpqUnprotected), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 16u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 13u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 10u);
}

TEST(WpqParamsConfig, EntriesForTracksTunedParams)
{
    WpqParams p;
    p.adrBudgetEntries = 32;
    p.partialEntries = 26;
    p.postEntries = 20;
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosFullWpq), 32u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPartialWpq), 26u);
    EXPECT_EQ(p.entriesFor(SecurityMode::DolosPostWpq), 20u);
    EXPECT_EQ(p.entriesFor(SecurityMode::PreWpqSecure), 32u);
}

TEST(WpqParamsConfig, NoModeExceedsTheAdrBudget)
{
    const WpqParams p;
    for (const auto mode : allModes)
        EXPECT_LE(p.entriesFor(mode), p.adrBudgetEntries)
            << securityModeName(mode);
}

TEST(SecurityModeConfig, NamesAreNonEmptyAndDistinct)
{
    std::set<std::string> seen;
    for (const auto mode : allModes) {
        const std::string name = securityModeName(mode);
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate mode name: " << name;
    }
    EXPECT_EQ(seen.size(), std::size(allModes));
}

TEST(SecurityModeConfig, ExpectedNames)
{
    EXPECT_STREQ(securityModeName(SecurityMode::NonSecureIdeal),
                 "NonSecureIdeal");
    EXPECT_STREQ(securityModeName(SecurityMode::PreWpqSecure),
                 "PreWpqSecure");
    EXPECT_STREQ(securityModeName(SecurityMode::PostWpqUnprotected),
                 "PostWpqUnprotected");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosFullWpq),
                 "Dolos-Full-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPartialWpq),
                 "Dolos-Partial-WPQ");
    EXPECT_STREQ(securityModeName(SecurityMode::DolosPostWpq),
                 "Dolos-Post-WPQ");
}

TEST(SecurityModeConfig, DolosFamilyClassification)
{
    EXPECT_FALSE(isDolosMode(SecurityMode::NonSecureIdeal));
    EXPECT_FALSE(isDolosMode(SecurityMode::PreWpqSecure));
    EXPECT_FALSE(isDolosMode(SecurityMode::PostWpqUnprotected));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosFullWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPartialWpq));
    EXPECT_TRUE(isDolosMode(SecurityMode::DolosPostWpq));
}

TEST(SecurityModeConfig, ParseAcceptsEveryCliNameAndAlias)
{
    EXPECT_EQ(parseSecurityMode("ideal"), SecurityMode::NonSecureIdeal);
    EXPECT_EQ(parseSecurityMode("baseline"),
              SecurityMode::PreWpqSecure);
    EXPECT_EQ(parseSecurityMode("post-unprotected"),
              SecurityMode::PostWpqUnprotected);
    EXPECT_EQ(parseSecurityMode("dolos-full"),
              SecurityMode::DolosFullWpq);
    EXPECT_EQ(parseSecurityMode("full_wpq"),
              SecurityMode::DolosFullWpq);
    EXPECT_EQ(parseSecurityMode("dolos-partial"),
              SecurityMode::DolosPartialWpq);
    EXPECT_EQ(parseSecurityMode("partial_wpq"),
              SecurityMode::DolosPartialWpq);
    EXPECT_EQ(parseSecurityMode("dolos-post"),
              SecurityMode::DolosPostWpq);
    EXPECT_EQ(parseSecurityMode("post_wpq"),
              SecurityMode::DolosPostWpq);
}

TEST(SecurityModeConfig, ParseRejectsUnknownNames)
{
    // Rejected loudly as "no value" — never clamped to some default.
    EXPECT_EQ(parseSecurityMode(""), std::nullopt);
    EXPECT_EQ(parseSecurityMode("dolos"), std::nullopt);
    EXPECT_EQ(parseSecurityMode("IDEAL"), std::nullopt);
    EXPECT_EQ(parseSecurityMode("full-wpq"), std::nullopt);
}

TEST(ConfigValidation, PaperDefaultsAreValidForEveryMode)
{
    for (const auto mode : allModes) {
        auto cfg = SystemConfig::paperDefault();
        cfg.mode = mode;
        EXPECT_EQ(validateConfig(cfg), "") << securityModeName(mode);
    }
}

TEST(ConfigValidation, ZeroAdrBudgetIsRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.adrBudgetEntries = 0;
    EXPECT_NE(validateConfig(cfg).find("adrBudgetEntries"),
              std::string::npos)
        << validateConfig(cfg);
}

TEST(ConfigValidation, ZeroEntryQueueForActiveModeIsRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    // The same zero is fine when another mode is selected — only the
    // active queue is constrained.
    cfg.mode = SecurityMode::DolosFullWpq;
    EXPECT_EQ(validateConfig(cfg), "");
}

TEST(ConfigValidation, OversizedModeQueuesAreRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = cfg.wpq.adrBudgetEntries + 1;
    EXPECT_NE(validateConfig(cfg).find("exceeds"), std::string::npos)
        << validateConfig(cfg);

    cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPostWpq;
    cfg.wpq.postEntries = cfg.wpq.adrBudgetEntries + 1;
    EXPECT_FALSE(validateConfig(cfg).empty());
}

TEST(ConfigValidation, DegenerateTimingAndGeometryAreRejected)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.retryInterval = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.nvm.numBanks = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.secure.functionalLeaves = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());

    cfg = SystemConfig::paperDefault();
    cfg.secure.map.protectedBytes = 0;
    EXPECT_FALSE(validateConfig(cfg).empty());
}

TEST(ConfigValidation, SystemCtorThrowsInsteadOfClamping)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.wpq.adrBudgetEntries = 0;
    EXPECT_THROW({ System sys(cfg); }, std::invalid_argument);

    // The thrown message carries the validator's diagnostic.
    cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.partialEntries = cfg.wpq.adrBudgetEntries + 1;
    try {
        System sys(cfg);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("partialEntries"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ConfigValidation, ValidConfigConstructs)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPostWpq;
    EXPECT_NO_THROW({ System sys(cfg); });
}

TEST(OptKnobsConfig, LeversDefaultOn)
{
    // The paper's levers survived the microstep crash sweeps and are
    // the build default on every layer: the bundle, the engine
    // parameters, and the WPQ parameters must agree.
    const OptKnobs knobs;
    EXPECT_TRUE(knobs.bmtPipeline);
    EXPECT_TRUE(knobs.drainBatching);
    EXPECT_TRUE(knobs.tagPrefetch);
    EXPECT_FALSE(knobs.bmtPipelineWindow.has_value());

    const auto cfg = SystemConfig::paperDefault();
    EXPECT_TRUE(cfg.secure.bmtPipeline);
    EXPECT_TRUE(cfg.secure.tagPrefetch);
    EXPECT_TRUE(cfg.wpq.drainBatching);
}

TEST(OptKnobsConfig, ParseNamesTheExactLeverSet)
{
    const auto none = parseOptKnobs("none");
    ASSERT_TRUE(none);
    EXPECT_FALSE(none->any());

    const auto all = parseOptKnobs("all");
    ASSERT_TRUE(all);
    EXPECT_TRUE(all->bmtPipeline);
    EXPECT_TRUE(all->drainBatching);
    EXPECT_TRUE(all->tagPrefetch);
    EXPECT_FALSE(all->bmtPipelineWindow.has_value());

    // A comma list enables exactly the named levers — it does NOT
    // toggle on top of the (now all-on) defaults, so an old repro
    // line replays the identical machine on this build.
    const auto one = parseOptKnobs("drain-batch");
    ASSERT_TRUE(one);
    EXPECT_FALSE(one->bmtPipeline);
    EXPECT_TRUE(one->drainBatching);
    EXPECT_FALSE(one->tagPrefetch);

    const auto two = parseOptKnobs("bmt-pipeline,tag-prefetch");
    ASSERT_TRUE(two);
    EXPECT_TRUE(two->bmtPipeline);
    EXPECT_FALSE(two->drainBatching);
    EXPECT_TRUE(two->tagPrefetch);

    const auto win = parseOptKnobs("bmt-pipeline,bmt-window=7");
    ASSERT_TRUE(win);
    EXPECT_TRUE(win->bmtPipeline);
    ASSERT_TRUE(win->bmtPipelineWindow.has_value());
    EXPECT_EQ(*win->bmtPipelineWindow, 7u);
}

TEST(OptKnobsConfig, ParseRejectsBadSpecsInsteadOfClamping)
{
    // Every malformed spec must yield nullopt (a loud usage error at
    // the CLI), never a silently-adjusted bundle.
    EXPECT_EQ(parseOptKnobs(""), std::nullopt);
    EXPECT_EQ(parseOptKnobs("everything"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-pipeline,bogus"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("BMT-PIPELINE"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-pipeline,"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-window="), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-window=0"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-window=-1"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-window=4x"), std::nullopt);
    EXPECT_EQ(parseOptKnobs("bmt-window=999999999"), std::nullopt);
}

TEST(OptKnobsConfig, FormatParseRoundTrips)
{
    // Repro lines print formatOptKnobs unconditionally; the printed
    // spec must parse back to the identical bundle.
    const bool onoff[] = {false, true};
    for (const bool bp : onoff)
        for (const bool db : onoff)
            for (const bool tp : onoff)
                for (const bool window : onoff) {
                    OptKnobs k;
                    k.bmtPipeline = bp;
                    k.drainBatching = db;
                    k.tagPrefetch = tp;
                    if (window)
                        k.bmtPipelineWindow = 9;
                    const std::string spec = formatOptKnobs(k);
                    const auto back = parseOptKnobs(spec);
                    ASSERT_TRUE(back) << spec;
                    EXPECT_EQ(back->bmtPipeline, k.bmtPipeline) << spec;
                    EXPECT_EQ(back->drainBatching, k.drainBatching)
                        << spec;
                    EXPECT_EQ(back->tagPrefetch, k.tagPrefetch) << spec;
                    EXPECT_EQ(back->bmtPipelineWindow,
                              k.bmtPipelineWindow)
                        << spec;
                }
    EXPECT_EQ(formatOptKnobs(OptKnobs{}), "all");
    OptKnobs off;
    off.bmtPipeline = off.drainBatching = off.tagPrefetch = false;
    EXPECT_EQ(formatOptKnobs(off), "none");
}

TEST(OptKnobsConfig, ZeroPipelineWindowIsRejectedByValidation)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.secure.bmtPipeline = true;
    cfg.secure.bmtPipelineWindow = 0;
    EXPECT_NE(validateConfig(cfg).find("bmtPipelineWindow"),
              std::string::npos)
        << validateConfig(cfg);
    EXPECT_THROW({ System sys(cfg); }, std::invalid_argument);

    // With the pipeline off the window is dormant and unconstrained.
    cfg.secure.bmtPipeline = false;
    EXPECT_EQ(validateConfig(cfg), "");
}

TEST(OptKnobsConfig, ApplyOverridesEveryLayer)
{
    auto cfg = SystemConfig::paperDefault();
    OptKnobs k;
    k.bmtPipeline = false;
    k.drainBatching = false;
    k.tagPrefetch = true;
    k.bmtPipelineWindow = 11;
    applyOptKnobs(cfg, k);
    EXPECT_FALSE(cfg.secure.bmtPipeline);
    EXPECT_FALSE(cfg.wpq.drainBatching);
    EXPECT_TRUE(cfg.secure.tagPrefetch);
    EXPECT_EQ(cfg.secure.bmtPipelineWindow, 11u);

    // No window in the bundle keeps the config's own value.
    auto cfg2 = SystemConfig::paperDefault();
    cfg2.secure.bmtPipelineWindow = 6;
    applyOptKnobs(cfg2, OptKnobs{});
    EXPECT_EQ(cfg2.secure.bmtPipelineWindow, 6u);
}

} // namespace
