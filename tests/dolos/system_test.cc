/**
 * @file
 * End-to-end System tests: core -> caches -> controller -> NVM with
 * CLWB/SFENCE semantics, crash and recovery through the facade.
 */

#include <gtest/gtest.h>

#include "dolos/system.hh"

namespace
{

using namespace dolos;

SystemConfig
testConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 256;
    cfg.secure.map.protectedBytes = Addr(256) * pageBytes;
    return cfg;
}

TEST(System, StoreFlushFenceLoadRoundTrip)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    const std::uint64_t v = 0x1234567890ULL;
    core.store(0x1000, &v, sizeof(v));
    core.clwb(0x1000);
    core.sfence();
    std::uint64_t out = 0;
    core.load(0x1000, &out, sizeof(out));
    EXPECT_EQ(out, v);
}

TEST(System, FenceStallOrderingAcrossModes)
{
    // The paper's central claim at the microscopic level: per-fence
    // stall ordering NonSecure <= DolosPost <= DolosPartial <=
    // DolosFull << PreWpqSecure.
    std::map<SecurityMode, std::uint64_t> stall;
    for (const auto mode : {SecurityMode::NonSecureIdeal,
                            SecurityMode::DolosPostWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosFullWpq,
                            SecurityMode::PreWpqSecure}) {
        System sys(testConfig(mode));
        auto &core = sys.core();
        const std::uint64_t v = 42;
        core.store(0x1000, &v, sizeof(v));
        core.clwb(0x1000);
        core.sfence();
        stall[mode] = core.fenceStallCycles();
    }
    EXPECT_LE(stall[SecurityMode::NonSecureIdeal],
              stall[SecurityMode::DolosPostWpq]);
    EXPECT_LE(stall[SecurityMode::DolosPostWpq],
              stall[SecurityMode::DolosPartialWpq]);
    EXPECT_LE(stall[SecurityMode::DolosPartialWpq],
              stall[SecurityMode::DolosFullWpq]);
    EXPECT_LT(stall[SecurityMode::DolosFullWpq],
              stall[SecurityMode::PreWpqSecure]);
}

TEST(System, UnflushedDataLostFlushedDataSurvivesCrash)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    const std::uint64_t flushed = 0xAAAA, unflushed = 0xBBBB;
    core.store(0x1000, &flushed, sizeof(flushed));
    core.clwb(0x1000);
    core.sfence();
    core.store(0x2000, &unflushed, sizeof(unflushed));
    // No CLWB for 0x2000: it lives only in L1.

    sys.crash();
    const auto rec = sys.recover();
    EXPECT_TRUE(rec.misuVerified);
    EXPECT_TRUE(rec.engine.rootVerified);

    std::uint64_t out = 0;
    core.load(0x1000, &out, sizeof(out));
    EXPECT_EQ(out, flushed);
    core.load(0x2000, &out, sizeof(out));
    EXPECT_EQ(out, 0u); // lost with the caches
}

TEST(System, CrashRecoveryLoopPreservesDataAcrossEpochs)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    for (int epoch = 0; epoch < 3; ++epoch) {
        const std::uint64_t v = 0x1000 + epoch;
        const Addr a = 0x1000 + Addr(epoch) * 0x40;
        core.store(a, &v, sizeof(v));
        core.clwb(a);
        core.sfence();
        sys.crash();
        const auto rec = sys.recover();
        ASSERT_TRUE(rec.misuVerified) << "epoch " << epoch;
        ASSERT_TRUE(rec.engine.rootVerified) << "epoch " << epoch;
    }
    for (int epoch = 0; epoch < 3; ++epoch) {
        std::uint64_t out = 0;
        core.load(0x1000 + Addr(epoch) * 0x40, &out, sizeof(out));
        EXPECT_EQ(out, std::uint64_t(0x1000 + epoch));
    }
    EXPECT_FALSE(sys.attackDetected());
}

TEST(System, NvmHoldsOnlyCiphertextForSecureModes)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    Block marker;
    for (unsigned i = 0; i < blockSize; ++i)
        marker[i] = std::uint8_t(0xC0 + (i % 16));
    core.store(0x1000, marker.data(), blockSize);
    core.clwb(0x1000);
    core.sfence();
    // Force the drain to complete, then inspect NVM.
    sys.controller().drainTo(core.now() + 1'000'000);
    const Block at_rest = sys.nvmDevice().readFunctional(0x1000);
    EXPECT_NE(at_rest, marker); // encrypted at rest
    std::uint8_t out[blockSize];
    core.compute(1'000'000);
    core.load(0x1000, out, blockSize);
    EXPECT_EQ(std::memcmp(out, marker.data(), blockSize), 0);
}

TEST(System, NonSecureModeStoresPlaintext)
{
    System sys(testConfig(SecurityMode::NonSecureIdeal));
    auto &core = sys.core();
    Block marker{};
    marker[0] = 0x5A;
    core.store(0x1000, marker.data(), blockSize);
    core.clwb(0x1000);
    core.sfence();
    sys.controller().drainTo(core.now() + 1'000'000);
    EXPECT_EQ(sys.nvmDevice().readFunctional(0x1000), marker);
}

TEST(System, TamperAfterCrashIsDetectedOnRead)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    const std::uint64_t v = 77;
    core.store(0x1000, &v, sizeof(v));
    core.clwb(0x1000);
    core.sfence();
    sys.controller().drainTo(core.now() + 1'000'000);
    core.compute(1'000'000);

    // Cold-boot adversary flips bits in the NVM data array.
    Block ct = sys.nvmDevice().readFunctional(0x1000);
    ct[0] ^= 0xFF;
    sys.nvmDevice().writeFunctional(0x1000, ct);

    sys.crash();
    sys.recover();
    std::uint64_t out = 0;
    core.load(0x1000, &out, sizeof(out));
    EXPECT_TRUE(sys.attackDetected());
}

TEST(System, StatsDumpMentionsAllComponents)
{
    System sys(testConfig(SecurityMode::DolosPartialWpq));
    const std::uint64_t v = 1;
    sys.core().store(0x1000, &v, sizeof(v));
    sys.core().clwb(0x1000);
    sys.core().sfence();
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string s = os.str();
    for (const char *part : {"core", "l1", "llc", "mc", "secEngine",
                             "nvm"})
        EXPECT_NE(s.find(part), std::string::npos) << part;
}

} // namespace
