/**
 * @file
 * Redo-log buffer tests (Ma-SU step 2/3 staging).
 */

#include <gtest/gtest.h>

#include "dolos/redo_log.hh"

namespace
{

using namespace dolos;

TEST(RedoLog, StartsNotReady)
{
    RedoLogBuffer log;
    EXPECT_FALSE(log.ready());
}

TEST(RedoLog, FillSetsReadyAndStoresRecord)
{
    RedoLogBuffer log;
    RedoLogRecord rec;
    rec.addr = 0x1000;
    rec.counter = 7;
    rec.ciphertext[0] = 0xAB;
    log.fill(rec);
    EXPECT_TRUE(log.ready());
    EXPECT_EQ(log.record().addr, 0x1000u);
    EXPECT_EQ(log.record().counter, 7u);
    EXPECT_EQ(log.record().ciphertext[0], 0xAB);
}

TEST(RedoLog, ClearResetsReady)
{
    RedoLogBuffer log;
    log.fill({});
    log.clear();
    EXPECT_FALSE(log.ready());
}

TEST(RedoLog, RefillOverwrites)
{
    RedoLogBuffer log;
    RedoLogRecord a;
    a.addr = 1;
    log.fill(a);
    log.clear();
    RedoLogRecord b;
    b.addr = 2;
    log.fill(b);
    EXPECT_EQ(log.record().addr, 2u);
}

} // namespace
