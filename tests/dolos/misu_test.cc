/**
 * @file
 * Mi-SU tests: latencies, pad handling, MAC/root verification,
 * epoch advance (pad non-reuse).
 */

#include <gtest/gtest.h>

#include "dolos/misu.hh"

namespace
{

using namespace dolos;

struct MisuTest : ::testing::Test
{
    std::unique_ptr<crypto::MacEngine> mac = crypto::makeMacEngine(
        crypto::MacKind::SipHash24, {1, 2, 3});
    crypto::AesKey key{{9, 8, 7, 6}};

    MiSu
    make(SecurityMode mode, unsigned cap)
    {
        return MiSu(mode, cap, 160, key, *mac);
    }

    Block
    data(std::uint8_t seed)
    {
        Block b;
        for (unsigned i = 0; i < blockSize; ++i)
            b[i] = std::uint8_t(seed + 2 * i);
        return b;
    }
};

TEST_F(MisuTest, InsertLatenciesMatchPaper)
{
    EXPECT_EQ(make(SecurityMode::DolosFullWpq, 16).insertLatency(), 320u);
    EXPECT_EQ(make(SecurityMode::DolosPartialWpq, 13).insertLatency(),
              160u);
    EXPECT_EQ(make(SecurityMode::DolosPostWpq, 10).insertLatency(), 0u);
}

TEST_F(MisuTest, ProtectEncryptsDataAndAddress)
{
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    const Block pt = data(1);
    const auto img = misu.protect(0, 0x1000, pt, 0);
    EXPECT_NE(img.ctData, pt);
    EXPECT_NE(img.ctAddr, 0x1000u);
}

TEST_F(MisuTest, UnprotectRoundTrips)
{
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    const Block pt = data(2);
    const auto img = misu.protect(5, 0x2040, pt, 0);
    const auto [addr, out] = misu.unprotect(5, img);
    EXPECT_EQ(addr, 0x2040u);
    EXPECT_EQ(out, pt);
}

TEST_F(MisuTest, VerifyEntryDetectsTamper)
{
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    auto img = misu.protect(3, 0x40, data(3), 0);
    EXPECT_TRUE(misu.verifyEntry(3, img));
    img.ctData[0] ^= 1;
    EXPECT_FALSE(misu.verifyEntry(3, img));
}

TEST_F(MisuTest, VerifyEntryDetectsSlotRelocation)
{
    // Moving an entry to a different slot changes its counter and
    // fails verification.
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    const auto img = misu.protect(3, 0x40, data(3), 0);
    EXPECT_FALSE(misu.verifyEntry(4, img));
}

TEST_F(MisuTest, FullDesignRootVerifies)
{
    auto misu = make(SecurityMode::DolosFullWpq, 16);
    std::vector<std::pair<unsigned, MisuEntryImage>> imgs;
    for (unsigned s = 0; s < 4; ++s)
        imgs.emplace_back(s, misu.protect(s, 0x1000 + s * 64,
                                          data(std::uint8_t(s)), 0));
    EXPECT_TRUE(misu.verifyRoot(imgs));
    imgs[2].second.ctData[5] ^= 0x80;
    EXPECT_FALSE(misu.verifyRoot(imgs));
}

TEST_F(MisuTest, PostDesignBusyWindow)
{
    auto misu = make(SecurityMode::DolosPostWpq, 10);
    EXPECT_EQ(misu.acceptableAt(100), 100u);
    misu.protect(0, 0x0, data(0), 100);
    // Unit busy for one MAC after the commit.
    EXPECT_EQ(misu.acceptableAt(150), 260u);
    EXPECT_EQ(misu.acceptableAt(500), 500u);
}

TEST_F(MisuTest, MacUnitSerializesInserts)
{
    // Full/Partial: the unit is busy until the previous commit.
    auto misu = make(SecurityMode::DolosFullWpq, 16);
    misu.protect(0, 0x0, data(0), 420); // committed at 420
    EXPECT_EQ(misu.acceptableAt(200), 420u);
    EXPECT_EQ(misu.acceptableAt(500), 500u);
}

TEST_F(MisuTest, AdvanceEpochChangesPadsAndCounter)
{
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    const auto pcr0 = misu.persistentCounter();
    const auto img0 = misu.protect(0, 0x40, data(7), 0);
    misu.advanceEpoch();
    EXPECT_EQ(misu.persistentCounter(), pcr0 + 13);
    const auto img1 = misu.protect(0, 0x40, data(7), 0);
    // Same slot, same content, new epoch: different ciphertext.
    EXPECT_NE(img0.ctData, img1.ctData);
    // And the old image no longer verifies (counter moved on).
    EXPECT_FALSE(misu.verifyEntry(0, img0));
}

TEST_F(MisuTest, StorageOverheadMatchesTable3)
{
    const auto full = make(SecurityMode::DolosFullWpq, 16)
                          .storageOverhead();
    EXPECT_EQ(full.persistentCounterBytes, 8u);
    EXPECT_EQ(full.macBytes, 192u);
    EXPECT_EQ(full.padBytes, 72u * 16);

    const auto partial = make(SecurityMode::DolosPartialWpq, 13)
                             .storageOverhead();
    EXPECT_EQ(partial.macBytes, 128u);
    EXPECT_EQ(partial.padBytes, 80u * 13);

    const auto post = make(SecurityMode::DolosPostWpq, 10)
                          .storageOverhead();
    EXPECT_EQ(post.padBytes, 80u * 10);
}

TEST_F(MisuTest, DistinctSlotsProduceDistinctCiphertext)
{
    auto misu = make(SecurityMode::DolosPartialWpq, 13);
    const auto a = misu.protect(0, 0x40, data(9), 0);
    const auto b = misu.protect(1, 0x40, data(9), 0);
    EXPECT_NE(a.ctData, b.ctData);
}

} // namespace
