/**
 * @file
 * PmemEnv tests: typed access, allocator persistence, root slots,
 * crash-hook plumbing.
 */

#include <gtest/gtest.h>

#include "workloads/pmem.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
testConfig()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.secure.functionalLeaves = 4096; // 16 MB heap
    cfg.secure.map.protectedBytes = Addr(4096) * pageBytes;
    return cfg;
}

struct PmemTest : ::testing::Test
{
    System sys{testConfig()};
    PmemEnv env{sys};
};

TEST_F(PmemTest, TypedReadWriteRoundTrips)
{
    env.write<std::uint32_t>(0x30000, 0xCAFE);
    EXPECT_EQ(env.read<std::uint32_t>(0x30000), 0xCAFEu);
}

TEST_F(PmemTest, AllocReturnsAlignedDisjointRegions)
{
    const Addr a = env.alloc(100, 64);
    const Addr b = env.alloc(100, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(a, PmemLayout::heapBase);
}

TEST_F(PmemTest, AllocCursorSurvivesReattach)
{
    const Addr a = env.alloc(256, 8);
    env.fence();
    env.reattach();
    const Addr b = env.alloc(8, 8);
    EXPECT_GE(b, a + 256);
}

TEST_F(PmemTest, RootSlotsPersistAcrossCrash)
{
    env.setRootPtr(3, 0xABC0);
    sys.crash();
    sys.recover();
    env.reattach();
    EXPECT_EQ(env.rootPtr(3), 0xABC0u);
}

TEST_F(PmemTest, OpHookFiresAndCanCrash)
{
    int calls = 0;
    env.setOpHook([&] {
        if (++calls == 3)
            throw CrashRequested{};
    });
    env.write<std::uint64_t>(0x30000, 1);
    env.write<std::uint64_t>(0x30040, 2);
    EXPECT_THROW(env.write<std::uint64_t>(0x30080, 3), CrashRequested);
}

TEST_F(PmemTest, FlushCoversWholeRange)
{
    std::vector<std::uint8_t> buf(200, 0x5A);
    env.writeBytes(0x30000, buf.data(), 200);
    env.flush(0x30000, 200);
    env.fence();
    sys.crash();
    sys.recover();
    env.reattach();
    std::vector<std::uint8_t> out(200);
    env.readBytes(0x30000, out.data(), 200);
    EXPECT_EQ(out, buf);
}

} // namespace
