/**
 * @file
 * Undo-log transaction tests: atomicity across crashes.
 */

#include <gtest/gtest.h>

#include "workloads/tx.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
testConfig()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.secure.functionalLeaves = 4096;
    cfg.secure.map.protectedBytes = Addr(4096) * pageBytes;
    return cfg;
}

struct TxTest : ::testing::Test
{
    // (also reused by the death-test fixture alias below)
    System sys{testConfig()};
    PmemEnv env{sys};
    static constexpr Addr a0 = PmemLayout::heapBase;
    static constexpr Addr a1 = PmemLayout::heapBase + 0x40;

    void
    crashAndRecover()
    {
        env.setOpHook(nullptr);
        sys.crash();
        sys.recover();
        env.reattach();
        TxContext::recover(env);
    }
};

TEST_F(TxTest, CommittedTransactionIsDurable)
{
    {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 111);
        tx.write<std::uint64_t>(a1, 222);
        tx.commit();
    }
    crashAndRecover();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 111u);
    EXPECT_EQ(env.read<std::uint64_t>(a1), 222u);
}

TEST_F(TxTest, UncommittedTransactionRollsBack)
{
    {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 111);
        tx.commit();
    }
    {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 999);
        tx.write<std::uint64_t>(a1, 888);
        // no commit: power fails here
    }
    crashAndRecover();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 111u);
    EXPECT_EQ(env.read<std::uint64_t>(a1), 0u);
}

TEST_F(TxTest, RecoverIsIdempotentAndReportsWork)
{
    {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 5);
    }
    crashAndRecover();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 0u);
    EXPECT_FALSE(TxContext::recover(env)); // nothing left to do
}

TEST_F(TxTest, TransactionalAllocRollsBackCursor)
{
    const Addr before = env.alloc(8, 8);
    (void)before;
    env.fence();
    Addr allocated = 0;
    {
        TxContext tx(env);
        allocated = tx.alloc(1000, 8);
        tx.write<std::uint64_t>(allocated, 42);
    }
    crashAndRecover();
    // The cursor rolled back: the next allocation reuses the space.
    const Addr again = env.alloc(1000, 8);
    EXPECT_EQ(again, allocated);
}

TEST_F(TxTest, MultiBlockWriteIsAtomic)
{
    std::vector<std::uint8_t> big(300, 0xAA);
    {
        TxContext tx(env);
        tx.write(a0, big.data(), unsigned(big.size()));
        tx.commit();
    }
    std::vector<std::uint8_t> update(300, 0xBB);
    std::uint64_t ops_before = env.opCount();
    // Crash partway through the second transaction's data writes.
    env.setOpHook([&] {
        if (env.opCount() - ops_before > 25)
            throw CrashRequested{};
    });
    bool crashed = false;
    try {
        TxContext tx(env);
        tx.write(a0, update.data(), unsigned(update.size()));
        tx.commit();
    } catch (const CrashRequested &) {
        crashed = true;
    }
    crashAndRecover();
    std::vector<std::uint8_t> out(300);
    env.readBytes(a0, out.data(), 300);
    // All-or-nothing: either the old or the new image, never a mix.
    EXPECT_TRUE(out == big || out == update) << "crashed=" << crashed;
}

TEST_F(TxTest, SequentialTransactionsEachDurable)
{
    for (std::uint64_t i = 0; i < 10; ++i) {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0 + i * 0x40, i + 1);
        tx.commit();
    }
    crashAndRecover();
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(env.read<std::uint64_t>(a0 + i * 0x40), i + 1);
}

TEST_F(TxTest, CommitIsDurableEvenIfCrashFollowsImmediately)
{
    TxContext tx(env);
    tx.write<std::uint64_t>(a0, 777);
    tx.commit();
    // Crash with zero further operations.
    crashAndRecover();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 777u);
}

TEST_F(TxTest, WritePersistIsDurableWithoutCommitFlush)
{
    // writePersist makes data durable eagerly; even an uncommitted
    // transaction's eager writes are rolled back on recovery.
    std::vector<std::uint8_t> v(100, 0x42);
    {
        TxContext tx(env);
        tx.writePersist(a0, v.data(), unsigned(v.size()));
        tx.commit();
    }
    crashAndRecover();
    std::vector<std::uint8_t> out(100);
    env.readBytes(a0, out.data(), 100);
    EXPECT_EQ(out, v);

    {
        TxContext tx(env);
        std::vector<std::uint8_t> w(100, 0x43);
        tx.writePersist(a0, w.data(), unsigned(w.size()));
        // no commit
    }
    crashAndRecover();
    env.readBytes(a0, out.data(), 100);
    EXPECT_EQ(out, v); // rolled back to the committed image
}

TEST_F(TxTest, InterleavedReadsSeeOwnWrites)
{
    TxContext tx(env);
    tx.write<std::uint64_t>(a0, 5);
    EXPECT_EQ(env.read<std::uint64_t>(a0), 5u); // in-place updates
    tx.write<std::uint64_t>(a0, 6);
    tx.commit();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 6u);
}

TEST_F(TxTest, RollbackRestoresIntermediateOverwrites)
{
    {
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 1);
        tx.commit();
    }
    {
        // Two writes to the same field in one aborted transaction:
        // undo records applied newest-first restore the original.
        TxContext tx(env);
        tx.write<std::uint64_t>(a0, 2);
        tx.write<std::uint64_t>(a0, 3);
    }
    crashAndRecover();
    EXPECT_EQ(env.read<std::uint64_t>(a0), 1u);
}

using TxTestDeath = TxTest;

TEST_F(TxTestDeath, LogOverflowPanics)
{
    TxContext tx(env);
    std::vector<std::uint8_t> big(4096, 1);
    EXPECT_DEATH(
        {
            for (int i = 0; i < 64; ++i)
                tx.write(a0 + Addr(i) * 4096, big.data(),
                         unsigned(big.size()));
        },
        "transaction log overflow");
}

TEST_F(TxTestDeath, DoubleCommitPanics)
{
    TxContext tx(env);
    tx.write<std::uint64_t>(a0, 1);
    tx.commit();
    EXPECT_DEATH(tx.commit(), "double commit");
}

TEST_F(TxTestDeath, WriteAfterCommitPanics)
{
    TxContext tx(env);
    tx.commit();
    EXPECT_DEATH(tx.write<std::uint64_t>(a0, 1), "write after commit");
}

} // namespace
