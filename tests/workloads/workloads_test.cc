/**
 * @file
 * Parameterized tests over all workloads (the six paper benchmarks
 * plus the echo and vacation extensions): functional
 * verification, runner metrics, and crash-consistency sweeps.
 */

#include <gtest/gtest.h>

#include "workloads/runner.hh"

namespace
{

using namespace dolos;
using namespace dolos::workloads;

SystemConfig
testConfig(SecurityMode mode = SecurityMode::DolosPartialWpq)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 8192; // 32 MB heap
    cfg.secure.map.protectedBytes = Addr(8192) * pageBytes;
    return cfg;
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 64;
    p.seed = 9;
    p.thinkTime = 500;
    p.readsPerTx = 1;
    return p;
}

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, RunsAndVerifies)
{
    System sys(testConfig());
    auto wl = makeWorkload(GetParam(), smallParams());
    const auto res = runWorkload(sys, *wl, 60);
    EXPECT_EQ(res.transactions, 60u);
    EXPECT_TRUE(res.verified) << res.verifyDiagnostic;
    EXPECT_FALSE(sys.attackDetected());
    EXPECT_GT(res.runCycles, 0u);
    EXPECT_GT(res.writeRequests, 0u);
}

TEST_P(WorkloadTest, VerifiesOnBaselineToo)
{
    System sys(testConfig(SecurityMode::PreWpqSecure));
    auto wl = makeWorkload(GetParam(), smallParams());
    const auto res = runWorkload(sys, *wl, 30);
    EXPECT_TRUE(res.verified) << res.verifyDiagnostic;
}

TEST_P(WorkloadTest, DolosIsFasterThanBaseline)
{
    auto params = smallParams();
    System base(testConfig(SecurityMode::PreWpqSecure));
    auto wl1 = makeWorkload(GetParam(), params);
    const auto rb = runWorkload(base, *wl1, 40);

    System dolos(testConfig(SecurityMode::DolosPartialWpq));
    auto wl2 = makeWorkload(GetParam(), params);
    const auto rd = runWorkload(dolos, *wl2, 40);

    EXPECT_LT(rd.cyclesPerTx(), rb.cyclesPerTx()) << GetParam();
}

TEST_P(WorkloadTest, CrashDuringRunRecoversConsistently)
{
    // Sweep several crash points; each run must recover to a state
    // where every committed transaction is intact and any partial
    // transaction was rolled back.
    for (const std::uint64_t crash_op : {50u, 500u, 1700u, 4300u}) {
        System sys(testConfig());
        auto wl = makeWorkload(GetParam(), smallParams());
        const auto res =
            runWorkload(sys, *wl, 60, CrashPlan{crash_op});
        EXPECT_TRUE(res.verified)
            << GetParam() << " crash at op " << crash_op << ": "
            << res.verifyDiagnostic;
        if (res.crashed) {
            EXPECT_LT(res.transactions, 60u);
        }
        EXPECT_FALSE(sys.attackDetected());
    }
}

TEST_P(WorkloadTest, CrashSweepAcrossAllDolosModes)
{
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPostWpq}) {
        System sys(testConfig(mode));
        auto wl = makeWorkload(GetParam(), smallParams());
        const auto res = runWorkload(sys, *wl, 40, CrashPlan{900});
        EXPECT_TRUE(res.verified)
            << GetParam() << " mode " << securityModeName(mode) << ": "
            << res.verifyDiagnostic;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(extendedWorkloadNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(WorkloadFactory, NamesAreStable)
{
    const auto names = workloadNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "hashmap");
    EXPECT_EQ(names[5], "redis");
}

TEST(WorkloadFactoryDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeWorkload("nope", WorkloadParams{}),
                 "unknown workload");
}

TEST(Runner, TransactionSizeScalesWriteTraffic)
{
    auto small = smallParams();
    auto large = smallParams();
    large.txSize = 1024;

    System s1(testConfig());
    auto w1 = makeWorkload("hashmap", small);
    const auto r1 = runWorkload(s1, *w1, 30);

    System s2(testConfig());
    auto w2 = makeWorkload("hashmap", large);
    const auto r2 = runWorkload(s2, *w2, 30);

    EXPECT_GT(r2.writeRequests, r1.writeRequests * 2);
}

} // namespace
