/**
 * @file
 * Security engine tests: functional encryption/integrity, timing
 * composition, attack detection, crash recovery.
 */

#include <gtest/gtest.h>

#include "secure/security_engine.hh"
#include "sim/random.hh"

namespace
{

using namespace dolos;

SecureParams
testParams()
{
    SecureParams p;
    p.functionalLeaves = 256; // 1 MB protected heap for tests
    p.map.protectedBytes = Addr(256) * pageBytes;
    // Small metadata caches so evictions happen in tests.
    p.counterCache = {"counterCache", 4 * 1024, 4};
    p.mtCache = {"mtCache", 4 * 1024, 8};
    // These tests pin the paper's serial latency composition; the
    // (now default-on) levers are covered by bmt_pipeline_test,
    // drain_batch_test and tag_prefetch_test.
    p.bmtPipeline = false;
    p.tagPrefetch = false;
    for (int i = 0; i < 16; ++i) {
        p.dataKey[i] = std::uint8_t(i + 1);
        p.macKey[i] = std::uint8_t(0x80 + i);
    }
    return p;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (i * 3));
    return b;
}

struct SecurityEngineTest : ::testing::Test
{
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng{testParams(), nvm};

    /** Full write path: security ops + ciphertext to NVM. */
    Tick
    writeThrough(Addr addr, const Block &pt, Tick now)
    {
        const auto r = eng.secureWrite(addr, pt, now);
        return eng.writeCiphertext(addr, r.ciphertext, r.doneTick);
    }
};

TEST_F(SecurityEngineTest, CiphertextIsNotPlaintext)
{
    const Block pt = pattern(1);
    const auto r = eng.secureWrite(0x1000, pt, 0);
    EXPECT_NE(r.ciphertext, pt);
    EXPECT_EQ(r.counter, 1u);
}

TEST_F(SecurityEngineTest, ReadDecryptsWhatWasWritten)
{
    const Block pt = pattern(2);
    writeThrough(0x2000, pt, 0);
    const auto rd = eng.secureRead(0x2000, 100000);
    EXPECT_EQ(rd.data, pt);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, SamePlaintextDifferentCiphertextOverWrites)
{
    // Temporal uniqueness: rewriting identical plaintext yields a
    // different ciphertext because the counter advanced.
    const Block pt = pattern(3);
    const auto r1 = eng.secureWrite(0x3000, pt, 0);
    const auto r2 = eng.secureWrite(0x3000, pt, r1.doneTick);
    EXPECT_NE(r1.ciphertext, r2.ciphertext);
    EXPECT_EQ(r2.counter, r1.counter + 1);
}

TEST_F(SecurityEngineTest, SamePlaintextDifferentCiphertextAcrossAddrs)
{
    // Spatial uniqueness.
    const Block pt = pattern(4);
    const auto r1 = eng.secureWrite(0x4000, pt, 0);
    const auto r2 = eng.secureWrite(0x5000, pt, r1.doneTick);
    EXPECT_NE(r1.ciphertext, r2.ciphertext);
}

TEST_F(SecurityEngineTest, WriteLatencyCompositionEager)
{
    // Counter-cache hit path: AES (40) + 10 MACs (1600) = 1640.
    writeThrough(0x1000, pattern(0), 0); // warms counter cache (miss)
    const Tick busy = eng.busyUntil();
    const auto r = eng.secureWrite(0x1000, pattern(1), busy);
    EXPECT_EQ(r.doneTick - busy, 40u + 10u * 160u);
}

TEST_F(SecurityEngineTest, WriteLatencyCompositionLazy)
{
    auto p = testParams();
    p.treePolicy = TreeUpdatePolicy::LazyToc;
    NvmDevice nvm2{NvmParams{}};
    SecurityEngine lazy(p, nvm2);
    lazy.secureWrite(0x1000, pattern(0), 0);
    const Tick busy = lazy.busyUntil();
    const auto r = lazy.secureWrite(0x1000, pattern(1), busy);
    EXPECT_EQ(r.doneTick - busy, 40u + 4u * 160u);
}

TEST_F(SecurityEngineTest, ColdCounterMissAddsNvmFetch)
{
    // First-ever access: counter block fetch (600) + tree walk.
    const auto r = eng.secureWrite(0x1000, pattern(0), 0);
    EXPECT_GE(r.doneTick, 600u + 40u + 1600u);
}

TEST_F(SecurityEngineTest, SerialEngineFullySerializesWrites)
{
    // Default (paper) model: back-to-back writes each occupy the
    // engine for the full security latency.
    const auto r1 = eng.secureWrite(0x1000, pattern(0), 0);
    const auto r2 = eng.secureWrite(0x1040, pattern(1), 10);
    EXPECT_GE(r2.doneTick, r1.doneTick + 40 + 1600);
}

TEST_F(SecurityEngineTest, PipelinedEngineIssuesEveryMacSlot)
{
    // Ablation model: same page (counter hit for the second write),
    // writes complete one MAC slot (160 cycles) apart.
    auto p = testParams();
    p.pipelinedWrites = true;
    NvmDevice nvm2{NvmParams{}};
    SecurityEngine piped(p, nvm2);
    const auto r1 = piped.secureWrite(0x1000, pattern(0), 0);
    const auto r2 = piped.secureWrite(0x1040, pattern(1), 10);
    EXPECT_EQ(r2.doneTick, r1.doneTick + 160);
}

TEST_F(SecurityEngineTest, TamperedCiphertextDetectedOnRead)
{
    writeThrough(0x2000, pattern(5), 0);
    Block ct = nvm.readFunctional(0x2000);
    ct[7] ^= 0x40;
    nvm.writeFunctional(0x2000, ct);
    eng.secureRead(0x2000, 100000);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, SpoofedMacDetectedOnRead)
{
    writeThrough(0x2000, pattern(5), 0);
    const Addr mac_block = AddressMap::macBlockAddr(0x2000);
    Block mb = nvm.readFunctional(mac_block);
    mb[AddressMap::macOffsetInBlock(0x2000)] ^= 1;
    nvm.writeFunctional(mac_block, mb);
    eng.secureRead(0x2000, 100000);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, RelocatedCiphertextDetectedOnRead)
{
    // Copy block A's ciphertext and MAC over block B: the MAC binds
    // the address, so the relocation is detected.
    writeThrough(0x2000, pattern(6), 0);
    writeThrough(0x6000, pattern(7), 50000);
    const Block ct_a = nvm.readFunctional(0x2000);
    nvm.writeFunctional(0x6000, ct_a);
    const Addr mac_a = AddressMap::macBlockAddr(0x2000);
    const Addr mac_b = AddressMap::macBlockAddr(0x6000);
    Block mb = nvm.readFunctional(mac_b);
    const Block ma = nvm.readFunctional(mac_a);
    std::memcpy(mb.data() + AddressMap::macOffsetInBlock(0x6000),
                ma.data() + AddressMap::macOffsetInBlock(0x2000), 8);
    nvm.writeFunctional(mac_b, mb);
    eng.secureRead(0x6000, 200000);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, ReplayedDataDetectedOnRead)
{
    // Capture (ciphertext, MAC) after write 1, restore after write 2.
    writeThrough(0x2000, pattern(8), 0);
    const Block old_ct = nvm.readFunctional(0x2000);
    const Block old_mac = nvm.readFunctional(
        AddressMap::macBlockAddr(0x2000));
    writeThrough(0x2000, pattern(9), 100000);
    nvm.writeFunctional(0x2000, old_ct);
    nvm.writeFunctional(AddressMap::macBlockAddr(0x2000), old_mac);
    eng.secureRead(0x2000, 300000);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, ColdReadReturnsZeros)
{
    const auto rd = eng.secureRead(0x7000, 0);
    EXPECT_EQ(rd.data, zeroBlock());
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, RecoveryRestoresCountersAndRoot)
{
    Random rng(11);
    std::vector<std::pair<Addr, Block>> writes;
    Tick t = 0;
    for (int i = 0; i < 50; ++i) {
        const Addr addr = blockAlign(rng.below(200 * pageBytes));
        const Block pt = pattern(std::uint8_t(i));
        t = writeThrough(addr, pt, t);
        writes.emplace_back(addr, pt);
    }
    const auto root_before = eng.persistentRoot();

    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_FALSE(rec.shadowTamper);
    EXPECT_EQ(eng.persistentRoot(), root_before);

    // All data remains readable and intact after recovery.
    Tick rt = 1'000'000'000;
    for (const auto &[addr, pt] : writes) {
        const auto rd = eng.secureRead(addr, rt);
        EXPECT_EQ(rd.data, pt) << std::hex << addr;
        rt = rd.completeTick;
    }
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, RecoveryDetectsTamperedCounterRegion)
{
    writeThrough(0x1000, pattern(1), 0);
    eng.crash();
    // Tamper with both the NVM counter block and the shadow region
    // (erase the slot marker) so neither source is authentic.
    const Addr cb = AddressMap::counterBlockAddr(0x1000);
    Block b = nvm.readFunctional(cb);
    b[0] ^= 1;
    nvm.writeFunctional(cb, b);
    for (std::size_t s = 0; s < 1024; ++s)
        nvm.writeFunctional(AddressMap::shadowSlotAddr(s), zeroBlock());
    // Also clear shadow metadata blocks.
    for (std::size_t s = 0; s < 1024; ++s)
        nvm.writeFunctional(AddressMap::shadowSlotAddr(s) + blockSize,
                            zeroBlock());
    const auto rec = eng.recover();
    EXPECT_FALSE(rec.rootVerified);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, RecoveryUsesShadowForDirtyCachedCounters)
{
    // Write twice to the same block; the counter block is dirty in
    // the counter cache (never evicted). After a crash the NVM
    // counter region is stale; the shadow entry must supply the
    // up-to-date counter, or decryption would fail.
    const Block pt = pattern(10);
    Tick t = writeThrough(0x1000, pattern(0), 0);
    t = writeThrough(0x1000, pt, t);
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_GE(rec.shadowApplied, 1u);
    const auto rd = eng.secureRead(0x1000, 10'000'000);
    EXPECT_EQ(rd.data, pt);
}

TEST_F(SecurityEngineTest, PageReencryptionAfterMinorOverflow)
{
    // Drive one block past 127 writes to overflow the minors, then
    // check that a *sibling* block (written once, long before) is
    // still readable -- its ciphertext was re-encrypted under the
    // new major counter.
    const Block sibling = pattern(20);
    Tick t = writeThrough(0x0, sibling, 0);
    const Block hot = pattern(21);
    for (int i = 0; i < 128; ++i)
        t = writeThrough(0x40, hot, t);

    const auto rd1 = eng.secureRead(0x0, t + 1000);
    EXPECT_EQ(rd1.data, sibling);
    const auto rd2 = eng.secureRead(0x40, rd1.completeTick);
    EXPECT_EQ(rd2.data, hot);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, CounterCacheHitsTrackLocality)
{
    Tick t = writeThrough(0x0, pattern(0), 0);
    writeThrough(0x40, pattern(1), t); // same page: counter hit
    EXPECT_EQ(eng.counterCacheMisses(), 1u);
    EXPECT_EQ(eng.counterCacheHits(), 1u);
}

TEST_F(SecurityEngineTest, ReissueCiphertextKeepsBlockReadable)
{
    const Block pt = pattern(12);
    writeThrough(0x1000, pattern(11), 0);
    eng.reissueCiphertext(0x1000, pt);
    const auto rd = eng.secureRead(0x1000, 100000);
    EXPECT_EQ(rd.data, pt);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, TransientMediaFaultHealsWithoutAlarm)
{
    const Block pt = pattern(13);
    writeThrough(0x1000, pt, 0);
    nvm.injectTransientFlip(0x1000, 5);

    const auto rd = eng.secureRead(0x1000, 100000);
    // Device-flagged corruption is a media problem: retried, healed,
    // and never escalated to the tamper alarm.
    EXPECT_EQ(rd.data, pt);
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_EQ(eng.mediaRetries(), 1u);
    EXPECT_EQ(eng.mediaHealed(), 1u);
    EXPECT_EQ(nvm.quarantineCount(), 0u);
}

TEST_F(SecurityEngineTest, StuckCellQuarantinesWithoutAlarm)
{
    const Block pt = pattern(14);
    writeThrough(0x2000, pt, 0);
    const Block stored = nvm.readFunctional(0x2000);
    const bool bit3 = stored[0] & 0x08;
    nvm.injectStuckBit(0x2000, 3, !bit3);

    const auto rd = eng.secureRead(0x2000, 100000);
    // Unhealable, device-flagged: graceful degradation, not tamper.
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_TRUE(nvm.isQuarantined(0x2000));
    EXPECT_EQ(eng.mediaRetries(), testParams().mediaRetryLimit);
    EXPECT_EQ(eng.mediaHealed(), 0u);
    EXPECT_EQ(rd.data, zeroBlock());

    // Later reads of the quarantined block short-circuit to zeros.
    const auto again = eng.secureRead(0x2000, 500000);
    EXPECT_EQ(again.data, zeroBlock());
    EXPECT_EQ(eng.quarantineReads(), 1u);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(SecurityEngineTest, TamperWithoutMediaFlagStillAlarms)
{
    // The disambiguation must not weaken the threat model: a MAC
    // mismatch on a *clean* device read is an integrity attack.
    const Block pt = pattern(15);
    writeThrough(0x3000, pt, 0);
    Block ct = nvm.readFunctional(0x3000);
    ct[7] ^= 0x10; // adversarial mutation leaves no device trace
    nvm.writeFunctional(0x3000, ct);

    eng.secureRead(0x3000, 100000);
    EXPECT_TRUE(eng.attackDetected());
    EXPECT_EQ(eng.mediaRetries(), 0u);
    EXPECT_EQ(nvm.quarantineCount(), 0u);
}

TEST_F(SecurityEngineTest, WriteFailuresRetryThenQuarantine)
{
    const Block pt = pattern(16);
    // Fewer failures than the retry budget: the write heals.
    nvm.injectWriteFail(0x4000, 2);
    writeThrough(0x4000, pt, 0);
    EXPECT_EQ(eng.mediaHealed(), 1u);
    EXPECT_FALSE(nvm.isQuarantined(0x4000));
    const auto rd = eng.secureRead(0x4000, 1000000);
    EXPECT_EQ(rd.data, pt);

    // More failures than the budget: the block is quarantined, and
    // the alarm still stays silent (worn cells, not an adversary).
    nvm.injectWriteFail(0x5000, 16);
    writeThrough(0x5000, pattern(17), 2000000);
    EXPECT_TRUE(nvm.isQuarantined(0x5000));
    EXPECT_FALSE(eng.attackDetected());
}

} // namespace
