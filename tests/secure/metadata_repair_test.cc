/**
 * @file
 * Metadata media-fault repair tests: region classification of NVM
 * addresses, the per-region repair paths (counter pages rebuilt by
 * trial MAC, tree nodes re-hashed from children, MAC blocks recomputed
 * from ciphertext + counter), the quarantine cascade with provenance
 * when every repair source is exhausted, the background scrub, and the
 * planted counter-repair bug the torture harness hunts.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "secure/merkle_tree.hh"
#include "secure/security_engine.hh"

namespace
{

using namespace dolos;

SecureParams
repairParams()
{
    SecureParams p;
    p.functionalLeaves = 256; // 1 MB protected heap for tests
    p.map.protectedBytes = Addr(256) * pageBytes;
    // Small metadata caches so evictions happen in tests.
    p.counterCache = {"counterCache", 4 * 1024, 4};
    p.mtCache = {"mtCache", 4 * 1024, 8};
    for (int i = 0; i < 16; ++i) {
        p.dataKey[i] = std::uint8_t(i + 1);
        p.macKey[i] = std::uint8_t(0x80 + i);
    }
    return p;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (i * 5));
    return b;
}

/** Pin bit @p bit of @p addr to the complement of its stored value. */
void
stickBit(NvmDevice &nvm, Addr addr, unsigned bit)
{
    const Block stored = nvm.readFunctional(addr);
    const bool current = stored[bit / 8] & std::uint8_t(1u << (bit % 8));
    nvm.injectStuckBit(addr, bit, !current);
}

std::string
causeOf(const char *kind, Addr addr)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s_0x%llx", kind,
                  (unsigned long long)addr);
    return buf;
}

struct MetadataRepairTest : ::testing::Test
{
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng{repairParams(), nvm};

    /** Full write path: security ops + ciphertext to NVM. */
    Tick
    writeThrough(Addr addr, const Block &pt, Tick now)
    {
        const auto r = eng.secureWrite(addr, pt, now);
        return eng.writeCiphertext(addr, r.ciphertext, r.doneTick);
    }
};

TEST(NvmRegions, ClassificationBoundariesAreExact)
{
    AddressMap map;
    map.protectedBytes = Addr(256) * pageBytes;
    EXPECT_EQ(map.regionOf(0), NvmRegion::Data);
    EXPECT_EQ(map.regionOf(map.protectedBytes - 1), NvmRegion::Data);
    EXPECT_EQ(map.regionOf(map.protectedBytes), NvmRegion::Unknown);
    EXPECT_EQ(map.regionOf(AddressMap::counterBase), NvmRegion::Counter);
    EXPECT_EQ(map.regionOf(AddressMap::macBase - 1), NvmRegion::Counter);
    EXPECT_EQ(map.regionOf(AddressMap::macBase), NvmRegion::Mac);
    EXPECT_EQ(map.regionOf(AddressMap::treeBase - 1), NvmRegion::Mac);
    EXPECT_EQ(map.regionOf(AddressMap::treeBase), NvmRegion::Tree);
    EXPECT_EQ(map.regionOf(AddressMap::shadowBase), NvmRegion::Shadow);
    EXPECT_EQ(map.regionOf(AddressMap::wpqDumpBase), NvmRegion::WpqDump);
    EXPECT_EQ(map.regionOf(AddressMap::eccBase), NvmRegion::Ecc);
    EXPECT_EQ(map.regionOf(AddressMap::recoveryJournalAddr()),
              NvmRegion::RecoveryJournal);
}

TEST(NvmRegions, MacCoverageSplitsExactlyAtBlockEight)
{
    // Blocks 0..7 share MAC block 0; block 8 starts the next one (the
    // off-by-one a cascade must not cross).
    EXPECT_EQ(AddressMap::macBlockAddr(7 * blockSize),
              AddressMap::macBlockAddr(0));
    EXPECT_NE(AddressMap::macBlockAddr(8 * blockSize),
              AddressMap::macBlockAddr(0));
    EXPECT_EQ(AddressMap::firstDataOfMacBlock(
                  AddressMap::macBlockAddr(8 * blockSize)),
              8 * blockSize);

    AddressMap map;
    map.protectedBytes = Addr(256) * pageBytes;
    const auto covered =
        map.dataCoveredByMacBlock(AddressMap::macBlockAddr(0));
    ASSERT_EQ(covered.size(), std::size_t(macsPerBlock));
    EXPECT_EQ(covered.front(), 0u);
    EXPECT_EQ(covered.back(), 7 * blockSize);
}

TEST(NvmRegions, CoverageClampsAtTheProtectedBoundary)
{
    // A protected region ending mid-page / mid-MAC-block: coverage
    // enumeration must stop at protectedBytes, or a cascade would
    // quarantine blocks that were never protected.
    AddressMap map;
    map.protectedBytes = 5 * blockSize;
    EXPECT_EQ(
        map.dataCoveredByMacBlock(AddressMap::macBlockAddr(0)).size(),
        5u);
    EXPECT_EQ(map.dataCoveredByCounterBlock(
                     AddressMap::counterBlockAddr(0))
                  .size(),
              5u);
}

TEST_F(MetadataRepairTest, CounterStuckRebuiltByTrialMacAtRecovery)
{
    // Persist the counter frames with one crash+recover cycle, then
    // wear out page 0's frame while the power is off. The recovery
    // scan must disambiguate the stuck cell from tamper and
    // reconstruct the page by trial-MACing the covered ciphertexts
    // against their stored data MACs.
    Tick t = 0;
    for (unsigned i = 0; i < 4; ++i)
        t = writeThrough(i * blockSize, pattern(std::uint8_t(i)), t);
    eng.crash();
    ASSERT_TRUE(eng.recover().rootVerified);

    stickBit(nvm, AddressMap::counterBlockAddr(0), 9);
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_GE(rec.counterBlocksRepaired, 1u);
    EXPECT_EQ(rec.counterBlocksCascaded, 0u);
    EXPECT_GE(eng.counterBlocksRebuilt(), 1u);
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_EQ(nvm.quarantineCount(), 0u);

    Tick rt = 1'000'000'000;
    for (unsigned i = 0; i < 4; ++i) {
        const auto rd = eng.secureRead(i * blockSize, rt);
        EXPECT_EQ(rd.data, pattern(std::uint8_t(i))) << i;
        rt = rd.completeTick;
    }
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(MetadataRepairTest, TreeNodeStuckRepairedFromChildren)
{
    writeThrough(0x0, pattern(1), 0);
    eng.crash();
    ASSERT_TRUE(eng.recover().rootVerified);

    // Wear out the level-1 node on page 0's path, then force a cold
    // tree walk (the metadata caches died with the crash): the walk
    // must take the repair path — re-hash the node from its children
    // — instead of comparing known-garbage and alarming.
    stickBit(nvm, AddressMap::treeNodeAddr(1, 0), 3);
    eng.crash();
    eng.recover();
    const auto rd = eng.secureRead(0x0, 1'000'000'000);
    EXPECT_EQ(rd.data, pattern(1));
    EXPECT_GE(eng.treeNodesRepaired(), 1u);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(MetadataRepairTest, MacBlockStuckRebuiltOntoSpareRow)
{
    const Block pt = pattern(3);
    writeThrough(0x1000, pt, 0);
    stickBit(nvm, AddressMap::macBlockAddr(0x1000), 17);

    // Every lane is recomputable from ciphertext + current counter:
    // the worn frame is remapped and rewritten, nothing cascades.
    const auto rd = eng.secureRead(0x1000, 1'000'000);
    EXPECT_EQ(rd.data, pt);
    EXPECT_EQ(eng.macBlocksRebuilt(), 1u);
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_EQ(nvm.quarantineCount(), 0u);
    EXPECT_LT(nvm.sparesLeft(), NvmParams{}.spareBlocks);
}

TEST(MetadataRepairNoSpares, MacCascadeQuarantinesExactlyCoveredBlocks)
{
    NvmParams np;
    np.spareBlocks = 0;
    NvmDevice nvm(np);
    SecurityEngine eng(repairParams(), nvm);

    // Populate both sides of the MAC-block boundary: blocks 0..7 are
    // covered by MAC block 0, blocks 8..9 by its neighbour.
    Tick t = 0;
    for (unsigned i = 0; i < 10; ++i) {
        const auto r = eng.secureWrite(i * blockSize,
                                       pattern(std::uint8_t(i)), t);
        t = eng.writeCiphertext(i * blockSize, r.ciphertext,
                                r.doneTick);
    }
    stickBit(nvm, AddressMap::macBlockAddr(0), 40);

    eng.secureRead(0, t + 1'000'000);
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_EQ(eng.cascadedBlocks(), std::uint64_t(macsPerBlock));

    // The cascade covers exactly the lost frame's blocks: 0..7 are
    // quarantined, the neighbours past the boundary are not.
    for (unsigned i = 0; i < macsPerBlock; ++i)
        EXPECT_TRUE(nvm.isQuarantined(i * blockSize)) << i;
    for (unsigned i = macsPerBlock; i < 10; ++i)
        EXPECT_FALSE(nvm.isQuarantined(i * blockSize)) << i;
    EXPECT_TRUE(nvm.isQuarantined(AddressMap::macBlockAddr(0)));

    const auto &log = nvm.quarantineLog();
    ASSERT_EQ(log.count(0x0), 1u);
    EXPECT_EQ(log.at(0x0).cause,
              causeOf("mac_block", AddressMap::macBlockAddr(0)));
    EXPECT_TRUE(log.at(AddressMap::macBlockAddr(0)).cause.empty());

    // Blocks past the boundary are still served correctly.
    const auto rd = eng.secureRead(8 * blockSize, t + 2'000'000);
    EXPECT_EQ(rd.data, pattern(8));
    EXPECT_FALSE(eng.attackDetected());
}

TEST(MetadataRepairNoSpares, CounterBeyondSearchLimitCascadesWithProvenance)
{
    auto p = repairParams();
    p.counterSearchLimit = 4;
    NvmDevice nvm(NvmParams{});
    SecurityEngine eng(p, nvm);

    const Block hot = pattern(7);
    Tick t = 0;
    for (int i = 0; i < 6; ++i) { // counter of 0x0 ends at 6 > limit
        const auto r = eng.secureWrite(0x0, hot, t);
        t = eng.writeCiphertext(0x0, r.ciphertext, r.doneTick);
    }
    const Block other = pattern(9);
    {
        const auto r = eng.secureWrite(0x2000, other, t);
        t = eng.writeCiphertext(0x2000, r.ciphertext, r.doneTick);
    }
    eng.crash();
    ASSERT_TRUE(eng.recover().rootVerified);

    // Blank the shadow region (slot markers live in the second block
    // of each two-block slot) so the crash-consistency scheme cannot
    // supply the page either, then wear out the counter frame while
    // powered off: every repair source is now exhausted.
    for (Addr s = 0; s < 2048; ++s)
        nvm.writeFunctional(AddressMap::shadowSlotAddr(s), zeroBlock());
    stickBit(nvm, AddressMap::counterBlockAddr(0x0), 2);
    eng.crash();
    const auto rec = eng.recover();

    // The loss cascades to exactly the stored blocks the frame
    // covered — with provenance — and the boot re-anchors on the
    // surviving image instead of raising a false tamper alarm.
    EXPECT_EQ(rec.counterBlocksCascaded, 1u);
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_TRUE(rec.rootReanchored);
    EXPECT_GE(eng.rootReanchors(), 1u);
    EXPECT_FALSE(eng.attackDetected());
    EXPECT_TRUE(nvm.isQuarantined(0x0));
    EXPECT_FALSE(nvm.isQuarantined(0x2000));
    EXPECT_EQ(
        nvm.quarantineLog().at(0x0).cause,
        causeOf("counter_block", AddressMap::counterBlockAddr(0x0)));

    const auto rd = eng.secureRead(0x2000, 1'000'000'000);
    EXPECT_EQ(rd.data, other);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(MetadataRepairTest, WornShadowSlotsSkippedWithoutAlarm)
{
    // Dirty cached counters whose only persistent copy is the shadow
    // region; wear out every stored shadow block. Recovery must skip
    // the worn slots as media (never tamper) and reconcile the
    // counters through the MAC-pinned sweep.
    const Block pt = pattern(2);
    Tick t = writeThrough(0x1000, pattern(1), 0);
    writeThrough(0x1000, pt, t);
    eng.crash();

    const AddressMap map = repairParams().map;
    std::vector<Addr> shadow_blocks;
    for (const auto &kv : nvm.store().raw())
        if (map.regionOf(kv.first) == NvmRegion::Shadow)
            shadow_blocks.push_back(kv.first);
    ASSERT_FALSE(shadow_blocks.empty());
    for (const Addr a : shadow_blocks)
        stickBit(nvm, a, 7);

    const auto rec = eng.recover();
    EXPECT_GE(rec.shadowMediaSkipped, 1u);
    EXPECT_GE(eng.shadowSlotsSkipped(), 1u);
    EXPECT_FALSE(rec.shadowTamper);
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_FALSE(eng.attackDetected());
    const auto rd = eng.secureRead(0x1000, 1'000'000'000);
    EXPECT_EQ(rd.data, pt);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(MetadataRepairTest, ScrubHealsLatentMetadataFaultBeforeTheCrash)
{
    // A stuck cell on a MAC frame while the volatile truth still
    // exists: the scrub finds and repairs it, so the subsequent
    // crash+recovery sees a healthy frame instead of a fatal fault.
    writeThrough(0x1000, pattern(5), 0);
    stickBit(nvm, AddressMap::macBlockAddr(0x1000), 11);

    const auto rep = eng.scrubMetadata();
    EXPECT_GE(rep.blocksScanned, 1u);
    EXPECT_EQ(rep.faultsFound, 1u);
    EXPECT_EQ(rep.repaired, 1u);
    EXPECT_EQ(rep.cascaded, 0u);
    EXPECT_GE(eng.scrubRepairs(), 1u);
    EXPECT_FALSE(eng.attackDetected());

    eng.crash();
    EXPECT_TRUE(eng.recover().rootVerified);
    const auto rd = eng.secureRead(0x1000, 1'000'000'000);
    EXPECT_EQ(rd.data, pattern(5));
    EXPECT_FALSE(eng.attackDetected());
}

TEST(MetadataScrub, IntervalKnobRunsScrubAutomatically)
{
    auto p = repairParams();
    p.scrubIntervalWrites = 4;
    NvmDevice nvm(NvmParams{});
    SecurityEngine eng(p, nvm);
    Tick t = 0;
    for (unsigned i = 0; i < 8; ++i) {
        const auto r = eng.secureWrite(i * blockSize,
                                       pattern(std::uint8_t(i)), t);
        t = eng.writeCiphertext(i * blockSize, r.ciphertext,
                                r.doneTick);
    }
    EXPECT_EQ(eng.scrubPasses(), 2u);
}

TEST(MetadataRepairPlanted, BadCounterRepairBugTripsTheAlarm)
{
    // The torture harness's planted counter-repair bug: the rebuild
    // path adopts the faulted frame verbatim instead of
    // reconstructing from data MACs. The corrupted counter then
    // decrypts garbage whose MAC mismatches on a *clean* read —
    // exactly the alarm the --expect-bug meta-test hunts for.
    auto p = repairParams();
    p.plantCounterRepairBug = true;
    NvmDevice nvm(NvmParams{});
    SecurityEngine eng(p, nvm);
    {
        const auto r = eng.secureWrite(0x0, pattern(6), 0);
        eng.writeCiphertext(0x0, r.ciphertext, r.doneTick);
    }
    eng.crash();
    ASSERT_TRUE(eng.recover().rootVerified);

    stickBit(nvm, AddressMap::counterBlockAddr(0x0), 0);
    eng.crash();
    eng.recover();
    eng.secureRead(0x0, 1'000'000'000);
    EXPECT_TRUE(eng.attackDetected());
}

} // namespace
