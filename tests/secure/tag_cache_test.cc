/**
 * @file
 * Tag-only metadata cache tests.
 */

#include <gtest/gtest.h>

#include "secure/tag_cache.hh"

namespace
{

using namespace dolos;

// 4 sets x 2 ways.
TagCacheParams
tinyParams()
{
    return TagCacheParams{"tiny", 512, 2};
}

TEST(TagCache, MissThenHit)
{
    TagCache tc(tinyParams());
    EXPECT_FALSE(tc.lookup(0x0));
    tc.insert(0x0, false);
    EXPECT_TRUE(tc.lookup(0x0));
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
}

TEST(TagCache, InsertReportsDirtyVictimOnly)
{
    TagCache tc(tinyParams());
    tc.insert(0x000, true);  // set 0, dirty
    tc.insert(0x100, false); // set 0, clean
    // Third insert into set 0 evicts the LRU (0x000, dirty).
    const auto ev = tc.insert(0x200, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->addr, 0x000u);

    // Now 0x100 (clean) is LRU; evicting it reports nothing.
    const auto ev2 = tc.insert(0x300, false);
    EXPECT_FALSE(ev2.has_value());
}

TEST(TagCache, LookupRefreshesLru)
{
    TagCache tc(tinyParams());
    tc.insert(0x000, false);
    tc.insert(0x100, false);
    tc.lookup(0x000);        // refresh
    tc.insert(0x200, false); // evicts 0x100
    EXPECT_TRUE(tc.contains(0x000));
    EXPECT_FALSE(tc.contains(0x100));
}

TEST(TagCache, DirtyTrackingLifecycle)
{
    TagCache tc(tinyParams());
    tc.insert(0x0, false);
    EXPECT_FALSE(tc.isDirty(0x0));
    tc.markDirty(0x0);
    EXPECT_TRUE(tc.isDirty(0x0));
    tc.markClean(0x0);
    EXPECT_FALSE(tc.isDirty(0x0));
}

TEST(TagCache, ForEachDirtyVisitsExactlyDirtyEntries)
{
    TagCache tc(tinyParams());
    tc.insert(0x000, true);
    tc.insert(0x040, false);
    tc.insert(0x080, true);
    std::vector<Addr> dirty;
    tc.forEachDirty([&](Addr a) { dirty.push_back(a); });
    std::sort(dirty.begin(), dirty.end());
    EXPECT_EQ(dirty, (std::vector<Addr>{0x000, 0x080}));
}

TEST(TagCache, SlotOfIsStableAndInRange)
{
    TagCache tc(tinyParams());
    tc.insert(0x0, false);
    const auto slot = tc.slotOf(0x0);
    EXPECT_LT(slot, tc.numSlots());
    tc.lookup(0x0);
    EXPECT_EQ(tc.slotOf(0x0), slot);
}

TEST(TagCache, InvalidateAllEmpties)
{
    TagCache tc(tinyParams());
    tc.insert(0x0, true);
    tc.invalidateAll();
    EXPECT_FALSE(tc.contains(0x0));
    EXPECT_EQ(tc.numEntries(), 0u);
}

TEST(TagCacheDeath, DoubleInsertPanics)
{
    TagCache tc(tinyParams());
    tc.insert(0x0, false);
    EXPECT_DEATH(tc.insert(0x0, false), "double insert");
}

TEST(TagCache, SubBlockAddressesAlias)
{
    TagCache tc(tinyParams());
    tc.insert(0x40, false);
    EXPECT_TRUE(tc.lookup(0x7F));
}

} // namespace
