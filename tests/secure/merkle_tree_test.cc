/**
 * @file
 * Merkle tree tests: structure, updates, rebuild, tamper detection.
 */

#include <gtest/gtest.h>

#include "crypto/mac_engine.hh"
#include "secure/merkle_tree.hh"

namespace
{

using namespace dolos;

struct MerkleTreeTest : ::testing::Test
{
    std::unique_ptr<crypto::MacEngine> mac = crypto::makeMacEngine(
        crypto::MacKind::SipHash24, {1, 2, 3, 4, 5, 6, 7, 8});
};

TEST_F(MerkleTreeTest, GeometryForPowerOfEight)
{
    MerkleTree t(64, *mac);
    ASSERT_EQ(t.numLevels(), 3u);
    EXPECT_EQ(t.levelSize(0), 64u);
    EXPECT_EQ(t.levelSize(1), 8u);
    EXPECT_EQ(t.levelSize(2), 1u);
}

TEST_F(MerkleTreeTest, GeometryForRaggedLeafCount)
{
    MerkleTree t(100, *mac);
    ASSERT_EQ(t.numLevels(), 4u);
    EXPECT_EQ(t.levelSize(1), 13u);
    EXPECT_EQ(t.levelSize(2), 2u);
    EXPECT_EQ(t.levelSize(3), 1u);
}

TEST_F(MerkleTreeTest, SingleLeafTreeIsJustRoot)
{
    MerkleTree t(1, *mac);
    EXPECT_EQ(t.numLevels(), 1u);
    CounterPage p;
    p.major = 1;
    t.updateLeaf(0, p);
    EXPECT_EQ(t.root(), t.leafTagOf(p));
}

TEST_F(MerkleTreeTest, EmptyTreeUsesDefaults)
{
    MerkleTree t(64, *mac);
    EXPECT_EQ(t.numStoredNodes(), 0u);
    EXPECT_EQ(t.root(), t.defaultTag(2));
    EXPECT_EQ(t.nodeTag(0, 5), t.defaultTag(0));
}

TEST_F(MerkleTreeTest, UpdateLeafChangesRoot)
{
    MerkleTree t(64, *mac);
    const auto root0 = t.root();
    CounterPage p;
    p.minors[0] = 1;
    t.updateLeaf(3, p);
    EXPECT_NE(t.root(), root0);
}

TEST_F(MerkleTreeTest, UpdateOnlyAffectsOwnPath)
{
    MerkleTree t(64, *mac);
    CounterPage p;
    p.minors[0] = 1;
    t.updateLeaf(0, p); // path: leaf 0, node (1,0)
    EXPECT_NE(t.nodeTag(1, 0), t.defaultTag(1));
    EXPECT_EQ(t.nodeTag(1, 7), t.defaultTag(1)); // untouched sibling
}

TEST_F(MerkleTreeTest, SameContentSameRoot)
{
    MerkleTree a(64, *mac), b(64, *mac);
    CounterPage p;
    p.major = 5;
    a.updateLeaf(10, p);
    b.updateLeaf(10, p);
    EXPECT_EQ(a.root(), b.root());
}

TEST_F(MerkleTreeTest, DifferentLeafPositionDifferentRoot)
{
    // Relocation: the same page content installed at another leaf
    // must produce a different root.
    MerkleTree a(64, *mac), b(64, *mac);
    CounterPage p;
    p.major = 5;
    a.updateLeaf(10, p);
    b.updateLeaf(11, p);
    EXPECT_NE(a.root(), b.root());
}

TEST_F(MerkleTreeTest, RebuildMatchesIncrementalUpdates)
{
    MerkleTree inc(512, *mac), reb(512, *mac);
    std::unordered_map<Addr, CounterPage> pages;
    for (Addr i = 0; i < 20; ++i) {
        CounterPage p;
        p.major = i;
        p.minors[unsigned(i) % 64] = std::uint8_t(i % 128);
        inc.updateLeaf(i * 17 % 512, p);
        pages[i * 17 % 512] = p;
    }
    reb.rebuild(pages);
    EXPECT_EQ(inc.root(), reb.root());
}

TEST_F(MerkleTreeTest, RebuildAfterClearRestoresRoot)
{
    MerkleTree t(512, *mac);
    std::unordered_map<Addr, CounterPage> pages;
    for (Addr i = 0; i < 10; ++i) {
        CounterPage p;
        p.minors[0] = std::uint8_t(i + 1);
        t.updateLeaf(i, p);
        pages[i] = p;
    }
    const auto root = t.root();
    t.clear();
    t.rebuild(pages);
    EXPECT_EQ(t.root(), root);
}

TEST_F(MerkleTreeTest, TamperedPageChangesRootOnRebuild)
{
    MerkleTree t(512, *mac);
    std::unordered_map<Addr, CounterPage> pages;
    CounterPage p;
    p.minors[7] = 3;
    t.updateLeaf(100, p);
    pages[100] = p;
    pages[100].minors[7] = 4; // attacker rolls the counter forward
    MerkleTree t2(512, *mac);
    t2.rebuild(pages);
    EXPECT_NE(t.root(), t2.root());
}

TEST_F(MerkleTreeTest, LevelTagPreventsHeightConfusion)
{
    // A node's tag at level 1 over default children differs from the
    // level-2 tag over default children: level is bound into the MAC.
    MerkleTree t(4096, *mac); // levels: 4096, 512, 64, 8, 1
    EXPECT_NE(t.defaultTag(1), t.defaultTag(2));
}

TEST_F(MerkleTreeTest, MacKeyBindsTree)
{
    auto mac2 = crypto::makeMacEngine(crypto::MacKind::SipHash24,
                                      {9, 9, 9, 9});
    MerkleTree a(64, *mac), b(64, *mac2);
    EXPECT_NE(a.root(), b.root());
}

TEST_F(MerkleTreeTest, DeathOnOutOfRangeLeaf)
{
    MerkleTree t(64, *mac);
    CounterPage p;
    EXPECT_DEATH(t.updateLeaf(64, p), "out of range");
}

} // namespace
