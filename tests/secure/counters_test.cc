/**
 * @file
 * Split-counter tests: packing, increment, overflow semantics.
 */

#include <gtest/gtest.h>

#include "secure/counters.hh"
#include "sim/random.hh"

namespace
{

using namespace dolos;

TEST(CounterPage, PackUnpackRoundTrips)
{
    Random rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        CounterPage p;
        p.major = rng.next();
        for (auto &m : p.minors)
            m = std::uint8_t(rng.below(128));
        EXPECT_EQ(CounterPage::unpack(p.pack()), p);
    }
}

TEST(CounterPage, PackedFitsExactlyOneBlock)
{
    // 8B major + 64 x 7-bit minors = 64 bytes exactly; the last
    // minor must land fully inside the block.
    CounterPage p;
    p.major = ~0ULL;
    p.minors.fill(127);
    const Block b = p.pack();
    EXPECT_EQ(CounterPage::unpack(b), p);
}

TEST(CounterPage, CounterOfCombinesMajorAndMinor)
{
    CounterPage p;
    p.major = 3;
    p.minors[10] = 5;
    EXPECT_EQ(p.counterOf(10), 3u * 128 + 5);
    EXPECT_EQ(p.counterOf(0), 3u * 128);
}

TEST(CounterStore, FreshCountersAreZero)
{
    CounterStore cs;
    EXPECT_EQ(cs.counterOf(0x1000), 0u);
}

TEST(CounterStore, IncrementBumpsOnlyThatBlock)
{
    CounterStore cs;
    const auto r = cs.increment(0x40); // block 1 of page 0
    EXPECT_EQ(r.newCounter, 1u);
    EXPECT_FALSE(r.pageOverflow);
    EXPECT_EQ(cs.counterOf(0x40), 1u);
    EXPECT_EQ(cs.counterOf(0x0), 0u);
    EXPECT_EQ(cs.counterOf(0x40 + pageBytes), 0u); // other page
}

TEST(CounterStore, MinorOverflowBumpsMajorAndResetsMinors)
{
    CounterStore cs;
    cs.increment(0x80); // some other block gains a count
    for (std::uint64_t i = 0; i < minorCounterLimit - 1; ++i)
        cs.increment(0x0);
    EXPECT_EQ(cs.counterOf(0x0), minorCounterLimit - 1);

    const auto r = cs.increment(0x0); // 128th bump: overflow
    EXPECT_TRUE(r.pageOverflow);
    EXPECT_EQ(r.newCounter, minorCounterLimit); // major 1, minor 0
    // The sibling block's minor was reset too.
    EXPECT_EQ(cs.counterOf(0x80), minorCounterLimit);
}

TEST(CounterStore, CountersMonotonicallyIncreaseAcrossOverflow)
{
    CounterStore cs;
    std::uint64_t prev = 0;
    for (int i = 0; i < 400; ++i) {
        const auto r = cs.increment(0x0);
        EXPECT_GT(r.newCounter, prev);
        prev = r.newCounter;
    }
}

TEST(CounterStore, RestorePageInstallsImage)
{
    CounterStore cs;
    CounterPage p;
    p.major = 7;
    p.minors[3] = 9;
    cs.restorePage(2, p);
    EXPECT_EQ(cs.counterOf(2 * pageBytes + 3 * blockSize),
              7u * 128 + 9);
}

TEST(CounterStore, ClearDropsEverything)
{
    CounterStore cs;
    cs.increment(0x0);
    cs.clear();
    EXPECT_EQ(cs.counterOf(0x0), 0u);
    EXPECT_TRUE(cs.all().empty());
}

} // namespace
