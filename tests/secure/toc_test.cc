/**
 * @file
 * Tree of Counters tests: lazy semantics, eviction propagation,
 * verification, tamper and replay detection.
 */

#include <gtest/gtest.h>

#include "crypto/mac_engine.hh"
#include "secure/toc.hh"

namespace
{

using namespace dolos;

struct TocTest : ::testing::Test
{
    std::unique_ptr<crypto::MacEngine> mac = crypto::makeMacEngine(
        crypto::MacKind::SipHash24, {3, 1, 4, 1, 5});
    TreeOfCounters toc{64, *mac}; // 64 leaves, 3 levels
};

TEST_F(TocTest, WriteBumpsLeafVersionLazily)
{
    toc.writeLeaf(5);
    EXPECT_EQ(toc.versionOf(0, 5), 1u);
    EXPECT_EQ(toc.versionOf(0, 4), 0u);
    // Lazy: the parent's own version (held at the root) unchanged.
    EXPECT_EQ(toc.versionOf(1, 0), 0u);
    EXPECT_EQ(toc.rootVersion(), 0u);
    EXPECT_EQ(toc.numDirty(), 1u);
}

TEST_F(TocTest, EvictionPropagatesOneLevel)
{
    toc.writeLeaf(5);
    toc.evict(1, 0); // persist node (1,0)
    EXPECT_EQ(toc.versionOf(1, 0), 1u); // bumped in root
    EXPECT_EQ(toc.rootVersion(), 0u);   // root node itself not evicted
    EXPECT_TRUE(toc.verifyStored(1, 0));
    // The root node (level 2) is now dirty instead.
    EXPECT_EQ(toc.numDirty(), 1u);
}

TEST_F(TocTest, FlushAllDrainsDirtySet)
{
    toc.writeLeaf(0);
    toc.writeLeaf(9);
    toc.writeLeaf(63);
    toc.flushAll();
    EXPECT_EQ(toc.numDirty(), 0u);
    EXPECT_GE(toc.rootVersion(), 1u);
    EXPECT_TRUE(toc.verifyStored(1, 0));
    EXPECT_TRUE(toc.verifyStored(1, 1));
    EXPECT_TRUE(toc.verifyStored(1, 7));
    EXPECT_TRUE(toc.verifyStored(2, 0));
}

TEST_F(TocTest, TamperedPersistedNodeFailsVerification)
{
    toc.writeLeaf(3);
    toc.flushAll();
    ASSERT_TRUE(toc.verifyStored(1, 0));
    toc.tamperStored(1, 0);
    EXPECT_FALSE(toc.verifyStored(1, 0));
}

TEST_F(TocTest, ReplayedNodeFailsVerification)
{
    toc.writeLeaf(3);
    toc.flushAll();
    const auto old_snapshot = toc.snapshotStored(1, 0);

    // Move forward: another write and flush bumps (1,0)'s version.
    toc.writeLeaf(3);
    toc.flushAll();
    ASSERT_TRUE(toc.verifyStored(1, 0));

    // Replay the old consistent (node, MAC) pair: the node's own
    // version in its parent has advanced, so the MAC no longer binds.
    toc.replayStored(1, 0, old_snapshot);
    EXPECT_FALSE(toc.verifyStored(1, 0));
}

TEST_F(TocTest, ShadowRootTracksDirtyState)
{
    const auto empty = toc.shadowRoot();
    toc.writeLeaf(1);
    const auto one = toc.shadowRoot();
    EXPECT_NE(empty, one);
    toc.writeLeaf(1);
    EXPECT_NE(toc.shadowRoot(), one);
    // Draining the cache returns the shadow root to the empty value.
    toc.flushAll();
    EXPECT_EQ(toc.shadowRoot(), empty);
}

TEST_F(TocTest, SingleLeafDegenerateTree)
{
    TreeOfCounters tiny(1, *mac);
    EXPECT_EQ(tiny.numLevels(), 1u);
    tiny.writeLeaf(0);
    EXPECT_EQ(tiny.rootVersion(), 1u);
}

TEST_F(TocTest, EvictNonDirtyPanics)
{
    EXPECT_DEATH(toc.evict(1, 0), "non-dirty");
}

TEST_F(TocTest, VersionsAccumulateAcrossManyWrites)
{
    for (int i = 0; i < 10; ++i)
        toc.writeLeaf(7);
    EXPECT_EQ(toc.versionOf(0, 7), 10u);
}

} // namespace
