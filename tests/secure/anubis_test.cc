/**
 * @file
 * Anubis shadow-table tests.
 */

#include <gtest/gtest.h>

#include "crypto/mac_engine.hh"
#include "secure/anubis.hh"

namespace
{

using namespace dolos;

struct AnubisTest : ::testing::Test
{
    NvmDevice nvm{NvmParams{}};
    std::unique_ptr<crypto::MacEngine> mac = crypto::makeMacEngine(
        crypto::MacKind::SipHash24, {7, 7, 7, 7});
    AnubisShadow shadow{16, nvm, *mac};

    CounterPage
    page(std::uint64_t major, std::uint8_t minor0) const
    {
        CounterPage p;
        p.major = major;
        p.minors[0] = minor0;
        return p;
    }
};

TEST_F(AnubisTest, EmptyScanFindsNothing)
{
    const auto scan = shadow.scan();
    EXPECT_TRUE(scan.entries.empty());
    EXPECT_FALSE(scan.tamperDetected);
}

TEST_F(AnubisTest, RecordedEntryIsRecovered)
{
    shadow.recordUpdate(3, 42, page(1, 5), 100, 0);
    const auto scan = shadow.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_EQ(scan.entries[0].pageIdx, 42u);
    EXPECT_EQ(scan.entries[0].seq, 100u);
    EXPECT_EQ(scan.entries[0].page, page(1, 5));
    EXPECT_FALSE(scan.tamperDetected);
}

TEST_F(AnubisTest, SlotOverwriteKeepsLatest)
{
    shadow.recordUpdate(3, 42, page(1, 5), 100, 0);
    shadow.recordUpdate(3, 42, page(1, 6), 101, 10);
    const auto scan = shadow.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_EQ(scan.entries[0].page, page(1, 6));
}

TEST_F(AnubisTest, IndependentSlotsCoexist)
{
    shadow.recordUpdate(0, 1, page(1, 1), 1, 0);
    shadow.recordUpdate(15, 2, page(2, 2), 2, 0);
    const auto scan = shadow.scan();
    EXPECT_EQ(scan.entries.size(), 2u);
}

TEST_F(AnubisTest, TamperedContentDetected)
{
    shadow.recordUpdate(5, 9, page(3, 3), 7, 0);
    // Attacker flips a bit in the packed page stored in NVM.
    const Addr addr = AddressMap::shadowSlotAddr(5 * 2);
    Block b = nvm.readFunctional(addr);
    b[0] ^= 1;
    nvm.writeFunctional(addr, b);

    const auto scan = shadow.scan();
    EXPECT_TRUE(scan.tamperDetected);
    EXPECT_TRUE(scan.entries.empty());
}

TEST_F(AnubisTest, TamperedMetadataDetected)
{
    shadow.recordUpdate(5, 9, page(3, 3), 7, 0);
    const Addr addr = AddressMap::shadowSlotAddr(5 * 2) + blockSize;
    Block b = nvm.readFunctional(addr);
    b[8] ^= 0x10; // page index field
    nvm.writeFunctional(addr, b);

    const auto scan = shadow.scan();
    EXPECT_TRUE(scan.tamperDetected);
}

TEST_F(AnubisTest, ReplayedOldEntryIsInternallyConsistent)
{
    // A replayed old (content, MAC) pair passes the slot MAC -- the
    // defense against replay is the eagerly-persisted tree root,
    // checked at the engine level, not here.
    shadow.recordUpdate(5, 9, page(3, 3), 7, 0);
    const Addr a0 = AddressMap::shadowSlotAddr(5 * 2);
    const Block old0 = nvm.readFunctional(a0);
    const Block old1 = nvm.readFunctional(a0 + blockSize);

    shadow.recordUpdate(5, 9, page(3, 4), 8, 10);
    nvm.writeFunctional(a0, old0);
    nvm.writeFunctional(a0 + blockSize, old1);

    const auto scan = shadow.scan();
    ASSERT_EQ(scan.entries.size(), 1u);
    EXPECT_FALSE(scan.tamperDetected);
    EXPECT_EQ(scan.entries[0].page, page(3, 3)); // the stale image
}

TEST_F(AnubisTest, WritesAreCounted)
{
    shadow.recordUpdate(0, 1, page(1, 1), 1, 0);
    shadow.recordUpdate(1, 2, page(1, 1), 2, 0);
    EXPECT_EQ(shadow.writes(), 2u);
}

TEST_F(AnubisTest, DeathOnBadSlot)
{
    EXPECT_DEATH(shadow.recordUpdate(16, 1, page(1, 1), 1, 0),
                 "out of range");
}

} // namespace
