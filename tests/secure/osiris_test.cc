/**
 * @file
 * Osiris counter-recovery tests: ECC discrimination, stop-loss
 * probing, recovery equivalence with Anubis, tamper detection.
 */

#include <gtest/gtest.h>

#include "secure/osiris.hh"
#include "secure/security_engine.hh"
#include "sim/random.hh"

namespace
{

using namespace dolos;

SecureParams
osirisParams()
{
    SecureParams p;
    p.functionalLeaves = 256;
    p.map.protectedBytes = Addr(256) * pageBytes;
    p.counterCache = {"counterCache", 4 * 1024, 4};
    p.mtCache = {"mtCache", 4 * 1024, 8};
    p.crashScheme = CrashScheme::Osiris;
    p.osirisStopLoss = 4;
    for (int i = 0; i < 16; ++i) {
        p.dataKey[i] = std::uint8_t(i + 1);
        p.macKey[i] = std::uint8_t(0x80 + i);
    }
    return p;
}

Block
pattern(std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed ^ (i * 5));
    return b;
}

TEST(OsirisEcc, DeterministicAndContentSensitive)
{
    const Block a = pattern(1);
    Block b = a;
    EXPECT_EQ(OsirisEcc::compute(a), OsirisEcc::compute(b));
    b[13] ^= 0x20;
    EXPECT_NE(OsirisEcc::compute(a), OsirisEcc::compute(b));
}

TEST(OsirisEcc, CheckMatchesCompute)
{
    const Block a = pattern(2);
    EXPECT_TRUE(OsirisEcc::check(a, OsirisEcc::compute(a)));
    EXPECT_FALSE(OsirisEcc::check(a, OsirisEcc::compute(a) ^ 1));
}

struct OsirisEngineTest : ::testing::Test
{
    NvmDevice nvm{NvmParams{}};
    SecurityEngine eng{osirisParams(), nvm};

    Tick
    writeThrough(Addr addr, const Block &pt, Tick now)
    {
        const auto r = eng.secureWrite(addr, pt, now);
        return eng.writeCiphertext(addr, r.ciphertext, r.doneTick);
    }
};

TEST_F(OsirisEngineTest, RecoveryWithCleanCountersProbesAtZero)
{
    // Four writes to the same block: counter = 4 = stop-loss, so the
    // counter region is up to date and every probe hits at k = 0.
    Tick t = 0;
    Block pt{};
    for (int i = 0; i < 4; ++i) {
        pt = pattern(std::uint8_t(i));
        t = writeThrough(0x1000, pt, t);
    }
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_EQ(rec.osirisProbed, 1u);
    EXPECT_EQ(rec.osirisAdvanced, 0u);
    EXPECT_EQ(rec.osirisUnrecovered, 0u);
    EXPECT_EQ(eng.secureRead(0x1000, 10'000'000).data, pt);
}

TEST_F(OsirisEngineTest, RecoveryAdvancesStaleCounters)
{
    // Six writes: last write-through at counter 4, true counter 6 —
    // recovery must probe forward by 2.
    Tick t = 0;
    Block pt{};
    for (int i = 0; i < 6; ++i) {
        pt = pattern(std::uint8_t(10 + i));
        t = writeThrough(0x2000, pt, t);
    }
    EXPECT_EQ(eng.counterOf(0x2000), 6u);
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_EQ(rec.osirisAdvanced, 1u);
    EXPECT_EQ(rec.osirisUnrecovered, 0u);
    EXPECT_EQ(eng.counterOf(0x2000), 6u);
    EXPECT_EQ(eng.secureRead(0x2000, 10'000'000).data, pt);
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(OsirisEngineTest, RecoveryHandlesManyBlocksMixedPhases)
{
    Random rng(31);
    std::vector<std::pair<Addr, Block>> latest;
    Tick t = 0;
    for (int i = 0; i < 120; ++i) {
        const Addr addr = blockAlign(rng.below(64 * pageBytes));
        const Block pt = pattern(std::uint8_t(i));
        t = writeThrough(addr, pt, t);
        bool found = false;
        for (auto &[a, b] : latest)
            if (a == addr) {
                b = pt;
                found = true;
            }
        if (!found)
            latest.emplace_back(addr, pt);
    }
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_EQ(rec.osirisUnrecovered, 0u);
    EXPECT_EQ(rec.osirisProbed, latest.size());
    Tick rt = 1'000'000'000;
    for (const auto &[addr, pt] : latest) {
        const auto rd = eng.secureRead(addr, rt);
        EXPECT_EQ(rd.data, pt) << std::hex << addr;
        rt = rd.completeTick;
    }
    EXPECT_FALSE(eng.attackDetected());
}

TEST_F(OsirisEngineTest, SurvivesMinorCounterOverflow)
{
    // 130 writes overflow the 7-bit minor; the forced write-through
    // keeps the stop-loss invariant despite the counter jump.
    Tick t = 0;
    Block pt{};
    for (int i = 0; i < 130; ++i) {
        pt = pattern(std::uint8_t(i));
        t = writeThrough(0x3000, pt, t);
    }
    eng.crash();
    const auto rec = eng.recover();
    EXPECT_TRUE(rec.rootVerified);
    EXPECT_EQ(rec.osirisUnrecovered, 0u);
    EXPECT_EQ(eng.secureRead(0x3000, 100'000'000).data, pt);
}

TEST_F(OsirisEngineTest, TamperedCiphertextFailsEveryProbe)
{
    writeThrough(0x1000, pattern(9), 0);
    eng.crash();
    Block ct = nvm.readFunctional(0x1000);
    ct[0] ^= 0xFF;
    nvm.writeFunctional(0x1000, ct);
    const auto rec = eng.recover();
    EXPECT_GE(rec.osirisUnrecovered, 1u);
    EXPECT_TRUE(eng.attackDetected());
}

TEST_F(OsirisEngineTest, NoShadowWritesInOsirisMode)
{
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        t = writeThrough(0x1000 + Addr(i) * 64, pattern(1), t);
    // The shadow region must remain untouched.
    EXPECT_EQ(nvm.readFunctional(AddressMap::shadowSlotAddr(0)),
              zeroBlock());
}

TEST_F(OsirisEngineTest, WriteThroughTrafficMatchesStopLoss)
{
    // 8 writes to one block with K=4 => exactly 2 counter-region
    // write-throughs (at counters 4 and 8).
    const auto writes_before = nvm.writes();
    Tick t = 0;
    for (int i = 0; i < 8; ++i)
        t = writeThrough(0x1000, pattern(std::uint8_t(i)), t);
    // Total timed NVM writes: 8 data + 2 counter write-throughs.
    EXPECT_EQ(nvm.writes() - writes_before, 10u);
}

} // namespace
