/**
 * @file
 * Extending the library with a custom persistent workload: a
 * crash-consistent persistent FIFO queue built on the public API
 * (PmemEnv + undo-log transactions), run on every controller mode
 * and verified after a mid-run power failure.
 *
 *   $ ./build/examples/custom_workload
 */

#include <cstdio>
#include <deque>

#include "workloads/runner.hh"

using namespace dolos;
using namespace dolos::workloads;

namespace
{

/**
 * Persistent bounded FIFO. Layout:
 *   header : { head(8) tail(8) }   (ring indices)
 *   ring   : capacity x { value(8) }
 */
class PersistentQueueWorkload : public Workload
{
  public:
    explicit PersistentQueueWorkload(const WorkloadParams &p)
        : Workload(p)
    {
        rng = Random(p.seed);
    }

    const char *name() const override { return "pqueue"; }

    void
    setup(PmemEnv &env) override
    {
        headerAddr = env.alloc(16, 8);
        ringAddr = env.alloc(capacity * 8, 64);
        env.write<std::uint64_t>(headerAddr, 0);
        env.write<std::uint64_t>(headerAddr + 8, 0);
        env.flush(headerAddr, 16);
        env.fence();
        env.setRootPtr(0, headerAddr);
        env.setRootPtr(1, ringAddr);
    }

    void
    transaction(PmemEnv &env, std::uint64_t idx) override
    {
        // Alternate enqueue-heavy and dequeue phases.
        const bool enqueue = shadow.size() < capacity / 2 ||
                             rng.chance(0.6);
        TxContext tx(env);
        const auto head = env.read<std::uint64_t>(headerAddr);
        const auto tail = env.read<std::uint64_t>(headerAddr + 8);
        if (enqueue && tail - head < capacity) {
            const std::uint64_t value = idx * 1000 + 7;
            pendingOp = 1;
            pendingValue = value;
            tx.write<std::uint64_t>(
                ringAddr + (tail % capacity) * 8, value);
            tx.write<std::uint64_t>(headerAddr + 8, tail + 1);
            tx.commit();
            shadow.push_back(value);
        } else if (tail > head) {
            pendingOp = 2;
            tx.write<std::uint64_t>(headerAddr, head + 1);
            tx.commit();
            shadow.pop_front();
        } else {
            tx.commit(); // empty queue, empty transaction
        }
        pendingOp = 0;
        env.core().compute(params.thinkTime);
    }

    bool
    verify(PmemEnv &env, std::string *why) override
    {
        headerAddr = env.rootPtr(0);
        ringAddr = env.rootPtr(1);
        // An interrupted transaction may be rolled back (matching
        // the shadow exactly) or — if the crash hit precisely at the
        // commit point — durably applied but not yet recorded.
        auto matches = [&](const std::deque<std::uint64_t> &model) {
            const auto head = env.read<std::uint64_t>(headerAddr);
            const auto tail = env.read<std::uint64_t>(headerAddr + 8);
            if (tail - head != model.size())
                return false;
            for (std::uint64_t i = head; i < tail; ++i) {
                if (env.read<std::uint64_t>(
                        ringAddr + (i % capacity) * 8) !=
                    model[std::size_t(i - head)])
                    return false;
            }
            return true;
        };
        if (matches(shadow))
            return true;
        if (pendingOp != 0) {
            std::deque<std::uint64_t> applied = shadow;
            if (pendingOp == 1)
                applied.push_back(pendingValue);
            else if (!applied.empty())
                applied.pop_front();
            if (matches(applied))
                return true;
        }
        if (why)
            *why = "queue does not match committed state";
        return false;
    }

  private:
    static constexpr std::uint64_t capacity = 64;
    Addr headerAddr = 0;
    Addr ringAddr = 0;
    std::deque<std::uint64_t> shadow; ///< committed ground truth
    int pendingOp = 0;                ///< 0 none, 1 enqueue, 2 dequeue
    std::uint64_t pendingValue = 0;
};

} // namespace

int
main()
{
    WorkloadParams params;
    params.thinkTime = 5000;
    params.seed = 3;

    for (const auto mode : {SecurityMode::NonSecureIdeal,
                            SecurityMode::PreWpqSecure,
                            SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosPostWpq}) {
        auto cfg = SystemConfig::paperDefault();
        cfg.mode = mode;
        System sys(cfg);
        PersistentQueueWorkload wl(params);
        // Crash mid-run, recover, verify the committed prefix.
        const auto res = runWorkload(sys, wl, 200, CrashPlan{1500});
        std::printf("%-20s : %llu tx committed, crash %s, %s\n",
                    securityModeName(mode),
                    (unsigned long long)res.transactions,
                    res.crashed ? "injected" : "not reached",
                    res.verified ? "verified" : "CORRUPT");
        if (!res.verified) {
            std::fprintf(stderr, "  %s\n", res.verifyDiagnostic.c_str());
            return 1;
        }
    }
    return 0;
}
