/**
 * @file
 * Threat-model demonstration: the four attack classes of §4.1
 * mounted against the NVM image of a running Dolos machine, each
 * genuinely detected by the real cryptographic machinery (no modeled
 * "detection flags" — the MACs and tree hashes are actually
 * computed and actually fail).
 *
 *   1. spoofing   — overwrite a ciphertext block with garbage
 *   2. splicing   — relocate one block's (ciphertext, MAC) to
 *                   another address
 *   3. replay     — roll a block (and its MAC) back to an old value
 *   4. dump tamper— corrupt the ADR-flushed WPQ image before reboot
 *
 *   $ ./build/examples/attack_detection
 */

#include <cstdio>
#include <cstring>

#include "dolos/system.hh"

using namespace dolos;

namespace
{

/** Write + flush + fence one marker block through the core. */
void
persistMarker(System &sys, Addr addr, std::uint8_t seed)
{
    Block b;
    for (unsigned i = 0; i < blockSize; ++i)
        b[i] = std::uint8_t(seed + i);
    sys.core().store(addr, b.data(), blockSize);
    sys.core().clwb(addr);
    sys.core().sfence();
}

bool
expectDetection(const char *name, System &sys,
                std::uint64_t attacks_before)
{
    const bool detected = sys.engine().attacksDetected() > attacks_before;
    std::printf("  %-34s : %s\n", name,
                detected ? "DETECTED" : "** MISSED **");
    return detected;
}

} // namespace

int
main()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    System sys(cfg);
    auto &nvm = sys.nvmDevice();
    bool all_detected = true;

    std::printf("mounting §4.1 attacks against the NVM image:\n");

    // Prepare two victim blocks and force them out to NVM.
    persistMarker(sys, 0x1000, 0x10);
    persistMarker(sys, 0x2000, 0x20);
    sys.controller().drainTo(sys.core().now() + 1'000'000);
    sys.core().compute(1'000'000);

    // --- 1. Spoofing: flip bits in the ciphertext. ---
    {
        const auto before = sys.engine().attacksDetected();
        Block ct = nvm.readFunctional(0x1000);
        ct[5] ^= 0xFF;
        nvm.writeFunctional(0x1000, ct);
        Block out;
        sys.core().compute(10'000'000); // evict from caches? no -- force:
        sys.hierarchy().invalidateAll();
        sys.core().load(0x1000, out.data(), blockSize);
        all_detected &= expectDetection("spoofing (ciphertext bit-flip)",
                                        sys, before);
        // Repair so later stages start clean.
        ct[5] ^= 0xFF;
        nvm.writeFunctional(0x1000, ct);
    }

    // --- 2. Splicing: relocate block A's data+MAC over block B. ---
    {
        const auto before = sys.engine().attacksDetected();
        nvm.writeFunctional(0x2000, nvm.readFunctional(0x1000));
        const Addr mac_a = AddressMap::macBlockAddr(0x1000);
        const Addr mac_b = AddressMap::macBlockAddr(0x2000);
        Block mb = nvm.readFunctional(mac_b);
        const Block ma = nvm.readFunctional(mac_a);
        std::memcpy(mb.data() + AddressMap::macOffsetInBlock(0x2000),
                    ma.data() + AddressMap::macOffsetInBlock(0x1000),
                    8);
        nvm.writeFunctional(mac_b, mb);
        sys.hierarchy().invalidateAll();
        Block out;
        sys.core().load(0x2000, out.data(), blockSize);
        all_detected &= expectDetection("splicing (block relocation)",
                                        sys, before);
    }

    // --- 3. Replay: roll a block back to a stale (data, MAC). ---
    {
        const Block old_ct = nvm.readFunctional(0x1000);
        const Block old_mac =
            nvm.readFunctional(AddressMap::macBlockAddr(0x1000));
        persistMarker(sys, 0x1000, 0x30); // newer version
        sys.controller().drainTo(sys.core().now() + 1'000'000);
        sys.core().compute(1'000'000);

        const auto before = sys.engine().attacksDetected();
        nvm.writeFunctional(0x1000, old_ct);
        nvm.writeFunctional(AddressMap::macBlockAddr(0x1000), old_mac);
        sys.hierarchy().invalidateAll();
        Block out;
        sys.core().load(0x1000, out.data(), blockSize);
        all_detected &= expectDetection("replay (stale data+MAC)", sys,
                                        before);
    }

    // --- 4. Tampering with the ADR-flushed WPQ dump. ---
    {
        persistMarker(sys, 0x3000, 0x40); // sits in the WPQ
        sys.crash();
        const Addr entry0 = AddressMap::wpqDumpAddr(1);
        Block dumped = nvm.readFunctional(entry0);
        dumped[0] ^= 0x01;
        nvm.writeFunctional(entry0, dumped);
        const auto rec = sys.recover();
        std::printf("  %-34s : %s\n", "WPQ dump tamper across crash",
                    !rec.misuVerified ? "DETECTED" : "** MISSED **");
        all_detected &= !rec.misuVerified;
    }

    std::printf("%s\n", all_detected ? "all attacks detected"
                                     : "SOME ATTACKS MISSED");
    return all_detected ? 0 : 1;
}
