/**
 * @file
 * Crash-recovery walkthrough: a power failure strikes a B-tree
 * mid-transaction. The ADR circuitry flushes the Mi-SU-protected WPQ
 * within the standard energy budget; on reboot the dump is
 * authenticated against the persistent counter register, decrypted,
 * drained through the Ma-SU, the security metadata is rebuilt and
 * checked against the on-chip root, and the interrupted transaction
 * is rolled back by the undo log — leaving the tree exactly at the
 * last committed state.
 *
 *   $ ./build/examples/crash_recovery
 */

#include <cstdio>

#include "workloads/runner.hh"

using namespace dolos;
using namespace dolos::workloads;

int
main()
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = SecurityMode::DolosPartialWpq;
    System sys(cfg);

    WorkloadParams params;
    params.txSize = 512;
    params.numKeys = 128;
    params.thinkTime = 20000;
    auto workload = makeWorkload("btree", params);

    // Power fails ~2600 environment operations into the run — in the
    // middle of a transaction's writes.
    const auto res = runWorkload(sys, *workload, 100, CrashPlan{2600});

    std::printf("committed transactions before the crash : %llu\n",
                (unsigned long long)res.transactions);
    std::printf("crash injected                           : %s\n",
                res.crashed ? "yes" : "no");
    std::printf("recovered structure verified             : %s\n",
                res.verified ? "CONSISTENT" : "CORRUPT");
    if (!res.verified) {
        std::fprintf(stderr, "  diagnostic: %s\n",
                     res.verifyDiagnostic.c_str());
        return 1;
    }

    // Continue using the recovered machine: run more transactions
    // against the same persistent structure (no fresh setup).
    const auto res2 =
        runWorkload(sys, *workload, 50, std::nullopt, false);
    std::printf("post-recovery transactions               : %llu "
                "(verified: %s)\n",
                (unsigned long long)res2.transactions,
                res2.verified ? "yes" : "no");
    std::printf("integrity violations detected            : %llu\n",
                (unsigned long long)sys.engine().attacksDetected());
    return res2.verified ? 0 : 1;
}
