/**
 * @file
 * Quickstart: build two machines (the secure-NVM baseline and Dolos
 * with the Partial-WPQ Mi-SU), run the same persistent hashmap
 * workload on both, and compare.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "workloads/runner.hh"

using namespace dolos;

int
main()
{
    const std::uint64_t transactions = 500;

    workloads::WorkloadParams params;
    params.txSize = 1024; // bytes persisted per transaction
    params.numKeys = 512;
    params.thinkTime = 60000; // modeled compute per transaction

    double cycles_per_tx[2] = {0, 0};
    const SecurityMode modes[2] = {SecurityMode::PreWpqSecure,
                                   SecurityMode::DolosPartialWpq};

    for (int i = 0; i < 2; ++i) {
        // Table 1 configuration; only the controller mode differs.
        auto cfg = SystemConfig::paperDefault();
        cfg.mode = modes[i];
        System sys(cfg);

        auto workload = workloads::makeWorkload("hashmap", params);
        const auto res =
            workloads::runWorkload(sys, *workload, transactions);

        if (!res.verified) {
            std::fprintf(stderr, "verification failed: %s\n",
                         res.verifyDiagnostic.c_str());
            return 1;
        }
        cycles_per_tx[i] = res.cyclesPerTx();
        std::printf("%-18s: %8.0f cycles/tx  CPI %.2f  "
                    "retries/KWR %.1f  WPQ-read-hits %llu\n",
                    securityModeName(modes[i]), res.cyclesPerTx(),
                    res.cpi, res.retriesPerKwr,
                    (unsigned long long)res.wpqReadHits);
    }

    std::printf("\nDolos speedup over the Pre-WPQ secure baseline: "
                "%.2fx\n",
                cycles_per_tx[0] / cycles_per_tx[1]);
    return 0;
}
