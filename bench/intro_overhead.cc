/**
 * @file
 * Introduction / Section 3 claim: persistent workloads on a
 * state-of-the-art secure NVM controller suffer an average
 * performance overhead of 52% (up to 61%) relative to an ideal
 * secure system where data is considered persisted as soon as it is
 * flushed from the caches (i.e., persistence as cheap as in a
 * non-secure ADR platform).
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Intro claim: baseline overhead vs. "
                "immediately-persisting ideal",
                "average 52% overhead, up to 61%", opts);

    BenchReport report("intro_overhead", opts);
    std::printf("%-12s %14s %14s %10s\n", "benchmark",
                "baseline cyc/tx", "ideal cyc/tx", "overhead");
    std::vector<double> overheads;
    for (const auto &wl : workloads::workloadNames()) {
        const auto base = runOne(wl, SecurityMode::PreWpqSecure, opts);
        const auto ideal =
            runOne(wl, SecurityMode::PostWpqUnprotected, opts);
        const double ov =
            100.0 * (base.cyclesPerTx() / ideal.cyclesPerTx() - 1.0);
        overheads.push_back(ov);
        report.add(wl + ".baseline.cyclesPerTx", base.cyclesPerTx());
        report.add(wl + ".ideal.cyclesPerTx", ideal.cyclesPerTx());
        report.add(wl + ".overheadPct", ov);
        std::printf("%-12s %14.0f %14.0f %9.1f%%\n", wl.c_str(),
                    base.cyclesPerTx(), ideal.cyclesPerTx(), ov);
    }
    double max_ov = 0;
    for (const double o : overheads)
        max_ov = std::max(max_ov, o);
    std::printf("%-12s %14s %14s %9.1f%% (max %.1f%%)\n", "average",
                "", "", mean(overheads), max_ov);
    report.add("average.overheadPct", mean(overheads));
    report.add("max.overheadPct", max_ov);
    report.write();
    return 0;
}
