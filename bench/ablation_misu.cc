/**
 * @file
 * Ablation: Dolos design knobs called out in DESIGN.md —
 *  (a) Mi-SU MAC latency sweep (the residual critical-path cost),
 *  (b) write coalescing on/off.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

namespace
{

double
speedupWith(const std::string &wl, const BenchOptions &opts,
            Cycles misu_mac, bool coalescing)
{
    auto cfg = SystemConfig::paperDefault();
    applyOptKnobs(cfg, opts.knobs);
    cfg.mode = SecurityMode::PreWpqSecure;
    cfg.wpq.coalescing = coalescing;
    System base(cfg);
    auto w1 = workloads::makeWorkload(wl, presetFor(wl, opts));
    const auto rb = workloads::runWorkload(base, *w1, opts.txns);

    cfg.mode = SecurityMode::DolosPartialWpq;
    cfg.wpq.misuMacLatency = misu_mac;
    System dolos(cfg);
    auto w2 = workloads::makeWorkload(wl, presetFor(wl, opts));
    const auto rd = workloads::runWorkload(dolos, *w2, opts.txns);
    return rb.cyclesPerTx() / rd.cyclesPerTx();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Ablation: Mi-SU MAC latency and write coalescing",
                "(beyond the paper)", opts);

    const Cycles macs[] = {40, 80, 160, 320, 640};
    std::printf("Mi-SU MAC latency sweep (Partial-WPQ speedup):\n");
    std::printf("%-12s", "benchmark");
    for (const Cycles m : macs)
        std::printf(" %7llucyc", (unsigned long long)m);
    std::printf("\n");
    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s", wl.c_str());
        for (const Cycles m : macs)
            std::printf(" %9.2fx", speedupWith(wl, opts, m, true));
        std::printf("\n");
    }

    std::printf("\nWrite coalescing (Partial-WPQ speedup):\n");
    std::printf("%-12s %10s %10s\n", "benchmark", "on", "off");
    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s %9.2fx %9.2fx\n", wl.c_str(),
                    speedupWith(wl, opts, 160, true),
                    speedupWith(wl, opts, 160, false));
    }
    return 0;
}
