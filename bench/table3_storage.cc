/**
 * @file
 * Table 3: Mi-SU storage overhead for the three designs (16-entry
 * ADR budget) plus the §4.5 volatile tag-array registers.
 *
 * Paper: persistent counter 8B each; MACs 192B / 128B / 128B;
 * encryption pads 72B x 16 / 80B x 13 / 80B x 10.
 */

#include "bench/common.hh"

#include "dolos/misu.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Table 3: storage overhead of Mi-SU",
                "PCR 8B; MACs 192/128/128B; pads 72Bx16 / 80Bx13 / "
                "80Bx10",
                opts);

    auto mac = crypto::makeMacEngine(crypto::MacKind::SipHash24,
                                     {1, 2, 3, 4});
    const crypto::AesKey key{{5, 6, 7, 8}};

    struct Row
    {
        SecurityMode mode;
        unsigned entries;
    };
    const Row rows[] = {{SecurityMode::DolosFullWpq, 16},
                        {SecurityMode::DolosPartialWpq, 13},
                        {SecurityMode::DolosPostWpq, 10}};

    std::printf("%-22s %10s %10s %14s %12s\n", "", "PCR", "MACs",
                "pads", "tag array");
    for (const auto &row : rows) {
        MiSu misu(row.mode, row.entries, 160, key, *mac);
        const auto o = misu.storageOverhead();
        char pads[32];
        std::snprintf(pads, sizeof(pads), "%uB x %u",
                      o.padBytes / row.entries, row.entries);
        std::printf("%-22s %9uB %9uB %14s %11uB\n",
                    securityModeName(row.mode),
                    o.persistentCounterBytes, o.macBytes, pads,
                    o.tagArrayBytes);
    }
    return 0;
}
