/**
 * @file
 * Figure 13: WPQ insertion re-try events per KWR for Dolos with
 * Partial-WPQ-MiSU across transaction sizes 128B-2048B.
 *
 * Paper: retries grow with transaction size — large transactions
 * fill the WPQ quickly; 128B transactions barely ever find it full.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 13: Partial-WPQ-MiSU retries/KWR vs tx size",
                "retries rise steeply with transaction size", opts);

    const unsigned sizes[] = {128, 256, 512, 1024, 2048};
    std::printf("%-12s", "benchmark");
    for (const unsigned s : sizes)
        std::printf(" %8uB", s);
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(sizes));
    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s", wl.c_str());
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            const auto res = runOne(wl, SecurityMode::DolosPartialWpq,
                                    opts, sizes[i]);
            cols[i].push_back(res.retriesPerKwr);
            std::printf(" %9.2f", res.retriesPerKwr);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (const auto &col : cols)
        std::printf(" %9.2f", mean(col));
    std::printf("\n");
    return 0;
}
