/**
 * @file
 * Extension: how close does Dolos get to an eADR-class system?
 *
 * The paper's introduction argues that extending ADR to eADR (enough
 * backup energy to run the full security pipeline — or flush whole
 * caches — at power-fail time) is costly and non-standard, and that
 * Dolos should capture most of the benefit within the standard ADR
 * envelope. The eADR reference here is the real EadrSecure machine
 * mode: dirty cache lines sit inside the persistence domain, CLWB
 * completes locally (no fence stalls), and the crash path runs the
 * energy-bounded holdup flush. One release of the old proxy — the
 * PostWpqUnprotected timing model that stood in for eADR before the
 * mode existed — stays as a cross-check column; the two should agree
 * closely on the steady-state numbers because they differ only in
 * CLWB handling and crash semantics, neither of which a crash-free
 * benchmark run exercises heavily.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Extension: Dolos vs eADR-class secure system",
                "(beyond the paper; eADR == caches in the persistence "
                "domain, holdup flush at power fail)",
                opts);
    BenchReport report("ext_eadr", opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};

    std::printf("%-12s %9s %9s %10s %10s %10s   %s\n", "benchmark",
                "eADR", "proxy", "Full", "Partial", "Post",
                "(speedup over baseline)");
    std::vector<double> frac[3];
    std::vector<double> agreement;
    for (const auto &wl : workloads::workloadNames()) {
        const auto base = runOne(wl, SecurityMode::PreWpqSecure, opts);
        const auto eadr = runOne(wl, SecurityMode::EadrSecure, opts);
        const auto proxy =
            runOne(wl, SecurityMode::PostWpqUnprotected, opts);
        const double eadr_speedup =
            base.cyclesPerTx() / eadr.cyclesPerTx();
        const double proxy_speedup =
            base.cyclesPerTx() / proxy.cyclesPerTx();
        report.add(wl + ".eadrSpeedup", eadr_speedup);
        report.add(wl + ".proxySpeedup", proxy_speedup);
        agreement.push_back(proxy_speedup / eadr_speedup);
        double s[3];
        for (int d = 0; d < 3; ++d) {
            const auto res = runOne(wl, designs[d], opts);
            s[d] = base.cyclesPerTx() / res.cyclesPerTx();
            // Fraction of the (real) eADR *gain* captured.
            frac[d].push_back((s[d] - 1.0) / (eadr_speedup - 1.0));
        }
        report.add(wl + ".fullSpeedup", s[0]);
        report.add(wl + ".partialSpeedup", s[1]);
        report.add(wl + ".postSpeedup", s[2]);
        std::printf("%-12s %8.2fx %8.2fx %9.2fx %9.2fx %9.2fx\n",
                    wl.c_str(), eadr_speedup, proxy_speedup, s[0],
                    s[1], s[2]);
    }
    std::printf("\nfraction of the eADR gain captured at standard "
                "ADR cost:\n");
    std::printf("%-12s %10.0f%% %9.0f%% %9.0f%%\n", "average",
                100 * mean(frac[0]), 100 * mean(frac[1]),
                100 * mean(frac[2]));
    std::printf("proxy/eADR speedup agreement: %.3f (1.0 = the old "
                "stand-in was exact)\n",
                mean(agreement));
    report.add("avg.fracFull", mean(frac[0]));
    report.add("avg.fracPartial", mean(frac[1]));
    report.add("avg.fracPost", mean(frac[2]));
    report.add("avg.proxyAgreement", mean(agreement));
    report.write();
    return 0;
}
