/**
 * @file
 * Extension: how close does Dolos get to an eADR-class system?
 *
 * The paper's introduction argues that extending ADR to eADR (enough
 * backup energy to run the full security pipeline — or flush whole
 * caches — at power-fail time) is costly and non-standard, and that
 * Dolos should capture most of the benefit within the standard ADR
 * envelope. An eADR-class secure system behaves exactly like the
 * Figure 5-c organization (persist at WPQ insert, security at
 * eviction) but with the battery to make its crash path legal; we
 * therefore reuse the PostWpqUnprotected timing model as the
 * eADR-secure reference and report what fraction of its gain over
 * the baseline each Dolos design achieves.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Extension: Dolos vs eADR-class secure system",
                "(beyond the paper; eADR == Fig 5-c timing with a "
                "big battery)",
                opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};

    std::printf("%-12s %9s %10s %10s %10s   %s\n", "benchmark",
                "eADR", "Full", "Partial", "Post",
                "(speedup over baseline)");
    std::vector<double> frac[3];
    for (const auto &wl : workloads::workloadNames()) {
        const auto base = runOne(wl, SecurityMode::PreWpqSecure, opts);
        const auto eadr =
            runOne(wl, SecurityMode::PostWpqUnprotected, opts);
        const double eadr_speedup =
            base.cyclesPerTx() / eadr.cyclesPerTx();
        double s[3];
        for (int d = 0; d < 3; ++d) {
            const auto res = runOne(wl, designs[d], opts);
            s[d] = base.cyclesPerTx() / res.cyclesPerTx();
            // Fraction of the eADR *gain* captured.
            frac[d].push_back((s[d] - 1.0) / (eadr_speedup - 1.0));
        }
        std::printf("%-12s %8.2fx %9.2fx %9.2fx %9.2fx\n", wl.c_str(),
                    eadr_speedup, s[0], s[1], s[2]);
    }
    std::printf("\nfraction of the eADR gain captured at standard "
                "ADR cost:\n");
    std::printf("%-12s %10.0f%% %9.0f%% %9.0f%%\n", "average",
                100 * mean(frac[0]), 100 * mean(frac[1]),
                100 * mean(frac[2]));
    return 0;
}
