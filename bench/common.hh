/**
 * @file
 * Shared infrastructure for the experiment drivers.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it sweeps the relevant parameter, runs the six workloads on the
 * relevant controller modes, and prints the same rows/series the
 * paper reports. `--txns N` selects the per-run transaction count
 * (default 2000 for quick runs; `--full` selects the paper's 50000).
 * `--json [FILE]` additionally writes the computed series as a
 * machine-readable BENCH_<name>.json artifact (see
 * docs/observability.md); `tools/dolos_report` diffs two of them.
 */

#ifndef DOLOS_BENCH_COMMON_HH
#define DOLOS_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"
#include "workloads/runner.hh"

namespace dolos::bench
{

/** Command-line options shared by all experiment drivers. */
struct BenchOptions
{
    std::uint64_t txns = 2000;
    std::uint64_t numKeys = 1024;
    std::uint64_t seed = 42;
    bool verify = true;
    bool json = false;     ///< write a BENCH_<name>.json artifact
    std::string jsonFile;  ///< override the artifact path
    OptKnobs knobs;        ///< persist-path levers (default: all on;
                           ///< --opt-knobs none = the paper's machine)

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions o;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::uint64_t {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "missing value for %s\n",
                                 a.c_str());
                    std::exit(1);
                }
                const char *text = argv[++i];
                char *end = nullptr;
                const std::uint64_t v = std::strtoull(text, &end, 0);
                if (end == text || *end != '\0') {
                    std::fprintf(stderr,
                                 "bad numeric value '%s' for %s\n",
                                 text, a.c_str());
                    std::exit(1);
                }
                return v;
            };
            if (a == "--txns") {
                o.txns = next();
            } else if (a == "--full") {
                o.txns = 50000;
            } else if (a == "--keys") {
                o.numKeys = next();
            } else if (a == "--seed") {
                o.seed = next();
            } else if (a == "--no-verify") {
                o.verify = false;
            } else if (a == "--json") {
                o.json = true;
                // Optional value: a path that names the artifact.
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    o.jsonFile = argv[++i];
            } else if (a == "--opt-knobs") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "missing value for %s\n",
                                 a.c_str());
                    std::exit(1);
                }
                const auto parsed = parseOptKnobs(argv[++i]);
                if (!parsed) {
                    std::fprintf(stderr, "bad --opt-knobs spec '%s'\n",
                                 argv[i]);
                    std::exit(1);
                }
                o.knobs = *parsed;
            } else if (a == "--help" || a == "-h") {
                std::printf(
                    "options: --txns N | --full | --keys N | --seed N"
                    " | --no-verify | --json [FILE]"
                    " | --opt-knobs K (none = paper's machine)\n");
                std::exit(0);
            } else {
                std::fprintf(stderr, "unknown option %s\n", a.c_str());
                std::exit(1);
            }
        }
        return o;
    }
};

/**
 * Machine-readable result artifact for one experiment driver.
 *
 * Drivers add each computed number as a (label, value) point while
 * printing their human-readable table, then call write() which emits
 * BENCH_<name>.json when the user passed --json. Labels become JSON
 * keys, so two artifacts from the same driver diff cleanly with
 * `tools/dolos_report old.json new.json`.
 */
class BenchReport
{
  public:
    BenchReport(std::string name, const BenchOptions &opts)
        : name_(std::move(name)), opts_(opts)
    {
    }

    /** Record one numeric result, e.g. add("hashmap.speedup", 1.7). */
    void
    add(const std::string &label, double value)
    {
        points_.emplace_back(label, value);
    }

    /**
     * Write BENCH_<name>.json (or the --json FILE override) if the
     * user asked for it. Returns the path written, or "" if not.
     */
    std::string
    write() const
    {
        if (!opts_.json)
            return "";
        const std::string path = opts_.jsonFile.empty()
                                     ? "BENCH_" + name_ + ".json"
                                     : opts_.jsonFile;
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            std::exit(1);
        }
        out << "{\"bench\":\"" << json::escape(name_) << "\""
            << ",\"txns\":" << opts_.txns
            << ",\"keys\":" << opts_.numKeys
            << ",\"seed\":" << opts_.seed << ",\"results\":{";
        bool first = true;
        for (const auto &[label, value] : points_) {
            if (!first)
                out << ",";
            first = false;
            out << "\"" << json::escape(label) << "\":";
            if (std::isfinite(value)) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.17g", value);
                out << buf;
            } else {
                out << "null";
            }
        }
        out << "}}\n";
        std::printf("wrote %s (%zu results)\n", path.c_str(),
                    points_.size());
        return path;
    }

  private:
    std::string name_;
    BenchOptions opts_;
    std::vector<std::pair<std::string, double>> points_;
};

/**
 * Per-workload parameter presets. The six WHISPER-like workloads
 * differ in write burstiness and read mix; these presets set the
 * contrast the paper's Table 2 shows (hashmap heaviest WPQ pressure,
 * nstore-ycsb lightest).
 */
inline workloads::WorkloadParams
presetFor(const std::string &workload, const BenchOptions &opts,
          unsigned tx_size = 1024)
{
    workloads::WorkloadParams p;
    p.txSize = tx_size;
    p.numKeys = opts.numKeys;
    p.seed = opts.seed;

    // A transaction's non-memory work scales with the data it
    // touches; the per-block coefficients set each workload's ratio
    // of compute to persist traffic, which is what differentiates
    // the WHISPER applications' WPQ pressure (Table 2): hashmap
    // issues its bursts nearly back-to-back, NStore:YCSB leaves the
    // WPQ time to drain.
    const unsigned payload_blocks = (tx_size + blockSize - 1) / blockSize;
    Cycles per_block = 3800;
    if (workload == "hashmap") {
        per_block = 3300;
        p.readsPerTx = 1;
    } else if (workload == "ctree") {
        per_block = 3600;
        p.readsPerTx = 1;
    } else if (workload == "btree") {
        per_block = 3800;
        p.readsPerTx = 2;
    } else if (workload == "rbtree") {
        per_block = 3700;
        p.readsPerTx = 2;
    } else if (workload == "nstore-ycsb") {
        per_block = 4700;
        p.readsPerTx = 1;
    } else if (workload == "redis") {
        per_block = 3600;
        p.readsPerTx = 2;
    }
    // Fixed per-transaction work (lookup, dispatch) plus the
    // payload-proportional part.
    p.thinkTime = 8000 + per_block * payload_blocks;
    return p;
}

/** Run one workload on one mode; optionally verify. */
inline workloads::RunResult
runOne(const std::string &workload, SecurityMode mode,
       const BenchOptions &opts, unsigned tx_size = 1024,
       TreeUpdatePolicy policy = TreeUpdatePolicy::EagerMerkle,
       const WpqParams *wpq_override = nullptr)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.treePolicy = policy;
    if (wpq_override)
        cfg.wpq = *wpq_override;
    // After the WPQ override: the knob spec must win over the
    // override's drainBatching default too.
    applyOptKnobs(cfg, opts.knobs);
    System sys(cfg);
    auto wl = workloads::makeWorkload(workload,
                                      presetFor(workload, opts, tx_size));
    auto res = workloads::runWorkload(sys, *wl, opts.txns);
    if (opts.verify && !res.verified) {
        std::fprintf(stderr,
                     "VERIFICATION FAILED: %s on %s: %s\n",
                     workload.c_str(), securityModeName(mode),
                     res.verifyDiagnostic.c_str());
        std::exit(1);
    }
    return res;
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &v)
{
    double acc = 0;
    for (const double x : v)
        acc += std::log(x);
    return v.empty() ? 0.0 : std::exp(acc / double(v.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    double acc = 0;
    for (const double x : v)
        acc += x;
    return v.empty() ? 0.0 : acc / double(v.size());
}

/** Print the standard experiment header. */
inline void
printHeader(const char *experiment, const char *paper_result,
            const BenchOptions &opts)
{
    std::printf("=====================================================\n");
    std::printf("%s\n", experiment);
    std::printf("paper: %s\n", paper_result);
    std::printf("config: Table 1 (4GHz OoO->in-order core model, "
                "L1 32KB / L2 512KB / LLC 8MB,\n"
                "        PCM read 150ns write 500ns, AES 40cyc, "
                "MAC 160cyc, 8-ary trees)\n");
    std::printf("run: %llu transactions per (workload, mode)\n",
                (unsigned long long)opts.txns);
    std::printf("=====================================================\n");
}

} // namespace dolos::bench

#endif // DOLOS_BENCH_COMMON_HH
