/**
 * @file
 * google-benchmark microbenchmarks for the simulation substrate:
 * host cost of cache accesses, WPQ insert/drain paths, and whole
 * secure-write operations — the numbers that bound how many
 * simulated transactions per second the harness sustains.
 */

#include <benchmark/benchmark.h>

#include "dolos/system.hh"

using namespace dolos;

namespace
{

SystemConfig
benchConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    return cfg;
}

void
BM_CacheHitLoad(benchmark::State &state)
{
    System sys(benchConfig(SecurityMode::NonSecureIdeal));
    std::uint64_t v = 1;
    sys.core().store(0x1000, &v, sizeof(v));
    for (auto _ : state) {
        std::uint64_t out;
        sys.core().load(0x1000, &out, sizeof(out));
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_CacheHitLoad);

void
BM_SecureWriteThroughEngine(benchmark::State &state)
{
    auto cfg = benchConfig(SecurityMode::PreWpqSecure);
    NvmDevice nvm(cfg.nvm);
    SecurityEngine eng(cfg.secure, nvm);
    Block b{};
    Tick t = 0;
    Addr addr = 0;
    for (auto _ : state) {
        b[0] = std::uint8_t(t);
        const auto res = eng.secureWrite(addr, b, t);
        t = res.doneTick;
        addr = (addr + blockSize) % (1024 * blockSize);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_SecureWriteThroughEngine);

void
BM_WpqInsertAndDrain(benchmark::State &state)
{
    const auto mode = state.range(0) == 0
                          ? SecurityMode::NonSecureIdeal
                          : SecurityMode::DolosPartialWpq;
    auto cfg = benchConfig(mode);
    NvmDevice nvm(cfg.nvm);
    SecurityEngine eng(cfg.secure, nvm);
    SecureMemController mc(cfg, nvm, eng);
    Block b{};
    Tick t = 0;
    Addr addr = 0;
    for (auto _ : state) {
        const auto tk = mc.persistBlock(addr, b, t);
        t = tk.persistTick + 10000; // keep the WPQ unsaturated
        addr = (addr + blockSize) % (1024 * blockSize);
        benchmark::DoNotOptimize(tk);
    }
    state.SetLabel(securityModeName(mode));
}
BENCHMARK(BM_WpqInsertAndDrain)->Arg(0)->Arg(1);

void
BM_FullPersistRoundTrip(benchmark::State &state)
{
    System sys(benchConfig(SecurityMode::DolosPartialWpq));
    auto &core = sys.core();
    std::uint64_t v = 0;
    for (auto _ : state) {
        ++v;
        core.store(0x1000, &v, sizeof(v));
        core.clwb(0x1000);
        core.sfence();
    }
}
BENCHMARK(BM_FullPersistRoundTrip);

} // namespace

BENCHMARK_MAIN();
