/**
 * @file
 * Figure 14: speedup of Dolos (Partial-WPQ-MiSU) over the baseline
 * across transaction sizes 128B-2048B.
 *
 * Paper: higher speedups for small transactions (the WPQ buffers
 * them fully); still a clear win even at 2048B.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 14: Partial-WPQ-MiSU speedup vs tx size",
                "small transactions speed up most; 2048B still wins",
                opts);

    const unsigned sizes[] = {128, 256, 512, 1024, 2048};
    std::printf("%-12s", "benchmark");
    for (const unsigned s : sizes)
        std::printf(" %8uB", s);
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(sizes));
    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s", wl.c_str());
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            const auto base = runOne(wl, SecurityMode::PreWpqSecure,
                                     opts, sizes[i]);
            const auto dolos = runOne(
                wl, SecurityMode::DolosPartialWpq, opts, sizes[i]);
            const double speedup =
                base.cyclesPerTx() / dolos.cyclesPerTx();
            cols[i].push_back(speedup);
            std::printf(" %8.2fx", speedup);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (const auto &col : cols)
        std::printf(" %8.2fx", mean(col));
    std::printf("\n");
    return 0;
}
