/**
 * @file
 * Figure 6: CPI comparison of performing security operations before
 * the WPQ (the feasible Fig 5-b baseline) versus the hypothetical
 * placement after the WPQ (Fig 5-c, infeasible under standard ADR).
 *
 * Paper: 2.1x average slowdown when security sits before the WPQ.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 6: CPI, security before vs. after the WPQ",
                "2.1x average slowdown for the pre-WPQ placement",
                opts);

    std::printf("%-12s %12s %12s %10s\n", "benchmark", "pre-WPQ CPI",
                "post-WPQ CPI", "slowdown");
    std::vector<double> ratios;
    for (const auto &wl : workloads::workloadNames()) {
        const auto pre = runOne(wl, SecurityMode::PreWpqSecure, opts);
        const auto post =
            runOne(wl, SecurityMode::PostWpqUnprotected, opts);
        const double ratio = pre.cpi / post.cpi;
        ratios.push_back(ratio);
        std::printf("%-12s %12.3f %12.3f %9.2fx\n", wl.c_str(),
                    pre.cpi, post.cpi, ratio);
    }
    std::printf("%-12s %12s %12s %9.2fx\n", "average", "", "",
                mean(ratios));
    return 0;
}
