/**
 * @file
 * Section 5.5: Mi-SU recovery latency after a crash.
 *
 * Paper (Full-WPQ, 16 entries): read back 16 blocks (600 cyc each) +
 * regenerate pads (40 x 16) + drain each entry through Ma-SU/NVM
 * (2100 x 16) + compute fresh pads (40 x 16) = 44480 cycles
 * (~0.01 ms). Partial/Post read two extra MAC blocks but hold fewer
 * entries (15 and 12 block reads respectively).
 *
 * This driver both prints the analytic model and actually performs a
 * crash with a full WPQ followed by a verified recovery.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Section 5.5: Mi-SU recovery latency",
                "Full-WPQ: 16*600 + 16*40 + 16*2100 + 16*40 = 44480 "
                "cycles (~0.01 ms)",
                opts);

    std::printf("%-22s %10s %12s %12s %10s\n", "", "entries",
                "dumped", "cycles", "ms");
    for (const auto mode : {SecurityMode::DolosFullWpq,
                            SecurityMode::DolosPartialWpq,
                            SecurityMode::DolosPostWpq}) {
        auto cfg = SystemConfig::paperDefault();
        applyOptKnobs(cfg, opts.knobs);
        cfg.mode = mode;
        System sys(cfg);

        // Fill the WPQ, then pull the plug.
        Block data{};
        Tick t = 0;
        for (unsigned i = 0; i < sys.controller().wpqCapacity(); ++i) {
            data[0] = std::uint8_t(i);
            const auto tk = sys.controller().persistBlock(
                Addr(i) * blockSize, data, t);
            t = tk.persistTick;
        }
        const auto dump = sys.controller().crash(t);
        const auto rec = sys.recover();
        if (!rec.misuVerified || !rec.engine.rootVerified) {
            std::fprintf(stderr, "recovery verification failed\n");
            return 1;
        }
        const double ms = double(rec.modeledRecoveryCycles) /
                          double(coreFreqHz) * 1e3;
        std::printf("%-22s %10u %12u %12llu %10.4f\n",
                    securityModeName(mode),
                    sys.controller().wpqCapacity(), dump.entriesDumped,
                    (unsigned long long)rec.modeledRecoveryCycles, ms);
    }
    return 0;
}
