/**
 * @file
 * Table 2: WPQ insertion re-try events per kilo write requests (KWR)
 * for the three Mi-SU designs (eager Merkle tree, 1024B tx).
 *
 * Paper: Full < Partial < Post per workload (smaller usable WPQ =>
 * more retries); hashmap heaviest (182/293/359), NStore:YCSB
 * lightest (1.1/68.6/182.0).
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Table 2: WPQ insertion re-try events per KWR",
                "hashmap 182/293/359, ctree 88/207/285, btree "
                "107/214/281, rbtree 120/210/261,\n       "
                "nstore-ycsb 1.1/68.6/182.0, redis 107/215/274",
                opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};

    std::printf("%-12s %12s %16s %14s\n", "benchmark", "Full-WPQ",
                "Partial-WPQ", "Post-WPQ");
    std::vector<double> avg[3];
    for (const auto &wl : workloads::workloadNames()) {
        double kwr[3];
        for (int d = 0; d < 3; ++d) {
            const auto res = runOne(wl, designs[d], opts);
            kwr[d] = res.retriesPerKwr;
            avg[d].push_back(kwr[d]);
        }
        std::printf("%-12s %12.2f %16.2f %14.2f\n", wl.c_str(), kwr[0],
                    kwr[1], kwr[2]);
    }
    std::printf("%-12s %12.2f %16.2f %14.2f\n", "average",
                mean(avg[0]), mean(avg[1]), mean(avg[2]));
    return 0;
}
