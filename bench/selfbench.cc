/**
 * @file
 * Simulator self-benchmark driver: host throughput (simulated
 * instructions per wall-clock second) plus the self-profiler's
 * per-component attribution. Not a paper figure — this is the
 * host-performance gate BENCH_selfbench.json records, so a simulator
 * change that halves throughput fails CI even when the simulated
 * numbers are untouched. The attribution shares are recorded for the
 * report but never gated (dolos_report treats them as neutral).
 */

#include <iostream>

#include "bench/common.hh"
#include "workloads/selfbench.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Simulator self-benchmark: host throughput and "
                "host-time attribution",
                "n/a (host-performance gate, not a paper result)",
                opts);

    workloads::SelfbenchOptions so;
    so.txns = opts.txns;
    so.numKeys = opts.numKeys;
    so.seed = opts.seed;
    // The gate compares wall-clock against a recorded baseline at a
    // loose threshold; best-of-5 keeps a cold first run or a stray
    // scheduler hiccup from tripping it.
    so.repeats = 5;
    const auto r = workloads::runSelfbench(so);
    formatSelfbench(r, std::cout);

    BenchReport report("selfbench", opts);
    report.add(r.workload + ".eventsPerSec", r.eventsPerSec);
    report.add(r.workload + ".simCyclesPerSec", r.simCyclesPerSec);
    for (const auto &c : r.components)
        report.add(r.workload + ".prof." + c.name + ".share", c.share);
    report.write();
    return 0;
}
