/**
 * @file
 * Figure 12: speedup of Dolos (Full/Partial/Post Mi-SU) over the
 * Pre-WPQ-Secure baseline with the eager-update Merkle tree,
 * transaction size 1024B.
 *
 * Paper: average speedups 1.66x (Full), 1.66x (Partial), 1.59x (Post).
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 12: Dolos speedup, eager Merkle tree, 1024B tx",
                "avg speedup Full=1.66x Partial=1.66x Post=1.59x",
                opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};
    const char *labels[] = {"full", "partial", "post"};
    BenchReport report("fig12_speedup_eager", opts);

    std::printf("%-12s %10s %10s %10s\n", "benchmark", "Full",
                "Partial", "Post");
    std::vector<double> avg[3];
    for (const auto &wl : workloads::workloadNames()) {
        const auto base =
            runOne(wl, SecurityMode::PreWpqSecure, opts);
        double speedup[3];
        for (int d = 0; d < 3; ++d) {
            const auto res = runOne(wl, designs[d], opts);
            speedup[d] = base.cyclesPerTx() / res.cyclesPerTx();
            avg[d].push_back(speedup[d]);
            report.add(wl + "." + labels[d] + ".speedup", speedup[d]);
        }
        report.add(wl + ".baseline.cyclesPerTx", base.cyclesPerTx());
        std::printf("%-12s %9.2fx %9.2fx %9.2fx\n", wl.c_str(),
                    speedup[0], speedup[1], speedup[2]);
    }
    std::printf("%-12s %9.2fx %9.2fx %9.2fx\n", "average",
                mean(avg[0]), mean(avg[1]), mean(avg[2]));
    for (int d = 0; d < 3; ++d)
        report.add(std::string("average.") + labels[d] + ".speedup",
                   mean(avg[d]));
    report.write();
    return 0;
}
