/**
 * @file
 * google-benchmark microbenchmarks for the crypto substrate (host
 * throughput of the functional engines; simulated latency is a
 * timing-model parameter, not measured here).
 */

#include <benchmark/benchmark.h>

#include "crypto/ctr_pad.hh"
#include "crypto/hmac.hh"
#include "crypto/mac_engine.hh"
#include "crypto/sha256.hh"

using namespace dolos::crypto;

namespace
{

void
BM_AesEncryptBlock(benchmark::State &state)
{
    AesKey key{};
    for (int i = 0; i < 16; ++i)
        key[i] = std::uint8_t(i);
    Aes128 aes(key);
    AesBlock block{};
    for (auto _ : state) {
        block = aes.encryptBlock(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_CtrPad64B(benchmark::State &state)
{
    CtrPadGenerator gen(AesKey{{1, 2, 3}});
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        auto pad = gen.generate({1, 2, ++ctr}, 64);
        benchmark::DoNotOptimize(pad);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_CtrPad64B);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(std::size_t(state.range(0)), 0xAB);
    for (auto _ : state) {
        auto d = Sha256::digest(buf.data(), buf.size());
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void
BM_MacEngine(benchmark::State &state)
{
    const auto kind = state.range(0) == 0
                          ? MacKind::HmacSha256Truncated
                          : MacKind::SipHash24;
    auto eng = makeMacEngine(kind, {1, 2, 3, 4});
    std::vector<std::uint8_t> block(64, 0x5A);
    for (auto _ : state) {
        auto tag = eng->compute(block.data(), block.size());
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 64);
    state.SetLabel(state.range(0) == 0 ? "HMAC-SHA256" : "SipHash24");
}
BENCHMARK(BM_MacEngine)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
