/**
 * @file
 * Extension: the echo and vacation workloads (WHISPER applications
 * beyond the paper's six) across the three Mi-SU designs — checking
 * that Dolos' benefit generalizes to multi-key snapshot commits and
 * multi-table reservation transactions.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Extension: echo + vacation workloads",
                "(beyond the paper's six WHISPER benchmarks)", opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};

    std::printf("%-12s %10s %10s %10s %12s\n", "benchmark", "Full",
                "Partial", "Post", "retries(P)");
    for (const std::string wl : {"echo", "vacation"}) {
        workloads::WorkloadParams p;
        p.txSize = 1024;
        p.numKeys = opts.numKeys;
        p.seed = opts.seed;
        p.thinkTime = 60000;
        p.readsPerTx = 2;

        auto run = [&](SecurityMode mode) {
            auto cfg = SystemConfig::paperDefault();
            applyOptKnobs(cfg, opts.knobs);
            cfg.mode = mode;
            System sys(cfg);
            auto w = workloads::makeWorkload(wl, p);
            auto res = workloads::runWorkload(sys, *w, opts.txns);
            if (opts.verify && !res.verified) {
                std::fprintf(stderr, "VERIFICATION FAILED: %s\n",
                             res.verifyDiagnostic.c_str());
                std::exit(1);
            }
            return res;
        };

        const auto base = run(SecurityMode::PreWpqSecure);
        double speedup[3];
        double retries_partial = 0;
        for (int d = 0; d < 3; ++d) {
            const auto res = run(designs[d]);
            speedup[d] = base.cyclesPerTx() / res.cyclesPerTx();
            if (designs[d] == SecurityMode::DolosPartialWpq)
                retries_partial = res.retriesPerKwr;
        }
        std::printf("%-12s %9.2fx %9.2fx %9.2fx %12.2f\n", wl.c_str(),
                    speedup[0], speedup[1], speedup[2],
                    retries_partial);
    }
    return 0;
}
