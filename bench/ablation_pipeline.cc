/**
 * @file
 * Ablation: what if the memory-backend security engine pipelined its
 * tree updates across writes (per-level MAC engines, as explored by
 * Freij et al. MICRO'20) instead of serializing them?
 *
 * Pipelining shrinks the baseline's front-side queueing, so Dolos'
 * advantage contracts — quantifying how much of Dolos' win comes
 * from hiding *serialized* backend latency. Dolos composes with
 * pipelining (the paper's "orthogonal integration" claim): the
 * combined system is the fastest column.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

namespace
{

workloads::RunResult
runPipelined(const std::string &wl, SecurityMode mode,
             const BenchOptions &opts, bool pipelined)
{
    auto cfg = SystemConfig::paperDefault();
    applyOptKnobs(cfg, opts.knobs);
    cfg.mode = mode;
    cfg.secure.pipelinedWrites = pipelined;
    System sys(cfg);
    auto w = workloads::makeWorkload(wl, presetFor(wl, opts));
    return workloads::runWorkload(sys, *w, opts.txns);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Ablation: serialized vs pipelined backend engine",
                "(beyond the paper; paper model = serialized)", opts);

    std::printf("%-12s %16s %16s %18s\n", "benchmark",
                "speedup(serial)", "speedup(piped)",
                "piped-dolos/serial-base");
    std::vector<double> s1, s2, s3;
    for (const auto &wl : workloads::workloadNames()) {
        const auto base_s =
            runPipelined(wl, SecurityMode::PreWpqSecure, opts, false);
        const auto dolos_s = runPipelined(
            wl, SecurityMode::DolosPartialWpq, opts, false);
        const auto base_p =
            runPipelined(wl, SecurityMode::PreWpqSecure, opts, true);
        const auto dolos_p = runPipelined(
            wl, SecurityMode::DolosPartialWpq, opts, true);
        const double serial =
            base_s.cyclesPerTx() / dolos_s.cyclesPerTx();
        const double piped =
            base_p.cyclesPerTx() / dolos_p.cyclesPerTx();
        const double combined =
            base_s.cyclesPerTx() / dolos_p.cyclesPerTx();
        s1.push_back(serial);
        s2.push_back(piped);
        s3.push_back(combined);
        std::printf("%-12s %15.2fx %15.2fx %17.2fx\n", wl.c_str(),
                    serial, piped, combined);
    }
    std::printf("%-12s %15.2fx %15.2fx %17.2fx\n", "average",
                mean(s1), mean(s2), mean(s3));
    return 0;
}
