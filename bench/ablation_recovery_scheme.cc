/**
 * @file
 * Ablation: Anubis shadow table vs. Osiris ECC-probe counter
 * recovery as the Ma-SU crash-consistency scheme (paper §4.4/§6).
 *
 * Anubis spends ~2 extra NVM writes per secure write (the shadow
 * entry) but recovers by scanning only the small shadow region;
 * Osiris writes counters through every K updates but must probe
 * every data block at recovery. Dolos runs on either.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Ablation: Anubis vs Osiris crash consistency",
                "(paper builds on both; runtime-traffic vs "
                "recovery-work trade)",
                opts);

    std::printf("%-12s %16s %16s %14s %14s\n", "benchmark",
                "speedup(Anubis)", "speedup(Osiris)", "nvmW(Anubis)",
                "nvmW(Osiris)");
    for (const auto &wl : workloads::workloadNames()) {
        double speedup[2];
        std::uint64_t nvm_writes[2];
        const CrashScheme schemes[] = {CrashScheme::Anubis,
                                       CrashScheme::Osiris};
        for (int s = 0; s < 2; ++s) {
            auto cfg = SystemConfig::paperDefault();
            applyOptKnobs(cfg, opts.knobs);
            cfg.mode = SecurityMode::PreWpqSecure;
            cfg.secure.crashScheme = schemes[s];
            System base(cfg);
            auto w1 = workloads::makeWorkload(wl, presetFor(wl, opts));
            const auto rb = workloads::runWorkload(base, *w1, opts.txns);

            cfg.mode = SecurityMode::DolosPartialWpq;
            System dolos(cfg);
            auto w2 = workloads::makeWorkload(wl, presetFor(wl, opts));
            const auto rd =
                workloads::runWorkload(dolos, *w2, opts.txns);
            speedup[s] = rb.cyclesPerTx() / rd.cyclesPerTx();
            nvm_writes[s] = dolos.nvmDevice().writes();
        }
        std::printf("%-12s %15.2fx %15.2fx %14llu %14llu\n",
                    wl.c_str(), speedup[0], speedup[1],
                    (unsigned long long)nvm_writes[0],
                    (unsigned long long)nvm_writes[1]);
    }

    // Recovery-side contrast: same write sequence, then a crash.
    std::printf("\nrecovery work after 500 writes:\n");
    for (int s = 0; s < 2; ++s) {
        auto cfg = SystemConfig::paperDefault();
        applyOptKnobs(cfg, opts.knobs);
        cfg.mode = SecurityMode::DolosPartialWpq;
        cfg.secure.crashScheme =
            s == 0 ? CrashScheme::Anubis : CrashScheme::Osiris;
        System sys(cfg);
        Block b{};
        Tick t = 0;
        Random rng(7);
        for (int i = 0; i < 500; ++i) {
            const Addr a = blockAlign(rng.below(64 * pageBytes));
            b[0] = std::uint8_t(i);
            const auto tk = sys.controller().persistBlock(a, b, t);
            t = tk.persistTick + 4000;
        }
        sys.crash();
        const auto rec = sys.recover();
        std::printf("  %-8s shadowApplied=%zu osirisProbed=%zu "
                    "advanced=%zu rootVerified=%d\n",
                    s == 0 ? "Anubis" : "Osiris",
                    rec.engine.shadowApplied, rec.engine.osirisProbed,
                    rec.engine.osirisAdvanced,
                    int(rec.engine.rootVerified));
    }
    return 0;
}
