/**
 * @file
 * Figure 16: speedup of the three Mi-SU designs when the Ma-SU uses
 * a lazily-updated Tree of Counters (Phoenix) instead of the eager
 * Merkle tree — the backend security latency drops to 4 MAC
 * computations, so there is less to hide.
 *
 * Paper: average speedups 1.044x (Full), 1.079x (Partial),
 * 1.071x (Post); Full is visibly worst because doubling the Mi-SU
 * MAC latency matters more when the Ma-SU is cheap.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 16: Dolos speedup, lazy ToC scheme, 1024B tx",
                "avg Full=1.044x Partial=1.079x Post=1.071x", opts);

    const SecurityMode designs[] = {SecurityMode::DolosFullWpq,
                                    SecurityMode::DolosPartialWpq,
                                    SecurityMode::DolosPostWpq};

    std::printf("%-12s %10s %10s %10s\n", "benchmark", "Full",
                "Partial", "Post");
    std::vector<double> avg[3];
    for (const auto &wl : workloads::workloadNames()) {
        const auto base = runOne(wl, SecurityMode::PreWpqSecure, opts,
                                 1024, TreeUpdatePolicy::LazyToc);
        double speedup[3];
        for (int d = 0; d < 3; ++d) {
            const auto res = runOne(wl, designs[d], opts, 1024,
                                    TreeUpdatePolicy::LazyToc);
            speedup[d] = base.cyclesPerTx() / res.cyclesPerTx();
            avg[d].push_back(speedup[d]);
        }
        std::printf("%-12s %9.3fx %9.3fx %9.3fx\n", wl.c_str(),
                    speedup[0], speedup[1], speedup[2]);
    }
    std::printf("%-12s %9.3fx %9.3fx %9.3fx\n", "average",
                mean(avg[0]), mean(avg[1]), mean(avg[2]));
    return 0;
}
