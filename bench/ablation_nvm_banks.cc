/**
 * @file
 * Ablation: NVM bank parallelism. The WPQ drain posts data, shadow
 * and counter writes to the banks; with few banks the drain becomes
 * NVM-bound instead of MAC-bound, which squeezes Dolos' window for
 * hiding work behind the WPQ.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Ablation: NVM bank count (Partial-WPQ speedup)",
                "(beyond the paper; Table 1 system uses 8 banks)",
                opts);

    const unsigned banks[] = {1, 2, 4, 8, 16};
    std::printf("%-12s", "benchmark");
    for (const unsigned b : banks)
        std::printf("  banks=%-3u", b);
    std::printf("\n");

    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s", wl.c_str());
        for (const unsigned b : banks) {
            auto run = [&](SecurityMode mode) {
                auto cfg = SystemConfig::paperDefault();
                applyOptKnobs(cfg, opts.knobs);
                cfg.mode = mode;
                cfg.nvm.numBanks = b;
                System sys(cfg);
                auto w = workloads::makeWorkload(
                    wl, presetFor(wl, opts));
                return workloads::runWorkload(sys, *w, opts.txns);
            };
            const auto base = run(SecurityMode::PreWpqSecure);
            const auto dolos = run(SecurityMode::DolosPartialWpq);
            std::printf(" %8.2fx",
                        base.cyclesPerTx() / dolos.cyclesPerTx());
        }
        std::printf("\n");
    }
    return 0;
}
