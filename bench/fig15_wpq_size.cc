/**
 * @file
 * Figure 15: sensitivity of Dolos (Partial-WPQ-MiSU) to WPQ size.
 * The baseline uses the full WPQ budget; Partial uses 8/9 of it.
 *
 * Paper: speedup 1.66x / 1.85x / 1.87x / 1.88x for usable sizes
 * 13 / 28 / 57 / 113, with retries/KWR 201.3 / 29.0 / 13.6 / 11.1 —
 * the curve flattens once the WPQ can absorb whole transactions.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader("Figure 15: speedup vs WPQ size (Partial-WPQ-MiSU)",
                "1.66x/1.85x/1.87x/1.88x at 13/28/57/113 entries; "
                "retries 201/29/14/11", opts);
    BenchReport report("fig15_wpq_size", opts);

    struct Point
    {
        unsigned budget;  ///< baseline entries (full ADR budget)
        unsigned partial; ///< usable Partial entries (8/9)
    };
    const Point points[] = {{16, 13}, {32, 28}, {64, 57}, {128, 113}};

    std::printf("%-12s", "benchmark");
    for (const auto &pt : points)
        std::printf("   wpq=%-4u", pt.partial);
    std::printf("\n");

    std::vector<std::vector<double>> speedups(std::size(points));
    std::vector<std::vector<double>> retries(std::size(points));
    for (const auto &wl : workloads::workloadNames()) {
        std::printf("%-12s", wl.c_str());
        for (std::size_t i = 0; i < std::size(points); ++i) {
            WpqParams wpq;
            wpq.adrBudgetEntries = points[i].budget;
            wpq.partialEntries = points[i].partial;
            const auto base =
                runOne(wl, SecurityMode::PreWpqSecure, opts, 1024,
                       TreeUpdatePolicy::EagerMerkle, &wpq);
            const auto dolos =
                runOne(wl, SecurityMode::DolosPartialWpq, opts, 1024,
                       TreeUpdatePolicy::EagerMerkle, &wpq);
            const double s = base.cyclesPerTx() / dolos.cyclesPerTx();
            speedups[i].push_back(s);
            retries[i].push_back(dolos.retriesPerKwr);
            std::printf(" %9.2fx", s);
            const std::string key =
                wl + ".wpq" + std::to_string(points[i].partial);
            report.add(key + ".speedup", s);
            report.add(key + ".retriesPerKwr", dolos.retriesPerKwr);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "average");
    for (std::size_t i = 0; i < std::size(points); ++i) {
        std::printf(" %9.2fx", mean(speedups[i]));
        report.add("average.wpq" + std::to_string(points[i].partial) +
                       ".speedup",
                   mean(speedups[i]));
    }
    std::printf("\n%-12s", "retries/KWR");
    for (std::size_t i = 0; i < std::size(points); ++i) {
        std::printf(" %10.2f", mean(retries[i]));
        report.add("average.wpq" + std::to_string(points[i].partial) +
                       ".retriesPerKwr",
                   mean(retries[i]));
    }
    std::printf("\n");
    report.write();
    return 0;
}
