/**
 * @file
 * Persist-path optimization levers: off-vs-on stall-cycle breakdown
 * per Dolos mode on the heaviest-WPQ-pressure workload (hashmap).
 *
 * The three levers (bmtPipeline, drainBatching, tagPrefetch) are
 * timing-only — `dolos-sim --verify-perf-equiv` proves state
 * equivalence — so this driver reports what they buy: the combined
 * wpqStallCycles + bmtCycles account must drop by at least 10% with
 * all levers on (checked at gate-sized runs), and the recorded
 * baseline locks the per-stage numbers at a 2% drift threshold.
 */

#include "bench/common.hh"

using namespace dolos;
using namespace dolos::bench;

namespace
{

struct Leg
{
    std::uint64_t wpqStallCycles = 0;
    std::uint64_t bmtCycles = 0;
    std::uint64_t macCycles = 0;
    std::uint64_t aesCycles = 0;
    std::uint64_t ctrFetchCycles = 0;
    std::uint64_t fenceStallCycles = 0;
    std::uint64_t runCycles = 0;
    double cyclesPerTx = 0.0;

    std::uint64_t
    stallPlusBmt() const
    {
        return wpqStallCycles + bmtCycles;
    }
};

Leg
runLeg(const std::string &workload, SecurityMode mode,
       const BenchOptions &opts, const OptKnobs &knobs)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    applyOptKnobs(cfg, knobs);
    System sys(cfg);
    auto wl = workloads::makeWorkload(workload,
                                      presetFor(workload, opts));
    const auto res = workloads::runWorkload(sys, *wl, opts.txns);
    if (opts.verify && !res.verified) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s: %s\n",
                     workload.c_str(), securityModeName(mode),
                     res.verifyDiagnostic.c_str());
        std::exit(1);
    }
    Leg leg;
    leg.wpqStallCycles = sys.controller().wpqStallCycles();
    leg.bmtCycles = sys.engine().bmtCycles();
    leg.macCycles = sys.engine().macCycles();
    leg.aesCycles = sys.engine().aesCycles();
    leg.ctrFetchCycles = sys.engine().ctrFetchCycles();
    leg.fenceStallCycles = res.fenceStallCycles;
    leg.runCycles = res.runCycles;
    leg.cyclesPerTx = res.cyclesPerTx();
    return leg;
}

void
reportLeg(BenchReport &report, const std::string &prefix,
          const Leg &leg)
{
    report.add(prefix + ".wpqStallCycles",
               double(leg.wpqStallCycles));
    report.add(prefix + ".bmtCycles", double(leg.bmtCycles));
    report.add(prefix + ".macCycles", double(leg.macCycles));
    report.add(prefix + ".aesCycles", double(leg.aesCycles));
    report.add(prefix + ".ctrFetchCycles",
               double(leg.ctrFetchCycles));
    report.add(prefix + ".fenceStallCycles",
               double(leg.fenceStallCycles));
    report.add(prefix + ".runCycles", double(leg.runCycles));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    printHeader(
        "Persist-path levers: bmtPipeline + drainBatching + "
        "tagPrefetch, off vs on",
        "timing-only levers; >= 10% combined wpqStall+bmt reduction "
        "on hashmap",
        opts);
    BenchReport report("opt_persist_path", opts);

    const struct
    {
        SecurityMode mode;
        const char *tag;
    } modes[] = {{SecurityMode::DolosFullWpq, "full"},
                 {SecurityMode::DolosPartialWpq, "partial"},
                 {SecurityMode::DolosPostWpq, "post"}};
    const std::string workload = "hashmap";
    // The levers default on since the microstep-sweep flip, so the
    // "off" leg (the paper's unoptimized machine) is the explicit one.
    OptKnobs off;
    off.bmtPipeline = false;
    off.drainBatching = false;
    off.tagPrefetch = false;
    const OptKnobs on{};

    bool met = true;
    for (const auto &m : modes) {
        const Leg a = runLeg(workload, m.mode, opts, off);
        const Leg b = runLeg(workload, m.mode, opts, on);

        std::printf("\n%s on %s\n", workload.c_str(),
                    securityModeName(m.mode));
        std::printf("  %-18s %14s %14s\n", "stage", "off", "on");
        const struct
        {
            const char *name;
            std::uint64_t off, on;
        } rows[] = {
            {"wpqStallCycles", a.wpqStallCycles, b.wpqStallCycles},
            {"bmtCycles", a.bmtCycles, b.bmtCycles},
            {"macCycles", a.macCycles, b.macCycles},
            {"aesCycles", a.aesCycles, b.aesCycles},
            {"ctrFetchCycles", a.ctrFetchCycles, b.ctrFetchCycles},
            {"fenceStallCycles", a.fenceStallCycles,
             b.fenceStallCycles},
            {"runCycles", a.runCycles, b.runCycles},
        };
        for (const auto &row : rows)
            std::printf("  %-18s %14llu %14llu\n", row.name,
                        (unsigned long long)row.off,
                        (unsigned long long)row.on);

        const double reduction =
            a.stallPlusBmt()
                ? 100.0 *
                      double(a.stallPlusBmt() - b.stallPlusBmt()) /
                      double(a.stallPlusBmt())
                : 0.0;
        const double speedup =
            b.cyclesPerTx ? a.cyclesPerTx / b.cyclesPerTx : 1.0;
        std::printf("  stall+bmt %llu -> %llu  (-%.1f%%), "
                    "speedup %.2fx\n",
                    (unsigned long long)a.stallPlusBmt(),
                    (unsigned long long)b.stallPlusBmt(), reduction,
                    speedup);

        const std::string prefix = workload + "." + m.tag;
        reportLeg(report, prefix + ".off", a);
        reportLeg(report, prefix + ".on", b);
        report.add(prefix + ".stallPlusBmtReductionPct", reduction);
        report.add(prefix + ".speedup", speedup);

        // The headline acceptance bar, enforced at gate-sized runs
        // (tiny smoke runs are too short for a stable percentage).
        if (opts.txns >= 40 && reduction < 10.0) {
            std::fprintf(stderr,
                         "FAIL: stall+bmt reduction %.1f%% < 10%% "
                         "on %s %s\n",
                         reduction, workload.c_str(),
                         securityModeName(m.mode));
            met = false;
        }
    }
    report.write();
    return met ? 0 : 1;
}
