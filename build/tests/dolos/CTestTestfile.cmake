# CMake generated Testfile for 
# Source directory: /root/repo/tests/dolos
# Build directory: /root/repo/build/tests/dolos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dolos/dolos_test[1]_include.cmake")
