# Empty compiler generated dependencies file for dolos_test.
# This may be replaced when dependencies are built.
