
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dolos/controller_test.cc" "tests/dolos/CMakeFiles/dolos_test.dir/controller_test.cc.o" "gcc" "tests/dolos/CMakeFiles/dolos_test.dir/controller_test.cc.o.d"
  "/root/repo/tests/dolos/misu_test.cc" "tests/dolos/CMakeFiles/dolos_test.dir/misu_test.cc.o" "gcc" "tests/dolos/CMakeFiles/dolos_test.dir/misu_test.cc.o.d"
  "/root/repo/tests/dolos/redo_log_test.cc" "tests/dolos/CMakeFiles/dolos_test.dir/redo_log_test.cc.o" "gcc" "tests/dolos/CMakeFiles/dolos_test.dir/redo_log_test.cc.o.d"
  "/root/repo/tests/dolos/system_test.cc" "tests/dolos/CMakeFiles/dolos_test.dir/system_test.cc.o" "gcc" "tests/dolos/CMakeFiles/dolos_test.dir/system_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dolos/CMakeFiles/dolos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/dolos_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dolos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
