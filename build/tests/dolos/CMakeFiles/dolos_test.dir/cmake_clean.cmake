file(REMOVE_RECURSE
  "CMakeFiles/dolos_test.dir/controller_test.cc.o"
  "CMakeFiles/dolos_test.dir/controller_test.cc.o.d"
  "CMakeFiles/dolos_test.dir/misu_test.cc.o"
  "CMakeFiles/dolos_test.dir/misu_test.cc.o.d"
  "CMakeFiles/dolos_test.dir/redo_log_test.cc.o"
  "CMakeFiles/dolos_test.dir/redo_log_test.cc.o.d"
  "CMakeFiles/dolos_test.dir/system_test.cc.o"
  "CMakeFiles/dolos_test.dir/system_test.cc.o.d"
  "dolos_test"
  "dolos_test.pdb"
  "dolos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
