
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aes128_test.cc" "tests/crypto/CMakeFiles/crypto_test.dir/aes128_test.cc.o" "gcc" "tests/crypto/CMakeFiles/crypto_test.dir/aes128_test.cc.o.d"
  "/root/repo/tests/crypto/ctr_pad_test.cc" "tests/crypto/CMakeFiles/crypto_test.dir/ctr_pad_test.cc.o" "gcc" "tests/crypto/CMakeFiles/crypto_test.dir/ctr_pad_test.cc.o.d"
  "/root/repo/tests/crypto/mac_engine_test.cc" "tests/crypto/CMakeFiles/crypto_test.dir/mac_engine_test.cc.o" "gcc" "tests/crypto/CMakeFiles/crypto_test.dir/mac_engine_test.cc.o.d"
  "/root/repo/tests/crypto/sha256_test.cc" "tests/crypto/CMakeFiles/crypto_test.dir/sha256_test.cc.o" "gcc" "tests/crypto/CMakeFiles/crypto_test.dir/sha256_test.cc.o.d"
  "/root/repo/tests/crypto/siphash_test.cc" "tests/crypto/CMakeFiles/crypto_test.dir/siphash_test.cc.o" "gcc" "tests/crypto/CMakeFiles/crypto_test.dir/siphash_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
