
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/backing_store_test.cc" "tests/mem/CMakeFiles/mem_test.dir/backing_store_test.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/backing_store_test.cc.o.d"
  "/root/repo/tests/mem/cache_test.cc" "tests/mem/CMakeFiles/mem_test.dir/cache_test.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/cache_test.cc.o.d"
  "/root/repo/tests/mem/hierarchy_test.cc" "tests/mem/CMakeFiles/mem_test.dir/hierarchy_test.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/hierarchy_test.cc.o.d"
  "/root/repo/tests/mem/nvm_device_test.cc" "tests/mem/CMakeFiles/mem_test.dir/nvm_device_test.cc.o" "gcc" "tests/mem/CMakeFiles/mem_test.dir/nvm_device_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
