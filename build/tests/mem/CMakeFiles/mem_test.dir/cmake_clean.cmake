file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/backing_store_test.cc.o"
  "CMakeFiles/mem_test.dir/backing_store_test.cc.o.d"
  "CMakeFiles/mem_test.dir/cache_test.cc.o"
  "CMakeFiles/mem_test.dir/cache_test.cc.o.d"
  "CMakeFiles/mem_test.dir/hierarchy_test.cc.o"
  "CMakeFiles/mem_test.dir/hierarchy_test.cc.o.d"
  "CMakeFiles/mem_test.dir/nvm_device_test.cc.o"
  "CMakeFiles/mem_test.dir/nvm_device_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
