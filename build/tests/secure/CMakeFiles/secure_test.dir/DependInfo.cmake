
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/secure/anubis_test.cc" "tests/secure/CMakeFiles/secure_test.dir/anubis_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/anubis_test.cc.o.d"
  "/root/repo/tests/secure/counters_test.cc" "tests/secure/CMakeFiles/secure_test.dir/counters_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/counters_test.cc.o.d"
  "/root/repo/tests/secure/merkle_tree_test.cc" "tests/secure/CMakeFiles/secure_test.dir/merkle_tree_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/merkle_tree_test.cc.o.d"
  "/root/repo/tests/secure/osiris_test.cc" "tests/secure/CMakeFiles/secure_test.dir/osiris_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/osiris_test.cc.o.d"
  "/root/repo/tests/secure/security_engine_test.cc" "tests/secure/CMakeFiles/secure_test.dir/security_engine_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/security_engine_test.cc.o.d"
  "/root/repo/tests/secure/tag_cache_test.cc" "tests/secure/CMakeFiles/secure_test.dir/tag_cache_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/tag_cache_test.cc.o.d"
  "/root/repo/tests/secure/toc_test.cc" "tests/secure/CMakeFiles/secure_test.dir/toc_test.cc.o" "gcc" "tests/secure/CMakeFiles/secure_test.dir/toc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/dolos_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
