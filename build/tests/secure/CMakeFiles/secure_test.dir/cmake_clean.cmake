file(REMOVE_RECURSE
  "CMakeFiles/secure_test.dir/anubis_test.cc.o"
  "CMakeFiles/secure_test.dir/anubis_test.cc.o.d"
  "CMakeFiles/secure_test.dir/counters_test.cc.o"
  "CMakeFiles/secure_test.dir/counters_test.cc.o.d"
  "CMakeFiles/secure_test.dir/merkle_tree_test.cc.o"
  "CMakeFiles/secure_test.dir/merkle_tree_test.cc.o.d"
  "CMakeFiles/secure_test.dir/osiris_test.cc.o"
  "CMakeFiles/secure_test.dir/osiris_test.cc.o.d"
  "CMakeFiles/secure_test.dir/security_engine_test.cc.o"
  "CMakeFiles/secure_test.dir/security_engine_test.cc.o.d"
  "CMakeFiles/secure_test.dir/tag_cache_test.cc.o"
  "CMakeFiles/secure_test.dir/tag_cache_test.cc.o.d"
  "CMakeFiles/secure_test.dir/toc_test.cc.o"
  "CMakeFiles/secure_test.dir/toc_test.cc.o.d"
  "secure_test"
  "secure_test.pdb"
  "secure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
